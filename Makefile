# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench experiments quick-experiments cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./... -timeout 1800s

race:
	go test -race ./internal/experiments/ ./internal/covert/ -timeout 1800s

bench:
	go test -bench=. -benchmem -timeout 3600s .

# Full-size reproduction of every table and figure (paper parameters).
experiments:
	go run ./cmd/experiments -exp all -csv results_csv

quick-experiments:
	go run ./cmd/experiments -exp all -quick

cover:
	go test ./internal/... . -cover -timeout 1800s
