# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race lint ci smoke bench bench-json experiments quick-experiments cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./... -timeout 1800s

# Race-check the concurrent parts of the tree: the parallel ILP solver,
# the survey worker pools and the covert-channel harness — plus the
# goroutine-leak check over cancelled solves (mirrors the CI race job).
race:
	go test -race ./internal/ilp/ ./internal/experiments/ ./internal/covert/ -timeout 1800s
	go test -race -run 'TestSolveCancel|TestMapMachineCancel' -count=1 ./internal/ilp/ . -timeout 300s

# Mirrors the lint job of .github/workflows/ci.yml; requires staticcheck
# (go install honnef.co/go/tools/cmd/staticcheck@latest) on PATH.
lint:
	staticcheck ./...

# Everything the CI workflow runs, in one local invocation (lint excluded:
# it needs the staticcheck binary and CI treats it as advisory for now).
ci: all race smoke

# The CI smoke job: the full quick reproduction must exit 0.
smoke:
	go run ./cmd/experiments -exp all -quick

bench:
	go test -bench=. -benchmem -timeout 3600s .

# Machine-readable benchmark archive: the full -bench run converted to
# BENCH_<date>.json (name → ns/op + custom metrics) for diffing across
# commits. See cmd/benchjson.
bench-json:
	go test -bench=. -benchmem -timeout 3600s . | tee /dev/stderr \
		| go run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d).json

# Full-size reproduction of every table and figure (paper parameters).
experiments:
	go run ./cmd/experiments -exp all -csv results_csv

quick-experiments: smoke

cover:
	go test ./internal/... . -cover -timeout 1800s
