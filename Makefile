# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race lint ci smoke plancompare bench bench-json bench-gate experiments quick-experiments cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./... -timeout 1800s

# Race-check the concurrent parts of the tree: the parallel ILP solver,
# the survey worker pools, the covert-channel harness, the topology
# backends and the adaptive planner — plus the goroutine-leak check over
# cancelled solves (mirrors the CI race job).
race:
	go test -race ./internal/ilp/ ./internal/experiments/ ./internal/covert/ ./internal/topo/... ./internal/plan/ ./internal/obs/ -timeout 1800s
	go test -race -run 'TestSolveCancel|TestMapMachineCancel' -count=1 ./internal/ilp/ . -timeout 300s

# Mirrors the lint jobs of .github/workflows/ci.yml: go vet, staticcheck
# (skipped with a notice when the binary is absent — install it with
# go install honnef.co/go/tools/cmd/staticcheck@2024.1.1) and the repo's
# own coremaplint analyzers (see DESIGN.md §7). coremaplint must run from
# inside the module: its source importer resolves coremap/internal/...
# through the local build context.
lint:
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not on PATH, skipping (CI runs it)"; \
	fi
	go run ./cmd/coremaplint ./...

# Everything the CI workflow runs, in one local invocation.
ci: all race smoke lint

# The CI smoke job: the full quick reproduction must exit 0 (this
# includes plancompare, the adaptive-planner acceptance gate, and the
# mesh quick survey), then the ring and noc backends must each pass the
# same quick-survey gate (exact, proven, deterministic placements).
smoke:
	go run ./cmd/experiments -exp all -quick
	go run ./cmd/experiments -exp quick -topology ring
	go run ./cmd/experiments -exp quick -topology noc

# The planner acceptance gate alone: planned vs exhaustive survey on one
# 8259CL instance — byte-identical map, ≤ 1/3 of the host operations.
plancompare:
	go run ./cmd/experiments -exp plancompare

bench:
	go test -bench=. -benchmem -timeout 3600s .

# Machine-readable benchmark archive: the full -bench run converted to
# BENCH_<date>.json (name → ns/op + custom metrics) for diffing across
# commits. See cmd/benchjson.
bench-json:
	go test -bench=. -benchmem -timeout 3600s . | tee /dev/stderr \
		| go run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d).json

# Benchmark regression gate (mirrors the CI bench-gate job): run every
# benchmark once, convert to JSON and diff against the newest checked-in
# BENCH_<date>.json. Direction-aware: fails on >60% regressions in the
# gated metrics (ns/op, allocs/op, host-ops/map up; bps-under-1pct
# down), never on improvements — generous because one iteration is
# timing-noisy; see cmd/benchdiff for the tight 15% default used
# against same-machine baselines. Wall time only gates benchmarks at or
# above benchdiff's 50ms ns-floor: below that, a single iteration
# measures timer overhead and co-tenant contention, not the code — the
# deterministic allocs/op and host-ops/map halves stay tight there.
bench-gate:
	GOMAXPROCS=4 go test -bench=. -benchmem -benchtime=1x -run XXX -timeout 1800s . \
		| go run ./cmd/benchjson > /tmp/coremap-bench.json
	go run ./cmd/benchdiff -current /tmp/coremap-bench.json -threshold 0.60

# Full-size reproduction of every table and figure (paper parameters).
experiments:
	go run ./cmd/experiments -exp all -csv results_csv

quick-experiments: smoke

cover:
	go test ./internal/... . -cover -timeout 1800s
