// Package hostif defines the hardware-abstraction boundary between the
// core-locating tool and the machine it measures.
//
// On real hardware, an implementation of Host would wrap
// sched_setaffinity-pinned worker threads, /dev/cpu/*/msr reads and writes
// (root only), and ordinary pointer loads/stores on mapped memory — the
// awkward thread-pinning and MSR plumbing the original tool needs. In this
// repository, internal/machine provides a simulated Xeon implementation, so
// the probe, locator and covert-channel code run unchanged against either.
package hostif

import "coremap/internal/msr"

// Host is one measurable CPU socket.
//
// CPU numbers are OS logical CPU IDs in [0, NumCPUs). The mapping from OS
// CPU IDs to physical tiles is exactly what the locating method recovers;
// implementations must not leak it through this interface.
type Host interface {
	// NumCPUs returns the number of online logical CPUs.
	NumCPUs() int

	// ReadMSR performs an RDMSR on the given CPU. Uncore registers are
	// socket-scoped and return the same value from every CPU; core-
	// scoped registers (thermal status) read the targeted core.
	ReadMSR(cpu int, a msr.Addr) (uint64, error)

	// WriteMSR performs a WRMSR on the given CPU.
	WriteMSR(cpu int, a msr.Addr, v uint64) error

	// Load executes a memory read of addr as if by a thread pinned to
	// cpu.
	Load(cpu int, addr uint64) error

	// TimedLoad is Load plus an rdtsc-style cycle measurement of the
	// access, the primitive latency-based locating baselines use.
	TimedLoad(cpu int, addr uint64) (cycles uint64, err error)

	// Store executes a memory write of addr as if by a thread pinned to
	// cpu.
	Store(cpu int, addr uint64) error

	// Flush evicts the cache line containing addr from cpu's private
	// caches (clflush).
	Flush(cpu int, addr uint64) error
}
