// Package hostif defines the hardware-abstraction boundary between the
// core-locating tool and the machine it measures.
//
// On real hardware, an implementation of Host would wrap
// sched_setaffinity-pinned worker threads, /dev/cpu/*/msr reads and writes
// (root only), and ordinary pointer loads/stores on mapped memory — the
// awkward thread-pinning and MSR plumbing the original tool needs. In this
// repository, internal/machine provides a simulated Xeon implementation, so
// the probe, locator and covert-channel code run unchanged against either.
package hostif

import (
	"context"

	"coremap/internal/cmerr"
	"coremap/internal/msr"
)

// Host is one measurable CPU socket.
//
// CPU numbers are OS logical CPU IDs in [0, NumCPUs). The mapping from OS
// CPU IDs to physical tiles is exactly what the locating method recovers;
// implementations must not leak it through this interface.
type Host interface {
	// NumCPUs returns the number of online logical CPUs.
	NumCPUs() int

	// ReadMSR performs an RDMSR on the given CPU. Uncore registers are
	// socket-scoped and return the same value from every CPU; core-
	// scoped registers (thermal status) read the targeted core.
	ReadMSR(cpu int, a msr.Addr) (uint64, error)

	// WriteMSR performs a WRMSR on the given CPU.
	WriteMSR(cpu int, a msr.Addr, v uint64) error

	// Load executes a memory read of addr as if by a thread pinned to
	// cpu.
	Load(cpu int, addr uint64) error

	// TimedLoad is Load plus an rdtsc-style cycle measurement of the
	// access, the primitive latency-based locating baselines use.
	TimedLoad(cpu int, addr uint64) (cycles uint64, err error)

	// Store executes a memory write of addr as if by a thread pinned to
	// cpu.
	Store(cpu int, addr uint64) error

	// Flush evicts the cache line containing addr from cpu's private
	// caches (clflush).
	Flush(cpu int, addr uint64) error
}

// HostCtx is the context-aware variant of Host: every operation takes a
// context as its first parameter and fails with a cmerr.Interrupted error
// once the context is cancelled. The measurement pipeline is written
// against this boundary; WithContext adapts any plain Host (the simulator,
// a /dev/cpu/*/msr implementation, a fault-injecting decorator) into it.
type HostCtx interface {
	NumCPUs() int
	ReadMSR(ctx context.Context, cpu int, a msr.Addr) (uint64, error)
	WriteMSR(ctx context.Context, cpu int, a msr.Addr, v uint64) error
	Load(ctx context.Context, cpu int, addr uint64) error
	TimedLoad(ctx context.Context, cpu int, addr uint64) (cycles uint64, err error)
	Store(ctx context.Context, cpu int, addr uint64) error
	Flush(ctx context.Context, cpu int, addr uint64) error
}

// ctxHost adapts a plain Host into a HostCtx by checking the context
// before every operation. Host operations are individually fast (an MSR
// access, one cache line touch), so a pre-operation check bounds the
// cancellation latency by a single hardware op — microseconds on real
// silicon, nanoseconds against the simulator.
type ctxHost struct{ h Host }

// WithContext returns a HostCtx view of h. Each operation first consults
// its context and returns a cmerr.Interrupted error (stage "host") when it
// is cancelled; otherwise it forwards to h unchanged.
func WithContext(h Host) HostCtx { return ctxHost{h} }

func (c ctxHost) NumCPUs() int { return c.h.NumCPUs() }

// check is the shared pre-operation gate.
func check(ctx context.Context) error { return cmerr.FromContext(ctx, "host") }

func (c ctxHost) ReadMSR(ctx context.Context, cpu int, a msr.Addr) (uint64, error) {
	if err := check(ctx); err != nil {
		return 0, err
	}
	return c.h.ReadMSR(cpu, a)
}

func (c ctxHost) WriteMSR(ctx context.Context, cpu int, a msr.Addr, v uint64) error {
	if err := check(ctx); err != nil {
		return err
	}
	return c.h.WriteMSR(cpu, a, v)
}

func (c ctxHost) Load(ctx context.Context, cpu int, addr uint64) error {
	if err := check(ctx); err != nil {
		return err
	}
	return c.h.Load(cpu, addr)
}

func (c ctxHost) TimedLoad(ctx context.Context, cpu int, addr uint64) (uint64, error) {
	if err := check(ctx); err != nil {
		return 0, err
	}
	return c.h.TimedLoad(cpu, addr)
}

func (c ctxHost) Store(ctx context.Context, cpu int, addr uint64) error {
	if err := check(ctx); err != nil {
		return err
	}
	return c.h.Store(cpu, addr)
}

func (c ctxHost) Flush(ctx context.Context, cpu int, addr uint64) error {
	if err := check(ctx); err != nil {
		return err
	}
	return c.h.Flush(cpu, addr)
}

// boundHost is a plain Host view of a (HostCtx, fixed context) pair.
type boundHost struct {
	ctx context.Context
	h   HostCtx
}

// Bind fixes a context into a Host: the returned Host checks ctx before
// every operation, so loops written against the plain interface become
// cancellable without threading a context through each call site. It is
// the inverse adapter of WithContext.
func Bind(ctx context.Context, h Host) Host {
	return boundHost{ctx: ctx, h: WithContext(h)}
}

func (b boundHost) NumCPUs() int { return b.h.NumCPUs() }
func (b boundHost) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	return b.h.ReadMSR(b.ctx, cpu, a)
}
func (b boundHost) WriteMSR(cpu int, a msr.Addr, v uint64) error {
	return b.h.WriteMSR(b.ctx, cpu, a, v)
}
func (b boundHost) Load(cpu int, addr uint64) error  { return b.h.Load(b.ctx, cpu, addr) }
func (b boundHost) Store(cpu int, addr uint64) error { return b.h.Store(b.ctx, cpu, addr) }
func (b boundHost) Flush(cpu int, addr uint64) error { return b.h.Flush(b.ctx, cpu, addr) }
func (b boundHost) TimedLoad(cpu int, addr uint64) (uint64, error) {
	return b.h.TimedLoad(b.ctx, cpu, addr)
}
