package hostif

import (
	"coremap/internal/msr"
	"coremap/internal/obs"
)

// countingHost is a transparent decorator that counts every host
// operation into an obs.Registry under host/ops/<op>. Counter updates
// are lock-free atomics and the decorator never alters arguments,
// results or errors, so wrapping a Host cannot perturb a measurement —
// only observe it.
type countingHost struct {
	h Host

	rdmsr, wrmsr, load, timedLoad, store, flush *obs.Counter
}

// Counting wraps h so that every operation increments the matching
// host/ops/* counter in reg. With a nil registry it returns h unchanged,
// keeping the uninstrumented path decorator-free.
func Counting(h Host, reg *obs.Registry) Host {
	if reg == nil {
		return h
	}
	return &countingHost{
		h:         h,
		rdmsr:     reg.Counter("host/ops/rdmsr"),
		wrmsr:     reg.Counter("host/ops/wrmsr"),
		load:      reg.Counter("host/ops/load"),
		timedLoad: reg.Counter("host/ops/timed_load"),
		store:     reg.Counter("host/ops/store"),
		flush:     reg.Counter("host/ops/flush"),
	}
}

func (c *countingHost) NumCPUs() int { return c.h.NumCPUs() }

func (c *countingHost) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	c.rdmsr.Inc()
	return c.h.ReadMSR(cpu, a)
}

func (c *countingHost) WriteMSR(cpu int, a msr.Addr, v uint64) error {
	c.wrmsr.Inc()
	return c.h.WriteMSR(cpu, a, v)
}

func (c *countingHost) Load(cpu int, addr uint64) error {
	c.load.Inc()
	return c.h.Load(cpu, addr)
}

func (c *countingHost) TimedLoad(cpu int, addr uint64) (uint64, error) {
	c.timedLoad.Inc()
	return c.h.TimedLoad(cpu, addr)
}

func (c *countingHost) Store(cpu int, addr uint64) error {
	c.store.Inc()
	return c.h.Store(cpu, addr)
}

func (c *countingHost) Flush(cpu int, addr uint64) error {
	c.flush.Inc()
	return c.h.Flush(cpu, addr)
}
