package hostif

import (
	"coremap/internal/msr"
	"coremap/internal/obs"
)

// countingHost is a transparent decorator that counts every host
// operation into an obs.Registry under host/ops/<op> and, when a clock is
// supplied, observes each operation's latency into the host/op_us{op=...}
// labeled histogram. Counter and histogram updates are lock-free atomics
// and the decorator never alters arguments, results or errors, so
// wrapping a Host cannot perturb a measurement — only observe it.
type countingHost struct {
	h     Host
	clock obs.Clock // nil: latency histograms disabled

	rdmsr, wrmsr, load, timedLoad, store, flush         *obs.Counter
	rdmsrUS, wrmsrUS, loadUS, timedUS, storeUS, flushUS *obs.Histogram
}

// Counting wraps h so that every operation increments the matching
// host/ops/* counter in reg, and — when clock is non-nil — lands its
// latency in host/op_us{op="..."}. With a nil registry it returns h
// unchanged, keeping the uninstrumented path decorator-free. Histogram
// handles are interned once here, so the per-op cost stays a few atomics.
func Counting(h Host, reg *obs.Registry, clock obs.Clock) Host {
	if reg == nil {
		return h
	}
	c := &countingHost{
		h:         h,
		clock:     clock,
		rdmsr:     reg.Counter("host/ops/rdmsr"),
		wrmsr:     reg.Counter("host/ops/wrmsr"),
		load:      reg.Counter("host/ops/load"),
		timedLoad: reg.Counter("host/ops/timed_load"),
		store:     reg.Counter("host/ops/store"),
		flush:     reg.Counter("host/ops/flush"),
	}
	if clock != nil {
		opUS := reg.HistogramVec("host/op_us", "op")
		c.rdmsrUS = opUS.With("rdmsr")
		c.wrmsrUS = opUS.With("wrmsr")
		c.loadUS = opUS.With("load")
		c.timedUS = opUS.With("timed_load")
		c.storeUS = opUS.With("store")
		c.flushUS = opUS.With("flush")
	}
	return c
}

// begin and done bracket one operation's latency measurement; both are
// no-ops when no clock was supplied.
func (c *countingHost) begin() (start int64) {
	if c.clock == nil {
		return 0
	}
	return c.clock.Now().UnixMicro()
}

func (c *countingHost) done(h *obs.Histogram, start int64) {
	if c.clock == nil {
		return
	}
	h.Observe(c.clock.Now().UnixMicro() - start)
}

func (c *countingHost) NumCPUs() int { return c.h.NumCPUs() }

func (c *countingHost) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	c.rdmsr.Inc()
	start := c.begin()
	v, err := c.h.ReadMSR(cpu, a)
	c.done(c.rdmsrUS, start)
	return v, err
}

func (c *countingHost) WriteMSR(cpu int, a msr.Addr, v uint64) error {
	c.wrmsr.Inc()
	start := c.begin()
	err := c.h.WriteMSR(cpu, a, v)
	c.done(c.wrmsrUS, start)
	return err
}

func (c *countingHost) Load(cpu int, addr uint64) error {
	c.load.Inc()
	start := c.begin()
	err := c.h.Load(cpu, addr)
	c.done(c.loadUS, start)
	return err
}

func (c *countingHost) TimedLoad(cpu int, addr uint64) (uint64, error) {
	c.timedLoad.Inc()
	start := c.begin()
	v, err := c.h.TimedLoad(cpu, addr)
	c.done(c.timedUS, start)
	return v, err
}

func (c *countingHost) Store(cpu int, addr uint64) error {
	c.store.Inc()
	start := c.begin()
	err := c.h.Store(cpu, addr)
	c.done(c.storeUS, start)
	return err
}

func (c *countingHost) Flush(cpu int, addr uint64) error {
	c.flush.Inc()
	start := c.begin()
	err := c.h.Flush(cpu, addr)
	c.done(c.flushUS, start)
	return err
}
