package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coremap/internal/mesh"
)

// fullTiles returns a core on every cell of a rows×cols grid.
func fullTiles(rows, cols int) []mesh.Coord {
	var tiles []mesh.Coord
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			tiles = append(tiles, mesh.Coord{Row: r, Col: c})
		}
	}
	return tiles
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Capacity: 0, GAmbient: 1},
		{Capacity: 1, GAmbient: 0},
		{Capacity: 0.001, GAmbient: 10, MaxStep: 1}, // unstable step
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, 2, 2, fullTiles(2, 2))
		}()
	}
}

func TestIdleEquilibrium(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensorNoise = 0
	s := New(cfg, 5, 6, fullTiles(5, 6))
	before := s.NodeTemp(mesh.Coord{Row: 2, Col: 3})
	s.Advance(20)
	after := s.NodeTemp(mesh.Coord{Row: 2, Col: 3})
	if math.Abs(after-before) > 0.05 {
		t.Errorf("idle die drifted %.3f°C over 20s; construction should settle it", after-before)
	}
	if before < 31 || before > 40 {
		t.Errorf("idle temperature %.1f°C implausible (paper idles ≈34°C)", before)
	}
}

// TestCalibratedGains pins the DC behaviour the covert-channel results
// depend on: a stressed core rises ≈14°C, a vertical neighbour sees a few
// °C, horizontal coupling is roughly half of vertical, and the signal
// decays steeply with hop count.
func TestCalibratedGains(t *testing.T) {
	cfg := DefaultConfig()
	tiles := fullTiles(5, 6)
	idx := func(r, c int) int { return r*6 + c }
	src := idx(1, 2)
	g := func(obs int) float64 { return SteadyStateGain(cfg, 5, 6, tiles, src, obs) }

	self := g(src)
	if self < 12 || self > 17 {
		t.Errorf("self gain %.1f°C outside [12,17]", self)
	}
	v1, v2 := g(idx(2, 2)), g(idx(3, 2))
	h1 := g(idx(1, 3))
	if v1 < 2 || v1 > 5 {
		t.Errorf("vertical 1-hop gain %.2f°C outside [2,5]", v1)
	}
	if h1 >= v1 {
		t.Errorf("horizontal gain %.2f must be below vertical %.2f (tiles are wide rectangles)", h1, v1)
	}
	if h1 < 0.3*v1 {
		t.Errorf("horizontal gain %.2f implausibly small vs vertical %.2f", h1, v1)
	}
	if v2 >= 0.5*v1 {
		t.Errorf("2-hop gain %.2f does not decay steeply from 1-hop %.2f", v2, v1)
	}
}

func TestTimeConstantSubSecond(t *testing.T) {
	cfg := DefaultConfig()
	tau := TimeConstant(cfg, 5, 6, fullTiles(5, 6), 8)
	if tau < 0.05 || tau > 1.0 {
		t.Errorf("thermal time constant %.3fs outside [0.05,1.0]; bit rates of 1-8 bps need this range", tau)
	}
}

func TestSetLoadRaisesAndLowersTemp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensorNoise = 0
	s := New(cfg, 3, 3, fullTiles(3, 3))
	c := mesh.Coord{Row: 1, Col: 1}
	idle := s.NodeTemp(c)
	s.SetLoad(4, true)
	s.Advance(5)
	hot := s.NodeTemp(c)
	if hot <= idle+5 {
		t.Errorf("active core rose only %.2f°C", hot-idle)
	}
	s.SetLoad(4, false)
	s.Advance(5)
	cooled := s.NodeTemp(c)
	if math.Abs(cooled-idle) > 0.5 {
		t.Errorf("core did not cool back to idle: %.2f vs %.2f", cooled, idle)
	}
}

func TestSensorNoiseAndDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	a := New(cfg, 2, 2, fullTiles(2, 2))
	b := New(cfg, 2, 2, fullTiles(2, 2))
	for i := 0; i < 10; i++ {
		if a.CoreTemp(0) != b.CoreTemp(0) {
			t.Fatal("same-seed simulators diverged")
		}
	}
	// Noise must actually vary the reads.
	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		seen[a.CoreTemp(1)] = true
	}
	if len(seen) < 2 {
		t.Error("sensor noise produced constant reads")
	}
}

func TestCoTenantsToggle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoTenantToggleHz = 50 // fast for test
	s := New(cfg, 3, 3, fullTiles(3, 3))
	s.SetCoTenants([]int{0, 8})
	toggled := false
	for i := 0; i < 200 && !toggled; i++ {
		s.Advance(0.05)
		toggled = s.Load(0) || s.Load(8)
	}
	if !toggled {
		t.Error("co-tenant cores never toggled load")
	}
}

// Property: temperatures stay bounded between ambient and a physical
// maximum for any load pattern (numerical stability + energy sanity).
func TestTemperatureBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensorNoise = 0
	f := func(loads []bool, steps uint8) bool {
		s := New(cfg, 3, 4, fullTiles(3, 4))
		for i, on := range loads {
			if i >= 12 {
				break
			}
			s.SetLoad(i, on)
		}
		s.Advance(float64(steps%50) * 0.1)
		maxPhysical := cfg.Ambient + float64(12)*(cfg.PowerActive+cfg.PowerTile)/cfg.GAmbient
		for r := 0; r < 3; r++ {
			for c := 0; c < 4; c++ {
				temp := s.NodeTemp(mesh.Coord{Row: r, Col: c})
				if temp < cfg.Ambient-0.01 || temp > maxPhysical || math.IsNaN(temp) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(30))}); err != nil {
		t.Error(err)
	}
}

// Property: heat propagation is monotone in distance along a column.
func TestGainMonotoneInDistance(t *testing.T) {
	cfg := DefaultConfig()
	tiles := fullTiles(5, 3)
	idx := func(r, c int) int { return r*3 + c }
	prev := math.Inf(1)
	for hop := 1; hop <= 4; hop++ {
		g := SteadyStateGain(cfg, 5, 3, tiles, idx(0, 1), idx(hop, 1))
		if g >= prev {
			t.Errorf("gain at hop %d (%.3f) not below hop %d (%.3f)", hop, g, hop-1, prev)
		}
		prev = g
	}
}
