// Package thermal simulates heat flow across a Xeon die as a lumped
// resistance-capacitance network over the tile grid — the physical
// substrate of the paper's inter-core thermal covert channel.
//
// Every tile is one thermal node with heat capacity C, a conductance to
// the heat-sink/ambient, and lateral conductances to its four neighbours.
// The lateral coupling is anisotropic: Xeon core tiles are horizontally
// long rectangles, so vertically adjacent tiles share the long edge and
// couple more strongly than horizontal neighbours — the effect behind the
// paper's observation that vertical 1-hop covert channels outperform
// horizontal ones (Fig. 7).
//
// Active cores dissipate extra power (the stress-ng stand-in); optional
// co-tenant noise randomly toggles load on uninvolved cores the way other
// cloud jobs would. Integration is explicit Euler with a stability-checked
// step. The simulator implements machine.ThermalSource, so receiver cores
// observe it through IA32_THERM_STATUS at 1 °C granularity like the real
// attack does.
package thermal

import (
	"fmt"
	"math"
	"math/rand"

	"coremap/internal/mesh"
)

// Config sets the physical parameters. The defaults are calibrated so a
// solo stressed core settles ≈14 °C above idle and a vertical neighbour
// sees ≈3-4 °C, matching the trace magnitudes in the paper's Fig. 6.
type Config struct {
	// Ambient is the heat-sink reference temperature in °C.
	Ambient float64
	// Capacity is the per-tile heat capacity in J/K.
	Capacity float64
	// GAmbient is the per-tile conductance to ambient in W/K.
	GAmbient float64
	// GVertical and GHorizontal are the lateral conductances between
	// vertically / horizontally adjacent tiles in W/K.
	GVertical, GHorizontal float64
	// PowerIdle and PowerActive are per-core dissipation in W.
	PowerIdle, PowerActive float64
	// PowerTile is the baseline uncore dissipation of every tile in W.
	PowerTile float64
	// SensorNoise is the standard deviation of Gaussian sensor noise in
	// °C, applied per temperature read.
	SensorNoise float64
	// CoTenantToggleHz is each co-tenant core's mean load-toggle rate;
	// the affected cores are designated with SetCoTenants.
	CoTenantToggleHz float64
	// MaxStep caps the Euler integration step in seconds (0 = 5 ms).
	MaxStep float64
	// Seed drives sensor noise and co-tenant behaviour.
	Seed int64
}

// DefaultConfig returns the calibrated parameter set.
func DefaultConfig() Config {
	return Config{
		Ambient:          30,
		Capacity:         0.065,
		GAmbient:         0.40,
		GVertical:        0.15,
		GHorizontal:      0.045,
		PowerIdle:        1.6,
		PowerActive:      12.4,
		PowerTile:        0.0,
		SensorNoise:      0.25,
		CoTenantToggleHz: 0.05,
		MaxStep:          0.005,
	}
}

// Simulator is the thermal state of one die.
type Simulator struct {
	cfg        Config
	rows, cols int
	temp       []float64
	power      []float64 // steady per-node power, recomputed on load change
	coreTiles  []mesh.Coord
	coreNode   []int // physical core → node index
	load       []bool
	coTenants  []int // physical core indices acting as background tenants
	rng        *rand.Rand
	now        float64
	scratch    []float64
}

// New builds a simulator for a die of rows×cols tiles whose physical cores
// sit at coreTiles (indexed by physical core number).
func New(cfg Config, rows, cols int, coreTiles []mesh.Coord) *Simulator {
	if cfg.Capacity <= 0 || cfg.GAmbient <= 0 {
		panic(fmt.Sprintf("thermal: non-physical config %+v", cfg))
	}
	if cfg.MaxStep == 0 {
		cfg.MaxStep = 0.005
	}
	// Explicit Euler stability: dt < C / (GAmbient + 2GV + 2GH).
	limit := cfg.Capacity / (cfg.GAmbient + 2*cfg.GVertical + 2*cfg.GHorizontal)
	if cfg.MaxStep >= limit {
		panic(fmt.Sprintf("thermal: step %.4gs exceeds stability limit %.4gs", cfg.MaxStep, limit))
	}
	s := &Simulator{
		cfg:       cfg,
		rows:      rows,
		cols:      cols,
		temp:      make([]float64, rows*cols),
		power:     make([]float64, rows*cols),
		coreTiles: append([]mesh.Coord(nil), coreTiles...),
		coreNode:  make([]int, len(coreTiles)),
		load:      make([]bool, len(coreTiles)),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	for i, c := range coreTiles {
		s.coreNode[i] = c.Row*cols + c.Col
	}
	// Start from the idle steady state, approximately: ambient plus the
	// idle dissipation spread through the ambient conductance.
	idle := cfg.Ambient + cfg.PowerIdle/cfg.GAmbient*0.8
	for i := range s.temp {
		s.temp[i] = idle
	}
	s.recomputePower()
	// Let the die settle to its true idle equilibrium.
	s.Advance(30)
	return s
}

// SetCoTenants designates background-tenant cores (by physical index) that
// toggle load randomly during Advance.
func (s *Simulator) SetCoTenants(cores []int) {
	s.coTenants = append([]int(nil), cores...)
}

// Now returns the simulated time in seconds since construction (excluding
// the settling transient).
func (s *Simulator) Now() float64 { return s.now }

// SetLoad switches a physical core between idle and active dissipation.
func (s *Simulator) SetLoad(phys int, active bool) {
	if s.load[phys] == active {
		return
	}
	s.load[phys] = active
	s.recomputePower()
}

// Load reports a core's current load state.
func (s *Simulator) Load(phys int) bool { return s.load[phys] }

func (s *Simulator) recomputePower() {
	for i := range s.power {
		s.power[i] = s.cfg.PowerTile
	}
	for phys, node := range s.coreNode {
		p := s.cfg.PowerIdle
		if s.load[phys] {
			p = s.cfg.PowerActive
		}
		s.power[node] += p
	}
}

// Advance integrates the network forward by the given number of seconds.
func (s *Simulator) Advance(seconds float64) {
	for seconds > 1e-12 {
		dt := s.cfg.MaxStep
		if dt > seconds {
			dt = seconds
		}
		s.step(dt)
		seconds -= dt
		s.now += dt
	}
}

func (s *Simulator) step(dt float64) {
	s.maybeToggleCoTenants(dt)
	cfg := &s.cfg
	if len(s.scratch) != len(s.temp) {
		s.scratch = make([]float64, len(s.temp))
	}
	next := s.scratch
	for r := 0; r < s.rows; r++ {
		for c := 0; c < s.cols; c++ {
			i := r*s.cols + c
			t := s.temp[i]
			q := s.power[i] - cfg.GAmbient*(t-cfg.Ambient)
			if r > 0 {
				q += cfg.GVertical * (s.temp[i-s.cols] - t)
			}
			if r < s.rows-1 {
				q += cfg.GVertical * (s.temp[i+s.cols] - t)
			}
			if c > 0 {
				q += cfg.GHorizontal * (s.temp[i-1] - t)
			}
			if c < s.cols-1 {
				q += cfg.GHorizontal * (s.temp[i+1] - t)
			}
			next[i] = t + dt*q/cfg.Capacity
		}
	}
	s.temp, s.scratch = next, s.temp
}

func (s *Simulator) maybeToggleCoTenants(dt float64) {
	if len(s.coTenants) == 0 || s.cfg.CoTenantToggleHz <= 0 {
		return
	}
	p := s.cfg.CoTenantToggleHz * dt
	for _, phys := range s.coTenants {
		if s.rng.Float64() < p {
			s.SetLoad(phys, !s.load[phys])
		}
	}
}

// NodeTemp returns the exact (noise-free) temperature of a tile node; it
// is ground truth for tests and calibration.
func (s *Simulator) NodeTemp(c mesh.Coord) float64 { return s.temp[c.Row*s.cols+c.Col] }

// CoreTemp implements machine.ThermalSource: the sensed temperature of a
// physical core including sensor noise. Quantization to 1 °C happens at
// the MSR layer.
func (s *Simulator) CoreTemp(phys int) float64 {
	t := s.temp[s.coreNode[phys]]
	if s.cfg.SensorNoise > 0 {
		t += s.rng.NormFloat64() * s.cfg.SensorNoise
	}
	return t
}

// SteadyStateGain estimates the DC temperature rise at observer when the
// source core toggles from idle to active, by running two settles. It is a
// calibration helper.
func SteadyStateGain(cfg Config, rows, cols int, coreTiles []mesh.Coord, source, observer int) float64 {
	cfg.SensorNoise = 0
	a := New(cfg, rows, cols, coreTiles)
	a.Advance(60)
	base := a.NodeTemp(coreTiles[observer])
	a.SetLoad(source, true)
	a.Advance(60)
	return a.NodeTemp(coreTiles[observer]) - base
}

// TimeConstant estimates the dominant thermal time constant of a node: the
// time to reach 63.2% of its step response when its own core turns active.
func TimeConstant(cfg Config, rows, cols int, coreTiles []mesh.Coord, core int) float64 {
	cfg.SensorNoise = 0
	s := New(cfg, rows, cols, coreTiles)
	s.Advance(60)
	start := s.NodeTemp(coreTiles[core])
	s.SetLoad(core, true)
	probeEnd := start
	// Find the settled value first.
	tmp := *s
	tmp.temp = append([]float64(nil), s.temp...)
	tmp.Advance(60)
	probeEnd = tmp.NodeTemp(coreTiles[core])
	target := start + (probeEnd-start)*(1-1/math.E)
	elapsed := 0.0
	for s.NodeTemp(coreTiles[core]) < target && elapsed < 60 {
		s.Advance(0.01)
		elapsed += 0.01
	}
	return elapsed
}
