package machine

import (
	"hash/fnv"
	"math/rand"
)

// Population samples CPU instances of one SKU the way a cloud survey
// encounters them: fusing-pattern indices are drawn from the SKU's
// calibrated categorical distribution, and every instance gets fresh
// per-instance secrets (PPIN, slice hash).
type Population struct {
	sku  *SKU
	cfg  Config
	rng  *rand.Rand
	cum  []float64
	next int64
}

// NewPopulation returns a sampler for sku seeded by seed. cfg.Seed is
// ignored; each instance derives its own seed from the population stream.
func NewPopulation(sku *SKU, seed int64, cfg Config) *Population {
	cum := make([]float64, len(sku.PatternWeights))
	var sum float64
	for i, w := range sku.PatternWeights {
		sum += w
		cum[i] = sum
	}
	if sum <= 0 {
		panic("machine: SKU has no positive pattern weights")
	}
	// Mix the SKU into the stream: real PPINs are globally unique, so two
	// surveys of different models must never produce instances sharing a
	// PPIN (the PPIN-keyed measurement cache depends on that).
	h := fnv.New64a()
	h.Write([]byte(sku.Name))
	return &Population{sku: sku, cfg: cfg,
		rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64()))), cum: cum}
}

// samplePattern draws a fusing-pattern index.
func (p *Population) samplePattern() int {
	x := p.rng.Float64() * p.cum[len(p.cum)-1]
	for i, c := range p.cum {
		if x < c {
			return i
		}
	}
	return len(p.cum) - 1
}

// Next returns the next sampled instance and its fusing-pattern index.
func (p *Population) Next() (*Machine, int) {
	idx := p.samplePattern()
	cfg := p.cfg
	cfg.Seed = p.rng.Int63() ^ p.next
	p.next++
	return Generate(p.sku, idx, cfg), idx
}
