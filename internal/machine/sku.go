// Package machine builds simulated Xeon CPU instances: a die (mesh grid,
// cache hierarchy, MSR spaces with PPIN, uncore PMON and thermal registers)
// plus the per-instance configuration the paper shows varies across chips —
// which core tiles are fused off, which keep only their LLC slice, how CHA
// IDs are numbered and how the firmware enumerates OS core IDs.
//
// A Machine implements hostif.Host; the probing pipeline never touches
// anything else. Ground-truth accessors (TrueCoreCoord, ...) exist for
// verification and scoring only.
package machine

import (
	"math/rand"

	"coremap/internal/mesh"
)

// SKU describes one CPU model: the die geometry shared by all instances of
// the model, the active-resource counts, and the population distribution of
// fusing patterns observed across instances.
type SKU struct {
	// Name is the marketing name, e.g. "Xeon Platinum 8259CL".
	Name string
	// Generation distinguishes enumeration conventions; Skylake also
	// covers Cascade Lake (same die and numbering rules).
	Generation Generation
	// Rows, Cols give the tile-grid dimensions.
	Rows, Cols int
	// IMC and IO are the grid positions of non-CHA tiles.
	IMC []mesh.Coord
	IO  []mesh.Coord
	// Cores is the number of active cores per instance.
	Cores int
	// LLCOnly is the number of tiles per instance whose core is fused
	// off but whose LLC slice and CHA stay active.
	LLCOnly int
	// PatternWeights is the categorical distribution over fusing-pattern
	// indices used when sampling a population of instances. Pattern i is
	// expanded deterministically from (SKU, i); the weights encode how
	// strongly the manufacturer's binning favours particular patterns,
	// calibrated so that surveys of 100 instances reproduce the paper's
	// Table II statistics.
	PatternWeights []float64
}

// Generation selects the ID-numbering conventions of a CPU family.
type Generation int

const (
	// Skylake covers the 1st/2nd generation Xeon Scalable dies: CHA IDs
	// run column-major over active-CHA tiles, and firmware enumerates OS
	// core IDs by CHA-ID-mod-4 groups in the order 0,2,1,3.
	Skylake Generation = iota
	// IceLake covers the 3rd generation: CHA IDs run row-major and OS
	// core IDs follow ascending CHA order.
	IceLake
)

// coreTilePositions returns the grid positions that can hold a core tile
// (everything that is not IMC or IO), in column-major order for Skylake and
// row-major order for Ice Lake — the same order CHA IDs are assigned in.
func (s *SKU) coreTilePositions() []mesh.Coord {
	blocked := make(map[mesh.Coord]bool)
	for _, c := range s.IMC {
		blocked[c] = true
	}
	for _, c := range s.IO {
		blocked[c] = true
	}
	var out []mesh.Coord
	if s.Generation == Skylake {
		for col := 0; col < s.Cols; col++ {
			for row := 0; row < s.Rows; row++ {
				if c := (mesh.Coord{Row: row, Col: col}); !blocked[c] {
					out = append(out, c)
				}
			}
		}
	} else {
		for row := 0; row < s.Rows; row++ {
			for col := 0; col < s.Cols; col++ {
				if c := (mesh.Coord{Row: row, Col: col}); !blocked[c] {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// NumCoreTiles returns the number of core-tile positions on the die.
func (s *SKU) NumCoreTiles() int { return len(s.coreTilePositions()) }

func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func uniformWeights(n int, w float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = w
	}
	return out
}

// The Skylake-SP XCC die: 5 rows × 6 columns with the two integrated
// memory controllers on the middle-left and middle-right, leaving 28 core
// tiles — the layout of the paper's Fig. 1.
func skxDie(name string, cores, llcOnly int, weights []float64) *SKU {
	return &SKU{
		Name:           name,
		Generation:     Skylake,
		Rows:           5,
		Cols:           6,
		IMC:            []mesh.Coord{{Row: 1, Col: 0}, {Row: 1, Col: 5}},
		Cores:          cores,
		LLCOnly:        llcOnly,
		PatternWeights: weights,
	}
}

// Built-in SKUs used in the paper's evaluation.
var (
	// SKU8124M is the 18-core Skylake part (AWS): 10 fully disabled
	// tiles, no LLC-only tiles. One dominant fusing pattern.
	SKU8124M = skxDie("Xeon Platinum 8124M", 18, 0,
		concat([]float64{53, 18, 5, 5}, uniformWeights(14, 1.36)))

	// SKU8175M is the 24-core Skylake part (AWS): 4 disabled tiles.
	SKU8175M = skxDie("Xeon Platinum 8175M", 24, 0,
		concat([]float64{52, 7, 7, 6}, uniformWeights(45, 0.62)))

	// SKU8259CL is the 24-core Cascade Lake part (AWS): 2 disabled
	// tiles and 2 LLC-only tiles, which is what makes its OS-core-ID to
	// CHA-ID mapping vary across instances.
	SKU8259CL = skxDie("Xeon Platinum 8259CL", 24, 2,
		concat([]float64{19, 5, 4, 4}, uniformWeights(100, 0.68)))

	// SKU6354 is the 18-core Ice Lake part (OCI): modeled on a 6-column
	// × 8-row die with four IMC tiles and four IO tiles (40 core-tile
	// positions), 8 LLC-only tiles and 14 fully disabled tiles.
	SKU6354 = &SKU{
		Name:       "Xeon 6354",
		Generation: IceLake,
		Rows:       8,
		Cols:       6,
		IMC: []mesh.Coord{
			{Row: 2, Col: 0}, {Row: 5, Col: 0},
			{Row: 2, Col: 5}, {Row: 5, Col: 5},
		},
		IO: []mesh.Coord{
			{Row: 0, Col: 0}, {Row: 0, Col: 5},
			{Row: 7, Col: 0}, {Row: 7, Col: 5},
		},
		Cores:          18,
		LLCOnly:        8,
		PatternWeights: concat([]float64{4, 2}, uniformWeights(10, 0.9)),
	}
)

// SKUs lists the built-in models.
var SKUs = []*SKU{SKU8124M, SKU8175M, SKU8259CL, SKU6354}

// FusingPattern fixes which core-tile positions of a die are fully
// disabled and which are LLC-only for one instance.
type FusingPattern struct {
	Disabled map[mesh.Coord]bool
	LLCOnly  map[mesh.Coord]bool
}

// Pattern expands fusing pattern index idx of the SKU deterministically.
//
// For the 8259CL-style SKUs with LLC-only tiles, most patterns keep the
// LLC-only tiles at two fixed die positions (the first-column bottom tile
// and the last tile in CHA order) while the fully disabled tiles move —
// this is the population structure that makes most instances share one of
// two OS-core-ID↔CHA-ID mappings (Table I) while still exhibiting dozens
// of distinct physical location patterns (Table II).
func (s *SKU) Pattern(idx int) FusingPattern {
	rng := rand.New(rand.NewSource(patternSeed(s.Name, idx)))
	pos := s.coreTilePositions()
	numDisabled := len(pos) - s.Cores - s.LLCOnly
	p := FusingPattern{
		Disabled: make(map[mesh.Coord]bool),
		LLCOnly:  make(map[mesh.Coord]bool),
	}

	avail := make([]mesh.Coord, len(pos))
	copy(avail, pos)
	take := func(i int) mesh.Coord {
		c := avail[i]
		avail = append(avail[:i], avail[i+1:]...)
		return c
	}

	if s.LLCOnly == 2 && s.Generation == Skylake && len(pos) > 8 {
		if idx%10 != 9 {
			// Canonical placement: early and last CHA positions.
			p.LLCOnly[pos[3]] = true
			p.LLCOnly[pos[len(pos)-1]] = true
			removeCoord(&avail, pos[3])
			removeCoord(&avail, pos[len(pos)-1])
		} else {
			for i := 0; i < s.LLCOnly; i++ {
				p.LLCOnly[take(rng.Intn(len(avail)))] = true
			}
		}
	} else {
		for i := 0; i < s.LLCOnly; i++ {
			p.LLCOnly[take(rng.Intn(len(avail)))] = true
		}
	}
	for i := 0; i < numDisabled; i++ {
		p.Disabled[take(rng.Intn(len(avail)))] = true
	}
	return p
}

func removeCoord(s *[]mesh.Coord, c mesh.Coord) {
	for i, v := range *s {
		if v == c {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}

// patternSeed derives a stable seed from the SKU name and pattern index.
func patternSeed(name string, idx int) int64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(name) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= uint64(idx) * 0x9E3779B97F4A7C15
	h *= 1099511628211
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}
