package machine

import (
	"fmt"
	"math/rand"

	"coremap/internal/cache"
	"coremap/internal/mesh"
	"coremap/internal/msr"
	"coremap/internal/pmon"
)

// TjMax is the thermal-throttling reference temperature reported through
// MSR_TEMPERATURE_TARGET; IA32_THERM_STATUS readouts count degrees below it.
const TjMax = 100

// ThermalSource provides the current temperature of each physical core.
// The thermal simulator implements it; when none is attached, thermal MSR
// reads report an idle die.
type ThermalSource interface {
	CoreTemp(phys int) float64
}

// ClockedSource is optionally implemented by thermal sources that track
// simulated time; the sensor-update-period defense needs it.
type ClockedSource interface {
	ThermalSource
	Now() float64
}

// Config tunes instance construction.
type Config struct {
	// Seed drives every per-instance secret: PPIN, slice hash, and
	// measurement noise.
	Seed int64
	// NoiseFlits, when positive, injects one background mesh packet of
	// that many flits between random tiles for roughly every
	// NoiseEveryOps cache operations, modeling OS and platform activity
	// that dirties the uncore counters.
	NoiseFlits uint64
	// NoiseEveryOps is the mean number of cache operations between
	// background packets (default 16 when NoiseFlits > 0).
	NoiseEveryOps int
	// Cache overrides the cache sizing; zero value selects
	// cache.DefaultConfig.
	Cache cache.Config
	// NoUncorePMON removes the CHA PMON register blocks entirely — the
	// firmware-lockdown defense against the mapping method (the paper
	// notes vendors could restrict the counters). The probe then fails
	// at discovery instead of producing a map.
	NoUncorePMON bool
}

// Machine is one simulated CPU instance. It implements hostif.Host.
type Machine struct {
	SKU     *SKU
	Grid    *mesh.Grid
	Pattern FusingPattern
	PPIN    uint64

	hier   *cache.Hierarchy
	spaces []*msr.Space // per OS CPU
	// boxes holds the socket-scoped CHA PMON boxes, indexed by CHA ID.
	// MSR accesses in the CHA block range dispatch to them directly
	// instead of through per-CPU msr.Space handler tables: registering
	// forwarding closures for every (CPU, CHA, offset) triple dominated
	// instance construction cost, and the handler-map lookups dominated
	// counter-sweep cost. Empty when the PMON blocks are fused off.
	boxes []*pmon.Box

	// Ground truth, used only by verification and the thermal layer.
	osToPhys   []int        // OS CPU → physical core index
	physToOS   []int        // inverse
	physTile   []mesh.Coord // physical core index → tile
	chaTile    []mesh.Coord // CHA ID → tile
	osTrueCHA  []int        // OS CPU → CHA ID of its tile (ground truth)
	numCHA     int
	ppinUnlock []uint64 // PPIN_CTL value per cpu

	thermal ThermalSource
	// Thermal-sensor defense knobs (paper Sec. IV): readout resolution
	// in °C (default 1) and minimum seconds between sensor updates
	// (default 0 = every read).
	thermalResolution int
	thermalPeriod     float64
	sensorLastTime    []float64
	sensorLastValue   []int

	noise         *rand.Rand
	noiseFlits    uint64
	noiseEvery    int
	opsSinceNoise int
}

// New builds an instance of sku with the given fusing pattern.
func New(sku *SKU, p FusingPattern, cfg Config) *Machine {
	grid := mesh.NewGrid(sku.Rows, sku.Cols)
	for _, c := range sku.IMC {
		grid.SetKind(c, mesh.KindIMC)
	}
	for _, c := range sku.IO {
		grid.SetKind(c, mesh.KindIO)
	}

	m := &Machine{SKU: sku, Grid: grid, Pattern: p}

	// Classify core-tile positions and assign CHA IDs in the SKU's
	// enumeration order, skipping fully disabled tiles.
	pos := sku.coreTilePositions()
	for _, c := range pos {
		switch {
		case p.Disabled[c]:
			grid.SetKind(c, mesh.KindDisabled)
		case p.LLCOnly[c]:
			grid.SetKind(c, mesh.KindLLCOnly)
		default:
			grid.SetKind(c, mesh.KindCore)
		}
	}
	for _, c := range pos {
		tl := grid.Tile(c)
		if !tl.Kind.HasCHA() {
			continue
		}
		tl.CHA = m.numCHA
		m.chaTile = append(m.chaTile, c)
		m.numCHA++
		if tl.Kind.HasCore() {
			m.physTile = append(m.physTile, c)
		}
	}
	if len(m.physTile) != sku.Cores {
		panic(fmt.Sprintf("machine: pattern yields %d cores, SKU %q wants %d",
			len(m.physTile), sku.Name, sku.Cores))
	}

	// Firmware OS-core-ID enumeration.
	coreCHAs := make([]int, len(m.physTile))
	for i, c := range m.physTile {
		coreCHAs[i] = grid.Tile(c).CHA
	}
	order := enumerateOS(sku.Generation, coreCHAs)
	m.osToPhys = make([]int, len(order))
	m.physToOS = make([]int, len(order))
	m.osTrueCHA = make([]int, len(order))
	for os, phys := range order {
		m.osToPhys[os] = phys
		m.physToOS[phys] = os
		m.osTrueCHA[os] = coreCHAs[phys]
	}

	// Secrets and noise.
	rng := rand.New(rand.NewSource(cfg.Seed))
	m.PPIN = rng.Uint64()
	m.noise = rand.New(rand.NewSource(cfg.Seed + 1))
	m.noiseFlits = cfg.NoiseFlits
	m.noiseEvery = cfg.NoiseEveryOps
	if m.noiseFlits > 0 && m.noiseEvery <= 0 {
		m.noiseEvery = 16
	}

	// Cache hierarchy over the active slices.
	ccfg := cfg.Cache
	if ccfg.L2Sets == 0 {
		ccfg = cache.DefaultConfig
	}
	m.hier = cache.New(ccfg, grid, m.physTile, m.chaTile, sku.IMC, cache.FNVHash(rng.Uint64(), m.numCHA))

	// Uncore PMON boxes are socket-scoped: every CPU sees the same boxes.
	// The CHA MSR block range is dispatched to them directly in
	// ReadMSR/WriteMSR rather than registered into each CPU's space.
	if !cfg.NoUncorePMON {
		m.boxes = make([]*pmon.Box, len(m.chaTile))
		for cha, c := range m.chaTile {
			m.boxes[cha] = pmon.NewBox(pmon.TileSource{Tile: grid.Tile(c)})
		}
	}
	m.ppinUnlock = make([]uint64, len(m.osToPhys))
	m.spaces = make([]*msr.Space, len(m.osToPhys))
	for cpu := range m.spaces {
		cpu := cpu
		s := msr.NewSpace()
		s.Register(msr.AddrPPINCtl, msr.Handler{
			Read:  func() (uint64, error) { return m.ppinUnlock[cpu], nil },
			Write: func(v uint64) error { m.ppinUnlock[cpu] = v; return nil },
		})
		s.Register(msr.AddrPPIN, msr.Handler{
			Read: func() (uint64, error) {
				if m.ppinUnlock[cpu]&0x2 == 0 {
					return 0, fmt.Errorf("rdmsr PPIN: %w", msr.ErrLocked)
				}
				return m.PPIN, nil
			},
		})
		s.RegisterValue(msr.AddrTemperatureTarget, msr.EncodeTemperatureTarget(TjMax))
		s.Register(msr.AddrIA32ThermStatus, msr.Handler{
			Read: func() (uint64, error) {
				return msr.EncodeThermStatus(m.thermReadout(cpu), true), nil
			},
		})
		m.spaces[cpu] = s
	}
	return m
}

// Generate builds the instance for fusing-pattern index idx of sku.
func Generate(sku *SKU, idx int, cfg Config) *Machine {
	return New(sku, sku.Pattern(idx), cfg)
}

// enumerateOS returns the firmware's OS-CPU ordering: a permutation p where
// p[os] = physical core index. coreCHAs maps physical core index → CHA ID.
func enumerateOS(gen Generation, coreCHAs []int) []int {
	idx := make([]int, len(coreCHAs))
	for i := range idx {
		idx[i] = i
	}
	switch gen {
	case Skylake:
		// Group cores by CHA-ID mod 4 in the order 0,2,1,3 (the APIC
		// enumeration artifact visible in the paper's Table I), CHA-
		// ascending within a group.
		groupRank := map[int]int{0: 0, 2: 1, 1: 2, 3: 3}
		sortBy(idx, func(a, b int) bool {
			ga, gb := groupRank[coreCHAs[a]%4], groupRank[coreCHAs[b]%4]
			if ga != gb {
				return ga < gb
			}
			return coreCHAs[a] < coreCHAs[b]
		})
	case IceLake:
		sortBy(idx, func(a, b int) bool { return coreCHAs[a] < coreCHAs[b] })
	}
	return idx
}

func sortBy(s []int, less func(a, b int) bool) {
	// Insertion sort: n ≤ 40 and it keeps the package free of sort's
	// interface boilerplate.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (m *Machine) coreTempOS(cpu int) float64 {
	if m.thermal == nil {
		return 35 // idle die
	}
	return m.thermal.CoreTemp(m.osToPhys[cpu])
}

// thermReadout computes the IA32_THERM_STATUS digital readout for a CPU,
// applying the configured resolution and update-period defenses.
func (m *Machine) thermReadout(cpu int) int {
	res := m.thermalResolution
	if res <= 0 {
		res = 1
	}
	quantize := func() int {
		t := m.coreTempOS(cpu)
		step := float64(res)
		return TjMax - int(t/step+0.5)*res
	}
	if m.thermalPeriod <= 0 {
		return quantize()
	}
	clocked, ok := m.thermal.(ClockedSource)
	if !ok {
		return quantize()
	}
	now := clocked.Now()
	if m.sensorLastTime == nil {
		m.sensorLastTime = make([]float64, len(m.spaces))
		m.sensorLastValue = make([]int, len(m.spaces))
		for i := range m.sensorLastTime {
			m.sensorLastTime[i] = -1
		}
	}
	if m.sensorLastTime[cpu] < 0 || now-m.sensorLastTime[cpu] >= m.thermalPeriod {
		m.sensorLastTime[cpu] = now
		m.sensorLastValue[cpu] = quantize()
	}
	return m.sensorLastValue[cpu]
}

// AttachThermal connects a thermal model; IA32_THERM_STATUS reads sample it.
func (m *Machine) AttachThermal(src ThermalSource) { m.thermal = src }

// SetThermalDefense configures the paper's suggested sensor-side defenses:
// coarser readout resolution (°C per step) and a minimum period between
// sensor updates. Zero values select the undefended defaults.
func (m *Machine) SetThermalDefense(resolutionC int, updatePeriod float64) {
	m.thermalResolution = resolutionC
	m.thermalPeriod = updatePeriod
	m.sensorLastTime = nil
}

// NumCHAs returns the number of active CHAs (ground truth; the probe
// discovers the same number by scanning PMON MSRs).
func (m *Machine) NumCHAs() int { return m.numCHA }

// --- hostif.Host implementation ---

// NumCPUs returns the number of online logical CPUs.
func (m *Machine) NumCPUs() int { return len(m.osToPhys) }

func (m *Machine) checkCPU(cpu int) error {
	if cpu < 0 || cpu >= len(m.spaces) {
		return fmt.Errorf("machine: cpu %d out of range [0,%d)", cpu, len(m.spaces))
	}
	return nil
}

// chaBox returns the index of the CHA PMON box whose MSR block contains a,
// or -1 when a is outside the exposed CHA range (including when the PMON
// blocks are fused off). Addresses past the last active CHA fall through to
// the per-CPU space and fault there, exactly as the discovery scan expects.
func (m *Machine) chaBox(a msr.Addr) int {
	if a < msr.ChaBase {
		return -1
	}
	i := int(a-msr.ChaBase) / int(msr.ChaStride)
	if i >= len(m.boxes) {
		return -1
	}
	return i
}

// ReadMSR implements hostif.Host.
func (m *Machine) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	if err := m.checkCPU(cpu); err != nil {
		return 0, err
	}
	if i := m.chaBox(a); i >= 0 {
		v, st := m.boxes[i].ReadReg((a - msr.ChaBase) % msr.ChaStride)
		if st != pmon.RegOK {
			return 0, fmt.Errorf("rdmsr %#x: %w", uint32(a), msr.ErrNoSuchMSR)
		}
		return v, nil
	}
	return m.spaces[cpu].Read(a)
}

// WriteMSR implements hostif.Host.
func (m *Machine) WriteMSR(cpu int, a msr.Addr, v uint64) error {
	if err := m.checkCPU(cpu); err != nil {
		return err
	}
	if i := m.chaBox(a); i >= 0 {
		switch m.boxes[i].WriteReg((a-msr.ChaBase)%msr.ChaStride, v) {
		case pmon.RegOK:
			return nil
		case pmon.RegReadOnly:
			return fmt.Errorf("wrmsr %#x: %w", uint32(a), msr.ErrReadOnly)
		default:
			return fmt.Errorf("wrmsr %#x: %w", uint32(a), msr.ErrNoSuchMSR)
		}
	}
	return m.spaces[cpu].Write(a, v)
}

// Load implements hostif.Host.
func (m *Machine) Load(cpu int, addr uint64) error {
	if err := m.checkCPU(cpu); err != nil {
		return err
	}
	m.hier.Load(m.osToPhys[cpu], addr)
	m.maybeNoise()
	return nil
}

// Access latencies in core cycles, in the range real Skylake-SP parts
// exhibit. Mesh hops add a few cycles each — the gradient latency-based
// locating leans on. The values are exported because an attacker can
// calibrate them with public microbenchmarks; only the *positions* are
// secret.
const (
	LatL2     = 14
	LatLLC    = 40
	LatMemory = 170
	LatPerHop = 3
)

// TimedLoad implements hostif.Host: a load plus an rdtsc-style cycle
// count, with measurement jitter.
func (m *Machine) TimedLoad(cpu int, addr uint64) (uint64, error) {
	if err := m.checkCPU(cpu); err != nil {
		return 0, err
	}
	level, hops := m.hier.Load(m.osToPhys[cpu], addr)
	m.maybeNoise()
	base := LatL2
	switch level {
	case cache.LevelLLC:
		base = LatLLC
	case cache.LevelMemory:
		base = LatMemory
	}
	cycles := base + LatPerHop*hops + m.noise.Intn(3) - 1
	if cycles < 1 {
		cycles = 1
	}
	return uint64(cycles), nil
}

// Store implements hostif.Host.
func (m *Machine) Store(cpu int, addr uint64) error {
	if err := m.checkCPU(cpu); err != nil {
		return err
	}
	m.hier.Store(m.osToPhys[cpu], addr)
	m.maybeNoise()
	return nil
}

// Flush implements hostif.Host.
func (m *Machine) Flush(cpu int, addr uint64) error {
	if err := m.checkCPU(cpu); err != nil {
		return err
	}
	m.hier.Flush(m.osToPhys[cpu], addr)
	m.maybeNoise()
	return nil
}

// maybeNoise injects background platform traffic between random tiles.
func (m *Machine) maybeNoise() {
	if m.noiseFlits == 0 {
		return
	}
	m.opsSinceNoise++
	if m.opsSinceNoise < m.noiseEvery {
		return
	}
	m.opsSinceNoise = 0
	src := mesh.Coord{Row: m.noise.Intn(m.Grid.Rows), Col: m.noise.Intn(m.Grid.Cols)}
	dst := mesh.Coord{Row: m.noise.Intn(m.Grid.Rows), Col: m.noise.Intn(m.Grid.Cols)}
	m.Grid.Inject(src, dst, m.noiseFlits)
}

// --- ground-truth accessors (verification/scoring/thermal only) ---

// TrueCoreCoord returns the tile of OS CPU cpu.
func (m *Machine) TrueCoreCoord(cpu int) mesh.Coord { return m.physTile[m.osToPhys[cpu]] }

// TrueCHACoord returns the tile of CHA cha.
func (m *Machine) TrueCHACoord(cha int) mesh.Coord { return m.chaTile[cha] }

// TrueOSToCHA returns the ground-truth OS-CPU → CHA-ID mapping.
func (m *Machine) TrueOSToCHA() []int {
	out := make([]int, len(m.osTrueCHA))
	copy(out, m.osTrueCHA)
	return out
}

// PhysOfOS returns the physical core index of an OS CPU (thermal layer).
func (m *Machine) PhysOfOS(cpu int) int { return m.osToPhys[cpu] }

// OSOfPhys returns the OS CPU of a physical core index.
func (m *Machine) OSOfPhys(phys int) int { return m.physToOS[phys] }

// TrueHomeCHA returns the CHA whose LLC slice homes the line containing
// addr — the secret slice hash's output, exposed for verification only.
func (m *Machine) TrueHomeCHA(addr uint64) int {
	c := m.chaTile[m.hier.SliceOf(addr)]
	return m.Grid.Tile(c).CHA
}

// PhysCoreTiles returns the tiles of all physical cores, indexed by
// physical core number (thermal layer).
func (m *Machine) PhysCoreTiles() []mesh.Coord {
	out := make([]mesh.Coord, len(m.physTile))
	copy(out, m.physTile)
	return out
}
