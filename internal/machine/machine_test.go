package machine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"coremap/internal/mesh"
	"coremap/internal/msr"
)

func TestSKUGeometry(t *testing.T) {
	for _, sku := range []*SKU{SKU8124M, SKU8175M, SKU8259CL} {
		if got := sku.NumCoreTiles(); got != 28 {
			t.Errorf("%s core tiles = %d, want 28", sku.Name, got)
		}
	}
	if got := SKU6354.NumCoreTiles(); got != 40 {
		t.Errorf("%s core tiles = %d, want 40", SKU6354.Name, got)
	}
}

func TestPatternCounts(t *testing.T) {
	for _, sku := range SKUs {
		for idx := 0; idx < 12; idx++ {
			p := sku.Pattern(idx)
			wantDisabled := sku.NumCoreTiles() - sku.Cores - sku.LLCOnly
			if len(p.Disabled) != wantDisabled {
				t.Errorf("%s pattern %d: %d disabled, want %d", sku.Name, idx, len(p.Disabled), wantDisabled)
			}
			if len(p.LLCOnly) != sku.LLCOnly {
				t.Errorf("%s pattern %d: %d llc-only, want %d", sku.Name, idx, len(p.LLCOnly), sku.LLCOnly)
			}
			for c := range p.Disabled {
				if p.LLCOnly[c] {
					t.Errorf("%s pattern %d: tile %v both disabled and llc-only", sku.Name, idx, c)
				}
			}
		}
	}
}

func TestPatternDeterministic(t *testing.T) {
	a, b := SKU8259CL.Pattern(5), SKU8259CL.Pattern(5)
	for c := range a.Disabled {
		if !b.Disabled[c] {
			t.Fatal("pattern expansion is not deterministic")
		}
	}
}

func TestCanonicalLLCOnlyPlacement(t *testing.T) {
	pos := SKU8259CL.coreTilePositions()
	for _, idx := range []int{0, 1, 2, 7} { // idx%10 != 9 → canonical
		p := SKU8259CL.Pattern(idx)
		if !p.LLCOnly[pos[3]] || !p.LLCOnly[pos[len(pos)-1]] {
			t.Errorf("pattern %d: LLC-only tiles not at canonical positions", idx)
		}
	}
}

func TestCHAIDsColumnMajorContiguous(t *testing.T) {
	m := Generate(SKU8259CL, 0, Config{Seed: 1})
	if m.NumCHAs() != 26 {
		t.Fatalf("8259CL CHAs = %d, want 26 (24 cores + 2 LLC-only)", m.NumCHAs())
	}
	// Walking the grid column-major over active-CHA tiles must meet CHA
	// IDs 0,1,2,...
	want := 0
	for col := 0; col < m.Grid.Cols; col++ {
		for row := 0; row < m.Grid.Rows; row++ {
			tl := m.Grid.Tile(mesh.Coord{Row: row, Col: col})
			if !tl.Kind.HasCHA() {
				continue
			}
			if tl.CHA != want {
				t.Fatalf("tile (%d,%d) CHA = %d, want %d", row, col, tl.CHA, want)
			}
			want++
		}
	}
}

// TestTableISkylakeMapping checks the paper's Table I rows that are
// invariant across instances: with no LLC-only tiles, the enumeration
// depends only on the CHA-ID set, so every 8124M and 8175M instance shares
// one mapping.
func TestTableISkylakeMapping(t *testing.T) {
	want8124 := []int{0, 4, 8, 12, 16, 2, 6, 10, 14, 1, 5, 9, 13, 17, 3, 7, 11, 15}
	want8175 := []int{0, 4, 8, 12, 16, 20, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 3, 7, 11, 15, 19, 23}
	for idx := 0; idx < 5; idx++ {
		m := Generate(SKU8124M, idx, Config{Seed: int64(idx)})
		got := m.TrueOSToCHA()
		for os, cha := range want8124 {
			if got[os] != cha {
				t.Fatalf("8124M pattern %d: OS %d → CHA %d, want %d", idx, os, got[os], cha)
			}
		}
		m = Generate(SKU8175M, idx, Config{Seed: int64(idx)})
		got = m.TrueOSToCHA()
		for os, cha := range want8175 {
			if got[os] != cha {
				t.Fatalf("8175M pattern %d: OS %d → CHA %d, want %d", idx, os, got[os], cha)
			}
		}
	}
}

// TestTableI8259CLDominantMapping: with the canonical LLC-only placement
// and no disabled tile in the first column-major positions, the 8259CL
// mapping must be the paper's most frequent row (LLC-only CHAs 3 and 25).
func TestTableI8259CLDominantMapping(t *testing.T) {
	pos := SKU8259CL.coreTilePositions()
	p := FusingPattern{
		Disabled: map[mesh.Coord]bool{pos[10]: true, pos[15]: true},
		LLCOnly:  map[mesh.Coord]bool{pos[3]: true, pos[len(pos)-1]: true},
	}
	m := New(SKU8259CL, p, Config{Seed: 1})
	want := []int{0, 4, 8, 12, 16, 20, 24, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 7, 11, 15, 19, 23}
	got := m.TrueOSToCHA()
	if len(got) != len(want) {
		t.Fatalf("mapping length %d, want %d", len(got), len(want))
	}
	for os := range want {
		if got[os] != want[os] {
			t.Fatalf("OS %d → CHA %d, want %d (full: %v)", os, got[os], want[os], got)
		}
	}
}

func TestIceLakeEnumerationAscending(t *testing.T) {
	m := Generate(SKU6354, 0, Config{Seed: 2})
	prev := -1
	for _, cha := range m.TrueOSToCHA() {
		if cha <= prev {
			t.Fatalf("Ice Lake OS enumeration not ascending by CHA: %v", m.TrueOSToCHA())
		}
		prev = cha
	}
	if m.NumCHAs() != 26 {
		t.Errorf("6354 CHAs = %d, want 26 (18 cores + 8 LLC-only)", m.NumCHAs())
	}
}

func TestPPINGatedByControl(t *testing.T) {
	m := Generate(SKU8124M, 0, Config{Seed: 3})
	if _, err := m.ReadMSR(0, msr.AddrPPIN); !errors.Is(err, msr.ErrLocked) {
		t.Errorf("PPIN read before unlock = %v, want ErrLocked", err)
	}
	if err := m.WriteMSR(0, msr.AddrPPINCtl, 0x2); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadMSR(0, msr.AddrPPIN)
	if err != nil || v != m.PPIN {
		t.Errorf("PPIN = %#x,%v; want %#x,nil", v, err, m.PPIN)
	}
	// The unlock is per-CPU.
	if _, err := m.ReadMSR(1, msr.AddrPPIN); !errors.Is(err, msr.ErrLocked) {
		t.Errorf("PPIN read on other cpu = %v, want ErrLocked", err)
	}
}

func TestUncoreMSRsSocketScoped(t *testing.T) {
	m := Generate(SKU8124M, 0, Config{Seed: 4})
	a := msr.ChaMSR(5, msr.ChaOffCtl0)
	if err := m.WriteMSR(0, a, 0xABCD); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadMSR(7, a)
	if err != nil || v != 0xABCD {
		t.Errorf("uncore read from cpu 7 = %#x,%v; want value written from cpu 0", v, err)
	}
}

func TestPMONAbsentForDisabledTiles(t *testing.T) {
	m := Generate(SKU8124M, 0, Config{Seed: 5})
	// CHAs 0..17 exist; CHA 18 must not.
	if _, err := m.ReadMSR(0, msr.ChaMSR(17, msr.ChaOffUnitCtl)); err != nil {
		t.Errorf("CHA 17 unit ctl unreadable: %v", err)
	}
	if _, err := m.ReadMSR(0, msr.ChaMSR(18, msr.ChaOffUnitCtl)); !errors.Is(err, msr.ErrNoSuchMSR) {
		t.Errorf("CHA 18 unit ctl = %v, want ErrNoSuchMSR", err)
	}
}

func TestThermalMSRDefaultsAndAttachment(t *testing.T) {
	m := Generate(SKU8124M, 0, Config{Seed: 6})
	v, err := m.ReadMSR(3, msr.AddrIA32ThermStatus)
	if err != nil {
		t.Fatal(err)
	}
	below, valid := msr.DecodeThermStatus(v)
	if !valid || TjMax-below != 35 {
		t.Errorf("default temp = %d°C, want 35", TjMax-below)
	}
	m.AttachThermal(fixedTemp(71.3))
	v, _ = m.ReadMSR(3, msr.AddrIA32ThermStatus)
	below, _ = msr.DecodeThermStatus(v)
	if TjMax-below != 71 {
		t.Errorf("attached temp readout = %d°C, want 71 (1°C quantization)", TjMax-below)
	}
	tt, _ := m.ReadMSR(3, msr.AddrTemperatureTarget)
	if msr.DecodeTemperatureTarget(tt) != TjMax {
		t.Errorf("TjMax MSR = %d, want %d", msr.DecodeTemperatureTarget(tt), TjMax)
	}
}

type fixedTemp float64

func (f fixedTemp) CoreTemp(int) float64 { return float64(f) }

func TestHostCacheOpsGenerateTraffic(t *testing.T) {
	m := Generate(SKU8175M, 0, Config{Seed: 7})
	if err := m.Store(0, 0x1000); err != nil {
		t.Fatal(err)
	}
	var lookups uint64
	m.Grid.Tiles(func(_ mesh.Coord, tl *mesh.Tile) { lookups += tl.Counters.LLCLookup })
	if lookups == 0 {
		t.Error("store charged no LLC lookups anywhere")
	}
	if err := m.Load(99, 0); err == nil {
		t.Error("Load on out-of-range cpu succeeded")
	}
	if err := m.Store(-1, 0); err == nil {
		t.Error("Store on out-of-range cpu succeeded")
	}
	if err := m.Flush(99, 0); err == nil {
		t.Error("Flush on out-of-range cpu succeeded")
	}
}

func TestNoiseInjection(t *testing.T) {
	m := Generate(SKU8175M, 0, Config{Seed: 8, NoiseFlits: 3, NoiseEveryOps: 2})
	for i := 0; i < 64; i++ {
		if err := m.Load(0, uint64(i)*64); err != nil {
			t.Fatal(err)
		}
	}
	// With noise every ~2 ops, some tiles not on any core0 route should
	// still have seen ingress; at minimum total ingress must exceed the
	// deterministic traffic of a noise-free twin.
	quiet := Generate(SKU8175M, 0, Config{Seed: 8})
	for i := 0; i < 64; i++ {
		if err := quiet.Load(0, uint64(i)*64); err != nil {
			t.Fatal(err)
		}
	}
	if total(m.Grid) <= total(quiet.Grid) {
		t.Error("noise injection produced no extra mesh traffic")
	}
}

func total(g *mesh.Grid) uint64 {
	var n uint64
	g.Tiles(func(_ mesh.Coord, tl *mesh.Tile) {
		for _, v := range tl.Counters.Ingress {
			n += v
		}
	})
	return n
}

func TestPopulationDeterministicAndDiverse(t *testing.T) {
	a := NewPopulation(SKU8259CL, 42, Config{})
	b := NewPopulation(SKU8259CL, 42, Config{})
	idxs := map[int]bool{}
	for i := 0; i < 30; i++ {
		ma, ia := a.Next()
		mb, ib := b.Next()
		if ia != ib || ma.PPIN != mb.PPIN {
			t.Fatal("same-seed populations diverged")
		}
		idxs[ia] = true
	}
	if len(idxs) < 3 {
		t.Errorf("30 draws hit only %d distinct patterns; distribution too narrow", len(idxs))
	}
}

func TestPopulationPPINsUnique(t *testing.T) {
	pop := NewPopulation(SKU8124M, 9, Config{})
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		m, _ := pop.Next()
		if seen[m.PPIN] {
			t.Fatal("duplicate PPIN in population")
		}
		seen[m.PPIN] = true
	}
}

// TestPopulationPPINsUniqueAcrossSKUs: PPINs identify physical chips, so
// same-seed surveys of different models must not share them. (PPIN-keyed
// caching in the probe layer depends on this.)
func TestPopulationPPINsUniqueAcrossSKUs(t *testing.T) {
	seen := map[uint64]string{}
	for _, sku := range SKUs {
		pop := NewPopulation(sku, 9, Config{})
		for i := 0; i < 25; i++ {
			m, _ := pop.Next()
			if other, dup := seen[m.PPIN]; dup {
				t.Fatalf("%s instance %d shares PPIN %#x with a %s instance", sku.Name, i, m.PPIN, other)
			}
			seen[m.PPIN] = sku.Name
		}
	}
}

// Property: OS↔physical maps are mutually inverse permutations and ground-
// truth CHA assignments agree with tile contents, for arbitrary patterns.
func TestEnumerationConsistency(t *testing.T) {
	f := func(idx uint8, seed int64) bool {
		sku := SKUs[int(idx)%len(SKUs)]
		m := Generate(sku, int(idx), Config{Seed: seed})
		for os := 0; os < m.NumCPUs(); os++ {
			if m.OSOfPhys(m.PhysOfOS(os)) != os {
				return false
			}
			tile := m.Grid.Tile(m.TrueCoreCoord(os))
			if tile.Kind != mesh.KindCore || tile.CHA != m.TrueOSToCHA()[os] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Error(err)
	}
}
