package machine

import (
	"testing"

	"coremap/internal/msr"
)

// clockedTemp is a ClockedSource whose temperature and clock the test
// drives directly.
type clockedTemp struct {
	temp float64
	now  float64
}

func (c *clockedTemp) CoreTemp(int) float64 { return c.temp }
func (c *clockedTemp) Now() float64         { return c.now }

func readTempC(t *testing.T, m *Machine, cpu int) int {
	t.Helper()
	v, err := m.ReadMSR(cpu, msr.AddrIA32ThermStatus)
	if err != nil {
		t.Fatal(err)
	}
	below, _ := msr.DecodeThermStatus(v)
	return TjMax - below
}

func TestThermalDefenseResolution(t *testing.T) {
	m := Generate(SKU8124M, 0, Config{Seed: 1})
	src := &clockedTemp{temp: 41.3}
	m.AttachThermal(src)

	if got := readTempC(t, m, 0); got != 41 {
		t.Errorf("1°C resolution readout = %d, want 41", got)
	}
	m.SetThermalDefense(4, 0)
	if got := readTempC(t, m, 0); got != 40 {
		t.Errorf("4°C resolution readout = %d, want 40", got)
	}
	src.temp = 43.0
	if got := readTempC(t, m, 0); got != 44 {
		t.Errorf("4°C resolution readout of 43.0 = %d, want 44 (nearest step)", got)
	}
	m.SetThermalDefense(0, 0)
	if got := readTempC(t, m, 0); got != 43 {
		t.Errorf("reset defense readout = %d, want 43", got)
	}
}

func TestThermalDefenseUpdatePeriod(t *testing.T) {
	m := Generate(SKU8124M, 0, Config{Seed: 2})
	src := &clockedTemp{temp: 40}
	m.AttachThermal(src)
	m.SetThermalDefense(1, 1.0)

	if got := readTempC(t, m, 3); got != 40 {
		t.Fatalf("first readout = %d, want 40", got)
	}
	// The sensor must hold its value until the period elapses.
	src.temp = 50
	src.now = 0.5
	if got := readTempC(t, m, 3); got != 40 {
		t.Errorf("readout before update period = %d, want held 40", got)
	}
	src.now = 1.1
	if got := readTempC(t, m, 3); got != 50 {
		t.Errorf("readout after update period = %d, want 50", got)
	}
	// Holding is per-CPU: another CPU's first read samples fresh.
	if got := readTempC(t, m, 4); got != 50 {
		t.Errorf("other cpu readout = %d, want 50", got)
	}
}

func TestNoUncorePMONDefense(t *testing.T) {
	m := Generate(SKU8259CL, 0, Config{Seed: 9, NoUncorePMON: true})
	// The CHA PMON space must be absent from every CPU's view...
	if _, err := m.ReadMSR(0, msr.ChaMSR(0, msr.ChaOffUnitCtl)); err == nil {
		t.Error("CHA PMON readable despite lockdown")
	}
	// ...while unrelated MSRs keep working.
	if _, err := m.ReadMSR(0, msr.AddrIA32ThermStatus); err != nil {
		t.Errorf("thermal MSR broken by PMON lockdown: %v", err)
	}
}

func TestThermalDefenseWithoutClockFallsBack(t *testing.T) {
	m := Generate(SKU8124M, 0, Config{Seed: 3})
	m.AttachThermal(fixedTemp(42))
	m.SetThermalDefense(1, 5.0) // period set, but source has no clock
	if got := readTempC(t, m, 0); got != 42 {
		t.Errorf("clockless source readout = %d, want live 42", got)
	}
}
