package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coremap/internal/mesh"
)

// testRig builds a 1×4 grid with cores at columns 0 and 3 and a single LLC
// slice at column 1, so every flow direction is distinguishable.
func testRig() (*mesh.Grid, *Hierarchy) {
	g := mesh.NewGrid(1, 4)
	coreTiles := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 3}}
	sliceTiles := []mesh.Coord{{Row: 0, Col: 1}}
	h := New(Config{L2Sets: 4, L2Ways: 2}, g, coreTiles, sliceTiles, nil,
		func(Addr) int { return 0 })
	return g, h
}

func totalIngress(g *mesh.Grid) uint64 {
	var n uint64
	g.Tiles(func(_ mesh.Coord, tl *mesh.Tile) {
		for _, v := range tl.Counters.Ingress {
			n += v
		}
	})
	return n
}

func lookupsAt(g *mesh.Grid, c mesh.Coord) uint64 {
	return g.Tile(c).Counters.LLCLookup
}

func TestFNVHashRangeAndDeterminism(t *testing.T) {
	h := FNVHash(42, 26)
	seen := make(map[int]bool)
	for i := 0; i < 4096; i++ {
		a := Addr(i) * LineSize
		s := h(a)
		if s < 0 || s >= 26 {
			t.Fatalf("hash(%#x) = %d out of range", a, s)
		}
		if s != h(a) {
			t.Fatalf("hash not deterministic at %#x", a)
		}
		seen[s] = true
	}
	if len(seen) != 26 {
		t.Errorf("hash covered %d/26 slices over 4096 lines", len(seen))
	}
	// Different seeds must give different mappings (the per-instance
	// secrecy the probe works around).
	h2 := FNVHash(43, 26)
	same := 0
	for i := 0; i < 1024; i++ {
		if h(Addr(i)*LineSize) == h2(Addr(i)*LineSize) {
			same++
		}
	}
	if same > 200 {
		t.Errorf("seeds 42 and 43 agree on %d/1024 lines; hash not instance-specific", same)
	}
}

func TestFNVHashIgnoresOffsetWithinLine(t *testing.T) {
	h := FNVHash(7, 11)
	if h(0x1000) != h(0x103F) {
		t.Error("addresses within one line hashed to different slices")
	}
}

func TestFNVHashPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FNVHash(seed, 0) did not panic")
		}
	}()
	FNVHash(1, 0)
}

func TestL2SetOf(t *testing.T) {
	_, h := testRig()
	if got := h.L2SetOf(0); got != 0 {
		t.Errorf("set of line 0 = %d, want 0", got)
	}
	if got := h.L2SetOf(3 * LineSize); got != 3 {
		t.Errorf("set of line 3 = %d, want 3", got)
	}
	if got := h.L2SetOf(4 * LineSize); got != 0 {
		t.Errorf("set of line 4 = %d, want 0 (wraps)", got)
	}
	if h.L2SetOf(LineSize) != h.L2SetOf(LineSize+17) {
		t.Error("offsets within a line landed in different sets")
	}
}

func TestLoadMissFillsFromHome(t *testing.T) {
	g, h := testRig()
	// Stage the line into the LLC: load it, then evict it from core 0's
	// 2-way L2 set with two same-set neighbours.
	h.Load(0, 0x1000)
	h.Load(0, 0x1000+4*LineSize)
	h.Load(0, 0x1000+8*LineSize)
	g.ResetCounters()
	h.Load(0, 0x1000) // LLC hit: fill home(0,1) → core0(0,0)
	if got := lookupsAt(g, mesh.Coord{Row: 0, Col: 1}); got == 0 {
		t.Error("fill charged no home lookups")
	}
	if got := totalIngress(g); got == 0 {
		t.Error("fill produced no mesh traffic")
	}
	var atCore uint64
	for _, v := range g.Tile(mesh.Coord{Row: 0, Col: 0}).Counters.Ingress {
		atCore += v
	}
	if atCore == 0 {
		t.Error("fill did not arrive at the requesting core tile")
	}
}

func TestIMCOfInterleavesLines(t *testing.T) {
	if IMCOf(0, 2) != 0 || IMCOf(LineSize, 2) != 1 || IMCOf(2*LineSize, 2) != 0 {
		t.Error("channel interleave must alternate consecutive lines")
	}
	if IMCOf(LineSize+17, 2) != IMCOf(LineSize, 2) {
		t.Error("interleave must be line-granular")
	}
	if IMCOf(123, 0) != 0 {
		t.Error("zero controllers must degrade to 0")
	}
}

func TestFirstTouchFetchesFromMemory(t *testing.T) {
	// With an IMC on the grid, an uncached line's data must arrive from
	// the controller tile, not the home slice.
	g := mesh.NewGrid(1, 4)
	coreTiles := []mesh.Coord{{Row: 0, Col: 0}}
	sliceTiles := []mesh.Coord{{Row: 0, Col: 1}}
	imcTiles := []mesh.Coord{{Row: 0, Col: 3}}
	h := New(Config{L2Sets: 4, L2Ways: 2}, g, coreTiles, sliceTiles, imcTiles,
		func(Addr) int { return 0 })
	h.Load(0, 0x2000)
	// IMC(0,3) → core(0,0): every tile on the way sees ingress; the
	// home-only path would leave (0,2) untouched.
	var atMid uint64
	for _, v := range g.Tile(mesh.Coord{Row: 0, Col: 2}).Counters.Ingress {
		atMid += v
	}
	if atMid == 0 {
		t.Error("memory fetch did not travel from the IMC tile")
	}
	// Second access within L2: silent; after L2 eviction: from home.
	g.ResetCounters()
	h.Load(0, 0x2000)
	if totalIngress(g) != 0 {
		t.Error("cached reload produced traffic")
	}
}

func TestFlushEvictsFromLLC(t *testing.T) {
	g := mesh.NewGrid(1, 4)
	h := New(Config{L2Sets: 4, L2Ways: 2}, g,
		[]mesh.Coord{{Row: 0, Col: 0}}, []mesh.Coord{{Row: 0, Col: 1}},
		[]mesh.Coord{{Row: 0, Col: 3}}, func(Addr) int { return 0 })
	h.Load(0, 0x3000)
	h.Flush(0, 0x3000)
	g.ResetCounters()
	h.Load(0, 0x3000)
	// Must fetch from the IMC again: tile (0,2) on the IMC→core path
	// sees ingress.
	var atMid uint64
	for _, v := range g.Tile(mesh.Coord{Row: 0, Col: 2}).Counters.Ingress {
		atMid += v
	}
	if atMid == 0 {
		t.Error("flush did not evict the line from the LLC")
	}
}

func TestLoadHitIsSilent(t *testing.T) {
	g, h := testRig()
	h.Load(0, 0x1000)
	g.ResetCounters()
	h.Load(0, 0x1000)
	if n := totalIngress(g); n != 0 {
		t.Errorf("L2 hit produced %d ingress cycles, want 0", n)
	}
	if got := lookupsAt(g, mesh.Coord{Row: 0, Col: 1}); got != 0 {
		t.Errorf("L2 hit charged %d lookups, want 0", got)
	}
}

func TestStoreUpgradeHasNoDataTraffic(t *testing.T) {
	g, h := testRig()
	h.Load(0, 0x1000) // shared copy in core 0
	g.ResetCounters()
	h.Store(0, 0x1000) // upgrade in place
	if n := totalIngress(g); n != 0 {
		t.Errorf("upgrade produced %d ingress cycles, want 0", n)
	}
	if got := lookupsAt(g, mesh.Coord{Row: 0, Col: 1}); got != 1 {
		t.Errorf("upgrade charged %d lookups, want 1 directory lookup", got)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	_, h := testRig()
	h.Load(0, 0x1000)
	h.Load(1, 0x1000)
	h.Store(0, 0x1000)
	if h.inL2(1, lineOf(0x1000)) {
		t.Error("store by core 0 left a stale copy in core 1's L2")
	}
}

func TestReadForwardsFromModifiedOwner(t *testing.T) {
	g, h := testRig()
	h.Store(0, 0x1000) // core 0 owns modified
	g.ResetCounters()
	h.Load(1, 0x1000)
	// Data must come from core 0's tile (0,0): the slice tile (0,1) and
	// core-1 tile (0,3) see horizontal ingress; the home does not *send*
	// (it only receives the write-back).
	var atC1 uint64
	for _, v := range g.Tile(mesh.Coord{Row: 0, Col: 3}).Counters.Ingress {
		atC1 += v
	}
	if atC1 == 0 {
		t.Error("forwarded data never arrived at the reader tile")
	}
	if got := lookupsAt(g, mesh.Coord{Row: 0, Col: 1}); got != 1 {
		t.Errorf("forward charged %d home lookups, want 1", got)
	}
}

// TestPaperTrafficLoopIsDirectional verifies the property the paper's
// inter-tile traffic generator depends on: with a line homed at the sink
// tile, a steady source-write / sink-read loop moves data exclusively from
// the source tile toward the sink tile.
func TestPaperTrafficLoopIsDirectional(t *testing.T) {
	g := mesh.NewGrid(1, 4)
	coreTiles := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 3}}
	sliceTiles := []mesh.Coord{{Row: 0, Col: 3}} // homed at the sink tile
	h := New(Config{L2Sets: 4, L2Ways: 2}, g, coreTiles, sliceTiles, nil,
		func(Addr) int { return 0 })

	const src, sink = 0, 1
	// Warm up, then measure.
	for i := 0; i < 3; i++ {
		h.Store(src, 0x2000)
		h.Load(sink, 0x2000)
	}
	g.ResetCounters()
	for i := 0; i < 10; i++ {
		h.Store(src, 0x2000)
		h.Load(sink, 0x2000)
	}
	// Eastbound traffic passes tiles (0,1)..(0,3); westbound would pass
	// (0,2)..(0,0). Tile (0,0) must therefore see nothing.
	var atSrc uint64
	for _, v := range g.Tile(mesh.Coord{Row: 0, Col: 0}).Counters.Ingress {
		atSrc += v
	}
	if atSrc != 0 {
		t.Errorf("steady-state loop sent %d ingress cycles back to the source tile, want 0", atSrc)
	}
	var atSink uint64
	for _, v := range g.Tile(mesh.Coord{Row: 0, Col: 3}).Counters.Ingress {
		atSink += v
	}
	if atSink == 0 {
		t.Error("steady-state loop moved no data to the sink tile")
	}
}

func TestSameTileTrafficInvisible(t *testing.T) {
	// A core co-located with the home slice must generate no mesh
	// ingress anywhere — the signal step 1 of the mapping method uses.
	g := mesh.NewGrid(1, 4)
	coreTiles := []mesh.Coord{{Row: 0, Col: 2}}
	sliceTiles := []mesh.Coord{{Row: 0, Col: 2}}
	h := New(Config{L2Sets: 2, L2Ways: 2}, g, coreTiles, sliceTiles, nil,
		func(Addr) int { return 0 })
	// Thrash the L2 set: misses, fills, evictions, write-backs — all
	// tile-internal.
	for i := 0; i < 20; i++ {
		h.Store(0, Addr(i%3)*LineSize*2) // same set (2 sets, stride 2)
	}
	if n := totalIngress(g); n != 0 {
		t.Errorf("co-located traffic produced %d ingress cycles, want 0", n)
	}
	if lk := lookupsAt(g, mesh.Coord{Row: 0, Col: 2}); lk == 0 {
		t.Error("co-located traffic charged no LLC lookups; lookups must still count")
	}
}

func TestEvictionWritesBackDirtyVictim(t *testing.T) {
	g, h := testRig()
	// Fill set 0 beyond its 2 ways with dirty lines from core 0.
	stride := Addr(4 * LineSize) // same set every time (4 sets)
	h.Store(0, 0*stride)
	h.Store(0, 1*stride)
	g.ResetCounters()
	h.Store(0, 2*stride) // evicts line 0, dirty → write-back
	// The write-back travels core0(0,0) → home(0,1): ingress at (0,1).
	var atHome uint64
	for _, v := range g.Tile(mesh.Coord{Row: 0, Col: 1}).Counters.Ingress {
		atHome += v
	}
	if atHome == 0 {
		t.Error("dirty eviction produced no write-back traffic to the home tile")
	}
	if h.inL2(0, 0) {
		t.Error("victim line still resident after eviction")
	}
}

func TestFlushWritesBackAndDrops(t *testing.T) {
	g, h := testRig()
	h.Store(0, 0x3000)
	g.ResetCounters()
	h.Flush(0, 0x3000)
	if h.inL2(0, lineOf(0x3000)) {
		t.Error("line still in L2 after flush")
	}
	if n := totalIngress(g); n == 0 {
		t.Error("flushing a dirty line produced no write-back traffic")
	}
	g.ResetCounters()
	h.Flush(0, 0x3000) // already gone: no-op
	if n := totalIngress(g); n != 0 {
		t.Errorf("flushing an absent line produced %d ingress cycles", n)
	}
}

func TestCheckCorePanics(t *testing.T) {
	_, h := testRig()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core did not panic")
		}
	}()
	h.Load(5, 0)
}

// Property: after any operation sequence, every line's sharer set matches
// actual L2 residency, and a modified owner is always a sharer.
func TestCoherenceInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		g := mesh.NewGrid(2, 3)
		coreTiles := []mesh.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 2}, {Row: 0, Col: 2}}
		sliceTiles := []mesh.Coord{{Row: 0, Col: 1}, {Row: 1, Col: 1}}
		h := New(Config{L2Sets: 2, L2Ways: 2}, g, coreTiles, sliceTiles, nil, FNVHash(9, 2))
		for _, op := range ops {
			core := int(op) % 3
			line := Addr((op>>2)%8) * LineSize
			switch (op >> 5) % 3 {
			case 0:
				h.Load(core, line)
			case 1:
				h.Store(core, line)
			case 2:
				h.Flush(core, line)
			}
		}
		for line, st := range h.lines {
			for core := 0; core < 3; core++ {
				if st.hasSharer(core) != h.inL2(core, line) {
					return false
				}
			}
			if st.owner >= 0 && !st.hasSharer(st.owner) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

// Property: L2 sets never exceed their way count.
func TestL2CapacityInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		g := mesh.NewGrid(1, 3)
		h := New(Config{L2Sets: 2, L2Ways: 2}, g,
			[]mesh.Coord{{Row: 0, Col: 0}}, []mesh.Coord{{Row: 0, Col: 2}}, nil,
			func(Addr) int { return 0 })
		for _, op := range ops {
			h.Store(0, Addr(op%16)*LineSize)
		}
		for _, set := range h.l2[0] {
			if len(set.lines) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}
