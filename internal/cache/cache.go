// Package cache models the cache hierarchy of a mesh-based Xeon closely
// enough for the core-locating technique to work against it:
//
//   - each core has a private, set-associative L2;
//   - the last-level cache is distributed into per-tile slices, and the
//     slice a physical line address maps to is selected by an undisclosed
//     hash (per-instance), exactly the property that forces the probe to
//     discover line homes empirically via LLC-lookup counters;
//   - coherence data movements (fills, forwards, write-backs) inject
//     packets into the mesh and charge LLC-lookup events at the home CHA.
//
// The protocol is a deliberately small MSI-with-forwarding model. The only
// flows that matter to the paper are: an L2 miss charges a lookup at the
// line's home slice; cache-line data rides the BL mesh rings between the
// tiles involved; and a core that re-writes a line it already shares
// upgrades in place without data traffic — which is what makes the paper's
// source-write/sink-read loop produce sustained source→sink data movement.
package cache

import (
	"fmt"
	"math/bits"

	"coremap/internal/mesh"
)

// LineSize is the cache-line size in bytes.
const LineSize = 64

// Addr is a physical byte address. All cache operations act on the
// containing naturally-aligned 64-byte line.
type Addr = uint64

// lineOf returns the line-aligned address containing a.
func lineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// SliceHash maps a line address to an LLC slice index. Real hardware uses
// an undisclosed hash of the physical address; the probe must never invert
// it analytically, only observe its effect through PMON counters.
type SliceHash func(line Addr) int

// FNVHash returns a per-instance secret slice hash over n slices, seeded so
// that different CPU instances use different mappings.
func FNVHash(seed uint64, n int) SliceHash {
	if n <= 0 {
		panic("cache: slice count must be positive")
	}
	return func(line Addr) int {
		const (
			offset = 14695981039346656037
			prime  = 1099511628211
		)
		h := uint64(offset) ^ seed
		x := lineOf(line)
		for i := 0; i < 8; i++ {
			h ^= x & 0xFF
			h *= prime
			x >>= 8
		}
		return int(h % uint64(n))
	}
}

// Config sizes the hierarchy. The defaults are scaled down from real
// hardware (1024×16 L2) to keep simulated probing cheap; the locating
// method only depends on L2Ways being the eviction-set threshold.
type Config struct {
	L2Sets int
	L2Ways int
}

// DefaultConfig is the configuration used by the simulated SKUs.
var DefaultConfig = Config{L2Sets: 64, L2Ways: 8}

// IMCOf returns which integrated memory controller serves a line under
// the documented channel interleaving (consecutive lines alternate across
// controllers). Unlike the LLC slice hash this rule is public, which is
// what makes memory-anchored locating possible.
func IMCOf(line Addr, numIMC int) int {
	if numIMC <= 0 {
		return 0
	}
	return int(lineOf(line) / LineSize % uint64(numIMC))
}

// maxCores bounds the number of physical cores a Hierarchy can model; the
// sharer set of a line is a uint64 bitmask indexed by core.
const maxCores = 64

// lineState tracks the global coherence state of one line.
type lineState struct {
	sharers uint64 // bitmask of cores with a valid L2 copy
	owner   int    // core holding the line modified, or -1
	// home is the line's LLC slice index, computed once at first touch:
	// the slice hash is fixed per instance, and hashing on every protocol
	// action showed up in simulator profiles.
	home int
	// cached reports whether the LLC currently holds the line; a miss
	// on an uncached line fetches from memory through its IMC.
	cached bool
}

func (st *lineState) hasSharer(core int) bool { return st.sharers&(1<<uint(core)) != 0 }
func (st *lineState) addSharer(core int)      { st.sharers |= 1 << uint(core) }
func (st *lineState) dropSharer(core int)     { st.sharers &^= 1 << uint(core) }

// l2set is one associative set, most recently used last.
type l2set struct {
	lines []Addr
}

// Hierarchy is the cache system of one simulated socket.
type Hierarchy struct {
	cfg       Config
	grid      *mesh.Grid
	coreTile  []mesh.Coord // physical core index → tile
	sliceTile []mesh.Coord // LLC slice index → tile
	imcTile   []mesh.Coord // IMC index → tile
	hash      SliceHash
	l2        [][]l2set // [core][set]
	lines     map[Addr]*lineState
	// stateSlab is the current allocation chunk for lineStates; states are
	// handed out as interior pointers so the map costs one allocation per
	// chunk instead of one per line.
	stateSlab []lineState
}

// New builds a hierarchy over grid. coreTile maps each physical core index
// to its tile; sliceTile maps each LLC slice index to its tile (core tiles
// and LLC-only tiles both carry slices); imcTile maps each memory
// controller to its tile (may be empty, in which case memory fetches
// produce no mesh traffic). hash is the secret slice hash and must cover
// len(sliceTile) slices.
func New(cfg Config, grid *mesh.Grid, coreTile, sliceTile, imcTile []mesh.Coord, hash SliceHash) *Hierarchy {
	if cfg.L2Sets <= 0 || cfg.L2Ways <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	if len(coreTile) > maxCores {
		panic(fmt.Sprintf("cache: %d cores exceeds the %d-core sharer-mask limit", len(coreTile), maxCores))
	}
	h := &Hierarchy{
		cfg:       cfg,
		grid:      grid,
		coreTile:  coreTile,
		sliceTile: sliceTile,
		imcTile:   imcTile,
		hash:      hash,
		l2:        make([][]l2set, len(coreTile)),
		lines:     make(map[Addr]*lineState),
	}
	for c := range h.l2 {
		h.l2[c] = make([]l2set, cfg.L2Sets)
		// One backing array per core, carved into fixed-capacity windows,
		// so MRU reordering and insertion never reallocate.
		backing := make([]Addr, cfg.L2Sets*cfg.L2Ways)
		for s := range h.l2[c] {
			h.l2[c][s].lines = backing[s*cfg.L2Ways : s*cfg.L2Ways : (s+1)*cfg.L2Ways]
		}
	}
	return h
}

// fetchFromMemory moves a line from its memory controller to the
// requesting core's tile (the direct-to-core data return of the mesh
// uncore), marks it LLC-resident and returns the hop distance.
func (h *Hierarchy) fetchFromMemory(st *lineState, line Addr, dst mesh.Coord) int {
	st.cached = true
	if len(h.imcTile) == 0 {
		return 0
	}
	return h.transfer(h.imcTile[IMCOf(line, len(h.imcTile))], dst)
}

// NumSlices returns the number of LLC slices.
func (h *Hierarchy) NumSlices() int { return len(sliceTiles(h)) }

func sliceTiles(h *Hierarchy) []mesh.Coord { return h.sliceTile }

// Config returns the hierarchy sizing.
func (h *Hierarchy) Config() Config { return h.cfg }

// SliceOf returns the LLC slice index a line maps to. This is ground truth
// used by tests and the machine layer; the probing code must not call it.
func (h *Hierarchy) SliceOf(a Addr) int { return h.hash(lineOf(a)) }

// L2SetOf returns the L2 set index of a line.
func (h *Hierarchy) L2SetOf(a Addr) int {
	return int(lineOf(a) / LineSize % uint64(h.cfg.L2Sets))
}

func (h *Hierarchy) state(line Addr) *lineState {
	st, ok := h.lines[line]
	if !ok {
		if len(h.stateSlab) == cap(h.stateSlab) {
			h.stateSlab = make([]lineState, 0, 1024)
		}
		h.stateSlab = append(h.stateSlab, lineState{owner: -1, home: h.hash(line)})
		st = &h.stateSlab[len(h.stateSlab)-1]
		h.lines[line] = st
	}
	return st
}

func (h *Hierarchy) homeTile(st *lineState) mesh.Coord { return h.sliceTile[st.home] }

// transfer moves one cache line of data across the mesh BL rings and
// returns the hop distance it traveled (the latency-relevant quantity).
func (h *Hierarchy) transfer(from, to mesh.Coord) int {
	// One cache line occupies the data ring for a handful of cycles; the
	// exact flit count only scales counters uniformly.
	const flitsPerLine = 4
	h.grid.Inject(from, to, flitsPerLine)
	return mesh.Distance(from, to)
}

// message sends one protocol flit (request, snoop, invalidation or ack)
// on the given ring; protocol traffic never rides the monitored BL ring.
func (h *Hierarchy) message(ring mesh.Ring, from, to mesh.Coord) {
	h.grid.InjectOn(ring, from, to, 1)
}

// Access latency levels, reported as (level, hops) by the timed accessors.
// The machine layer converts them to core cycles.
type Level int

const (
	// LevelL2 is a private-cache hit.
	LevelL2 Level = iota
	// LevelLLC is a fill from an LLC slice or a forward from another
	// core's cache.
	LevelLLC
	// LevelMemory is a DRAM access through an IMC.
	LevelMemory
)

func (h *Hierarchy) inL2(core int, line Addr) bool {
	set := &h.l2[core][h.L2SetOf(line)]
	for _, l := range set.lines {
		if l == line {
			return true
		}
	}
	return false
}

// touchL2 marks line most-recently-used in core's L2, inserting it if
// absent and returning the evicted victim line, if any. The MRU rotate and
// the eviction shift both happen in place: every set owns a fixed-capacity
// window of its core's backing array, so no path here allocates.
func (h *Hierarchy) touchL2(core int, line Addr) (victim Addr, evicted bool) {
	set := &h.l2[core][h.L2SetOf(line)]
	ls := set.lines
	for i, l := range ls {
		if l == line {
			copy(ls[i:], ls[i+1:])
			ls[len(ls)-1] = line
			return 0, false
		}
	}
	if len(ls) == h.cfg.L2Ways {
		victim = ls[0]
		copy(ls, ls[1:])
		ls[len(ls)-1] = line
		return victim, true
	}
	set.lines = append(ls, line)
	return 0, false
}

func (h *Hierarchy) dropL2(core int, line Addr) {
	set := &h.l2[core][h.L2SetOf(line)]
	for i, l := range set.lines {
		if l == line {
			set.lines = append(set.lines[:i], set.lines[i+1:]...)
			return
		}
	}
}

func (h *Hierarchy) checkCore(core int) {
	if core < 0 || core >= len(h.coreTile) {
		panic(fmt.Sprintf("cache: core %d out of range [0,%d)", core, len(h.coreTile)))
	}
}

// evict removes a victim line from core's L2, writing dirty data back to
// its home slice.
func (h *Hierarchy) evict(core int, victim Addr) {
	st := h.state(victim)
	st.dropSharer(core)
	home := h.homeTile(st)
	h.grid.LookupLLC(home, 1)
	if st.owner == core {
		st.owner = -1
		h.message(mesh.RingAD, h.coreTile[core], home) // write-back request
		h.transfer(h.coreTile[core], home)
		h.message(mesh.RingAK, home, h.coreTile[core]) // completion ack
	}
}

// invalidate drops a sharer's copy: an invalidation rides the IV ring to
// the sharer, whose acknowledgement returns on the AK ring.
func (h *Hierarchy) invalidate(home mesh.Coord, core int, line Addr) {
	h.dropL2(core, line)
	tile := h.coreTile[core]
	h.message(mesh.RingIV, home, tile)
	h.message(mesh.RingAK, tile, home)
}

// invalidateOthers invalidates every sharer of line other than keep, in
// ascending core order.
func (h *Hierarchy) invalidateOthers(home mesh.Coord, st *lineState, keep int, line Addr) {
	for others := st.sharers &^ (1 << uint(keep)); others != 0; others &= others - 1 {
		other := bits.TrailingZeros64(others)
		h.invalidate(home, other, line)
		st.dropSharer(other)
	}
}

// Load performs a read of a by physical core. Misses charge an LLC lookup
// at the home slice and move the line's data across the mesh. The returned
// level and hop count describe the critical-path data source, from which
// the machine layer derives an access latency.
func (h *Hierarchy) Load(core int, a Addr) (Level, int) {
	h.checkCore(core)
	line := lineOf(a)
	st := h.state(line)
	if st.hasSharer(core) && h.inL2(core, line) {
		h.touchL2(core, line)
		return LevelL2, 0
	}
	home := h.homeTile(st)
	h.grid.LookupLLC(home, 1)
	dst := h.coreTile[core]
	h.message(mesh.RingAD, dst, home) // read request
	level, hops := LevelLLC, 0
	if st.owner >= 0 && st.owner != core {
		// Forward from the modified owner: the home snoops the owner,
		// the owner downgrades to shared, and the dirty data is also
		// written back home.
		src := h.coreTile[st.owner]
		h.message(mesh.RingAD, home, src) // snoop
		hops = h.transfer(src, dst)
		h.transfer(src, home)
		st.owner = -1
	} else if st.cached {
		hops = h.transfer(home, dst)
	} else {
		level, hops = LevelMemory, h.fetchFromMemory(st, line, dst)
	}
	st.addSharer(core)
	if victim, ok := h.touchL2(core, line); ok {
		h.evict(core, victim)
	}
	return level, hops
}

// Store performs a write of a by physical core. A write by a core that
// already holds the line exclusively is a pure hit; a write by a sharer
// upgrades in place (directory lookup, no data traffic); everything else
// pulls the line like a load and then claims ownership. Like Load it
// reports the critical-path data source.
func (h *Hierarchy) Store(core int, a Addr) (Level, int) {
	h.checkCore(core)
	line := lineOf(a)
	st := h.state(line)
	if st.owner == core && h.inL2(core, line) {
		h.touchL2(core, line)
		return LevelL2, 0
	}
	home := h.homeTile(st)
	if st.hasSharer(core) && h.inL2(core, line) {
		// Upgrade: invalidate the other sharers via the directory.
		h.grid.LookupLLC(home, 1)
		mine := h.coreTile[core]
		h.message(mesh.RingAD, mine, home) // upgrade request
		h.invalidateOthers(home, st, core, line)
		st.owner = core
		h.touchL2(core, line)
		return LevelL2, 0
	}
	// Read-for-ownership.
	h.grid.LookupLLC(home, 1)
	dst := h.coreTile[core]
	h.message(mesh.RingAD, dst, home) // RFO request
	level, hops := LevelLLC, 0
	if st.owner >= 0 && st.owner != core {
		h.message(mesh.RingAD, home, h.coreTile[st.owner]) // snoop
		hops = h.transfer(h.coreTile[st.owner], dst)
		h.dropL2(st.owner, line)
		st.dropSharer(st.owner)
	} else if st.cached {
		hops = h.transfer(home, dst)
	} else {
		level, hops = LevelMemory, h.fetchFromMemory(st, line, dst)
	}
	h.invalidateOthers(home, st, core, line)
	st.addSharer(core)
	st.owner = core
	if victim, ok := h.touchL2(core, line); ok {
		h.evict(core, victim)
	}
	return level, hops
}

// Flush evicts the line containing a from the whole hierarchy as clflush
// does: dirty data is written back through the home slice, and the line
// leaves the LLC, so the next access fetches it from memory again. This is
// the knob the memory-anchored locating extension leans on.
func (h *Hierarchy) Flush(core int, a Addr) {
	h.checkCore(core)
	line := lineOf(a)
	st := h.state(line)
	if st.hasSharer(core) {
		h.dropL2(core, line)
		h.evict(core, line)
	}
	st.cached = false
}
