package cache

import (
	"testing"

	"coremap/internal/mesh"
)

// ringTotal sums one ring's ingress over the whole grid.
func ringTotal(g *mesh.Grid, r mesh.Ring) uint64 {
	var n uint64
	g.Tiles(func(_ mesh.Coord, tl *mesh.Tile) {
		for _, v := range tl.Counters.RingIngress(r) {
			n += v
		}
	})
	return n
}

func TestMissSendsRequestOnADRing(t *testing.T) {
	g, h := testRig()
	h.Load(0, 0x1000)
	if ringTotal(g, mesh.RingAD) == 0 {
		t.Error("L2 miss sent no AD-ring request")
	}
	// Hits are silent on every ring.
	g.ResetCounters()
	h.Load(0, 0x1000)
	for _, r := range []mesh.Ring{mesh.RingBL, mesh.RingAD, mesh.RingAK, mesh.RingIV} {
		if n := ringTotal(g, r); n != 0 {
			t.Errorf("L2 hit produced %d flits on %v", n, r)
		}
	}
}

func TestUpgradeInvalidatesOnIVRing(t *testing.T) {
	g, h := testRig()
	h.Load(0, 0x1000)
	h.Load(1, 0x1000) // two sharers
	g.ResetCounters()
	h.Store(0, 0x1000) // upgrade: invalidate core 1
	if ringTotal(g, mesh.RingIV) == 0 {
		t.Error("upgrade sent no IV-ring invalidation to the other sharer")
	}
	if ringTotal(g, mesh.RingAK) == 0 {
		t.Error("invalidated sharer sent no AK-ring acknowledgement")
	}
	// The defining property of the paper's traffic generator: the
	// upgrade still moves NO data.
	if n := ringTotal(g, mesh.RingBL); n != 0 {
		t.Errorf("upgrade moved %d BL flits, want 0", n)
	}
}

func TestWritebackAcknowledged(t *testing.T) {
	g, h := testRig()
	h.Store(0, 0x3000)
	g.ResetCounters()
	h.Flush(0, 0x3000)
	if ringTotal(g, mesh.RingBL) == 0 {
		t.Error("dirty flush moved no data")
	}
	if ringTotal(g, mesh.RingAK) == 0 {
		t.Error("write-back completion not acknowledged on AK")
	}
}

// TestProtocolTrafficStaysOffBLRing is the event-selectivity property the
// probe depends on: a steady upgrade/invalidate loop (no data movement)
// must be invisible to a BL-ring monitor while clearly visible on the
// protocol rings.
func TestProtocolTrafficStaysOffBLRing(t *testing.T) {
	g, h := testRig()
	h.Load(0, 0x1000)
	h.Load(1, 0x1000)
	g.ResetCounters()
	for i := 0; i < 10; i++ {
		h.Store(0, 0x1000) // upgrade (invalidates 1)
		h.Load(1, 0x1000)  // refetch — this one moves data
	}
	bl, iv := ringTotal(g, mesh.RingBL), ringTotal(g, mesh.RingIV)
	if iv == 0 {
		t.Error("no invalidation traffic observed")
	}
	if bl == 0 {
		t.Error("no data traffic observed")
	}
	// The IV flow (home→sharer) and BL flow (owner→reader) differ; a
	// monitor watching the wrong ring would reconstruct the wrong path.
	if bl == iv {
		t.Error("BL and IV totals identical; rings are not independent")
	}
}
