package ring

import (
	"context"
	"reflect"
	"testing"

	"coremap/internal/ilp"
	"coremap/internal/topo"
)

// TestQuickSurveyExact: every catalog SKU, several seeds — the exhaustive
// contention campaign must reconstruct the secret slot permutation
// exactly, with proven optimality (the acceptance bar for the backend).
func TestQuickSurveyExact(t *testing.T) {
	for _, sku := range Catalog {
		for seed := int64(1); seed <= 5; seed++ {
			res, err := Backend{}.QuickSurvey(context.Background(), sku.Name, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", sku.Name, seed, err)
			}
			if !res.Exact || !res.Optimal {
				t.Errorf("%s seed %d: exact=%v optimal=%v placement=%v",
					sku.Name, seed, res.Exact, res.Optimal, res.Placement)
			}
			truth := New(sku, seed)
			for agent, c := range res.Placement {
				if c.Col != truth.TrueSlot(agent) {
					t.Errorf("%s seed %d: agent %d placed at slot %d, truth %d",
						sku.Name, seed, agent, c.Col, truth.TrueSlot(agent))
				}
			}
		}
	}
}

// TestQuickSurveyDeterministic: same SKU + seed twice gives the same
// result, different seeds shuffle the secret placement.
func TestQuickSurveyDeterministic(t *testing.T) {
	a, err := Backend{}.QuickSurvey(context.Background(), "ring8", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Backend{}.QuickSurvey(context.Background(), "ring8", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := Backend{}.QuickSurvey(context.Background(), "ring8", 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Placement, c.Placement) {
		t.Errorf("seeds 7 and 8 yielded the same placement %v", a.Placement)
	}
}

// TestContendedPredicate pins the overlap semantics on a hand-built
// instance: agents 0,1,2 at slots 1,2,3 of a 3-wide ring (SA at 0, GPU
// at 4).
func TestContendedPredicate(t *testing.T) {
	in := &Instance{sku: &SKU{Name: "toy", Agents: 3}, slot: []int{1, 2, 3}}
	cases := []struct {
		o    Observation
		want bool
	}{
		// Toward SA: attacker at slot 2 holds [0,2); victim span [1,3)
		// overlaps, span [3,?) would not exist with 3 agents.
		{Observation{Attacker: 1, VictimA: 0, VictimB: 2}, true},
		// Attacker at slot 1 holds [0,1); victims at 2,3 start past it.
		{Observation{Attacker: 0, VictimA: 1, VictimB: 2}, false},
		// Toward GPU: attacker at slot 2 holds [2,4]; victim at slot 3
		// reaches past it.
		{Observation{Attacker: 1, VictimA: 0, VictimB: 2, ToGPU: true}, true},
		// Attacker at slot 3 holds [3,4]; victims at 1,2 stay below.
		{Observation{Attacker: 2, VictimA: 0, VictimB: 1, ToGPU: true}, false},
	}
	for _, c := range cases {
		if got := in.contended(c.o); got != c.want {
			t.Errorf("contended(%+v) = %v, want %v", c.o, got, c.want)
		}
	}
}

// TestMeasureNoiseNeverFlips: the jitter bound is below the detection
// threshold, so every measured bit equals the ground-truth predicate.
func TestMeasureNoiseNeverFlips(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := New(Catalog[2], seed)
		obsList, hostOps, err := in.Measure(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if hostOps != int64(len(obsList)*latencySamples) {
			t.Errorf("hostOps = %d, want %d", hostOps, len(obsList)*latencySamples)
		}
		for _, o := range obsList {
			if o.Contended != in.contended(o) {
				t.Errorf("seed %d: noise flipped bit %+v", seed, o)
			}
		}
	}
}

// TestEmitConstraintsImplication: on a complete campaign the quiet
// relations subsume every contended disjunction, so the model carries no
// observation binaries — only the n(n-1)/2 all-distinct selectors.
func TestEmitConstraintsImplication(t *testing.T) {
	sku := Catalog[2]
	in := New(sku, 4)
	obsList, _, err := in.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m := ilp.NewModel()
	vars := make([]ilp.Var, sku.Agents)
	for i := range vars {
		vars[i] = m.NewVar("P", 1, int64(sku.Agents))
	}
	nVars := sku.Agents
	EmitConstraints(m, sku, vars, obsList)
	binaries := m.NumVars() - nVars
	want := sku.Agents * (sku.Agents - 1) / 2
	if binaries != want {
		t.Errorf("emitted %d binaries, want only the %d all-distinct selectors", binaries, want)
	}
}

// TestSolvePartialCampaign: drop the quiet observations so the solver
// must lean on the contended big-M disjunctions — the degraded path the
// implication shortcut skips on complete campaigns.
func TestSolvePartialCampaign(t *testing.T) {
	sku := Catalog[0] // ring4 keeps the disjunction-only model small
	in := New(sku, 2)
	obsList, _, err := in.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var contendedOnly []Observation
	for _, o := range obsList {
		if o.Contended {
			contendedOnly = append(contendedOnly, o)
		}
	}
	slots, _, err := Solve(context.Background(), sku, contendedOnly)
	if err != nil {
		t.Fatal(err)
	}
	// Contended bits alone still constrain: every returned slot is a
	// valid permutation value and the assignment satisfies each bit.
	seenSlot := make([]bool, sku.Agents+1)
	for _, s := range slots {
		if s < 1 || s > sku.Agents || seenSlot[s] {
			t.Fatalf("solve returned non-permutation %v", slots)
		}
		seenSlot[s] = true
	}
	check := &Instance{sku: sku, slot: slots}
	for _, o := range contendedOnly {
		if !check.contended(o) {
			t.Errorf("solution %v violates observation %+v", slots, o)
		}
	}
}

// TestBackendRegistered: the init registration is visible through the
// topo registry.
func TestBackendRegistered(t *testing.T) {
	b, err := topo.Lookup("ring")
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != topo.KindRing {
		t.Errorf("Lookup(ring).Kind() = %v", b.Kind())
	}
	if got := (Backend{}).Catalog(); len(got) != 3 || got[0] != "ring4" {
		t.Errorf("Catalog() = %v", got)
	}
	if _, err := findSKU("nope"); err == nil {
		t.Error("findSKU(nope) succeeded")
	}
}

// TestRender pins the slot-line rendering.
func TestRender(t *testing.T) {
	sku := &SKU{Name: "toy", Agents: 3}
	got := render(sku, []int{2, 3, 1})
	want := "SA - c2 - c0 - c1 - GPU\n"
	if got != want {
		t.Errorf("render = %q, want %q", got, want)
	}
}
