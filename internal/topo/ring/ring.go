// Package ring is the slotted-ring topology backend: physically ordering
// the core agents of a client-class die on its bidirectional ring
// interconnect, à la Paccagnella et al., "Lord of the Ring(s)". The
// observable is not a per-tile ingress counter — client dies expose none
// — but *contention*: an attacker agent streaming traffic to one of the
// ring's two public endpoint agents (the system agent at slot 0, the GPU
// agent at the far end) observes elevated latency exactly when a victim
// (src, dst) pair's ring segment overlaps its own. Each contention bit
// therefore yields an ordering/segment-overlap constraint:
//
//   - toward the system agent, the attacker occupies the slot-prefix
//     [0, P_atk), a victim pair the span [min, max): contention means
//     min(P_i, P_j) < P_atk, quiet means both victims sit at or past
//     the attacker's slot;
//   - toward the GPU agent the mirror holds with max(P_i, P_j).
//
// The prefix family alone cannot split the two outermost agents (their
// swap changes no overlap bit) and the suffix family cannot split the two
// innermost; measured together the exhaustive campaign admits exactly one
// slot assignment, which the ILP emitter recovers with big-M overlap
// disjunctions plus pairwise all-distinct rows.
package ring

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"coremap/internal/cmerr"
	"coremap/internal/ilp"
	"coremap/internal/mesh"
	"coremap/internal/obs"
	"coremap/internal/topo"
)

// stage tags every error this package classifies.
const stage = "ring"

// SKU describes a slotted-ring die: Agents core agents at secret slots
// 1..Agents, with the system agent pinned at slot 0 and the GPU agent at
// slot Agents+1 (both public, like the mesh backend's IMC anchors).
type SKU struct {
	Name   string
	Agents int
}

// Catalog is the supported ring die roster (client core counts from the
// ring-interconnect generations the attack targets).
var Catalog = []*SKU{
	{Name: "ring4", Agents: 4},
	{Name: "ring6", Agents: 6},
	{Name: "ring8", Agents: 8},
}

// Measurement noise model: each contention probe takes latencySamples
// round-trip samples; per-hop cost, the contention penalty and the
// detection threshold are chosen so the bounded jitter can never flip a
// bit (the threshold clears the jitter by 2x), mirroring the repeated-
// measurement median filtering of the ring paper.
const (
	latencySamples  = 9
	hopCycles       = 4
	contendedCycles = 30
	jitterCycles    = 8
	thresholdCycles = 16
)

// Instance is one seeded die: a secret permutation of core agents onto
// ring slots.
type Instance struct {
	sku *SKU
	// slot maps agent ID → ring slot (1..Agents), the ground truth.
	slot []int
	rng  *rand.Rand
}

// New builds a seeded instance of a catalog SKU.
func New(sku *SKU, seed int64) *Instance {
	h := fnv.New64a()
	h.Write([]byte(sku.Name))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	slot := make([]int, sku.Agents)
	for i, p := range rng.Perm(sku.Agents) {
		slot[i] = p + 1
	}
	return &Instance{sku: sku, slot: slot, rng: rng}
}

// TrueSlot returns the ground-truth slot of an agent.
func (in *Instance) TrueSlot(agent int) int { return in.slot[agent] }

// Observation is one contention experiment: the attacker agent streams
// to an endpoint anchor (the GPU agent when ToGPU, the system agent
// otherwise) while the victim pair exchanges traffic.
type Observation struct {
	Attacker         int
	VictimA, VictimB int
	ToGPU            bool
	Contended        bool
}

// gpuSlot returns the GPU agent's (public) slot.
func (s *SKU) gpuSlot() int { return s.Agents + 1 }

// contended is the ground-truth overlap predicate.
func (in *Instance) contended(o Observation) bool {
	lo, hi := in.slot[o.VictimA], in.slot[o.VictimB]
	if lo > hi {
		lo, hi = hi, lo
	}
	if o.ToGPU {
		return hi > in.slot[o.Attacker]
	}
	return lo < in.slot[o.Attacker]
}

// measure runs one experiment: latencySamples jittered round trips,
// thresholded against the attacker's uncontended baseline. The jitter
// bound keeps the bit exact; the sampling loop is what the host-op count
// charges.
func (in *Instance) measure(o Observation) (bit bool, samples int) {
	segment := in.slot[o.Attacker]
	if o.ToGPU {
		segment = in.sku.gpuSlot() - in.slot[o.Attacker]
	}
	truth := in.contended(o)
	var sum int
	for s := 0; s < latencySamples; s++ {
		lat := hopCycles * segment
		if truth {
			lat += contendedCycles
		}
		lat += in.rng.Intn(2*jitterCycles+1) - jitterCycles
		sum += lat
	}
	mean := sum / latencySamples
	return mean-hopCycles*segment > thresholdCycles, latencySamples
}

// Measure runs the exhaustive contention campaign: every attacker
// against every victim pair, toward both endpoint anchors. The
// observation order is the canonical exhaustive order (attacker, victim
// pair, direction), deterministic for a given seed.
func (in *Instance) Measure(ctx context.Context) (obsList []Observation, hostOps int64, err error) {
	n := in.sku.Agents
	for a := 0; a < n; a++ {
		for i := 0; i < n; i++ {
			if i == a {
				continue
			}
			for j := i + 1; j < n; j++ {
				if j == a {
					continue
				}
				for _, toGPU := range []bool{false, true} {
					if err := cmerr.FromContext(ctx, stage); err != nil {
						return nil, hostOps, err
					}
					o := Observation{Attacker: a, VictimA: i, VictimB: j, ToGPU: toGPU}
					bit, samples := in.measure(o)
					o.Contended = bit
					hostOps += int64(samples)
					obsList = append(obsList, o)
				}
			}
		}
	}
	return obsList, hostOps, nil
}

// bigM nullifies guarded overlap constraints; any value exceeding the
// slot range works.
func (s *SKU) bigM() int64 { return int64(s.Agents + 2) }

// EmitConstraints is the ring backend's ILP constraint emitter: it maps
// the contention observations onto solver rows over the per-agent slot
// variables.
//
// Quiet observations are the strong ones: "no overlap toward the system
// agent" means both victims sit past the attacker, which is a direct
// ordering relation per victim (mirrored for the GPU direction). The
// emitter folds every quiet observation into a relation matrix first and
// emits one strict row per proven relation — strictness is sound because
// slots are all-distinct — so the exhaustive campaign's massive
// redundancy collapses to at most n(n-1) rows. A contended observation
// only carries a disjunction (min/max of the pair straddles the
// attacker); it gets a big-M selector binary *only* when no quiet-derived
// relation already implies it, which on a complete campaign is never —
// the binaries exist for the degraded/partial-campaign case. Pairwise
// all-distinct disjunctions keep the slots a permutation.
func EmitConstraints(m *ilp.Model, sku *SKU, slots []ilp.Var, obsList []Observation) {
	n := sku.Agents
	M := sku.bigM()
	// lt[x*n+a] records a quiet-proven relation slot(x) < slot(a).
	lt := make([]bool, n*n)
	for _, o := range obsList {
		if o.Contended {
			continue
		}
		if o.ToGPU {
			// Quiet toward the GPU: both victims precede the attacker.
			lt[o.VictimA*n+o.Attacker] = true
			lt[o.VictimB*n+o.Attacker] = true
		} else {
			// Quiet toward the system agent: the attacker precedes both.
			lt[o.Attacker*n+o.VictimA] = true
			lt[o.Attacker*n+o.VictimB] = true
		}
	}
	for x := 0; x < n; x++ {
		for a := 0; a < n; a++ {
			if lt[x*n+a] {
				m.AddGE(fmt.Sprintf("lt_%d_%d", x, a),
					[]ilp.Term{ilp.T(1, slots[a]), ilp.T(-1, slots[x])}, 1)
			}
		}
	}
	seen := make(map[Observation]bool, len(obsList))
	for _, o := range obsList {
		if !o.Contended {
			continue
		}
		key := o
		if key.VictimA > key.VictimB {
			key.VictimA, key.VictimB = key.VictimB, key.VictimA
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		i, j, a := key.VictimA, key.VictimB, key.Attacker
		pi, pj, pa := slots[i], slots[j], slots[a]
		label := fmt.Sprintf("obs_a%d_v%d_%d_gpu%v", a, i, j, key.ToGPU)
		if key.ToGPU {
			// max(Pi,Pj) ≥ Pa+1: one of the victims follows the attacker.
			if lt[a*n+i] || lt[a*n+j] {
				continue // already implied by a quiet relation
			}
			b := m.NewBinary(label + "_sel")
			m.AddGE(label+"_i", []ilp.Term{ilp.T(1, pi), ilp.T(-1, pa), ilp.T(M, b)}, 1)
			m.AddGE(label+"_j", []ilp.Term{ilp.T(1, pj), ilp.T(-1, pa), ilp.T(-M, b)}, 1-M)
		} else {
			// min(Pi,Pj) ≤ Pa-1: one of the victims precedes the attacker.
			if lt[i*n+a] || lt[j*n+a] {
				continue
			}
			b := m.NewBinary(label + "_sel")
			m.AddLE(label+"_i", []ilp.Term{ilp.T(1, pi), ilp.T(-1, pa), ilp.T(-M, b)}, -1)
			m.AddLE(label+"_j", []ilp.Term{ilp.T(1, pj), ilp.T(-1, pa), ilp.T(M, b)}, -1+M)
		}
	}
	// Slots are a permutation: pairwise all-distinct disjunctions.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := m.NewBinary(fmt.Sprintf("dist_%d_%d", i, j))
			m.AddGE(fmt.Sprintf("sep_%d_%d_a", i, j), []ilp.Term{ilp.T(1, slots[i]), ilp.T(-1, slots[j]), ilp.T(M, d)}, 1)
			m.AddGE(fmt.Sprintf("sep_%d_%d_b", i, j), []ilp.Term{ilp.T(1, slots[j]), ilp.T(-1, slots[i]), ilp.T(-M, d)}, 1-M)
		}
	}
}

// Solve reconstructs the slot assignment from a campaign's observations.
func Solve(ctx context.Context, sku *SKU, obsList []Observation) (slots []int, optimal bool, err error) {
	m := ilp.NewModel()
	vars := make([]ilp.Var, sku.Agents)
	for i := range vars {
		vars[i] = m.NewVar(fmt.Sprintf("P%d", i), 1, int64(sku.Agents))
	}
	EmitConstraints(m, sku, vars, obsList)
	sol, err := ilp.Solve(ctx, m, ilp.Options{})
	if err != nil {
		return nil, false, err
	}
	slots = make([]int, sku.Agents)
	for i, v := range vars {
		slots[i] = int(sol.Value(v))
	}
	return slots, sol.Optimal, nil
}

// Backend is the ring topo.Backend.
type Backend struct{}

func init() { topo.Register(Backend{}) }

// Kind implements topo.Backend.
func (Backend) Kind() topo.Kind { return topo.KindRing }

// Name implements topo.Backend.
func (Backend) Name() string { return "ring" }

// Catalog implements topo.Backend.
func (Backend) Catalog() []string {
	names := make([]string, len(Catalog))
	for i, s := range Catalog {
		names[i] = s.Name
	}
	return names
}

// DefaultSKU implements topo.Backend: the 8-agent die (the ring paper's
// 8-core client parts).
func (Backend) DefaultSKU() string { return "ring8" }

// Predictor implements topo.Backend. The ring campaign is exhaustive —
// contention bits are three-agent relations the pairwise planner cannot
// express — so there is no adaptive-planner integration.
func (Backend) Predictor() topo.Predictor { return nil }

// findSKU resolves a catalog name ("" = default).
func findSKU(name string) (*SKU, error) {
	if name == "" {
		name = Backend{}.DefaultSKU()
	}
	for _, s := range Catalog {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, cmerr.New(cmerr.Permanent, stage, "unknown ring SKU %q (use ring4, ring6 or ring8)", name)
}

// QuickSurvey implements topo.Backend: one seeded instance measured
// exhaustively, solved, and scored against the secret slot permutation.
func (Backend) QuickSurvey(ctx context.Context, skuName string, seed int64) (_ *topo.SurveyResult, err error) {
	ctx, span := obs.Start(ctx, "topo/quick-survey")
	span.SetAttrStr("topology", "ring")
	defer func() { span.End(err) }()
	reg := obs.RegistryFrom(ctx)
	reg.CounterVec("topo/surveys", "backend").With("ring").Inc()

	sku, err := findSKU(skuName)
	if err != nil {
		return nil, err
	}
	span.SetAttrStr("sku", sku.Name)
	in := New(sku, seed)
	obsList, hostOps, err := in.Measure(ctx)
	if err != nil {
		return nil, err
	}
	reg.GaugeVec("topo/survey_host_ops", "backend").With("ring").Set(hostOps)
	slots, optimal, err := Solve(ctx, sku, obsList)
	if err != nil {
		return nil, err
	}

	exact := true
	placement := make([]mesh.Coord, sku.Agents)
	for i, s := range slots {
		placement[i] = mesh.Coord{Row: 0, Col: s}
		if s != in.slot[i] {
			exact = false
		}
	}
	span.SetAttr("agents", int64(sku.Agents))
	return &topo.SurveyResult{
		Backend:      "ring",
		SKU:          sku.Name,
		Agents:       sku.Agents,
		Observations: len(obsList),
		HostOps:      hostOps,
		Placement:    placement,
		Exact:        exact,
		Optimal:      optimal,
		Rendered:     render(sku, slots),
	}, nil
}

// render draws the ring as a slot line: SA, the agents in slot order,
// GPU.
func render(sku *SKU, slots []int) string {
	bySlot := make([]int, sku.Agents+2)
	for i := range bySlot {
		bySlot[i] = -1
	}
	for agent, s := range slots {
		if s >= 1 && s <= sku.Agents {
			bySlot[s] = agent
		}
	}
	var b strings.Builder
	b.WriteString("SA")
	for s := 1; s <= sku.Agents; s++ {
		if bySlot[s] >= 0 {
			fmt.Fprintf(&b, " - c%d", bySlot[s])
		} else {
			b.WriteString(" - ??")
		}
	}
	b.WriteString(" - GPU\n")
	return b.String()
}
