// Package backends registers every topology backend with the topo
// registry. Binaries (and tests) that resolve backends by name import it
// for side effects:
//
//	import _ "coremap/internal/topo/backends"
//
// The indirection exists so the backend packages stay independent —
// meshtopo imports the root coremap pipeline, which must not be forced
// on a program that only wants the ring solver — while flag-driven tools
// still see the full roster.
package backends

import (
	_ "coremap/internal/topo/meshtopo"
	_ "coremap/internal/topo/noc"
	_ "coremap/internal/topo/ring"
)
