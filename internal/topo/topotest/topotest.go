// Package topotest holds the behavioral contract every topology backend
// must satisfy, as reusable test helpers. The mesh router's edge-case
// semantics (internal/mesh's edge tests) set the baseline: zero-length
// flows are legal and free, surveys are deterministic per seed, and a
// recovered placement is a well-formed assignment — one coordinate per
// agent, no two agents sharing a tile.
package topotest

import (
	"context"
	"reflect"
	"testing"

	"coremap/internal/mesh"
	"coremap/internal/topo"
)

// CheckSurvey runs a backend's QuickSurvey for one (sku, seed) and
// checks the contract: the survey must succeed, recover the instance
// exactly with proven optimality, place every agent on a distinct tile,
// and reproduce byte-identically when re-run with the same seed.
func CheckSurvey(ctx context.Context, t *testing.T, b topo.Backend, sku string, seed int64) *topo.SurveyResult {
	t.Helper()
	res, err := b.QuickSurvey(ctx, sku, seed)
	if err != nil {
		t.Fatalf("%s/%s seed %d: %v", b.Name(), sku, seed, err)
	}
	if res.Backend != b.Name() {
		t.Errorf("%s: result claims backend %q", b.Name(), res.Backend)
	}
	if !res.Exact {
		t.Errorf("%s/%s seed %d: placement not exact", b.Name(), sku, seed)
	}
	if !res.Optimal {
		t.Errorf("%s/%s seed %d: solver did not prove the placement", b.Name(), sku, seed)
	}
	if len(res.Placement) != res.Agents {
		t.Errorf("%s/%s: %d agents but %d placements", b.Name(), sku, res.Agents, len(res.Placement))
	}
	if res.Observations <= 0 || res.Rendered == "" {
		t.Errorf("%s/%s: empty survey (obs=%d, rendered=%q)", b.Name(), sku, res.Observations, res.Rendered)
	}
	name := b.Name()
	seen := make(map[mesh.Coord]int, len(res.Placement))
	for agent, c := range res.Placement {
		if prev, dup := seen[c]; dup {
			t.Errorf("%s/%s: agents %d and %d share tile %v", name, sku, prev, agent, c)
		}
		seen[c] = agent
	}
	again, err := b.QuickSurvey(ctx, sku, seed)
	if err != nil {
		t.Fatalf("%s/%s seed %d rerun: %v", b.Name(), sku, seed, err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Errorf("%s/%s seed %d: survey not deterministic", b.Name(), sku, seed)
	}
	return res
}

// CheckBackend runs the full contract against a backend: identity and
// catalog invariants, the unknown-SKU error path, and CheckSurvey over
// the default SKU for each seed.
func CheckBackend(ctx context.Context, t *testing.T, b topo.Backend, seeds ...int64) {
	t.Helper()
	if b.Name() != b.Kind().String() {
		t.Errorf("backend name %q does not match kind %q", b.Name(), b.Kind())
	}
	cat := b.Catalog()
	if len(cat) == 0 {
		t.Fatalf("%s: empty catalog", b.Name())
	}
	def := b.DefaultSKU()
	found := false
	for _, sku := range cat {
		if sku == def {
			found = true
		}
	}
	if !found {
		t.Errorf("%s: default SKU %q not in catalog %v", b.Name(), def, cat)
	}
	if _, err := b.QuickSurvey(ctx, "no-such-sku", 1); err == nil {
		t.Errorf("%s: survey of unknown SKU succeeded", b.Name())
	}
	for _, seed := range seeds {
		CheckSurvey(ctx, t, b, def, seed)
	}
}
