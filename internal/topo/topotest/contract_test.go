package topotest_test

import (
	"context"
	"testing"

	"coremap/internal/topo"
	_ "coremap/internal/topo/backends"
	"coremap/internal/topo/topotest"
)

// TestAllBackendsHonorContract drives the shared backend contract over
// every registered backend: mesh, ring and noc all recover their seeded
// instances exactly, deterministically, onto distinct tiles.
func TestAllBackendsHonorContract(t *testing.T) {
	names := topo.Names()
	if len(names) != 3 {
		t.Fatalf("expected 3 registered backends, have %v", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := topo.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			topotest.CheckBackend(context.Background(), t, b, 1, 2)
		})
	}
}
