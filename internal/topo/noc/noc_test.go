package noc

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"coremap/internal/mesh"
	"coremap/internal/topo"
)

// TestRemapTablesInvert: the derived inverse tables actually invert the
// public scrambling tables.
func TestRemapTablesInvert(t *testing.T) {
	for px := 0; px < W; px++ {
		if nocToPhysX[PhysToNoCX[px]] != px {
			t.Errorf("x table not inverted at %d", px)
		}
	}
	for py := 0; py < H; py++ {
		if nocToPhysY[PhysToNoCY[py]] != py {
			t.Errorf("y table not inverted at %d", py)
		}
	}
}

// TestAnchorSignaturesUnique: the anchor roster's six hop sums identify
// every cell of the torus uniquely — the property the whole backend
// stands on.
func TestAnchorSignaturesUnique(t *testing.T) {
	type sig [2 * 3]int
	seen := make(map[sig]Coord)
	for x := 0; x < W; x++ {
		for y := 0; y < H; y++ {
			var s sig
			for a, anc := range Anchors {
				s[2*a] = mod(x-anc.Pos.X, W) + mod(y-anc.Pos.Y, H)
				s[2*a+1] = mod(anc.Pos.X-x, W) + mod(anc.Pos.Y-y, H)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("cells (%d,%d) and (%d,%d) share hop signature %v", x, y, prev.X, prev.Y, s)
			}
			seen[s] = Coord{X: x, Y: y}
		}
	}
}

// TestQuickSurveyExact: every catalog SKU, several seeds — the campaign
// must recover the secret worker binding exactly, every worker proven
// unique.
func TestQuickSurveyExact(t *testing.T) {
	for _, sku := range Catalog {
		for seed := int64(1); seed <= 5; seed++ {
			res, err := Backend{}.QuickSurvey(context.Background(), sku.Name, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", sku.Name, seed, err)
			}
			if !res.Exact || !res.Optimal {
				t.Errorf("%s seed %d: exact=%v optimal=%v", sku.Name, seed, res.Exact, res.Optimal)
			}
			wantWorkers := (H-sku.Harvested)*W - len(Anchors)
			if res.Agents != wantWorkers {
				t.Errorf("%s: %d workers, want %d", sku.Name, res.Agents, wantWorkers)
			}
			if res.Observations != wantWorkers*len(Anchors)*2 {
				t.Errorf("%s: %d observations, want %d", sku.Name, res.Observations, wantWorkers*len(Anchors)*2)
			}
			truth := New(sku, seed)
			for w, c := range res.Placement {
				if c != truth.TruePhys(w) {
					t.Errorf("%s seed %d: worker %d at %v, truth %v", sku.Name, seed, w, c, truth.TruePhys(w))
				}
			}
		}
	}
}

// TestQuickSurveyDeterministic: same SKU + seed twice gives the same
// result; different seeds move the secret binding.
func TestQuickSurveyDeterministic(t *testing.T) {
	a, err := Backend{}.QuickSurvey(context.Background(), "noc36", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Backend{}.QuickSurvey(context.Background(), "noc36", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := Backend{}.QuickSurvey(context.Background(), "noc36", 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Placement, c.Placement) {
		t.Errorf("seeds 7 and 8 yielded the same placement")
	}
}

// TestHarvestingRespectsAnchors: fused-off rows never contain an anchor
// tile, and the worker roster shrinks by a full row per harvest step.
func TestHarvestingRespectsAnchors(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		in := New(Catalog[2], seed) // noc30: 2 harvested rows
		if len(in.harvestedRows) != 2 {
			t.Fatalf("seed %d: %d harvested rows", seed, len(in.harvestedRows))
		}
		for _, r := range in.harvestedRows {
			if anchorPhysRow(r) {
				t.Errorf("seed %d: harvested anchor row %d", seed, r)
			}
			for _, c := range in.workerPhys {
				if c.Row == r {
					t.Errorf("seed %d: worker on harvested row %d", seed, r)
				}
			}
		}
	}
}

// TestSolveWorkerAmbiguity: a single forward observation cannot pin a
// cell — SolveWorker must report non-unique, not pretend.
func TestSolveWorkerAmbiguity(t *testing.T) {
	in := New(Catalog[0], 3)
	obsList, _, err := in.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var first []Observation
	for _, o := range obsList {
		if o.Worker == 0 && o.Anchor == 0 && !o.Reverse {
			first = append(first, o)
		}
	}
	if len(first) != 1 {
		t.Fatalf("expected 1 observation, got %d", len(first))
	}
	_, unique, err := SolveWorker(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	if unique {
		t.Error("one hop sum claimed a unique cell")
	}
}

// TestSolveWorkerInfeasible: contradictory observations are a permanent
// error, not a silent wrong answer.
func TestSolveWorkerInfeasible(t *testing.T) {
	obsList := []Observation{
		{Worker: 0, Anchor: 0, Hops: 0},
		{Worker: 0, Anchor: 0, Reverse: true, Hops: 1},
	}
	if _, _, err := SolveWorker(context.Background(), obsList); err == nil {
		t.Error("contradictory observations solved")
	}
}

// TestBackendRegistered: the init registration is visible through the
// topo registry.
func TestBackendRegistered(t *testing.T) {
	b, err := topo.Lookup("noc")
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != topo.KindNoC {
		t.Errorf("Lookup(noc).Kind() = %v", b.Kind())
	}
	if _, err := findSKU("nope"); err == nil {
		t.Error("findSKU(nope) succeeded")
	}
}

// TestRenderMarksHarvest: harvested rows render as -- and anchors keep
// their cells.
func TestRenderMarksHarvest(t *testing.T) {
	in := New(Catalog[1], 2) // one harvested row
	placement := make([]mesh.Coord, in.Workers())
	for w := range placement {
		placement[w] = in.TruePhys(w)
	}
	out := render(in, placement)
	if !strings.Contains(out, "  --  --  --  --  --  --\n") {
		t.Errorf("no harvested row in render:\n%s", out)
	}
	for _, want := range []string{"d0", "e0", "p0"} {
		if !strings.Contains(out, want) {
			t.Errorf("anchor label %s missing from render:\n%s", want, out)
		}
	}
}
