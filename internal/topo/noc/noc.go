// Package noc is the harvested-NoC topology backend: locating worker
// tiles on an accelerator's network-on-chip, à la the Tenstorrent
// Wormhole bring-up stacks. The die is a W×H tile grid served by two
// unidirectional tori (noc0 routes +x then +y, noc1 routes −x then −y),
// and the grid the software sees is *not* the physical one: the vendor
// scrambles both axes through public physical↔NoC remap tables, and
// harvesting fuses off entire physical rows per chip, so the live worker
// set and its tile binding are chip-instance secrets.
//
// What is public: the remap tables (they ship in the driver), and the NoC
// coordinates of the fixed-function anchor tiles (DRAM, Ethernet, PCIe —
// they never move and never harvest). What is measurable: per-hop
// latency, so a worker kernel that round-trips to an anchor yields the
// unidirectional hop count (x-distance plus y-distance, each modulo the
// torus). Each worker is measured against every anchor on both NoCs; the
// anchor set is chosen so the six hop sums identify every cell of the
// grid uniquely (the x-wrap boundaries of {0,2,4} and y-wrap boundaries
// of {1,3,5} jointly split every (+1,−1) anti-diagonal, which a single
// anchor's hop sums cannot).
//
// Reconstruction is a per-worker ILP: coordinate variables plus one wrap
// binary and one distance variable per measured axis, fed to the
// enumerating solver projected onto the coordinates — demanding exactly
// one feasible cell is what turns "a placement" into "the placement".
package noc

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"coremap/internal/cmerr"
	"coremap/internal/ilp"
	"coremap/internal/mesh"
	"coremap/internal/obs"
	"coremap/internal/topo"
)

// stage tags every error this package classifies.
const stage = "noc"

// NoC grid dimensions (tiles, both axes torus-wrapped).
const (
	W = 6
	H = 7
)

// hopSamples is the number of latency samples per hop-count observation
// (debug counters are cycle-exact; sampling is for the host-op ledger).
const hopSamples = 3

// Physical↔NoC coordinate scrambling tables, public from the driver.
var (
	PhysToNoCX = [W]int{0, 5, 1, 4, 2, 3}
	PhysToNoCY = [H]int{0, 6, 1, 5, 2, 4, 3}
)

// nocToPhysX/Y are the inverses, derived once at init.
var nocToPhysX [W]int
var nocToPhysY [H]int

func init() {
	for p, n := range PhysToNoCX {
		nocToPhysX[n] = p
	}
	for p, n := range PhysToNoCY {
		nocToPhysY[n] = p
	}
}

// Coord is a NoC-space tile coordinate.
type Coord struct{ X, Y int }

// Anchor is a fixed-function tile at a public NoC position.
type Anchor struct {
	Name string
	Pos  Coord
}

// Anchors is the fixed-function roster. The positions are load-bearing:
// x values {0,2,4} and y values {1,3,5} place wrap boundaries so the six
// hop sums are globally unique (see the package comment).
var Anchors = []Anchor{
	{Name: "dram0", Pos: Coord{X: 0, Y: 1}},
	{Name: "eth0", Pos: Coord{X: 2, Y: 3}},
	{Name: "pcie0", Pos: Coord{X: 4, Y: 5}},
}

// SKU describes a harvest bin: how many physical rows are fused off.
type SKU struct {
	Name      string
	Harvested int
}

// Catalog is the supported harvest-bin roster, named by live tile count
// (full grid 42, minus 6 per harvested row).
var Catalog = []*SKU{
	{Name: "noc42", Harvested: 0},
	{Name: "noc36", Harvested: 1},
	{Name: "noc30", Harvested: 2},
}

// anchorPhysRow reports whether a physical row hosts an anchor tile
// (fixed-function rows never harvest).
func anchorPhysRow(py int) bool {
	for _, a := range Anchors {
		if nocToPhysY[a.Pos.Y] == py {
			return true
		}
	}
	return false
}

// Instance is one seeded chip: a harvest pattern plus a secret binding
// of logical worker IDs to the surviving tiles.
type Instance struct {
	sku *SKU
	// harvestedRows lists the fused-off physical rows, ascending.
	harvestedRows []int
	// workerPhys maps worker ID → physical tile, the ground truth.
	workerPhys []mesh.Coord
}

// New builds a seeded instance of a catalog SKU.
func New(sku *SKU, seed int64) *Instance {
	h := fnv.New64a()
	h.Write([]byte(sku.Name))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))

	var harvestable []int
	for py := 0; py < H; py++ {
		if !anchorPhysRow(py) {
			harvestable = append(harvestable, py)
		}
	}
	rows := make([]int, 0, sku.Harvested)
	for _, i := range rng.Perm(len(harvestable))[:sku.Harvested] {
		rows = append(rows, harvestable[i])
	}
	sort.Ints(rows)
	in := &Instance{sku: sku, harvestedRows: rows}

	anchorPhys := make(map[mesh.Coord]bool, len(Anchors))
	for _, a := range Anchors {
		anchorPhys[mesh.Coord{Row: nocToPhysY[a.Pos.Y], Col: nocToPhysX[a.Pos.X]}] = true
	}
	var tiles []mesh.Coord
	for py := 0; py < H; py++ {
		if in.rowHarvested(py) {
			continue
		}
		for px := 0; px < W; px++ {
			c := mesh.Coord{Row: py, Col: px}
			if !anchorPhys[c] {
				tiles = append(tiles, c)
			}
		}
	}
	in.workerPhys = make([]mesh.Coord, len(tiles))
	for w, i := range rng.Perm(len(tiles)) {
		in.workerPhys[w] = tiles[i]
	}
	return in
}

func (in *Instance) rowHarvested(py int) bool {
	for _, r := range in.harvestedRows {
		if r == py {
			return true
		}
	}
	return false
}

// Workers returns the live worker count.
func (in *Instance) Workers() int { return len(in.workerPhys) }

// TruePhys returns the ground-truth physical tile of a worker.
func (in *Instance) TruePhys(w int) mesh.Coord { return in.workerPhys[w] }

// nocCoord translates a physical tile through the scrambling tables.
func nocCoord(c mesh.Coord) Coord {
	return Coord{X: PhysToNoCX[c.Col], Y: PhysToNoCY[c.Row]}
}

// Observation is one hop-count measurement: worker ↔ anchor over one of
// the unidirectional NoCs.
type Observation struct {
	Worker int
	Anchor int
	// Reverse selects noc1 (anchor-to-worker direction −x,−y); noc0
	// (worker-to-anchor +x,+y) otherwise.
	Reverse bool
	// Hops is the measured unidirectional distance.
	Hops int
}

// hops is the ground-truth torus distance for an observation.
func (in *Instance) hops(o Observation) int {
	wc := nocCoord(in.workerPhys[o.Worker])
	ac := Anchors[o.Anchor].Pos
	if o.Reverse {
		return mod(ac.X-wc.X, W) + mod(ac.Y-wc.Y, H)
	}
	return mod(wc.X-ac.X, W) + mod(wc.Y-ac.Y, H)
}

func mod(a, m int) int { return ((a % m) + m) % m }

// Measure runs the full campaign: every worker against every anchor on
// both NoCs, in canonical (worker, anchor, direction) order.
func (in *Instance) Measure(ctx context.Context) (obsList []Observation, hostOps int64, err error) {
	for w := 0; w < len(in.workerPhys); w++ {
		for a := range Anchors {
			for _, rev := range []bool{false, true} {
				if err := cmerr.FromContext(ctx, stage); err != nil {
					return nil, hostOps, err
				}
				o := Observation{Worker: w, Anchor: a, Reverse: rev}
				o.Hops = in.hops(o)
				hostOps += hopSamples
				obsList = append(obsList, o)
			}
		}
	}
	return obsList, hostOps, nil
}

// EmitConstraints is the NoC backend's ILP constraint emitter: it binds
// one worker's hop-count observations to its coordinate variables. Each
// observation contributes an axis-distance variable and a wrap binary
// per axis: d = (X − ax) mod W linearizes as X − ax + W·k − d = 0 with
// k ∈ {0,1} (the difference lies in (−W, W)), mirrored for the reverse
// NoC, and the two axis distances sum to the measured hop count.
func EmitConstraints(m *ilp.Model, x, y ilp.Var, obsList []Observation) {
	for _, o := range obsList {
		a := Anchors[o.Anchor].Pos
		label := fmt.Sprintf("w%d_%s_rev%v", o.Worker, Anchors[o.Anchor].Name, o.Reverse)
		dx := m.NewVar(label+"_dx", 0, W-1)
		dy := m.NewVar(label+"_dy", 0, H-1)
		kx := m.NewBinary(label + "_kx")
		ky := m.NewBinary(label + "_ky")
		sx, rhsX := int64(1), int64(a.X)
		sy, rhsY := int64(1), int64(a.Y)
		if o.Reverse {
			sx, rhsX = -1, int64(-a.X)
			sy, rhsY = -1, int64(-a.Y)
		}
		m.AddEq(label+"_x", []ilp.Term{ilp.T(sx, x), ilp.T(W, kx), ilp.T(-1, dx)}, rhsX)
		m.AddEq(label+"_y", []ilp.Term{ilp.T(sy, y), ilp.T(H, ky), ilp.T(-1, dy)}, rhsY)
		m.AddEq(label+"_sum", []ilp.Term{ilp.T(1, dx), ilp.T(1, dy)}, int64(o.Hops))
	}
}

// SolveWorker reconstructs one worker's NoC coordinate from its
// observations, demanding uniqueness: the enumerating solver projects
// onto (X, Y) with a cap of two, so "more than one feasible cell" is
// detected without counting them all.
func SolveWorker(ctx context.Context, obsList []Observation) (c Coord, unique bool, err error) {
	m := ilp.NewModel()
	x := m.NewVar("X", 0, W-1)
	y := m.NewVar("Y", 0, H-1)
	EmitConstraints(m, x, y, obsList)
	res, err := ilp.Enumerate(ctx, m, ilp.EnumOptions{Project: []ilp.Var{x, y}, Cap: 2})
	if err != nil {
		return Coord{}, false, err
	}
	if len(res.Solutions) == 0 {
		return Coord{}, false, cmerr.New(cmerr.Permanent, stage, "observations admit no placement")
	}
	c = Coord{X: int(res.Solutions[0][0]), Y: int(res.Solutions[0][1])}
	return c, res.Complete && len(res.Solutions) == 1, nil
}

// Solve reconstructs every worker's physical tile from a campaign.
func Solve(ctx context.Context, workers int, obsList []Observation) (placement []mesh.Coord, optimal bool, err error) {
	byWorker := make([][]Observation, workers)
	for _, o := range obsList {
		if o.Worker < 0 || o.Worker >= workers {
			return nil, false, cmerr.New(cmerr.Permanent, stage, "observation references unknown worker %d", o.Worker)
		}
		byWorker[o.Worker] = append(byWorker[o.Worker], o)
	}
	placement = make([]mesh.Coord, workers)
	optimal = true
	for w, wo := range byWorker {
		c, unique, err := SolveWorker(ctx, wo)
		if err != nil {
			return nil, false, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
		placement[w] = mesh.Coord{Row: nocToPhysY[c.Y], Col: nocToPhysX[c.X]}
		optimal = optimal && unique
	}
	return placement, optimal, nil
}

// Backend is the harvested-NoC topo.Backend.
type Backend struct{}

func init() { topo.Register(Backend{}) }

// Kind implements topo.Backend.
func (Backend) Kind() topo.Kind { return topo.KindNoC }

// Name implements topo.Backend.
func (Backend) Name() string { return "noc" }

// Catalog implements topo.Backend.
func (Backend) Catalog() []string {
	names := make([]string, len(Catalog))
	for i, s := range Catalog {
		names[i] = s.Name
	}
	return names
}

// DefaultSKU implements topo.Backend: the one-row-harvested bin, the
// common production part.
func (Backend) DefaultSKU() string { return "noc36" }

// Predictor implements topo.Backend. The NoC campaign is a fixed six
// observations per worker against public anchors — there is no pairwise
// route model for the adaptive planner to predict.
func (Backend) Predictor() topo.Predictor { return nil }

// findSKU resolves a catalog name ("" = default).
func findSKU(name string) (*SKU, error) {
	if name == "" {
		name = Backend{}.DefaultSKU()
	}
	for _, s := range Catalog {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, cmerr.New(cmerr.Permanent, stage, "unknown noc SKU %q (use noc42, noc36 or noc30)", name)
}

// QuickSurvey implements topo.Backend: one seeded chip measured against
// the anchor roster, per-worker solved, scored against the secret
// binding. Optimal reports that every worker's cell was proven unique.
func (Backend) QuickSurvey(ctx context.Context, skuName string, seed int64) (_ *topo.SurveyResult, err error) {
	ctx, span := obs.Start(ctx, "topo/quick-survey")
	span.SetAttrStr("topology", "noc")
	defer func() { span.End(err) }()
	reg := obs.RegistryFrom(ctx)
	reg.CounterVec("topo/surveys", "backend").With("noc").Inc()

	sku, err := findSKU(skuName)
	if err != nil {
		return nil, err
	}
	span.SetAttrStr("sku", sku.Name)
	in := New(sku, seed)
	obsList, hostOps, err := in.Measure(ctx)
	if err != nil {
		return nil, err
	}
	reg.GaugeVec("topo/survey_host_ops", "backend").With("noc").Set(hostOps)
	placement, optimal, err := Solve(ctx, in.Workers(), obsList)
	if err != nil {
		return nil, err
	}

	exact := true
	for w, c := range placement {
		if c != in.workerPhys[w] {
			exact = false
		}
	}
	span.SetAttr("agents", int64(in.Workers()))
	return &topo.SurveyResult{
		Backend:      "noc",
		SKU:          sku.Name,
		Agents:       in.Workers(),
		Observations: len(obsList),
		HostOps:      hostOps,
		Placement:    placement,
		Exact:        exact,
		Optimal:      optimal,
		Rendered:     render(in, placement),
	}, nil
}

// render draws the physical grid: worker IDs at their recovered tiles,
// anchor names at theirs, and -- across harvested rows.
func render(in *Instance, placement []mesh.Coord) string {
	cell := make(map[mesh.Coord]string, len(placement)+len(Anchors))
	for _, a := range Anchors {
		cell[mesh.Coord{Row: nocToPhysY[a.Pos.Y], Col: nocToPhysX[a.Pos.X]}] = a.Name[:1] + a.Name[len(a.Name)-1:]
	}
	for w, c := range placement {
		cell[c] = fmt.Sprintf("c%d", w)
	}
	var b strings.Builder
	for py := 0; py < H; py++ {
		for px := 0; px < W; px++ {
			label := "--"
			if !in.rowHarvested(py) {
				if l, ok := cell[mesh.Coord{Row: py, Col: px}]; ok {
					label = l
				}
			}
			fmt.Fprintf(&b, "%4s", label)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
