// Package topo defines the pluggable interconnect-topology backend
// interface behind the locating pipeline, plus the process-wide backend
// registry.
//
// The paper's inference recipe — observe traffic through a shared
// interconnect, emit placement constraints from each observation, solve
// an ILP for the only layout consistent with all of them — is not
// specific to the Skylake mesh. A Backend bundles everything the recipe
// needs from a substrate:
//
//   - substrate construction from a SKU descriptor (the backend's own
//     catalog — mesh Xeons, ring client dies, harvested NoC parts);
//   - the routing/observation model: what a (src, dst) probe charges
//     where, exposed to the adaptive planner through Predictor;
//   - an ILP constraint emitter mapping observations to solver rows
//     (the mesh emitter lives in internal/locate; ring and noc own
//     theirs); and
//   - a seeded end-to-end survey (QuickSurvey) that measures, solves and
//     scores one instance — the unit the experiments matrix, the CI
//     smoke job and the per-backend benchmarks all drive.
//
// Backends register themselves from package init; importing
// internal/topo/backends links the full roster. locate.Fingerprint keys
// its cache on Kind so reconstructions never alias across substrates.
package topo

import (
	"context"
	"sort"

	"coremap/internal/cmerr"
	"coremap/internal/mesh"
)

// stage tags every error this package classifies.
const stage = "topo"

// Kind enumerates the supported interconnect substrates. The zero value
// is the mesh, so pre-refactor zero-valued inputs keep meaning the
// Skylake mesh pipeline.
type Kind uint8

const (
	// KindMesh is the paper's 2-D mesh with Y-then-X dimension-order
	// routing and per-tile ring-ingress counters.
	KindMesh Kind = iota
	// KindRing is a slotted bidirectional ring where the observable is
	// contention between (attacker, victim) agent pairs whose ring
	// segments overlap.
	KindRing
	// KindNoC is a harvested NoC grid with physical↔NoC coordinate
	// remap tables, disabled rows and fixed-function tiles at known
	// coordinates acting as free anchors.
	KindNoC
	numKinds
)

// String returns the -topology flag spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindMesh:
		return "mesh"
	case KindRing:
		return "ring"
	case KindNoC:
		return "noc"
	}
	return "unknown"
}

// ParseKind resolves a -topology flag value.
func ParseKind(s string) (Kind, error) {
	for k := KindMesh; k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, cmerr.New(cmerr.Permanent, stage, "unknown topology %q (use mesh, ring or noc)", s)
}

// Channel identifies which ingress counter a tile charges for a flow, in
// the planner's encoding. The byte values are load-bearing: they enter
// plan's predictKey byte keys, and the mesh backend must keep producing
// keys identical to the pre-refactor planner.
type Channel byte

const (
	// ChanNone marks a tile that is not a receiving tile of the route.
	ChanNone Channel = iota
	// ChanUp and ChanDown are the vertical ingress channels.
	ChanUp
	ChanDown
	// ChanHorz is either horizontal channel (odd-column mirroring makes
	// the true direction unobservable, so the planner folds them).
	ChanHorz
)

// Predictor is a backend's exact observation model as the adaptive
// planner consumes it: given a flow src → dst, which counter does the
// tile at t charge? Predictors must be stateless and deterministic — the
// planner partitions surviving placements by predicted outcome, and two
// placements must compare equal exactly when the substrate cannot tell
// them apart.
type Predictor interface {
	Classify(src, dst, t mesh.Coord) Channel
}

// SurveyResult is one backend survey: a seeded instance measured,
// reconstructed and scored against its own ground truth.
type SurveyResult struct {
	// Backend and SKU identify what was surveyed.
	Backend, SKU string
	// Agents is the number of placement unknowns (CHAs, ring agents,
	// NoC workers).
	Agents int
	// Observations is the number of measurements the survey used.
	Observations int
	// HostOps is the backend's host-operation (or sample) count.
	HostOps int64
	// Placement maps agent ID → recovered coordinate (ring backends use
	// Col as the slot index with Row 0).
	Placement []mesh.Coord
	// Exact reports that the placement matches ground truth exactly.
	Exact bool
	// Optimal reports that the solver proved optimality.
	Optimal bool
	// Rendered is a printable map of the placement.
	Rendered string
}

// Backend is one interconnect substrate behind the pipeline.
type Backend interface {
	// Kind is the backend's registry key and cache discriminator.
	Kind() Kind
	// Name is the -topology flag value; it must equal Kind().String().
	Name() string
	// Catalog lists the backend's SKU descriptor names.
	Catalog() []string
	// DefaultSKU names the catalog entry QuickSurvey uses for "".
	DefaultSKU() string
	// Predictor returns the backend's planner-facing observation model,
	// or nil when the backend's survey is exhaustive-only (no adaptive
	// planner integration).
	Predictor() Predictor
	// QuickSurvey builds the named SKU (""=DefaultSKU) seeded instance,
	// runs the backend's measurement campaign and constraint emitter,
	// solves for the placement, and scores it against ground truth.
	QuickSurvey(ctx context.Context, sku string, seed int64) (*SurveyResult, error)
}

// registry holds the linked backends, keyed by Kind.
var registry = map[Kind]Backend{}

// Register installs a backend, panicking on duplicates or on a backend
// whose Name disagrees with its Kind (both are programmer errors — the
// registry is populated from package init only).
func Register(b Backend) {
	if b.Name() != b.Kind().String() {
		panic("topo: backend name " + b.Name() + " does not match kind " + b.Kind().String())
	}
	if _, dup := registry[b.Kind()]; dup {
		panic("topo: duplicate backend " + b.Name())
	}
	registry[b.Kind()] = b //lint:allow toposafe Register is the registration API itself; toposafe pins every caller into init
}

// Get returns the backend registered for a kind.
func Get(k Kind) (Backend, bool) {
	b, ok := registry[k]
	return b, ok
}

// Lookup resolves a -topology flag value to its registered backend.
func Lookup(name string) (Backend, error) {
	k, err := ParseKind(name)
	if err != nil {
		return nil, err
	}
	b, ok := registry[k]
	if !ok {
		return nil, cmerr.New(cmerr.Permanent, stage, "topology %q is not linked into this binary (import internal/topo/backends)", name)
	}
	return b, nil
}

// Names lists the registered backend names in sorted order.
func Names() []string {
	var names []string
	for k := KindMesh; k < numKinds; k++ {
		if _, ok := registry[k]; ok {
			names = append(names, k.String())
		}
	}
	sort.Strings(names)
	return names
}
