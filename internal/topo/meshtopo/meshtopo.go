// Package meshtopo is the mesh topology backend: the paper's
// MSR/PMON-driven Xeon pipeline (machine → probe → locate) presented
// behind the topo.Backend interface. Substrate construction comes from
// the internal/machine SKU catalog, the routing/observation model is
// meshroute (shared with the adaptive planner), and the ILP constraint
// emitter is internal/locate's. QuickSurvey runs the same
// coremap.MapMachine pipeline every experiment uses — the backend adds
// no mesh-specific behavior of its own, which is what keeps mesh maps
// byte-identical to the pre-refactor tree.
package meshtopo

import (
	"context"

	"coremap"
	"coremap/internal/cmerr"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/obs"
	"coremap/internal/probe"
	"coremap/internal/topo"
	"coremap/internal/topo/meshroute"
)

// stage tags every error this package classifies.
const stage = "meshtopo"

func init() { topo.Register(Backend{}) }

// Backend is the mesh topo.Backend.
type Backend struct{}

// Kind implements topo.Backend.
func (Backend) Kind() topo.Kind { return topo.KindMesh }

// Name implements topo.Backend.
func (Backend) Name() string { return "mesh" }

// catalog maps SKU flag names to machine descriptors, in catalog order.
var catalog = []struct {
	name string
	sku  *machine.SKU
}{
	{"8124M", machine.SKU8124M},
	{"8175M", machine.SKU8175M},
	{"8259CL", machine.SKU8259CL},
	{"6354", machine.SKU6354},
}

// Catalog implements topo.Backend.
func (Backend) Catalog() []string {
	names := make([]string, len(catalog))
	for i, e := range catalog {
		names[i] = e.name
	}
	return names
}

// DefaultSKU implements topo.Backend: the paper's 28-core Table I SKU.
func (Backend) DefaultSKU() string { return "8259CL" }

// Predictor implements topo.Backend.
func (Backend) Predictor() topo.Predictor { return meshroute.Predictor{} }

// findSKU resolves a catalog name ("" = default).
func findSKU(name string) (*machine.SKU, error) {
	if name == "" {
		name = Backend{}.DefaultSKU()
	}
	for _, e := range catalog {
		if e.name == name {
			return e.sku, nil
		}
	}
	return nil, cmerr.New(cmerr.Permanent, stage, "unknown mesh SKU %q (use 8124M, 8175M, 8259CL or 6354)", name)
}

// QuickSurvey implements topo.Backend: one seeded instance through the
// full memory-anchored pipeline, scored against the simulator's ground
// truth. Anchored maps come out in absolute die coordinates, so Exact is
// tile-exact equality with the true placement.
func (Backend) QuickSurvey(ctx context.Context, skuName string, seed int64) (_ *topo.SurveyResult, err error) {
	ctx, span := obs.Start(ctx, "topo/quick-survey")
	span.SetAttrStr("topology", "mesh")
	defer func() { span.End(err) }()
	reg := obs.RegistryFrom(ctx)
	reg.CounterVec("topo/surveys", "backend").With("mesh").Inc()

	sku, err := findSKU(skuName)
	if err != nil {
		return nil, err
	}
	span.SetAttrStr("sku", sku.Name)
	m := machine.Generate(sku, 0, machine.Config{Seed: seed})
	before := reg.Snapshot()
	res, err := coremap.MapMachine(ctx, m, coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC}, coremap.Options{
		Probe:         probe.Options{Seed: seed},
		Locate:        locate.Options{Workers: 1},
		MemoryAnchors: true,
	})
	if err != nil {
		return nil, err
	}
	hostOps := reg.Snapshot().Sub(before).Total("host/ops/")
	reg.GaugeVec("topo/survey_host_ops", "backend").With("mesh").Set(hostOps)

	truth := make([]mesh.Coord, m.NumCHAs())
	for cha := range truth {
		truth[cha] = m.TrueCHACoord(cha)
	}
	exact, _ := locate.ScoreAbsolute(res.Pos, truth)
	span.SetAttr("agents", int64(len(res.Pos)))
	return &topo.SurveyResult{
		Backend:      "mesh",
		SKU:          sku.Name,
		Agents:       len(res.Pos),
		Observations: len(res.OSToCHA),
		HostOps:      hostOps,
		Placement:    res.Pos,
		Exact:        exact,
		Optimal:      res.Optimal,
		Rendered:     res.Render(),
	}, nil
}
