// Package meshroute is the mesh backend's routing/observation model: the
// exact predictor for what a Y-then-X dimension-order-routed flow charges
// at each tile. It was extracted verbatim from internal/plan so the
// planner asks the topology backend for predictions instead of computing
// mesh routes itself; the Channel byte values and the classification
// logic are unchanged, which is what keeps the planner's predictKey byte
// keys — and therefore the planned surveys — byte-identical to the
// pre-refactor pipeline.
package meshroute

import (
	"coremap/internal/mesh"
	"coremap/internal/topo"
)

// Classify reports which counter the tile at t charges for a flow routed
// src → dst, or topo.ChanNone when t is not a receiving tile of the
// route. The mesh routes traffic dimension-order, Y then X: a flow
// travels vertically in src's column down to dst's row, then
// horizontally in dst's row to dst's column, and every *receiving* tile
// on that route charges the matching ring ingress counter (the corner
// tile at (dst.Row, src.Col) is charged vertical — it receives from the
// vertical ring).
func Classify(src, dst, t mesh.Coord) topo.Channel {
	if t.Col == src.Col {
		// Vertical segment in src's column, receiving tiles only (src
		// itself transmits, it never receives). The corner tile at
		// dst.Row is charged here, not on the horizontal segment.
		if dst.Row < src.Row && t.Row >= dst.Row && t.Row < src.Row {
			return topo.ChanUp
		}
		if dst.Row > src.Row && t.Row > src.Row && t.Row <= dst.Row {
			return topo.ChanDown
		}
		return topo.ChanNone
	}
	if t.Row != dst.Row {
		return topo.ChanNone
	}
	// Horizontal segment in dst's row, strictly past the turn column.
	if dst.Col > src.Col && t.Col > src.Col && t.Col <= dst.Col {
		return topo.ChanHorz
	}
	if dst.Col < src.Col && t.Col < src.Col && t.Col >= dst.Col {
		return topo.ChanHorz
	}
	return topo.ChanNone
}

// Predictor is the stateless mesh predictor handed to the adaptive
// planner (the default when plan.Options.Predictor is nil).
type Predictor struct{}

// Classify implements topo.Predictor.
func (Predictor) Classify(src, dst, t mesh.Coord) topo.Channel { return Classify(src, dst, t) }
