package meshroute

import (
	"testing"

	"coremap/internal/mesh"
	"coremap/internal/topo"
)

func TestClassifyRoutes(t *testing.T) {
	src := mesh.Coord{Row: 2, Col: 1}
	dst := mesh.Coord{Row: 0, Col: 3}
	cases := []struct {
		t    mesh.Coord
		want topo.Channel
	}{
		{mesh.Coord{Row: 1, Col: 1}, topo.ChanUp},   // vertical segment
		{mesh.Coord{Row: 0, Col: 1}, topo.ChanUp},   // corner tile is vertical
		{mesh.Coord{Row: 0, Col: 2}, topo.ChanHorz}, // horizontal segment
		{mesh.Coord{Row: 0, Col: 3}, topo.ChanHorz}, // destination tile
		{mesh.Coord{Row: 2, Col: 1}, topo.ChanNone}, // source transmits, never receives
		{mesh.Coord{Row: 2, Col: 2}, topo.ChanNone}, // off-route
		{mesh.Coord{Row: 1, Col: 3}, topo.ChanNone}, // dst column, wrong row
		{mesh.Coord{Row: 0, Col: 0}, topo.ChanNone}, // behind the turn
	}
	for _, c := range cases {
		if got := Classify(src, dst, c.t); got != c.want {
			t.Errorf("Classify(%v→%v, %v) = %d, want %d", src, dst, c.t, got, c.want)
		}
	}

	// Downward and westward mirror.
	src, dst = mesh.Coord{Row: 0, Col: 3}, mesh.Coord{Row: 2, Col: 1}
	if got := Classify(src, dst, mesh.Coord{Row: 1, Col: 3}); got != topo.ChanDown {
		t.Errorf("down segment misclassified: %d", got)
	}
	if got := Classify(src, dst, mesh.Coord{Row: 2, Col: 3}); got != topo.ChanDown {
		t.Errorf("corner on down route misclassified: %d", got)
	}
	if got := Classify(src, dst, mesh.Coord{Row: 2, Col: 2}); got != topo.ChanHorz {
		t.Errorf("westward segment misclassified: %d", got)
	}

	// Pure vertical route: destination tile charges vertical.
	src, dst = mesh.Coord{Row: 3, Col: 0}, mesh.Coord{Row: 1, Col: 0}
	if got := Classify(src, dst, dst); got != topo.ChanUp {
		t.Errorf("pure-vertical destination misclassified: %d", got)
	}
	// Zero-length route (CHA sharing the IMC tile): no observers.
	if got := Classify(src, src, src); got != topo.ChanNone {
		t.Errorf("zero-length route should have no observers: %d", got)
	}
}

// TestChannelValuesPinned pins the topo.Channel byte values the planner's
// predictKey encoding depends on: changing them would silently split the
// planner's partition keys from the pre-refactor encoding.
func TestChannelValuesPinned(t *testing.T) {
	pins := []struct {
		ch   topo.Channel
		want byte
	}{{topo.ChanNone, 0}, {topo.ChanUp, 1}, {topo.ChanDown, 2}, {topo.ChanHorz, 3}}
	for _, p := range pins {
		if byte(p.ch) != p.want {
			t.Errorf("channel byte drifted: %d != %d", p.ch, p.want)
		}
	}
}

// TestPredictorMatchesClassify pins the interface wrapper to the free
// function on every tile of a small grid.
func TestPredictorMatchesClassify(t *testing.T) {
	var pred Predictor
	src := mesh.Coord{Row: 2, Col: 0}
	dst := mesh.Coord{Row: 1, Col: 3}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			tile := mesh.Coord{Row: r, Col: c}
			if pred.Classify(src, dst, tile) != Classify(src, dst, tile) {
				t.Fatalf("predictor disagrees with Classify at %v", tile)
			}
		}
	}
}
