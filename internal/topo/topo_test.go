package topo_test

import (
	"reflect"
	"testing"

	"coremap/internal/topo"
	_ "coremap/internal/topo/backends"
)

// TestKindStringRoundTrip: every kind parses back from its flag
// spelling, and unknown spellings are rejected.
func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range []topo.Kind{topo.KindMesh, topo.KindRing, topo.KindNoC} {
		got, err := topo.ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := topo.ParseKind("torus"); err == nil {
		t.Error("ParseKind(torus) succeeded")
	}
	if _, err := topo.ParseKind("unknown"); err == nil {
		t.Error("ParseKind(unknown) succeeded")
	}
}

// TestZeroKindIsMesh: the zero value must keep meaning the mesh pipeline
// — pre-refactor zero-valued Inputs and Options depend on it.
func TestZeroKindIsMesh(t *testing.T) {
	var k topo.Kind
	if k != topo.KindMesh || k.String() != "mesh" {
		t.Errorf("zero Kind = %v (%q)", k, k)
	}
}

// TestChannelValuesPinned: the planner's predictKey byte encoding rides
// on these exact values.
func TestChannelValuesPinned(t *testing.T) {
	if topo.ChanNone != 0 || topo.ChanUp != 1 || topo.ChanDown != 2 || topo.ChanHorz != 3 {
		t.Errorf("channel bytes moved: none=%d up=%d down=%d horz=%d",
			topo.ChanNone, topo.ChanUp, topo.ChanDown, topo.ChanHorz)
	}
}

// TestRegistryRoster: importing internal/topo/backends links all three
// backends, resolvable by kind and by name.
func TestRegistryRoster(t *testing.T) {
	if got := topo.Names(); !reflect.DeepEqual(got, []string{"mesh", "noc", "ring"}) {
		t.Fatalf("Names() = %v", got)
	}
	for _, k := range []topo.Kind{topo.KindMesh, topo.KindRing, topo.KindNoC} {
		b, ok := topo.Get(k)
		if !ok {
			t.Fatalf("Get(%v) missing", k)
		}
		if b.Kind() != k || b.Name() != k.String() {
			t.Errorf("backend %v misreports identity: kind=%v name=%q", k, b.Kind(), b.Name())
		}
		if len(b.Catalog()) == 0 {
			t.Errorf("backend %v has an empty catalog", k)
		}
		found := false
		for _, sku := range b.Catalog() {
			if sku == b.DefaultSKU() {
				found = true
			}
		}
		if !found {
			t.Errorf("backend %v default SKU %q not in catalog %v", k, b.DefaultSKU(), b.Catalog())
		}
		byName, err := topo.Lookup(k.String())
		if err != nil || byName != b {
			t.Errorf("Lookup(%q) = %v, %v", k.String(), byName, err)
		}
	}
}

// TestLookupUnregistered: a parseable name whose backend is not linked
// points the caller at the backends package. (All backends are linked in
// this test binary, so exercise the message through ParseKind failure
// text only — the not-linked branch is covered by construction in
// binaries that skip the import.)
func TestLookupUnregistered(t *testing.T) {
	if _, err := topo.Lookup("grid"); err == nil {
		t.Error("Lookup(grid) succeeded")
	}
}
