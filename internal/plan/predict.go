package plan

// Exact observation prediction. The planner does not compute routes
// itself: Options.Predictor — the topology backend's observation model,
// defaulting to the mesh backend's meshroute.Predictor — answers, for a
// single tile, which counter a given flow lights up; predictKey folds
// that over all CHAs of a placement into a comparable byte key. The
// topo.Channel byte values are part of the key encoding, so the mesh
// predictor keeps producing keys byte-identical to the pre-refactor
// in-package classifier.
//
// consistent is deliberately NOT prediction equality. It mirrors, row
// for row, the linear constraints locate.addObservation derives from an
// observation — a necessary-but-not-sufficient encoding (it never
// forbids an on-path tile missing from an observer list). Filtering
// survivors by this weaker test keeps the surviving set a superset of
// the final ILP's feasible region, which the byte-identity argument in
// the package comment depends on. Keep it in lockstep with
// locate.addObservation.

import (
	"coremap/internal/mesh"
	"coremap/internal/topo"
)

// routeEndpoints resolves a candidate's source and destination die
// coordinates under placement p.
func (pl *Planner) routeEndpoints(c Candidate, p []mesh.Coord) (src, dst mesh.Coord) {
	if c.Kind == KindMemory {
		src = pl.opts.IMCPositions[c.IMC]
	} else {
		src = p[c.SrcCHA]
	}
	return src, p[c.DstCHA]
}

// predictKey renders candidate c's predicted observation under placement
// p as a byte key: for each CHA in ascending order that would observe
// the flow, the pair (channel, CHA). Ascending order matches the order
// probe's counter sweep reports observers in, so two placements share a
// key exactly when the experiment cannot tell them apart. The returned
// slice is planner-owned scratch, valid until the next call.
func (pl *Planner) predictKey(c Candidate, p []mesh.Coord) []byte {
	src, dst := pl.routeEndpoints(c, p)
	key := pl.keyBuf[:0]
	for k := 0; k < pl.numCHA; k++ {
		if ch := pl.opts.Predictor.Classify(src, dst, p[k]); ch != topo.ChanNone {
			key = append(key, byte(ch), byte(k))
		}
	}
	pl.keyBuf = key
	return key
}

// srcGap returns the minimum column distance between a horizontal
// observer and the flow's source column, matching locate's encoding
// (the turn tile is charged vertical, so observers sit strictly past
// the source column — unless PaperExactBounds relaxes it to the paper's
// literal inequalities).
func (pl *Planner) srcGap() int {
	if pl.opts.PaperExactBounds {
		return 0
	}
	return 1
}

// horzFeasible reports whether the horizontal observers of an
// observation admit at least one direction of travel: either every
// observer sits east of the source column and (destination aside) west
// of the destination column, or the mirror. This is the big-M
// disjunction of locate.addObservation with the binaries evaluated on a
// concrete placement.
func horzFeasible(src, dst mesh.Coord, horz []int, dstCHA, srcGap int, at func(int) mesh.Coord) bool {
	east, west := true, true
	for _, k := range horz {
		t := at(k)
		if t.Col < src.Col+srcGap {
			east = false
		}
		if t.Col > src.Col-srcGap {
			west = false
		}
		if k != dstCHA {
			if t.Col > dst.Col-1 {
				east = false
			}
			if t.Col < dst.Col+1 {
				west = false
			}
		}
		if !east && !west {
			return false
		}
	}
	return east || west
}

// consistent reports whether placement p satisfies every linear row
// locate.addObservation would derive from observation o. See the file
// comment: this is constraint consistency, not prediction equality.
func (pl *Planner) consistent(o Observation, p []mesh.Coord) bool {
	var src mesh.Coord
	if o.Anchored {
		src = pl.opts.IMCPositions[o.SrcIMC]
	} else {
		src = p[o.SrcCHA]
	}
	dst := p[o.DstCHA]
	for _, k := range o.Up {
		t := p[k]
		if t.Col != src.Col || src.Row-t.Row < 1 || t.Row < dst.Row {
			return false
		}
	}
	for _, k := range o.Down {
		t := p[k]
		if t.Col != src.Col || t.Row-src.Row < 1 || t.Row > dst.Row {
			return false
		}
	}
	if len(o.Horz) == 0 {
		return true
	}
	for _, k := range o.Horz {
		if p[k].Row != dst.Row {
			return false
		}
	}
	return horzFeasible(src, dst, o.Horz, o.DstCHA, pl.srcGap(), func(k int) mesh.Coord { return p[k] })
}
