package plan

import (
	"context"
	"reflect"
	"testing"

	"coremap/internal/cmerr"
	"coremap/internal/mesh"
	"coremap/internal/topo"
	"coremap/internal/topo/meshroute"
)

// toy is a 3x3 die with five CHAs and one IMC at (2,0).
var toyTruth = []mesh.Coord{
	{Row: 0, Col: 0}, // CHA 0
	{Row: 0, Col: 1}, // CHA 1
	{Row: 1, Col: 0}, // CHA 2
	{Row: 1, Col: 1}, // CHA 3
	{Row: 2, Col: 2}, // CHA 4
}

func toyOptions() Options {
	return Options{Rows: 3, Cols: 3, IMCPositions: []mesh.Coord{{Row: 2, Col: 0}}}
}

// toyCandidates builds memory candidates for every CHA plus all ordered
// pairs, in a fixed pool order.
func toyCandidates(n int) []Candidate {
	var cands []Candidate
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			cands = append(cands, Candidate{Kind: KindPair, SrcCHA: src, DstCHA: dst, SrcCPU: src, DstCPU: dst})
		}
	}
	for cha := 0; cha < n; cha++ {
		cands = append(cands, Candidate{Kind: KindMemory, SrcCHA: -1, DstCHA: cha, IMC: 0, SrcCPU: -1, DstCPU: cha})
	}
	return cands
}

// trueObs computes the exact observation candidate c would produce under
// the ground-truth placement.
func trueObs(pl *Planner, c Candidate, truth []mesh.Coord) Observation {
	src, dst := pl.routeEndpoints(c, truth)
	o := Observation{SrcCHA: c.SrcCHA, DstCHA: c.DstCHA}
	if c.Kind == KindMemory {
		o.Anchored = true
		o.SrcIMC = c.IMC
	}
	for k := range truth {
		switch meshroute.Classify(src, dst, truth[k]) {
		case topo.ChanUp:
			o.Up = append(o.Up, k)
		case topo.ChanDown:
			o.Down = append(o.Down, k)
		case topo.ChanHorz:
			o.Horz = append(o.Horz, k)
		}
	}
	return o
}

// drive runs the planner against ground truth, answering every issued
// experiment exactly, and returns the sequence of batches.
func drive(t *testing.T, pl *Planner, truth []mesh.Coord) [][]int {
	t.Helper()
	var batches [][]int
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("planner failed to terminate")
		}
		batch, err := pl.NextBatch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			return batches
		}
		batches = append(batches, append([]int(nil), batch...))
		for _, ci := range batch {
			pl.Observe(ci, trueObs(pl, pl.Candidate(ci), truth))
		}
	}
}

func TestPlannerConvergesOnToyPlacement(t *testing.T) {
	cands := toyCandidates(len(toyTruth))
	pl, err := New(toyOptions(), len(toyTruth), cands)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, pl, toyTruth)
	st := pl.Stats()
	if !st.Converged || st.Fallback {
		t.Fatalf("planner did not converge cleanly: %+v", st)
	}
	if st.Measured+st.Failed+st.Skipped != len(cands) {
		t.Fatalf("candidate accounting broken: %+v over %d candidates", st, len(cands))
	}
	if st.Skipped == 0 {
		t.Fatalf("planner measured everything — no savings: %+v", st)
	}

	// The ground truth must be among the survivors, and convergence means
	// no unmeasured candidate can split them.
	foundTruth := false
	for _, p := range pl.survivors {
		if reflect.DeepEqual(p, toyTruth) {
			foundTruth = true
		}
	}
	if !foundTruth {
		t.Fatalf("ground truth missing from %d survivors", len(pl.survivors))
	}
	for ci, state := range pl.state {
		if state != candUnmeasured {
			continue
		}
		c := pl.cands[ci]
		want := string(pl.predictKey(c, pl.survivors[0]))
		for _, p := range pl.survivors[1:] {
			if got := string(pl.predictKey(c, p)); got != want {
				t.Fatalf("skipped candidate %d still splits survivors: %q vs %q", ci, got, want)
			}
		}
	}
}

func TestPlannerDeterministicBatches(t *testing.T) {
	run := func() ([][]int, Stats) {
		pl, err := New(toyOptions(), len(toyTruth), toyCandidates(len(toyTruth)))
		if err != nil {
			t.Fatal(err)
		}
		batches := drive(t, pl, toyTruth)
		return batches, pl.Stats()
	}
	b1, s1 := run()
	for i := 0; i < 3; i++ {
		b2, s2 := run()
		if !reflect.DeepEqual(b1, b2) || s1 != s2 {
			t.Fatalf("run %d diverged:\n%v %+v\nvs\n%v %+v", i, b2, s2, b1, s1)
		}
	}
}

func TestPlannerObservationsFilterSurvivors(t *testing.T) {
	// consistent must accept the truth's own observations and reject a
	// placement that moves an observer off the constrained column.
	pl, err := New(toyOptions(), len(toyTruth), toyCandidates(len(toyTruth)))
	if err != nil {
		t.Fatal(err)
	}
	c := Candidate{Kind: KindMemory, SrcCHA: -1, DstCHA: 0, IMC: 0}
	o := trueObs(pl, c, toyTruth)
	if !pl.consistent(o, toyTruth) {
		t.Fatal("truth rejected by its own observation")
	}
	moved := append([]mesh.Coord(nil), toyTruth...)
	moved[2] = mesh.Coord{Row: 1, Col: 2} // CHA 2 observes IMC→CHA0 on column 0
	if pl.consistent(o, moved) {
		t.Fatal("off-column observer placement should be inconsistent")
	}
}

func TestPlannerFallbackOnContradiction(t *testing.T) {
	cands := toyCandidates(len(toyTruth))
	pl, err := New(toyOptions(), len(toyTruth), cands)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := pl.NextBatch(context.Background())
	if err != nil || len(batch) == 0 {
		t.Fatalf("no first batch: %v", err)
	}
	// Answer the first candidate with an impossible observation: the same
	// CHA both above and below the source.
	pl.Observe(batch[0], Observation{SrcCHA: -1, DstCHA: 0, Anchored: true, SrcIMC: 0, Up: []int{1}, Down: []int{1}})
	for _, ci := range batch[1:] {
		pl.Fail(ci)
	}
	next, err := pl.NextBatch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Stats().Fallback {
		t.Fatalf("contradictory observation should trigger fallback, stats %+v", pl.Stats())
	}
	// Fallback measures everything that remains in one batch.
	remaining := 0
	for _, st := range pl.state {
		if st == candPending {
			remaining++
		}
	}
	if len(next) != remaining || len(next) == 0 {
		t.Fatalf("fallback batch has %d candidates, want all %d remaining", len(next), remaining)
	}
}

func TestPlannerFailedCandidatesAreDropped(t *testing.T) {
	cands := toyCandidates(len(toyTruth))
	pl, err := New(toyOptions(), len(toyTruth), cands)
	if err != nil {
		t.Fatal(err)
	}
	issued := make(map[int]bool)
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("planner failed to terminate")
		}
		batch, err := pl.NextBatch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		for _, ci := range batch {
			if issued[ci] {
				t.Fatalf("candidate %d issued twice", ci)
			}
			issued[ci] = true
			pl.Fail(ci)
		}
	}
	st := pl.Stats()
	if st.Failed != len(cands) || st.Measured != 0 {
		t.Fatalf("all candidates failed, stats %+v", st)
	}
}

func TestPlannerConvergesWithPairsOnly(t *testing.T) {
	// No anchors: the surviving set retains mirror/translation symmetry,
	// but symmetric placements predict identically, so the planner must
	// still converge — with more than one survivor.
	var cands []Candidate
	for src := 0; src < len(toyTruth); src++ {
		for dst := 0; dst < len(toyTruth); dst++ {
			if src != dst {
				cands = append(cands, Candidate{Kind: KindPair, SrcCHA: src, DstCHA: dst, SrcCPU: src, DstCPU: dst})
			}
		}
	}
	pl, err := New(Options{Rows: 3, Cols: 3}, len(toyTruth), cands)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, pl, toyTruth)
	st := pl.Stats()
	if !st.Converged || st.Fallback {
		t.Fatalf("pairs-only survey did not converge: %+v", st)
	}
	if st.Ambiguity < 2 {
		t.Fatalf("anchor-free survey cannot be unambiguous, got %d survivors", st.Ambiguity)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Rows: 0, Cols: 3}, 2, nil); cmerr.ClassOf(err) != cmerr.Permanent {
		t.Errorf("bad grid accepted: %v", err)
	}
	if _, err := New(Options{Rows: 2, Cols: 2}, 5, nil); cmerr.ClassOf(err) != cmerr.Permanent {
		t.Errorf("overfull grid accepted: %v", err)
	}
	if _, err := New(Options{Rows: 2, Cols: 2}, 2, []Candidate{{Kind: KindPair, SrcCHA: 0, DstCHA: 7}}); cmerr.ClassOf(err) != cmerr.Permanent {
		t.Errorf("out-of-range destination accepted: %v", err)
	}
	if _, err := New(Options{Rows: 2, Cols: 2}, 2, []Candidate{{Kind: KindMemory, SrcCHA: -1, DstCHA: 0, IMC: 0}}); cmerr.ClassOf(err) != cmerr.Permanent {
		t.Errorf("unknown IMC accepted: %v", err)
	}
	if _, err := New(Options{Rows: 2, Cols: 2}, 2, []Candidate{{Kind: KindPair, SrcCHA: -1, DstCHA: 0}}); cmerr.ClassOf(err) != cmerr.Permanent {
		t.Errorf("negative pair source accepted: %v", err)
	}
}

func TestKindOp(t *testing.T) {
	want := map[Kind]string{KindPair: "pair", KindSlice: "slice", KindRequest: "request", KindMemory: "memory"}
	for k, s := range want {
		if k.Op() != s {
			t.Errorf("Kind(%d).Op() = %q, want %q", k, k.Op(), s)
		}
	}
}
