package plan

// The enumeration model. locate's full model carries per-path NE/NW
// direction binaries, one-hot channeling, occupancy indicators and a
// packing objective — none of which the planner needs: enumeration asks
// "which placements are possible", and multiplying every placement by
// its auxiliary-binary completions would wreck the projection walk. So
// the planner builds a lean mirror with only the 2n row/column position
// variables and the binary-free constraint rows, and pushes the two
// non-linear conditions — all-distinct tile occupancy and the
// horizontal direction disjunction — into ilp.Enumerate's Prune/Accept
// hooks, where they are cheap to test on concrete coordinates.
//
// The rows must stay in lockstep with locate.addObservation (and with
// consistent in predict.go, which is the same encoding evaluated on a
// concrete placement).

import (
	"coremap/internal/ilp"
	"coremap/internal/mesh"
)

// horzObs is the Accept/Prune-side residue of one observation: the
// horizontal direction disjunction locate encodes with big-M binaries.
type horzObs struct {
	anchored bool
	src      mesh.Coord // source coordinate when anchored
	srcCHA   int        // source CHA when not anchored
	dstCHA   int
	horz     []int
}

// buildModel translates the observations collected so far into an ILP
// over the CHA position variables. It returns the model, the projection
// (r0, c0, r1, c1, … — decode with coordAt), and the branch order
// (c0, r0, c1, r1, … — columns first, mirroring locate.branchOrder so
// the enumeration walks the tree in the solver's canonical shape). As a
// side effect it rebuilds pl.horzObs for the Accept/Prune closures.
func (pl *Planner) buildModel() (m *ilp.Model, project, branch []ilp.Var) {
	m = ilp.NewModel()
	n := pl.numCHA
	r := make([]ilp.Var, n)
	c := make([]ilp.Var, n)
	project = make([]ilp.Var, 0, 2*n)
	branch = make([]ilp.Var, 0, 2*n)
	for k := 0; k < n; k++ {
		r[k] = m.NewVar("r", 0, int64(pl.opts.Rows-1))
		c[k] = m.NewVar("c", 0, int64(pl.opts.Cols-1))
		project = append(project, r[k], c[k])
		branch = append(branch, c[k], r[k])
	}
	pl.horzObs = pl.horzObs[:0]
	for _, o := range pl.observations {
		e := o.DstCHA
		if o.Anchored {
			// Source coordinates are known constants; fold them into
			// single-variable rows instead of referencing fixed vars.
			src := pl.opts.IMCPositions[o.SrcIMC]
			for _, k := range o.Up {
				m.AddEq("up-col", []ilp.Term{ilp.T(1, c[k])}, int64(src.Col))
				m.AddLE("up-src", []ilp.Term{ilp.T(1, r[k])}, int64(src.Row)-1)
				m.AddGE("up-dst", []ilp.Term{ilp.T(1, r[k]), ilp.T(-1, r[e])}, 0)
			}
			for _, k := range o.Down {
				m.AddEq("dn-col", []ilp.Term{ilp.T(1, c[k])}, int64(src.Col))
				m.AddGE("dn-src", []ilp.Term{ilp.T(1, r[k])}, int64(src.Row)+1)
				m.AddGE("dn-dst", []ilp.Term{ilp.T(1, r[e]), ilp.T(-1, r[k])}, 0)
			}
		} else {
			s := o.SrcCHA
			for _, k := range o.Up {
				m.AddEq("up-col", []ilp.Term{ilp.T(1, c[k]), ilp.T(-1, c[s])}, 0)
				m.AddGE("up-src", []ilp.Term{ilp.T(1, r[s]), ilp.T(-1, r[k])}, 1)
				m.AddGE("up-dst", []ilp.Term{ilp.T(1, r[k]), ilp.T(-1, r[e])}, 0)
			}
			for _, k := range o.Down {
				m.AddEq("dn-col", []ilp.Term{ilp.T(1, c[k]), ilp.T(-1, c[s])}, 0)
				m.AddGE("dn-src", []ilp.Term{ilp.T(1, r[k]), ilp.T(-1, r[s])}, 1)
				m.AddGE("dn-dst", []ilp.Term{ilp.T(1, r[e]), ilp.T(-1, r[k])}, 0)
			}
		}
		for _, k := range o.Horz {
			if k == e {
				continue
			}
			m.AddEq("hz-row", []ilp.Term{ilp.T(1, r[k]), ilp.T(-1, r[e])}, 0)
		}
		if len(o.Horz) > 0 {
			pl.horzObs = append(pl.horzObs, horzObs{
				anchored: o.Anchored,
				src:      pl.srcConst(o),
				srcCHA:   o.SrcCHA,
				dstCHA:   e,
				horz:     o.Horz,
			})
		}
	}
	return m, project, branch
}

func (pl *Planner) srcConst(o Observation) mesh.Coord {
	if o.Anchored {
		return pl.opts.IMCPositions[o.SrcIMC]
	}
	return mesh.Coord{}
}

// coordAt decodes CHA k from an enumeration projection.
func coordAt(proj []int64, k int) mesh.Coord {
	return mesh.Coord{Row: int(proj[2*k]), Col: int(proj[2*k+1])}
}

// accept is the leaf filter for ilp.Enumerate: given a fully fixed
// projection, enforce the conditions the lean model omits — every CHA on
// its own tile, and every observation's horizontal observers reachable
// in a single direction of travel. CHAs may share a tile with a memory
// controller; the all-distinct condition is CHA-vs-CHA only, matching
// locate's lazy separation.
func (pl *Planner) accept(proj []int64) bool {
	coords := pl.projCoords
	for k := 0; k < pl.numCHA; k++ {
		coords[k] = coordAt(proj, k)
	}
	pl.cellEpoch++
	for k := 0; k < pl.numCHA; k++ {
		cell := coords[k].Row*pl.opts.Cols + coords[k].Col
		if pl.cellMark[cell] == pl.cellEpoch {
			return false
		}
		pl.cellMark[cell] = pl.cellEpoch
	}
	for i := range pl.horzObs {
		h := &pl.horzObs[i]
		src := h.src
		if !h.anchored {
			src = coords[h.srcCHA]
		}
		if !horzFeasible(src, coords[h.dstCHA], h.horz, h.dstCHA, pl.srcGap(),
			func(k int) mesh.Coord { return coords[k] }) {
			return false
		}
	}
	return true
}

// prune is the subtree filter for ilp.Enumerate, called at every search
// node with the partially fixed projection. It applies the same two
// conditions as accept, restricted to what is already decided — two
// fully placed CHAs on the same tile, or a horizontal disjunction whose
// participants are all placed and satisfiable in neither direction —
// so conflicting subtrees are cut long before a full placement is
// assembled. Both tests are monotone in the fixed set, as Prune's
// contract requires: a violation can never be repaired by fixing more
// variables.
func (pl *Planner) prune(vals []int64, fixed []bool) bool {
	coords := pl.projCoords
	placed := pl.coordFixed
	pl.cellEpoch++
	for k := 0; k < pl.numCHA; k++ {
		placed[k] = fixed[2*k] && fixed[2*k+1]
		if !placed[k] {
			continue
		}
		coords[k] = coordAt(vals, k)
		cell := coords[k].Row*pl.opts.Cols + coords[k].Col
		if pl.cellMark[cell] == pl.cellEpoch {
			return false
		}
		pl.cellMark[cell] = pl.cellEpoch
	}
	for i := range pl.horzObs {
		h := &pl.horzObs[i]
		if !h.anchored && !placed[h.srcCHA] {
			continue
		}
		if !placed[h.dstCHA] {
			continue
		}
		all := true
		for _, k := range h.horz {
			if !placed[k] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		src := h.src
		if !h.anchored {
			src = coords[h.srcCHA]
		}
		if !horzFeasible(src, coords[h.dstCHA], h.horz, h.dstCHA, pl.srcGap(),
			func(k int) mesh.Coord { return coords[k] }) {
			return false
		}
	}
	return true
}
