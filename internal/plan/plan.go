// Package plan implements the adaptive measurement planner: instead of
// surveying every ordered core pair (O(n²) experiments per map), the
// planner interleaves probing and solving — it maintains the set of
// placements still consistent with the observations collected so far,
// scores the unmeasured experiments by how evenly their predicted
// outcome splits that set, and emits the next measurement batch. The
// survey stops as soon as no remaining experiment can distinguish any
// two surviving placements, at which point the measured subset carries
// exactly the information content of the exhaustive sweep and the
// reconstruction is byte-identical to it.
//
// The planner never talks to hardware. internal/probe owns candidate
// construction and experiment execution and drives the planner through
// NextBatch / Observe / Fail; this package owns the placement bookkeeping:
//
//   - a lean binary-free ILP over the row/column position variables whose
//     bounded enumeration (ilp.Enumerate) materializes the surviving
//     placement set once ambiguity drops under Options.AmbiguityCap;
//   - an exact observation predictor — the topology backend's routing
//     model (Options.Predictor, defaulting to the mesh backend's
//     Y-then-X dimension-order meshroute.Predictor) — used to partition
//     survivors by predicted outcome;
//   - a per-observation consistency check mirroring the constraint
//     encoding of locate.addObservation, used to filter survivors
//     incrementally as measurements arrive.
//
// # Correctness contract
//
// Survivors are filtered by *constraint* consistency, never by predicted
// equality: the locate encoding is necessary-but-not-sufficient (it does
// not, for example, forbid on-path tiles missing from an observer list),
// so the surviving set is always a superset of the final ILP's feasible
// placements and can never exclude the exhaustive survey's optimum. The
// convergence test — every unmeasured candidate's predicted observation
// is identical across all survivors — then guarantees that measuring the
// rest would add constraints every survivor already satisfies, which is
// what makes the planned map byte-identical to the exhaustive one.
//
// Degradation is monotone toward the exhaustive survey: candidates whose
// experiments fail permanently are dropped (no observation, no filter),
// and if the surviving set ever empties — a prediction-model mismatch, a
// corrupted observation — the planner falls back to measuring everything
// that remains, which is the exhaustive sweep by definition.
package plan

import (
	"context"
	"sort"

	"coremap/internal/cmerr"
	"coremap/internal/ilp"
	"coremap/internal/mesh"
	"coremap/internal/topo"
	"coremap/internal/topo/meshroute"
)

// stage tags every error this package classifies.
const stage = "plan"

// Kind identifies the experiment family of a candidate, mirroring the
// four families of probe.RunWith.
type Kind uint8

const (
	// KindPair is a store/load bounce between two mapped cores
	// (src core tile → sink core tile on the BL data ring).
	KindPair Kind = iota
	// KindSlice streams fills from an LLC-only slice to a core
	// (slice tile → core tile).
	KindSlice
	// KindRequest streams miss requests from a core to an LLC-only
	// slice on the AD ring (core tile → slice tile).
	KindRequest
	// KindMemory streams fills from a memory controller at a known die
	// position to a core (IMC tile → core tile).
	KindMemory
)

// Op returns the probe failure-record label of the family.
func (k Kind) Op() string {
	switch k {
	case KindPair:
		return "pair"
	case KindSlice:
		return "slice"
	case KindRequest:
		return "request"
	case KindMemory:
		return "memory"
	}
	return "unknown"
}

// Candidate is one runnable experiment. SrcCHA/DstCHA are the traffic
// route endpoints (source first, matching probe.Observation); the CPU
// fields carry whatever the executing prober needs to drive the
// experiment and are opaque to the planner.
type Candidate struct {
	Kind Kind
	// SrcCHA is the traffic source CHA; -1 for KindMemory, whose source
	// is the memory controller IMC.
	SrcCHA int
	// DstCHA is the traffic destination CHA.
	DstCHA int
	// IMC indexes Options.IMCPositions for KindMemory candidates.
	IMC int
	// SrcCPU and DstCPU are the OS CPUs backing the endpoints (-1 when
	// the endpoint is not a core).
	SrcCPU, DstCPU int
}

// Observation is the planner's view of one completed experiment. It
// mirrors probe.Observation field-for-field; the duplication is what
// keeps the import graph acyclic (probe imports plan).
type Observation struct {
	SrcCHA, DstCHA int
	Anchored       bool
	SrcIMC         int
	Up, Down, Horz []int
}

// Options configures a Planner.
type Options struct {
	// Rows and Cols are the die grid dimensions (required).
	Rows, Cols int
	// IMCPositions are the known memory-controller die coordinates,
	// indexed by Candidate.IMC / Observation.SrcIMC.
	IMCPositions []mesh.Coord
	// AmbiguityCap bounds the surviving-placement set the planner is
	// willing to materialize: while more placements than this remain
	// consistent, it keeps seeding broad measurements instead of
	// enumerating. 0 selects DefaultAmbiguityCap.
	AmbiguityCap int
	// BatchSize is the number of experiments emitted per scored round
	// (0 selects DefaultBatchSize). Seeding rounds ignore it.
	BatchSize int
	// MaxNodes bounds each enumeration's search nodes (0 selects
	// DefaultMaxNodes). A budget hit postpones materialization to the
	// next round; it never aborts the survey.
	MaxNodes int
	// PaperExactBounds must match the locate.Options.PaperExactBounds
	// the reconstruction will use, so the planner's consistency check
	// mirrors the solver's constraint encoding exactly.
	PaperExactBounds bool
	// Predictor is the topology backend's observation model the planner
	// partitions survivors with. nil selects the mesh backend's
	// meshroute.Predictor — the Y-then-X dimension-order model the
	// pre-refactor planner computed in-package — which is the only
	// predictor whose constraint mirror (consistent) matches
	// locate.addObservation; other backends run their own surveys.
	Predictor topo.Predictor
}

// Defaults for the zero Options fields.
const (
	DefaultAmbiguityCap = 256
	DefaultBatchSize    = 4
	DefaultMaxNodes     = 1_000_000
)

// initialNodeBudget is the first enumeration attempt's search-node
// allowance; see Planner.nodeBudget.
const initialNodeBudget = 10_000

func (o Options) withDefaults() Options {
	if o.AmbiguityCap <= 0 {
		o.AmbiguityCap = DefaultAmbiguityCap
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = DefaultMaxNodes
	}
	if o.Predictor == nil {
		o.Predictor = meshroute.Predictor{}
	}
	return o
}

// Stats summarizes a planner's run for telemetry.
type Stats struct {
	// Rounds is the number of batches emitted.
	Rounds int
	// Enumerations counts ilp.Enumerate attempts (successful or not).
	Enumerations int
	// Measured and Failed count resolved candidates; Skipped is the
	// number of candidates the survey never had to run.
	Measured, Failed, Skipped int
	// Ambiguity is the size of the surviving placement set (0 before
	// materialization or after a fallback).
	Ambiguity int
	// Converged reports that the survey stopped because no remaining
	// candidate could split the surviving set.
	Converged bool
	// Fallback reports that the planner degraded to measure-everything
	// mode after the surviving set emptied.
	Fallback bool
}

// candidate measurement lifecycle.
type candState uint8

const (
	candUnmeasured candState = iota
	candPending
	candMeasured
	candFailed
)

// Planner drives one survey. Not safe for concurrent use.
type Planner struct {
	opts   Options
	numCHA int
	cands  []Candidate
	state  []candState

	observations []Observation
	// survivors is the materialized set of placements (CHA → coordinate)
	// consistent with every observation so far; nil until the first
	// complete enumeration.
	survivors [][]mesh.Coord
	fallback  bool
	converged bool

	rounds, enumerations   int
	measuredCnt, failedCnt int
	// nodeBudget is the search-node allowance of the next enumeration
	// attempt. It starts small and doubles after every incomplete
	// attempt (up to Options.MaxNodes), so the early rounds — when the
	// few observations in hand still admit a vast placement space —
	// fail fast instead of burning the full budget every NextBatch.
	nodeBudget int
	// nextAttemptObs is the observation count an incomplete enumeration
	// demands before the next attempt: retrying with one more batch of
	// evidence against a search space that just overran the budget is
	// nearly always another overrun, so attempts wait for roughly half
	// a pivot star of fresh observations.
	nextAttemptObs int

	// horzObs is rebuilt by buildModel for the Accept/Prune closures.
	horzObs []horzObs

	// scratch reused across rounds.
	projCoords []mesh.Coord
	coordFixed []bool
	cellMark   []int64
	cellEpoch  int64
	keyBuf     []byte
	counts     map[string]int
	remaining  []int
	scored     []scoredCand
}

type scoredCand struct {
	idx   int
	score int
}

// New validates the configuration and returns a planner over the given
// candidate pool. numCHA is the number of position unknowns (every CHA on
// the die, core-backed or LLC-only); candidates reference CHAs by those
// IDs. The pool order is the deterministic tie-break for scoring, so
// callers should build it in their canonical (exhaustive-sweep) order.
func New(opts Options, numCHA int, cands []Candidate) (*Planner, error) {
	opts = opts.withDefaults()
	if opts.Rows <= 0 || opts.Cols <= 0 {
		return nil, cmerr.New(cmerr.Permanent, stage, "invalid die grid %dx%d", opts.Rows, opts.Cols)
	}
	if numCHA <= 0 || numCHA > opts.Rows*opts.Cols {
		return nil, cmerr.New(cmerr.Permanent, stage, "%d CHAs cannot fit a %dx%d grid", numCHA, opts.Rows, opts.Cols)
	}
	if numCHA > 255 {
		return nil, cmerr.New(cmerr.Permanent, stage, "%d CHAs exceed the planner's key encoding limit", numCHA)
	}
	for i, c := range cands {
		if c.DstCHA < 0 || c.DstCHA >= numCHA {
			return nil, cmerr.New(cmerr.Permanent, stage, "candidate %d destination CHA %d out of range", i, c.DstCHA)
		}
		if c.Kind == KindMemory {
			if c.IMC < 0 || c.IMC >= len(opts.IMCPositions) {
				return nil, cmerr.New(cmerr.Permanent, stage, "candidate %d references IMC %d but only %d positions are known", i, c.IMC, len(opts.IMCPositions))
			}
		} else if c.SrcCHA < 0 || c.SrcCHA >= numCHA {
			return nil, cmerr.New(cmerr.Permanent, stage, "candidate %d source CHA %d out of range", i, c.SrcCHA)
		}
	}
	return &Planner{
		opts:       opts,
		numCHA:     numCHA,
		cands:      append([]Candidate(nil), cands...),
		state:      make([]candState, len(cands)),
		projCoords: make([]mesh.Coord, numCHA),
		coordFixed: make([]bool, numCHA),
		cellMark:   make([]int64, opts.Rows*opts.Cols),
		counts:     make(map[string]int),
	}, nil
}

// Candidate returns the pool entry at index i (as issued by NextBatch).
func (pl *Planner) Candidate(i int) Candidate { return pl.cands[i] }

// Stats returns the planner's current bookkeeping.
func (pl *Planner) Stats() Stats {
	skipped := 0
	for _, st := range pl.state {
		if st == candUnmeasured {
			skipped++
		}
	}
	return Stats{
		Rounds:       pl.rounds,
		Enumerations: pl.enumerations,
		Measured:     pl.measuredCnt,
		Failed:       pl.failedCnt,
		Skipped:      skipped,
		Ambiguity:    len(pl.survivors),
		Converged:    pl.converged,
		Fallback:     pl.fallback,
	}
}

// NextBatch returns the pool indices of the next experiments to run, or
// an empty batch when the survey is over (converged, or no candidates
// remain). Every returned candidate must be resolved with Observe or
// Fail before the next call. The only error condition is context
// cancellation during enumeration.
func (pl *Planner) NextBatch(ctx context.Context) ([]int, error) {
	if pl.converged {
		return nil, nil
	}
	remaining := pl.remaining[:0]
	for i, st := range pl.state {
		if st == candUnmeasured {
			remaining = append(remaining, i)
		}
	}
	pl.remaining = remaining
	if len(remaining) == 0 {
		return nil, nil
	}
	if pl.fallback {
		return pl.issue(remaining), nil
	}
	if pl.survivors == nil && len(pl.observations) >= max(1, pl.nextAttemptObs) {
		if err := pl.materialize(ctx); err != nil {
			return nil, err
		}
		if pl.fallback {
			return pl.issue(remaining), nil
		}
	}
	if pl.survivors != nil {
		batch := pl.scoreAndPick(remaining)
		if pl.converged {
			return nil, nil
		}
		return pl.issue(batch), nil
	}
	return pl.issue(pl.seedBatch(remaining)), nil
}

// issue marks a batch pending and counts the round.
func (pl *Planner) issue(batch []int) []int {
	if len(batch) == 0 {
		return nil
	}
	for _, ci := range batch {
		pl.state[ci] = candPending
	}
	pl.rounds++
	return batch
}

// Observe records a completed measurement for pool index ci and filters
// the surviving placements against it.
func (pl *Planner) Observe(ci int, o Observation) {
	if pl.state[ci] == candMeasured || pl.state[ci] == candFailed {
		return
	}
	pl.state[ci] = candMeasured
	pl.measuredCnt++
	pl.observations = append(pl.observations, o)
	if pl.survivors == nil {
		return
	}
	kept := pl.survivors[:0]
	for _, p := range pl.survivors {
		if pl.consistent(o, p) {
			kept = append(kept, p)
		}
	}
	pl.survivors = kept
	if len(pl.survivors) == 0 {
		// Every placement the constraints admitted is contradicted: the
		// prediction model and reality have diverged (which the design
		// rules out for supported configurations, but a degraded or
		// misconfigured run can get here). Degrade to the exhaustive
		// sweep; the reconstruction then sees everything measurable.
		pl.survivors = nil
		pl.fallback = true
	}
}

// Fail drops a permanently failed candidate from the pool: no
// observation, no filtering, and the survey continues without it.
func (pl *Planner) Fail(ci int) {
	if pl.state[ci] == candMeasured || pl.state[ci] == candFailed {
		return
	}
	pl.state[ci] = candFailed
	pl.failedCnt++
}

// materialize attempts to enumerate the placements consistent with the
// observations so far. A complete enumeration installs the survivor set;
// a cap or node-budget overrun leaves it nil (still too ambiguous — keep
// seeding). An empty complete enumeration means the constraint system is
// unsatisfiable (degraded measurements), which also degrades to the
// exhaustive sweep.
func (pl *Planner) materialize(ctx context.Context) error {
	pl.enumerations++
	if pl.nodeBudget == 0 {
		pl.nodeBudget = initialNodeBudget
	}
	if pl.nodeBudget > pl.opts.MaxNodes {
		pl.nodeBudget = pl.opts.MaxNodes
	}
	m, project, branch := pl.buildModel()
	res, err := ilp.Enumerate(ctx, m, ilp.EnumOptions{
		Project:     project,
		BranchOrder: branch,
		Cap:         pl.opts.AmbiguityCap,
		MaxNodes:    pl.nodeBudget,
		Accept:      pl.accept,
		Prune:       pl.prune,
	})
	if err != nil {
		return err
	}
	if !res.Complete {
		// Too ambiguous for this attempt's budget. Double it so a survey
		// that needs many rounds of observations before enumeration can
		// complete spends geometrically — the total effort across all
		// failed attempts stays within ~2× the successful one — instead
		// of the full MaxNodes every round, and wait for a meaningful
		// amount of fresh evidence before trying again.
		pl.nodeBudget *= 2
		pl.nextAttemptObs = len(pl.observations) + max(pl.numCHA/2, 8)
		return nil
	}
	if len(res.Solutions) == 0 {
		pl.fallback = true
		return nil
	}
	pl.survivors = make([][]mesh.Coord, len(res.Solutions))
	for i, proj := range res.Solutions {
		p := make([]mesh.Coord, pl.numCHA)
		for k := 0; k < pl.numCHA; k++ {
			p[k] = mesh.Coord{Row: int(proj[2*k]), Col: int(proj[2*k+1])}
		}
		pl.survivors[i] = p
	}
	return nil
}

// seedBatch picks measurements while the placement set is still too
// ambiguous to enumerate: first every memory-anchored candidate (absolute
// position information, cheapest way to pin the frame), then pivot stars
// — all unmeasured pairs involving the core with the most unmeasured
// partners — and finally plain pool order for whatever family remains.
func (pl *Planner) seedBatch(remaining []int) []int {
	var mem []int
	for _, ci := range remaining {
		if pl.cands[ci].Kind == KindMemory {
			mem = append(mem, ci)
		}
	}
	if len(mem) > 0 {
		return mem
	}
	// Pivot star over pair candidates.
	deg := make(map[int]int)
	for _, ci := range remaining {
		if c := pl.cands[ci]; c.Kind == KindPair {
			deg[c.SrcCHA]++
			deg[c.DstCHA]++
		}
	}
	if len(deg) > 0 {
		pivot, best := -1, 0
		for cha := 0; cha < pl.numCHA; cha++ {
			if d := deg[cha]; d > best {
				pivot, best = cha, d
			}
		}
		var star []int
		for _, ci := range remaining {
			if c := pl.cands[ci]; c.Kind == KindPair && (c.SrcCHA == pivot || c.DstCHA == pivot) {
				star = append(star, ci)
			}
		}
		return star
	}
	// No pairs left: a chunk of whatever remains, in pool order.
	n := 4 * pl.opts.BatchSize
	if n > len(remaining) {
		n = len(remaining)
	}
	return remaining[:n]
}

// scoreAndPick partitions the survivors by each unmeasured candidate's
// predicted observation and returns the candidates that split the set
// most evenly (smallest largest-block first, pool order as tie-break).
// When no candidate splits the set at all, the survey has converged:
// every remaining measurement is already decided by the constraints in
// hand, so it sets pl.converged and returns nothing.
func (pl *Planner) scoreAndPick(remaining []int) []int {
	scored := pl.scored[:0]
	for _, ci := range remaining {
		blocks, maxBlock := pl.partition(pl.cands[ci])
		if blocks > 1 {
			scored = append(scored, scoredCand{idx: ci, score: maxBlock})
		}
	}
	pl.scored = scored
	if len(scored) == 0 {
		pl.converged = true
		return nil
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].score != scored[j].score {
			return scored[i].score < scored[j].score
		}
		return scored[i].idx < scored[j].idx
	})
	n := pl.opts.BatchSize
	if n > len(scored) {
		n = len(scored)
	}
	batch := make([]int, n)
	for i := 0; i < n; i++ {
		batch[i] = scored[i].idx
	}
	return batch
}

// partition groups the survivors by candidate c's predicted observation,
// returning the number of distinct outcomes and the largest group size.
func (pl *Planner) partition(c Candidate) (blocks, maxBlock int) {
	counts := pl.counts
	for k := range counts {
		delete(counts, k)
	}
	for _, p := range pl.survivors {
		key := pl.predictKey(c, p)
		counts[string(key)]++
	}
	for _, n := range counts {
		blocks++
		if n > maxBlock {
			maxBlock = n
		}
	}
	return blocks, maxBlock
}
