// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. III and V) against the simulated Xeon population. Both
// cmd/experiments and the repository's benchmarks drive it; each function
// prints a human-readable table to Config.Out and returns the structured
// numbers so tests and EXPERIMENTS.md can assert the trends.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"coremap"
	"coremap/internal/cmerr"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/memo"
	"coremap/internal/mesh"
	"coremap/internal/obs"
	"coremap/internal/probe"
	"coremap/internal/stats"
)

// Caches bundles the pipeline's two memoization layers: the probe-side
// measurement cache (keyed by chip PPIN) and the reconstruction cache
// (keyed by the canonical observation fingerprint). A survey threading one
// Caches through all its instances pays for one ILP solve per *distinct
// observed pattern* — the cache hit rate mirrors Table II's
// distinct-pattern counts — and re-surveys of the same population skip
// measurement entirely.
type Caches struct {
	Locate *locate.Cache
	Probe  *probe.ResultCache
}

// NewCaches returns an empty cache set.
func NewCaches() *Caches {
	return &Caches{Locate: locate.NewCache(), Probe: probe.NewResultCache()}
}

// CacheStats snapshots both layers' counters.
type CacheStats struct {
	Locate, Probe memo.Stats
}

// Stats snapshots the current counters (zero for a nil cache set).
func (c *Caches) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Locate: c.Locate.Stats(), Probe: c.Probe.Stats()}
}

// Sub returns the counter deltas since an earlier snapshot.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{Locate: s.Locate.Sub(o.Locate), Probe: s.Probe.Sub(o.Probe)}
}

// Register wires both cache layers into reg (as locate/cache/* and
// probe/cache/* gauges), so a run's cache statistics come out of the
// telemetry snapshot exactly once instead of via per-survey printouts.
// No-op on a nil cache set or registry; an exact-duplicate registration
// is reported by the registry.
func (c *Caches) Register(reg *obs.Registry) error {
	if c == nil {
		return nil
	}
	if err := c.Locate.Register(reg); err != nil {
		return err
	}
	return c.Probe.Register(reg)
}

// Config sizes an experiment run.
type Config struct {
	// Out receives the printed tables (nil = io.Discard).
	Out io.Writer
	// Instances is the per-SKU survey size (default 100, the paper's).
	Instances int
	// PayloadBits is the covert-channel payload length (default 10000,
	// the paper's 10 Kbit).
	PayloadBits int
	// Seed makes runs reproducible.
	Seed int64
	// Quick shrinks surveys and payloads for fast runs (benchmarks).
	Quick bool
	// NoCache disables the measurement and reconstruction caches,
	// reproducing the uncached baseline (every instance measured and
	// solved from scratch). The printed tables are identical either way
	// apart from the "[cache]" statistic lines.
	NoCache bool
	// Caches supplies the cache set to thread through every survey. nil
	// (with NoCache false) allocates a fresh set per experiment call;
	// passing a shared set lets repeated experiments reuse each other's
	// work, e.g. Fig. 4 reusing Table II's 8259CL survey.
	Caches *Caches
	// NoPlan surveys exhaustively instead of with the adaptive
	// measurement planner. The recovered maps are identical either way;
	// the flag exists as the ablation baseline for host-operation counts.
	// (The measurement-set ablations always survey exhaustively — see
	// Ablations.)
	NoPlan bool
	// Topology names the interconnect backend the Quick experiment
	// surveys ("" = mesh). The paper-reproduction experiments (tables,
	// figures) are mesh-only and ignore it.
	Topology string
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Instances == 0 {
		c.Instances = 100
	}
	if c.PayloadBits == 0 {
		c.PayloadBits = 10000
	}
	if c.Quick {
		if c.Instances > 25 {
			c.Instances = 25
		}
		if c.PayloadBits > 400 {
			c.PayloadBits = 400
		}
	}
	if c.NoCache {
		c.Caches = nil
	} else if c.Caches == nil {
		c.Caches = NewCaches()
	}
	return c
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// dieFor returns the public die geometry of a SKU, including the IMC
// positions the memory-anchored extension needs.
func dieFor(sku *machine.SKU) coremap.DieInfo {
	return coremap.DieInfo{Rows: sku.Rows, Cols: sku.Cols, IMC: sku.IMC}
}

// Instance is one surveyed machine with its pipeline output.
type Instance struct {
	Machine *machine.Machine
	Result  *coremap.Result
}

// truth returns the ground-truth CHA positions of a machine.
func truth(m *machine.Machine) []mesh.Coord {
	out := make([]mesh.Coord, m.NumCHAs())
	for cha := range out {
		out[cha] = m.TrueCHACoord(cha)
	}
	return out
}

// forEachInstance samples n machines from sku's population and runs fn on
// each from a bounded worker pool; machines are fully independent, so the
// survey parallelizes across cores. Results keep their sample order. A
// cancelled context stops the dispatch loop, drains the in-flight work and
// returns an Interrupted error.
func forEachInstance(ctx context.Context, sku *machine.SKU, n int, seed int64, fn func(i int, m *machine.Machine) error) error {
	pop := machine.NewPopulation(sku, seed, machine.Config{})
	machines := make([]*machine.Machine, n)
	for i := range machines {
		machines[i], _ = pop.Next()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i, machines[i])
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err := cmerr.FromContext(ctx, "experiments"); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s instance %d: %w", sku.Name, i, err)
		}
	}
	return nil
}

// probeOptions builds one instance's measurement options, wiring in the
// survey's shared probe cache when one is configured.
func (c Config) probeOptions(i int) probe.Options {
	o := probe.Options{Seed: c.Seed + int64(i)}
	if c.Caches != nil {
		o.Cache = c.Caches.Probe
	}
	return o
}

// locateOptions builds the per-instance reconstruction options. Workers is
// 1 because forEachInstance already fans out across instances — nested
// parallelism would only oversubscribe the machine (and Workers does not
// enter the cache fingerprint, so this choice never splits the cache).
func (c Config) locateOptions() locate.Options {
	o := locate.Options{Workers: 1}
	if c.Caches != nil {
		o.Cache = c.Caches.Locate
	}
	return o
}

// surveyStep1 runs only the OS-core-ID ↔ CHA-ID step over a population.
func surveyStep1(ctx context.Context, sku *machine.SKU, n int, cfg Config) (_ [][]int, err error) {
	ctx, span := obs.Start(ctx, "experiments/survey-step1")
	span.SetAttrStr("topology", "mesh").SetAttrStr("sku", sku.Name).SetAttr("instances", int64(n))
	defer func() { span.End(err) }()
	obs.RegistryFrom(ctx).Counter("experiments/surveys").Inc()

	out := make([][]int, n)
	err = forEachInstance(ctx, sku, n, cfg.Seed, func(i int, m *machine.Machine) error {
		p, err := probe.New(m, cfg.probeOptions(i))
		if err != nil {
			return err
		}
		out[i], err = p.MapCoresToCHAs(ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// survey runs the full pipeline over a population, threading the config's
// cache set through both pipeline layers.
func survey(ctx context.Context, sku *machine.SKU, n int, cfg Config) (_ []Instance, err error) {
	ctx, span := obs.Start(ctx, "experiments/survey")
	span.SetAttrStr("topology", "mesh").SetAttrStr("sku", sku.Name).SetAttr("instances", int64(n))
	defer func() { span.End(err) }()
	obs.RegistryFrom(ctx).Counter("experiments/surveys").Inc()

	out := make([]Instance, n)
	err = forEachInstance(ctx, sku, n, cfg.Seed, func(i int, m *machine.Machine) error {
		res, err := coremap.MapMachine(ctx, m, dieFor(sku), coremap.Options{
			Probe:  cfg.probeOptions(i),
			Locate: cfg.locateOptions(),
			NoPlan: cfg.NoPlan,
		})
		if err != nil {
			return err
		}
		out[i] = Instance{Machine: m, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MappingRow is one distinct OS→CHA mapping with its frequency.
type MappingRow struct {
	N       int
	Mapping []int
}

// Table1Result holds the Table I reproduction for one CPU model.
type Table1Result struct {
	SKU  string
	Rows []MappingRow
}

// Table1 reproduces Table I: the distinct measured OS-core-ID ↔ CHA-ID
// mappings of 100 instances per model. 8124M and 8175M must each collapse
// to a single mapping; 8259CL splits into a handful of cases dominated by
// two, driven by where its LLC-only tiles fall in the CHA numbering.
func Table1(ctx context.Context, cfg Config) ([]Table1Result, error) {
	cfg = cfg.withDefaults()
	var out []Table1Result
	cfg.printf("Table I: OS core ID ↔ CHA ID mappings (%d instances per model)\n", cfg.Instances)
	for _, sku := range []*machine.SKU{machine.SKU8124M, machine.SKU8175M, machine.SKU8259CL} {
		mappings, err := surveyStep1(ctx, sku, cfg.Instances, cfg)
		if err != nil {
			return nil, err
		}
		counter := stats.NewCounter()
		repr := make(map[string][]int)
		for _, mp := range mappings {
			key := stats.MappingKey(mp)
			counter.Add(key)
			repr[key] = mp
		}
		res := Table1Result{SKU: sku.Name}
		for _, c := range counter.Top(counter.Unique()) {
			res.Rows = append(res.Rows, MappingRow{N: c.N, Mapping: repr[c.Key]})
		}
		out = append(out, res)
		cfg.printf("\n%s (%d distinct mappings):\n", sku.Name, len(res.Rows))
		for _, row := range res.Rows {
			cfg.printf("  %3d insts  CHA IDs: %v\n", row.N, row.Mapping)
		}
	}
	return out, nil
}

// Table2Result holds the Table II statistics for one CPU model.
type Table2Result struct {
	SKU       string
	Top       []stats.Count
	Unique    int
	Instances []Instance
}

// Table2 reproduces Table II: the frequency statistics of observed core
// location patterns per model — a few patterns dominate, yet each model
// exhibits many distinct patterns, most of all the 8259CL.
func Table2(ctx context.Context, cfg Config) ([]Table2Result, error) {
	cfg = cfg.withDefaults()
	var out []Table2Result
	cfg.printf("Table II: observed core location pattern statistics (%d instances per model)\n\n", cfg.Instances)
	for _, sku := range []*machine.SKU{machine.SKU8124M, machine.SKU8175M, machine.SKU8259CL} {
		insts, err := survey(ctx, sku, cfg.Instances, cfg)
		if err != nil {
			return nil, err
		}
		counter := stats.NewCounter()
		for _, in := range insts {
			counter.Add(in.Result.PatternKey())
		}
		res := Table2Result{
			SKU:       sku.Name,
			Top:       counter.Top(4),
			Unique:    counter.Unique(),
			Instances: insts,
		}
		out = append(out, res)
		cfg.printf("%s:\n", sku.Name)
		for i, c := range res.Top {
			cfg.printf("  pattern #%d: %d insts\n", i+1, c.N)
		}
		cfg.printf("  total unique patterns: %d\n\n", res.Unique)
	}
	return out, nil
}

// Fig4 reproduces Fig. 4: the three most frequently observed 8259CL core
// location maps, rendered with OS-core-ID/CHA-ID labels.
func Fig4(ctx context.Context, cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	insts, err := survey(ctx, machine.SKU8259CL, cfg.Instances, cfg)
	if err != nil {
		return nil, err
	}
	counter := stats.NewCounter()
	repr := make(map[string]*coremap.Result)
	for _, in := range insts {
		key := in.Result.PatternKey()
		counter.Add(key)
		if _, ok := repr[key]; !ok {
			repr[key] = in.Result
		}
	}
	var rendered []string
	cfg.printf("Fig. 4: three most frequent 8259CL core location maps (OS/CHA)\n")
	for i, c := range counter.Top(3) {
		grid := repr[c.Key].Render()
		rendered = append(rendered, grid)
		cfg.printf("\nPattern #%d (%d instances):\n%s", i+1, c.N, grid)
	}
	return rendered, nil
}

// Fig5Result is the Ice Lake mapping survey.
type Fig5Result struct {
	Unique   int
	Rendered string
	// RelativeScore is the mean pairwise order agreement with ground
	// truth across the surveyed instances.
	RelativeScore float64
}

// Fig5 reproduces Fig. 5: mapping 10 Ice Lake Xeon 6354 instances (the
// paper's OCI survey) and rendering one example map. The CHA numbering
// pattern differs visibly from the Skylake generation.
func Fig5(ctx context.Context, cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	n := 10
	insts, err := survey(ctx, machine.SKU6354, n, cfg)
	if err != nil {
		return nil, err
	}
	counter := stats.NewCounter()
	var relSum float64
	for _, in := range insts {
		counter.Add(in.Result.PatternKey())
		relSum += locate.RelativeScore(in.Result.Pos, truth(in.Machine))
	}
	res := &Fig5Result{
		Unique:        counter.Unique(),
		Rendered:      insts[0].Result.Render(),
		RelativeScore: relSum / float64(n),
	}
	cfg.printf("Fig. 5: Xeon 6354 (Ice Lake) mapping, %d instances: %d unique patterns, mean relative order score %.3f\n\nExample map (OS/CHA):\n%s",
		n, res.Unique, res.RelativeScore, res.Rendered)
	return res, nil
}
