package experiments

import (
	"context"

	"coremap"
	"coremap/internal/cmerr"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/probe"
)

// RobustnessCell is the outcome of mapping attempts at one platform-noise
// level.
type RobustnessCell struct {
	// NoiseFlits is the background packet size injected roughly every
	// 8 cache operations.
	NoiseFlits uint64
	// Step1Success is the fraction of instances whose OS↔CHA mapping
	// was recovered without error and matched ground truth.
	Step1Success float64
	// MapExact is the fraction of instances whose full map was exact
	// (up to symmetry).
	MapExact float64
	// MeanRelative is the mean relative-order score of the maps that
	// were produced (0 when none).
	MeanRelative float64
	// Failures counts instances where the pipeline returned an error.
	Failures int
}

// Robustness sweeps the background-traffic level and reports where the
// measurement method starts to break — the failure-injection study behind
// the probe's calibrated counter thresholds.
func Robustness(ctx context.Context, cfg Config) ([]RobustnessCell, error) {
	return RobustnessLevels(ctx, cfg, []uint64{0, 2, 4, 8, 16, 32})
}

// RobustnessLevels is Robustness over a caller-chosen set of noise levels.
func RobustnessLevels(ctx context.Context, cfg Config, levels []uint64) ([]RobustnessCell, error) {
	cfg = cfg.withDefaults()
	n := cfg.Instances
	if n > 8 {
		n = 8
	}
	sku := machine.SKU8259CL
	cfg.printf("Probe robustness vs background mesh traffic (%d instances per level)\n", n)
	var out []RobustnessCell
	for _, flits := range levels {
		cell := RobustnessCell{NoiseFlits: flits}
		var relSum float64
		produced := 0
		for i := 0; i < n; i++ {
			m := machine.Generate(sku, i, machine.Config{
				Seed:          cfg.Seed + int64(i),
				NoiseFlits:    flits,
				NoiseEveryOps: 8,
			})
			res, err := coremap.MapMachine(ctx, m, dieFor(sku), coremap.Options{
				Probe: probe.Options{Seed: cfg.Seed + int64(i)},
			})
			if err != nil {
				if cmerr.IsInterrupted(err) {
					return nil, err
				}
				cell.Failures++
				continue
			}
			truthMapping := m.TrueOSToCHA()
			step1OK := true
			for cpu, cha := range res.OSToCHA {
				if cha != truthMapping[cpu] {
					step1OK = false
					break
				}
			}
			if step1OK {
				cell.Step1Success++
			}
			tr := truth(m)
			if exact, _ := locate.Score(res.Pos, tr); exact {
				cell.MapExact++
			}
			relSum += locate.RelativeScore(res.Pos, tr)
			produced++
		}
		cell.Step1Success /= float64(n)
		cell.MapExact /= float64(n)
		if produced > 0 {
			cell.MeanRelative = relSum / float64(produced)
		}
		out = append(out, cell)
		cfg.printf("  noise %2d flits/8 ops: step1 %.0f%%, exact map %.0f%%, relative %.3f, failures %d/%d\n",
			cell.NoiseFlits, cell.Step1Success*100, cell.MapExact*100, cell.MeanRelative, cell.Failures, n)
	}
	return out, nil
}
