package experiments

import (
	"context"
	"testing"

	"coremap/internal/machine"
	"coremap/internal/stats"
)

// The experiment tests assert the paper's qualitative claims ("shape"),
// not its absolute numbers, at reduced survey/payload sizes; the full-size
// runs live behind cmd/experiments and the repository benchmarks.

func TestTable1SkylakeMappingsInvariant(t *testing.T) {
	res, err := Table1(context.Background(), Config{Instances: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Result{}
	for _, r := range res {
		byName[r.SKU] = r
	}

	// 8124M and 8175M: every instance shares one mapping, and it is the
	// paper's stride-4 grouped row.
	want8124 := []int{0, 4, 8, 12, 16, 2, 6, 10, 14, 1, 5, 9, 13, 17, 3, 7, 11, 15}
	r := byName["Xeon Platinum 8124M"]
	if len(r.Rows) != 1 {
		t.Fatalf("8124M has %d distinct mappings, want 1", len(r.Rows))
	}
	for i, cha := range want8124 {
		if r.Rows[0].Mapping[i] != cha {
			t.Fatalf("8124M mapping[%d] = %d, want %d (Table I row)", i, r.Rows[0].Mapping[i], cha)
		}
	}
	if len(byName["Xeon Platinum 8175M"].Rows) != 1 {
		t.Errorf("8175M has %d distinct mappings, want 1", len(byName["Xeon Platinum 8175M"].Rows))
	}

	// 8259CL: several mappings, dominated by one; the dominant one has
	// CHA 3 and 25 unassigned (LLC-only).
	cl := byName["Xeon Platinum 8259CL"]
	if len(cl.Rows) < 2 {
		t.Errorf("8259CL has %d distinct mappings, want several", len(cl.Rows))
	}
	if cl.Rows[0].N <= cl.Rows[len(cl.Rows)-1].N {
		t.Error("8259CL mappings are not frequency-sorted")
	}
	seen := map[int]bool{}
	for _, cha := range cl.Rows[0].Mapping {
		seen[cha] = true
	}
	if seen[3] || seen[25] {
		t.Errorf("dominant 8259CL mapping assigns CHA 3/25, which should be LLC-only: %v", cl.Rows[0].Mapping)
	}
}

func TestTable2DiversityOrdering(t *testing.T) {
	res, err := Table2(context.Background(), Config{Instances: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	unique := map[string]int{}
	top := map[string]int{}
	for _, r := range res {
		unique[r.SKU] = r.Unique
		if len(r.Top) > 0 {
			top[r.SKU] = r.Top[0].N
		}
	}
	// The paper's ordering: the 8259CL exhibits far more distinct
	// location patterns than the 18-core part, which has one dominant
	// pattern.
	if unique["Xeon Platinum 8259CL"] <= unique["Xeon Platinum 8124M"] {
		t.Errorf("pattern diversity: 8259CL %d ≤ 8124M %d", unique["Xeon Platinum 8259CL"], unique["Xeon Platinum 8124M"])
	}
	if top["Xeon Platinum 8124M"] < 15/2 {
		t.Errorf("8124M dominant pattern only %d/15 instances; the paper has a majority pattern", top["Xeon Platinum 8124M"])
	}
}

func TestFig4RendersThreePatterns(t *testing.T) {
	grids, err := Fig4(context.Background(), Config{Instances: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 3 {
		t.Fatalf("rendered %d grids, want 3", len(grids))
	}
	for i, g := range grids {
		if len(g) == 0 {
			t.Errorf("grid %d empty", i)
		}
	}
	if grids[0] == grids[1] {
		t.Error("top two patterns render identically")
	}
}

func TestFig5IceLake(t *testing.T) {
	res, err := Fig5(context.Background(), Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 6 unique patterns out of 10 OCI instances.
	if res.Unique < 2 || res.Unique > 10 {
		t.Errorf("unique patterns = %d, want a handful out of 10", res.Unique)
	}
	if res.RelativeScore < 0.9 {
		t.Errorf("mean relative order score %.3f below 0.9", res.RelativeScore)
	}
	if len(res.Rendered) == 0 {
		t.Error("no rendered map")
	}
}

func TestFig6HopTrendAndDecode(t *testing.T) {
	res, err := Fig6(context.Background(), Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HopBER) < 2 {
		t.Fatalf("only %d hops measured", len(res.HopBER))
	}
	if res.HopBER[0] > 0.1 {
		t.Errorf("1-hop BER %.3f at 1 bps; the paper decodes this reliably", res.HopBER[0])
	}
	last := res.HopBER[len(res.HopBER)-1]
	if last < res.HopBER[0] {
		t.Errorf("farthest hop BER %.3f better than 1-hop %.3f", last, res.HopBER[0])
	}
	if len(res.SenderTrace) == 0 || len(res.HopTraces[0]) == 0 {
		t.Error("missing traces")
	}
	// The sender's own swing dwarfs the 1-hop sink's (Fig. 6 scales).
	if span(res.SenderTrace) < 2*span(res.HopTraces[0]) {
		t.Errorf("sender swing %.1f not clearly larger than sink swing %.1f",
			span(res.SenderTrace), span(res.HopTraces[0]))
	}
}

func span(trace []float64) float64 {
	lo, hi := trace[0], trace[0]
	for _, v := range trace {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func TestFig7Shapes(t *testing.T) {
	cfg := Config{Seed: 8, PayloadBits: 240}
	vert, err := Fig7(context.Background(), cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	horz, err := Fig7(context.Background(), cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cells []Fig7Cell, hops int, rate float64) float64 {
		for _, c := range cells {
			if c.Hops == hops && c.BitRate == rate {
				return c.BER
			}
		}
		t.Fatalf("missing cell %d hops @ %g bps", hops, rate)
		return 0
	}
	// 1-hop at 1 bps is essentially error-free.
	if b := get(vert, 1, 1); b > 0.02 {
		t.Errorf("vertical 1-hop @ 1 bps BER %.3f, want ≈0", b)
	}
	// BER grows with rate on the 1-hop channel.
	if get(vert, 1, 8) <= get(vert, 1, 1) {
		t.Error("vertical 1-hop BER does not grow with rate")
	}
	// ≥2 hops is much worse than 1 hop (paper: unusable).
	if get(vert, 2, 2) < get(vert, 1, 2)+0.05 {
		t.Errorf("vertical 2-hop @ 2 bps (%.3f) not clearly worse than 1-hop (%.3f)",
			get(vert, 2, 2), get(vert, 1, 2))
	}
	// Vertical beats horizontal at the same rate (Fig. 7a vs 7b).
	if get(vert, 1, 4) >= get(horz, 1, 4) {
		t.Errorf("vertical 1-hop @ 4 bps (%.3f) not better than horizontal (%.3f)",
			get(vert, 1, 4), get(horz, 1, 4))
	}
}

func TestFig8aMultiSenderHelps(t *testing.T) {
	cells, err := Fig8a(context.Background(), Config{Seed: 9, PayloadBits: 240})
	if err != nil {
		t.Fatal(err)
	}
	get := func(senders int, rate float64) float64 {
		for _, c := range cells {
			if c.Senders == senders && c.BitRate == rate {
				return c.BER
			}
		}
		t.Fatalf("missing cell ×%d @ %g", senders, rate)
		return 0
	}
	if get(4, 8) > get(1, 8) {
		t.Errorf("×4 senders @ 8 bps (%.3f) worse than ×1 (%.3f)", get(4, 8), get(1, 8))
	}
	if get(8, 8) > get(1, 8) {
		t.Errorf("×8 senders @ 8 bps (%.3f) worse than ×1 (%.3f)", get(8, 8), get(1, 8))
	}
}

func TestFig8bAggregateHeadline(t *testing.T) {
	cells, best, err := Fig8b(context.Background(), Config{Seed: 10, PayloadBits: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no cells measured")
	}
	// Paper headline: ~15 bps aggregate under 1% BER; the simulated die
	// must land in that regime (≥10 bps).
	if best < 10 {
		t.Errorf("max aggregate under 1%% BER = %g bps, want ≥10 (paper: 15)", best)
	}
	// Pushing per-channel rate must eventually raise the error rate.
	var x8low, x8high float64 = -1, -1
	for _, c := range cells {
		if c.Channels == 8 && c.PerRate == 1 {
			x8low = c.BER
		}
		if c.Channels == 8 && c.PerRate == 5 {
			x8high = c.BER
		}
	}
	if x8low >= 0 && x8high >= 0 && x8high <= x8low {
		t.Errorf("×8 BER at 5 bps (%.3f) not above 1 bps (%.3f)", x8high, x8low)
	}
}

func TestVerifyAdjacency(t *testing.T) {
	res, err := Verify(context.Background(), Config{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdjacentBest < res.Receivers-1 {
		t.Errorf("only %d/%d receivers verified adjacent (exceptions: %+v)",
			res.AdjacentBest, res.Receivers, res.Exceptions)
	}
}

func TestAccuracyBeatsBaselines(t *testing.T) {
	res, err := Accuracy(context.Background(), Config{Instances: 5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.MeanRelative < 0.9 {
			t.Errorf("%s: relative order %.3f below 0.9", r.SKU, r.MeanRelative)
		}
		if r.MeanTileAccuracy <= r.LstopoAccuracy {
			t.Errorf("%s: pipeline (%.3f) does not beat lstopo (%.3f)", r.SKU, r.MeanTileAccuracy, r.LstopoAccuracy)
		}
		if r.LatencyAmbiguity < 1 {
			t.Errorf("%s: latency ambiguity %.2f < 1", r.SKU, r.LatencyAmbiguity)
		}
	}
	// On the diverse 8259CL population, direct measurement must clearly
	// beat assuming the dominant pattern.
	for _, r := range res {
		if r.SKU == "Xeon Platinum 8259CL" && r.MeanTileAccuracy <= r.PatternGenAccuracy {
			t.Errorf("8259CL: pipeline (%.3f) does not beat pattern generalization (%.3f)",
				r.MeanTileAccuracy, r.PatternGenAccuracy)
		}
	}
}

// TestPatternKeyMatchesSurvey ties the stats layer to the pipeline: two
// instances generated from the same fusing pattern must share a pattern
// key after independent measurement.
func TestPatternKeyMatchesSurvey(t *testing.T) {
	a, err := survey(context.Background(), machine.SKU8259CL, 1, Config{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := survey(context.Background(), machine.SKU8259CL, 1, Config{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	ka := stats.PatternKey(a[0].Result.Pos, a[0].Result.OSToCHA)
	kb := stats.PatternKey(b[0].Result.Pos, b[0].Result.OSToCHA)
	if ka != kb {
		t.Error("same population seed produced different pattern keys")
	}
}
