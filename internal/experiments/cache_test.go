package experiments

import (
	"context"
	"bytes"
	"reflect"
	"strings"
	"testing"

	"coremap/internal/machine"
)

// TestSurveyCacheInvariance is the survey-level correctness pin: a cached
// and an uncached survey of the same population must produce identical
// results, instance by instance.
func TestSurveyCacheInvariance(t *testing.T) {
	const n = 6
	cached, err := survey(context.Background(), machine.SKU8259CL, n, Config{Seed: 5, Caches: NewCaches()})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := survey(context.Background(), machine.SKU8259CL, n, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if cached[i].Result.PPIN != plain[i].Result.PPIN {
			t.Fatalf("instance %d: PPIN differs", i)
		}
		if !reflect.DeepEqual(cached[i].Result.OSToCHA, plain[i].Result.OSToCHA) {
			t.Errorf("instance %d: OS→CHA mapping differs with cache", i)
		}
		if !reflect.DeepEqual(cached[i].Result.Pos, plain[i].Result.Pos) {
			t.Errorf("instance %d: reconstructed map differs with cache", i)
		}
	}
}

// TestSurveyCacheReuse: re-surveying the same population through a shared
// cache set must hit the probe layer on every instance — the second survey
// does no measurement work at all.
func TestSurveyCacheReuse(t *testing.T) {
	const n = 5
	caches := NewCaches()
	cfg := Config{Seed: 6, Caches: caches}
	first, err := survey(context.Background(), machine.SKU8175M, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := caches.Stats()
	second, err := survey(context.Background(), machine.SKU8175M, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := caches.Stats().Sub(afterFirst)
	if d.Probe.Hits < n {
		t.Errorf("re-survey hit the probe cache %d times, want ≥%d", d.Probe.Hits, n)
	}
	if d.Probe.Misses != 0 {
		t.Errorf("re-survey missed the probe cache %d times, want 0", d.Probe.Misses)
	}
	for i := range first {
		if !reflect.DeepEqual(first[i].Result.Pos, second[i].Result.Pos) {
			t.Fatalf("instance %d: re-survey changed the map", i)
		}
	}
}

// TestSurveyLocateCacheMirrorsPatterns: within one survey, the locate
// layer solves once per distinct observed pattern — the Table II link.
// Instances sharing a fusing pattern produce identical observations, so
// solves == unique patterns and hits+coalesced == the rest.
func TestSurveyLocateCacheMirrorsPatterns(t *testing.T) {
	const n = 12
	caches := NewCaches()
	insts, err := survey(context.Background(), machine.SKU8175M, n, Config{Seed: 7, Caches: caches})
	if err != nil {
		t.Fatal(err)
	}
	unique := map[string]bool{}
	for _, in := range insts {
		unique[in.Result.PatternKey()] = true
	}
	st := caches.Stats().Locate
	if int(st.Misses) != len(unique) {
		t.Errorf("locate cache solved %d times for %d unique patterns", st.Misses, len(unique))
	}
	if int(st.Hits+st.Coalesced) != n-len(unique) {
		t.Errorf("locate cache reused %d results, want %d", st.Hits+st.Coalesced, n-len(unique))
	}
}

// TestTableOutputCacheInvariant: the printed tables are byte-identical
// with and without caching once the "[cache]" statistic lines are
// filtered — the property the CI cache-invariance job diffs for.
func TestTableOutputCacheInvariant(t *testing.T) {
	run := func(noCache bool) string {
		var buf bytes.Buffer
		if _, err := Table1(context.Background(), Config{Out: &buf, Instances: 6, Seed: 9, NoCache: noCache}); err != nil {
			t.Fatal(err)
		}
		var kept []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "[cache]") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	cached, plain := run(false), run(true)
	if cached != plain {
		t.Errorf("filtered table output differs with cache:\n--- cached ---\n%s\n--- uncached ---\n%s", cached, plain)
	}
}
