package experiments

import (
	"context"
	"testing"
)

func TestRobustnessSweep(t *testing.T) {
	// The full six-level sweep (including the 32-flit cliff with its
	// 16× adaptive repetition) lives behind cmd/experiments; the test
	// covers the levels the calibrated probe must survive.
	cells, err := RobustnessLevels(context.Background(), Config{Seed: 30, Instances: 2}, []uint64{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	byNoise := map[uint64]RobustnessCell{}
	for _, c := range cells {
		byNoise[c.NoiseFlits] = c
	}
	// Calibrated thresholds must keep step 1 perfect through moderate
	// background traffic.
	for _, flits := range []uint64{0, 8} {
		if c := byNoise[flits]; c.Step1Success < 1.0 {
			t.Errorf("noise %d: step1 success %.2f, want 1.0", flits, c.Step1Success)
		}
		if c := byNoise[flits]; c.Failures != 0 {
			t.Errorf("noise %d: %d pipeline failures", flits, c.Failures)
		}
	}
	// The maps themselves must stay order-consistent under noise.
	if c := byNoise[8]; c.MeanRelative < 0.95 {
		t.Errorf("noise 8: relative order %.3f below 0.95", c.MeanRelative)
	}
}
