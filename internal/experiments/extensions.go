package experiments

import (
	"context"

	"coremap"
	"coremap/internal/covert"
	"coremap/internal/locate"
	"coremap/internal/machine"
	"coremap/internal/probe"
)

// The extension experiments cover what the paper discusses but does not
// evaluate: the sensor-side defenses of Sec. IV, error correction on top of
// the raw channel, the Manchester-vs-OOK design choice inherited from
// Bartolini et al., and ablations of this implementation's own choices
// (strict vs printed bounding boxes, slice-source measurements).

// DefenseCell is one (resolution, update period, rate) measurement.
type DefenseCell struct {
	ResolutionC  int
	UpdatePeriod float64
	BitRate      float64
	BER          float64
}

// Defense evaluates the paper's proposed countermeasures: reducing the
// thermal sensor's resolution or its update frequency shrinks the covert
// channel's usable rate.
func Defense(ctx context.Context, cfg Config) ([]DefenseCell, error) {
	cfg = cfg.withDefaults()
	rig, err := newCovertRig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pairs := rig.plan.PairsAtOffset(1, 0)
	if len(pairs) == 0 {
		return nil, errNoPairs
	}
	pair := pairs[len(pairs)/2]
	cfg.printf("Defense evaluation: vertical 1-hop channel vs sensor degradation (%d-bit payloads)\n", cfg.PayloadBits)
	var out []DefenseCell
	cell := int64(5000)
	for _, res := range []int{1, 2, 4} {
		for _, period := range []float64{0, 0.25, 1.0} {
			for _, rate := range []float64{1, 2, 4} {
				cell++
				rig.m.SetThermalDefense(res, period)
				plat := rig.platform(cell, pair[:])
				payload := randomPayload(cfg.PayloadBits, cfg.Seed+cell)
				r, err := covert.Run(ctx, plat, []covert.ChannelSpec{{
					Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload,
				}}, covert.Config{BitRate: rate})
				if err != nil {
					rig.m.SetThermalDefense(0, 0)
					return nil, err
				}
				c := DefenseCell{ResolutionC: res, UpdatePeriod: period, BitRate: rate, BER: r[0].BER}
				out = append(out, c)
				cfg.printf("  %d°C resolution, %.2gs update period, %g bps: BER %.4f\n",
					res, period, rate, c.BER)
			}
		}
	}
	rig.m.SetThermalDefense(0, 0)
	return out, nil
}

var errNoPairs = errString("experiments: no vertical pairs on the recovered map")

type errString string

func (e errString) Error() string { return string(e) }

// ECCCell compares codings on one channel operating point.
type ECCCell struct {
	Scheme      string
	RawBER      float64
	ResidualBER float64
	// Goodput is delivered data bits per second after coding overhead.
	Goodput float64
}

// ECC runs the raw channel past its reliable point and shows what
// repetition-3 and Hamming(7,4) coding recover — the error-correction
// follow-up the paper leaves open.
func ECC(ctx context.Context, cfg Config) ([]ECCCell, error) {
	cfg = cfg.withDefaults()
	rig, err := newCovertRig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pairs := rig.plan.PairsAtOffset(1, 0)
	if len(pairs) == 0 {
		return nil, errNoPairs
	}
	pair := pairs[len(pairs)/2]
	const rate = 4 // past the raw sub-1% point
	data := randomPayload(cfg.PayloadBits, cfg.Seed+77)

	run := func(coded []bool, cell int64) ([]bool, float64, error) {
		plat := rig.platform(cell, pair[:])
		r, err := covert.Run(ctx, plat, []covert.ChannelSpec{{
			Senders: []int{pair[0]}, Receiver: pair[1], Payload: coded,
		}}, covert.Config{BitRate: rate})
		if err != nil {
			return nil, 0, err
		}
		return r[0].Decoded, r[0].BER, nil
	}
	residual := func(decoded []bool) float64 {
		errs := 0
		for i := range data {
			if i >= len(decoded) || decoded[i] != data[i] {
				errs++
			}
		}
		return float64(errs) / float64(len(data))
	}

	var out []ECCCell
	cfg.printf("Error correction at %g bps (raw channel past its reliable point)\n", float64(rate))

	raw, rawBER, err := run(data, 6001)
	if err != nil {
		return nil, err
	}
	out = append(out, ECCCell{Scheme: "none", RawBER: rawBER, ResidualBER: residual(raw), Goodput: rate})

	repDec, repBER, err := run(covert.EncodeRepetition(data, 3), 6002)
	if err != nil {
		return nil, err
	}
	out = append(out, ECCCell{
		Scheme: "repetition-3", RawBER: repBER,
		ResidualBER: residual(covert.DecodeRepetition(repDec, 3)),
		Goodput:     rate / 3,
	})

	hamDec, hamBER, err := run(covert.EncodeHamming74(data), 6003)
	if err != nil {
		return nil, err
	}
	out = append(out, ECCCell{
		Scheme: "hamming(7,4)", RawBER: hamBER,
		ResidualBER: residual(covert.DecodeHamming74(hamDec)),
		Goodput:     rate * 4 / 7,
	})

	for _, c := range out {
		cfg.printf("  %-13s raw BER %.4f → residual %.4f, goodput %.2f bps\n",
			c.Scheme, c.RawBER, c.ResidualBER, c.Goodput)
	}
	return out, nil
}

// ModulationResult compares Manchester against naive OOK on a biased
// payload.
type ModulationResult struct {
	ManchesterBER float64
	OOKBER        float64
}

// Modulation demonstrates why the channel uses Manchester coding: a biased
// bit pattern shifts the die's baseline temperature, which breaks OOK's
// global threshold but leaves the DC-free Manchester decoder intact.
func Modulation(ctx context.Context, cfg Config) (*ModulationResult, error) {
	cfg = cfg.withDefaults()
	rig, err := newCovertRig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pairs := rig.plan.PairsAtOffset(1, 0)
	if len(pairs) == 0 {
		return nil, errNoPairs
	}
	pair := pairs[len(pairs)/2]
	// Heavily biased payload: long monotonic runs.
	payload := make([]bool, cfg.PayloadBits)
	rng := randomPayload(cfg.PayloadBits, cfg.Seed+88)
	for i := range payload {
		payload[i] = rng[i] || rng[(i+1)%len(rng)] || rng[(i+2)%len(rng)]
	}
	res := &ModulationResult{}
	for _, mod := range []covert.Modulation{covert.ModManchester, covert.ModOOK} {
		plat := rig.platform(7000+int64(mod), pair[:])
		r, err := covert.Run(ctx, plat, []covert.ChannelSpec{{
			Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload,
		}}, covert.Config{BitRate: 2, Modulation: mod})
		if err != nil {
			return nil, err
		}
		if mod == covert.ModManchester {
			res.ManchesterBER = r[0].BER
		} else {
			res.OOKBER = r[0].BER
		}
	}
	cfg.printf("Modulation ablation (biased payload, 2 bps): Manchester BER %.4f, OOK BER %.4f\n",
		res.ManchesterBER, res.OOKBER)
	return res, nil
}

// AblationResult compares pipeline variants on one SKU population.
type AblationResult struct {
	Variant          string
	MeanTileAccuracy float64
	MeanRelative     float64
	MeanSolverNodes  float64
	// MeanAbsoluteAccuracy scores without any symmetry allowance —
	// meaningful for the memory-anchored variants.
	MeanAbsoluteAccuracy float64
}

// Ablations measures this implementation's two deliberate choices: the
// strict dimension-order bounding boxes (vs the paper's printed looser
// inequalities) and the slice-source measurement extension that anchors
// LLC-only tiles.
func Ablations(ctx context.Context, cfg Config) ([]AblationResult, error) {
	cfg = cfg.withDefaults()
	n := cfg.Instances
	if n > 10 {
		n = 10
	}
	variants := []struct {
		name string
		sku  *machine.SKU
		opts coremap.Options
	}{
		{"8259CL strict bounds + slice sources", machine.SKU8259CL, coremap.Options{}},
		{"8259CL paper-printed bounds", machine.SKU8259CL, coremap.Options{Locate: locate.Options{PaperExactBounds: true}}},
		{"8259CL paper-faithful (no slice sources)", machine.SKU8259CL, coremap.Options{PaperFaithful: true}},
		{"8259CL memory-anchored", machine.SKU8259CL, coremap.Options{MemoryAnchors: true}},
		{"6354 with slice sources", machine.SKU6354, coremap.Options{}},
		{"6354 paper-faithful (no slice sources)", machine.SKU6354, coremap.Options{PaperFaithful: true}},
		{"6354 memory-anchored", machine.SKU6354, coremap.Options{MemoryAnchors: true}},
		{"8124M core pairs only", machine.SKU8124M, coremap.Options{}},
		{"8124M memory-anchored", machine.SKU8124M, coremap.Options{MemoryAnchors: true}},
	}
	cfg.printf("Pipeline ablations (%d instances per variant)\n", n)
	var out []AblationResult
	for _, v := range variants {
		pop := machine.NewPopulation(v.sku, cfg.Seed, machine.Config{})
		res := AblationResult{Variant: v.name}
		for i := 0; i < n; i++ {
			m, _ := pop.Next()
			opts := v.opts
			opts.Probe = probe.Options{Seed: cfg.Seed + int64(i)}
			// The ablations compare how much *information* each
			// measurement-set variant hands the solver (MeanSolverNodes is
			// the yardstick), so they must survey exhaustively: the adaptive
			// planner deliberately withholds redundant experiments, which
			// would measure the planner's scheduling instead of the
			// variant's information content.
			opts.NoPlan = true
			r, err := coremap.MapMachine(ctx, m, dieFor(v.sku), opts)
			if err != nil {
				return nil, err
			}
			tr := truth(m)
			_, correct := locate.Score(r.Pos, tr)
			_, absCorrect := locate.ScoreAbsolute(r.Pos, tr)
			res.MeanTileAccuracy += float64(correct) / float64(len(tr))
			res.MeanAbsoluteAccuracy += float64(absCorrect) / float64(len(tr))
			res.MeanRelative += locate.RelativeScore(r.Pos, tr)
			res.MeanSolverNodes += float64(r.SolverNodes)
		}
		res.MeanTileAccuracy /= float64(n)
		res.MeanAbsoluteAccuracy /= float64(n)
		res.MeanRelative /= float64(n)
		res.MeanSolverNodes /= float64(n)
		out = append(out, res)
		cfg.printf("  %-42s tile accuracy %.3f (absolute %.3f), relative %.3f, nodes %.0f\n",
			res.Variant, res.MeanTileAccuracy, res.MeanAbsoluteAccuracy, res.MeanRelative, res.MeanSolverNodes)
	}
	return out, nil
}
