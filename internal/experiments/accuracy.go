package experiments

import (
	"context"

	"coremap/internal/baseline"
	"coremap/internal/locate"
	"coremap/internal/machine"
)

// AccuracyResult aggregates mapping quality and baseline comparisons for
// one CPU model (this repository's own evaluation, beyond the paper's
// tables; the paper verifies correctness thermally in Sec. V-D).
type AccuracyResult struct {
	SKU string
	// ExactRate is the fraction of instances whose recovered map equals
	// ground truth up to the inherent mirror/translation symmetry.
	ExactRate float64
	// MeanTileAccuracy is the mean fraction of tiles on their true cell.
	MeanTileAccuracy float64
	// MeanRelative is the mean pairwise order agreement (1.0 = every
	// relative position correct even when vacant rows compact).
	MeanRelative float64
	// MeanSolverNodes is the mean branch-and-bound effort.
	MeanSolverNodes float64
	// LstopoAccuracy is the fraction of consecutive-OS-ID pairs that are
	// physically adjacent (the lstopo neighbour heuristic's hit rate).
	LstopoAccuracy float64
	// PatternGenAccuracy is the McCalpin-style baseline: per-core
	// position accuracy when assuming the model's most common pattern.
	PatternGenAccuracy float64
	// LatencyAmbiguity is the mean number of candidate positions left by
	// two-IMC latency trilateration (1.0 would be fully determined).
	LatencyAmbiguity float64
}

// Accuracy measures the full pipeline and the three baselines across a
// population of each SKU.
func Accuracy(ctx context.Context, cfg Config) ([]AccuracyResult, error) {
	cfg = cfg.withDefaults()
	n := cfg.Instances
	if n > 25 {
		n = 25 // full pipeline per instance; 25 gives stable means
	}
	cfg.printf("Mapping accuracy and baselines (%d instances per model)\n\n", n)
	var out []AccuracyResult
	for _, sku := range machine.SKUs {
		insts, err := survey(ctx, sku, n, cfg)
		if err != nil {
			return nil, err
		}
		ref := machine.Generate(sku, 0, machine.Config{Seed: cfg.Seed})
		gen := baseline.NewPatternGeneralization(ref)
		res := AccuracyResult{SKU: sku.Name}
		for _, in := range insts {
			tr := truth(in.Machine)
			exact, correct := locate.Score(in.Result.Pos, tr)
			if exact {
				res.ExactRate++
			}
			res.MeanTileAccuracy += float64(correct) / float64(len(tr))
			res.MeanRelative += locate.RelativeScore(in.Result.Pos, tr)
			res.MeanSolverNodes += float64(in.Result.SolverNodes)
			res.LstopoAccuracy += baseline.LstopoNeighborAccuracy(in.Machine)
			res.PatternGenAccuracy += gen.Accuracy(in.Machine)
			res.LatencyAmbiguity += baseline.NewLatencyLocator(in.Machine).MeanAmbiguity()
		}
		fn := float64(len(insts))
		res.ExactRate /= fn
		res.MeanTileAccuracy /= fn
		res.MeanRelative /= fn
		res.MeanSolverNodes /= fn
		res.LstopoAccuracy /= fn
		res.PatternGenAccuracy /= fn
		res.LatencyAmbiguity /= fn
		out = append(out, res)
		cfg.printf("%s:\n", res.SKU)
		cfg.printf("  pipeline: exact %.0f%%, tile accuracy %.3f, relative order %.3f, solver nodes %.0f\n",
			res.ExactRate*100, res.MeanTileAccuracy, res.MeanRelative, res.MeanSolverNodes)
		cfg.printf("  baselines: lstopo neighbour hit rate %.3f, pattern generalization %.3f, latency ambiguity %.1f positions\n\n",
			res.LstopoAccuracy, res.PatternGenAccuracy, res.LatencyAmbiguity)
	}
	return out, nil
}
