package experiments

import (
	"context"
	"reflect"

	"coremap/internal/cmerr"
	"coremap/internal/obs"
	"coremap/internal/topo"
	// Link the full backend roster so Config.Topology resolves by name.
	_ "coremap/internal/topo/backends"
)

// QuickResult is one backend quick survey with its CI verdicts.
type QuickResult struct {
	// Survey is the first run's outcome (measurement counts, placement,
	// exactness, render).
	Survey *topo.SurveyResult
	// Deterministic reports that a second survey with the same seed
	// reproduced the first byte for byte.
	Deterministic bool
}

// Quick runs the topology-backend smoke survey: one seeded instance of
// Config.Topology's default SKU through the backend's full
// measure-emit-solve pipeline, then the same instance again to prove the
// run deterministic. The CI smoke matrix drives this per backend; the
// gate is Exact && Optimal && Deterministic.
func Quick(ctx context.Context, cfg Config) (_ *QuickResult, err error) {
	cfg = cfg.withDefaults()
	name := cfg.Topology
	if name == "" {
		name = topo.KindMesh.String()
	}
	ctx, span := obs.Start(ctx, "experiments/quick")
	span.SetAttrStr("topology", name)
	defer func() { span.End(err) }()

	b, err := topo.Lookup(name)
	if err != nil {
		return nil, err
	}
	first, err := b.QuickSurvey(ctx, "", cfg.Seed)
	if err != nil {
		return nil, cmerr.Ensure(cmerr.Permanent, "experiments", err)
	}
	again, err := b.QuickSurvey(ctx, "", cfg.Seed)
	if err != nil {
		return nil, cmerr.Ensure(cmerr.Permanent, "experiments", err)
	}
	res := &QuickResult{
		Survey:        first,
		Deterministic: reflect.DeepEqual(first, again),
	}
	cfg.printf("Quick survey: topology=%s sku=%s seed=%d\n", first.Backend, first.SKU, cfg.Seed)
	cfg.printf("  agents=%d observations=%d host_ops=%d\n", first.Agents, first.Observations, first.HostOps)
	cfg.printf("  exact=%v optimal=%v deterministic=%v\n", first.Exact, first.Optimal, res.Deterministic)
	cfg.printf("%s", first.Rendered)
	return res, nil
}
