package experiments

import (
	"context"
	"testing"
)

func TestDefenseDegradesChannel(t *testing.T) {
	cells, err := Defense(context.Background(), Config{Seed: 20, PayloadBits: 300})
	if err != nil {
		t.Fatal(err)
	}
	get := func(res int, period, rate float64) float64 {
		for _, c := range cells {
			if c.ResolutionC == res && c.UpdatePeriod == period && c.BitRate == rate {
				return c.BER
			}
		}
		t.Fatalf("missing cell %d°C %.2fs %g bps", res, period, rate)
		return 0
	}
	// Undefended baseline works at low rates.
	if b := get(1, 0, 1); b > 0.02 {
		t.Errorf("undefended 1 bps BER %.3f, want ≈0", b)
	}
	// A 1-second sensor update period must destroy even the 1 bps
	// channel (fewer than 2 samples per bit).
	if b := get(1, 1.0, 1); b < 0.1 {
		t.Errorf("1s update period leaves 1 bps BER at %.3f; defense ineffective", b)
	}
	// Coarser resolution must hurt the mid-rate channel.
	if get(4, 0, 2) <= get(1, 0, 2) {
		t.Errorf("4°C resolution (%.3f) not worse than 1°C (%.3f) at 2 bps",
			get(4, 0, 2), get(1, 0, 2))
	}
}

func TestECCImprovesResidualErrors(t *testing.T) {
	cells, err := ECC(context.Background(), Config{Seed: 21, PayloadBits: 280})
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]ECCCell{}
	for _, c := range cells {
		byScheme[c.Scheme] = c
	}
	raw := byScheme["none"]
	ham := byScheme["hamming(7,4)"]
	rep := byScheme["repetition-3"]
	if raw.ResidualBER == 0 {
		t.Skip("raw channel happened to be clean at this operating point")
	}
	if ham.ResidualBER >= raw.ResidualBER {
		t.Errorf("hamming residual %.4f not below raw %.4f", ham.ResidualBER, raw.ResidualBER)
	}
	if rep.ResidualBER >= raw.ResidualBER {
		t.Errorf("repetition residual %.4f not below raw %.4f", rep.ResidualBER, raw.ResidualBER)
	}
	if ham.Goodput <= rep.Goodput {
		t.Errorf("hamming goodput %.2f not above repetition %.2f", ham.Goodput, rep.Goodput)
	}
}

func TestModulationManchesterBeatsOOK(t *testing.T) {
	res, err := Modulation(context.Background(), Config{Seed: 22, PayloadBits: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.ManchesterBER > res.OOKBER {
		t.Errorf("Manchester BER %.4f worse than OOK %.4f on a biased payload",
			res.ManchesterBER, res.OOKBER)
	}
}

func TestAblationsSliceSourcesHelpICX(t *testing.T) {
	cells, err := Ablations(context.Background(), Config{Seed: 23, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, c := range cells {
		byName[c.Variant] = c
	}
	with := byName["6354 with slice sources"]
	without := byName["6354 paper-faithful (no slice sources)"]
	if with.MeanSolverNodes >= without.MeanSolverNodes {
		t.Errorf("slice sources did not reduce ICX solver effort: %.0f vs %.0f",
			with.MeanSolverNodes, without.MeanSolverNodes)
	}
	if with.MeanTileAccuracy < without.MeanTileAccuracy-0.01 {
		t.Errorf("slice sources hurt accuracy: %.3f vs %.3f",
			with.MeanTileAccuracy, without.MeanTileAccuracy)
	}
	// Both bounding-box variants must recover the lightly fused part.
	for _, v := range []string{"8259CL strict bounds + slice sources", "8259CL paper-printed bounds"} {
		if byName[v].MeanRelative < 0.95 {
			t.Errorf("%s: relative %.3f below 0.95", v, byName[v].MeanRelative)
		}
	}
	// Memory anchoring must lift absolute accuracy on every SKU it runs
	// on (the unanchored map is only mirror/translation-defined).
	for _, pair := range [][2]string{
		{"8259CL memory-anchored", "8259CL strict bounds + slice sources"},
		{"6354 memory-anchored", "6354 with slice sources"},
		{"8124M memory-anchored", "8124M core pairs only"},
	} {
		if byName[pair[0]].MeanAbsoluteAccuracy < byName[pair[1]].MeanAbsoluteAccuracy {
			t.Errorf("%s absolute %.3f below unanchored %.3f",
				pair[0], byName[pair[0]].MeanAbsoluteAccuracy, byName[pair[1]].MeanAbsoluteAccuracy)
		}
	}
	if byName["8259CL memory-anchored"].MeanAbsoluteAccuracy < 0.9 {
		t.Errorf("anchored 8259CL absolute accuracy %.3f below 0.9",
			byName["8259CL memory-anchored"].MeanAbsoluteAccuracy)
	}
}
