package experiments

import (
	"context"
	"reflect"

	"coremap"
	"coremap/internal/machine"
	"coremap/internal/obs"
	"coremap/internal/probe"
)

// PlanCompareResult is one planner-vs-exhaustive comparison on a single
// fresh chip: both surveys run on the same instance with caches off, so
// the host-operation counts are the true cost of one converged map.
type PlanCompareResult struct {
	SKU string
	// PlannedOps and ExhaustiveOps are the total host operations of the
	// adaptive and the exhaustive survey (steps 1 and 2 inclusive).
	PlannedOps, ExhaustiveOps int64
	// Ratio is PlannedOps / ExhaustiveOps.
	Ratio float64
	// Identical reports that the two surveys reconstructed byte-identical
	// maps (positions, OS↔CHA mapping and anchoring).
	Identical bool
	// Converged reports that the planned survey terminated because no
	// remaining experiment could split the surviving placement set
	// (rather than by running out of candidates).
	Converged bool
}

// PlanCompare runs the adaptive and the exhaustive survey back to back
// on one fresh instance of the paper's 28-core Table I SKU (8259CL) and
// reports the host-operation costs, whether the maps agree byte for
// byte, and whether the planner converged. It is the CI smoke check for
// the planner's two contracts: identical answers, fewer operations.
func PlanCompare(ctx context.Context, cfg Config) (*PlanCompareResult, error) {
	cfg = cfg.withDefaults()
	sku := machine.SKU8259CL
	m := machine.Generate(sku, 0, machine.Config{Seed: cfg.Seed})
	reg := obs.RegistryFrom(ctx)

	run := func(noPlan bool) (*coremap.Result, int64, error) {
		before := reg.Snapshot()
		res, err := coremap.MapMachine(ctx, m, dieFor(sku), coremap.Options{
			Probe:  probe.Options{Seed: cfg.Seed},
			Locate: cfg.locateOptions(),
			NoPlan: noPlan,
		})
		if err != nil {
			return nil, 0, err
		}
		return res, reg.Snapshot().Sub(before).Total("host/ops/"), nil
	}
	planned, plannedOps, err := run(false)
	if err != nil {
		return nil, err
	}
	converged := reg.Snapshot().Gauges["plan/converged"] == 1
	exhaustive, exhaustiveOps, err := run(true)
	if err != nil {
		return nil, err
	}

	out := &PlanCompareResult{
		SKU:           sku.Name,
		PlannedOps:    plannedOps,
		ExhaustiveOps: exhaustiveOps,
		Converged:     converged,
		Identical: reflect.DeepEqual(planned.Pos, exhaustive.Pos) &&
			reflect.DeepEqual(planned.OSToCHA, exhaustive.OSToCHA) &&
			planned.Anchored == exhaustive.Anchored,
	}
	if exhaustiveOps > 0 {
		out.Ratio = float64(plannedOps) / float64(exhaustiveOps)
	}
	cfg.printf("Planner vs exhaustive on %s: %d vs %d host ops (ratio %.3f), identical=%v, converged=%v\n",
		out.SKU, out.PlannedOps, out.ExhaustiveOps, out.Ratio, out.Identical, out.Converged)
	return out, nil
}
