package experiments

import (
	"context"
	"math/rand"
	"sort"

	"coremap"
	"coremap/internal/cmerr"
	"coremap/internal/covert"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

// covertRig is a mapped 8259CL instance ready for thermal experiments: the
// paper evaluates its covert channels on that part, with placements chosen
// from the *recovered* map (never ground truth).
type covertRig struct {
	m    *machine.Machine
	res  *coremap.Result
	plan *covert.Planner
	seed int64
}

func newCovertRig(ctx context.Context, cfg Config) (*covertRig, error) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: cfg.Seed + 0xC0})
	res, err := coremap.MapMachine(ctx, m, dieFor(machine.SKU8259CL), coremap.Options{
		Probe: probe.Options{Seed: cfg.Seed},
	})
	if err != nil {
		return nil, err
	}
	return &covertRig{m: m, res: res, plan: res.Planner(), seed: cfg.Seed}, nil
}

// platform builds a fresh cloud-noise thermal platform (resetting thermal
// state between cells) with co-tenant load on the CPUs farthest from the
// participants.
func (r *covertRig) platform(cell int64, participants []int) *covert.SimPlatform {
	plat := covert.NewSimPlatform(r.m, covert.CloudThermalConfig(r.seed+cell))
	inUse := make(map[int]bool)
	for _, cpu := range participants {
		inUse[cpu] = true
	}
	type cand struct {
		cpu, dist int
	}
	var cands []cand
	for cpu := range r.res.OSToCHA {
		if inUse[cpu] {
			continue
		}
		d := 1 << 30
		for _, p := range participants {
			if dd := mesh.Distance(r.plan.CoordOf(cpu), r.plan.CoordOf(p)); dd < d {
				d = dd
			}
		}
		cands = append(cands, cand{cpu, d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist > cands[j].dist
		}
		return cands[i].cpu < cands[j].cpu
	})
	var tenants []int
	for i := 0; i < 2 && i < len(cands); i++ {
		tenants = append(tenants, cands[i].cpu)
	}
	plat.SetCoTenants(tenants)
	return plat
}

func randomPayload(n int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

// Fig6Result is one multi-hop trace experiment.
type Fig6Result struct {
	SenderTrace []float64
	// HopTraces[i] is the temperature trace of the receiver i+1 hops
	// below the sender; HopBER[i] its decoded error rate.
	HopTraces [][]float64
	HopBER    []float64
	Payload   []bool
}

// Fig6 reproduces Fig. 6: one sender transmitting at 1 bps while vertical
// receivers 1, 2 and 3 hops away record their sensors. The 1-hop trace
// decodes cleanly; further receivers degrade visibly.
func Fig6(ctx context.Context, cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	rig, err := newCovertRig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	// A column of four vertically consecutive cores on the recovered map.
	var chain []int
	for cpu := range rig.res.OSToCHA {
		c := rig.plan.CoordOf(cpu)
		cur := []int{cpu}
		for h := 1; h <= 3; h++ {
			if next, ok := rig.plan.CPUAt(mesh.Coord{Row: c.Row + h, Col: c.Col}); ok {
				cur = append(cur, next)
			} else {
				break
			}
		}
		if len(cur) > len(chain) {
			chain = cur
		}
		if len(chain) == 4 {
			break
		}
	}
	if len(chain) < 2 {
		return nil, cmerr.New(cmerr.Permanent, "experiments", "no vertical chain on the recovered map")
	}
	bits := 32
	if cfg.Quick {
		bits = 16
	}
	payload := randomPayload(bits, cfg.Seed+6)
	sender := chain[0]
	plat := rig.platform(6, chain)
	ccfg := covert.Config{BitRate: 1}
	specs := []covert.ChannelSpec{{Senders: []int{sender}, Receiver: chain[1], Payload: payload}}
	observers := append([]int{sender}, chain[2:]...)
	results, obsTraces, err := covert.RunObserved(ctx, plat, specs, ccfg, observers)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{
		SenderTrace: obsTraces[0],
		HopTraces:   [][]float64{results[0].Trace},
		HopBER:      []float64{results[0].BER},
		Payload:     payload,
	}
	for _, tr := range obsTraces[1:] {
		dec := covert.DecodeSearch(tr, 100, 1, covert.DefaultPreamble, bits, 6)
		errs := 0
		for i := range payload {
			if dec.Payload[i] != payload[i] {
				errs++
			}
		}
		out.HopTraces = append(out.HopTraces, tr)
		out.HopBER = append(out.HopBER, float64(errs)/float64(bits))
	}
	cfg.printf("Fig. 6: 1 bps vertical transmission, %d payload bits\n", bits)
	for h, ber := range out.HopBER {
		cfg.printf("  %d-hop sink: BER %.3f\n", h+1, ber)
	}
	cfg.printf("  trace CSV (t[s], sender°C, 1-hop°C%s):\n", map[bool]string{true: ", 2-hop°C, 3-hop°C", false: ""}[len(out.HopTraces) > 2])
	for k := 0; k < len(out.SenderTrace); k += 25 {
		cfg.printf("  %6.2f, %5.1f", float64(k)/100, out.SenderTrace[k])
		for _, tr := range out.HopTraces {
			if k < len(tr) {
				cfg.printf(", %5.1f", tr[k])
			}
		}
		cfg.printf("\n")
	}
	return out, nil
}

// Fig7Cell is one (hops, rate) measurement.
type Fig7Cell struct {
	Hops    int
	BitRate float64
	BER     float64
}

// Fig7 reproduces Fig. 7: bit error rate versus transfer rate for sender-
// receiver pairs 1-3 hops apart, horizontally (7a) or vertically (7b).
// The paper's trends: only 1-hop pairs form a usable channel, BER grows
// with rate, and vertical 1-hop beats horizontal 1-hop at equal rates.
func Fig7(ctx context.Context, cfg Config, vertical bool) ([]Fig7Cell, error) {
	cfg = cfg.withDefaults()
	rig, err := newCovertRig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	dir := "horizontal"
	dr, dc := 0, 1
	if vertical {
		dir = "vertical"
		dr, dc = 1, 0
	}
	cfg.printf("Fig. 7%s: BER vs bit rate, %s sender-receiver pairs (%d-bit payloads)\n",
		map[bool]string{true: "b", false: "a"}[vertical], dir, cfg.PayloadBits)
	var out []Fig7Cell
	cell := int64(700)
	for hops := 1; hops <= 3; hops++ {
		pairs := rig.plan.PairsAtOffset(dr*hops, dc*hops)
		if len(pairs) == 0 {
			cfg.printf("  %d-hop: no pair available on this instance\n", hops)
			continue
		}
		pair := pairs[len(pairs)/2] // mid-die pair
		for _, rate := range []float64{1, 2, 4, 8} {
			cell++
			payload := randomPayload(cfg.PayloadBits, cfg.Seed+cell)
			plat := rig.platform(cell, pair[:])
			res, err := covert.Run(ctx, plat, []covert.ChannelSpec{{
				Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload,
			}}, covert.Config{BitRate: rate})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig7Cell{Hops: hops, BitRate: rate, BER: res[0].BER})
			cfg.printf("  %d-hop %s @ %g bps: BER %.4f\n", hops, dir, rate, res[0].BER)
		}
	}
	return out, nil
}

// Fig8aCell is one (senders, rate) measurement.
type Fig8aCell struct {
	Senders int
	BitRate float64
	BER     float64
}

// Fig8a reproduces Fig. 8a: synchronized multi-sender amplification.
// Surrounding the receiver with more senders strengthens the thermal
// signal and lowers the error rate at every bit rate.
func Fig8a(ctx context.Context, cfg Config) ([]Fig8aCell, error) {
	cfg = cfg.withDefaults()
	rig, err := newCovertRig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	recv, err := rig.plan.BestReceiver()
	if err != nil {
		return nil, err
	}
	ring := rig.plan.Ring(recv)
	cfg.printf("Fig. 8a: multi-sender channels, receiver at %v with %d surrounding cores\n",
		rig.plan.CoordOf(recv), len(ring))
	var out []Fig8aCell
	cell := int64(800)
	for _, senders := range []int{1, 2, 4, 8} {
		if senders > len(ring) {
			cfg.printf("  ×%d: only %d surrounding cores available\n", senders, len(ring))
			continue
		}
		for _, rate := range []float64{1, 2, 4, 8} {
			cell++
			payload := randomPayload(cfg.PayloadBits, cfg.Seed+cell)
			participants := append(append([]int{}, ring[:senders]...), recv)
			plat := rig.platform(cell, participants)
			res, err := covert.Run(ctx, plat, []covert.ChannelSpec{{
				Senders: ring[:senders], Receiver: recv, Payload: payload,
			}}, covert.Config{BitRate: rate})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig8aCell{Senders: senders, BitRate: rate, BER: res[0].BER})
			cfg.printf("  ×%d senders @ %g bps: BER %.4f\n", senders, rate, res[0].BER)
		}
	}
	return out, nil
}

// Fig8bCell is one multi-channel aggregate measurement.
type Fig8bCell struct {
	Channels  int
	PerRate   float64
	Aggregate float64 // bits/second across all channels
	BER       float64 // aggregated error rate
}

// Fig8b reproduces Fig. 8b: parallel channels spread across the die. The
// headline result is the maximum aggregate throughput achievable below 1%
// BER — the paper reports 15 bps with the ×8 configuration.
func Fig8b(ctx context.Context, cfg Config) ([]Fig8bCell, float64, error) {
	cfg = cfg.withDefaults()
	rig, err := newCovertRig(ctx, cfg)
	if err != nil {
		return nil, 0, err
	}
	cfg.printf("Fig. 8b: parallel covert channels (aggregate throughput vs BER)\n")
	var out []Fig8bCell
	best := 0.0
	cell := int64(880)
	for _, nch := range []int{1, 2, 4, 8} {
		pairs := rig.plan.DisjointVerticalPairs(nch)
		if len(pairs) < nch {
			cfg.printf("  ×%d: only %d disjoint vertical pairs\n", nch, len(pairs))
			continue
		}
		for _, rate := range []float64{1, 2, 3, 4, 5} {
			cell++
			var specs []covert.ChannelSpec
			var participants []int
			for i, pair := range pairs {
				specs = append(specs, covert.ChannelSpec{
					Senders:  []int{pair[0]},
					Receiver: pair[1],
					Payload:  randomPayload(cfg.PayloadBits, cfg.Seed+cell+int64(i)*131),
				})
				participants = append(participants, pair[0], pair[1])
			}
			plat := rig.platform(cell, participants)
			results, err := covert.Run(ctx, plat, specs, covert.Config{BitRate: rate})
			if err != nil {
				return nil, 0, err
			}
			errs, bits := 0, 0
			for _, r := range results {
				errs += r.BitErrors
				bits += len(r.Sent)
			}
			c := Fig8bCell{
				Channels:  nch,
				PerRate:   rate,
				Aggregate: float64(nch) * rate,
				BER:       float64(errs) / float64(bits),
			}
			out = append(out, c)
			if c.BER < 0.01 && c.Aggregate > best {
				best = c.Aggregate
			}
			cfg.printf("  ×%d channels @ %g bps each = %g bps aggregate: BER %.4f\n",
				nch, rate, c.Aggregate, c.BER)
		}
	}
	cfg.printf("  max aggregate under 1%% BER: %g bps\n", best)
	return out, best, nil
}

// VerifyResult summarizes the Sec. V-D map verification.
type VerifyResult struct {
	Receivers int
	// AdjacentBest counts receivers whose minimum-BER sender is a map
	// neighbour.
	AdjacentBest int
	// Exceptions lists receivers whose best partner was not adjacent,
	// with whether the receiver lacks any vertical map neighbour (the
	// paper's noted exception).
	Exceptions []VerifyException
}

// VerifyException is one non-adjacent best partner.
type VerifyException struct {
	Receiver          int
	BestSender        int
	HasVerticalNeighb bool
}

// Verify reproduces Sec. V-D: thermal transmissions between core pairs
// must achieve their lowest error rates exactly between the cores the
// recovered map calls neighbours — the paper's independent confirmation
// that the map is physical truth.
func Verify(ctx context.Context, cfg Config) (*VerifyResult, error) {
	cfg = cfg.withDefaults()
	rig, err := newCovertRig(ctx, cfg)
	if err != nil {
		return nil, err
	}
	receivers := make([]int, 0, len(rig.res.OSToCHA))
	for cpu := range rig.res.OSToCHA {
		receivers = append(receivers, cpu)
	}
	if cfg.Quick && len(receivers) > 6 {
		receivers = receivers[:6]
	}
	bits := 48
	out := &VerifyResult{Receivers: len(receivers)}
	cell := int64(9000)
	for _, recv := range receivers {
		bestSender, bestBER := -1, 2.0
		for sender := range rig.res.OSToCHA {
			if sender == recv {
				continue
			}
			cell++
			payload := randomPayload(bits, cfg.Seed+cell)
			plat := rig.platform(cell, []int{sender, recv})
			res, err := covert.Run(ctx, plat, []covert.ChannelSpec{{
				Senders: []int{sender}, Receiver: recv, Payload: payload,
			}}, covert.Config{BitRate: 2})
			if err != nil {
				return nil, err
			}
			if res[0].BER < bestBER {
				bestSender, bestBER = sender, res[0].BER
			}
		}
		d := mesh.Distance(rig.plan.CoordOf(bestSender), rig.plan.CoordOf(recv))
		if d == 1 {
			out.AdjacentBest++
			continue
		}
		c := rig.plan.CoordOf(recv)
		_, up := rig.plan.CPUAt(mesh.Coord{Row: c.Row - 1, Col: c.Col})
		_, down := rig.plan.CPUAt(mesh.Coord{Row: c.Row + 1, Col: c.Col})
		out.Exceptions = append(out.Exceptions, VerifyException{
			Receiver:          recv,
			BestSender:        bestSender,
			HasVerticalNeighb: up || down,
		})
	}
	cfg.printf("Sec. V-D verification: %d/%d receivers had a map-adjacent minimum-BER sender\n",
		out.AdjacentBest, out.Receivers)
	for _, e := range out.Exceptions {
		cfg.printf("  exception: receiver cpu %d (best sender cpu %d, has vertical neighbour: %v)\n",
			e.Receiver, e.BestSender, e.HasVerticalNeighb)
	}
	return out, nil
}
