package locate

import (
	"context"
	"strings"
	"testing"

	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

func TestValidateAcceptsTruth(t *testing.T) {
	g, tiles := fullGrid(3, 4)
	in := Input{NumCHA: len(tiles), Rows: 3, Cols: 4, Observations: syntheticObservations(g, tiles)}
	if err := Validate(in, tiles); err != nil {
		t.Errorf("ground-truth placement rejected: %v", err)
	}
}

func TestValidateAcceptsReconstruction(t *testing.T) {
	g, tiles := fullGrid(3, 3)
	in := Input{NumCHA: len(tiles), Rows: 3, Cols: 3, Observations: syntheticObservations(g, tiles)}
	mp, err := Reconstruct(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, mp.Pos); err != nil {
		t.Errorf("reconstruction rejected by semantic validation: %v", err)
	}
}

func TestValidateRejectsWrongPlacements(t *testing.T) {
	obs := []probe.Observation{{SrcCHA: 0, DstCHA: 1, Down: []int{1}}}
	in := Input{NumCHA: 2, Rows: 3, Cols: 3, Observations: obs}
	cases := []struct {
		name string
		pos  []mesh.Coord
		want string
	}{
		{"source below sink", []mesh.Coord{{Row: 2, Col: 0}, {Row: 0, Col: 0}}, "down observer"},
		{"columns differ", []mesh.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 1}}, "not in source column"},
		{"wrong arity", []mesh.Coord{{Row: 0, Col: 0}}, "expected"},
	}
	for _, tc := range cases {
		err := Validate(in, tc.pos)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateHorizontalDirections(t *testing.T) {
	// Observer 1 between source 0 and sink 2, all on one row: valid in
	// one orientation, invalid when the observer is outside the span.
	obs := []probe.Observation{{SrcCHA: 0, DstCHA: 2, Horz: []int{1, 2}}}
	in := Input{NumCHA: 3, Rows: 2, Cols: 4, Observations: obs}
	good := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 0, Col: 2}}
	if err := Validate(in, good); err != nil {
		t.Errorf("eastbound placement rejected: %v", err)
	}
	mirrorGood := []mesh.Coord{{Row: 0, Col: 3}, {Row: 0, Col: 2}, {Row: 0, Col: 1}}
	if err := Validate(in, mirrorGood); err != nil {
		t.Errorf("westbound placement rejected: %v", err)
	}
	bad := []mesh.Coord{{Row: 0, Col: 1}, {Row: 0, Col: 0}, {Row: 0, Col: 2}}
	if err := Validate(in, bad); err == nil {
		t.Error("inconsistent horizontal placement accepted")
	}
}

func TestValidateAnchored(t *testing.T) {
	imc := []mesh.Coord{{Row: 1, Col: 0}}
	obs := []probe.Observation{{SrcCHA: -1, DstCHA: 0, Anchored: true, SrcIMC: 0, Down: []int{0}}}
	in := Input{NumCHA: 1, Rows: 3, Cols: 2, Observations: obs, IMCPositions: imc}
	if err := Validate(in, []mesh.Coord{{Row: 2, Col: 0}}); err != nil {
		t.Errorf("valid anchored placement rejected: %v", err)
	}
	if err := Validate(in, []mesh.Coord{{Row: 0, Col: 0}}); err == nil {
		t.Error("anchored placement above the IMC accepted for a down path")
	}
	badIn := in
	badIn.IMCPositions = nil
	if err := Validate(badIn, []mesh.Coord{{Row: 2, Col: 0}}); err == nil {
		t.Error("anchored observation without IMC positions accepted")
	}
}

// TestPipelineValidatesSemantically ties it together: a real instance's
// measured observations and recovered map must satisfy Validate.
func TestPipelineValidatesSemantically(t *testing.T) {
	m := machineFor(t)
	p, err := probe.New(m, probe.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	in := Input{NumCHA: res.NumCHA, Rows: m.SKU.Rows, Cols: m.SKU.Cols, Observations: res.Observations}
	mp, err := Reconstruct(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, mp.Pos); err != nil {
		t.Errorf("pipeline output failed semantic validation: %v", err)
	}
}

// machineFor returns a small mapped instance for validation tests.
func machineFor(t *testing.T) *machine.Machine {
	t.Helper()
	return machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 31})
}
