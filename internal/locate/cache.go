package locate

import (
	"context"

	"coremap/internal/cmerr"
	"coremap/internal/memo"
	"coremap/internal/mesh"
	"coremap/internal/obs"
)

// Cache memoizes reconstructions by the canonical fingerprint of their
// input. Survey workloads are its reason to exist: the paper's Table II
// shows a 100-instance survey of one SKU collapses to a handful of
// distinct core-location patterns, so with a shared Cache a survey pays
// for one ILP solve per distinct pattern instead of one per instance —
// the cache hit rate mirrors Table II's distinct-pattern counts.
//
// The cache is safe for concurrent use and single-flight: when N survey
// goroutines miss on the same fingerprint at once, exactly one solves and
// the rest wait for its result (counted as coalesced in Stats).
type Cache struct {
	g *memo.Group
}

// NewCache returns an empty reconstruction cache. Entries are never
// evicted: one entry per distinct pattern is small, and surveys are
// bounded.
func NewCache() *Cache { return &Cache{g: memo.NewGroup()} }

// Stats returns the hit/miss/coalesced counters.
func (c *Cache) Stats() memo.Stats { return c.g.Stats() }

// Len returns the number of distinct problems cached so far.
func (c *Cache) Len() int { return c.g.Len() }

// Register wires the cache counters into reg under locate/cache/*.
// No-op on a nil cache or registry.
func (c *Cache) Register(reg *obs.Registry) {
	if c == nil {
		return
	}
	c.g.Register(reg, "locate/cache")
}

// reconstruct is the cached version of Reconstruct's solve path. The
// cached Map is private to the cache; every caller gets a clone so later
// mutation cannot poison other hits.
//
// Interrupted solves are never cached: how far a cancelled search got is a
// property of that run's deadline, not of the fingerprinted input, so the
// entry is forgotten and the best-effort incumbent (when one exists) is
// handed only to the caller that ran the computation.
func (c *Cache) reconstruct(ctx context.Context, in Input, opts Options) (*Map, error) {
	key := Fingerprint(in, opts)
	var partial *Map
	v, err := c.g.Do(key, func() (any, error) {
		m, err := reconstruct(ctx, in, opts)
		if err != nil {
			partial = m
			return nil, err
		}
		return m, nil
	})
	if err != nil {
		if cmerr.IsInterrupted(err) {
			c.g.Forget(key)
		}
		return partial, err
	}
	return v.(*Map).clone(), nil
}

// clone returns a deep copy of the map.
func (m *Map) clone() *Map {
	out := *m
	out.Pos = append([]mesh.Coord(nil), m.Pos...)
	return &out
}
