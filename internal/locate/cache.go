package locate

import (
	"context"
	"sync"

	"coremap/internal/cmerr"
	"coremap/internal/memo"
	"coremap/internal/mesh"
	"coremap/internal/obs"
)

// Cache memoizes reconstructions by the canonical fingerprint of their
// input. Survey workloads are its reason to exist: the paper's Table II
// shows a 100-instance survey of one SKU collapses to a handful of
// distinct core-location patterns, so with a shared Cache a survey pays
// for one ILP solve per distinct pattern instead of one per instance —
// the cache hit rate mirrors Table II's distinct-pattern counts.
//
// The cache is safe for concurrent use and single-flight: when N survey
// goroutines miss on the same fingerprint at once, exactly one solves and
// the rest wait for its result (counted as coalesced in Stats).
// In addition to exact-hit memoization, the cache keeps a warm-start
// index of solved placements keyed by their canonical observation record
// sets. A miss whose observation multiset is a superset of a solved
// entry's (same grid, same reconstruction options) seeds the ILP
// incumbent from that entry's placement — extending a survey with more
// experiments re-proves optimality quickly instead of searching cold.
// Seeding cannot change the resulting map (see ilp.Options.WarmStart), so
// the index is a pure accelerator.
type Cache struct {
	g *memo.Group

	mu   sync.Mutex
	warm []warmEntry // guarded by mu
}

// warmEntry is one solved placement in the warm-start index.
type warmEntry struct {
	header string
	recs   []string // sorted canonical observation records
	pos    []mesh.Coord
}

// NewCache returns an empty reconstruction cache. Entries are never
// evicted: one entry per distinct pattern is small, and surveys are
// bounded.
func NewCache() *Cache { return &Cache{g: memo.NewGroup()} }

// Stats returns the hit/miss/coalesced counters.
func (c *Cache) Stats() memo.Stats { return c.g.Stats() }

// Len returns the number of distinct problems cached so far.
func (c *Cache) Len() int { return c.g.Len() }

// Register wires the cache counters into reg under locate/cache/*.
// No-op on a nil cache or registry; an exact-duplicate registration is
// reported by the registry.
func (c *Cache) Register(reg *obs.Registry) error {
	if c == nil {
		return nil
	}
	return c.g.Register(reg, "locate/cache")
}

// reconstruct is the cached version of Reconstruct's solve path. The
// cached Map is private to the cache; every caller gets a clone so later
// mutation cannot poison other hits.
//
// Interrupted solves are never cached: how far a cancelled search got is a
// property of that run's deadline, not of the fingerprinted input, so the
// entry is forgotten and the best-effort incumbent (when one exists) is
// handed only to the caller that ran the computation.
func (c *Cache) reconstruct(ctx context.Context, in Input, opts Options) (*Map, error) {
	header, recs := canonicalInput(in, opts)
	key := digest(header, recs)
	var partial *Map
	v, err := c.g.Do(key, func() (any, error) {
		m, err := reconstruct(ctx, in, opts, c.findWarmStart(string(header), recs, opts))
		if err != nil {
			partial = m
			return nil, err
		}
		c.remember(string(header), recs, m)
		return m, nil
	})
	if err != nil {
		if cmerr.IsInterrupted(err) {
			c.g.Forget(key)
		}
		return partial, err
	}
	return v.(*Map).clone(), nil
}

// findWarmStart returns the placement of the solved entry with the most
// observations whose record multiset is contained in recs (same header),
// or nil when none qualifies. The exact-match memo has already missed
// when this runs, so any hit here is a strict subset in practice.
func (c *Cache) findWarmStart(header string, recs [][]byte, opts Options) []mesh.Coord {
	if opts.NoWarmStart {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	best := -1
	for i := range c.warm {
		e := &c.warm[i]
		if e.header != header || len(e.recs) > len(recs) {
			continue
		}
		if best >= 0 && len(e.recs) <= len(c.warm[best].recs) {
			continue
		}
		if multisetContained(e.recs, recs) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return append([]mesh.Coord(nil), c.warm[best].pos...)
}

// remember adds a solved placement to the warm-start index.
func (c *Cache) remember(header string, recs [][]byte, m *Map) {
	e := warmEntry{header: header, recs: make([]string, len(recs)),
		pos: append([]mesh.Coord(nil), m.Pos...)}
	for i, r := range recs {
		e.recs[i] = string(r)
	}
	c.mu.Lock()
	c.warm = append(c.warm, e)
	c.mu.Unlock()
}

// multisetContained reports whether sorted multiset sub is contained in
// sorted multiset super, element by element.
func multisetContained(sub []string, super [][]byte) bool {
	j := 0
	for _, s := range sub {
		for j < len(super) && string(super[j]) < s {
			j++
		}
		if j == len(super) || string(super[j]) != s {
			return false
		}
		j++
	}
	return true
}

// clone returns a deep copy of the map.
func (m *Map) clone() *Map {
	out := *m
	out.Pos = append([]mesh.Coord(nil), m.Pos...)
	return &out
}
