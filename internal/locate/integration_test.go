package locate

import (
	"context"
	"testing"

	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

// runPipeline measures a machine and reconstructs its map.
func runPipeline(t *testing.T, m *machine.Machine, opts Options) (*Map, *probe.Result) {
	t.Helper()
	p, err := probe.New(m, probe.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Reconstruct(context.Background(), Input{
		NumCHA:       res.NumCHA,
		Rows:         m.SKU.Rows,
		Cols:         m.SKU.Cols,
		Observations: res.Observations,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return mp, res
}

func truthPositions(m *machine.Machine) []mesh.Coord {
	out := make([]mesh.Coord, m.NumCHAs())
	for cha := range out {
		out[cha] = m.TrueCHACoord(cha)
	}
	return out
}

// TestPipelineStepOneMatchesTruth: the measured OS-core-ID ↔ CHA-ID
// mapping must equal the firmware's ground truth on every SKU.
func TestPipelineStepOneMatchesTruth(t *testing.T) {
	for _, sku := range machine.SKUs {
		m := machine.Generate(sku, 0, machine.Config{Seed: 100})
		p, err := probe.New(m, probe.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.MapCoresToCHAs(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", sku.Name, err)
		}
		want := m.TrueOSToCHA()
		for cpu := range want {
			if got[cpu] != want[cpu] {
				t.Errorf("%s: OS %d → CHA %d, want %d", sku.Name, cpu, got[cpu], want[cpu])
			}
		}
	}
}

// TestPipelineRecoversLightlyFusedSKUs: on parts with few fused-off tiles
// the full pipeline must recover the exact physical map (up to the
// inherent mirror/translation symmetry).
func TestPipelineRecoversLightlyFusedSKUs(t *testing.T) {
	cases := []struct {
		sku *machine.SKU
		idx int
	}{
		{machine.SKU8175M, 0},
		{machine.SKU8175M, 1},
		{machine.SKU8259CL, 0},
	}
	for _, tc := range cases {
		m := machine.Generate(tc.sku, tc.idx, machine.Config{Seed: int64(tc.idx) + 7})
		mp, _ := runPipeline(t, m, Options{})
		if exact, n := Score(mp.Pos, truthPositions(m)); !exact {
			t.Errorf("%s pattern %d: map not exact (%d/%d tiles)", tc.sku.Name, tc.idx, n, m.NumCHAs())
		}
	}
}

// TestPipelineHeavilyFusedSKUsOrderConsistent: with many disabled tiles the
// absolute gaps can be unobservable (paper Sec. II-D), but the relative
// ordering must stay near-perfect and most tiles must still be exact.
func TestPipelineHeavilyFusedSKUsOrderConsistent(t *testing.T) {
	cases := []struct {
		sku         *machine.SKU
		idx         int
		minRelative float64
		minCorrect  int
	}{
		{machine.SKU8124M, 0, 0.95, 10},
		{machine.SKU8124M, 1, 0.99, 18},
		{machine.SKU8259CL, 1, 0.95, 25},
		{machine.SKU6354, 0, 0.95, 15},
	}
	for _, tc := range cases {
		m := machine.Generate(tc.sku, tc.idx, machine.Config{Seed: int64(tc.idx) + 7})
		mp, _ := runPipeline(t, m, Options{})
		truth := truthPositions(m)
		rs := RelativeScore(mp.Pos, truth)
		_, correct := Score(mp.Pos, truth)
		if rs < tc.minRelative || correct < tc.minCorrect {
			t.Errorf("%s pattern %d: relative=%.3f (min %.2f), correct=%d (min %d)",
				tc.sku.Name, tc.idx, rs, tc.minRelative, correct, tc.minCorrect)
		}
	}
}

// TestPipelineRobustToNoise: background platform traffic must not change
// the recovered map.
func TestPipelineRobustToNoise(t *testing.T) {
	m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 200, NoiseFlits: 2, NoiseEveryOps: 16})
	mp, _ := runPipeline(t, m, Options{})
	if exact, n := Score(mp.Pos, truthPositions(m)); !exact {
		t.Errorf("noisy pipeline not exact (%d/%d tiles)", n, m.NumCHAs())
	}
}

// TestPipelinePPINStability: the probe must report the machine's PPIN so
// maps can be cached per chip instance.
func TestPipelinePPINStability(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 300})
	_, res := runPipeline(t, m, Options{})
	if res.PPIN != m.PPIN {
		t.Errorf("PPIN = %#x, want %#x", res.PPIN, m.PPIN)
	}
}

// TestPipelineDeterministic: probing the same instance twice yields the
// same reconstruction.
func TestPipelineDeterministic(t *testing.T) {
	a, _ := runPipeline(t, machine.Generate(machine.SKU8259CL, 2, machine.Config{Seed: 400}), Options{})
	b, _ := runPipeline(t, machine.Generate(machine.SKU8259CL, 2, machine.Config{Seed: 400}), Options{})
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("non-deterministic reconstruction at CHA %d: %v vs %v", i, a.Pos[i], b.Pos[i])
		}
	}
}

// TestPipelineWorkerCountInvariant: the reconstruction of a real measured
// instance must be identical whether the ILP runs on one worker or many —
// the end-to-end face of ilp's determinism guarantee.
func TestPipelineWorkerCountInvariant(t *testing.T) {
	for _, sku := range []*machine.SKU{machine.SKU8259CL, machine.SKU6354} {
		ref, _ := runPipeline(t, machine.Generate(sku, 1, machine.Config{Seed: 500}), Options{Workers: 1})
		for _, workers := range []int{2, 4} {
			mp, _ := runPipeline(t, machine.Generate(sku, 1, machine.Config{Seed: 500}), Options{Workers: workers})
			for i := range ref.Pos {
				if mp.Pos[i] != ref.Pos[i] {
					t.Fatalf("%s: workers=%d moved CHA %d: %v vs %v",
						sku.Name, workers, i, mp.Pos[i], ref.Pos[i])
				}
			}
		}
	}
}
