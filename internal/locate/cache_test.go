package locate

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"coremap/internal/mesh"
	"coremap/internal/probe"
)

func testInput(rows, cols int) (Input, []mesh.Coord) {
	g, tiles := fullGrid(rows, cols)
	return Input{
		NumCHA:       len(tiles),
		Rows:         rows,
		Cols:         cols,
		Observations: syntheticObservations(g, tiles),
	}, tiles
}

// TestCacheMatchesUncached: a cached reconstruction must return exactly
// the map an uncached one does.
func TestCacheMatchesUncached(t *testing.T) {
	in, _ := testInput(3, 3)
	plain, err := Reconstruct(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Reconstruct(context.Background(), in, Options{Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Fatalf("cached map differs from uncached:\n%+v\n%+v", cached, plain)
	}
}

// TestCacheSingleFlight: concurrent reconstructions of one input through a
// shared cache must solve exactly once, and every caller must get a
// private copy of the map.
func TestCacheSingleFlight(t *testing.T) {
	in, _ := testInput(3, 3)
	c := NewCache()
	const n = 16
	maps := make([]*Map, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			maps[i], errs[i] = Reconstruct(context.Background(), in, Options{Cache: c, Workers: 1})
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(maps[0], maps[i]) {
			t.Fatalf("goroutine %d got a different map", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single flight)", st.Misses)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Errorf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, n-1)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}

	// Clones are private: corrupting one caller's map must not reach the
	// cache.
	maps[0].Pos[0] = mesh.Coord{Row: -42, Col: -42}
	again, err := Reconstruct(context.Background(), in, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, maps[1]) {
		t.Fatal("mutation of a returned map leaked into the cache")
	}
}

// TestFingerprintObservationOrderInvariant: the fingerprint is a content
// address, so a permutation of the observation list — which cannot change
// the reconstructed map — must hash identically.
func TestFingerprintObservationOrderInvariant(t *testing.T) {
	in, _ := testInput(3, 4)
	fp := Fingerprint(in, Options{})
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		perm := Input{
			NumCHA: in.NumCHA,
			Rows:   in.Rows,
			Cols:   in.Cols,
			Observations: append([]probe.Observation(nil),
				in.Observations...),
		}
		r.Shuffle(len(perm.Observations), func(i, j int) {
			perm.Observations[i], perm.Observations[j] = perm.Observations[j], perm.Observations[i]
		})
		if Fingerprint(perm, Options{}) != fp {
			t.Fatalf("trial %d: permuted observations changed the fingerprint", trial)
		}
	}
}

// TestReconstructObservationOrderInvariant: the map itself — not just the
// fingerprint — must be invariant under observation reordering, otherwise
// the sorted fingerprint would serve one ordering's result for another.
// (This leans on presolve electing canonical class representatives; see
// ilp/presolve.go.)
func TestReconstructObservationOrderInvariant(t *testing.T) {
	// An unanchored 4×4 subset has a genuine mirror tie, which is exactly
	// where ordering sensitivity would surface.
	r := rand.New(rand.NewSource(31))
	const rows, cols = 4, 4
	g := mesh.NewGrid(rows, cols)
	var tiles []mesh.Coord
	id := 0
	g.Tiles(func(c mesh.Coord, tl *mesh.Tile) {
		if r.Intn(4) == 0 {
			return
		}
		tl.Kind = mesh.KindCore
		tl.CHA = id
		id++
		tiles = append(tiles, c)
	})
	in := Input{NumCHA: len(tiles), Rows: rows, Cols: cols,
		Observations: syntheticObservations(g, tiles)}
	base, err := Reconstruct(context.Background(), in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		perm := in
		perm.Observations = append([]probe.Observation(nil), in.Observations...)
		r.Shuffle(len(perm.Observations), func(i, j int) {
			perm.Observations[i], perm.Observations[j] = perm.Observations[j], perm.Observations[i]
		})
		got, err := Reconstruct(context.Background(), perm, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Pos, got.Pos) {
			t.Fatalf("trial %d: reordered observations changed the map\nbase: %v\ngot:  %v",
				trial, base.Pos, got.Pos)
		}
	}
}

// TestFingerprintWorkersExcluded: the solver is deterministic in the
// worker count, so Workers must not split the cache.
func TestFingerprintWorkersExcluded(t *testing.T) {
	in, _ := testInput(3, 3)
	if Fingerprint(in, Options{Workers: 1}) != Fingerprint(in, Options{Workers: 8}) {
		t.Fatal("Workers changed the fingerprint")
	}
}

// TestFingerprintSensitivity: every input or option change that can alter
// the reconstruction must change the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	in, _ := testInput(3, 3)
	base := Fingerprint(in, Options{})

	mutations := map[string]func() (Input, Options){
		"rows": func() (Input, Options) {
			m := in
			m.Rows++
			return m, Options{}
		},
		"cols": func() (Input, Options) {
			m := in
			m.Cols++
			return m, Options{}
		},
		"numCHA": func() (Input, Options) {
			m := in
			m.NumCHA++
			return m, Options{}
		},
		"observation": func() (Input, Options) {
			m := in
			m.Observations = append([]probe.Observation(nil), m.Observations...)
			m.Observations[0].Up = append([]int{0}, m.Observations[0].Up...)
			return m, Options{}
		},
		"paperBounds": func() (Input, Options) { return in, Options{PaperExactBounds: true} },
		"noPrune":     func() (Input, Options) { return in, Options{NoPrune: true} },
		"maxNodes":    func() (Input, Options) { return in, Options{MaxNodes: 12345} },
		"sepRounds":   func() (Input, Options) { return in, Options{MaxSeparationRounds: 3} },
	}
	for name, mut := range mutations {
		m, o := mut()
		if Fingerprint(m, o) == base {
			t.Errorf("%s: mutation did not change the fingerprint", name)
		}
	}
}

// TestFingerprintAnchorsByPosition: anchored observations are addressed by
// the IMC's die coordinate, not its index, so an unused trailing entry in
// IMCPositions is irrelevant while moving a referenced IMC is not.
func TestFingerprintAnchorsByPosition(t *testing.T) {
	in, _ := testInput(3, 3)
	in.Observations = append(in.Observations, probe.Observation{
		SrcCHA: -1, DstCHA: 0, Anchored: true, SrcIMC: 0,
		Down: []int{0},
	})
	in.IMCPositions = []mesh.Coord{{Row: 0, Col: 1}}
	base := Fingerprint(in, Options{})

	padded := in
	padded.IMCPositions = append(append([]mesh.Coord(nil), in.IMCPositions...),
		mesh.Coord{Row: 2, Col: 2})
	if Fingerprint(padded, Options{}) != base {
		t.Error("unreferenced IMC position changed the fingerprint")
	}

	moved := in
	moved.IMCPositions = []mesh.Coord{{Row: 0, Col: 2}}
	if Fingerprint(moved, Options{}) == base {
		t.Error("moving a referenced IMC did not change the fingerprint")
	}
}

// TestCacheCachesErrors: deterministic failures are results too; a second
// caller must get the cached error without re-solving.
func TestCacheCachesErrors(t *testing.T) {
	// Two tiles forced into mutual contradiction: each strictly above the
	// other.
	in := Input{
		NumCHA: 2, Rows: 2, Cols: 2,
		Observations: []probe.Observation{
			{SrcCHA: 0, DstCHA: 1, Up: []int{1}},
			{SrcCHA: 1, DstCHA: 0, Up: []int{0}},
		},
	}
	c := NewCache()
	_, err1 := Reconstruct(context.Background(), in, Options{Cache: c})
	if err1 == nil {
		t.Fatal("contradictory observations reconstructed successfully")
	}
	_, err2 := Reconstruct(context.Background(), in, Options{Cache: c})
	if err2 == nil || c.Stats().Hits != 1 {
		t.Fatalf("error not served from cache (err=%v, stats=%+v)", err2, c.Stats())
	}
}
