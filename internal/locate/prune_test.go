package locate

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

// measuredInput runs the probe pipeline on a machine and packages the
// observations (pair, slice-source and memory-anchored families all
// enabled, so every pruner path is exercised).
func measuredInput(t *testing.T, m *machine.Machine) Input {
	t.Helper()
	p, err := probe.New(m, probe.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunWith(context.Background(), probe.RunOptions{SliceSources: true, NumIMCs: len(m.SKU.IMC)})
	if err != nil {
		t.Fatal(err)
	}
	return Input{
		NumCHA:       res.NumCHA,
		Rows:         m.SKU.Rows,
		Cols:         m.SKU.Cols,
		Observations: res.Observations,
		IMCPositions: m.SKU.IMC,
	}
}

// TestPruneInvariant is the correctness pin of the dominance pruner: over
// probe-measured inputs of every SKU, the pruned and unpruned constraint
// systems must yield byte-identical tile positions.
func TestPruneInvariant(t *testing.T) {
	for _, tc := range []struct {
		sku  *machine.SKU
		idx  int
		seed int64
	}{
		{machine.SKU8124M, 0, 100},
		{machine.SKU8124M, 2, 101},
		{machine.SKU8175M, 0, 102},
		{machine.SKU8259CL, 0, 103},
		{machine.SKU8259CL, 1, 104},
		{machine.SKU6354, 0, 105},
	} {
		m := machine.Generate(tc.sku, tc.idx, machine.Config{Seed: tc.seed})
		in := measuredInput(t, m)
		pruned, err := Reconstruct(context.Background(), in, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s pattern %d: pruned: %v", tc.sku.Name, tc.idx, err)
		}
		unpruned, err := Reconstruct(context.Background(), in, Options{NoPrune: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s pattern %d: unpruned: %v", tc.sku.Name, tc.idx, err)
		}
		if !reflect.DeepEqual(pruned.Pos, unpruned.Pos) {
			t.Errorf("%s pattern %d: pruned and unpruned maps differ\npruned:   %v\nunpruned: %v",
				tc.sku.Name, tc.idx, pruned.Pos, unpruned.Pos)
		}
		if pruned.Anchored != unpruned.Anchored {
			t.Errorf("%s pattern %d: anchoring differs", tc.sku.Name, tc.idx)
		}
	}
}

// TestPruneInvariantSyntheticSubsets extends the pin to random partially
// fused grids (quick-check style), where the observation overlap structure
// differs from any fixed SKU.
func TestPruneInvariantSyntheticSubsets(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		const rows, cols = 4, 4
		g := mesh.NewGrid(rows, cols)
		var tiles []mesh.Coord
		id := 0
		g.Tiles(func(c mesh.Coord, tl *mesh.Tile) {
			if r.Intn(4) == 0 {
				return
			}
			tl.Kind = mesh.KindCore
			tl.CHA = id
			id++
			tiles = append(tiles, c)
		})
		if len(tiles) < 3 {
			continue
		}
		in := Input{
			NumCHA:       len(tiles),
			Rows:         rows,
			Cols:         cols,
			Observations: syntheticObservations(g, tiles),
		}
		pruned, err := Reconstruct(context.Background(), in, Options{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: pruned: %v", trial, err)
		}
		unpruned, err := Reconstruct(context.Background(), in, Options{NoPrune: true, Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: unpruned: %v", trial, err)
		}
		if !reflect.DeepEqual(pruned.Pos, unpruned.Pos) {
			t.Fatalf("trial %d: pruned and unpruned maps differ", trial)
		}
	}
}

// TestPrunePlanReduces: on a real measured input the dominance reduction
// must actually drop a substantial share of the vertical/alignment
// constraints — the raw sweep emits every pairwise shortcut of each
// vertical chain, the plan should keep far fewer.
func TestPrunePlanReduces(t *testing.T) {
	m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 42})
	in := measuredInput(t, m)
	pl := newPrunePlan(in)
	if pl.raw == 0 || pl.kept == 0 {
		t.Fatalf("degenerate plan: raw=%d kept=%d", pl.raw, pl.kept)
	}
	if pl.kept*2 > pl.raw {
		t.Errorf("pruner kept %d of %d vertical/alignment constraints (want <50%%)", pl.kept, pl.raw)
	}
}

// TestPrunePlanDeterministic: two plans over the same input must flatten
// to identical slices (the fingerprint/caching layer depends on builds
// being order-stable).
func TestPrunePlanDeterministic(t *testing.T) {
	m := machine.Generate(machine.SKU8124M, 1, machine.Config{Seed: 43})
	in := measuredInput(t, m)
	a, b := newPrunePlan(in), newPrunePlan(in)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("plans for identical inputs differ")
	}
}
