package locate

import (
	"fmt"
	"sort"

	"coremap/internal/ilp"
	"coremap/internal/probe"
)

// Observation-dominance pruning. The O(n²) ordered-pair sweep of the
// probe emits heavily overlapping bounding-box constraints: every tile
// between a source and sink observes *every* experiment crossing it, so
// the same "R_s is strictly above R_k" fact arrives once per sink behind
// k, and chains of vertical orderings arrive with all O(L²) pairwise
// shortcuts even though the L-1 consecutive links imply the rest. This
// file canonicalizes the vertical constraint system into a
// difference-constraint graph (R_x - R_y ≥ gap), deduplicates parallel
// edges by keeping only the tightest gap, and performs a greedy
// transitive reduction: an edge is dropped when two kept edges through an
// intermediate node already imply it (difference constraints compose by
// adding gaps, so the drop is sound; processing edges in a fixed order
// against the currently-kept set makes the reduction deterministic and —
// by reverse induction over the drop sequence — keeps every dropped edge
// implied by the final kept set).
//
// Anchored observations have constant source coordinates, so their
// vertical constraints collapse to variable bounds (R_k ≤ row-1 for
// up-ingress observers, R_k ≥ row+1 for down) and their column
// alignments to fixed values — no anchor variables are created at all in
// pruned mode. The equality alignments (observer column = source column,
// observer row = sink row) are deduplicated to one constraint per
// variable pair. Horizontal bounding boxes keep their per-path big-M
// guards (each path owns its NE/NW direction variables), but the sink's
// own source-side bounds are dropped when another observer on the path
// dominates them by composition.
//
// The pruned and unpruned models are logically equivalent over the
// shared variables, and the row/column variables are created before any
// per-observation variable, so the solver's lexicographic tie-break
// yields byte-identical Map.Pos either way (pinned by TestPruneInvariant).

// diffEdge is one difference constraint R_x - R_y ≥ gap between the row
// variables of CHAs x and y.
type diffEdge struct {
	x, y int
	gap  int64
}

// varFix is a single-variable bound or fix.
type varFix struct {
	v   int
	val int64
}

// prunePlan is the reduced vertical/alignment constraint system.
type prunePlan struct {
	colEq  [][2]int // C_a = C_b, a < b
	rowEq  [][2]int // R_a = R_b, a < b
	colFix []varFix // C_v = val (anchored alignment)
	rowLo  []varFix // R_v ≥ val (anchored down-ingress)
	rowHi  []varFix // R_v ≤ val (anchored up-ingress)
	edges  []diffEdge
	// raw and kept count the vertical/alignment constraints before and
	// after reduction (duplicates included in raw).
	raw, kept int
}

// newPrunePlan canonicalizes and reduces the vertical constraint system
// of every observation.
func newPrunePlan(in Input) *prunePlan {
	pl := &prunePlan{}
	colEq := map[[2]int]bool{}
	rowEq := map[[2]int]bool{}
	colFix := map[varFix]bool{}
	rowLo := map[int]int64{}
	rowHi := map[int]int64{}
	edges := map[[2]int]int64{}

	pair := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	addEdge := func(x, y int, gap int64) {
		pl.raw++
		k := [2]int{x, y}
		if g, ok := edges[k]; !ok || gap > g {
			edges[k] = gap
		}
	}

	for _, o := range in.Observations {
		e := o.DstCHA
		var srcRow, srcCol int
		if o.Anchored {
			pos := in.IMCPositions[o.SrcIMC]
			srcRow, srcCol = pos.Row, pos.Col
		}
		for _, k := range o.Up {
			pl.raw++
			if o.Anchored {
				colFix[varFix{k, int64(srcCol)}] = true
				pl.raw++
				// R_src > R_k with constant source row.
				if hi, ok := rowHi[k]; !ok || int64(srcRow)-1 < hi {
					rowHi[k] = int64(srcRow) - 1
				}
			} else {
				colEq[pair(k, o.SrcCHA)] = true
				addEdge(o.SrcCHA, k, 1)
			}
			addEdge(k, e, 0)
		}
		for _, k := range o.Down {
			pl.raw++
			if o.Anchored {
				colFix[varFix{k, int64(srcCol)}] = true
				pl.raw++
				if lo, ok := rowLo[k]; !ok || int64(srcRow)+1 > lo {
					rowLo[k] = int64(srcRow) + 1
				}
			} else {
				colEq[pair(k, o.SrcCHA)] = true
				addEdge(k, o.SrcCHA, 1)
			}
			addEdge(e, k, 0)
		}
		for _, k := range o.Horz {
			pl.raw++
			if k != e {
				rowEq[pair(k, e)] = true
			}
		}
	}

	// Greedy dominance reduction over the difference edges: process in a
	// fixed order; drop an edge when two currently-kept edges through an
	// intermediate imply it. Kept-at-drop-time witnesses guarantee the
	// final kept set still implies every dropped edge.
	keys := make([][2]int, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		g := edges[k]
		if k[0] == k[1] && g <= 0 {
			delete(edges, k) // trivially true self-loop
			continue
		}
		for m := 0; m < in.NumCHA; m++ {
			if m == k[0] || m == k[1] {
				continue
			}
			g1, ok1 := edges[[2]int{k[0], m}]
			g2, ok2 := edges[[2]int{m, k[1]}]
			if ok1 && ok2 && g1+g2 >= g {
				delete(edges, k)
				break
			}
		}
	}

	// Flatten into deterministic slices.
	for k := range colEq {
		pl.colEq = append(pl.colEq, k)
	}
	sortPairs(pl.colEq)
	for k := range rowEq {
		pl.rowEq = append(pl.rowEq, k)
	}
	sortPairs(pl.rowEq)
	for f := range colFix {
		pl.colFix = append(pl.colFix, f)
	}
	sortFixes(pl.colFix)
	for v, val := range rowLo {
		pl.rowLo = append(pl.rowLo, varFix{v, val})
	}
	sortFixes(pl.rowLo)
	for v, val := range rowHi {
		pl.rowHi = append(pl.rowHi, varFix{v, val})
	}
	sortFixes(pl.rowHi)
	for _, k := range keys {
		if g, ok := edges[k]; ok {
			pl.edges = append(pl.edges, diffEdge{x: k[0], y: k[1], gap: g})
		}
	}
	pl.kept = len(pl.colEq) + len(pl.rowEq) + len(pl.colFix) +
		len(pl.rowLo) + len(pl.rowHi) + len(pl.edges)
	return pl
}

func sortPairs(s [][2]int) {
	sort.Slice(s, func(i, j int) bool {
		if s[i][0] != s[j][0] {
			return s[i][0] < s[j][0]
		}
		return s[i][1] < s[j][1]
	})
}

func sortFixes(s []varFix) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].v != s[j].v {
			return s[i].v < s[j].v
		}
		return s[i].val < s[j].val
	})
}

// addPruned emits the dominance-reduced constraint system: the plan's
// vertical/alignment constraints once each, then the per-path horizontal
// boxes (which keep their own direction guards).
func (b *builder) addPruned(paperBounds bool) *prunePlan {
	pl := newPrunePlan(b.in)
	for _, p := range pl.colEq {
		b.m.AddEq(fmt.Sprintf("col C%d=C%d", p[0], p[1]),
			[]ilp.Term{ilp.T(1, b.c[p[0]]), ilp.T(-1, b.c[p[1]])}, 0)
	}
	for _, p := range pl.rowEq {
		b.m.AddEq(fmt.Sprintf("row R%d=R%d", p[0], p[1]),
			[]ilp.Term{ilp.T(1, b.r[p[0]]), ilp.T(-1, b.r[p[1]])}, 0)
	}
	for _, f := range pl.colFix {
		b.m.AddEq(fmt.Sprintf("anchor C%d", f.v), []ilp.Term{ilp.T(1, b.c[f.v])}, f.val)
	}
	for _, f := range pl.rowLo {
		b.m.AddGE(fmt.Sprintf("anchor R%d lo", f.v), []ilp.Term{ilp.T(1, b.r[f.v])}, f.val)
	}
	for _, f := range pl.rowHi {
		b.m.AddLE(fmt.Sprintf("anchor R%d hi", f.v), []ilp.Term{ilp.T(1, b.r[f.v])}, f.val)
	}
	for _, e := range pl.edges {
		b.m.AddGE(fmt.Sprintf("vdiff R%d-R%d>=%d", e.x, e.y, e.gap),
			[]ilp.Term{ilp.T(1, b.r[e.x]), ilp.T(-1, b.r[e.y])}, e.gap)
	}
	for p, o := range b.in.Observations {
		b.addHorzPruned(p, o, paperBounds)
	}
	return pl
}

// addHorzPruned emits one path's horizontal bounding boxes. Alignment
// equalities are already in the plan; anchored sources fold their
// constant column into the right-hand side; and the sink's own
// source-side bounds are skipped when another observer dominates them by
// composition (src-bound(k) + dst-bound(k) imply src-bound(sink) under
// the shared direction guard, since bigM exceeds any column difference).
func (b *builder) addHorzPruned(p int, o probe.Observation, paperBounds bool) {
	if len(o.Horz) == 0 {
		return
	}
	e := o.DstCHA
	label := func(kind string, k int) string {
		return b.pathLabel(p, o.SrcCHA, e, kind, k)
	}
	ne := b.m.NewBinary(b.nameIdx("NE", p))
	nw := b.m.NewBinary(b.nameIdx("NW", p))
	b.dirs = append(b.dirs, pathDir{ne: ne, nw: nw, obs: o})
	b.m.AddEq(label("dir", 0), []ilp.Term{ilp.T(1, ne), ilp.T(1, nw)}, 1)

	srcGap, dstGap := int64(1), int64(1)
	if paperBounds {
		srcGap = 0
	}
	// The sink's source-side bounds are dominated whenever any other
	// observer sits on the path (and the grid fits inside bigM).
	hasOther := false
	for _, k := range o.Horz {
		if k != e {
			hasOther = true
			break
		}
	}
	skipSinkSrc := hasOther && int64(b.in.Cols) <= bigM

	for _, k := range o.Horz {
		if k == e && skipSinkSrc {
			continue
		}
		if o.Anchored {
			srcCol := int64(b.in.IMCPositions[o.SrcIMC].Col)
			// Eastbound (NE=0): srcCol + srcGap ≤ C_k.
			b.m.AddLE(label("east-src", k),
				[]ilp.Term{ilp.T(-1, b.c[k]), ilp.T(-bigM, ne)}, -srcGap-srcCol)
			// Westbound (NW=0): C_k + srcGap ≤ srcCol.
			b.m.AddLE(label("west-src", k),
				[]ilp.Term{ilp.T(1, b.c[k]), ilp.T(-bigM, nw)}, srcCol-srcGap)
		} else {
			srcC := b.c[o.SrcCHA]
			b.m.AddLE(label("east-src", k),
				[]ilp.Term{ilp.T(1, srcC), ilp.T(-1, b.c[k]), ilp.T(-bigM, ne)}, -srcGap)
			b.m.AddLE(label("west-src", k),
				[]ilp.Term{ilp.T(1, b.c[k]), ilp.T(-1, srcC), ilp.T(-bigM, nw)}, -srcGap)
		}
	}
	for _, k := range o.Horz {
		if k == e {
			continue
		}
		b.m.AddLE(label("east-dst", k),
			[]ilp.Term{ilp.T(1, b.c[k]), ilp.T(-1, b.c[e]), ilp.T(-bigM, ne)}, -dstGap)
		b.m.AddLE(label("west-dst", k),
			[]ilp.Term{ilp.T(1, b.c[e]), ilp.T(-1, b.c[k]), ilp.T(-bigM, nw)}, -dstGap)
	}
}
