package locate

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"coremap/internal/memo"
)

// The reconstruction cache is content-addressed: two Inputs that describe
// the same placement problem must hash to the same key, regardless of how
// the problem was assembled. The fingerprint therefore canonicalizes the
// encoding:
//
//   - observations are encoded as self-contained records and sorted, so
//     the order the probe emitted them in is irrelevant (the solver's
//     lexicographic tie-break makes Map.Pos order-independent too — the
//     position variables are created before any per-observation variable,
//     so they dominate the tie-break prefix);
//   - anchored observations resolve SrcIMC through IMCPositions into die
//     coordinates, so the fingerprint does not depend on IMC numbering or
//     on unreferenced IMCPositions entries;
//   - only the Options fields that can change the reconstruction
//     participate (PaperExactBounds, NoPrune, MaxNodes,
//     MaxSeparationRounds). Workers is excluded: the parallel solver
//     guarantees byte-identical Solution.Values at any worker count.
//
// fingerprintVersion is baked into the digest; bump it whenever the
// encoding or the reconstruction semantics change so stale processes
// cannot alias old entries. Version 2 added the topology-backend
// discriminator (Input.Backend) to the header, so entries can never
// alias across interconnect substrates.
const fingerprintVersion = 2

// canonicalInput splits a problem into its canonical header (topology
// backend and grid dimensions plus the Options fields that can change
// the reconstruction)
// and its sorted, self-contained observation records. The cache's
// superset index compares problems componentwise: same header, record
// multiset inclusion. Options.NoWarmStart is excluded like Workers — the
// reconstructed map is identical either way.
func canonicalInput(in Input, opts Options) (header []byte, recs [][]byte) {
	u := func(v int64) {
		header = binary.AppendVarint(header, v)
	}
	u(fingerprintVersion)
	u(int64(in.Backend))
	u(int64(in.NumCHA))
	u(int64(in.Rows))
	u(int64(in.Cols))
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	u(b2i(opts.PaperExactBounds))
	u(b2i(opts.NoPrune))
	u(int64(opts.MaxNodes))
	u(int64(opts.MaxSeparationRounds))

	recs = make([][]byte, 0, len(in.Observations))
	for _, o := range in.Observations {
		var r []byte
		ru := func(v int64) { r = binary.AppendVarint(r, v) }
		if o.Anchored {
			pos := in.IMCPositions[o.SrcIMC]
			ru(1)
			ru(int64(pos.Row))
			ru(int64(pos.Col))
		} else {
			ru(0)
			ru(int64(o.SrcCHA))
		}
		ru(int64(o.DstCHA))
		for _, list := range [][]int{o.Up, o.Down, o.Horz} {
			ru(int64(len(list)))
			for _, k := range list {
				ru(int64(k))
			}
		}
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return lessBytes(recs[i], recs[j]) })
	return header, recs
}

// digest folds a canonical header and record set into the cache key.
func digest(header []byte, recs [][]byte) memo.Key {
	buf := append([]byte(nil), header...)
	buf = binary.AppendVarint(buf, int64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendVarint(buf, int64(len(r)))
		buf = append(buf, r...)
	}
	return sha256.Sum256(buf)
}

// Fingerprint returns the canonical content digest of a reconstruction
// problem. Reconstruct must have validated in first (anchored
// observations index into IMCPositions).
func Fingerprint(in Input, opts Options) memo.Key {
	header, recs := canonicalInput(in, opts)
	return digest(header, recs)
}

func lessBytes(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
