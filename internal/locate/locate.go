// Package locate implements step 3 of the core-locating method: turning
// the partial traffic observations of internal/probe into the physical
// core-tile map, by solving the paper's integer-linear-program formulation
// (Sec. II-C) with internal/ilp.
//
// Variables per CHA tile i: row R_i and column C_i. Every observation
// contributes:
//
//   - alignment: CHAs that saw vertical ingress share the source's column;
//     CHAs that saw horizontal ingress share the sink's row;
//   - vertical bounding boxes: up-ingress observers lie strictly below the
//     source and not above the sink (reversed for down);
//   - horizontal bounding boxes: because odd columns are mirrored, the
//     true east/west direction is unknowable, so per-path binary
//     "nullifier" variables NE_p/NW_p enable exactly one direction's
//     bounds (big-M trick);
//   - one-hot row/column encodings plus occupancy indicator variables
//     feed a weighted objective that selects the tightest packed map.
//
// Tiles are additionally kept from overlapping by lazily adding pairwise
// separation disjunctions — only for the (rare, LLC-only-tile) pairs the
// relaxed solution actually collapses, which keeps the base model small.
package locate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"coremap/internal/cmerr"
	"coremap/internal/ilp"
	"coremap/internal/mesh"
	"coremap/internal/obs"
	"coremap/internal/probe"
	"coremap/internal/topo"
)

// bigM nullifies guarded constraints; any value exceeding every possible
// index difference and tile count works.
const bigM = 64

// Input is the reconstruction problem.
type Input struct {
	// Backend is the interconnect substrate the observations were
	// measured on. The constraint emitter below is the mesh backend's
	// (Y-then-X routing, ring-ingress observers, NE/NW nullifiers);
	// Reconstruct rejects any other kind — the ring and noc backends
	// own their emitters (internal/topo/ring, internal/topo/noc). The
	// field still participates in Fingerprint so cache entries can
	// never alias across substrates. The zero value is topo.KindMesh,
	// keeping pre-refactor call sites unchanged.
	Backend topo.Kind
	// NumCHA is the number of tiles to place (every active CHA).
	NumCHA int
	// Rows and Cols are the die tile-grid dimensions T_h × T_w, known
	// per CPU family from die documentation.
	Rows, Cols int
	// Observations is the step-2 measurement output.
	Observations []probe.Observation
	// IMCPositions gives the die coordinates of the memory controllers,
	// indexed by IMC number. Required only when Observations contains
	// memory-anchored entries; anchored reconstructions come out in
	// absolute die coordinates (no mirror or translation ambiguity).
	IMCPositions []mesh.Coord
}

// Options tunes reconstruction.
type Options struct {
	// MaxNodes bounds the ILP search per solve (0 = ilp default).
	MaxNodes int
	// Workers is the ILP worker count per solve (0 = GOMAXPROCS). Callers
	// that already parallelize across instances — the survey loops in
	// internal/experiments — pass 1 so nested parallelism does not
	// oversubscribe the machine. The reconstructed map is identical at
	// any setting (see ilp.Options.Workers).
	Workers int
	// MaxSeparationRounds bounds the lazy no-overlap loop.
	MaxSeparationRounds int
	// PaperExactBounds, when true, uses the paper's printed (looser)
	// horizontal bounding-box inequalities (2)/(3) instead of the strict
	// dimension-order-routing form. The strict form is the default; both
	// must admit the true map.
	PaperExactBounds bool
	// NoPrune disables the observation-dominance pruner (see prune.go)
	// and emits the raw per-observation constraint system. The
	// reconstructed map is identical either way (TestPruneInvariant);
	// the switch exists for ablation and regression testing.
	NoPrune bool
	// NoWarmStart disables ILP incumbent seeding: both the cache's
	// superset-index lookup (a cached placement for a subset of the
	// observations seeds the new solve) and the ilp.Options.WarmStart
	// plumbing. The reconstructed map is identical either way — seeding
	// only prunes worse subtrees earlier — so the switch exists for
	// ablation and regression testing, and is excluded from Fingerprint.
	NoWarmStart bool
	// Cache, when non-nil, memoizes reconstructions by the canonical
	// content fingerprint of the input (see Fingerprint). Survey loops
	// share one Cache across instances: machines with the same
	// core-location pattern produce identical observations, so the hit
	// rate mirrors the paper's Table II distinct-pattern counts.
	Cache *Cache
}

// Map is a reconstructed physical layout.
type Map struct {
	// Pos maps CHA ID → tile coordinate.
	Pos []mesh.Coord
	// Rows, Cols echo the grid the map was solved on.
	Rows, Cols int
	// Anchored reports whether memory-anchored observations pinned the
	// map in absolute die coordinates (compare with ScoreAbsolute; an
	// unanchored map is only defined up to mirror/translation).
	Anchored bool
	// Optimal reports whether the ILP proved optimality.
	Optimal bool
	// Nodes is the total branch-and-bound nodes over all solve rounds.
	Nodes int
	// SeparationRounds is how many lazy no-overlap rounds were needed.
	SeparationRounds int
}

// ErrUnsatisfiable reports that no placement explains the observations —
// in practice a sign of measurement noise exceeding the probe threshold.
// It is Permanent: re-solving the same observations cannot help.
var ErrUnsatisfiable = cmerr.Sentinel(cmerr.Permanent, "locate: observations admit no placement")

// ErrInterrupted reports that reconstruction was cancelled mid-solve. When
// an ILP incumbent existed, Reconstruct returns it as a best-effort Map
// (Optimal false) alongside this error. errors.Is(err, cmerr.Interrupted)
// matches.
var ErrInterrupted = cmerr.Sentinel(cmerr.Interrupted, "locate: reconstruction interrupted")

// builder assembles the ILP.
type builder struct {
	m       *ilp.Model
	r, c    []ilp.Var
	anchors map[mesh.Coord][2]ilp.Var
	in      Input
	// lbl is scratch for building label and name strings with strconv
	// instead of fmt: one constraint label is minted per model row, and
	// Sprintf's vararg boxing was the largest allocation source of model
	// construction.
	lbl []byte
	// dirs, oh{R,C} and ind{R,C} record the auxiliary variables as they
	// are created, so warmAssignment can derive a full model assignment
	// from a known placement without re-deriving variable layout.
	dirs       []pathDir
	ohR, ohC   [][]ilp.Var
	indR, indC []ilp.Var
}

// pathDir is one horizontal path's direction-nullifier pair.
type pathDir struct {
	ne, nw ilp.Var
	obs    probe.Observation
}

// nameIdx formats prefix+itoa(i), e.g. "R3".
func (b *builder) nameIdx(prefix string, i int) string {
	buf := append(b.lbl[:0], prefix...)
	buf = strconv.AppendInt(buf, int64(i), 10)
	b.lbl = buf
	return string(buf)
}

// nameIdx2 formats prefix+itoa(i)+sep+itoa(j), e.g. "OHR3_1".
func (b *builder) nameIdx2(prefix string, i int, sep string, j int) string {
	buf := append(b.lbl[:0], prefix...)
	buf = strconv.AppendInt(buf, int64(i), 10)
	buf = append(buf, sep...)
	buf = strconv.AppendInt(buf, int64(j), 10)
	b.lbl = buf
	return string(buf)
}

// pathLabel formats the per-observation constraint label
// "p<p>(<src>→<dst>)/<kind>@<k>".
func (b *builder) pathLabel(p, src, dst int, kind string, k int) string {
	buf := append(b.lbl[:0], 'p')
	buf = strconv.AppendInt(buf, int64(p), 10)
	buf = append(buf, '(')
	buf = strconv.AppendInt(buf, int64(src), 10)
	buf = append(buf, "→"...)
	buf = strconv.AppendInt(buf, int64(dst), 10)
	buf = append(buf, ")/"...)
	buf = append(buf, kind...)
	buf = append(buf, '@')
	buf = strconv.AppendInt(buf, int64(k), 10)
	b.lbl = buf
	return string(buf)
}

func newBuilder(in Input) *builder {
	b := &builder{m: ilp.NewModel(), in: in, anchors: make(map[mesh.Coord][2]ilp.Var)}
	b.r = make([]ilp.Var, in.NumCHA)
	b.c = make([]ilp.Var, in.NumCHA)
	for i := 0; i < in.NumCHA; i++ {
		b.r[i] = b.m.NewVar(b.nameIdx("R", i), 0, int64(in.Rows-1))
		b.c[i] = b.m.NewVar(b.nameIdx("C", i), 0, int64(in.Cols-1))
	}
	return b
}

// srcVars returns the row/column variables of an observation's source:
// the CHA's position unknowns, or — for memory-anchored observations —
// variables fixed at the known IMC die position.
func (b *builder) srcVars(o probe.Observation) (ilp.Var, ilp.Var) {
	if !o.Anchored {
		return b.r[o.SrcCHA], b.c[o.SrcCHA]
	}
	pos := b.in.IMCPositions[o.SrcIMC]
	if v, ok := b.anchors[pos]; ok {
		return v[0], v[1]
	}
	rv := b.m.NewVar(fmt.Sprintf("AR%d_%d", pos.Row, pos.Col), int64(pos.Row), int64(pos.Row))
	cv := b.m.NewVar(fmt.Sprintf("AC%d_%d", pos.Row, pos.Col), int64(pos.Col), int64(pos.Col))
	b.anchors[pos] = [2]ilp.Var{rv, cv}
	return rv, cv
}

// addObservation encodes one traffic path's constraints.
func (b *builder) addObservation(p int, o probe.Observation, paperBounds bool) {
	e := o.DstCHA
	srcR, srcC := b.srcVars(o)
	label := func(kind string, k int) string {
		return b.pathLabel(p, o.SrcCHA, e, kind, k)
	}

	for _, k := range o.Up {
		// Vertical alignment with the source column.
		b.m.AddEq(label("col", k), []ilp.Term{ilp.T(1, b.c[k]), ilp.T(-1, srcC)}, 0)
		// Upward travel: R_s > R_k ≥ R_e.
		b.m.AddGE(label("up-src", k), []ilp.Term{ilp.T(1, srcR), ilp.T(-1, b.r[k])}, 1)
		b.m.AddGE(label("up-dst", k), []ilp.Term{ilp.T(1, b.r[k]), ilp.T(-1, b.r[e])}, 0)
	}
	for _, k := range o.Down {
		b.m.AddEq(label("col", k), []ilp.Term{ilp.T(1, b.c[k]), ilp.T(-1, srcC)}, 0)
		// Downward travel: R_s < R_k ≤ R_e.
		b.m.AddGE(label("dn-src", k), []ilp.Term{ilp.T(1, b.r[k]), ilp.T(-1, srcR)}, 1)
		b.m.AddGE(label("dn-dst", k), []ilp.Term{ilp.T(1, b.r[e]), ilp.T(-1, b.r[k])}, 0)
	}
	if len(o.Horz) == 0 {
		return
	}
	ne := b.m.NewBinary(b.nameIdx("NE", p))
	nw := b.m.NewBinary(b.nameIdx("NW", p))
	b.dirs = append(b.dirs, pathDir{ne: ne, nw: nw, obs: o})
	b.m.AddEq(label("dir", 0), []ilp.Term{ilp.T(1, ne), ilp.T(1, nw)}, 1)
	for _, k := range o.Horz {
		// Horizontal alignment with the sink row.
		b.m.AddEq(label("row", k), []ilp.Term{ilp.T(1, b.r[k]), ilp.T(-1, b.r[e])}, 0)

		srcGap, dstGap := int64(1), int64(1)
		if paperBounds {
			// The paper's (2)/(3): C_s ≤ C_k and C_k < C_e
			// (eastbound), mirrored westbound.
			srcGap = 0
		}
		// Eastbound (active when NE=0): C_s + srcGap ≤ C_k.
		b.m.AddLE(label("east-src", k),
			[]ilp.Term{ilp.T(1, srcC), ilp.T(-1, b.c[k]), ilp.T(-bigM, ne)}, -srcGap)
		// Westbound (active when NW=0): C_k + srcGap ≤ C_s.
		b.m.AddLE(label("west-src", k),
			[]ilp.Term{ilp.T(1, b.c[k]), ilp.T(-1, srcC), ilp.T(-bigM, nw)}, -srcGap)
		if k != e {
			// Intermediates sit strictly before the sink.
			b.m.AddLE(label("east-dst", k),
				[]ilp.Term{ilp.T(1, b.c[k]), ilp.T(-1, b.c[e]), ilp.T(-bigM, ne)}, -dstGap)
			b.m.AddLE(label("west-dst", k),
				[]ilp.Term{ilp.T(1, b.c[e]), ilp.T(-1, b.c[k]), ilp.T(-bigM, nw)}, -dstGap)
		}
	}
}

// addObjective builds the one-hot channeling, the occupancy indicators and
// the weighted packing objective of Sec. II-C.5/6.
func (b *builder) addObjective() {
	in := b.in
	var obj []ilp.Term

	// The model copies term rows on AddEq/AddLE, so one scratch row per
	// shape is reused across every tile and index below.
	addDim := func(dim string, vars []ilp.Var, size int, ohOut *[][]ilp.Var, indOut *[]ilp.Var) {
		// One-hot per tile.
		oh := make([][]ilp.Var, in.NumCHA)
		ohName, onehotName, channelName := "OH"+dim, "onehot-"+dim, "channel-"+dim
		indName, indLoName, indHiName := "I"+dim, "ind-lo-"+dim, "ind-hi-"+dim
		sum := make([]ilp.Term, size)
		channel := make([]ilp.Term, 0, size+1)
		for i := 0; i < in.NumCHA; i++ {
			oh[i] = make([]ilp.Var, size)
			channel = append(channel[:0], ilp.T(-1, vars[i]))
			for r := 0; r < size; r++ {
				oh[i][r] = b.m.NewBinary(b.nameIdx2(ohName, i, "_", r))
				sum[r] = ilp.T(1, oh[i][r])
				if r > 0 {
					channel = append(channel, ilp.T(int64(r), oh[i][r]))
				}
			}
			b.m.AddEq(b.nameIdx(onehotName, i), sum, 1)
			b.m.AddEq(b.nameIdx(channelName, i), channel, 0)
		}
		// Occupancy indicators and objective weights.
		inds := make([]ilp.Var, size)
		row := make([]ilp.Term, 0, in.NumCHA+1)
		for r := 0; r < size; r++ {
			ind := b.m.NewBinary(b.nameIdx(indName, r))
			inds[r] = ind
			// ind ≤ Σ occ: ind - Σ occ ≤ 0.
			row = append(row[:0], ilp.T(1, ind))
			for i := 0; i < in.NumCHA; i++ {
				row = append(row, ilp.T(-1, oh[i][r]))
			}
			b.m.AddLE(b.nameIdx(indLoName, r), row, 0)
			// Σ occ ≤ bigM·ind.
			row = row[:0]
			for i := 0; i < in.NumCHA; i++ {
				row = append(row, ilp.T(1, oh[i][r]))
			}
			row = append(row, ilp.T(-bigM, ind))
			b.m.AddLE(b.nameIdx(indHiName, r), row, 0)
			obj = append(obj, ilp.T(int64(r+1), ind))
		}
		*ohOut, *indOut = oh, inds
	}
	addDim("R", b.r, in.Rows, &b.ohR, &b.indR)
	addDim("C", b.c, in.Cols, &b.ohC, &b.indC)
	b.m.SetObjective(obj)
}

// warmAssignment derives a complete assignment of the built model from a
// known placement, for seeding the ILP incumbent (ilp.Options.WarmStart):
// position variables from the placement, anchors at their fixed
// coordinates, direction nullifiers from the relative source/sink
// columns, one-hots and occupancy indicators from the occupied cells. The
// solver re-verifies the seed with CheckFeasible, so a placement the
// current observations contradict (a superset seed from a pattern that
// diverged) is simply discarded there. Returns nil when the placement
// does not fit the grid.
func (b *builder) warmAssignment(pos []mesh.Coord) []int64 {
	in := b.in
	if len(pos) != in.NumCHA {
		return nil
	}
	for _, p := range pos {
		if p.Row < 0 || p.Row >= in.Rows || p.Col < 0 || p.Col >= in.Cols {
			return nil
		}
	}
	vals := make([]int64, b.m.NumVars())
	for i, p := range pos {
		vals[b.r[i]] = int64(p.Row)
		vals[b.c[i]] = int64(p.Col)
	}
	for at, v := range b.anchors {
		vals[v[0]] = int64(at.Row)
		vals[v[1]] = int64(at.Col)
	}
	for _, d := range b.dirs {
		var srcCol int
		if d.obs.Anchored {
			srcCol = in.IMCPositions[d.obs.SrcIMC].Col
		} else {
			srcCol = pos[d.obs.SrcCHA].Col
		}
		// Eastbound paths keep the east rows active (NE = 0, NW = 1).
		if pos[d.obs.DstCHA].Col > srcCol {
			vals[d.nw] = 1
		} else {
			vals[d.ne] = 1
		}
	}
	fill := func(oh [][]ilp.Var, ind []ilp.Var, at func(mesh.Coord) int) {
		for i, p := range pos {
			vals[oh[i][at(p)]] = 1
		}
		for r, v := range ind {
			for _, p := range pos {
				if at(p) == r {
					vals[v] = 1
					break
				}
			}
		}
	}
	fill(b.ohR, b.indR, func(c mesh.Coord) int { return c.Row })
	fill(b.ohC, b.indC, func(c mesh.Coord) int { return c.Col })
	return vals
}

// addSeparation forces tiles i and j onto different cells via a four-way
// big-M disjunction.
func (b *builder) addSeparation(i, j int) {
	name := fmt.Sprintf("sep%d-%d", i, j)
	dirs := make([]ilp.Term, 4)
	lhs := [][]ilp.Term{
		{ilp.T(1, b.r[j]), ilp.T(-1, b.r[i])}, // R_i < R_j
		{ilp.T(1, b.r[i]), ilp.T(-1, b.r[j])}, // R_i > R_j
		{ilp.T(1, b.c[j]), ilp.T(-1, b.c[i])}, // C_i < C_j
		{ilp.T(1, b.c[i]), ilp.T(-1, b.c[j])}, // C_i > C_j
	}
	for d := range lhs {
		a := b.m.NewBinary(fmt.Sprintf("%s/d%d", name, d))
		dirs[d] = ilp.T(1, a)
		// active when a=1: lhs ≥ 1  ⇔  -lhs + bigM·(1-a) ≥ ... encode
		// as lhs + bigM·a ≥ 1 + ... simplest: lhs ≥ 1 - bigM·(1-a):
		// lhs + bigM·(1-a) ≥ 1 → lhs - bigM·a ≥ 1 - bigM.
		terms := append(append([]ilp.Term{}, lhs[d]...), ilp.T(-bigM, a))
		b.m.AddGE(name, terms, 1-bigM)
	}
	b.m.AddGE(name+"/any", dirs, 1)
}

// branchOrder returns the R/C variables interleaved per tile, which lets
// equality propagation fix most of the model after a few decisions.
func (b *builder) branchOrder() []ilp.Var {
	out := make([]ilp.Var, 0, 2*b.in.NumCHA)
	for i := 0; i < b.in.NumCHA; i++ {
		out = append(out, b.c[i], b.r[i])
	}
	return out
}

// Reconstruct solves the placement problem. With Options.Cache set, the
// solve is memoized under the input's canonical fingerprint. Cancelling
// ctx stops the ILP search at the next node boundary; when an incumbent
// placement existed, it is returned as a best-effort Map alongside an
// ErrInterrupted error.
func Reconstruct(ctx context.Context, in Input, opts Options) (*Map, error) {
	if in.Backend != topo.KindMesh {
		return nil, cmerr.New(cmerr.Permanent, "locate",
			"input carries %s observations; this emitter is mesh-only (the %s backend owns its own)",
			in.Backend, in.Backend)
	}
	if in.NumCHA <= 0 || in.Rows <= 0 || in.Cols <= 0 {
		return nil, cmerr.New(cmerr.Permanent, "locate", "invalid input %d CHAs on %dx%d", in.NumCHA, in.Rows, in.Cols)
	}
	for _, o := range in.Observations {
		if o.Anchored && (o.SrcIMC < 0 || o.SrcIMC >= len(in.IMCPositions)) {
			return nil, cmerr.New(cmerr.Permanent, "locate",
				"anchored observation references IMC %d but only %d positions are known",
				o.SrcIMC, len(in.IMCPositions))
		}
	}
	if opts.Cache != nil {
		return opts.Cache.reconstruct(ctx, in, opts)
	}
	return reconstruct(ctx, in, opts, nil)
}

// rawConstraintCount is the number of observation constraints an
// unpruned build (Options.NoPrune) would emit, mirroring addObservation:
// three per vertical observer, a direction one-hot per horizontal path,
// and three or five per horizontal observer. Reported next to the built
// model's actual count so telemetry shows what dominance pruning saved.
func rawConstraintCount(in Input) int64 {
	var n int64
	for _, o := range in.Observations {
		n += int64(3 * (len(o.Up) + len(o.Down)))
		if len(o.Horz) == 0 {
			continue
		}
		n++ // NE/NW one-hot
		for _, k := range o.Horz {
			n += 3 // row alignment + east/west source bounds
			if k != o.DstCHA {
				n += 2 // east/west intermediate bounds
			}
		}
	}
	return n
}

// reconstruct is the uncached solve path; in has been validated. warmPos,
// when non-nil, is a placement from the cache's superset index used to
// seed the first solve's incumbent (discarded by the solver if the new
// observations contradict it).
func reconstruct(ctx context.Context, in Input, opts Options, warmPos []mesh.Coord) (result *Map, err error) {
	ctx, span := obs.Start(ctx, "locate/reconstruct")
	reg := obs.RegistryFrom(ctx)
	clock := obs.From(ctx).Clock()
	reconStart := clock.Now()
	defer func() {
		if result != nil {
			span.SetAttr("rounds", int64(result.SeparationRounds)).
				SetAttr("nodes", int64(result.Nodes))
		}
		reg.Histogram("locate/reconstruct_us").
			Observe(clock.Now().Sub(reconStart).Microseconds())
		span.End(err)
	}()
	reg.Counter("locate/reconstructs").Inc()

	anchored := false
	for _, o := range in.Observations {
		if o.Anchored {
			anchored = true
			break
		}
	}
	maxRounds := opts.MaxSeparationRounds
	if maxRounds == 0 {
		maxRounds = 8
	}

	b := newBuilder(in)
	if opts.NoPrune {
		for p, o := range in.Observations {
			b.addObservation(p, o, opts.PaperExactBounds)
		}
	} else {
		b.addPruned(opts.PaperExactBounds)
	}
	reg.Counter("locate/constraints/raw").Add(rawConstraintCount(in))
	reg.Counter("locate/constraints/built").Add(int64(b.m.NumConstraints()))
	b.addObjective()

	// The warm seed targets the round-0 model; separation rounds add
	// variables, after which the stale (shorter) seed is ignored by the
	// solver's length check.
	var warm []int64
	if warmPos != nil && !opts.NoWarmStart {
		if warm = b.warmAssignment(warmPos); warm != nil {
			reg.Counter("ilp/warmstart_hits").Inc()
		}
	}

	result = &Map{Rows: in.Rows, Cols: in.Cols, Anchored: anchored}
	for round := 0; ; round++ {
		sol, err := ilp.Solve(ctx, b.m, ilp.Options{
			MaxNodes:    opts.MaxNodes,
			BranchOrder: b.branchOrder(),
			Workers:     opts.Workers,
			WarmStart:   warm,
			NoWarmStart: opts.NoWarmStart,
		})
		if errors.Is(err, ilp.ErrInfeasible) {
			return nil, ErrUnsatisfiable
		}
		interrupted := errors.Is(err, ilp.ErrInterrupted)
		if err != nil && !(interrupted && sol != nil) {
			if interrupted {
				return nil, fmt.Errorf("%w: %w", ErrInterrupted, err)
			}
			return nil, cmerr.Wrap(cmerr.Permanent, "locate", err)
		}
		result.Nodes += sol.Nodes
		result.Optimal = sol.Optimal && !interrupted
		result.SeparationRounds = round

		pos := make([]mesh.Coord, in.NumCHA)
		for i := 0; i < in.NumCHA; i++ {
			pos[i] = mesh.Coord{Row: int(sol.Value(b.r[i])), Col: int(sol.Value(b.c[i]))}
		}
		overlaps := findOverlaps(pos)
		if interrupted {
			// The incumbent is a complete feasible assignment of the
			// current model; separation refinement stops here. Hand it
			// back with the interruption so callers can keep it.
			result.Pos = pos
			return result, fmt.Errorf("%w after %d nodes: %w", ErrInterrupted, result.Nodes, err)
		}
		if len(overlaps) == 0 || round >= maxRounds {
			result.Pos = pos
			if len(overlaps) > 0 {
				return result, cmerr.New(cmerr.Permanent, "locate",
					"%d overlapping tile pairs remain after %d separation rounds", len(overlaps), round)
			}
			return result, nil
		}
		for _, ov := range overlaps {
			b.addSeparation(ov[0], ov[1])
		}
	}
}

func findOverlaps(pos []mesh.Coord) [][2]int {
	byCell := make(map[mesh.Coord][]int)
	for i, p := range pos {
		byCell[p] = append(byCell[p], i)
	}
	var out [][2]int
	for _, group := range byCell {
		for a := 0; a < len(group); a++ {
			for b := a + 1; b < len(group); b++ {
				out = append(out, [2]int{group[a], group[b]})
			}
		}
	}
	// The map range above visits cells in random order; sorting makes the
	// separation constraints (and thus the solver's branching order)
	// identical across runs.
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
