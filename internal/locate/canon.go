package locate

import "coremap/internal/mesh"

// The reconstructed map is determined only up to a horizontal mirror (the
// odd-column tile flip hides east/west) and a translation (fully vacant
// border rows/columns are unobservable; the packing objective normalizes
// them away). Canonical forms make maps comparable across those symmetries.

// normalize translates positions so the minimum occupied row and column
// become zero.
func normalize(pos []mesh.Coord) []mesh.Coord {
	if len(pos) == 0 {
		return nil
	}
	minR, minC := pos[0].Row, pos[0].Col
	for _, p := range pos {
		if p.Row < minR {
			minR = p.Row
		}
		if p.Col < minC {
			minC = p.Col
		}
	}
	out := make([]mesh.Coord, len(pos))
	for i, p := range pos {
		out[i] = mesh.Coord{Row: p.Row - minR, Col: p.Col - minC}
	}
	return out
}

// mirror flips positions horizontally within their occupied bounding box.
func mirror(pos []mesh.Coord) []mesh.Coord {
	maxC := 0
	for _, p := range pos {
		if p.Col > maxC {
			maxC = p.Col
		}
	}
	out := make([]mesh.Coord, len(pos))
	for i, p := range pos {
		out[i] = mesh.Coord{Row: p.Row, Col: maxC - p.Col}
	}
	return out
}

func lexLess(a, b []mesh.Coord) bool {
	for i := range a {
		if a[i].Row != b[i].Row {
			return a[i].Row < b[i].Row
		}
		if a[i].Col != b[i].Col {
			return a[i].Col < b[i].Col
		}
	}
	return false
}

// Canonical returns the canonical form of a position list (indexed by CHA
// ID): translation-normalized, and the lexicographically smaller of the
// map and its horizontal mirror.
func Canonical(pos []mesh.Coord) []mesh.Coord {
	a := normalize(pos)
	b := normalize(mirror(a))
	if lexLess(b, a) {
		return b
	}
	return a
}

// Equivalent reports whether two maps are equal up to translation and
// horizontal mirroring.
func Equivalent(a, b []mesh.Coord) bool {
	if len(a) != len(b) {
		return false
	}
	ca, cb := Canonical(a), Canonical(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// RelativeScore returns the fraction of tile pairs whose relative ordering
// — the sign of the row difference and of the column difference — matches
// ground truth under the best mirror choice. A map that is exact except
// for compacted fully-vacant rows or columns (the paper's Sec. II-D
// failure mode) still scores 1.0 here.
func RelativeScore(got, truth []mesh.Coord) float64 {
	if len(got) != len(truth) || len(got) < 2 {
		return 0
	}
	best := 0
	for _, cand := range [][]mesh.Coord{got, mirror(got)} {
		n := 0
		for i := 0; i < len(cand); i++ {
			for j := i + 1; j < len(cand); j++ {
				if sgn(cand[i].Row-cand[j].Row) == sgn(truth[i].Row-truth[j].Row) &&
					sgn(cand[i].Col-cand[j].Col) == sgn(truth[i].Col-truth[j].Col) {
					n++
				}
			}
		}
		if n > best {
			best = n
		}
	}
	return float64(best) / float64(len(got)*(len(got)-1)/2)
}

func sgn(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// ScoreAbsolute compares an anchored reconstruction against ground truth
// in absolute die coordinates — no mirror or translation allowance,
// because memory-anchored observations eliminate both ambiguities.
func ScoreAbsolute(got, truth []mesh.Coord) (exact bool, tilesCorrect int) {
	if len(got) != len(truth) {
		return false, 0
	}
	n := 0
	for i := range got {
		if got[i] == truth[i] {
			n++
		}
	}
	return n == len(truth), n
}

// Score compares a reconstruction against ground truth and returns whether
// the maps match exactly (up to the inherent symmetries) and how many
// individual tiles land on their true cell under the best symmetry choice.
func Score(got, truth []mesh.Coord) (exact bool, tilesCorrect int) {
	if len(got) != len(truth) {
		return false, 0
	}
	t := normalize(truth)
	best := 0
	for _, cand := range [][]mesh.Coord{normalize(got), normalize(mirror(got))} {
		n := 0
		for i := range cand {
			if cand[i] == t[i] {
				n++
			}
		}
		if n > best {
			best = n
		}
	}
	return best == len(truth), best
}
