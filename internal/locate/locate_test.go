package locate

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"coremap/internal/mesh"
	"coremap/internal/probe"
)

func TestNormalizeAndMirror(t *testing.T) {
	pos := []mesh.Coord{{Row: 2, Col: 3}, {Row: 4, Col: 1}}
	n := normalize(pos)
	if n[0] != (mesh.Coord{Row: 0, Col: 2}) || n[1] != (mesh.Coord{Row: 2, Col: 0}) {
		t.Errorf("normalize = %v", n)
	}
	mm := mirror(n)
	if mm[0] != (mesh.Coord{Row: 0, Col: 0}) || mm[1] != (mesh.Coord{Row: 2, Col: 2}) {
		t.Errorf("mirror = %v", mm)
	}
	if normalize(nil) != nil {
		t.Error("normalize(nil) != nil")
	}
}

func TestCanonicalInvariances(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		pos := make([]mesh.Coord, n)
		for i := range pos {
			pos[i] = mesh.Coord{Row: r.Intn(5), Col: r.Intn(6)}
		}
		// Canonical must be idempotent.
		c1 := Canonical(pos)
		c2 := Canonical(c1)
		for i := range c1 {
			if c1[i] != c2[i] {
				return false
			}
		}
		// Translation invariance.
		shifted := make([]mesh.Coord, n)
		dr, dc := r.Intn(3), r.Intn(3)
		for i := range pos {
			shifted[i] = mesh.Coord{Row: pos[i].Row + dr, Col: pos[i].Col + dc}
		}
		if !Equivalent(pos, shifted) {
			return false
		}
		// Mirror invariance.
		return Equivalent(pos, mirror(pos))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(20))}); err != nil {
		t.Error(err)
	}
}

func TestScoreSelf(t *testing.T) {
	pos := []mesh.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 2}, {Row: 3, Col: 1}}
	if exact, n := Score(pos, pos); !exact || n != 3 {
		t.Errorf("Score(self) = %v,%d", exact, n)
	}
	if rs := RelativeScore(pos, pos); rs != 1.0 {
		t.Errorf("RelativeScore(self) = %v", rs)
	}
	if rs := RelativeScore(mirror(pos), pos); rs != 1.0 {
		t.Errorf("RelativeScore(mirror) = %v", rs)
	}
}

func TestScoreDetectsMismatch(t *testing.T) {
	a := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}, {Row: 1, Col: 0}}
	b := []mesh.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 0}, {Row: 0, Col: 1}}
	if exact, _ := Score(a, b); exact {
		t.Error("different maps scored exact")
	}
	if Equivalent(a, b) {
		t.Error("different maps reported equivalent")
	}
	if _, n := Score(a, []mesh.Coord{{Row: 0, Col: 0}}); n != 0 {
		t.Error("length mismatch not rejected")
	}
}

// syntheticObservations builds ground-truth observations for every ordered
// pair of active tiles on a grid, seen through the partial-observability
// rules (only active-CHA tiles report ingress).
func syntheticObservations(g *mesh.Grid, tiles []mesh.Coord) []probe.Observation {
	var obs []probe.Observation
	for s := range tiles {
		for e := range tiles {
			if s == e {
				continue
			}
			o := probe.Observation{SrcCHA: s, DstCHA: e}
			for _, h := range g.Route(tiles[s], tiles[e]) {
				tl := g.Tile(h.To)
				if !tl.Kind.HasCHA() {
					continue
				}
				switch {
				case h.Ch == mesh.Up:
					o.Up = append(o.Up, tl.CHA)
				case h.Ch == mesh.Down:
					o.Down = append(o.Down, tl.CHA)
				default:
					o.Horz = append(o.Horz, tl.CHA)
				}
			}
			obs = append(obs, o)
		}
	}
	return obs
}

func fullGrid(rows, cols int) (*mesh.Grid, []mesh.Coord) {
	g := mesh.NewGrid(rows, cols)
	var tiles []mesh.Coord
	id := 0
	g.Tiles(func(c mesh.Coord, tl *mesh.Tile) {
		tl.Kind = mesh.KindCore
		tl.CHA = id
		id++
		tiles = append(tiles, c)
	})
	return g, tiles
}

func TestReconstructFullGridExact(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {3, 3}, {2, 4}, {4, 3}} {
		g, tiles := fullGrid(sz[0], sz[1])
		mp, err := Reconstruct(context.Background(), Input{
			NumCHA:       len(tiles),
			Rows:         sz[0],
			Cols:         sz[1],
			Observations: syntheticObservations(g, tiles),
		}, Options{})
		if err != nil {
			t.Fatalf("%dx%d: %v", sz[0], sz[1], err)
		}
		if exact, n := Score(mp.Pos, tiles); !exact {
			t.Errorf("%dx%d: not exact (%d/%d)", sz[0], sz[1], n, len(tiles))
		}
		if !mp.Optimal {
			t.Errorf("%dx%d: optimality not proven", sz[0], sz[1])
		}
	}
}

// TestReconstructRandomActiveSubsets: random subsets of a grid with every
// active tile able to host traffic. The reconstruction must always succeed
// and stay close to the true relative ordering; perfect order recovery is
// not guaranteed because disabled tiles genuinely hide some row/column
// separations (paper Sec. II-B/II-D).
func TestReconstructRandomActiveSubsets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const rows, cols = 4, 4
		g := mesh.NewGrid(rows, cols)
		var tiles []mesh.Coord
		id := 0
		g.Tiles(func(c mesh.Coord, tl *mesh.Tile) {
			if r.Intn(4) == 0 { // ~25% disabled
				return
			}
			tl.Kind = mesh.KindCore
			tl.CHA = id
			id++
			tiles = append(tiles, c)
		})
		if len(tiles) < 3 {
			return true
		}
		mp, err := Reconstruct(context.Background(), Input{
			NumCHA:       len(tiles),
			Rows:         rows,
			Cols:         cols,
			Observations: syntheticObservations(g, tiles),
		}, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if rs := RelativeScore(mp.Pos, tiles); rs < 0.85 {
			t.Logf("seed %d: relative score %v\n got %v\n want %v", seed, rs, mp.Pos, tiles)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}

func TestReconstructPaperBoundsAlsoRecover(t *testing.T) {
	g, tiles := fullGrid(3, 3)
	mp, err := Reconstruct(context.Background(), Input{
		NumCHA:       len(tiles),
		Rows:         3,
		Cols:         3,
		Observations: syntheticObservations(g, tiles),
	}, Options{PaperExactBounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact, n := Score(mp.Pos, tiles); !exact {
		t.Errorf("paper bounds: not exact (%d/%d)", n, len(tiles))
	}
}

func TestReconstructUnsatisfiable(t *testing.T) {
	// Tile 2 claims to be strictly below tile 0 and strictly above it.
	obs := []probe.Observation{
		{SrcCHA: 0, DstCHA: 1, Down: []int{2}},
		{SrcCHA: 2, DstCHA: 1, Down: []int{0}},
		{SrcCHA: 1, DstCHA: 0, Down: []int{2}},
	}
	_, err := Reconstruct(context.Background(), Input{NumCHA: 3, Rows: 2, Cols: 2, Observations: obs}, Options{})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v, want ErrUnsatisfiable", err)
	}
}

func TestReconstructRejectsBadInput(t *testing.T) {
	if _, err := Reconstruct(context.Background(), Input{NumCHA: 0, Rows: 2, Cols: 2}, Options{}); err == nil {
		t.Error("zero CHAs accepted")
	}
	if _, err := Reconstruct(context.Background(), Input{NumCHA: 2, Rows: 0, Cols: 2}, Options{}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestScoreAbsolute(t *testing.T) {
	a := []mesh.Coord{{Row: 1, Col: 1}, {Row: 2, Col: 1}}
	if exact, n := ScoreAbsolute(a, a); !exact || n != 2 {
		t.Errorf("self = %v,%d", exact, n)
	}
	// Translation is NOT forgiven in absolute scoring.
	b := []mesh.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 0}}
	if exact, n := ScoreAbsolute(b, a); exact || n != 0 {
		t.Errorf("translated = %v,%d; absolute scoring must reject it", exact, n)
	}
	if _, n := ScoreAbsolute(a[:1], a); n != 0 {
		t.Error("length mismatch not rejected")
	}
}

// TestLazySeparationResolvesOverlaps: an under-constrained tile would
// collapse onto another under the packing objective; the lazy no-overlap
// rounds must pull them apart.
func TestLazySeparationResolvesOverlaps(t *testing.T) {
	// Tiles 0,1 vertically adjacent; tile 2 completely unobserved.
	obs := []probe.Observation{
		{SrcCHA: 0, DstCHA: 1, Down: []int{1}},
		{SrcCHA: 1, DstCHA: 0, Up: []int{0}},
	}
	mp, err := Reconstruct(context.Background(), Input{NumCHA: 3, Rows: 3, Cols: 3, Observations: obs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[mesh.Coord]bool{}
	for _, c := range mp.Pos {
		if seen[c] {
			t.Fatalf("tiles overlap at %v: %v", c, mp.Pos)
		}
		seen[c] = true
	}
	if mp.SeparationRounds == 0 {
		t.Error("expected at least one lazy separation round for the unconstrained tile")
	}
}

// TestAnchoredSyntheticReconstruction: anchored observations with a known
// source position must pin absolute coordinates on a synthetic grid.
func TestAnchoredSyntheticReconstruction(t *testing.T) {
	// IMC at (1,0); tiles 0 and 1 at (0,0) and (2,0): traffic from the
	// IMC reaches tile 0 through an up channel and tile 1 through down.
	imc := []mesh.Coord{{Row: 1, Col: 0}}
	obs := []probe.Observation{
		{SrcCHA: -1, DstCHA: 0, Anchored: true, SrcIMC: 0, Up: []int{0}},
		{SrcCHA: -1, DstCHA: 1, Anchored: true, SrcIMC: 0, Down: []int{1}},
	}
	mp, err := Reconstruct(context.Background(), Input{NumCHA: 2, Rows: 3, Cols: 3, Observations: obs, IMCPositions: imc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mp.Anchored {
		t.Error("map not marked anchored")
	}
	if mp.Pos[0] != (mesh.Coord{Row: 0, Col: 0}) {
		t.Errorf("tile 0 at %v, want (0,0) absolutely", mp.Pos[0])
	}
	if mp.Pos[1] != (mesh.Coord{Row: 2, Col: 0}) {
		t.Errorf("tile 1 at %v, want (2,0) absolutely", mp.Pos[1])
	}
}

func TestVerticalPairMinimalObservation(t *testing.T) {
	// One observation — 1 down-hop — must separate the two tiles
	// vertically with the source above the sink.
	obs := []probe.Observation{{SrcCHA: 0, DstCHA: 1, Down: []int{1}}}
	mp, err := Reconstruct(context.Background(), Input{NumCHA: 2, Rows: 3, Cols: 3, Observations: obs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Pos[0].Col != mp.Pos[1].Col {
		t.Errorf("vertical pair not column-aligned: %v", mp.Pos)
	}
	if mp.Pos[0].Row >= mp.Pos[1].Row {
		t.Errorf("down observation did not order rows: %v", mp.Pos)
	}
}
