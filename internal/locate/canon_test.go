package locate

import (
	"reflect"
	"testing"

	"coremap/internal/mesh"
)

// Edge cases of the canonical-form machinery that the property tests in
// locate_test.go don't reach: degenerate inputs and maps that are their
// own mirror image.

func TestCanonicalEmpty(t *testing.T) {
	if got := Canonical(nil); len(got) != 0 {
		t.Errorf("Canonical(nil) = %v, want empty", got)
	}
	if got := Canonical([]mesh.Coord{}); len(got) != 0 {
		t.Errorf("Canonical([]) = %v, want empty", got)
	}
	if !Equivalent(nil, []mesh.Coord{}) {
		t.Error("two empty maps must be equivalent")
	}
	if Equivalent(nil, []mesh.Coord{{Row: 0, Col: 0}}) {
		t.Error("empty map equivalent to a one-tile map")
	}
}

func TestCanonicalSingleTile(t *testing.T) {
	// Any lone tile normalizes to the origin: translation removes its
	// offset and mirroring a 1-wide box is the identity.
	for _, p := range []mesh.Coord{{Row: 0, Col: 0}, {Row: 4, Col: 2}, {Row: 0, Col: 5}} {
		got := Canonical([]mesh.Coord{p})
		want := []mesh.Coord{{Row: 0, Col: 0}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Canonical([%v]) = %v, want %v", p, got, want)
		}
	}
	if !Equivalent([]mesh.Coord{{Row: 3, Col: 1}}, []mesh.Coord{{Row: 0, Col: 4}}) {
		t.Error("two single-tile maps must always be equivalent")
	}
}

// TestCanonicalMirrorSymmetric: a map that is its own horizontal mirror
// (tile i at column c, tile i also present mirrored) must canonicalize
// identically from either orientation, and mirroring must not change it.
func TestCanonicalMirrorSymmetric(t *testing.T) {
	// CHA 0 and 1 mirror onto each other's cells, 2 sits on the axis:
	//   0 2 1
	sym := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 2}, {Row: 0, Col: 1}}
	if !Equivalent(sym, mirror(sym)) {
		t.Fatal("mirror-symmetric map not equivalent to its mirror")
	}
	c := Canonical(sym)
	cm := Canonical(normalize(mirror(sym)))
	if !reflect.DeepEqual(c, cm) {
		t.Errorf("canonical form differs across the mirror: %v vs %v", c, cm)
	}
}

// TestCanonicalPicksLexSmaller: for an asymmetric map, Canonical must
// return the lexicographically smaller of the two orientations no matter
// which one it is handed.
func TestCanonicalPicksLexSmaller(t *testing.T) {
	// CHA 0 west, CHA 1 east of it — mirroring swaps the columns.
	a := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	b := []mesh.Coord{{Row: 0, Col: 1}, {Row: 0, Col: 0}}
	ca, cb := Canonical(a), Canonical(b)
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("mirrored inputs canonicalize differently: %v vs %v", ca, cb)
	}
	want := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	if !reflect.DeepEqual(ca, want) {
		t.Errorf("Canonical chose %v, want lexicographically smaller %v", ca, want)
	}
}

// TestEquivalentLengthMismatch: maps of different sizes are never
// equivalent, even when one is a prefix of the other.
func TestEquivalentLengthMismatch(t *testing.T) {
	a := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	if Equivalent(a, a[:1]) {
		t.Error("maps of different length reported equivalent")
	}
}
