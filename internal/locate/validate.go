package locate

import (
	"fmt"

	"coremap/internal/cmerr"
	"coremap/internal/mesh"
	"coremap/internal/probe"
)

// Validate checks a placement against every observation semantically —
// alignment, vertical ordering and the existence of a consistent
// horizontal direction per path — without building the ILP. It returns a
// descriptive error for the first violated observation. Reconstruct's
// solutions always validate (the ILP enforces a superset of these
// constraints); the function exists as an independent cross-check and for
// validating externally supplied maps.
func Validate(in Input, pos []mesh.Coord) error {
	if len(pos) != in.NumCHA {
		return cmerr.New(cmerr.Permanent, "locate", "placement has %d tiles, expected %d", len(pos), in.NumCHA)
	}
	at := func(cha int) (mesh.Coord, error) {
		if cha < 0 || cha >= len(pos) {
			return mesh.Coord{}, cmerr.New(cmerr.Permanent, "locate", "observation references CHA %d", cha)
		}
		return pos[cha], nil
	}
	for i, o := range in.Observations {
		var src mesh.Coord
		if o.Anchored {
			if o.SrcIMC < 0 || o.SrcIMC >= len(in.IMCPositions) {
				return cmerr.New(cmerr.Permanent, "locate", "observation %d references unknown IMC %d", i, o.SrcIMC)
			}
			src = in.IMCPositions[o.SrcIMC]
		} else {
			var err error
			if src, err = at(o.SrcCHA); err != nil {
				return err
			}
		}
		dst, err := at(o.DstCHA)
		if err != nil {
			return err
		}
		if err := validatePath(o, src, dst, pos); err != nil {
			return fmt.Errorf("locate: observation %d (%d→%d): %w", i, o.SrcCHA, o.DstCHA, err)
		}
	}
	return nil
}

func validatePath(o probe.Observation, src, dst mesh.Coord, pos []mesh.Coord) error {
	for _, k := range o.Up {
		c := pos[k]
		if c.Col != src.Col {
			return fmt.Errorf("up observer %d at %v not in source column %d", k, c, src.Col)
		}
		if !(src.Row > c.Row && c.Row >= dst.Row) {
			return fmt.Errorf("up observer %d at row %d outside (%d,%d]", k, c.Row, dst.Row-1, src.Row-1)
		}
	}
	for _, k := range o.Down {
		c := pos[k]
		if c.Col != src.Col {
			return fmt.Errorf("down observer %d at %v not in source column %d", k, c, src.Col)
		}
		if !(src.Row < c.Row && c.Row <= dst.Row) {
			return fmt.Errorf("down observer %d at row %d outside [%d,%d)", k, c.Row, src.Row+1, dst.Row)
		}
	}
	if len(o.Horz) == 0 {
		return nil
	}
	// One direction must explain every horizontal observer: strictly
	// east of the source, on the sink row, and not past the sink (or the
	// westbound mirror image).
	ok := func(east bool) bool {
		for _, k := range o.Horz {
			c := pos[k]
			if c.Row != dst.Row {
				return false
			}
			if east {
				if !(src.Col < c.Col && c.Col <= dst.Col) {
					return false
				}
			} else {
				if !(src.Col > c.Col && c.Col >= dst.Col) {
					return false
				}
			}
		}
		return true
	}
	if !ok(true) && !ok(false) {
		return fmt.Errorf("horizontal observers %v fit neither direction", o.Horz)
	}
	return nil
}
