package locate

import (
	"context"
	"reflect"
	"testing"

	"coremap/internal/mesh"
	"coremap/internal/obs"
	"coremap/internal/probe"
)

// registryCtx returns a context carrying a fresh metrics registry plus the
// registry itself, for asserting the warm-start counters.
func registryCtx() (context.Context, *obs.Registry) {
	tel := obs.New(obs.Config{})
	return obs.With(context.Background(), tel), tel.Registry()
}

// subsetInput returns in with only the first half of its observations —
// a strict multiset subset with the same grid header, which is exactly
// what the cache's warm-start index matches on.
func subsetInput(in Input) Input {
	sub := in
	sub.Observations = append([]probe.Observation(nil),
		in.Observations[:len(in.Observations)/2]...)
	return sub
}

// TestCacheWarmStartSuperset: solving a subset problem and then its
// superset through one cache must trigger the warm-start index, and the
// superset's map must be byte-identical to an uncached cold solve —
// seeding is a pure accelerator.
func TestCacheWarmStartSuperset(t *testing.T) {
	in, _ := testInput(3, 4)
	cold, err := Reconstruct(context.Background(), in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	ctx, reg := registryCtx()
	if _, err := Reconstruct(ctx, subsetInput(in), Options{Cache: c, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ilp/warmstart_hits").Value(); got != 0 {
		t.Fatalf("ilp/warmstart_hits = %d after the first solve, want 0", got)
	}
	warm, err := Reconstruct(ctx, in, Options{Cache: c, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Pos, cold.Pos) {
		t.Fatalf("warm-started superset map differs from cold solve:\n%v\n%v",
			warm.Pos, cold.Pos)
	}
	if got := reg.Counter("ilp/warmstart_hits").Value(); got == 0 {
		t.Error("ilp/warmstart_hits = 0, want > 0 (superset miss should seed from the subset entry)")
	}
}

// TestCacheWarmStartAblation: Options.NoWarmStart must disable the index
// without changing the reconstructed map, and must not split the cache
// key (the option is excluded from the fingerprint like Workers).
func TestCacheWarmStartAblation(t *testing.T) {
	in, _ := testInput(3, 4)
	cold, err := Reconstruct(context.Background(), in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	ctx, reg := registryCtx()
	sub := subsetInput(in)
	if _, err := Reconstruct(ctx, sub, Options{Cache: c, Workers: 1, NoWarmStart: true}); err != nil {
		t.Fatal(err)
	}
	m, err := Reconstruct(ctx, in, Options{Cache: c, Workers: 1, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Pos, cold.Pos) {
		t.Fatalf("NoWarmStart changed the map:\n%v\n%v", m.Pos, cold.Pos)
	}
	for _, name := range []string{"ilp/warmstart_hits", "ilp/incumbent_seeded"} {
		if got := reg.Counter(name).Value(); got != 0 {
			t.Errorf("%s = %d under NoWarmStart, want 0", name, got)
		}
	}
	if Fingerprint(in, Options{NoWarmStart: true}) != Fingerprint(in, Options{}) {
		t.Error("NoWarmStart changed the fingerprint; it must not split the cache")
	}
}

// TestWarmAssignmentRejectsBadPlacements: warmAssignment must return nil
// (not a bogus seed) on length or bounds mismatches.
func TestWarmAssignmentRejectsBadPlacements(t *testing.T) {
	in, tiles := testInput(3, 3)
	b := newBuilder(in)
	for p, o := range in.Observations {
		b.addObservation(p, o, false)
	}
	b.addObjective()

	if got := b.warmAssignment(tiles[:len(tiles)-1]); got != nil {
		t.Error("short placement accepted")
	}
	bad := append([]mesh.Coord(nil), tiles...)
	bad[0].Row = in.Rows // out of grid
	if got := b.warmAssignment(bad); got != nil {
		t.Error("out-of-grid placement accepted")
	}
	if got := b.warmAssignment(tiles); got == nil {
		t.Error("valid placement rejected")
	}
}
