// Package pmon implements the uncore performance-monitoring (PMON) model of
// the Xeon Scalable CHA boxes, on both sides of the MSR interface:
//
//   - the device side (Box / InstallBox) exposes a CHA's event counters as
//     MSR registers backed by live mesh-tile event sources, which the
//     machine layer installs into each simulated CPU's msr.Space;
//   - the client side (Monitor) programs event selects and reads counters
//     through plain RDMSR/WRMSR accesses, exactly like the real mapping
//     tool drives /dev/cpu/*/msr using the uncore manual's layout.
//
// The events needed by the core-locating method are the per-CHA LLC lookup
// count and the ingress-occupancy counts of the mesh data (BL) rings:
// VERT_RING_BL_IN_USE.{UP,DOWN} and HORZ_RING_BL_IN_USE.{LEFT,RIGHT}. Only
// ingress is observable — a tile never reports which output channel a
// packet left through — which is one of the partial-observation limits the
// ILP reconstruction has to work around.
package pmon

import (
	"fmt"

	"coremap/internal/mesh"
	"coremap/internal/msr"
)

// Event codes and unit masks, following the Xeon Scalable uncore manual's
// CHA box encodings.
const (
	EvLLCLookup uint8 = 0x34
	// Ring-occupancy events, one pair per message class. The locating
	// tool programs the BL (data) pair; the others are implemented so a
	// mis-programmed monitor would see protocol traffic instead of the
	// data stream.
	EvVertRingADInUse uint8 = 0xA6
	EvHorzRingADInUse uint8 = 0xA7
	EvVertRingAKInUse uint8 = 0xA8
	EvHorzRingAKInUse uint8 = 0xA9
	EvVertRingBLInUse uint8 = 0xAA
	EvHorzRingBLInUse uint8 = 0xAB
	EvVertRingIVInUse uint8 = 0xAC
	EvHorzRingIVInUse uint8 = 0xAD

	// Unit masks. Ring events use one bit per even/odd sub-ring; both
	// bits of a direction are normally selected together.
	UmaskLLCAny uint8 = 0x1F
	UmaskUp     uint8 = 0x03 // VERT_RING_BL_IN_USE.UP_EVEN|UP_ODD
	UmaskDown   uint8 = 0x0C // VERT_RING_BL_IN_USE.DN_EVEN|DN_ODD
	UmaskLeft   uint8 = 0x03 // HORZ_RING_BL_IN_USE.LEFT_EVEN|LEFT_ODD
	UmaskRight  uint8 = 0x0C // HORZ_RING_BL_IN_USE.RIGHT_EVEN|RIGHT_ODD
)

// Control-register bit fields.
const (
	ctlEventMask  uint64 = 0xFF
	ctlUmaskShift        = 8
	// CtlEnable must be set in an event-select register for its counter
	// to count.
	CtlEnable uint64 = 1 << 22
)

// Unit-control bits.
const (
	// UnitCtlFreeze latches all counters of the box while set.
	UnitCtlFreeze uint64 = 1 << 8
	// UnitCtlReset rebases all counters of the box to zero.
	UnitCtlReset uint64 = 1 << 1
)

// EncodeCtl builds an event-select register value.
func EncodeCtl(event, umask uint8) uint64 {
	return uint64(event) | uint64(umask)<<ctlUmaskShift | CtlEnable
}

// DecodeCtl splits an event-select register value.
func DecodeCtl(v uint64) (event, umask uint8, enabled bool) {
	return uint8(v & ctlEventMask), uint8(v >> ctlUmaskShift & 0xFF), v&CtlEnable != 0
}

// Source supplies free-running event counts for one CHA box. The device
// side samples it on every counter read.
type Source interface {
	// Count returns the current cumulative count of (event, umask), and
	// whether the event is implemented.
	Count(event, umask uint8) (uint64, bool)
}

// TileSource adapts a mesh tile's counter bank into a PMON event Source.
type TileSource struct {
	Tile *mesh.Tile
}

// ringOf maps a ring-occupancy event code to its message ring and whether
// it is the vertical pair.
func ringOf(event uint8) (ring mesh.Ring, vertical, ok bool) {
	switch event {
	case EvVertRingADInUse:
		return mesh.RingAD, true, true
	case EvHorzRingADInUse:
		return mesh.RingAD, false, true
	case EvVertRingAKInUse:
		return mesh.RingAK, true, true
	case EvHorzRingAKInUse:
		return mesh.RingAK, false, true
	case EvVertRingBLInUse:
		return mesh.RingBL, true, true
	case EvHorzRingBLInUse:
		return mesh.RingBL, false, true
	case EvVertRingIVInUse:
		return mesh.RingIV, true, true
	case EvHorzRingIVInUse:
		return mesh.RingIV, false, true
	default:
		return 0, false, false
	}
}

// Count implements Source for the CHA events the locating tool uses.
func (s TileSource) Count(event, umask uint8) (uint64, bool) {
	if event == EvLLCLookup {
		return s.Tile.Counters.LLCLookup, true
	}
	ring, vertical, ok := ringOf(event)
	if !ok {
		return 0, false
	}
	ing := s.Tile.Counters.RingIngress(ring)
	var n uint64
	if vertical {
		if umask&UmaskUp != 0 {
			n += ing[mesh.Up]
		}
		if umask&UmaskDown != 0 {
			n += ing[mesh.Down]
		}
	} else {
		if umask&UmaskLeft != 0 {
			n += ing[mesh.Left]
		}
		if umask&UmaskRight != 0 {
			n += ing[mesh.Right]
		}
	}
	return n, true
}

// Box is the device-side state of one CHA PMON box: four event-select
// registers and four counters rebased at programming time, with box-level
// freeze and reset, plus the two filter registers real CHA boxes carry
// (stored and readable; the modeled events do not interpret them).
type Box struct {
	src    Source
	ctl    [msr.ChaCounters]uint64
	base   [msr.ChaCounters]uint64
	frozen bool
	latch  [msr.ChaCounters]uint64
	unit   uint64
	filter [2]uint64
}

// NewBox returns a box counting events from src.
func NewBox(src Source) *Box { return &Box{src: src} }

func (b *Box) current(i int) uint64 {
	event, umask, enabled := DecodeCtl(b.ctl[i])
	if !enabled {
		return 0
	}
	n, ok := b.src.Count(event, umask)
	if !ok {
		return 0
	}
	return n - b.base[i]
}

func (b *Box) writeCtl(i int, v uint64) error {
	b.ctl[i] = v
	event, umask, enabled := DecodeCtl(v)
	if enabled {
		if n, ok := b.src.Count(event, umask); ok {
			b.base[i] = n
		} else {
			b.base[i] = 0
		}
	}
	return nil
}

func (b *Box) readCtr(i int) (uint64, error) {
	if b.frozen {
		return b.latch[i], nil
	}
	return b.current(i), nil
}

func (b *Box) writeUnit(v uint64) error {
	b.unit = v
	if v&UnitCtlReset != 0 {
		for i := range b.ctl {
			event, umask, enabled := DecodeCtl(b.ctl[i])
			if !enabled {
				continue
			}
			if n, ok := b.src.Count(event, umask); ok {
				b.base[i] = n
			}
		}
	}
	freeze := v&UnitCtlFreeze != 0
	if freeze && !b.frozen {
		for i := range b.latch {
			b.latch[i] = b.current(i)
		}
	}
	b.frozen = freeze
	return nil
}

// RegAccess is the outcome of a direct Box register access.
type RegAccess uint8

const (
	// RegOK means the access succeeded.
	RegOK RegAccess = iota
	// RegNoSuchReg means the offset is not implemented in the box's block
	// (a faulting RDMSR/WRMSR on real hardware).
	RegNoSuchReg
	// RegReadOnly means a write hit a read-only register (the counters).
	RegReadOnly
)

// ReadReg performs a direct read of the register at byte offset off within
// the box's MSR block, bypassing the msr.Space handler table. It implements
// exactly the register set InstallBox registers; the machine layer uses it
// as the fast path for socket-scoped PMON access.
func (b *Box) ReadReg(off msr.Addr) (uint64, RegAccess) {
	switch {
	case off == msr.ChaOffUnitCtl:
		return b.unit, RegOK
	case off >= msr.ChaOffFilter0 && off <= msr.ChaOffFilter1:
		return b.filter[off-msr.ChaOffFilter0], RegOK
	case off >= msr.ChaOffCtl0 && off < msr.ChaOffCtl0+msr.ChaCounters:
		return b.ctl[off-msr.ChaOffCtl0], RegOK
	case off >= msr.ChaOffCtr0 && off < msr.ChaOffCtr0+msr.ChaCounters:
		v, _ := b.readCtr(int(off - msr.ChaOffCtr0))
		return v, RegOK
	}
	return 0, RegNoSuchReg
}

// WriteReg performs a direct write of the register at byte offset off, with
// the same implemented-register set and writability as InstallBox.
func (b *Box) WriteReg(off msr.Addr, v uint64) RegAccess {
	switch {
	case off == msr.ChaOffUnitCtl:
		b.writeUnit(v)
		return RegOK
	case off >= msr.ChaOffFilter0 && off <= msr.ChaOffFilter1:
		b.filter[off-msr.ChaOffFilter0] = v
		return RegOK
	case off >= msr.ChaOffCtl0 && off < msr.ChaOffCtl0+msr.ChaCounters:
		b.writeCtl(int(off-msr.ChaOffCtl0), v)
		return RegOK
	case off >= msr.ChaOffCtr0 && off < msr.ChaOffCtr0+msr.ChaCounters:
		return RegReadOnly
	}
	return RegNoSuchReg
}

// InstallBox registers the MSR handlers of CHA cha's PMON box into space.
func InstallBox(space *msr.Space, cha int, src Source) *Box {
	b := NewBox(src)
	space.Register(msr.ChaMSR(cha, msr.ChaOffUnitCtl), msr.Handler{
		Read:  func() (uint64, error) { return b.unit, nil },
		Write: b.writeUnit,
	})
	for i := 0; i < 2; i++ {
		i := i
		space.Register(msr.ChaMSR(cha, msr.ChaOffFilter0+msr.Addr(i)), msr.Handler{
			Read:  func() (uint64, error) { return b.filter[i], nil },
			Write: func(v uint64) error { b.filter[i] = v; return nil },
		})
	}
	for i := 0; i < msr.ChaCounters; i++ {
		i := i
		space.Register(msr.ChaMSR(cha, msr.ChaOffCtl0+msr.Addr(i)), msr.Handler{
			Read:  func() (uint64, error) { return b.ctl[i], nil },
			Write: func(v uint64) error { return b.writeCtl(i, v) },
		})
		space.Register(msr.ChaMSR(cha, msr.ChaOffCtr0+msr.Addr(i)), msr.Handler{
			Read: func() (uint64, error) { return b.readCtr(i) },
		})
	}
	return b
}

// Access is the MSR access the client-side monitor needs. Uncore registers
// are socket-scoped, so implementations may route the access through any
// online CPU.
type Access interface {
	ReadMSR(a msr.Addr) (uint64, error)
	WriteMSR(a msr.Addr, v uint64) error
}

// Monitor is the client-side driver for the CHA PMON boxes of one socket.
// All methods issue plain MSR accesses; a Monitor works identically against
// simulated and (hypothetically) real hardware.
type Monitor struct {
	acc Access
	// NumCHA is the number of CHA boxes exposed by the socket. Boxes of
	// fused-off tiles are not in the address space at all.
	NumCHA int
}

// NewMonitor returns a monitor for a socket exposing numCHA CHA boxes.
func NewMonitor(acc Access, numCHA int) *Monitor {
	return &Monitor{acc: acc, NumCHA: numCHA}
}

func (m *Monitor) checkCHA(cha int) error {
	if cha < 0 || cha >= m.NumCHA {
		return fmt.Errorf("pmon: CHA %d out of range [0,%d)", cha, m.NumCHA)
	}
	return nil
}

// Program configures counter ctr of CHA cha to count (event, umask) and
// rebases it to zero.
func (m *Monitor) Program(cha, ctr int, event, umask uint8) error {
	if err := m.checkCHA(cha); err != nil {
		return err
	}
	if ctr < 0 || ctr >= msr.ChaCounters {
		return fmt.Errorf("pmon: counter %d out of range [0,%d)", ctr, msr.ChaCounters)
	}
	return m.acc.WriteMSR(msr.ChaMSR(cha, msr.ChaOffCtl0+msr.Addr(ctr)), EncodeCtl(event, umask))
}

// Read returns the current value of counter ctr of CHA cha.
func (m *Monitor) Read(cha, ctr int) (uint64, error) {
	if err := m.checkCHA(cha); err != nil {
		return 0, err
	}
	if ctr < 0 || ctr >= msr.ChaCounters {
		return 0, fmt.Errorf("pmon: counter %d out of range [0,%d)", ctr, msr.ChaCounters)
	}
	return m.acc.ReadMSR(msr.ChaMSR(cha, msr.ChaOffCtr0+msr.Addr(ctr)))
}

// Reset rebases all counters of CHA cha.
func (m *Monitor) Reset(cha int) error {
	if err := m.checkCHA(cha); err != nil {
		return err
	}
	return m.acc.WriteMSR(msr.ChaMSR(cha, msr.ChaOffUnitCtl), UnitCtlReset)
}

// ProgramAll configures the same counter of every CHA box.
func (m *Monitor) ProgramAll(ctr int, event, umask uint8) error {
	for cha := 0; cha < m.NumCHA; cha++ {
		if err := m.Program(cha, ctr, event, umask); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll returns counter ctr of every CHA box, indexed by CHA ID.
func (m *Monitor) ReadAll(ctr int) ([]uint64, error) {
	out := make([]uint64, m.NumCHA)
	if err := m.ReadAllInto(ctr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAllInto reads counter ctr of every CHA box into out, which must have
// length NumCHA. Callers sweeping counters in a loop use it to reuse one
// scratch buffer instead of allocating a fresh slice per sweep.
func (m *Monitor) ReadAllInto(ctr int, out []uint64) error {
	if len(out) != m.NumCHA {
		return fmt.Errorf("pmon: ReadAllInto buffer has length %d, want %d", len(out), m.NumCHA)
	}
	for cha := 0; cha < m.NumCHA; cha++ {
		v, err := m.Read(cha, ctr)
		if err != nil {
			return err
		}
		out[cha] = v
	}
	return nil
}
