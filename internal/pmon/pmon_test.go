package pmon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coremap/internal/mesh"
	"coremap/internal/msr"
)

func TestEncodeDecodeCtl(t *testing.T) {
	v := EncodeCtl(EvVertRingBLInUse, UmaskUp)
	event, umask, enabled := DecodeCtl(v)
	if event != EvVertRingBLInUse || umask != UmaskUp || !enabled {
		t.Errorf("DecodeCtl = %#x,%#x,%v", event, umask, enabled)
	}
	if _, _, enabled := DecodeCtl(0); enabled {
		t.Error("zero ctl decoded as enabled")
	}
}

func TestTileSourceEvents(t *testing.T) {
	tl := &mesh.Tile{}
	tl.Counters.Ingress[mesh.Up] = 10
	tl.Counters.Ingress[mesh.Down] = 20
	tl.Counters.Ingress[mesh.Left] = 3
	tl.Counters.Ingress[mesh.Right] = 4
	tl.Counters.LLCLookup = 99
	src := TileSource{Tile: tl}

	cases := []struct {
		event, umask uint8
		want         uint64
	}{
		{EvLLCLookup, UmaskLLCAny, 99},
		{EvVertRingBLInUse, UmaskUp, 10},
		{EvVertRingBLInUse, UmaskDown, 20},
		{EvVertRingBLInUse, UmaskUp | UmaskDown, 30},
		{EvHorzRingBLInUse, UmaskLeft, 3},
		{EvHorzRingBLInUse, UmaskRight, 4},
		{EvHorzRingBLInUse, UmaskLeft | UmaskRight, 7},
	}
	for _, c := range cases {
		got, ok := src.Count(c.event, c.umask)
		if !ok || got != c.want {
			t.Errorf("Count(%#x,%#x) = %d,%v; want %d,true", c.event, c.umask, got, ok, c.want)
		}
	}
	if _, ok := src.Count(0x55, 0); ok {
		t.Error("unimplemented event reported as implemented")
	}
}

// harness wires one box into an msr.Space and exposes pmon.Access.
type harness struct{ space *msr.Space }

func (h harness) ReadMSR(a msr.Addr) (uint64, error)  { return h.space.Read(a) }
func (h harness) WriteMSR(a msr.Addr, v uint64) error { return h.space.Write(a, v) }

func newHarness(t *testing.T, tiles ...*mesh.Tile) (harness, *Monitor) {
	t.Helper()
	space := msr.NewSpace()
	for i, tl := range tiles {
		InstallBox(space, i, TileSource{Tile: tl})
	}
	h := harness{space: space}
	return h, NewMonitor(h, len(tiles))
}

func TestBoxCountsFromProgrammingTime(t *testing.T) {
	tl := &mesh.Tile{}
	tl.Counters.LLCLookup = 1000 // pre-existing activity
	_, mon := newHarness(t, tl)

	if err := mon.Program(0, 0, EvLLCLookup, UmaskLLCAny); err != nil {
		t.Fatal(err)
	}
	if v, _ := mon.Read(0, 0); v != 0 {
		t.Errorf("counter right after programming = %d, want 0", v)
	}
	tl.Counters.LLCLookup += 25
	if v, _ := mon.Read(0, 0); v != 25 {
		t.Errorf("counter after 25 events = %d, want 25", v)
	}
}

func TestBoxReset(t *testing.T) {
	tl := &mesh.Tile{}
	_, mon := newHarness(t, tl)
	if err := mon.Program(0, 1, EvVertRingBLInUse, UmaskUp); err != nil {
		t.Fatal(err)
	}
	tl.Counters.Ingress[mesh.Up] = 40
	if err := mon.Reset(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := mon.Read(0, 1); v != 0 {
		t.Errorf("counter after reset = %d, want 0", v)
	}
	tl.Counters.Ingress[mesh.Up] += 7
	if v, _ := mon.Read(0, 1); v != 7 {
		t.Errorf("counter after reset+7 = %d, want 7", v)
	}
}

func TestBoxFreezeLatchesCounters(t *testing.T) {
	tl := &mesh.Tile{}
	h, mon := newHarness(t, tl)
	if err := mon.Program(0, 0, EvLLCLookup, UmaskLLCAny); err != nil {
		t.Fatal(err)
	}
	tl.Counters.LLCLookup = 5
	if err := h.WriteMSR(msr.ChaMSR(0, msr.ChaOffUnitCtl), UnitCtlFreeze); err != nil {
		t.Fatal(err)
	}
	tl.Counters.LLCLookup = 500
	if v, _ := mon.Read(0, 0); v != 5 {
		t.Errorf("frozen counter = %d, want latched 5", v)
	}
	if err := h.WriteMSR(msr.ChaMSR(0, msr.ChaOffUnitCtl), 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := mon.Read(0, 0); v != 500 {
		t.Errorf("unfrozen counter = %d, want 500", v)
	}
}

func TestFilterRegistersStored(t *testing.T) {
	tl := &mesh.Tile{}
	h, _ := newHarness(t, tl)
	a := msr.ChaMSR(0, msr.ChaOffFilter0)
	if err := h.WriteMSR(a, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	if v, err := h.ReadMSR(a); err != nil || v != 0xCAFE {
		t.Errorf("filter0 = %#x,%v; want 0xCAFE,nil", v, err)
	}
	b := msr.ChaMSR(0, msr.ChaOffFilter0+1)
	if err := h.WriteMSR(b, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.ReadMSR(b); v != 0xBEEF {
		t.Errorf("filter1 = %#x, want 0xBEEF", v)
	}
	if v, _ := h.ReadMSR(a); v != 0xCAFE {
		t.Error("filter0 clobbered by filter1 write")
	}
}

func TestUnprogrammedCounterReadsZero(t *testing.T) {
	tl := &mesh.Tile{}
	tl.Counters.LLCLookup = 123
	_, mon := newHarness(t, tl)
	if v, err := mon.Read(0, 3); err != nil || v != 0 {
		t.Errorf("unprogrammed counter = %d,%v; want 0,nil", v, err)
	}
}

func TestMonitorBoundsChecks(t *testing.T) {
	_, mon := newHarness(t, &mesh.Tile{})
	if err := mon.Program(1, 0, EvLLCLookup, UmaskLLCAny); err == nil {
		t.Error("Program on out-of-range CHA succeeded")
	}
	if err := mon.Program(0, msr.ChaCounters, EvLLCLookup, UmaskLLCAny); err == nil {
		t.Error("Program on out-of-range counter succeeded")
	}
	if _, err := mon.Read(-1, 0); err == nil {
		t.Error("Read on negative CHA succeeded")
	}
	if _, err := mon.Read(0, -1); err == nil {
		t.Error("Read on negative counter succeeded")
	}
	if err := mon.Reset(7); err == nil {
		t.Error("Reset on out-of-range CHA succeeded")
	}
}

func TestProgramAllReadAll(t *testing.T) {
	tiles := []*mesh.Tile{{}, {}, {}}
	_, mon := newHarness(t, tiles[0], tiles[1], tiles[2])
	if err := mon.ProgramAll(0, EvLLCLookup, UmaskLLCAny); err != nil {
		t.Fatal(err)
	}
	for i, tl := range tiles {
		tl.Counters.LLCLookup = uint64(10 * (i + 1))
	}
	got, err := mon.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := uint64(10 * (i + 1)); v != want {
			t.Errorf("CHA %d = %d, want %d", i, v, want)
		}
	}
}

// Property: a counter's value equals the source growth since programming,
// for any sequence of increments.
func TestCounterTracksDeltas(t *testing.T) {
	f := func(pre uint16, incs []uint8) bool {
		tl := &mesh.Tile{}
		tl.Counters.Ingress[mesh.Down] = uint64(pre)
		space := msr.NewSpace()
		InstallBox(space, 0, TileSource{Tile: tl})
		mon := NewMonitor(harness{space}, 1)
		if err := mon.Program(0, 2, EvVertRingBLInUse, UmaskDown); err != nil {
			return false
		}
		var sum uint64
		for _, inc := range incs {
			tl.Counters.Ingress[mesh.Down] += uint64(inc)
			sum += uint64(inc)
			if v, _ := mon.Read(0, 2); v != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestTileSourceProtocolRings(t *testing.T) {
	tl := &mesh.Tile{}
	tl.Counters.RingIngress(mesh.RingAD)[mesh.Up] = 5
	tl.Counters.RingIngress(mesh.RingAK)[mesh.Left] = 6
	tl.Counters.RingIngress(mesh.RingIV)[mesh.Down] = 7
	tl.Counters.Ingress[mesh.Up] = 100 // BL must stay separate
	src := TileSource{Tile: tl}

	cases := []struct {
		event, umask uint8
		want         uint64
	}{
		{EvVertRingADInUse, UmaskUp, 5},
		{EvVertRingADInUse, UmaskDown, 0},
		{EvHorzRingAKInUse, UmaskLeft, 6},
		{EvVertRingIVInUse, UmaskDown, 7},
		{EvVertRingBLInUse, UmaskUp, 100},
	}
	for _, c := range cases {
		got, ok := src.Count(c.event, c.umask)
		if !ok || got != c.want {
			t.Errorf("Count(%#x,%#x) = %d,%v; want %d,true", c.event, c.umask, got, ok, c.want)
		}
	}
}

func TestRingEventsAreIndependent(t *testing.T) {
	// Incrementing one ring's counters must not leak into another's
	// events — the selectivity the probe's BL programming relies on.
	tl := &mesh.Tile{}
	tl.Counters.RingIngress(mesh.RingIV)[mesh.Up] = 50
	src := TileSource{Tile: tl}
	if n, _ := src.Count(EvVertRingBLInUse, UmaskUp); n != 0 {
		t.Errorf("IV traffic leaked into BL event: %d", n)
	}
	if n, _ := src.Count(EvVertRingADInUse, UmaskUp); n != 0 {
		t.Errorf("IV traffic leaked into AD event: %d", n)
	}
}
