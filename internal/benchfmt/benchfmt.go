// Package benchfmt holds the machine-readable benchmark report schema
// shared by cmd/benchjson (which produces it from `go test -bench`
// transcripts) and cmd/benchdiff (which compares two reports and gates CI
// on regressions). The checked-in BENCH_<date>.json archives at the repo
// root follow this schema.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is one whole converted benchmark run.
type Report struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line: the name (GOMAXPROCS suffix stripped),
// the iteration count, ns/op, and every remaining value/unit pair —
// allocation stats and custom b.ReportMetric quantities — keyed by unit.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Load reads one JSON report from path.
func Load(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return rep, nil
}
