package benchfmt

import (
	"fmt"
	"sort"
	"strings"
)

// gatedMetric is one metric the CI gate watches, together with the
// direction that counts as a regression. Cost metrics (time,
// allocations, host operations) regress upward; capacity metrics
// (channel rate) regress downward. The gate is direction-aware so that
// a survey-planner PR that *reduces* host-ops/map sails through while
// one that quietly re-inflates it fails.
type gatedMetric struct {
	name string
	// higherIsBetter inverts the regression direction: increases are
	// improvements and decreases beyond the threshold fail.
	higherIsBetter bool
}

// The regression gate compares the metrics a performance PR can
// plausibly ruin without failing any correctness test: wall time,
// allocation count, the host operations one converged map costs, and
// the covert channel's reliable rate. Bytes/op and the remaining table
// metrics ride along in the reports for human inspection but do not
// gate — B/op tracks allocs/op for gating purposes, and the
// mapping/pattern counts are correctness facts pinned by the test
// suite instead.
var gatedMetrics = []gatedMetric{
	{name: "ns_per_op"},
	{name: "allocs/op"},
	{name: "host-ops/map"},
	{name: "bps-under-1pct", higherIsBetter: true},
}

// Delta is one (benchmark, metric) comparison between two reports.
type Delta struct {
	Name   string  // benchmark name
	Metric string  // e.g. "ns_per_op", "allocs/op", "host-ops/map"
	Base   float64 // baseline value
	Cur    float64 // current value
	Pct    float64 // (Cur-Base)/Base, the raw relative change
	// HigherIsBetter records the metric's good direction so consumers
	// can render the delta without a copy of the gated-metric table.
	HigherIsBetter bool
	// Regressed is set when Cur moves past Base in the metric's bad
	// direction by more than the threshold.
	Regressed bool
	// BelowFloor marks a wall-time delta that exceeded the threshold
	// but was not gated because both sides sit under the ns floor —
	// too short for single-iteration timing on a shared runner to mean
	// anything. Rendered, never failed: the suppression stays visible.
	BelowFloor bool
}

// WorsePct returns the relative change in the metric's bad direction:
// positive means the current run is worse than baseline, whichever
// way the raw value moved.
func (d Delta) WorsePct() float64 {
	if d.HigherIsBetter {
		return -d.Pct
	}
	return d.Pct
}

// Diff compares every benchmark present in both reports metric by metric.
// threshold is a fraction: 0.15 flags any metric more than 15% worse than
// baseline. nsFloor (nanoseconds, 0 = no floor) exempts ns_per_op from
// gating when both baseline and current sit below it: wall time measured
// in a single iteration on a shared runner is dominated by timer overhead
// and cold caches at that scale, swinging multiple-x between runs of
// identical code, while the deterministic metrics (allocs/op,
// host-ops/map) keep gating those benchmarks tightly. A genuine blowup
// still fails — it pushes the current value past the floor. Benchmarks
// present in only one report are returned by name in missing
// (baseline-only — a silently dropped benchmark must be visible) and
// fresh (current-only, informational). The deltas are ordered by
// benchmark name then metric for deterministic output.
func Diff(base, cur Report, threshold, nsFloor float64) (deltas []Delta, missing, fresh []string) {
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
		if _, ok := curBy[b.Name]; !ok {
			missing = append(missing, b.Name)
		}
	}
	for _, b := range cur.Benchmarks {
		if _, ok := baseBy[b.Name]; !ok {
			fresh = append(fresh, b.Name)
		}
	}
	sort.Strings(missing)
	sort.Strings(fresh)

	value := func(b Benchmark, metric string) (float64, bool) {
		if metric == "ns_per_op" {
			return b.NsPerOp, b.NsPerOp > 0
		}
		v, ok := b.Metrics[metric]
		return v, ok
	}
	names := make([]string, 0, len(baseBy))
	for name := range baseBy {
		if _, ok := curBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		for _, metric := range gatedMetrics {
			bv, bok := value(baseBy[name], metric.name)
			cv, cok := value(curBy[name], metric.name)
			if !bok || !cok {
				continue
			}
			d := Delta{Name: name, Metric: metric.name, Base: bv, Cur: cv,
				HigherIsBetter: metric.higherIsBetter}
			if bv > 0 {
				d.Pct = (cv - bv) / bv
				d.Regressed = d.WorsePct() > threshold
				if d.Regressed && metric.name == "ns_per_op" &&
					nsFloor > 0 && bv < nsFloor && cv < nsFloor {
					d.Regressed, d.BelowFloor = false, true
				}
			}
			deltas = append(deltas, d)
		}
	}
	return deltas, missing, fresh
}

// Regressions filters deltas down to the failing ones.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Markdown renders the delta table as GitHub-flavored markdown, suitable
// for appending to a job summary. threshold is echoed in the caption.
func Markdown(deltas []Delta, missing, fresh []string, threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark delta vs baseline (gate: +%.0f%%)\n\n", threshold*100)
	b.WriteString("| benchmark | metric | baseline | current | delta | |\n")
	b.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, d := range deltas {
		flag := ""
		if d.Regressed {
			flag = "❌ regression"
		} else if d.BelowFloor {
			flag = "⚠️ below ns floor, not gated"
		} else if d.WorsePct() < -0.05 {
			flag = "✅ improved"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %+.1f%% | %s |\n",
			d.Name, d.Metric, formatValue(d.Metric, d.Base),
			formatValue(d.Metric, d.Cur), d.Pct*100, flag)
	}
	for _, name := range missing {
		fmt.Fprintf(&b, "| %s | — | — | *missing from current run* | | ⚠️ |\n", name)
	}
	for _, name := range fresh {
		fmt.Fprintf(&b, "| %s | — | *new benchmark* | — | | |\n", name)
	}
	return b.String()
}

// Text renders the same table as aligned plain text for terminals and CI
// logs.
func Text(deltas []Delta, missing, fresh []string) string {
	var b strings.Builder
	w := 0
	for _, d := range deltas {
		if len(d.Name) > w {
			w = len(d.Name)
		}
	}
	for _, d := range deltas {
		flag := ""
		if d.Regressed {
			flag = "  REGRESSION"
		} else if d.BelowFloor {
			flag = "  below ns floor, not gated"
		}
		fmt.Fprintf(&b, "%-*s  %-9s  %14s -> %14s  %+7.1f%%%s\n",
			w, d.Name, d.Metric, formatValue(d.Metric, d.Base),
			formatValue(d.Metric, d.Cur), d.Pct*100, flag)
	}
	for _, name := range missing {
		fmt.Fprintf(&b, "%-*s  missing from current run\n", w, name)
	}
	for _, name := range fresh {
		fmt.Fprintf(&b, "%-*s  new benchmark (no baseline)\n", w, name)
	}
	return b.String()
}

// formatValue prints ns as engineering-friendly durations and counts as
// integers.
func formatValue(metric string, v float64) string {
	if metric != "ns_per_op" {
		return fmt.Sprintf("%.0f", v)
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}
