package benchfmt

import (
	"reflect"
	"strings"
	"testing"
)

func report(benches ...Benchmark) Report {
	return Report{Date: "2026-08-08", Benchmarks: benches}
}

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Runs: 1, NsPerOp: ns,
		Metrics: map[string]float64{"allocs/op": allocs, "B/op": allocs * 100}}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := report(
		bench("BenchmarkA", 1000, 50),
		bench("BenchmarkB", 2000, 100),
	)
	cur := report(
		bench("BenchmarkA", 1100, 50),  // +10% ns: within a 15% gate
		bench("BenchmarkB", 2000, 120), // +20% allocs: regression
	)
	deltas, missing, fresh := Diff(base, cur, 0.15, 0)
	if len(missing) != 0 || len(fresh) != 0 {
		t.Fatalf("missing=%v fresh=%v, want none", missing, fresh)
	}
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4 (2 benchmarks × 2 metrics)", len(deltas))
	}
	reg := Regressions(deltas)
	if len(reg) != 1 || reg[0].Name != "BenchmarkB" || reg[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkB allocs/op", reg)
	}
	if got := reg[0].Pct; got < 0.199 || got > 0.201 {
		t.Errorf("regression pct = %v, want 0.20", got)
	}
}

func TestDiffExactThresholdPasses(t *testing.T) {
	// The gate is strict: exactly +15% is not a regression, only > is.
	deltas, _, _ := Diff(report(bench("B", 1000, 100)),
		report(bench("B", 1150, 115)), 0.15, 0)
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("exact-threshold deltas flagged as regressions: %+v", reg)
	}
}

func TestDiffImprovementNeverFails(t *testing.T) {
	deltas, _, _ := Diff(report(bench("B", 1000, 100)),
		report(bench("B", 100, 5)), 0.15, 0)
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", reg)
	}
	if deltas[0].Pct >= 0 {
		t.Errorf("improvement pct = %v, want negative", deltas[0].Pct)
	}
}

func withMetric(b Benchmark, metric string, v float64) Benchmark {
	m := map[string]float64{}
	for k, val := range b.Metrics {
		m[k] = val
	}
	m[metric] = v
	b.Metrics = m
	return b
}

func TestDiffHostOpsGatesOnlyIncreases(t *testing.T) {
	// host-ops/map is a cost: the planner PR that cut it must pass the
	// gate, and a PR that re-inflates it must fail.
	base := report(withMetric(bench("BenchmarkPlanned", 1000, 10), "host-ops/map", 240000))
	better := report(withMetric(bench("BenchmarkPlanned", 1000, 10), "host-ops/map", 60000))
	deltas, _, _ := Diff(base, better, 0.15, 0)
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("host-ops/map decrease flagged as regression: %+v", reg)
	}
	var d *Delta
	for i := range deltas {
		if deltas[i].Metric == "host-ops/map" {
			d = &deltas[i]
		}
	}
	if d == nil {
		t.Fatal("no host-ops/map delta emitted")
	}
	if d.WorsePct() >= 0 {
		t.Errorf("decrease WorsePct = %v, want negative (improvement)", d.WorsePct())
	}

	worse := report(withMetric(bench("BenchmarkPlanned", 1000, 10), "host-ops/map", 300000))
	deltas, _, _ = Diff(base, worse, 0.15, 0)
	reg := Regressions(deltas)
	if len(reg) != 1 || reg[0].Metric != "host-ops/map" {
		t.Fatalf("host-ops/map +25%% not flagged: %+v", reg)
	}
}

func TestDiffHigherIsBetterMetric(t *testing.T) {
	// bps-under-1pct is a capacity: only decreases beyond the threshold
	// regress, and increases render as improvements.
	base := report(withMetric(bench("BenchmarkCapacity", 1000, 10), "bps-under-1pct", 4))
	faster := report(withMetric(bench("BenchmarkCapacity", 1000, 10), "bps-under-1pct", 8))
	deltas, missing, fresh := Diff(base, faster, 0.15, 0)
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("capacity increase flagged as regression: %+v", reg)
	}
	md := Markdown(deltas, missing, fresh, 0.15)
	if !strings.Contains(md, "✅ improved") {
		t.Error("doubled capacity not rendered as an improvement")
	}

	slower := report(withMetric(bench("BenchmarkCapacity", 1000, 10), "bps-under-1pct", 2))
	deltas, _, _ = Diff(base, slower, 0.15, 0)
	reg := Regressions(deltas)
	if len(reg) != 1 || reg[0].Metric != "bps-under-1pct" {
		t.Fatalf("halved capacity not flagged: %+v", reg)
	}
	if got := reg[0].WorsePct(); got < 0.499 || got > 0.501 {
		t.Errorf("WorsePct = %v, want 0.50", got)
	}
}

func TestDiffMissingAndFresh(t *testing.T) {
	base := report(bench("BenchmarkOld", 10, 1), bench("BenchmarkBoth", 10, 1))
	cur := report(bench("BenchmarkBoth", 10, 1), bench("BenchmarkNew", 10, 1))
	deltas, missing, fresh := Diff(base, cur, 0.15, 0)
	if !reflect.DeepEqual(missing, []string{"BenchmarkOld"}) {
		t.Errorf("missing = %v", missing)
	}
	if !reflect.DeepEqual(fresh, []string{"BenchmarkNew"}) {
		t.Errorf("fresh = %v", fresh)
	}
	for _, d := range deltas {
		if d.Name != "BenchmarkBoth" {
			t.Errorf("unexpected delta for %s", d.Name)
		}
	}
}

func TestDiffDeterministicOrder(t *testing.T) {
	base := report(bench("BenchmarkZ", 10, 1), bench("BenchmarkA", 10, 1))
	cur := report(bench("BenchmarkA", 10, 1), bench("BenchmarkZ", 10, 1))
	deltas, _, _ := Diff(base, cur, 0.15, 0)
	want := []string{"BenchmarkA", "BenchmarkA", "BenchmarkZ", "BenchmarkZ"}
	for i, d := range deltas {
		if d.Name != want[i] {
			t.Fatalf("delta %d is %s, want %s (sorted)", i, d.Name, want[i])
		}
	}
}

func TestMarkdownMarksRegressions(t *testing.T) {
	deltas, missing, fresh := Diff(
		report(bench("BenchmarkB", 1000, 100), bench("BenchmarkGone", 1, 1)),
		report(bench("BenchmarkB", 2000, 100)), 0.15, 0)
	md := Markdown(deltas, missing, fresh, 0.15)
	if !strings.Contains(md, "❌ regression") {
		t.Error("markdown table lacks the regression marker")
	}
	if !strings.Contains(md, "BenchmarkGone") || !strings.Contains(md, "missing") {
		t.Error("markdown table lacks the missing-benchmark row")
	}
	if !strings.Contains(md, "gate: +15%") {
		t.Error("markdown caption lacks the threshold")
	}
}

func TestDiffNsFloorExemptsShortBenchmarks(t *testing.T) {
	// A sub-floor benchmark tripling its wall time is single-iteration
	// timing noise, not a regression — but the suppression must stay
	// visible in the rendered tables.
	base := report(bench("BenchmarkShort", 1e6, 100))
	noisy := report(bench("BenchmarkShort", 3e6, 100))
	deltas, _, _ := Diff(base, noisy, 0.60, 50e6)
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("sub-floor timing noise flagged: %+v", reg)
	}
	var floored bool
	for _, d := range deltas {
		if d.Metric == "ns_per_op" && d.BelowFloor {
			floored = true
		}
	}
	if !floored {
		t.Fatal("suppressed ns delta not marked BelowFloor")
	}
	if !strings.Contains(Text(deltas, nil, nil), "below ns floor") {
		t.Error("text table hides the floor suppression")
	}
	if !strings.Contains(Markdown(deltas, nil, nil, 0.60), "below ns floor") {
		t.Error("markdown table hides the floor suppression")
	}

	// A genuine blowup pushes the current value past the floor and fails.
	blowup := report(bench("BenchmarkShort", 100e6, 100))
	deltas, _, _ = Diff(base, blowup, 0.60, 50e6)
	reg := Regressions(deltas)
	if len(reg) != 1 || reg[0].Metric != "ns_per_op" {
		t.Fatalf("past-floor blowup not gated: %+v", reg)
	}

	// The deterministic metrics gate sub-floor benchmarks regardless.
	allocUp := report(bench("BenchmarkShort", 1e6, 500))
	deltas, _, _ = Diff(base, allocUp, 0.60, 50e6)
	reg = Regressions(deltas)
	if len(reg) != 1 || reg[0].Metric != "allocs/op" {
		t.Fatalf("alloc regression below the ns floor not gated: %+v", reg)
	}

	// Floor 0 disables the exemption.
	deltas, _, _ = Diff(base, noisy, 0.60, 0)
	if reg := Regressions(deltas); len(reg) != 1 {
		t.Fatalf("floor 0 should gate all wall time: %+v", reg)
	}
}
