package pool

import (
	"sync"
	"testing"
)

func TestSlabWindowsAreExclusive(t *testing.T) {
	var s Slab[int]
	a := s.Alloc(3)
	b := s.Alloc(3)
	a = append(a, 1, 2, 3)
	b = append(b, 4, 5, 6)
	if a[0] != 1 || a[2] != 3 || b[0] != 4 || b[2] != 6 {
		t.Fatalf("windows alias: a=%v b=%v", a, b)
	}
	// Appending past capacity must not be possible within the window.
	if cap(a) != 3 || cap(b) != 3 {
		t.Fatalf("window capacities %d,%d, want 3,3", cap(a), cap(b))
	}
}

func TestSlabLargeAlloc(t *testing.T) {
	var s Slab[byte]
	big := s.Alloc(3 * maxChunk)
	if cap(big) != 3*maxChunk {
		t.Fatalf("large alloc capacity %d, want %d", cap(big), 3*maxChunk)
	}
	small := s.Alloc(8)
	small = append(small, 1)
	if small[0] != 1 {
		t.Fatal("small alloc after large alloc broken")
	}
}

func TestSlabClone(t *testing.T) {
	var s Slab[int]
	if got := s.Clone(nil); got != nil {
		t.Fatalf("Clone(nil) = %v, want nil", got)
	}
	orig := []int{7, 8, 9}
	c := s.Clone(orig)
	orig[0] = 0
	if c[0] != 7 || len(c) != 3 {
		t.Fatalf("Clone not a copy: %v", c)
	}
}

func TestScratchZeroesPrefix(t *testing.T) {
	var s Scratch[uint64]
	b := s.Get(4)
	for i := range b {
		b[i] = ^uint64(0)
	}
	s.Put(b)
	b2 := s.Get(4)
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %#x", i, v)
		}
	}
	s.Put(b2)
}

func TestScratchGrows(t *testing.T) {
	var s Scratch[int]
	s.Put(s.Get(2))
	b := s.Get(100)
	if len(b) != 100 {
		t.Fatalf("len %d, want 100", len(b))
	}
}

func TestScratchConcurrent(t *testing.T) {
	var s Scratch[int]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := s.Get(16)
				for j := range b {
					if b[j] != 0 {
						panic("dirty scratch buffer")
					}
					b[j] = j
				}
				s.Put(b)
			}
		}()
	}
	wg.Wait()
}

func TestFreeListRecycles(t *testing.T) {
	var f FreeList[int64]
	a := f.Get(8)
	pa := &a[0]
	f.Put(a)
	b := f.Get(8)
	if &b[0] != pa {
		t.Fatal("FreeList did not recycle the buffer")
	}
	// Requesting more than the recycled capacity allocates fresh.
	f.Put(b)
	c := f.Get(64)
	if len(c) != 64 {
		t.Fatalf("len %d, want 64", len(c))
	}
}
