// Package pool provides the repo's memory-reuse primitives: slab arenas
// for long-lived records, sync.Pool-backed scratch buffers for transient
// per-sweep state, and single-goroutine free lists for solver node state.
//
// The measurement and reconstruction pipelines allocate in three distinct
// patterns, and each type here serves exactly one of them:
//
//   - Slab: many small slices built incrementally and then retained for the
//     lifetime of a result (observation records, constraint term rows).
//     A slab hands out exclusively-owned windows of large chunks, so the
//     allocator sees one allocation per chunk instead of one per record.
//     Slabs are grow-only: nothing is ever handed back, so retained windows
//     can never be aliased by later allocations.
//
//   - Scratch: fixed-size work buffers that live for one sweep (a PMON
//     counter read across all CHAs) and are then returned. Backed by
//     sync.Pool, so concurrent pipelines share a warm buffer set.
//
//   - FreeList: slices recycled at high frequency by a single goroutine (a
//     branch-and-bound worker's node bound vectors), where even sync.Pool
//     overhead is measurable.
//
// Reset discipline: a buffer obtained from Scratch or FreeList must be
// returned with Put exactly once, after which the caller must not retain
// any reference to it. Get zeroes the requested prefix, so stale state can
// never leak across users — but only for the requested length, which is why
// Put must never be called with a buffer the caller sliced beyond its
// original length. The coremaplint poolsafe analyzer enforces the pairing
// mechanically in stage packages.
package pool

import "sync"

// Slab is a grow-only arena of T values. Alloc returns zero-length,
// fixed-capacity windows carved out of large chunks; appending within the
// window's capacity never reallocates and never aliases another window.
//
// The zero value is ready to use. Slab is not safe for concurrent use.
type Slab[T any] struct {
	chunk []T
	// chunkCap is the capacity of newly grown chunks; it starts at
	// minChunk and doubles up to maxChunk as the slab grows.
	chunkCap int
}

const (
	minChunk = 256
	maxChunk = 64 * 1024
)

// Alloc returns a zero-length window with capacity exactly n. The window is
// exclusively owned by the caller: append up to n elements without
// reallocation, and retain it as long as needed.
func (s *Slab[T]) Alloc(n int) []T {
	if n <= 0 {
		return nil
	}
	if s.chunkCap == 0 {
		s.chunkCap = minChunk
	}
	if n > cap(s.chunk)-len(s.chunk) {
		for s.chunkCap < n {
			s.chunkCap *= 2
		}
		s.chunk = make([]T, 0, s.chunkCap)
		if s.chunkCap < maxChunk {
			s.chunkCap *= 2
		}
	}
	off := len(s.chunk)
	s.chunk = s.chunk[:off+n]
	return s.chunk[off:off:off+n]
}

// Clone copies vals into a slab window of exactly matching capacity. A nil
// or empty input returns nil.
func (s *Slab[T]) Clone(vals []T) []T {
	if len(vals) == 0 {
		return nil
	}
	w := s.Alloc(len(vals))
	return append(w, vals...)
}

// Scratch is a pool of reusable []T scratch buffers backed by sync.Pool.
// The zero value is ready to use and safe for concurrent use.
type Scratch[T any] struct {
	p sync.Pool
}

// Get returns a buffer of length n whose first n elements are zero values.
// The buffer must be handed back with Put when the caller is done, and must
// not be retained or resliced past n afterwards.
func (s *Scratch[T]) Get(n int) []T {
	if v := s.p.Get(); v != nil {
		b := v.([]T)
		if cap(b) >= n {
			b = b[:n]
			var zero T
			for i := range b {
				b[i] = zero
			}
			return b
		}
	}
	return make([]T, n)
}

// Put returns a buffer obtained from Get to the pool.
func (s *Scratch[T]) Put(b []T) {
	if cap(b) == 0 {
		return
	}
	s.p.Put(b[:cap(b)])
}

// FreeList recycles []T slices within one goroutine, with no
// synchronization. The zero value is ready to use.
type FreeList[T any] struct {
	free [][]T
}

// Get returns a slice of length n. Contents are NOT zeroed — callers that
// need zeroed state must write every element (solver bound vectors are
// always fully copied into).
func (f *FreeList[T]) Get(n int) []T {
	if k := len(f.free); k > 0 {
		b := f.free[k-1]
		f.free[k-1] = nil
		f.free = f.free[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]T, n)
}

// Put hands a slice back for reuse. The caller must not retain b.
func (f *FreeList[T]) Put(b []T) {
	if cap(b) == 0 {
		return
	}
	f.free = append(f.free, b)
}
