package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"coremap/internal/mesh"
)

func TestPatternKeyDistinguishesLayouts(t *testing.T) {
	a := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	b := []mesh.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 0}}
	os := []int{0, 1}
	if PatternKey(a, os) == PatternKey(b, os) {
		t.Error("horizontal and vertical pair share a pattern key")
	}
}

func TestPatternKeyRoleSensitive(t *testing.T) {
	pos := []mesh.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	withCore := PatternKey(pos, []int{0, 1})
	llcOnly := PatternKey(pos, []int{0}) // CHA 1 has no OS core
	if withCore == llcOnly {
		t.Error("core and LLC-only tiles share a pattern key")
	}
}

// Property: pattern keys are invariant under translation and horizontal
// mirroring — the symmetries the measurement cannot resolve.
func TestPatternKeySymmetryInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		pos := make([]mesh.Coord, n)
		os := make([]int, n-1)
		for i := range pos {
			pos[i] = mesh.Coord{Row: r.Intn(4), Col: r.Intn(5)}
		}
		for i := range os {
			os[i] = i
		}
		base := PatternKey(pos, os)
		shifted := make([]mesh.Coord, n)
		for i, c := range pos {
			shifted[i] = mesh.Coord{Row: c.Row + 2, Col: c.Col + 1}
		}
		if PatternKey(shifted, os) != base {
			return false
		}
		maxC := 0
		for _, c := range pos {
			if c.Col > maxC {
				maxC = c.Col
			}
		}
		mirrored := make([]mesh.Coord, n)
		for i, c := range pos {
			mirrored[i] = mesh.Coord{Row: c.Row, Col: maxC - c.Col}
		}
		return PatternKey(mirrored, os) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(50))}); err != nil {
		t.Error(err)
	}
}

func TestMappingKey(t *testing.T) {
	if MappingKey([]int{0, 4, 8}) != "0 4 8" {
		t.Errorf("MappingKey = %q", MappingKey([]int{0, 4, 8}))
	}
	if MappingKey([]int{0, 4, 8}) == MappingKey([]int{0, 8, 4}) {
		t.Error("order-insensitive mapping key")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	for _, k := range []string{"a", "b", "a", "c", "a", "b"} {
		c.Add(k)
	}
	if c.Unique() != 3 || c.Total() != 6 {
		t.Errorf("unique=%d total=%d, want 3,6", c.Unique(), c.Total())
	}
	top := c.Top(2)
	if len(top) != 2 || top[0].Key != "a" || top[0].N != 3 || top[1].Key != "b" || top[1].N != 2 {
		t.Errorf("Top(2) = %+v", top)
	}
	if got := c.Top(10); len(got) != 3 {
		t.Errorf("Top(10) returned %d entries", len(got))
	}
}

func TestCounterTopDeterministicTies(t *testing.T) {
	c := NewCounter()
	c.Add("z")
	c.Add("a")
	top := c.Top(2)
	if top[0].Key != "a" || top[1].Key != "z" {
		t.Errorf("tie break not lexicographic: %+v", top)
	}
}

func TestRenderGrid(t *testing.T) {
	out := RenderGrid(2, 2, func(r, c int) string {
		if r == 0 && c == 0 {
			return "0/0"
		}
		return ""
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rendered %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "0/0") {
		t.Errorf("missing cell label: %q", lines[0])
	}
	if !strings.Contains(lines[1], "·") {
		t.Errorf("empty cells not dotted: %q", lines[1])
	}
}

func TestRenderMap(t *testing.T) {
	pos := []mesh.Coord{{Row: 0, Col: 0}, {Row: 1, Col: 1}}
	out := RenderMap(2, 2, pos, []int{0}) // CHA 1 is LLC-only
	if !strings.Contains(out, "0/0") {
		t.Errorf("core tile not rendered: %s", out)
	}
	if !strings.Contains(out, "-/1") {
		t.Errorf("LLC-only tile not rendered as -/1: %s", out)
	}
}
