// Package stats aggregates core-map survey results: canonical pattern
// keys, frequency counters for Table I/II-style statistics, and ASCII
// rendering of tile grids in the style of the paper's Fig. 4/5.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"coremap/internal/locate"
	"coremap/internal/mesh"
)

// PatternKey returns a canonical textual key for a physical core map: CHA
// positions (translation- and mirror-normalized) annotated with whether
// each CHA hosts a core. Two instances share a key exactly when their
// recovered maps are the same physical pattern.
func PatternKey(pos []mesh.Coord, osToCHA []int) string {
	hasCore := make([]bool, len(pos))
	for _, cha := range osToCHA {
		if cha >= 0 && cha < len(pos) {
			hasCore[cha] = true
		}
	}
	canon := locate.Canonical(pos)
	var b strings.Builder
	for cha, c := range canon {
		role := "L"
		if hasCore[cha] {
			role = "C"
		}
		fmt.Fprintf(&b, "%d:%d%s;", c.Row, c.Col, role)
	}
	return b.String()
}

// MappingKey returns a textual key for an OS-core-ID → CHA-ID mapping
// (one row of the paper's Table I).
func MappingKey(osToCHA []int) string {
	parts := make([]string, len(osToCHA))
	for i, cha := range osToCHA {
		parts[i] = fmt.Sprint(cha)
	}
	return strings.Join(parts, " ")
}

// Count is one pattern with its observation frequency.
type Count struct {
	Key string
	N   int
}

// Counter tallies pattern frequencies across a survey.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Add records one observation of key.
func (c *Counter) Add(key string) { c.counts[key]++ }

// Unique returns the number of distinct keys observed.
func (c *Counter) Unique() int { return len(c.counts) }

// Total returns the number of observations recorded.
func (c *Counter) Total() int {
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Top returns the k most frequent patterns, most frequent first; ties
// break lexicographically for determinism.
func (c *Counter) Top(k int) []Count {
	out := make([]Count, 0, len(c.counts))
	for key, n := range c.counts {
		out = append(out, Count{Key: key, N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Tile is one cell's rendering content.
type Tile struct {
	// Label is what to print ("0/12", "IMC", "-/25", ...); empty cells
	// render as dots.
	Label string
}

// RenderGrid draws a rows×cols grid with the given cell labels, Fig. 4
// style.
func RenderGrid(rows, cols int, label func(r, c int) string) string {
	width := 6
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if n := len(label(r, c)); n+2 > width {
				width = n + 2
			}
		}
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			s := label(r, c)
			if s == "" {
				s = "·"
			}
			fmt.Fprintf(&b, "%*s", width, s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderMap renders a recovered core map: each CHA at its reconstructed
// position labelled "os/cha" (or "-/cha" for LLC-only tiles). Cells with
// no CHA are unknowable to the measurement (disabled, IMC or IO) and
// render as dots.
func RenderMap(rows, cols int, pos []mesh.Coord, osToCHA []int) string {
	chaOS := make(map[int]int)
	for cpu, cha := range osToCHA {
		chaOS[cha] = cpu
	}
	at := make(map[mesh.Coord]int)
	for cha, c := range pos {
		at[c] = cha
	}
	return RenderGrid(rows, cols, func(r, c int) string {
		cha, ok := at[mesh.Coord{Row: r, Col: c}]
		if !ok {
			return ""
		}
		if cpu, ok := chaOS[cha]; ok {
			return fmt.Sprintf("%d/%d", cpu, cha)
		}
		return fmt.Sprintf("-/%d", cha)
	})
}
