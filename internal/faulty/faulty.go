// Package faulty wraps a hostif.Host with deterministic, seeded fault
// injection. It is the test harness for the pipeline's fault-tolerance
// machinery: injected faults carry the cmerr.Transient class, so the
// probe's per-operation retry absorbs isolated hits, while a stuck CPU —
// whose operations always fail — exhausts the retry budget, escalates to
// cmerr.Permanent, and exercises the degradation path (dropped core pairs,
// Degraded results with a coverage fraction).
//
// The injector draws from its own seeded PRNG, so a given (seed, rate,
// operation sequence) always faults the same operations — experiments
// built on it are reproducible.
package faulty

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"coremap/internal/cmerr"
	"coremap/internal/hostif"
	"coremap/internal/msr"
	"coremap/internal/obs"
)

// Options configures the injector.
type Options struct {
	// Seed drives the fault pattern; the same seed reproduces the same
	// faults for the same operation sequence.
	Seed int64
	// Rate is the per-operation probability (0..1) of injecting a
	// transient fault on a healthy CPU.
	Rate float64
	// StuckCPUs lists CPUs whose every operation fails. The failures are
	// still classified Transient — that is what makes them interesting:
	// retry cannot fix them, so they surface as Permanent
	// retries-exhausted errors and force the pipeline to degrade around
	// the CPU rather than merely slow down.
	StuckCPUs []int
	// MSROnly restricts injection to MSR reads/writes, leaving the cache
	// operations clean.
	MSROnly bool
}

// Host is a fault-injecting hostif.Host decorator. It is safe for
// concurrent use (the underlying PRNG draw is serialized).
type Host struct {
	inner hostif.Host
	opts  Options
	stuck map[int]bool

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	injected atomic.Int64
	ops      atomic.Int64
}

// New wraps inner with fault injection.
func New(inner hostif.Host, opts Options) *Host {
	h := &Host{
		inner: inner,
		opts:  opts,
		stuck: make(map[int]bool, len(opts.StuckCPUs)),
		rng:   rand.New(rand.NewSource(opts.Seed ^ 0xFA17)),
	}
	for _, cpu := range opts.StuckCPUs {
		h.stuck[cpu] = true
	}
	return h
}

// Register wires the host's fault counters into reg as lazily-read
// gauges faulty/injected and faulty/ops. Registration is additive, so
// several fault-injecting hosts in one process (one per surveyed
// instance, say) sum under the same two names; registering the same host
// twice is a double-count bug the registry rejects. No-op on a nil
// registry.
func (h *Host) Register(reg *obs.Registry) error {
	if err := reg.GaugeFunc("faulty/injected", h, h.injected.Load); err != nil {
		return err
	}
	return reg.GaugeFunc("faulty/ops", h, h.ops.Load)
}

// Injected returns how many faults have been injected so far.
func (h *Host) Injected() int64 { return h.injected.Load() }

// Ops returns how many operations passed through the injector (faulted or
// not), excluding NumCPUs.
func (h *Host) Ops() int64 { return h.ops.Load() }

// maybeFault decides whether this operation faults, and builds the error.
func (h *Host) maybeFault(op string, cpu int, isMSR bool) error {
	h.ops.Add(1)
	if h.stuck[cpu] {
		h.injected.Add(1)
		return cmerr.New(cmerr.Transient, "faulty",
			"injected fault (stuck cpu)").WithOp(op).OnCPU(cpu)
	}
	if h.opts.Rate <= 0 || (h.opts.MSROnly && !isMSR) {
		return nil
	}
	h.mu.Lock()
	hit := h.rng.Float64() < h.opts.Rate
	h.mu.Unlock()
	if !hit {
		return nil
	}
	h.injected.Add(1)
	return cmerr.New(cmerr.Transient, "faulty", "injected fault").WithOp(op).OnCPU(cpu)
}

func (h *Host) NumCPUs() int { return h.inner.NumCPUs() }

func (h *Host) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	if err := h.maybeFault("rdmsr", cpu, true); err != nil {
		return 0, err
	}
	return h.inner.ReadMSR(cpu, a)
}

func (h *Host) WriteMSR(cpu int, a msr.Addr, v uint64) error {
	if err := h.maybeFault("wrmsr", cpu, true); err != nil {
		return err
	}
	return h.inner.WriteMSR(cpu, a, v)
}

func (h *Host) Load(cpu int, addr uint64) error {
	if err := h.maybeFault("load", cpu, false); err != nil {
		return err
	}
	return h.inner.Load(cpu, addr)
}

func (h *Host) TimedLoad(cpu int, addr uint64) (uint64, error) {
	if err := h.maybeFault("timed-load", cpu, false); err != nil {
		return 0, err
	}
	return h.inner.TimedLoad(cpu, addr)
}

func (h *Host) Store(cpu int, addr uint64) error {
	if err := h.maybeFault("store", cpu, false); err != nil {
		return err
	}
	return h.inner.Store(cpu, addr)
}

func (h *Host) Flush(cpu int, addr uint64) error {
	if err := h.maybeFault("flush", cpu, false); err != nil {
		return err
	}
	return h.inner.Flush(cpu, addr)
}
