package faulty

import (
	"errors"
	"testing"

	"coremap/internal/cmerr"
	"coremap/internal/msr"
)

// okHost succeeds on every operation.
type okHost struct{}

func (okHost) NumCPUs() int                          { return 8 }
func (okHost) ReadMSR(int, msr.Addr) (uint64, error) { return 1, nil }
func (okHost) WriteMSR(int, msr.Addr, uint64) error  { return nil }
func (okHost) Load(int, uint64) error                { return nil }
func (okHost) Store(int, uint64) error               { return nil }
func (okHost) Flush(int, uint64) error               { return nil }
func (okHost) TimedLoad(int, uint64) (uint64, error) { return 5, nil }

// faultTrace drives n mixed operations and records which ones faulted.
func faultTrace(h *Host, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		var err error
		switch i % 4 {
		case 0:
			_, err = h.ReadMSR(i%8, 0xe00)
		case 1:
			err = h.WriteMSR(i%8, 0xe01, 1)
		case 2:
			err = h.Load(i%8, uint64(i)*64)
		case 3:
			err = h.Flush(i%8, uint64(i)*64)
		}
		out[i] = err != nil
	}
	return out
}

func TestDeterministicFaultSequence(t *testing.T) {
	a := New(okHost{}, Options{Seed: 9, Rate: 0.05})
	b := New(okHost{}, Options{Seed: 9, Rate: 0.05})
	ta, tb := faultTrace(a, 4000), faultTrace(b, 4000)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	if a.Injected() == 0 {
		t.Fatal("5%% fault rate injected nothing over 4000 ops")
	}
	if a.Injected() != b.Injected() {
		t.Errorf("injected counts diverged: %d vs %d", a.Injected(), b.Injected())
	}
	c := New(okHost{}, Options{Seed: 10, Rate: 0.05})
	tc := faultTrace(c, 4000)
	same := true
	for i := range ta {
		if ta[i] != tc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical fault sequence")
	}
}

func TestFaultRateApproximate(t *testing.T) {
	h := New(okHost{}, Options{Seed: 3, Rate: 0.02})
	n := 20000
	faults := 0
	for _, f := range faultTrace(h, n) {
		if f {
			faults++
		}
	}
	got := float64(faults) / float64(n)
	if got < 0.01 || got > 0.04 {
		t.Errorf("observed fault rate %.4f, want ~0.02", got)
	}
	if h.Ops() != int64(n) {
		t.Errorf("Ops() = %d, want %d", h.Ops(), n)
	}
	if h.Injected() != int64(faults) {
		t.Errorf("Injected() = %d, observed %d faults", h.Injected(), faults)
	}
}

func TestStuckCPUAlwaysFaults(t *testing.T) {
	h := New(okHost{}, Options{Seed: 1, StuckCPUs: []int{3}})
	for i := 0; i < 50; i++ {
		if err := h.Load(3, 0x1000); err == nil {
			t.Fatal("stuck CPU 3 completed a load")
		} else if !cmerr.IsTransient(err) {
			t.Fatalf("stuck-CPU fault classified %v, want Transient", cmerr.ClassOf(err))
		}
	}
	// Healthy CPUs are untouched at rate 0.
	for i := 0; i < 50; i++ {
		if err := h.Load(2, 0x1000); err != nil {
			t.Fatalf("healthy CPU faulted: %v", err)
		}
	}
}

func TestInjectedFaultProvenance(t *testing.T) {
	h := New(okHost{}, Options{Seed: 1, StuckCPUs: []int{5}})
	_, err := h.ReadMSR(5, 0xe00)
	var ce *cmerr.Error
	if !errors.As(err, &ce) {
		t.Fatalf("injected fault %v is not a *cmerr.Error", err)
	}
	if ce.CPU != 5 || ce.Op == "" {
		t.Errorf("fault lacks provenance: %+v", ce)
	}
}

func TestMSROnlyLeavesMemoryOpsAlone(t *testing.T) {
	h := New(okHost{}, Options{Seed: 2, Rate: 1, MSROnly: true})
	if err := h.Load(0, 0x40); err != nil {
		t.Errorf("MSROnly injector faulted a load: %v", err)
	}
	if err := h.Flush(0, 0x40); err != nil {
		t.Errorf("MSROnly injector faulted a flush: %v", err)
	}
	if _, err := h.ReadMSR(0, 0xe00); err == nil {
		t.Error("MSROnly injector at rate 1 let an MSR read through")
	}
}
