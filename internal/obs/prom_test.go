package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// promFixture builds a registry with one of every metric shape, fed
// through a deterministic workload.
func promFixture() *Registry {
	r := NewRegistry()
	r.Counter("probe/experiments/planned").Add(40)
	r.Gauge("probe/coverage_permille").Set(850)
	h := r.Histogram("ilp/solve_us")
	for _, v := range []int64{3, 5, 90, 1200} {
		h.Observe(v)
	}
	hv := r.HistogramVec("host/op_us", "op")
	hv.With("rdmsr").Observe(7)
	hv.With("rdmsr").Observe(9)
	hv.With("load").Observe(2)
	r.CounterVec("topo/surveys", "backend").With("mesh").Add(3)
	return r
}

// TestWritePromGolden pins the exact exposition bytes under FakeClock
// state: same metric state, byte-identical output, every time. The golden
// text is spelled out so any format drift is a conscious diff.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe/experiments/planned").Add(12)
	r.Gauge("probe/coverage_permille").Set(850)
	r.Histogram("ilp/solve_us").Observe(3)
	r.CounterVec("topo/surveys", "backend").With("mesh").Add(2)

	const want = `# TYPE ilp_solve_us histogram
ilp_solve_us_bucket{le="3"} 1
ilp_solve_us_bucket{le="+Inf"} 1
ilp_solve_us_sum 3
ilp_solve_us_count 1
# TYPE probe_coverage_permille gauge
probe_coverage_permille 850
# TYPE probe_experiments_planned counter
probe_experiments_planned 12
# TYPE topo_surveys counter
topo_surveys{backend="mesh"} 2
`
	var a, b bytes.Buffer
	if err := WriteProm(&a, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", a.String(), want)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two expositions of the same state differ")
	}
}

// TestWritePromDeterministicUnderFakeClock drives a full telemetry
// pipeline (spans advance the fake clock) twice with identical seeds and
// requires byte-identical /metrics output.
func TestWritePromDeterministicUnderFakeClock(t *testing.T) {
	run := func() []byte {
		tel := New(Config{Clock: NewFakeClock(time.Unix(2000, 0), time.Millisecond)})
		reg := tel.Registry()
		for i := 0; i < 5; i++ {
			reg.HistogramVec("host/op_us", "op").With("rdmsr").Observe(int64(10 * i))
			reg.Counter("probe/experiments/planned").Inc()
		}
		var buf bytes.Buffer
		if err := WriteProm(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("identically-seeded expositions differ:\n%s\nvs\n%s", a, b)
	}
}

func TestPromRoundTrip(t *testing.T) {
	snap := promFixture().Snapshot()
	var buf bytes.Buffer
	if err := WriteProm(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if err := ValidateProm(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("emitted exposition fails its own validator: %v", err)
	}
	parsed, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Every native series must reappear under its exposition-form name
	// with the same value; histograms keep exact count/sum and buckets.
	for key, v := range snap.Counters {
		base, labels := splitSeries(key)
		if got := parsed.Counters[PromName(base)+labels]; got != v {
			t.Errorf("counter %q: parsed %d, want %d", key, got, v)
		}
	}
	for key, v := range snap.Gauges {
		base, labels := splitSeries(key)
		if got := parsed.Gauges[PromName(base)+labels]; got != v {
			t.Errorf("gauge %q: parsed %d, want %d", key, got, v)
		}
	}
	for key, h := range snap.Histograms {
		base, labels := splitSeries(key)
		ph, ok := parsed.Histograms[PromName(base)+labels]
		if !ok {
			t.Errorf("histogram %q missing from parse", key)
			continue
		}
		if ph.Count != h.Count || ph.Sum != h.Sum {
			t.Errorf("histogram %q: parsed count/sum %d/%d, want %d/%d", key, ph.Count, ph.Sum, h.Count, h.Sum)
		}
		if len(ph.Buckets) != len(h.Buckets) {
			t.Errorf("histogram %q: parsed %d buckets, want %d", key, len(ph.Buckets), len(h.Buckets))
			continue
		}
		for i := range h.Buckets {
			if ph.Buckets[i] != h.Buckets[i] {
				t.Errorf("histogram %q bucket %d: parsed %+v, want %+v", key, i, ph.Buckets[i], h.Buckets[i])
			}
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"probe/experiments/planned": "probe_experiments_planned",
		"host/op_us":                "host_op_us",
		"a-b.c":                     "a_b_c",
		"9lives":                    "_lives",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParsePromRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "probe_x 1\n",
		"unknown kind":       "# TYPE probe_x summary\nprobe_x 1\n",
		"duplicate TYPE":     "# TYPE probe_x counter\n# TYPE probe_x counter\nprobe_x 1\n",
		"negative counter":   "# TYPE probe_x counter\nprobe_x -1\n",
		"float value":        "# TYPE probe_x counter\nprobe_x 1.5\n",
		"missing +Inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch":     "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"non-monotonic le":   "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 8\nh_count 2\n",
		"shrinking cum":      "# TYPE h histogram\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 8\nh_count 2\n",
	}
	for name, doc := range cases {
		if err := ValidateProm(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ValidateProm accepted %q", name, doc)
		}
	}
}
