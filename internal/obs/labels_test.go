package obs

import (
	"strconv"
	"sync"
	"testing"
)

func TestVecSeriesInterned(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("host/ops", "op", "cpu")
	a := v.With("rdmsr", "3")
	b := v.With("rdmsr", "3")
	if a == nil || a != b {
		t.Fatal("With with equal values must return the interned handle")
	}
	if v.With("wrmsr", "3") == a {
		t.Fatal("distinct label values must get distinct series")
	}
	a.Add(2)
	b.Inc()
	snap := r.Snapshot()
	if got := snap.Counters[`host/ops{op="rdmsr",cpu="3"}`]; got != 3 {
		t.Fatalf("series value = %d, want 3; counters = %v", got, snap.Counters)
	}
}

// TestVecConcurrentHammer drives every vec kind from parallel goroutines
// (the survey worker-pool shape) and checks the totals are exact. Run
// under -race this also proves the sharded series index is properly
// guarded.
func TestVecConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("probe/ops", "op")
	gv := r.GaugeVec("probe/level", "op")
	hv := r.HistogramVec("probe/lat_us", "op")
	ops := []string{"rdmsr", "wrmsr", "load", "flush"}

	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				op := ops[(w+i)%len(ops)]
				cv.With(op).Inc()
				gv.With(op).Set(int64(i))
				hv.With(op).Observe(int64(i % 97))
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	var counterTotal, histTotal int64
	for _, op := range ops {
		key := `{op="` + op + `"}`
		counterTotal += snap.Counters["probe/ops"+key]
		histTotal += snap.Histograms["probe/lat_us"+key].Count
	}
	if want := int64(workers * perWorker); counterTotal != want {
		t.Fatalf("counter total = %d, want %d", counterTotal, want)
	}
	if want := int64(workers * perWorker); histTotal != want {
		t.Fatalf("histogram observation total = %d, want %d", histTotal, want)
	}
	if n := snap.Counters["obs/vec_errors"]; n != 0 {
		t.Fatalf("vec errors = %d, want 0", n)
	}
}

// TestVecMisuse pins the no-panic contract: every misuse yields a nil
// (no-op) handle and bumps obs/vec_errors so CI notices, instead of
// panicking inside instrumented pipeline code.
func TestVecMisuse(t *testing.T) {
	r := NewRegistry()
	good := r.CounterVec("topo/surveys", "backend")
	if good == nil {
		t.Fatal("valid registration returned nil")
	}

	// Arity mismatch at With time.
	if c := good.With("mesh", "extra"); c != nil {
		t.Fatal("wrong-arity With must return a nil handle")
	}
	// Kind conflict on re-registration.
	if g := r.GaugeVec("topo/surveys", "backend"); g != nil {
		t.Fatal("kind conflict must return a nil family")
	}
	// Key-set conflict on re-registration.
	if c := r.CounterVec("topo/surveys", "other"); c != nil {
		t.Fatal("key-set conflict must return a nil family")
	}
	// Invalid label key grammar.
	if c := r.CounterVec("topo/bad", "Op"); c != nil {
		t.Fatal("invalid label key must return a nil family")
	}

	// All four misuses are no-ops downstream...
	r.GaugeVec("topo/surveys", "backend").With("mesh").Set(9)
	// ...and each one was counted.
	if n := r.Snapshot().Counters["obs/vec_errors"]; n != 5 {
		t.Fatalf("vec errors = %d, want 5", n)
	}
}

func TestVecSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		v := r.CounterVec("host/ops", "op", "cpu")
		// Insertion order differs from sorted order on purpose.
		for _, cpu := range []int{7, 1, 3, 11, 5} {
			v.With("rdmsr", strconv.Itoa(cpu)).Add(int64(cpu))
		}
		return r.Snapshot()
	}
	a, b := build(), build()
	if len(a.Counters) != 5 {
		t.Fatalf("series count = %d, want 5", len(a.Counters))
	}
	for k, v := range a.Counters {
		if b.Counters[k] != v {
			t.Fatalf("snapshots differ at %q: %d vs %d", k, v, b.Counters[k])
		}
	}
}

// TestNilPathAllocs pins the disabled-telemetry cost: with a nil registry
// every metric path must be allocation-free, so unconditional
// instrumentation stays harmless in benchmarked inner loops.
func TestNilPathAllocs(t *testing.T) {
	var r *Registry
	cv := r.CounterVec("probe/ops", "op")
	hv := r.HistogramVec("probe/lat_us", "op")
	allocs := testing.AllocsPerRun(200, func() {
		r.Counter("probe/x").Add(1)
		r.Gauge("probe/y").Set(2)
		r.Histogram("probe/z").Observe(3)
		cv.With("rdmsr").Inc()
		hv.With("rdmsr").Observe(4)
	})
	if allocs != 0 {
		t.Fatalf("nil-registry metric path allocates %.1f per op, want 0", allocs)
	}
}
