package obs

import (
	"sync"
	"time"
)

// Clock is the time source instrumented code reads through. The pipeline
// never calls time.Now directly (the hostsafe analyzer enforces this in
// the stage packages): stages read the clock injected with their
// Telemetry, so a run driven by a FakeClock is bit-for-bit reproducible —
// span timestamps included — while commands bind SystemClock for real
// wall-clock durations.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// SystemClock is the real wall clock. Only internal/cli binds it; library
// and test code use a FakeClock (or the fixed default) so instrumented
// runs stay deterministic.
var SystemClock Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// fixedClock always returns the same instant. It is the default when no
// clock is configured: every span gets timestamp 0 and duration 0, which
// keeps traces byte-identical across runs without any setup.
type fixedClock struct{ t time.Time }

func (c fixedClock) Now() time.Time { return c.t }

// FakeClock is a deterministic clock for tests: every Now call advances
// the time by a fixed step, so the k-th clock read of a run always
// observes the same instant. It is safe for concurrent use, but
// deterministic timestamps of course require a deterministic read order.
type FakeClock struct {
	mu   sync.Mutex
	now  time.Time // guarded by mu
	step time.Duration
}

// NewFakeClock returns a clock starting at start that advances by step on
// every Now call.
func NewFakeClock(start time.Time, step time.Duration) *FakeClock {
	return &FakeClock{now: start, step: step}
}

// Now returns the current fake time and advances it by one step.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}
