package obs

import (
	"sort"
	"strconv"
	"sync"
)

// Labeled metrics: a vec is a family of metrics sharing one name and one
// ordered, fixed-arity label key set registered up front (the obscheck
// analyzer enforces literal, grammar-clean keys at the call sites). Series
// handles are interned in a sharded index so concurrent With lookups from
// the survey worker pools contend on independent locks; the shard mutex
// follows the same "guarded by" discipline lockcheck enforces elsewhere.
//
// Misuse — re-registering a name with a different kind or key set, label
// keys outside the grammar, or a With call with the wrong arity — never
// panics inside instrumented pipeline code: the offender gets a nil (no-op)
// handle and the registry counts the event under the obs/vec_errors
// counter, which surfaces in every snapshot so CI notices.

// numVecShards is the series-index shard count; label hashing spreads
// series across shards so parallel workers touching different series
// rarely share a lock.
const numVecShards = 8

type vecKind uint8

const (
	vecCounter vecKind = iota
	vecGauge
	vecHist
)

func (k vecKind) String() string {
	switch k {
	case vecCounter:
		return "counter"
	case vecGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type vecShard struct {
	mu     sync.Mutex
	series map[string]*vecSeries // guarded by mu
}

type vecSeries struct {
	c *Counter
	g *Gauge
	h *Histogram
}

// vecFamily is one registered (name, kind, keys) family. name, kind and
// keys are set at registration and immutable afterwards; only the shard
// maps mutate.
type vecFamily struct {
	reg    *Registry
	name   string
	kind   vecKind
	keys   []string
	shards [numVecShards]vecShard
}

// validLabelKey reports whether k matches the label-key grammar
// [a-z][a-z0-9_]*.
func validLabelKey(k string) bool {
	if len(k) == 0 || k[0] < 'a' || k[0] > 'z' {
		return false
	}
	for i := 1; i < len(k); i++ {
		c := k[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// seriesKey renders the canonical label suffix {k1="v1",k2="v2"}: keys in
// registration order, values quoted. It doubles as the interning key and
// as the snapshot key suffix, so Snapshot/WriteJSON ordering is canonical
// by construction.
func seriesKey(keys, values []string) string {
	b := make([]byte, 0, 32)
	b = append(b, '{')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, k...)
		b = append(b, '=')
		b = strconv.AppendQuote(b, values[i])
	}
	b = append(b, '}')
	return string(b)
}

// fnv32a is FNV-1a over s, used only to pick a shard.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// series interns and returns the series for values, or nil on an arity
// mismatch (counted as a vec error).
func (f *vecFamily) series(values []string) *vecSeries {
	if f == nil {
		return nil
	}
	if len(values) != len(f.keys) {
		f.reg.vecErrs.Add(1)
		return nil
	}
	key := seriesKey(f.keys, values)
	sh := &f.shards[fnv32a(key)%numVecShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.series[key]
	if !ok {
		s = &vecSeries{}
		switch f.kind {
		case vecCounter:
			s.c = &Counter{}
		case vecGauge:
			s.g = &Gauge{}
		case vecHist:
			s.h = newHistogram()
		}
		if sh.series == nil {
			sh.series = make(map[string]*vecSeries)
		}
		sh.series[key] = s
	}
	return s
}

// eachSeries visits every interned series as name{k="v",...}, in sorted
// series order, so snapshot flattening is deterministic.
func (f *vecFamily) eachSeries(fn func(fullName string, s *vecSeries)) {
	var keys []string
	bySuffix := make(map[string]*vecSeries)
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for _, suffix := range sortedKeys(sh.series) {
			keys = append(keys, suffix)
			bySuffix[suffix] = sh.series[suffix]
		}
		sh.mu.Unlock()
	}
	sort.Strings(keys)
	for _, suffix := range keys {
		fn(f.name+suffix, bySuffix[suffix])
	}
}

// CounterVec is a family of counters distinguished by label values.
// Obtain one from Registry.CounterVec; a nil vec hands out nil (no-op)
// counters.
type CounterVec struct{ f *vecFamily }

// With returns the counter for the given label values (one per registered
// key, in registration order). The handle is interned: With with equal
// values returns the same counter, and handles are safe to cache on hot
// paths.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	s := v.f.series(values)
	if s == nil {
		return nil
	}
	return s.c
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *vecFamily }

// With returns the gauge for the given label values; see CounterVec.With.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	s := v.f.series(values)
	if s == nil {
		return nil
	}
	return s.g
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *vecFamily }

// With returns the histogram for the given label values; see
// CounterVec.With.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	s := v.f.series(values)
	if s == nil {
		return nil
	}
	return s.h
}

// vecFamily returns the family registered under name, creating it when
// new. A kind or key-set mismatch with the existing registration, or an
// invalid key, yields nil (and a vec error count) — instrumentation never
// panics the pipeline.
func (r *Registry) vecFamily(name string, kind vecKind, keys []string) *vecFamily {
	if r == nil {
		return nil
	}
	for _, k := range keys {
		if !validLabelKey(k) {
			r.vecErrs.Add(1)
			return nil
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.vecs[name]
	if !ok {
		f = &vecFamily{reg: r, name: name, kind: kind, keys: append([]string(nil), keys...)}
		r.vecs[name] = f
		return f
	}
	if f.kind != kind || !equalStrings(f.keys, keys) {
		r.vecErrs.Add(1)
		return nil
	}
	return f
}

// CounterVec returns the labeled counter family registered under name
// with the given ordered label keys, creating it if needed. Nil (a no-op
// family) on a nil receiver or on a conflicting re-registration.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	f := r.vecFamily(name, vecCounter, keys)
	if f == nil {
		return nil
	}
	return &CounterVec{f}
}

// GaugeVec returns the labeled gauge family registered under name; see
// CounterVec.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	f := r.vecFamily(name, vecGauge, keys)
	if f == nil {
		return nil
	}
	return &GaugeVec{f}
}

// HistogramVec returns the labeled histogram family registered under
// name; see CounterVec.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	f := r.vecFamily(name, vecHist, keys)
	if f == nil {
		return nil
	}
	return &HistogramVec{f}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
