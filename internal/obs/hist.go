package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The histogram is HDR-style log-linear: each power-of-two octave is split
// into histSubBuckets equal-width sub-buckets, so relative quantile error
// is bounded by 1/histSubBuckets (12.5%) across the full int64 range with
// a fixed, small bucket table. Bucket boundaries are a pure function of
// the index — every histogram in every process buckets identically, which
// is what makes snapshots mergeable across workers and byte-reproducible
// under FakeClock.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	// histNumBuckets is bucketIdx(math.MaxInt64)+1.
	histNumBuckets = (62-histSubBits+1)*histSubBuckets + histSubBuckets
)

// bucketIdx maps an observation to its bucket. Values below
// histSubBuckets get exact unit buckets; above that, the top histSubBits
// bits after the leading one select the sub-bucket within the octave.
// Negative observations clamp to bucket zero (the instrumented quantities
// are all counts and durations).
func bucketIdx(v int64) int {
	if v < histSubBuckets {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int((v >> uint(exp-histSubBits)) & (histSubBuckets - 1))
	return (exp-histSubBits+1)*histSubBuckets + sub
}

// bucketUB returns the inclusive upper bound of bucket idx; together with
// the previous bucket's bound it defines the half-open covered range.
// bucketUB(histNumBuckets-1) is math.MaxInt64.
func bucketUB(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	exp := idx/histSubBuckets + histSubBits - 1
	sub := idx % histSubBuckets
	width := int64(1) << uint(exp-histSubBits)
	return int64(1)<<uint(exp) + int64(sub+1)*width - 1
}

// Histogram is a log-bucketed (HDR-style) distribution of non-negative
// int64 observations. Bucket increments are atomic and commutative, so
// concurrent observers never perturb the final snapshot regardless of
// interleaving, and snapshots from different workers merge exactly
// (bucket-wise addition). Obtain instances from a Registry; a nil
// *Histogram is a no-op.
type Histogram struct {
	counts [histNumBuckets]atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // math.MaxInt64 until the first observation
	max    atomic.Int64 // -1 until the first observation
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(-1)
	return h
}

// Observe records one value. Negative values clamp to zero. No-op on a
// nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIdx(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Bucket is one occupied histogram bucket: its table index, its inclusive
// upper bound, and the number of observations that landed in it.
type Bucket struct {
	Idx int   `json:"idx"`
	UB  int64 `json:"ub"`
	N   int64 `json:"n"`
}

// HistogramSnapshot is the point-in-time state of a Histogram: sparse
// occupied buckets in ascending index order plus derived summary
// statistics. Quantiles are bucket upper bounds clamped to Max, so their
// relative error is bounded by the bucket width (12.5%).
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Idx: i, UB: bucketUB(i), N: n})
			s.Count += n
		}
	}
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	s.finalize()
	return s
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket holding the rank-ceil(q*Count) observation, clamped to Max. Zero
// when the snapshot is empty.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			if b.UB > s.Max && s.Max > 0 {
				return s.Max
			}
			return b.UB
		}
	}
	return s.Max
}

// finalize recomputes the derived quantile fields from Buckets/Count/Max.
func (s *HistogramSnapshot) finalize() {
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
}

// Merge returns the snapshot of the combined distribution. Because every
// histogram shares one fixed bucket table, merging is exact bucket-wise
// addition — associative and commutative — so per-worker histograms roll
// up into fleet totals without approximation beyond the shared bucketing.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	m := HistogramSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
	}
	m.Buckets = mergeBuckets(s.Buckets, o.Buckets)
	switch {
	case s.Count == 0:
		m.Min, m.Max = o.Min, o.Max
	case o.Count == 0:
		m.Min, m.Max = s.Min, s.Max
	default:
		m.Min = min(s.Min, o.Min)
		m.Max = max(s.Max, o.Max)
	}
	m.finalize()
	return m
}

func mergeBuckets(a, b []Bucket) []Bucket {
	out := make([]Bucket, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Idx < b[j].Idx):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].Idx < a[i].Idx:
			out = append(out, b[j])
			j++
		default:
			out = append(out, Bucket{Idx: a[i].Idx, UB: a[i].UB, N: a[i].N + b[j].N})
			i, j = i+1, j+1
		}
	}
	return out
}

// subHist returns the bucket-wise delta s minus earlier. Min and Max are
// not recoverable for a window, so the delta keeps the later snapshot's
// extrema; quantiles are recomputed from the delta buckets.
func subHist(s, earlier HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count: s.Count - earlier.Count,
		Sum:   s.Sum - earlier.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	prev := make(map[int]int64, len(earlier.Buckets))
	for _, b := range earlier.Buckets {
		prev[b.Idx] = b.N
	}
	for _, b := range s.Buckets {
		if n := b.N - prev[b.Idx]; n > 0 {
			d.Buckets = append(d.Buckets, Bucket{Idx: b.Idx, UB: b.UB, N: n})
		}
	}
	d.finalize()
	return d
}
