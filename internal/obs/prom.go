package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"coremap/internal/cmerr"
)

// Prometheus text exposition (text/plain; version=0.0.4), dependency-free.
// Slash-separated metric names mangle to underscore form
// (probe/experiments/planned -> probe_experiments_planned); labeled series
// keep their canonical {k="v"} suffix, which is already valid exposition
// label syntax because seriesKey quotes values with Go rules (a superset
// escape-compatible with the exposition format for \\, \" and \n).
// Histograms export as the conventional cumulative _bucket/_sum/_count
// triple with le bounds taken from the fixed log-bucket table, so a
// scraper can reconstruct the exact sparse buckets (ParseProm does).
// Output ordering is fully deterministic: families sorted by exposition
// name, series sorted within a family.

// PromContentType is the Content-Type of the /metrics endpoint.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName mangles an obs metric name into a Prometheus metric name:
// every character outside [a-zA-Z0-9_] becomes '_'.
func PromName(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// splitSeries splits a snapshot key into its base name and its canonical
// label suffix ("" when unlabeled).
func splitSeries(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

type promSample struct {
	labels string
	value  int64
	hist   *HistogramSnapshot
}

type promFamily struct {
	name    string
	kind    string
	samples []promSample
}

// WriteProm writes snap in the Prometheus text exposition format.
func WriteProm(w io.Writer, snap Snapshot) error {
	fams := make(map[string]*promFamily)
	add := func(key, kind string, s promSample) {
		base, labels := splitSeries(key)
		name := PromName(base)
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		s.labels = labels
		f.samples = append(f.samples, s)
	}
	for _, key := range sortedKeys(snap.Counters) {
		add(key, "counter", promSample{value: snap.Counters[key]})
	}
	for _, key := range sortedKeys(snap.Gauges) {
		add(key, "gauge", promSample{value: snap.Gauges[key]})
	}
	for _, key := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[key]
		add(key, "histogram", promSample{hist: &h})
	}

	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(fams) {
		f := fams[name]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			if f.kind != "histogram" {
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.value)
				continue
			}
			var cum int64
			for _, b := range s.hist.Buckets {
				cum += b.N
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withLE(s.labels, strconv.FormatInt(b.UB, 10)), cum)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withLE(s.labels, "+Inf"), s.hist.Count)
			fmt.Fprintf(bw, "%s_sum%s %d\n", f.name, s.labels, s.hist.Sum)
			fmt.Fprintf(bw, "%s_count%s %d\n", f.name, s.labels, s.hist.Count)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write exposition: %w", err)
	}
	return nil
}

// withLE appends the le label to a canonical label suffix.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// promHistState accumulates one histogram series while parsing.
type promHistState struct {
	lastLE   int64
	lastCum  int64
	buckets  []Bucket
	sawInf   bool
	infCum   int64
	sum      int64
	hasSum   bool
	count    int64
	hasCount bool
}

// ParseProm parses a Prometheus text exposition produced by WriteProm (or
// any exposition restricted to integer-valued counter/gauge/histogram
// families with a TYPE line preceding their samples) back into a
// Snapshot. Metric names stay in exposition (underscore) form — the
// original slash positions are not recoverable. Histogram buckets are
// de-cumulated back to sparse form; Min is unknown (zero) and Max is
// approximated by the highest occupied bucket bound, so quantiles from a
// parsed snapshot are upper bounds exactly like native ones.
//
// Parsing doubles as validation: ValidateProm is ParseProm with the
// snapshot discarded. Checks: TYPE before samples and at most one TYPE
// per family, known kinds, well-formed sample lines, non-negative counter
// and bucket values, strictly increasing le with non-decreasing
// cumulative counts per series, a +Inf bucket, and _count consistent with
// it.
func ParseProm(r io.Reader) (Snapshot, error) {
	snap := Snapshot{Counters: make(map[string]int64), Gauges: make(map[string]int64)}
	kinds := make(map[string]string)
	hists := make(map[string]map[string]*promHistState) // family -> labels -> state
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: malformed TYPE line", line)
				}
				name, kind := fields[2], fields[3]
				if kind != "counter" && kind != "gauge" && kind != "histogram" {
					return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: unsupported type %q", line, kind)
				}
				if _, dup := kinds[name]; dup {
					return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: duplicate TYPE for %q", line, name)
				}
				kinds[name] = kind
			}
			continue
		}
		name, labels, value, err := parsePromSample(text)
		if err != nil {
			return snap, fmt.Errorf("obs: exposition line %d: %w", line, err)
		}
		family, suffix := name, ""
		kind, ok := kinds[family]
		if !ok {
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, s); base != name && kinds[base] == "histogram" {
					family, suffix, kind, ok = base, s, "histogram", true
					break
				}
			}
		}
		if !ok {
			return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: sample %q before its TYPE line", line, name)
		}
		switch kind {
		case "counter":
			if value < 0 {
				return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: negative counter %q", line, name)
			}
			snap.Counters[name+labels] = value
		case "gauge":
			snap.Gauges[name+labels] = value
		case "histogram":
			if suffix == "" {
				return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: bare sample %q for histogram family", line, name)
			}
			series, le, err := splitLE(labels, suffix == "_bucket")
			if err != nil {
				return snap, fmt.Errorf("obs: exposition line %d: %w", line, err)
			}
			byLabels, ok := hists[family]
			if !ok {
				byLabels = make(map[string]*promHistState)
				hists[family] = byLabels
			}
			st, ok := byLabels[series]
			if !ok {
				st = &promHistState{lastLE: -1}
				byLabels[series] = st
			}
			switch suffix {
			case "_bucket":
				if value < 0 || value < st.lastCum {
					return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: non-monotonic cumulative bucket in %q", line, family)
				}
				if le == "+Inf" {
					st.sawInf, st.infCum = true, value
					break
				}
				ub, err := strconv.ParseInt(le, 10, 64)
				if err != nil {
					return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: bad le %q", line, le)
				}
				if st.sawInf || ub <= st.lastLE {
					return snap, cmerr.New(cmerr.Permanent, "obs", "exposition line %d: le bounds not strictly increasing in %q", line, family)
				}
				if n := value - st.lastCum; n > 0 {
					idx := bucketIdx(ub)
					st.buckets = append(st.buckets, Bucket{Idx: idx, UB: ub, N: n})
				}
				st.lastLE, st.lastCum = ub, value
			case "_sum":
				st.sum, st.hasSum = value, true
			case "_count":
				st.count, st.hasCount = value, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return snap, fmt.Errorf("obs: read exposition: %w", err)
	}
	for _, family := range sortedKeys(hists) {
		for _, series := range sortedKeys(hists[family]) {
			st := hists[family][series]
			if !st.sawInf {
				return snap, cmerr.New(cmerr.Permanent, "obs", "exposition: histogram %q%s missing +Inf bucket", family, series)
			}
			if !st.hasCount || !st.hasSum {
				return snap, cmerr.New(cmerr.Permanent, "obs", "exposition: histogram %q%s missing _sum or _count", family, series)
			}
			if st.count != st.infCum {
				return snap, cmerr.New(cmerr.Permanent, "obs", "exposition: histogram %q%s: _count %d != +Inf bucket %d", family, series, st.count, st.infCum)
			}
			h := HistogramSnapshot{Count: st.count, Sum: st.sum, Buckets: st.buckets}
			if n := len(st.buckets); n > 0 {
				h.Max = st.buckets[n-1].UB
			}
			h.finalize()
			if snap.Histograms == nil {
				snap.Histograms = make(map[string]HistogramSnapshot)
			}
			snap.Histograms[family+series] = h
		}
	}
	return snap, nil
}

// parsePromSample splits "name{labels} value" into its parts. Values must
// be integers (the only kind WriteProm emits).
func parsePromSample(text string) (name, labels string, value int64, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, cmerr.New(cmerr.Permanent, "obs", "unterminated label block")
		}
		name, labels, rest = rest[:i], rest[i:j+1], strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, cmerr.New(cmerr.Permanent, "obs", "malformed sample %q", text)
		}
		name, rest = fields[0], fields[1]
	}
	if name == "" || !isPromName(name) {
		return "", "", 0, cmerr.New(cmerr.Permanent, "obs", "bad metric name %q", name)
	}
	v, perr := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if perr != nil {
		return "", "", 0, cmerr.New(cmerr.Permanent, "obs", "bad sample value %q", rest)
	}
	return name, labels, v, nil
}

func isPromName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// splitLE strips the le pair from a label block, returning the remaining
// canonical series labels and the le value. wantLE is false for _sum and
// _count samples, which must not carry le.
func splitLE(labels string, wantLE bool) (series, le string, err error) {
	if labels == "" {
		if wantLE {
			return "", "", cmerr.New(cmerr.Permanent, "obs", "bucket sample without le label")
		}
		return "", "", nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var keep []string
	for _, pair := range splitLabelPairs(inner) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return "", "", cmerr.New(cmerr.Permanent, "obs", "malformed label pair %q", pair)
		}
		if k == "le" {
			if !wantLE {
				return "", "", cmerr.New(cmerr.Permanent, "obs", "unexpected le label on non-bucket sample")
			}
			unq, uerr := strconv.Unquote(v)
			if uerr != nil {
				return "", "", cmerr.New(cmerr.Permanent, "obs", "bad le value %q", v)
			}
			le = unq
			continue
		}
		keep = append(keep, pair)
	}
	if wantLE && le == "" {
		return "", "", cmerr.New(cmerr.Permanent, "obs", "bucket sample without le label")
	}
	if len(keep) > 0 {
		series = "{" + strings.Join(keep, ",") + "}"
	}
	return series, le, nil
}

// splitLabelPairs splits k="v" pairs on commas outside quotes.
func splitLabelPairs(inner string) []string {
	var out []string
	var start int
	inQuote := false
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, inner[start:i])
				start = i + 1
			}
		}
	}
	if start < len(inner) {
		out = append(out, inner[start:])
	}
	return out
}
