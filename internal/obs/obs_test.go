package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"coremap/internal/cmerr"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("probe/experiments/planned")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("probe/experiments/planned") != c {
		t.Fatal("Counter is not get-or-create")
	}

	g := r.Gauge("probe/coverage_permille")
	g.Set(987)
	if got := g.Value(); got != 987 {
		t.Fatalf("gauge = %d, want 987", got)
	}

	h := r.Histogram("ilp/worker_nodes")
	if r.Histogram("ilp/worker_nodes") != h {
		t.Fatal("Histogram is not get-or-create")
	}
	for _, v := range []int64{5, 10, 11, 100, 5000, -3} {
		h.Observe(v) // -3 clamps to 0
	}
	snap := r.Snapshot().Histograms["ilp/worker_nodes"]
	if snap.Count != 6 || snap.Sum != 5+10+11+100+5000 {
		t.Fatalf("count=%d sum=%d, want 6, %d", snap.Count, snap.Sum, 5+10+11+100+5000)
	}
	if snap.Min != 0 || snap.Max != 5000 {
		t.Fatalf("min=%d max=%d, want 0, 5000", snap.Min, snap.Max)
	}
	var total int64
	for _, b := range snap.Buckets {
		if b.UB != bucketUB(b.Idx) || b.N <= 0 {
			t.Fatalf("malformed bucket %+v", b)
		}
		total += b.N
	}
	if total != snap.Count {
		t.Fatalf("bucket sum %d != count %d", total, snap.Count)
	}
	// Quantiles are bucket upper bounds clamped to Max, monotone, and the
	// bucket's relative error bound (12.5%) holds for the p99 rank value.
	if snap.P50 > snap.P95 || snap.P95 > snap.P99 || snap.P99 > snap.Max {
		t.Fatalf("quantiles not monotone or above max: %+v", snap)
	}
	if snap.P99 != 5000 { // rank-6 observation is 5000, clamped to Max
		t.Fatalf("p99 = %d, want 5000", snap.P99)
	}
	if snap.P50 < 5 || snap.P50 > 11 {
		t.Fatalf("p50 = %d, want within one bucket of the rank-3 value 10", snap.P50)
	}
}

func TestGaugeFuncAdditive(t *testing.T) {
	r := NewRegistry()
	if err := r.GaugeFunc("faulty/injected", nil, func() int64 { return 2 }); err != nil {
		t.Fatal(err)
	}
	if err := r.GaugeFunc("faulty/injected", nil, func() int64 { return 3 }); err != nil {
		t.Fatal(err)
	}
	// A plain gauge under the same name merges additively too.
	r.Gauge("faulty/injected").Set(10)
	if got := r.Snapshot().Gauges["faulty/injected"]; got != 15 {
		t.Fatalf("additive gauge = %d, want 15", got)
	}
}

// TestGaugeFuncDuplicateOwner is the regression test for double
// registration: the same (name, owner) pair must be rejected with a
// permanent error instead of silently double-counting the gauge, while a
// different owner (another cache layer sharing the name) stays additive.
func TestGaugeFuncDuplicateOwner(t *testing.T) {
	r := NewRegistry()
	owner := new(int)
	if err := r.GaugeFunc("probe/cache/hits", owner, func() int64 { return 5 }); err != nil {
		t.Fatal(err)
	}
	err := r.GaugeFunc("probe/cache/hits", owner, func() int64 { return 5 })
	if err == nil {
		t.Fatal("duplicate (name, owner) registration accepted")
	}
	if cmerr.ClassOf(err) != cmerr.Permanent {
		t.Fatalf("duplicate registration error class = %v, want permanent", cmerr.ClassOf(err))
	}
	other := new(int)
	if err := r.GaugeFunc("probe/cache/hits", other, func() int64 { return 7 }); err != nil {
		t.Fatalf("distinct owner rejected: %v", err)
	}
	if got := r.Snapshot().Gauges["probe/cache/hits"]; got != 12 {
		t.Fatalf("gauge = %d, want 12 (5 + 7, no double registration)", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("memo/hits")
	h := r.Histogram("ilp/worker_nodes")
	c.Add(5)
	h.Observe(3)
	before := r.Snapshot()
	c.Add(7)
	h.Observe(100)
	r.Gauge("probe/coverage_permille").Set(500)
	d := r.Snapshot().Sub(before)
	if got := d.Counters["memo/hits"]; got != 7 {
		t.Fatalf("delta counter = %d, want 7", got)
	}
	if got := d.Gauges["probe/coverage_permille"]; got != 500 {
		t.Fatalf("delta gauge = %d, want later value 500", got)
	}
	dh := d.Histograms["ilp/worker_nodes"]
	if dh.Count != 1 || dh.Sum != 100 {
		t.Fatalf("delta histogram count=%d sum=%d, want the single 100 observation", dh.Count, dh.Sum)
	}
	if len(dh.Buckets) != 1 || dh.Buckets[0].Idx != bucketIdx(100) || dh.Buckets[0].N != 1 {
		t.Fatalf("delta buckets = %+v, want one observation in bucket %d", dh.Buckets, bucketIdx(100))
	}
}

func TestSnapshotTotal(t *testing.T) {
	r := NewRegistry()
	r.Counter("host/ops/rdmsr").Add(3)
	r.Counter("host/ops/load").Add(4)
	r.Counter("probe/retries").Add(9)
	if got := r.Snapshot().Total("host/ops/"); got != 7 {
		t.Fatalf("Total(host/ops/) = %d, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	if err := r.GaugeFunc("w", nil, func() int64 { return 1 }); err != nil {
		t.Fatalf("nil registry GaugeFunc: %v", err)
	}
	r.CounterVec("v/c", "op").With("a").Inc()
	r.GaugeVec("v/g", "op").With("a").Set(1)
	r.HistogramVec("v/h", "op").With("a").Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}

	var tel *Telemetry
	if tel.Registry() != nil || tel.Spans() != nil || tel.Dropped() != 0 || tel.SinkErr() != nil {
		t.Fatal("nil telemetry accessors not inert")
	}
	if tel.Clock() == nil {
		t.Fatal("nil telemetry Clock() must still return a clock")
	}
	if err := tel.Report(io.Discard); err != nil {
		t.Fatalf("nil telemetry report: %v", err)
	}

	ctx, span := Start(context.Background(), "probe/run")
	if span != nil {
		t.Fatal("Start without telemetry must return a nil span")
	}
	span.SetAttr("k", 1).SetAttrStr("s", "v")
	span.End(errors.New("boom"))
	if From(ctx) != nil || RegistryFrom(ctx) != nil {
		t.Fatal("empty context must yield nil telemetry")
	}
	if From(nil) != nil { //lint:ignore SA1012 nil-context tolerance is part of the API contract
		t.Fatal("From(nil) must be nil")
	}
}

func TestSpanHierarchyAndErrorClass(t *testing.T) {
	tel := New(Config{Clock: NewFakeClock(time.Unix(0, 0), time.Millisecond)})
	ctx := With(context.Background(), tel)

	ctx1, root := Start(ctx, "coremap/map-machine")
	ctx2, child := Start(ctx1, "probe/run")
	child.SetAttr("experiments", 42)
	child.End(fmt.Errorf("sweep: %w", cmerr.Transient))
	_, sib := Start(ctx1, "ilp/solve")
	sib.End(errors.New("plain"))
	root.End(nil)
	_ = ctx2

	spans := tel.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Spans complete child-first.
	probe, ilp, top := spans[0], spans[1], spans[2]
	if probe.Name != "probe/run" || ilp.Name != "ilp/solve" || top.Name != "coremap/map-machine" {
		t.Fatalf("span order: %q %q %q", probe.Name, ilp.Name, top.Name)
	}
	if top.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", top.Parent)
	}
	if probe.Parent != top.ID || ilp.Parent != top.ID {
		t.Fatalf("children parent = %d/%d, want %d", probe.Parent, ilp.Parent, top.ID)
	}
	if probe.Err != "transient" {
		t.Fatalf("classified err = %q, want transient", probe.Err)
	}
	if ilp.Err != "unclassified" {
		t.Fatalf("plain err = %q, want unclassified", ilp.Err)
	}
	if top.Err != "" {
		t.Fatalf("nil err recorded as %q", top.Err)
	}
	if len(probe.Attrs) != 1 || probe.Attrs[0].Key != "experiments" || probe.Attrs[0].Int != 42 {
		t.Fatalf("attrs = %+v", probe.Attrs)
	}
	// FakeClock ticks once per Now(): epoch, then one tick per Start/End.
	if probe.DurUS <= 0 || top.DurUS <= probe.DurUS {
		t.Fatalf("durations not nested: probe %d us, root %d us", probe.DurUS, top.DurUS)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tel := New(Config{})
	_, s := Start(With(context.Background(), tel), "probe/run")
	s.End(nil)
	s.End(errors.New("second end must not re-record"))
	if got := len(tel.Spans()); got != 1 {
		t.Fatalf("got %d spans after double End, want 1", got)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tel := New(Config{TraceCapacity: 2})
	ctx := With(context.Background(), tel)
	for i := 0; i < 5; i++ {
		_, s := Start(ctx, fmt.Sprintf("probe/op-%d", i))
		s.End(nil)
	}
	spans := tel.Spans()
	if len(spans) != 2 {
		t.Fatalf("buffer holds %d spans, want 2", len(spans))
	}
	if spans[0].Name != "probe/op-3" || spans[1].Name != "probe/op-4" {
		t.Fatalf("ring kept %q, %q; want the two newest", spans[0].Name, spans[1].Name)
	}
	if tel.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tel.Dropped())
	}
}

// runTrace drives a fixed span workload against a fresh, identically
// seeded fake clock and returns the JSONL bytes the sink received.
func runTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tel := New(Config{
		Clock:     NewFakeClock(time.Unix(1000, 0), 250*time.Microsecond),
		TraceSink: &buf,
	})
	ctx := With(context.Background(), tel)
	ctx, root := Start(ctx, "coremap/map-machine")
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, "probe/run")
		s.SetAttr("round", int64(i))
		s.End(nil)
	}
	_, s := Start(ctx, "ilp/solve")
	s.SetAttr("nodes", 128)
	s.End(fmt.Errorf("budget: %w", cmerr.Degraded))
	root.End(nil)
	if err := tel.SinkErr(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJSONLSinkDeterministic(t *testing.T) {
	a, b := runTrace(t), runTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identically-seeded traces differ:\n%s\nvs\n%s", a, b)
	}
	if err := ValidateTrace(bytes.NewReader(a)); err != nil {
		t.Fatalf("emitted trace fails its own schema: %v", err)
	}
	if n := bytes.Count(a, []byte("\n")); n != 5 {
		t.Fatalf("trace has %d lines, want 5", n)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"id":1,"name":"a/b","start_us":0,"dur_us":0,"bogus":1}`,
		"zero id":       `{"id":0,"name":"a/b","start_us":0,"dur_us":0}`,
		"self parent":   `{"id":2,"parent":2,"name":"a/b","start_us":0,"dur_us":0}`,
		"empty name":    `{"id":1,"name":"","start_us":0,"dur_us":0}`,
		"negative time": `{"id":1,"name":"a/b","start_us":-1,"dur_us":0}`,
		"empty attr":    `{"id":1,"name":"a/b","start_us":0,"dur_us":0,"attrs":[{"k":""}]}`,
		"not json":      `nope`,
	}
	for name, line := range cases {
		if err := ValidateTrace(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: ValidateTrace accepted %q", name, line)
		}
	}
}

func TestValidateMetricsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe/experiments/planned").Add(12)
	r.Gauge("probe/coverage_permille").Set(1000)
	r.Histogram("ilp/worker_nodes").Observe(7)
	r.CounterVec("topo/surveys", "backend").With("mesh").Add(2)
	r.HistogramVec("host/op_us", "op").With("rdmsr").Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("emitted snapshot fails its own schema: %v", err)
	}
	// Deterministic encoding: same state, same bytes.
	var buf2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot JSON is not deterministic")
	}
}

func TestValidateMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"counters":{},"gauges":{},"bogus":{}}`,
		"no counters":     `{"gauges":{}}`,
		"no gauges":       `{"counters":{}}`,
		"old flat schema": `{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[1,2],"counts":[1],"sum":0,"count":1}}}`,
		"bad bucket sum":  `{"counters":{},"gauges":{},"histograms":{"h":{"count":3,"sum":0,"min":1,"max":1,"p50":1,"p95":1,"p99":1,"buckets":[{"idx":1,"ub":1,"n":1}]}}}`,
		"wrong bound":     `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":5,"min":5,"max":5,"p50":5,"p95":5,"p99":5,"buckets":[{"idx":5,"ub":6,"n":1}]}}}`,
		"unsorted idx":    `{"counters":{},"gauges":{},"histograms":{"h":{"count":2,"sum":8,"min":3,"max":5,"p50":5,"p95":5,"p99":5,"buckets":[{"idx":5,"ub":5,"n":1},{"idx":3,"ub":3,"n":1}]}}}`,
		"min above max":   `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":5,"min":9,"max":5,"p50":5,"p95":5,"p99":5,"buckets":[{"idx":5,"ub":5,"n":1}]}}}`,
		"stale p99":       `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":5,"min":5,"max":5,"p50":5,"p95":5,"p99":7,"buckets":[{"idx":5,"ub":5,"n":1}]}}}`,
	}
	for name, doc := range cases {
		if err := ValidateMetrics(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ValidateMetrics accepted %q", name, doc)
		}
	}
}

func TestBuildReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe/experiments/planned").Add(100)
	r.Counter("probe/retries").Add(4)
	r.Gauge("probe/coverage_permille").Set(995)
	r.Gauge("probe/cache/hits").Set(17)
	r.Counter("ilp/nodes").Add(2048)
	r.Counter("host/ops/rdmsr").Add(600)
	r.Counter("host/ops/load").Add(50)
	spans := []SpanRecord{
		{ID: 1, Name: "coremap/map-machine", DurUS: 1000},
		{ID: 2, Parent: 1, Name: "probe/run", DurUS: 700},
		{ID: 3, Parent: 2, Name: "probe/map-cores", DurUS: 300}, // nested same-stage: no extra duration
		{ID: 4, Parent: 1, Name: "ilp/solve", DurUS: 200},
	}
	rows := BuildReport(r.Snapshot(), spans)

	byStage := make(map[string]StageRow)
	var order []string
	for _, row := range rows {
		byStage[row.Stage] = row
		order = append(order, row.Stage)
	}
	wantOrder := []string{"coremap", "host", "probe", "ilp"}
	if len(order) != len(wantOrder) {
		t.Fatalf("stages %v, want %v", order, wantOrder)
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("stages %v, want %v", order, wantOrder)
		}
	}

	p := byStage["probe"]
	if p.Ops != 100 || p.Retries != 4 || p.CacheHits != 17 {
		t.Fatalf("probe row = %+v", p)
	}
	if p.Coverage != 99.5 {
		t.Fatalf("probe coverage = %v, want 99.5", p.Coverage)
	}
	if p.Spans != 2 || p.Duration != 700*time.Microsecond {
		t.Fatalf("probe spans/duration = %d/%v, want 2/700µs (no double count)", p.Spans, p.Duration)
	}
	if byStage["ilp"].Ops != 2048 {
		t.Fatalf("ilp ops = %d, want 2048", byStage["ilp"].Ops)
	}
	if byStage["host"].Ops != 650 {
		t.Fatalf("host ops = %d, want 650", byStage["host"].Ops)
	}
	if byStage["host"].Coverage != -1 {
		t.Fatal("host coverage should be absent (-1)")
	}

	var buf bytes.Buffer
	if err := WriteReport(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "probe") || !strings.Contains(out, "99.5%") {
		t.Fatalf("report table missing probe row:\n%s", out)
	}
}

// TestDebugServerCleanShutdown is the goroutine-leak test for the
// -debug-addr server: after Close, the serve goroutine and the
// connection handlers must all be gone.
func TestDebugServerCleanShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		r := NewRegistry()
		r.Counter("probe/experiments/planned").Add(int64(i))
		d, err := ServeDebug("127.0.0.1:0", r)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + d.Addr() + "/debug/vars")
		if err != nil {
			d.Close()
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			d.Close()
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			d.Close()
			t.Fatalf("/debug/vars status %d", resp.StatusCode)
		}
		if err := ValidateMetrics(bytes.NewReader(body)); err != nil {
			d.Close()
			t.Fatalf("/debug/vars payload invalid: %v", err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Keep-alive pools and runtime helpers take a moment to unwind.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
		runtime.GC()
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestFakeClockStep(t *testing.T) {
	c := NewFakeClock(time.Unix(100, 0), time.Second)
	t0, t1 := c.Now(), c.Now()
	if !t1.Equal(t0.Add(time.Second)) {
		t.Fatalf("fake clock step: %v then %v", t0, t1)
	}
}
