package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"coremap/internal/cmerr"
)

// TestFlightRecorderAttributesFailure is the black-box contract: after a
// probe experiment fails permanently on a known (CPU, CHA), the flight
// dump must carry that exact provenance in its header trigger, so a
// post-mortem attributes the failure without re-parsing message strings.
func TestFlightRecorderAttributesFailure(t *testing.T) {
	tel := New(Config{Clock: NewFakeClock(time.Unix(3000, 0), time.Millisecond)})
	ctx := With(context.Background(), tel)

	ctx, root := Start(ctx, "coremap/map-machine")
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, "probe/run")
		s.End(nil)
	}
	failure := cmerr.New(cmerr.Permanent, "probe", "stuck affinity").
		WithOp("rdmsr").OnCPU(17).AtCHA(4)
	Event(ctx, "probe/experiment-failed", failure)
	root.End(nil)

	if !tel.FlightTriggered() {
		t.Fatal("permanent event did not arm the flight recorder")
	}
	var buf bytes.Buffer
	if err := tel.WriteFlight(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlight(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("flight dump fails its own schema: %v", err)
	}

	var first struct {
		Flight FlightHeader `json:"flight"`
	}
	header, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(header), &first); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if len(first.Flight.Triggers) != 1 {
		t.Fatalf("triggers = %+v, want exactly the failed experiment", first.Flight.Triggers)
	}
	trig := first.Flight.Triggers[0]
	if trig.Name != "probe/experiment-failed" || trig.Err != "permanent" {
		t.Fatalf("trigger = %+v", trig)
	}
	if trig.Info == nil {
		t.Fatal("trigger lost its cmerr provenance")
	}
	if trig.Info.Stage != "probe" || trig.Info.Op != "rdmsr" || trig.Info.CPU != 17 || trig.Info.CHA != 4 {
		t.Fatalf("provenance = %+v, want stage=probe op=rdmsr cpu=17 cha=4", trig.Info)
	}
	if first.Flight.Reason == nil || first.Flight.Reason.CPU != 17 {
		t.Fatalf("header reason = %+v, want the first trigger's provenance", first.Flight.Reason)
	}
}

// TestFlightPerStageRetention is the reason the recorder exists: a noisy
// stage must not evict the few records of the stage that failed.
func TestFlightPerStageRetention(t *testing.T) {
	tel := New(Config{FlightCapacity: 4, TraceCapacity: 8})
	ctx := With(context.Background(), tel)

	_, s := Start(ctx, "ilp/solve")
	s.End(fmt.Errorf("budget: %w", cmerr.Degraded))
	// Flood a different stage well past both capacities.
	for i := 0; i < 100; i++ {
		_, s := Start(ctx, fmt.Sprintf("probe/op-%d", i))
		s.End(nil)
	}

	var buf bytes.Buffer
	if err := tel.WriteFlight(&buf, nil); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	if !strings.Contains(dump, `"ilp/solve"`) {
		t.Fatal("noisy probe stage evicted the failed ilp span from the flight dump")
	}
	// The probe ring keeps exactly the last FlightCapacity records.
	for _, name := range []string{"probe/op-96", "probe/op-97", "probe/op-98", "probe/op-99"} {
		if !strings.Contains(dump, `"`+name+`"`) {
			t.Fatalf("flight dump missing recent record %s", name)
		}
	}
	if strings.Contains(dump, `"probe/op-95"`) {
		t.Fatal("flight ring retained more than its capacity")
	}
}

func TestFlightNotTriggeredByTransient(t *testing.T) {
	tel := New(Config{})
	ctx := With(context.Background(), tel)
	_, s := Start(ctx, "probe/run")
	s.End(fmt.Errorf("retryable: %w", cmerr.Transient))
	if tel.FlightTriggered() {
		t.Fatal("transient error must not arm the flight recorder")
	}
	_, s2 := Start(ctx, "probe/run")
	s2.End(fmt.Errorf("ctrl-c: %w", cmerr.Interrupted))
	if !tel.FlightTriggered() {
		t.Fatal("interrupted error must arm the flight recorder")
	}
}

// TestEventRecords pins obs.Event: an instantaneous record with Kind
// "event", zero duration, parented to the enclosing span, visible in the
// trace ring.
func TestEventRecords(t *testing.T) {
	tel := New(Config{Clock: NewFakeClock(time.Unix(0, 0), time.Millisecond)})
	ctx := With(context.Background(), tel)
	ctx, root := Start(ctx, "probe/run")
	Event(ctx, "probe/experiment-dropped", nil)
	root.End(nil)

	spans := tel.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d records, want event + span", len(spans))
	}
	ev := spans[0]
	if ev.Kind != "event" || ev.Name != "probe/experiment-dropped" {
		t.Fatalf("event record = %+v", ev)
	}
	if ev.DurUS != 0 {
		t.Fatalf("event duration = %d, want 0", ev.DurUS)
	}
	if ev.Parent != spans[1].ID {
		t.Fatalf("event parent = %d, want enclosing span %d", ev.Parent, spans[1].ID)
	}
	// Event without telemetry is a no-op, not a panic.
	Event(context.Background(), "probe/ignored", nil)
}

func TestWriteFlightNilAndRunErr(t *testing.T) {
	var nilTel *Telemetry
	if err := nilTel.WriteFlight(&bytes.Buffer{}, nil); err != nil {
		t.Fatalf("nil telemetry WriteFlight: %v", err)
	}
	if nilTel.FlightTriggered() {
		t.Fatal("nil telemetry cannot have triggered")
	}

	// A run error alone (no triggering spans) still produces a valid dump
	// whose header carries the error's class and provenance.
	tel := New(Config{})
	runErr := cmerr.New(cmerr.Degraded, "locate", "coverage below threshold").OnCPU(-1).AtCHA(-1)
	var buf bytes.Buffer
	if err := tel.WriteFlight(&buf, runErr); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlight(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("run-error dump fails schema: %v", err)
	}
	var first struct {
		Flight FlightHeader `json:"flight"`
	}
	header, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(header), &first); err != nil {
		t.Fatal(err)
	}
	if first.Flight.RunErr != "degraded" || first.Flight.Reason == nil || first.Flight.Reason.Stage != "locate" {
		t.Fatalf("header = %+v, want run_err=degraded reason.stage=locate", first.Flight)
	}
}
