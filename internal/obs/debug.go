package obs

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves the metrics registry as expvar-style JSON at
// /debug/vars, as a Prometheus text exposition at /metrics, and the
// standard pprof endpoints under /debug/pprof/, on its own mux (nothing
// leaks into http.DefaultServeMux). It is opt-in via the -debug-addr
// flag and meant for interactive inspection of a long run (cmd/coremaptop
// scrapes /metrics), not production exposure.
type DebugServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// ServeDebug starts a DebugServer on addr (e.g. "localhost:6060"; use
// port 0 to pick a free port) serving reg's live snapshot. The caller
// must Close it.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		if err := WriteProm(w, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	d := &DebugServer{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() { //lint:allow gosync joined cross-function: Close blocks on d.done until Serve returns
		defer close(d.done)
		// Serve returns ErrServerClosed after Close; any other error is
		// already surfaced to clients, so the goroutine just exits.
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the server's bound address (useful with port 0).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the server down immediately and waits for the serve
// goroutine to exit, so callers can assert no goroutine leaks. Close
// (rather than Shutdown) needs no context: the debug server holds no
// state worth draining. Nil-safe.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	err := d.srv.Close()
	<-d.done
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("obs: close debug server: %w", err)
	}
	return nil
}
