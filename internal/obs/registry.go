package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"coremap/internal/cmerr"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op, so instrumented code never has
// to guard on "is telemetry enabled".
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (a level, not a total).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a process-wide, get-or-create metrics registry. Metric
// handles are cheap to look up and safe to cache; all mutation paths are
// lock-free atomics. A nil *Registry hands out nil metric handles, which
// are themselves no-ops, so instrumentation is unconditional.
type Registry struct {
	mu         sync.Mutex
	counter    map[string]*Counter       // guarded by mu
	gauge      map[string]*Gauge         // guarded by mu
	hist       map[string]*Histogram     // guarded by mu
	funcs      map[string][]func() int64 // guarded by mu
	funcOwners map[funcOwnerKey]bool     // guarded by mu
	vecs       map[string]*vecFamily     // guarded by mu
	vecErrs    atomic.Int64              // labeled-metric misuse count; surfaced as obs/vec_errors
}

// funcOwnerKey identifies one gauge-func registration for duplicate
// detection: the metric name plus the registering component.
type funcOwnerKey struct {
	name  string
	owner any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counter:    make(map[string]*Counter),
		gauge:      make(map[string]*Gauge),
		hist:       make(map[string]*Histogram),
		funcs:      make(map[string][]func() int64),
		funcOwners: make(map[funcOwnerKey]bool),
		vecs:       make(map[string]*vecFamily),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Nil on a nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counter[name]
	if !ok {
		c = &Counter{}
		r.counter[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// Nil on a nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauge[name]
	if !ok {
		g = &Gauge{}
		r.gauge[name] = g
	}
	return g
}

// Histogram returns the log-bucketed histogram registered under name,
// creating it if needed. All histograms share one fixed bucket table (see
// hist.go), so no per-metric bounds are configured and snapshots merge
// exactly. Nil on a nil receiver.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hist[name]
	if !ok {
		h = newHistogram()
		r.hist[name] = h
	}
	return h
}

// GaugeFunc registers fn as a lazily-read gauge under name. Registering
// several functions under one name is additive: the snapshot value is
// their sum. That lets every instance of a component (e.g. each
// faulty.Host, or the two memo groups behind a probe cache) register under
// the same stable name without coordination.
//
// owner identifies the registering component (typically its pointer; it
// must be comparable). Registering the same (name, owner) pair twice is
// the double-count bug additive registration used to hide — it now
// returns a Permanent error and leaves the registry unchanged. A nil
// owner opts out of duplicate detection for closures with no natural
// identity. No-op (nil error) on a nil receiver or nil fn.
func (r *Registry) GaugeFunc(name string, owner any, fn func() int64) error {
	if r == nil || fn == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if owner != nil {
		k := funcOwnerKey{name: name, owner: owner}
		if r.funcOwners[k] {
			return cmerr.New(cmerr.Permanent, "obs",
				"duplicate gauge-func registration for %q by %T: same owner would double-count in snapshots", name, owner)
		}
		r.funcOwners[k] = true
	}
	r.funcs[name] = append(r.funcs[name], fn)
	return nil
}

// Snapshot is a point-in-time copy of every metric in a Registry. Gauge
// functions are evaluated at snapshot time and merged (additively) into
// Gauges. Map keys serialize in sorted order, so two snapshots of equal
// state encode to identical JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// sortedKeys returns m's keys in ascending order, so map-driven effect
// sequences stay deterministic (the detrange analyzer enforces this).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot captures the current value of every registered metric,
// including every series of every labeled family (keyed
// name{k1="v1",k2="v2"} with keys in registration order, so two
// snapshots of equal state encode identically). On a nil receiver it
// returns an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counter) {
		s.Counters[name] = r.counter[name].Value()
	}
	for _, name := range sortedKeys(r.gauge) {
		s.Gauges[name] = r.gauge[name].Value()
	}
	for _, name := range sortedKeys(r.funcs) {
		var sum int64
		for _, fn := range r.funcs[name] {
			sum += fn()
		}
		s.Gauges[name] += sum
	}
	if len(r.hist) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hist))
		for _, name := range sortedKeys(r.hist) {
			s.Histograms[name] = r.hist[name].snapshot()
		}
	}
	for _, name := range sortedKeys(r.vecs) {
		f := r.vecs[name]
		f.eachSeries(func(full string, vs *vecSeries) {
			switch f.kind {
			case vecCounter:
				s.Counters[full] = vs.c.Value()
			case vecGauge:
				s.Gauges[full] = vs.g.Value()
			case vecHist:
				if s.Histograms == nil {
					s.Histograms = make(map[string]HistogramSnapshot)
				}
				s.Histograms[full] = vs.h.snapshot()
			}
		})
	}
	if n := r.vecErrs.Load(); n > 0 {
		s.Counters["obs/vec_errors"] = n
	}
	return s
}

// Sub returns the delta s minus earlier, in the spirit of memo.Stats.Sub:
// counters and histogram counts subtract; gauges keep the later value
// (they are levels, not totals). Metrics absent from earlier pass through
// unchanged.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	d := Snapshot{
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - earlier.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			e, ok := earlier.Histograms[name]
			if !ok {
				d.Histograms[name] = h
				continue
			}
			d.Histograms[name] = subHist(h, e)
		}
	}
	return d
}

// Total sums every counter whose name starts with prefix.
func (s Snapshot) Total(prefix string) int64 {
	var sum int64
	for name, v := range s.Counters {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			sum += v
		}
	}
	return sum
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
// encoding/json sorts map keys, so the output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	return nil
}
