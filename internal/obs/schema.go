package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"coremap/internal/cmerr"
)

// ValidateTrace checks that r holds a well-formed JSONL span trace as
// written by the -trace flag: one SpanRecord object per line, no unknown
// fields, positive IDs, no self-parenting, non-empty names, non-negative
// times, and well-formed attributes. It is the schema check CI runs
// against the artifacts a -quick experiments run emits.
func ValidateTrace(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if dec.More() {
			return cmerr.New(cmerr.Permanent, "obs", "trace line %d: trailing data after span object", line)
		}
		if err := validateSpan(rec); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: read trace: %w", err)
	}
	return nil
}

func validateSpan(rec SpanRecord) error {
	if rec.ID <= 0 {
		return fmt.Errorf("span id %d, want > 0", rec.ID)
	}
	if rec.Parent < 0 {
		return fmt.Errorf("span %d: negative parent %d", rec.ID, rec.Parent)
	}
	if rec.Parent == rec.ID {
		return fmt.Errorf("span %d is its own parent", rec.ID)
	}
	if rec.Name == "" {
		return fmt.Errorf("span %d: empty name", rec.ID)
	}
	if rec.StartUS < 0 || rec.DurUS < 0 {
		return fmt.Errorf("span %d: negative time (start %d us, dur %d us)", rec.ID, rec.StartUS, rec.DurUS)
	}
	for i, a := range rec.Attrs {
		if a.Key == "" {
			return fmt.Errorf("span %d: attr %d has empty key", rec.ID, i)
		}
	}
	return nil
}

// ValidateMetrics checks that r holds a well-formed metrics snapshot as
// written by the -metrics-out flag: a single Snapshot object with no
// unknown fields, both metric maps present, and internally consistent
// histograms (counts length matches bounds, totals reconcile, bounds
// strictly increasing).
func ValidateMetrics(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var snap Snapshot
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("obs: decode metrics: %w", err)
	}
	if dec.More() {
		return cmerr.New(cmerr.Permanent, "obs", "metrics: trailing data after snapshot object")
	}
	if snap.Counters == nil {
		return cmerr.New(cmerr.Permanent, "obs", "metrics: missing counters map")
	}
	if snap.Gauges == nil {
		return cmerr.New(cmerr.Permanent, "obs", "metrics: missing gauges map")
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		if len(h.Counts) != len(h.Bounds)+1 {
			return cmerr.New(cmerr.Permanent, "obs", "metrics: histogram %q: %d counts for %d bounds, want %d",
				name, len(h.Counts), len(h.Bounds), len(h.Bounds)+1)
		}
		var total int64
		for _, c := range h.Counts {
			if c < 0 {
				return cmerr.New(cmerr.Permanent, "obs", "metrics: histogram %q: negative bucket count", name)
			}
			total += c
		}
		if total != h.Count {
			return cmerr.New(cmerr.Permanent, "obs", "metrics: histogram %q: bucket sum %d != count %d", name, total, h.Count)
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return cmerr.New(cmerr.Permanent, "obs", "metrics: histogram %q: bounds not strictly increasing at %d", name, i)
			}
		}
	}
	return nil
}
