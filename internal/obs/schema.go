package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"coremap/internal/cmerr"
)

// ValidateTrace checks that r holds a well-formed JSONL span trace as
// written by the -trace flag: one SpanRecord object per line, no unknown
// fields, positive IDs, no self-parenting, non-empty names, non-negative
// times, and well-formed attributes. It is the schema check CI runs
// against the artifacts a -quick experiments run emits.
func ValidateTrace(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if dec.More() {
			return cmerr.New(cmerr.Permanent, "obs", "trace line %d: trailing data after span object", line)
		}
		if err := validateSpan(rec); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: read trace: %w", err)
	}
	return nil
}

func validateSpan(rec SpanRecord) error {
	if rec.ID <= 0 {
		return fmt.Errorf("span id %d, want > 0", rec.ID)
	}
	if rec.Parent < 0 {
		return fmt.Errorf("span %d: negative parent %d", rec.ID, rec.Parent)
	}
	if rec.Parent == rec.ID {
		return fmt.Errorf("span %d is its own parent", rec.ID)
	}
	if rec.Name == "" {
		return fmt.Errorf("span %d: empty name", rec.ID)
	}
	if rec.StartUS < 0 || rec.DurUS < 0 {
		return fmt.Errorf("span %d: negative time (start %d us, dur %d us)", rec.ID, rec.StartUS, rec.DurUS)
	}
	if rec.Kind != "" && rec.Kind != "event" {
		return fmt.Errorf("span %d: unknown kind %q", rec.ID, rec.Kind)
	}
	if rec.Kind == "event" && rec.DurUS != 0 {
		return fmt.Errorf("span %d: event with non-zero duration %d us", rec.ID, rec.DurUS)
	}
	if rec.ErrInfo != nil {
		if rec.Err == "" {
			return fmt.Errorf("span %d: err_info without err class", rec.ID)
		}
		if rec.ErrInfo.Class != rec.Err {
			return fmt.Errorf("span %d: err_info class %q != err %q", rec.ID, rec.ErrInfo.Class, rec.Err)
		}
		if rec.ErrInfo.CPU < -1 || rec.ErrInfo.CHA < -1 {
			return fmt.Errorf("span %d: err_info coordinates below -1", rec.ID)
		}
	}
	for i, a := range rec.Attrs {
		if a.Key == "" {
			return fmt.Errorf("span %d: attr %d has empty key", rec.ID, i)
		}
	}
	return nil
}

// ValidateMetrics checks that r holds a well-formed metrics snapshot as
// written by the -metrics-out flag: a single Snapshot object with no
// unknown fields, both metric maps present, and internally consistent
// log-bucketed histograms (buckets on the fixed table in strictly
// ascending index order, totals reconciling with Count, extrema and
// quantiles consistent with the buckets).
func ValidateMetrics(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var snap Snapshot
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("obs: decode metrics: %w", err)
	}
	if dec.More() {
		return cmerr.New(cmerr.Permanent, "obs", "metrics: trailing data after snapshot object")
	}
	if snap.Counters == nil {
		return cmerr.New(cmerr.Permanent, "obs", "metrics: missing counters map")
	}
	if snap.Gauges == nil {
		return cmerr.New(cmerr.Permanent, "obs", "metrics: missing gauges map")
	}
	for _, name := range sortedKeys(snap.Histograms) {
		if err := validateHistogram(snap.Histograms[name]); err != nil {
			return cmerr.New(cmerr.Permanent, "obs", "metrics: histogram %q: %v", name, err)
		}
	}
	return nil
}

// validateHistogram checks one HistogramSnapshot for internal
// consistency against the fixed log-bucket table.
func validateHistogram(h HistogramSnapshot) error {
	var total int64
	lastIdx := -1
	for _, b := range h.Buckets {
		if b.Idx <= lastIdx {
			return fmt.Errorf("bucket indexes not strictly increasing at %d", b.Idx)
		}
		if b.Idx >= histNumBuckets {
			return fmt.Errorf("bucket index %d outside the table", b.Idx)
		}
		if b.UB != bucketUB(b.Idx) {
			return fmt.Errorf("bucket %d: bound %d, want %d", b.Idx, b.UB, bucketUB(b.Idx))
		}
		if b.N <= 0 {
			return fmt.Errorf("bucket %d: non-positive count %d", b.Idx, b.N)
		}
		total += b.N
		lastIdx = b.Idx
	}
	if total != h.Count {
		return fmt.Errorf("bucket sum %d != count %d", total, h.Count)
	}
	if h.Count > 0 && h.Min > h.Max {
		return fmt.Errorf("min %d > max %d", h.Min, h.Max)
	}
	if h.P50 > h.P95 || h.P95 > h.P99 {
		return fmt.Errorf("quantiles not monotone: p50 %d, p95 %d, p99 %d", h.P50, h.P95, h.P99)
	}
	if want := h.Quantile(0.99); h.P99 != want {
		return fmt.Errorf("p99 %d does not match buckets (want %d)", h.P99, want)
	}
	return nil
}

// ValidateProm checks that r holds a well-formed Prometheus text
// exposition as served at /metrics: integer samples under a preceding
// TYPE line, and cumulative histogram series that reconcile. It is
// ParseProm with the parsed snapshot discarded.
func ValidateProm(r io.Reader) error {
	_, err := ParseProm(r)
	return err
}

// ValidateFlight checks that r holds a well-formed flight-recorder dump:
// a {"flight": header} first line, exactly one {"metrics": snapshot} line
// whose snapshot passes ValidateMetrics' structural checks, and
// {"span": record} lines that each pass the trace span checks. Trigger
// entries must reference a span id and carry an error class.
func ValidateFlight(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line, metricsLines := 0, 0
	sawHeader := false
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var rec struct {
			Flight  *FlightHeader `json:"flight"`
			Metrics *Snapshot     `json:"metrics"`
			Span    *SpanRecord   `json:"span"`
		}
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("obs: flight line %d: %w", line, err)
		}
		switch {
		case rec.Flight != nil:
			if sawHeader || line != 1 {
				return cmerr.New(cmerr.Permanent, "obs", "flight line %d: header not first", line)
			}
			sawHeader = true
			for i, tr := range rec.Flight.Triggers {
				if tr.Span <= 0 || tr.Err == "" {
					return cmerr.New(cmerr.Permanent, "obs", "flight: trigger %d malformed", i)
				}
			}
		case rec.Metrics != nil:
			metricsLines++
			for _, name := range sortedKeys(rec.Metrics.Histograms) {
				if err := validateHistogram(rec.Metrics.Histograms[name]); err != nil {
					return cmerr.New(cmerr.Permanent, "obs", "flight: histogram %q: %v", name, err)
				}
			}
		case rec.Span != nil:
			if err := validateSpan(*rec.Span); err != nil {
				return fmt.Errorf("obs: flight line %d: %w", line, err)
			}
		default:
			return cmerr.New(cmerr.Permanent, "obs", "flight line %d: unknown record", line)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: read flight dump: %w", err)
	}
	if !sawHeader {
		return cmerr.New(cmerr.Permanent, "obs", "flight: missing header line")
	}
	if metricsLines != 1 {
		return cmerr.New(cmerr.Permanent, "obs", "flight: %d metrics lines, want 1", metricsLines)
	}
	return nil
}
