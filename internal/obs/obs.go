// Package obs is the pipeline's unified telemetry layer: a process-wide
// metrics registry (counters, gauges, histograms), hierarchical span
// tracing with an optional JSONL sink, and an injected Clock that keeps
// instrumented code deterministic.
//
// The package is dependency-free (stdlib plus internal/cmerr for error
// classification) and every handle is nil-safe: with no Telemetry in the
// context, obs.Start returns a nil span whose methods are no-ops and
// RegistryFrom returns a nil registry whose metrics are no-ops. Stage
// code therefore instruments unconditionally; the cost without telemetry
// is one context lookup per span.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity is the span ring-buffer size when Config leaves
// TraceCapacity zero.
const DefaultTraceCapacity = 4096

// Config configures a Telemetry instance. The zero value is valid: fixed
// (zero-time) clock, default trace capacity, no sink.
type Config struct {
	// Clock is the time source for span timestamps. Nil means a fixed
	// clock stuck at the zero time: spans all get timestamp 0 and
	// duration 0, which is deterministic by construction. internal/cli
	// binds SystemClock; tests bind a FakeClock.
	Clock Clock

	// TraceCapacity bounds the in-memory span buffer; once full, the
	// oldest spans are dropped (and counted). Zero means
	// DefaultTraceCapacity; negative disables buffering entirely.
	TraceCapacity int

	// TraceSink, when non-nil, receives every finished span as one JSON
	// object per line, in End order. Writes happen under the tracer lock,
	// so the sink needs no synchronization of its own.
	TraceSink io.Writer

	// FlightCapacity bounds the flight recorder's per-stage span/event
	// retention. Zero means DefaultFlightCapacity; negative disables the
	// recorder entirely.
	FlightCapacity int
}

// Telemetry bundles a metrics registry, a span tracer and a clock. It is
// carried through the pipeline in a context (see With/From); a nil
// *Telemetry is inert.
type Telemetry struct {
	reg   *Registry
	clock Clock
	epoch time.Time
	tr    tracer
	fr    *flightRecorder
}

// New builds a Telemetry from cfg.
func New(cfg Config) *Telemetry {
	clock := cfg.Clock
	if clock == nil {
		clock = fixedClock{}
	}
	capacity := cfg.TraceCapacity
	if capacity == 0 {
		capacity = DefaultTraceCapacity
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Telemetry{
		reg:   NewRegistry(),
		clock: clock,
		epoch: clock.Now(),
		tr:    tracer{capacity: capacity, sink: cfg.TraceSink},
		fr:    newFlightRecorder(cfg.FlightCapacity),
	}
}

// record routes a finished span or event to the trace ring (and sink) and
// the flight recorder.
func (t *Telemetry) record(rec SpanRecord) {
	t.tr.record(rec)
	t.fr.record(rec)
}

// Registry returns the metrics registry; nil on a nil receiver.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Clock returns the configured clock. On a nil receiver it returns the
// fixed zero-time clock, so callers can always read it unconditionally.
func (t *Telemetry) Clock() Clock {
	if t == nil {
		return fixedClock{}
	}
	return t.clock
}

// Spans returns a copy of the buffered span records in completion order
// (oldest first). Nil-safe.
func (t *Telemetry) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	return t.tr.spans()
}

// Dropped reports how many finished spans were evicted from the buffer
// because it was full. Nil-safe.
func (t *Telemetry) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.tr.mu.Lock()
	defer t.tr.mu.Unlock()
	return t.tr.dropped
}

// SinkErr returns the first error the JSONL sink reported, if any.
// Span recording never fails the pipeline; the error surfaces here so
// the CLI can warn on close.
func (t *Telemetry) SinkErr() error {
	if t == nil {
		return nil
	}
	t.tr.mu.Lock()
	defer t.tr.mu.Unlock()
	return t.tr.sinkErr
}

type telemetryKey struct{}

type spanKey struct{}

// With returns a context carrying t. With(ctx, nil) returns ctx
// unchanged.
func With(ctx context.Context, t *Telemetry) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, telemetryKey{}, t)
}

// From returns the Telemetry carried by ctx, or nil.
func From(ctx context.Context) *Telemetry {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(telemetryKey{}).(*Telemetry)
	return t
}

// RegistryFrom returns the metrics registry carried by ctx, or nil. The
// nil registry hands out nil (no-op) metric handles, so the result is
// always safe to use.
func RegistryFrom(ctx context.Context) *Registry {
	return From(ctx).Registry()
}

// Attr is one span attribute: a key with an integer or string value.
type Attr struct {
	Key string `json:"k"`
	Int int64  `json:"v,omitempty"`
	Str string `json:"s,omitempty"`
}

// SpanRecord is the serialized form of a finished span or of an
// instantaneous event (Kind "event", zero duration). Times are
// microseconds since the Telemetry's epoch (the clock reading at New).
// ErrInfo carries the structured cmerr provenance of the recorded error,
// when it had any, so post-mortems can attribute a failure to an exact
// (stage, op, CPU, CHA) without re-parsing message strings.
type SpanRecord struct {
	ID      int64    `json:"id"`
	Parent  int64    `json:"parent,omitempty"`
	Name    string   `json:"name"`
	Kind    string   `json:"kind,omitempty"` // "" = span, "event" = instantaneous
	StartUS int64    `json:"start_us"`
	DurUS   int64    `json:"dur_us"`
	Err     string   `json:"err,omitempty"`
	ErrInfo *ErrInfo `json:"err_info,omitempty"`
	Attrs   []Attr   `json:"attrs,omitempty"`
}

// Span is one in-flight traced operation. A span belongs to the
// goroutine that started it: SetAttr and End are not synchronized. All
// methods are no-ops on a nil receiver.
type Span struct {
	t      *Telemetry
	id     int64
	parent int64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Start begins a span named name ("stage/op" by convention) under the
// Telemetry in ctx, parenting it to the span already in ctx if any. The
// returned context carries the new span; pass it to child operations so
// their spans nest. Without a Telemetry in ctx it returns (ctx, nil) —
// and the nil span's methods are no-ops.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := From(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent int64
	if ps, _ := ctx.Value(spanKey{}).(*Span); ps != nil {
		parent = ps.id
	}
	s := &Span{
		t:      t,
		id:     t.tr.nextID(),
		parent: parent,
		name:   name,
		start:  t.clock.Now(),
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr attaches an integer attribute. Returns s for chaining; no-op
// on nil.
func (s *Span) SetAttr(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
	return s
}

// SetAttrStr attaches a string attribute. Returns s for chaining; no-op
// on nil.
func (s *Span) SetAttrStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v})
	return s
}

// End finishes the span, recording its duration and the cmerr class of
// err ("transient", "permanent", "interrupted", "degraded", or
// "unclassified" for errors outside the taxonomy). Safe to call from a
// defer with the function's named error. Idempotent; no-op on nil.
func (s *Span) End(err error) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.t.clock.Now()
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.t.epoch).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Attrs:   s.attrs,
	}
	rec.Err, rec.ErrInfo = errClass(err)
	s.t.record(rec)
}

// Event records an instantaneous occurrence — typically a failure worth a
// post-mortem, like a probe experiment being dropped — under the
// Telemetry in ctx, parented to the current span. The event lands in the
// trace and in the flight recorder; err (which may be nil) is classified
// and its cmerr provenance captured exactly as for Span.End. No-op
// without a Telemetry in ctx.
func Event(ctx context.Context, name string, err error) {
	t := From(ctx)
	if t == nil {
		return
	}
	var parent int64
	if ps, _ := ctx.Value(spanKey{}).(*Span); ps != nil {
		parent = ps.id
	}
	rec := SpanRecord{
		ID:      t.tr.nextID(),
		Parent:  parent,
		Name:    name,
		Kind:    "event",
		StartUS: t.clock.Now().Sub(t.epoch).Microseconds(),
	}
	rec.Err, rec.ErrInfo = errClass(err)
	t.record(rec)
}

// tracer assigns span IDs and buffers finished spans. IDs are sequential
// in Start order; the buffer is a ring holding the most recent capacity
// records.
type tracer struct {
	mu       sync.Mutex
	lastID   int64        // guarded by mu
	buf      []SpanRecord // guarded by mu
	head     int          // index of the oldest record when the ring is full; guarded by mu
	capacity int          // set at construction, immutable afterwards
	dropped  int64        // guarded by mu
	sink     io.Writer    // set at construction, immutable afterwards
	sinkErr  error        // guarded by mu
}

func (tr *tracer) nextID() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.lastID++
	return tr.lastID
}

func (tr *tracer) record(rec SpanRecord) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.capacity > 0 {
		if len(tr.buf) < tr.capacity {
			tr.buf = append(tr.buf, rec)
		} else {
			tr.buf[tr.head] = rec
			tr.head = (tr.head + 1) % tr.capacity
			tr.dropped++
		}
	} else {
		tr.dropped++
	}
	if tr.sink != nil && tr.sinkErr == nil {
		b, err := json.Marshal(rec)
		if err == nil {
			b = append(b, '\n')
			_, err = tr.sink.Write(b)
		}
		if err != nil {
			tr.sinkErr = fmt.Errorf("obs: trace sink: %w", err)
		}
	}
}

func (tr *tracer) spans() []SpanRecord {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]SpanRecord, 0, len(tr.buf))
	out = append(out, tr.buf[tr.head:]...)
	out = append(out, tr.buf[:tr.head]...)
	return out
}
