package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// StageRow is one line of a RunReport: the rollup of every metric and
// span belonging to one pipeline stage (the first path segment of metric
// and span names, e.g. "probe" from "probe/experiments/planned").
type StageRow struct {
	Stage     string
	Spans     int           // finished spans in the stage
	Duration  time.Duration // sum over spans whose parent lies outside the stage
	Ops       int64         // stage-defining operation count (see opsOf)
	Retries   int64         // <stage>/retries
	CacheHits int64         // <stage>/cache/hits
	Coverage  float64       // <stage>/coverage_permille / 10; -1 when absent
}

// stageOrder pins the pipeline stages to their execution order; stages
// outside the list sort alphabetically after it.
var stageOrder = []string{"coremap", "host", "probe", "ilp", "locate", "covert", "experiments"}

func stageRank(stage string) int {
	for i, s := range stageOrder {
		if s == stage {
			return i
		}
	}
	return len(stageOrder)
}

func stageOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// opsOf picks the operation count that best characterizes a stage's
// workload: planned experiments for probe, explored nodes for the ILP,
// and so on. The default is the sum of the stage's "<stage>/ops/*"
// counters (how hostif counts per-op), falling back to zero.
func opsOf(stage string, snap Snapshot) int64 {
	alias := map[string]string{
		"probe":       "probe/experiments/planned",
		"ilp":         "ilp/nodes",
		"locate":      "locate/reconstructs",
		"covert":      "covert/samples",
		"experiments": "experiments/surveys",
	}
	if name, ok := alias[stage]; ok {
		if v, ok := snap.Counters[name]; ok {
			return v
		}
	}
	return snap.Total(stage + "/ops/")
}

// BuildReport rolls a metrics snapshot and a span buffer up into
// per-stage rows, ordered by pipeline position. A stage appears if any
// metric or span mentions it. Stage duration sums only spans whose
// parent is outside the stage, so nested same-stage spans are not
// double-counted.
func BuildReport(snap Snapshot, spans []SpanRecord) []StageRow {
	stages := make(map[string]*StageRow)
	row := func(stage string) *StageRow {
		r, ok := stages[stage]
		if !ok {
			r = &StageRow{Stage: stage, Coverage: -1}
			stages[stage] = r
		}
		return r
	}

	for _, name := range sortedKeys(snap.Counters) {
		row(stageOf(name))
	}
	for _, name := range sortedKeys(snap.Gauges) {
		row(stageOf(name))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		row(stageOf(name))
	}

	spanStage := make(map[int64]string, len(spans))
	for _, s := range spans {
		spanStage[s.ID] = stageOf(s.Name)
	}
	for _, s := range spans {
		stage := stageOf(s.Name)
		r := row(stage)
		r.Spans++
		if parent, ok := spanStage[s.Parent]; !ok || parent != stage {
			r.Duration += time.Duration(s.DurUS) * time.Microsecond
		}
	}

	for _, stage := range sortedKeys(stages) {
		r := stages[stage]
		r.Ops = opsOf(stage, snap)
		r.Retries = snap.Counters[stage+"/retries"]
		r.CacheHits = snap.Gauges[stage+"/cache/hits"]
		if permille, ok := snap.Gauges[stage+"/coverage_permille"]; ok {
			r.Coverage = float64(permille) / 10
		}
	}

	out := make([]StageRow, 0, len(stages))
	for _, r := range stages {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := stageRank(out[i].Stage), stageRank(out[j].Stage)
		if ri != rj {
			return ri < rj
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// WriteReport formats the rows as an aligned human-readable table.
func WriteReport(w io.Writer, rows []StageRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tspans\tduration\tops\tretries\tcache-hits\tcoverage")
	for _, r := range rows {
		cov := "-"
		if r.Coverage >= 0 {
			cov = fmt.Sprintf("%.1f%%", r.Coverage)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			r.Stage, r.Spans, r.Duration.Round(time.Microsecond),
			dashZero(r.Ops), dashZero(r.Retries), dashZero(r.CacheHits), cov)
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	return nil
}

func dashZero(v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// Report is a convenience wrapper: snapshot the telemetry, build the
// rows, and write the table. Nil-safe; a nil Telemetry writes an empty
// table header only.
func (t *Telemetry) Report(w io.Writer) error {
	return WriteReport(w, BuildReport(t.Registry().Snapshot(), t.Spans()))
}
