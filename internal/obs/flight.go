package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"coremap/internal/cmerr"
)

// The flight recorder is the run's black box: a bounded per-stage ring of
// the most recent finished spans and events. The main trace ring is
// global, so a noisy stage (thousands of probe experiments) evicts the
// few spans of the stage that actually failed long before a post-mortem
// reads them; per-stage rings keep the last N records of *every* stage.
// When a run ends Degraded or Interrupted, or any span ends with a
// Permanent error, WriteFlight dumps the rings plus a metric snapshot and
// the cmerr provenance of the triggering errors as JSONL.

// DefaultFlightCapacity is the per-stage record retention when Config
// leaves FlightCapacity zero.
const DefaultFlightCapacity = 64

// maxFlightTriggers bounds the recorded trigger list; the first failures
// are the diagnostic ones.
const maxFlightTriggers = 32

// ErrInfo is the structured cmerr provenance of an error: its class plus
// the (stage, op, CPU, CHA, MSR) coordinates cmerr carries, so a flight
// dump attributes a failure to an exact location on the part. CPU and CHA
// are -1 when not applicable, mirroring cmerr.Error.
type ErrInfo struct {
	Class string `json:"class"`
	Stage string `json:"stage,omitempty"`
	Op    string `json:"op,omitempty"`
	CPU   int    `json:"cpu"`
	CHA   int    `json:"cha"`
	MSR   uint64 `json:"msr,omitempty"`
	Msg   string `json:"msg,omitempty"`
}

// errClass returns the class string recorded on spans ("" for a nil
// error) and, when err carries cmerr provenance, its structured form.
func errClass(err error) (string, *ErrInfo) {
	if err == nil {
		return "", nil
	}
	class := "unclassified"
	if cls := cmerr.ClassOf(err); cls != nil {
		class = cls.Error()
	}
	var ce *cmerr.Error
	if !errors.As(err, &ce) {
		return class, nil
	}
	return class, &ErrInfo{
		Class: class,
		Stage: ce.Stage,
		Op:    ce.Op,
		CPU:   ce.CPU,
		CHA:   ce.CHA,
		MSR:   ce.MSR,
		Msg:   err.Error(),
	}
}

// flightTriggering reports whether a span ending with this class should
// arm the flight recorder: permanent failures and degraded or interrupted
// endings are post-mortem-worthy; transient errors are retried and
// absorbed upstream.
func flightTriggering(class string) bool {
	switch class {
	case cmerr.Permanent.Error(), cmerr.Degraded.Error(), cmerr.Interrupted.Error():
		return true
	}
	return false
}

// FlightTrigger is one error that armed the flight recorder.
type FlightTrigger struct {
	Span int64    `json:"span"`
	Name string   `json:"name"`
	Err  string   `json:"err"`
	Info *ErrInfo `json:"info,omitempty"`
}

// FlightHeader is the first line of a flight dump: why it was written and
// which failures armed the recorder.
type FlightHeader struct {
	Capacity int             `json:"capacity"`
	RunErr   string          `json:"run_err,omitempty"`
	Reason   *ErrInfo        `json:"reason,omitempty"`
	Triggers []FlightTrigger `json:"triggers,omitempty"`
}

type flightRing struct {
	buf  []SpanRecord
	head int // index of the oldest record once the ring has wrapped
}

func (r *flightRing) add(rec SpanRecord, capacity int) {
	if len(r.buf) < capacity {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.head] = rec
	r.head = (r.head + 1) % capacity
}

func (r *flightRing) records() []SpanRecord {
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// flightRecorder retains the last capacity records per stage and the
// first triggering errors.
type flightRecorder struct {
	capacity int // set at construction, immutable afterwards

	mu       sync.Mutex
	stages   map[string]*flightRing // guarded by mu
	triggers []FlightTrigger        // guarded by mu
}

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity == 0 {
		capacity = DefaultFlightCapacity
	}
	if capacity < 0 {
		return nil
	}
	return &flightRecorder{capacity: capacity, stages: make(map[string]*flightRing)}
}

func (fr *flightRecorder) record(rec SpanRecord) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	stage := stageOf(rec.Name)
	ring, ok := fr.stages[stage]
	if !ok {
		ring = &flightRing{}
		fr.stages[stage] = ring
	}
	ring.add(rec, fr.capacity)
	if flightTriggering(rec.Err) && len(fr.triggers) < maxFlightTriggers {
		fr.triggers = append(fr.triggers, FlightTrigger{
			Span: rec.ID, Name: rec.Name, Err: rec.Err, Info: rec.ErrInfo,
		})
	}
}

func (fr *flightRecorder) triggered() bool {
	if fr == nil {
		return false
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.triggers) > 0
}

// FlightTriggered reports whether any recorded span or event ended with a
// Permanent, Degraded or Interrupted error — i.e. whether a post-mortem
// dump would have something to explain. Nil-safe.
func (t *Telemetry) FlightTriggered() bool {
	if t == nil {
		return false
	}
	return t.fr.triggered()
}

// WriteFlight writes the post-mortem JSONL dump: a FlightHeader line
// (wrapped as {"flight": ...}) carrying runErr's class and provenance
// plus the recorded triggers, one {"metrics": ...} snapshot line, then
// one {"span": ...} line per retained record, grouped by stage in sorted
// order and oldest-first within a stage. Nil-safe; with the flight
// recorder disabled it writes a header and metrics only.
func (t *Telemetry) WriteFlight(w io.Writer, runErr error) error {
	if t == nil {
		return nil
	}
	hdr := FlightHeader{}
	var stages []string
	rings := make(map[string][]SpanRecord)
	if t.fr != nil {
		hdr.Capacity = t.fr.capacity
		t.fr.mu.Lock()
		hdr.Triggers = append([]FlightTrigger(nil), t.fr.triggers...)
		stages = sortedKeys(t.fr.stages)
		for _, stage := range stages {
			rings[stage] = t.fr.stages[stage].records()
		}
		t.fr.mu.Unlock()
	}
	hdr.RunErr, hdr.Reason = errClass(runErr)
	if hdr.Reason == nil && len(hdr.Triggers) > 0 {
		hdr.Reason = hdr.Triggers[0].Info
	}
	sort.Strings(stages)

	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]FlightHeader{"flight": hdr}); err != nil {
		return fmt.Errorf("obs: write flight header: %w", err)
	}
	if err := enc.Encode(map[string]Snapshot{"metrics": t.Registry().Snapshot()}); err != nil {
		return fmt.Errorf("obs: write flight metrics: %w", err)
	}
	for _, stage := range stages {
		for _, rec := range rings[stage] {
			if err := enc.Encode(map[string]SpanRecord{"span": rec}); err != nil {
				return fmt.Errorf("obs: write flight span: %w", err)
			}
		}
	}
	return nil
}
