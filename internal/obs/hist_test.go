package obs

import (
	"math"
	"reflect"
	"testing"
)

// TestBucketTableInvariants pins the bucket-boundary functions to each
// other: bounds strictly increase, every bound maps back to its own
// bucket, and the table covers the full non-negative int64 range.
func TestBucketTableInvariants(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histNumBuckets; i++ {
		ub := bucketUB(i)
		if ub <= prev {
			t.Fatalf("bucketUB(%d) = %d, not above bucketUB(%d) = %d", i, ub, i-1, prev)
		}
		if got := bucketIdx(ub); got != i {
			t.Fatalf("bucketIdx(bucketUB(%d)) = %d, want %d", i, got, i)
		}
		prev = ub
	}
	if got := bucketIdx(0); got != 0 {
		t.Fatalf("bucketIdx(0) = %d, want 0", got)
	}
	if got := bucketIdx(-5); got != 0 {
		t.Fatalf("bucketIdx(-5) = %d, want 0 (negatives clamp)", got)
	}
	if got := bucketIdx(math.MaxInt64); got != histNumBuckets-1 {
		t.Fatalf("bucketIdx(MaxInt64) = %d, want %d", got, histNumBuckets-1)
	}
	if got := bucketUB(histNumBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("bucketUB(last) = %d, want MaxInt64", got)
	}
}

// histFrom builds a snapshot from a fixed observation list.
func histFrom(obsv ...int64) HistogramSnapshot {
	h := newHistogram()
	for _, v := range obsv {
		h.Observe(v)
	}
	return h.snapshot()
}

// TestHistogramMergeAssociative is the fleet roll-up guarantee: because
// every histogram shares one fixed bucket table, Merge is exact bucket-wise
// addition, so per-worker snapshots combine associatively and
// commutatively — the roll-up order across workers cannot change the
// result.
func TestHistogramMergeAssociative(t *testing.T) {
	a := histFrom(1, 2, 3, 900, 901)
	b := histFrom(7, 7, 7, 1<<20)
	c := histFrom(0, 5000, 123456789)

	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}
	if !reflect.DeepEqual(a.Merge(b), b.Merge(a)) {
		t.Fatal("merge not commutative")
	}

	all := histFrom(1, 2, 3, 900, 901, 7, 7, 7, 1<<20, 0, 5000, 123456789)
	if !reflect.DeepEqual(left, all) {
		t.Fatalf("merged snapshot differs from single-histogram snapshot:\nmerged = %+v\ndirect = %+v", left, all)
	}
}

func TestHistogramMergeEmptyIdentity(t *testing.T) {
	a := histFrom(10, 20, 30)
	var empty HistogramSnapshot
	if got := a.Merge(empty); !reflect.DeepEqual(got, a) {
		t.Fatalf("a.Merge(empty) = %+v, want a = %+v", got, a)
	}
	if got := empty.Merge(a); !reflect.DeepEqual(got, a) {
		t.Fatalf("empty.Merge(a) = %+v, want a = %+v", got, a)
	}
}

func TestQuantileRelativeErrorBound(t *testing.T) {
	// The quantile estimate is the upper bound of the rank bucket, so it
	// is never below the true value and overshoots by at most one
	// sub-bucket width (12.5% relative).
	for _, v := range []int64{1, 9, 100, 1023, 1 << 30} {
		s := histFrom(v)
		q := s.Quantile(0.5)
		if q < v {
			t.Fatalf("Quantile below true value: %d < %d", q, v)
		}
		if float64(q-v) > 0.125*float64(v)+1 {
			t.Fatalf("Quantile(0.5) of {%d} = %d, beyond 12.5%% relative error", v, q)
		}
	}
}
