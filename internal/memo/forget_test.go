package memo

import "testing"

// Forget is how the pipeline keeps interrupted and degraded results out
// of the cache: the computing goroutine drops its own entry so the next
// caller recomputes instead of inheriting a partial result.
func TestForgetForcesRecompute(t *testing.T) {
	g := NewGroup()
	calls := 0
	compute := func() (any, error) { calls++; return calls, nil }

	if v, _ := g.Do(key(7), compute); v.(int) != 1 {
		t.Fatalf("first Do = %v, want 1", v)
	}
	g.Forget(key(7))
	if g.Len() != 0 {
		t.Fatalf("Len = %d after Forget, want 0", g.Len())
	}
	if v, _ := g.Do(key(7), compute); v.(int) != 2 {
		t.Fatalf("Do after Forget = %v, want a recompute", v)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}

	// Forgetting a key that was never cached (or already forgotten) is a
	// no-op, not a panic.
	g.Forget(key(8))
	g.Forget(key(7))
	g.Forget(key(7))
	if g.Len() != 0 {
		t.Fatalf("Len = %d, want 0", g.Len())
	}
}
