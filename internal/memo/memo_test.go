package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	k[31] = b
	return k
}

func TestDoCachesValuesAndErrors(t *testing.T) {
	g := NewGroup()
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := g.Do(key(1), func() (any, error) { calls++; return 42, nil })
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	wantErr := errors.New("deterministic failure")
	for i := 0; i < 2; i++ {
		_, err := g.Do(key(2), func() (any, error) { calls++; return nil, wantErr })
		if !errors.Is(err, wantErr) {
			t.Fatalf("Do err = %v, want %v", err, wantErr)
		}
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times total, want 2 (errors are cached)", calls)
	}
	st := g.Stats()
	if st.Misses != 2 || st.Hits != 3 {
		t.Fatalf("stats = %+v, want 2 misses / 3 hits", st)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestDoSingleFlight(t *testing.T) {
	g := NewGroup()
	const goroutines = 16
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do(key(7), func() (any, error) {
				computes.Add(1)
				once.Do(func() { close(started) })
				<-release
				return 99, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for i, r := range results {
		if r != 99 {
			t.Fatalf("goroutine %d got %d, want 99", i, r)
		}
	}
	st := g.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss", st)
	}
	if st.Hits+st.Coalesced != goroutines-1 {
		t.Fatalf("stats = %+v, want hits+coalesced = %d", st, goroutines-1)
	}
}

func TestDoPanicDoesNotPoison(t *testing.T) {
	g := NewGroup()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic was swallowed")
			}
		}()
		g.Do(key(3), func() (any, error) { panic("boom") })
	}()
	// The key must be retryable after a panic.
	v, err := g.Do(key(3), func() (any, error) { return "ok", nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry after panic = %v, %v", v, err)
	}
}

func TestStatsSub(t *testing.T) {
	g := NewGroup()
	before := g.Stats()
	g.Do(key(9), func() (any, error) { return 1, nil })
	g.Do(key(9), func() (any, error) { return 1, nil })
	d := g.Stats().Sub(before)
	if d.Misses != 1 || d.Hits != 1 || d.Total() != 2 {
		t.Fatalf("delta = %+v, want 1 miss / 1 hit", d)
	}
}

func TestShardDistribution(t *testing.T) {
	// Keys differing only in later bytes must still be distinct entries.
	g := NewGroup()
	for i := 0; i < 100; i++ {
		i := i
		var k Key
		k[0] = byte(i % 3) // deliberately collide shards
		k[20] = byte(i)
		if _, err := g.Do(k, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 100 {
		t.Fatalf("Len = %d, want 100 distinct entries", g.Len())
	}
	if fmt.Sprint(key(1)) == fmt.Sprint(key(2)) {
		t.Fatal("Key.String does not distinguish keys")
	}
}
