package memo

import "coremap/internal/obs"

// Register wires the group's hit/miss/coalesced counters into reg as
// lazily-read gauges named prefix/hits, prefix/misses and
// prefix/coalesced. Registration is additive: several groups may share a
// prefix (the probe cache registers its two layers under one name) and
// the snapshot shows their sum. No-op on a nil group or registry.
func (g *Group) Register(reg *obs.Registry, prefix string) {
	if g == nil || reg == nil {
		return
	}
	reg.GaugeFunc(prefix+"/hits", g.hits.Load)
	reg.GaugeFunc(prefix+"/misses", g.misses.Load)
	reg.GaugeFunc(prefix+"/coalesced", g.coalesce.Load)
}
