package memo

import "coremap/internal/obs"

// Register wires the group's hit/miss/coalesced counters into reg as
// lazily-read gauges named prefix/hits, prefix/misses and
// prefix/coalesced. Registration is additive: several groups may share a
// prefix (the probe cache registers its two layers under one name) and
// the snapshot shows their sum — but registering the *same* group twice
// under one prefix would double-count, so the registry rejects it and the
// error surfaces here. No-op on a nil group or registry.
func (g *Group) Register(reg *obs.Registry, prefix string) error {
	if g == nil || reg == nil {
		return nil
	}
	if err := reg.GaugeFunc(prefix+"/hits", g, g.hits.Load); err != nil {
		return err
	}
	if err := reg.GaugeFunc(prefix+"/misses", g, g.misses.Load); err != nil {
		return err
	}
	return reg.GaugeFunc(prefix+"/coalesced", g, g.coalesce.Load)
}
