// Package memo provides a concurrency-safe, content-addressed result
// cache: a sharded map keyed by fixed-size content digests, with
// single-flight deduplication so N goroutines that miss on the same key
// concurrently trigger exactly one computation and share its result.
//
// It is the machinery behind the reconstruction cache in internal/locate
// and the measurement cache in internal/probe. Both layers exist because
// survey workloads are dominated by redundant work: the paper's Table II
// shows each Xeon SKU exhibits only a handful of distinct core-location
// patterns across 100 instances, so most per-instance solves recompute a
// result some other instance already produced.
package memo

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Key is a content digest (callers typically use sha256 over a canonical
// encoding of the computation's inputs).
type Key [32]byte

// String renders the leading bytes of the digest for logs and errors.
func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// Stats is a snapshot of a group's counters.
type Stats struct {
	// Hits counts lookups answered from a completed entry.
	Hits int64
	// Misses counts lookups that ran the computation.
	Misses int64
	// Coalesced counts lookups that found the computation already in
	// flight and waited for it instead of recomputing.
	Coalesced int64
}

// Sub returns the counter deltas since an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Hits:      s.Hits - earlier.Hits,
		Misses:    s.Misses - earlier.Misses,
		Coalesced: s.Coalesced - earlier.Coalesced,
	}
}

// Total returns the total number of lookups the snapshot covers.
func (s Stats) Total() int64 { return s.Hits + s.Misses + s.Coalesced }

// entry is one cached (or in-flight) computation. done is closed exactly
// once, after val/err are set; afterwards both are immutable.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// shardCount spreads lock contention; keys are digests, so the first key
// byte is uniformly distributed.
const shardCount = 32

type shard struct {
	mu sync.Mutex
	m  map[Key]*entry // guarded by mu
}

// Group is a sharded single-flight cache. The zero value is not usable;
// call NewGroup.
type Group struct {
	shards                 [shardCount]shard
	hits, misses, coalesce atomic.Int64
}

// NewGroup returns an empty cache.
func NewGroup() *Group {
	g := &Group{}
	for i := range g.shards {
		g.shards[i].m = make(map[Key]*entry)
	}
	return g
}

// Do returns the cached result for key, running compute on a miss. When
// several goroutines miss on the same key concurrently, exactly one runs
// compute; the rest block until it finishes and share its result (errors
// included — computations here are deterministic functions of the key's
// content, so an error is as cacheable as a value). The returned value is
// the cached object itself: callers that hand it out must clone anything
// mutable.
func (g *Group) Do(key Key, compute func() (any, error)) (any, error) {
	sh := &g.shards[key[0]%shardCount]
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
			g.hits.Add(1)
		default:
			g.coalesce.Add(1)
			<-e.done
		}
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()
	g.misses.Add(1)

	defer func() {
		if r := recover(); r != nil {
			// Never leave waiters blocked on a panicked computation:
			// publish the failure, drop the poisoned entry, re-panic.
			e.err = fmt.Errorf("memo: computation for %v panicked: %v", key, r)
			close(e.done)
			sh.mu.Lock()
			delete(sh.m, key)
			sh.mu.Unlock()
			panic(r)
		}
	}()
	e.val, e.err = compute()
	close(e.done)
	return e.val, e.err
}

// Forget drops the cached entry for key, if any. Callers use it to keep
// non-reusable outcomes out of the cache: a computation that was cancelled
// mid-flight or produced a partial (degraded) result is a property of that
// particular run, not of the key's content, so replaying it to later
// callers would be wrong. An in-flight entry is forgotten too — current
// waiters still receive its outcome, but later lookups recompute.
func (g *Group) Forget(key Key) {
	sh := &g.shards[key[0]%shardCount]
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// Len returns the number of cached entries (in-flight ones included).
func (g *Group) Len() int {
	n := 0
	for i := range g.shards {
		g.shards[i].mu.Lock()
		n += len(g.shards[i].m)
		g.shards[i].mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters.
func (g *Group) Stats() Stats {
	return Stats{Hits: g.hits.Load(), Misses: g.misses.Load(), Coalesced: g.coalesce.Load()}
}
