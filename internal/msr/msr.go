// Package msr provides a simulated model-specific-register (MSR) address
// space in the style of the Linux /dev/cpu/*/msr interface.
//
// A Space maps MSR addresses to read/write handlers. The machine layer
// registers handlers for the registers a simulated Xeon exposes — PPIN,
// per-CHA uncore-PMON blocks, thermal sensors — and the probing code
// accesses them exclusively through Read/Write, exactly as the real tool
// would through rdmsr/wrmsr. Accessing an unimplemented address fails the
// same way a faulting RDMSR surfaces as EIO on Linux.
package msr

import (
	"errors"
	"fmt"
)

// Addr is an MSR address.
type Addr uint32

// Architectural and Xeon-specific MSR addresses used by the mapping tool.
// The numeric values follow the Intel SDM / Xeon Scalable uncore manual so
// that the probe code reads like its real-hardware counterpart.
const (
	// AddrPPINCtl gates access to the protected processor inventory
	// number. Bit 1 must be set before PPIN reads succeed.
	AddrPPINCtl Addr = 0x4E
	// AddrPPIN is the protected processor inventory number uniquely
	// identifying the CPU chip instance.
	AddrPPIN Addr = 0x4F
	// AddrIA32ThermStatus holds the per-core digital temperature readout
	// (degrees below TjMax, bits 22:16, valid bit 31).
	AddrIA32ThermStatus Addr = 0x19C
	// AddrTemperatureTarget holds TjMax in bits 23:16.
	AddrTemperatureTarget Addr = 0x1A2
)

// Uncore CHA performance-monitoring block layout (Skylake-SP style): CHA n
// occupies ChaStride consecutive addresses starting at ChaBase+n*ChaStride.
const (
	ChaBase   Addr = 0x0E00
	ChaStride Addr = 0x10

	// Offsets within one CHA block.
	ChaOffUnitCtl Addr = 0x0 // box-level control (freeze/reset)
	ChaOffCtl0    Addr = 0x1 // event select 0..3
	ChaOffFilter0 Addr = 0x5
	ChaOffFilter1 Addr = 0x6
	ChaOffStatus  Addr = 0x7
	ChaOffCtr0    Addr = 0x8 // counter 0..3
)

// ChaCounters is the number of general-purpose counters per CHA box.
const ChaCounters = 4

// ChaMSR returns the address of a register in CHA cha's PMON block.
func ChaMSR(cha int, off Addr) Addr {
	if cha < 0 {
		panic(fmt.Sprintf("msr: negative CHA index %d", cha))
	}
	return ChaBase + Addr(cha)*ChaStride + off
}

// Errors returned by Space operations. On Linux a faulting RDMSR/WRMSR in
// /dev/cpu/*/msr surfaces as EIO; simulated accesses fail analogously.
var (
	ErrNoSuchMSR = errors.New("msr: address not implemented")
	ErrReadOnly  = errors.New("msr: register is read-only")
	ErrWriteOnly = errors.New("msr: register is write-only")
	ErrLocked    = errors.New("msr: register access is locked")
)

// Handler implements one register. A nil Read or Write makes the register
// write-only or read-only respectively.
type Handler struct {
	Read  func() (uint64, error)
	Write func(uint64) error
}

// Space is one logical CPU's MSR address space.
//
// Space is not safe for concurrent use; the machine layer serializes
// accesses the way a single hardware thread would.
type Space struct {
	handlers map[Addr]Handler
}

// NewSpace returns an empty MSR space.
func NewSpace() *Space {
	return &Space{handlers: make(map[Addr]Handler)}
}

// Register installs h at address a, replacing any previous handler.
func (s *Space) Register(a Addr, h Handler) { s.handlers[a] = h }

// RegisterValue installs a read-only constant register at a.
func (s *Space) RegisterValue(a Addr, v uint64) {
	s.Register(a, Handler{Read: func() (uint64, error) { return v, nil }})
}

// RegisterStorage installs a plain read-write register backed by *v.
func (s *Space) RegisterStorage(a Addr, v *uint64) {
	s.Register(a, Handler{
		Read:  func() (uint64, error) { return *v, nil },
		Write: func(x uint64) error { *v = x; return nil },
	})
}

// Unregister removes the handler at a, if any.
func (s *Space) Unregister(a Addr) { delete(s.handlers, a) }

// Read performs an RDMSR of address a.
func (s *Space) Read(a Addr) (uint64, error) {
	h, ok := s.handlers[a]
	if !ok {
		return 0, fmt.Errorf("rdmsr %#x: %w", uint32(a), ErrNoSuchMSR)
	}
	if h.Read == nil {
		return 0, fmt.Errorf("rdmsr %#x: %w", uint32(a), ErrWriteOnly)
	}
	return h.Read()
}

// Write performs a WRMSR of value v to address a.
func (s *Space) Write(a Addr, v uint64) error {
	h, ok := s.handlers[a]
	if !ok {
		return fmt.Errorf("wrmsr %#x: %w", uint32(a), ErrNoSuchMSR)
	}
	if h.Write == nil {
		return fmt.Errorf("wrmsr %#x: %w", uint32(a), ErrReadOnly)
	}
	return h.Write(v)
}

// IA32_THERM_STATUS layout helpers. The digital readout field reports the
// number of degrees Celsius below TjMax, quantized to 1 °C, with a reading-
// valid flag — the 1 °C sensor granularity the paper's covert channel works
// against.

// EncodeThermStatus packs a digital readout (degrees below TjMax, clamped
// to [0,127]) into IA32_THERM_STATUS format.
func EncodeThermStatus(below int, valid bool) uint64 {
	if below < 0 {
		below = 0
	}
	if below > 127 {
		below = 127
	}
	v := uint64(below) << 16
	if valid {
		v |= 1 << 31
	}
	return v
}

// DecodeThermStatus extracts the digital readout and validity flag from an
// IA32_THERM_STATUS value.
func DecodeThermStatus(v uint64) (below int, valid bool) {
	return int(v >> 16 & 0x7F), v>>31&1 == 1
}

// EncodeTemperatureTarget packs TjMax (°C) into MSR_TEMPERATURE_TARGET
// format.
func EncodeTemperatureTarget(tjMax int) uint64 { return uint64(tjMax&0xFF) << 16 }

// DecodeTemperatureTarget extracts TjMax from MSR_TEMPERATURE_TARGET.
func DecodeTemperatureTarget(v uint64) int { return int(v >> 16 & 0xFF) }
