package msr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChaMSRLayout(t *testing.T) {
	if got := ChaMSR(0, ChaOffUnitCtl); got != 0x0E00 {
		t.Errorf("CHA0 unit ctl = %#x, want 0xE00", got)
	}
	if got := ChaMSR(3, ChaOffCtr0); got != 0x0E00+3*0x10+8 {
		t.Errorf("CHA3 ctr0 = %#x, want %#x", got, 0x0E00+3*0x10+8)
	}
	// Blocks must not overlap.
	if ChaOffCtr0+ChaCounters-1 >= ChaStride {
		t.Fatal("CHA block layout exceeds stride")
	}
}

func TestChaMSRPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ChaMSR(-1) did not panic")
		}
	}()
	ChaMSR(-1, 0)
}

func TestSpaceUnknownAddress(t *testing.T) {
	s := NewSpace()
	if _, err := s.Read(0x123); !errors.Is(err, ErrNoSuchMSR) {
		t.Errorf("Read unknown = %v, want ErrNoSuchMSR", err)
	}
	if err := s.Write(0x123, 1); !errors.Is(err, ErrNoSuchMSR) {
		t.Errorf("Write unknown = %v, want ErrNoSuchMSR", err)
	}
}

func TestRegisterValueIsReadOnly(t *testing.T) {
	s := NewSpace()
	s.RegisterValue(AddrPPIN, 0xDEAD)
	v, err := s.Read(AddrPPIN)
	if err != nil || v != 0xDEAD {
		t.Errorf("Read = %#x,%v; want 0xDEAD,nil", v, err)
	}
	if err := s.Write(AddrPPIN, 1); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Write to read-only = %v, want ErrReadOnly", err)
	}
}

func TestRegisterStorageRoundTrip(t *testing.T) {
	s := NewSpace()
	var backing uint64
	s.RegisterStorage(0x700, &backing)
	if err := s.Write(0x700, 42); err != nil {
		t.Fatal(err)
	}
	if backing != 42 {
		t.Errorf("backing = %d, want 42", backing)
	}
	if v, _ := s.Read(0x700); v != 42 {
		t.Errorf("Read = %d, want 42", v)
	}
}

func TestWriteOnlyRegister(t *testing.T) {
	s := NewSpace()
	s.Register(0x701, Handler{Write: func(uint64) error { return nil }})
	if _, err := s.Read(0x701); !errors.Is(err, ErrWriteOnly) {
		t.Errorf("Read write-only = %v, want ErrWriteOnly", err)
	}
}

func TestUnregister(t *testing.T) {
	s := NewSpace()
	s.RegisterValue(0x702, 1)
	s.Unregister(0x702)
	if _, err := s.Read(0x702); !errors.Is(err, ErrNoSuchMSR) {
		t.Errorf("Read after Unregister = %v, want ErrNoSuchMSR", err)
	}
}

func TestThermStatusEncoding(t *testing.T) {
	v := EncodeThermStatus(28, true)
	below, valid := DecodeThermStatus(v)
	if below != 28 || !valid {
		t.Errorf("round trip = %d,%v; want 28,true", below, valid)
	}
	if _, valid := DecodeThermStatus(EncodeThermStatus(5, false)); valid {
		t.Error("invalid reading decoded as valid")
	}
	// Clamping.
	if b, _ := DecodeThermStatus(EncodeThermStatus(-3, true)); b != 0 {
		t.Errorf("negative readout clamped to %d, want 0", b)
	}
	if b, _ := DecodeThermStatus(EncodeThermStatus(500, true)); b != 127 {
		t.Errorf("large readout clamped to %d, want 127", b)
	}
}

func TestTemperatureTargetEncoding(t *testing.T) {
	if got := DecodeTemperatureTarget(EncodeTemperatureTarget(100)); got != 100 {
		t.Errorf("TjMax round trip = %d, want 100", got)
	}
}

// Property: therm-status encode/decode round-trips for all in-range values.
func TestThermStatusRoundTripProperty(t *testing.T) {
	f := func(b uint8, valid bool) bool {
		below := int(b % 128)
		got, gotValid := DecodeThermStatus(EncodeThermStatus(below, valid))
		return got == below && gotValid == valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: distinct CHA indices map to disjoint register blocks.
func TestChaBlocksDisjoint(t *testing.T) {
	f := func(a, b uint8) bool {
		ca, cb := int(a%40), int(b%40)
		if ca == cb {
			return true
		}
		// Every offset within the stride must differ between blocks.
		for off := Addr(0); off < ChaStride; off++ {
			if ChaMSR(ca, off) == ChaMSR(cb, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}
