// Package cli holds the context and exit-code plumbing shared by the
// repository's commands: a root context wired to SIGINT/SIGTERM and an
// optional -timeout deadline, and the exit-code contract that lets scripts
// tell an interrupted run from a failed one.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coremap/internal/cmerr"
)

// Exit codes: 0 success, 1 hard failure, 2 interrupted (signal or
// -timeout deadline).
const (
	ExitOK          = 0
	ExitError       = 1
	ExitInterrupted = 2
)

// Context returns the command's root context: cancelled on SIGINT or
// SIGTERM (first signal cancels gracefully; a second kills the process via
// the default handler) and, when timeout > 0, after the deadline. The
// returned stop function releases the signal registration.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	//lint:allow ctxflow this IS the command root: cli manufactures the process-wide context
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() { cancel(); stop() }
}

// ExitCode maps an error to the command exit code.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case cmerr.IsInterrupted(err):
		return ExitInterrupted
	default:
		return ExitError
	}
}

// Fatal prints "prog: err" to stderr and exits with the class-appropriate
// code (2 for interrupted/timeout, 1 otherwise).
func Fatal(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(ExitCode(err))
}
