package cli

import (
	"context"
	"errors"
	"testing"
	"time"

	"coremap/internal/cmerr"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain", errors.New("boom"), ExitError},
		{"permanent", cmerr.New(cmerr.Permanent, "probe", "bad"), ExitError},
		{"degraded", cmerr.New(cmerr.Degraded, "probe", "coverage"), ExitError},
		{"interrupted", cmerr.New(cmerr.Interrupted, "ilp", "cancelled"), ExitInterrupted},
		{"raw-cancel", context.Canceled, ExitInterrupted},
		{"raw-deadline", context.DeadlineExceeded, ExitInterrupted},
		{"wrapped-cancel", cmerr.Wrap(cmerr.Interrupted, "cmd", context.DeadlineExceeded), ExitInterrupted},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestContextTimeout(t *testing.T) {
	ctx, stop := Context(10 * time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("-timeout context never expired")
	}
	if !cmerr.IsInterrupted(cmerr.FromContext(ctx, "test")) {
		t.Error("expired context does not classify as Interrupted")
	}
}

func TestContextNoTimeout(t *testing.T) {
	ctx, stop := Context(0)
	select {
	case <-ctx.Done():
		t.Fatal("context without timeout is already done")
	default:
	}
	stop()
}
