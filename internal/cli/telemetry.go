package cli

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"coremap/internal/obs"
)

// Telemetry bundles the observability surfaces shared by the repository's
// commands:
//
//	-trace <file>        write a JSONL span trace
//	-metrics-out <file>  write the final metrics snapshot as JSON
//	-debug-addr <addr>   serve /debug/vars, /metrics and /debug/pprof while running
//	-report              print a per-stage run report at exit
//	-flight-dir <dir>    write a flight-recorder post-mortem on failure
//
// The telemetry itself is always live once Start has run — stage counters
// are a few atomic adds — and the flags only choose which surfaces are
// emitted. Commands call TelemetryFlags before flag.Parse, Start to attach
// the telemetry to the root context, and Close to flush the artifacts.
// Fatal paths route through Telemetry.Fatal, so the flight recorder dumps
// even when the command exits through os.Exit (which skips defers).
type Telemetry struct {
	tracePath   string
	metricsPath string
	debugAddr   string
	flightDir   string
	report      bool

	t      *obs.Telemetry
	traceW *bufio.Writer
	traceF *os.File
	dbg    *obs.DebugServer
	closed bool
}

// TelemetryFlags registers the shared observability flags on the
// command-line flag set. Call it once, before flag.Parse.
func TelemetryFlags() *Telemetry { return newTelemetryFlags(flag.CommandLine) }

func newTelemetryFlags(fs *flag.FlagSet) *Telemetry {
	tf := &Telemetry{}
	fs.StringVar(&tf.tracePath, "trace", "", "write a JSONL span trace to this file")
	fs.StringVar(&tf.metricsPath, "metrics-out", "", "write the final metrics snapshot as JSON to this file")
	fs.StringVar(&tf.debugAddr, "debug-addr", "", "serve /debug/vars, /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&tf.flightDir, "flight-dir", "", "write a flight-recorder dump (flight.jsonl) to this directory when a run degrades or fails")
	fs.BoolVar(&tf.report, "report", false, "print a per-stage run report at exit")
	return tf
}

// Start builds the command's obs.Telemetry (real clock, trace sink and
// debug server per the parsed flags) and returns the context carrying it.
// Call after flag.Parse.
func (tf *Telemetry) Start(ctx context.Context) (context.Context, error) {
	cfg := obs.Config{Clock: obs.SystemClock}
	if tf.tracePath != "" {
		f, err := os.Create(tf.tracePath)
		if err != nil {
			return ctx, fmt.Errorf("telemetry: %w", err)
		}
		tf.traceF = f
		tf.traceW = bufio.NewWriter(f)
		cfg.TraceSink = tf.traceW
	}
	tf.t = obs.New(cfg)
	if tf.debugAddr != "" {
		dbg, err := obs.ServeDebug(tf.debugAddr, tf.t.Registry())
		if err != nil {
			return ctx, fmt.Errorf("telemetry: %w", err)
		}
		tf.dbg = dbg
		fmt.Fprintf(os.Stderr, "telemetry: debug server on http://%s/debug/vars\n", dbg.Addr())
	}
	return obs.With(ctx, tf.t), nil
}

// Registry returns the live metrics registry (nil before Start; obs metric
// handles from a nil registry are no-ops, so callers need no guard).
func (tf *Telemetry) Registry() *obs.Registry {
	if tf == nil {
		return nil
	}
	return tf.t.Registry()
}

// Close shuts the debug server down, flushes the trace, writes the metrics
// snapshot, writes the flight-recorder dump when the run warrants one, and
// prints the -report table to w (stdout in the commands). runErr is the
// run's outcome: with -flight-dir set, a non-nil runErr — or any recorded
// Permanent/Degraded/Interrupted span — triggers the post-mortem dump.
// Idempotent (only the first call does anything), and safe to call when
// Start never ran.
func (tf *Telemetry) Close(w io.Writer, runErr error) error {
	if tf == nil || tf.t == nil || tf.closed {
		return nil
	}
	tf.closed = true
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("telemetry: %w", err)
		}
	}
	keep(tf.dbg.Close())
	if tf.traceW != nil {
		keep(tf.traceW.Flush())
		keep(tf.t.SinkErr())
		keep(tf.traceF.Close())
	}
	if tf.metricsPath != "" {
		f, err := os.Create(tf.metricsPath)
		if err == nil {
			keep(tf.t.Registry().Snapshot().WriteJSON(f))
			keep(f.Close())
		} else {
			keep(err)
		}
	}
	if tf.flightDir != "" && (runErr != nil || tf.t.FlightTriggered()) {
		if err := os.MkdirAll(tf.flightDir, 0o755); err != nil {
			keep(err)
		} else {
			path := filepath.Join(tf.flightDir, "flight.jsonl")
			f, err := os.Create(path)
			if err == nil {
				keep(tf.t.WriteFlight(f, runErr))
				keep(f.Close())
				fmt.Fprintf(os.Stderr, "telemetry: flight-recorder dump written to %s\n", path)
			} else {
				keep(err)
			}
		}
	}
	if tf.report {
		keep(tf.t.Report(w))
	}
	return firstErr
}

// Fatal flushes the telemetry with err as the run's outcome — so a
// configured flight recorder dumps its post-mortem before the process
// dies — then prints and exits via cli.Fatal. Commands route their fatal
// helpers here because os.Exit skips the deferred Close.
func (tf *Telemetry) Fatal(prog string, err error) {
	if cerr := tf.Close(os.Stdout, err); cerr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, cerr)
	}
	Fatal(prog, err)
}

// WriteCacheStats prints one "[cache]" line per cache layer registered in
// the snapshot (the <layer>/cache/{hits,misses,coalesced} gauge triples),
// so a run's cache statistics appear exactly once. The stable "[cache] "
// prefix keeps the lines trivially filterable: diffing a cached against an
// uncached run (the CI cache-invariance job) compares only the science.
func WriteCacheStats(w io.Writer, snap obs.Snapshot) {
	names := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	var layers []string
	for _, name := range names {
		if strings.HasSuffix(name, "/cache/hits") {
			layers = append(layers, strings.TrimSuffix(name, "/hits"))
		}
	}
	for _, l := range layers {
		fmt.Fprintf(w, "[cache] %s: %d hits / %d misses / %d coalesced\n",
			l, snap.Gauges[l+"/hits"], snap.Gauges[l+"/misses"], snap.Gauges[l+"/coalesced"])
	}
}
