package cli

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coremap/internal/obs"
)

// TestTelemetryRoundTrip drives the full flag → Start → instrument → Close
// path and checks both emitted artifacts against the schema validators.
func TestTelemetryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tf := newTelemetryFlags(fs)
	if err := fs.Parse([]string{"-trace", tracePath, "-metrics-out", metricsPath}); err != nil {
		t.Fatal(err)
	}

	ctx, err := tf.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if obs.From(ctx) == nil {
		t.Fatal("Start did not attach telemetry to the context")
	}
	tf.Registry().Counter("probe/experiments/planned").Add(3)
	_, span := obs.Start(ctx, "probe/run")
	span.SetAttr("planned", 3)
	span.End(nil)

	if err := tf.Close(os.Stderr, nil); err != nil {
		t.Fatal(err)
	}

	tr, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := obs.ValidateTrace(tr); err != nil {
		t.Errorf("emitted trace fails schema validation: %v", err)
	}
	mf, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if err := obs.ValidateMetrics(mf); err != nil {
		t.Errorf("emitted metrics fail schema validation: %v", err)
	}
}

func TestTelemetryCloseWithoutStart(t *testing.T) {
	var tf *Telemetry
	if err := tf.Close(os.Stderr, nil); err != nil {
		t.Errorf("nil Telemetry Close: %v", err)
	}
	if err := (&Telemetry{}).Close(os.Stderr, nil); err != nil {
		t.Errorf("unstarted Telemetry Close: %v", err)
	}
}

func TestWriteCacheStats(t *testing.T) {
	reg := obs.NewRegistry()
	reg.GaugeFunc("locate/cache/hits", nil, func() int64 { return 7 })
	reg.GaugeFunc("locate/cache/misses", nil, func() int64 { return 2 })
	reg.GaugeFunc("locate/cache/coalesced", nil, func() int64 { return 1 })
	reg.GaugeFunc("probe/cache/hits", nil, func() int64 { return 5 })
	reg.GaugeFunc("probe/cache/misses", nil, func() int64 { return 4 })
	reg.GaugeFunc("probe/cache/coalesced", nil, func() int64 { return 0 })
	reg.Gauge("probe/coverage_permille").Set(1000) // must not produce a line

	var sb strings.Builder
	WriteCacheStats(&sb, reg.Snapshot())
	want := "[cache] locate/cache: 7 hits / 2 misses / 1 coalesced\n" +
		"[cache] probe/cache: 5 hits / 4 misses / 0 coalesced\n"
	if sb.String() != want {
		t.Errorf("WriteCacheStats:\n%swant:\n%s", sb.String(), want)
	}
}

func TestWriteCacheStatsEmpty(t *testing.T) {
	var sb strings.Builder
	WriteCacheStats(&sb, obs.NewRegistry().Snapshot())
	if sb.String() != "" {
		t.Errorf("no registered caches should print nothing, got %q", sb.String())
	}
}
