// Package cmerr is the pipeline's typed error taxonomy. Every error that
// crosses a stage boundary (probe → locate → ilp → cmd) is classified into
// one of four classes and carries provenance — the stage that produced it
// and, when known, the CPU, CHA and MSR address involved — so callers can
// decide mechanically what to do with a failure instead of parsing
// strings:
//
//   - Transient: the operation may succeed if simply retried (a flaky MSR
//     read on a busy host, a counter read racing a reprogram). The probe
//     retries these with backoff.
//   - Permanent: retrying cannot help (a structural measurement failure,
//     invalid input, retry budget exhausted). The pipeline degrades around
//     these where it can — dropping the affected core pair — and fails
//     otherwise.
//   - Interrupted: the surrounding context was cancelled or timed out.
//     Stages stop promptly and return their best partial result alongside
//     this class; commands exit with code 2 so scripts can distinguish a
//     timeout from a hard failure.
//   - Degraded: the stage produced a result, but from incomplete inputs
//     (coverage below the caller's floor). Returned only when the caller
//     asked for a minimum coverage the run could not meet.
//
// All wrapping is errors.Is/errors.As compatible: errors.Is(err,
// cmerr.Transient) matches any error wrapped with that class, at any
// depth, and errors.As(err, *cmerr.Error) recovers the provenance.
package cmerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Class is one of the four failure classes. Classes are errors themselves,
// so they compose with errors.Is as sentinel targets.
type Class struct{ name string }

func (c *Class) Error() string { return c.name }

// The four classes. These are the only instances; compare with errors.Is.
var (
	Transient   = &Class{"transient"}
	Permanent   = &Class{"permanent"}
	Interrupted = &Class{"interrupted"}
	Degraded    = &Class{"degraded"}
)

// Error is a classified pipeline error with provenance.
type Error struct {
	// Class is one of Transient, Permanent, Interrupted, Degraded.
	Class *Class
	// Stage names the pipeline stage that produced the error ("probe",
	// "locate", "ilp", "host", "covert", ...).
	Stage string
	// Op is the operation that failed ("rdmsr", "co-locate", "solve"...).
	Op string
	// CPU and CHA locate the failure on the part; -1 when not applicable.
	CPU, CHA int
	// MSR is the MSR address involved, 0 when not applicable.
	MSR uint64
	// Msg is the human-readable description.
	Msg string
	// Err is the wrapped cause, nil for leaf errors.
	Err error
}

// New returns a classified leaf error.
func New(class *Class, stage, format string, args ...any) *Error {
	return &Error{Class: class, Stage: stage, CPU: -1, CHA: -1, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies an existing error. A nil err returns nil. If err is
// already an *Error of the same class with no message to add, it is
// returned unchanged (no gratuitous nesting).
func Wrap(class *Class, stage string, err error) *Error {
	if err == nil {
		return nil
	}
	return &Error{Class: class, Stage: stage, CPU: -1, CHA: -1, Err: err}
}

// Wrapf classifies an existing error and prefixes a description.
func Wrapf(class *Class, stage string, err error, format string, args ...any) *Error {
	if err == nil {
		return nil
	}
	return &Error{Class: class, Stage: stage, CPU: -1, CHA: -1, Msg: fmt.Sprintf(format, args...), Err: err}
}

// OnCPU records CPU provenance and returns e for chaining.
func (e *Error) OnCPU(cpu int) *Error { e.CPU = cpu; return e }

// AtCHA records CHA provenance and returns e for chaining.
func (e *Error) AtCHA(cha int) *Error { e.CHA = cha; return e }

// AtMSR records MSR provenance and returns e for chaining.
func (e *Error) AtMSR(addr uint64) *Error { e.MSR = addr; return e }

// WithOp records the failing operation and returns e for chaining.
func (e *Error) WithOp(op string) *Error { e.Op = op; return e }

// Error renders "stage: [class] msg (op=..., cpu=..., cha=..., msr=...): cause".
func (e *Error) Error() string {
	var b strings.Builder
	if e.Stage != "" {
		b.WriteString(e.Stage)
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "[%s]", e.Class.name)
	if e.Msg != "" {
		b.WriteString(" ")
		b.WriteString(e.Msg)
	}
	var prov []string
	if e.Op != "" {
		prov = append(prov, "op="+e.Op)
	}
	if e.CPU >= 0 {
		prov = append(prov, fmt.Sprintf("cpu=%d", e.CPU))
	}
	if e.CHA >= 0 {
		prov = append(prov, fmt.Sprintf("cha=%d", e.CHA))
	}
	if e.MSR != 0 {
		prov = append(prov, fmt.Sprintf("msr=%#x", e.MSR))
	}
	if len(prov) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(prov, ", "))
	}
	if e.Err != nil {
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	}
	return b.String()
}

// Unwrap exposes both the class sentinel and the wrapped cause, which is
// what makes errors.Is(err, cmerr.Transient) and errors.Is(err, cause)
// both work through one wrapper.
func (e *Error) Unwrap() []error {
	if e.Err == nil {
		return []error{e.Class}
	}
	return []error{e.Class, e.Err}
}

// ClassOf returns the outermost classification of err, or nil when err
// carries none. Outermost wins: a Transient leaf that a retry loop wrapped
// as Permanent ("retries exhausted") reads as Permanent, while errors.Is
// still matches the inner Transient for callers that care about the cause.
func ClassOf(err error) *Class {
	for err != nil {
		switch e := err.(type) {
		case *Class:
			return e
		case *Error:
			return e.Class
		case *sentinel:
			return e.class
		}
		switch u := err.(type) {
		case interface{ Unwrap() error }:
			err = u.Unwrap()
		case interface{ Unwrap() []error }:
			for _, sub := range u.Unwrap() {
				if c := ClassOf(sub); c != nil {
					return c
				}
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// IsTransient reports whether err is classified Transient.
func IsTransient(err error) bool { return errors.Is(err, Transient) }

// IsPermanent reports whether err is classified Permanent.
func IsPermanent(err error) bool { return errors.Is(err, Permanent) }

// IsInterrupted reports whether err is classified Interrupted, or is a raw
// context cancellation/deadline error that escaped classification.
func IsInterrupted(err error) bool {
	return errors.Is(err, Interrupted) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsDegraded reports whether err is classified Degraded.
func IsDegraded(err error) bool { return errors.Is(err, Degraded) }

// FromContext converts a cancelled context into an Interrupted error; it
// returns nil while ctx is still live. Stages call it at loop heads and at
// operation boundaries.
func FromContext(ctx context.Context, stage string) error {
	if err := ctx.Err(); err != nil {
		return Wrap(Interrupted, stage, err)
	}
	return nil
}

// Ensure classifies err with class unless it already carries one: an
// error that arrives classified (an Interrupted from a cancelled context,
// a Transient from a fault injector) keeps its class, everything else is
// stamped. It is the standard boundary wrap: stages call Ensure on errors
// crossing in from below so that every error above the hostif boundary is
// classified exactly once.
func Ensure(class *Class, stage string, err error) error {
	if err == nil {
		return nil
	}
	if ClassOf(err) != nil {
		return err
	}
	return Wrap(class, stage, err)
}

// sentinel is a fixed-message error that errors.Is-matches its class.
type sentinel struct {
	class *Class
	msg   string
}

func (s *sentinel) Error() string { return s.msg }
func (s *sentinel) Unwrap() error { return s.class }

// Sentinel returns a package-level sentinel error (suitable for a `var
// ErrFoo = cmerr.Sentinel(...)`) that matches both itself and its class
// under errors.Is.
func Sentinel(class *Class, msg string) error { return &sentinel{class: class, msg: msg} }
