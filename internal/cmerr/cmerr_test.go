package cmerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestClassMatching(t *testing.T) {
	cause := errors.New("rdmsr failed")
	err := Wrapf(Transient, "probe", cause, "reading counter").OnCPU(3).AtCHA(7).AtMSR(0xe00)

	if !errors.Is(err, Transient) {
		t.Error("wrapped error does not match its class")
	}
	if errors.Is(err, Permanent) || errors.Is(err, Interrupted) || errors.Is(err, Degraded) {
		t.Error("wrapped error matches a foreign class")
	}
	if !errors.Is(err, cause) {
		t.Error("wrapped error does not match its cause")
	}
	if ClassOf(err) != Transient {
		t.Errorf("ClassOf = %v, want Transient", ClassOf(err))
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatal("errors.As failed to recover *Error")
	}
	if ce.CPU != 3 || ce.CHA != 7 || ce.MSR != 0xe00 {
		t.Errorf("provenance lost: cpu=%d cha=%d msr=%#x", ce.CPU, ce.CHA, ce.MSR)
	}
}

func TestNestedReclassification(t *testing.T) {
	// A Transient leaf wrapped as Permanent (retry budget exhausted) must
	// report Permanent as its governing class while still exposing the
	// transient cause for errors.Is.
	leaf := New(Transient, "host", "injected fault").OnCPU(1)
	err := Wrapf(Permanent, "probe", leaf, "retries exhausted")
	if ClassOf(err) != Permanent {
		t.Errorf("ClassOf = %v, want Permanent (outermost wins)", ClassOf(err))
	}
	if !errors.Is(err, Transient) {
		t.Error("inner transient class unreachable")
	}
}

func TestInterruptedFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if err := FromContext(ctx, "probe"); err != nil {
		t.Fatalf("live context produced %v", err)
	}
	cancel()
	err := FromContext(ctx, "probe")
	if err == nil || !IsInterrupted(err) {
		t.Fatalf("cancelled context produced %v, want Interrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("context.Canceled cause lost")
	}
	// Raw context errors count as interrupted even unclassified.
	if !IsInterrupted(context.DeadlineExceeded) {
		t.Error("raw DeadlineExceeded not treated as interrupted")
	}
}

func TestSentinel(t *testing.T) {
	errStop := Sentinel(Interrupted, "ilp: interrupted")
	wrapped := fmt.Errorf("solve: %w", errStop)
	if !errors.Is(wrapped, errStop) {
		t.Error("sentinel does not match itself through wrapping")
	}
	if !errors.Is(wrapped, Interrupted) {
		t.Error("sentinel does not match its class")
	}
}

func TestErrorRendering(t *testing.T) {
	err := New(Permanent, "probe", "cpu matched no CHA").OnCPU(4).WithOp("co-locate")
	s := err.Error()
	for _, want := range []string{"probe:", "[permanent]", "cpu matched no CHA", "cpu=4", "op=co-locate"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered error %q missing %q", s, want)
		}
	}
	if Wrap(Transient, "x", nil) != nil {
		t.Error("Wrap(nil) != nil")
	}
}
