package probe

import (
	"context"
	"testing"

	"coremap/internal/machine"
)

func TestCalibrateNoiseQuietHost(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	p := newProber(t, m)
	if err := p.CalibrateNoise(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.noisePerOpMilli != 0 {
		t.Errorf("quiet host calibrated to %d milli-cycles/op, want 0", p.noisePerOpMilli)
	}
	if p.repetitionFactor() != 1 {
		t.Errorf("quiet host repetition factor = %d, want 1", p.repetitionFactor())
	}
}

func TestCalibrateNoiseBusyHost(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 2, NoiseFlits: 8, NoiseEveryOps: 8})
	p := newProber(t, m)
	if err := p.CalibrateNoise(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.noisePerOpMilli == 0 {
		t.Error("busy host calibrated to zero noise")
	}
	if p.repetitionFactor() < 2 {
		t.Errorf("busy host repetition factor = %d, want ≥2", p.repetitionFactor())
	}
	if p.repetitionFactor() > 16 {
		t.Errorf("repetition factor %d exceeds cap", p.repetitionFactor())
	}
}

func TestThresholdsScaleWithNoise(t *testing.T) {
	quiet := newProber(t, machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 3}))
	if err := quiet.CalibrateNoise(context.Background()); err != nil {
		t.Fatal(err)
	}
	busy := newProber(t, machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 3, NoiseFlits: 8, NoiseEveryOps: 8}))
	if err := busy.CalibrateNoise(context.Background()); err != nil {
		t.Fatal(err)
	}
	if busy.counterThreshold(64, 128) <= quiet.counterThreshold(64, 128) {
		t.Error("busy-host counter threshold not above quiet-host threshold")
	}
	// The base floor still applies on quiet hosts.
	if got := quiet.counterThreshold(2, 2); got < quiet.opts.Threshold {
		t.Errorf("threshold %d fell below the configured base %d", got, quiet.opts.Threshold)
	}
}

// TestStep1SurvivesHeavyNoise is the probe-level robustness check: with
// calibration enabled, the OS↔CHA mapping must stay exact under
// background traffic that would defeat fixed thresholds.
func TestStep1SurvivesHeavyNoise(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 4, NoiseFlits: 12, NoiseEveryOps: 8})
	p := newProber(t, m)
	got, err := p.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := m.TrueOSToCHA()
	for cpu := range want {
		if got[cpu] != want[cpu] {
			t.Errorf("OS %d → CHA %d, want %d", cpu, got[cpu], want[cpu])
		}
	}
}

func TestNoCalibrationOption(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 5})
	p, err := New(m, Options{Seed: 1, NoCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ensureCalibrated(); err != nil {
		t.Fatal(err)
	}
	if p.calibrated {
		t.Error("NoCalibration still calibrated")
	}
}
