package probe

import (
	"context"
	"reflect"
	"testing"

	"coremap/internal/machine"
)

func newCachedProber(t *testing.T, m *machine.Machine, c *ResultCache) *Prober {
	t.Helper()
	p, err := New(m, Options{Seed: 1, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestResultCacheRunWith pins the core contract: two probers measuring the
// same chip through one cache compute once and observe identical results,
// and the second caller's copy is private.
func TestResultCacheRunWith(t *testing.T) {
	m := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 7})
	c := NewResultCache()
	ro := RunOptions{SliceSources: true}

	first, err := newCachedProber(t, m, c).RunWith(context.Background(), ro)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := c.Stats()
	if afterFirst.Hits != 0 {
		t.Fatalf("first run recorded %d hits, want 0", afterFirst.Hits)
	}

	second, err := newCachedProber(t, m, c).RunWith(context.Background(), ro)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached result differs from computed result")
	}
	d := c.Stats().Sub(afterFirst)
	if d.Hits == 0 || d.Misses != 0 {
		t.Fatalf("second run stats delta = %+v, want hits>0 and no misses", d)
	}

	// Mutating a returned result must not poison the cache.
	second.OSToCHA[0] = -99
	second.Observations[0].Up = append(second.Observations[0].Up, 1234)
	third, err := newCachedProber(t, m, c).RunWith(context.Background(), ro)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatal("mutation of a cached copy leaked into the cache")
	}
}

// TestResultCacheStep1Restore checks that a step-1 cache hit restores the
// prober's internal state well enough that traffic experiments still run.
func TestResultCacheStep1Restore(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 8})
	c := NewResultCache()

	p1 := newCachedProber(t, m, c)
	mapping1, err := p1.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	p2 := newCachedProber(t, m, c)
	mapping2, err := p2.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mapping1, mapping2) {
		t.Fatalf("cached mapping %v differs from computed %v", mapping2, mapping1)
	}
	if c.Stats().Hits == 0 {
		t.Fatal("second MapCoresToCHAs did not hit the cache")
	}

	// p2 never built eviction sets itself; the restored state must carry
	// them, or this traffic experiment cannot find a line homed at the
	// sink CHA.
	obs, err := p2.MeasureTraffic(context.Background(), 0, 1, mapping2[0], mapping2[1])
	if err != nil {
		t.Fatalf("traffic experiment after step-1 cache hit: %v", err)
	}
	if len(obs.Up)+len(obs.Down)+len(obs.Horz) == 0 {
		t.Fatal("traffic experiment after cache hit observed nothing")
	}
}

// TestResultCacheKeyedByChipAndOptions: different chips, different option
// sets and different run options must all occupy distinct cache entries.
func TestResultCacheKeyedByChipAndOptions(t *testing.T) {
	c := NewResultCache()
	// Distinct chips carry distinct PPINs, which the simulator derives
	// from the instance seed.
	m0 := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 9})
	m1 := machine.Generate(machine.SKU8124M, 1, machine.Config{Seed: 10})

	if _, err := newCachedProber(t, m0, c).RunWith(context.Background(), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := newCachedProber(t, m1, c).RunWith(context.Background(), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hits; got != 0 {
		t.Fatalf("distinct chips shared a cache entry (%d hits)", got)
	}

	// Same chip, different run options → new full-result entry (the
	// step-1 layer legitimately hits: the measurement options match).
	before := c.Stats()
	if _, err := newCachedProber(t, m0, c).RunWith(context.Background(), RunOptions{SliceSources: true}); err != nil {
		t.Fatal(err)
	}
	if d := c.Stats().Sub(before); d.Misses != 1 {
		t.Fatalf("different RunOptions should miss the full layer once, got %+v", d)
	}

	// Same chip, different measurement seed → both layers miss.
	before = c.Stats()
	p, err := New(m0, Options{Seed: 2, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunWith(context.Background(), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if d := c.Stats().Sub(before); d.Hits != 0 || d.Misses != 2 {
		t.Fatalf("different Options.Seed should miss both layers, got %+v", d)
	}
}
