package probe

import (
	"context"
	"fmt"
	"testing"

	"coremap/internal/hostif"
	"coremap/internal/machine"
	"coremap/internal/msr"
)

// traceHost records every host operation, in order, before forwarding it.
type traceHost struct {
	h   hostif.Host
	ops []string
}

func (t *traceHost) log(format string, args ...any) {
	t.ops = append(t.ops, fmt.Sprintf(format, args...))
}

func (t *traceHost) NumCPUs() int { return t.h.NumCPUs() }

func (t *traceHost) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	t.log("rdmsr cpu=%d addr=%#x", cpu, uint64(a))
	return t.h.ReadMSR(cpu, a)
}

func (t *traceHost) WriteMSR(cpu int, a msr.Addr, v uint64) error {
	t.log("wrmsr cpu=%d addr=%#x val=%#x", cpu, uint64(a), v)
	return t.h.WriteMSR(cpu, a, v)
}

func (t *traceHost) Load(cpu int, addr uint64) error {
	t.log("load cpu=%d addr=%#x", cpu, addr)
	return t.h.Load(cpu, addr)
}

func (t *traceHost) TimedLoad(cpu int, addr uint64) (uint64, error) {
	t.log("timedload cpu=%d addr=%#x", cpu, addr)
	return t.h.TimedLoad(cpu, addr)
}

func (t *traceHost) Store(cpu int, addr uint64) error {
	t.log("store cpu=%d addr=%#x", cpu, addr)
	return t.h.Store(cpu, addr)
}

func (t *traceHost) Flush(cpu int, addr uint64) error {
	t.log("flush cpu=%d addr=%#x", cpu, addr)
	return t.h.Flush(cpu, addr)
}

// measurementTrace builds a fresh, identically-seeded machine and prober,
// maps cores and measures one core pair, returning the full host trace.
func measurementTrace(t *testing.T) []string {
	t.Helper()
	m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 7})
	th := &traceHost{h: m}
	p, err := New(th, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := p.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MeasureTraffic(context.Background(), 0, 23, mapping[0], mapping[23]); err != nil {
		t.Fatal(err)
	}
	// Repeat the counter sweep many times: a randomized sweep order (the
	// bug this test pins) is biased toward the fixed order, so a single
	// sweep per trace would let it slip through with high probability.
	for i := 0; i < 32; i++ {
		var obs Observation
		if err := p.collectObservation(&obs, 1); err != nil {
			t.Fatal(err)
		}
	}
	return th.ops
}

// TestHostTraceDeterministic pins the pipeline's determinism invariant at
// the host boundary: two identically-seeded runs must perform the exact
// same sequence of host operations. This is the regression test for
// collectObservation's counter sweep, which used to range over a map
// literal and so read the up/down/horizontal PMON counters in a random
// order each time (Go randomizes every map iteration independently, so
// two in-process runs diverge with high probability).
func TestHostTraceDeterministic(t *testing.T) {
	a := measurementTrace(t)
	b := measurementTrace(t)
	if len(a) != len(b) {
		t.Fatalf("host traces differ in length: %d vs %d ops", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("host traces diverge at op %d: %q vs %q", i, a[i], b[i])
		}
	}
}
