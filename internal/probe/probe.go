// Package probe implements the measurement half of the core-locating
// method (steps 1 and 2 of the paper):
//
//  1. OS-core-ID ↔ CHA-ID mapping — build slice eviction sets with the
//     LLC-lookup counters, drive targeted eviction traffic from every core
//     to every slice, and declare the (core, slice) pairs that generate no
//     mesh traffic to be co-located on one tile.
//  2. Inter-tile traffic generation and monitoring — for every ordered
//     core pair, bounce a cache line homed at the sink's slice and record
//     which CHAs observed vertical-up, vertical-down or horizontal ingress
//     on the BL data rings.
//
// Everything runs through hostif.Host and MSR reads/writes, so the code is
// the same shape as a real /dev/cpu/*/msr tool; only the Host
// implementation is simulated.
//
// # Cancellation and fault tolerance
//
// Every public method takes a context; cancellation is observed before
// each host operation (see hostif.Bind), so a running measurement stops
// within one hardware operation of the deadline and surfaces a
// cmerr.Interrupted error. Host operations failing with cmerr.Transient
// errors — flaky counter reads, injected faults — are retried per
// operation with exponential backoff (Options.OpRetries); when the budget
// is exhausted the failure escalates to cmerr.Permanent. Permanent
// experiment failures do not abort the run: the affected core pair (or
// unmappable CPU) is recorded in Result.Failures, the observation is
// dropped, and the Result is marked Degraded with a Coverage fraction so
// the reconstruction can still proceed on what was measured.
package probe

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"coremap/internal/cache"
	"coremap/internal/cmerr"
	"coremap/internal/hostif"
	"coremap/internal/msr"
	"coremap/internal/obs"
	"coremap/internal/plan"
	"coremap/internal/pmon"
	"coremap/internal/pool"
)

// ctrScratch pools the per-sweep PMON counter buffers (one uint64 per CHA).
// Counter sweeps run once per co-location test and once per experiment
// direction, so a fresh slice per sweep used to be one of the measurement
// pipeline's dominant allocation sites. Shared across Probers so a survey
// over many instances reuses one warm buffer set.
var ctrScratch pool.Scratch[uint64]

// stage tags every error this package classifies.
const stage = "probe"

// Options tunes the measurement effort. The zero value selects defaults
// that are comfortably above the simulator's noise floor.
type Options struct {
	// L2Sets and L2Ways describe the (publicly documented) private-cache
	// geometry of the target part; the eviction-set threshold is
	// L2Ways+1 lines. Zero selects the simulator's default geometry.
	L2Sets, L2Ways int
	// HomeSamples is the number of ping-pong writes used to identify a
	// line's home slice.
	HomeSamples int
	// EvictRounds is the number of passes over an eviction set per
	// co-location test.
	EvictRounds int
	// TrafficIters is the number of write/read bounces per inter-tile
	// traffic experiment.
	TrafficIters int
	// Threshold is the minimum counter delta (ring-occupancy cycles)
	// treated as real traffic rather than noise.
	Threshold uint64
	// NoCalibration disables the noise-floor calibration that adapts
	// the thresholds to background platform traffic.
	NoCalibration bool
	// Progress, when non-nil, receives coarse progress callbacks
	// (stage name, completed units, total units) during long phases.
	Progress func(stage string, done, total int)
	// MaxCandidates bounds the address scan when building eviction sets.
	MaxCandidates int
	// Seed drives the probe's address exploration.
	Seed int64
	// Cache, when non-nil, memoizes measurement results by chip identity
	// (PPIN) and measurement options; see ResultCache. It is excluded from
	// the cache key itself. Degraded (partial) results are never cached.
	Cache *ResultCache
	// OpRetries is how many times a host operation that failed with a
	// cmerr.Transient error is retried before the failure escalates to
	// cmerr.Permanent. 0 selects the default of 3; negative disables
	// retry entirely.
	OpRetries int
	// RetryBackoff is the initial delay between retries of one operation,
	// doubled per attempt (0 selects 100µs). Backoff sleeps observe the
	// context.
	RetryBackoff time.Duration
	// MinCoverage, when positive, is the experiment-coverage floor below
	// which RunWith returns a cmerr.Degraded error alongside the partial
	// Result instead of a silent degraded success.
	MinCoverage float64
	// FailFast restores the strict pre-fault-tolerance contract: any
	// permanent experiment failure aborts the run with an error instead
	// of degrading around the affected CPU or core pair.
	FailFast bool
	// Plan, when non-nil, runs the survey adaptively: step-2 experiments
	// are issued in batches chosen by an internal/plan planner, which
	// tracks the set of placements still consistent with the observations
	// collected and stops as soon as no remaining experiment could
	// distinguish them. The resulting observation set reconstructs to a
	// map byte-identical to the exhaustive sweep's at a fraction of the
	// host operations. Step 1 switches to a guided first-match sweep at
	// the same time. Nil (the default) keeps the exhaustive sweeps.
	Plan *plan.Options
}

func (o Options) withDefaults() Options {
	if o.L2Sets == 0 {
		o.L2Sets = 64
	}
	if o.L2Ways == 0 {
		o.L2Ways = 8
	}
	if o.HomeSamples == 0 {
		o.HomeSamples = 32
	}
	if o.EvictRounds == 0 {
		o.EvictRounds = 4
	}
	if o.TrafficIters == 0 {
		o.TrafficIters = 16
	}
	if o.Threshold == 0 {
		o.Threshold = 24
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 4096
	}
	if o.OpRetries == 0 {
		o.OpRetries = 3
	} else if o.OpRetries < 0 {
		o.OpRetries = 0
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 100 * time.Microsecond
	}
	return o
}

// Observation is the monitored result of one inter-tile traffic
// experiment: the CHAs whose ingress counters crossed the threshold,
// classified by channel. Horizontal left/right arrivals are merged — the
// odd-column tile mirroring makes the physical direction unknowable.
type Observation struct {
	// SrcCHA and DstCHA identify the experiment endpoints by CHA ID.
	// For memory-anchored observations SrcCHA is unused (-1).
	SrcCHA, DstCHA int
	// Anchored marks a memory-traffic observation whose source is the
	// integrated memory controller SrcIMC — a tile at a publicly known
	// die position, which pins the reconstruction in absolute
	// coordinates.
	Anchored bool
	SrcIMC   int
	// Up, Down and Horz list the CHA IDs that observed ingress of each
	// class, in ascending order.
	Up, Down, Horz []int
}

// Failure records one permanently failed unit of measurement work: a
// step-1 core mapping that could not be established, or a step-2
// experiment whose observation was dropped. The error is kept as a string
// so results stay serializable and cache-clonable.
type Failure struct {
	// Op is the failed unit: "core-to-cha", "pair", "slice", "request"
	// or "memory".
	Op string
	// CPU is the OS CPU involved (-1 when not applicable).
	CPU int
	// SrcCHA and DstCHA are the experiment endpoints (-1 when unknown).
	SrcCHA, DstCHA int
	// Err is the rendered permanent error.
	Err string
}

// Result is the full measurement output for one CPU instance.
type Result struct {
	// PPIN is the protected processor inventory number, the stable
	// identity the recovered map can be cached under.
	PPIN uint64
	// NumCHA is the number of CHA boxes discovered by MSR scanning.
	NumCHA int
	// OSToCHA maps each OS CPU to the CHA ID of its tile (-1 when the
	// probe could not identify it).
	OSToCHA []int
	// CoreCHAs is the sorted set of CHA IDs that host an active core.
	CoreCHAs []int
	// Observations holds one entry per completed experiment.
	Observations []Observation
	// Planned and Completed count the step-2 experiments the run options
	// called for and the ones that produced an observation. Experiments
	// skipped because a CPU could not be mapped in step 1 count as
	// planned but not completed.
	Planned, Completed int
	// Failures records the permanently failed core mappings and
	// experiments behind any Planned/Completed gap.
	Failures []Failure
	// Degraded reports that the measurement is incomplete: at least one
	// CPU is unmapped or at least one experiment failed permanently.
	Degraded bool
}

// Coverage is the fraction of planned step-2 experiments that produced an
// observation (1 for a complete run, including runs with nothing planned).
func (r *Result) Coverage() float64 {
	if r.Planned == 0 {
		return 1
	}
	return float64(r.Completed) / float64(r.Planned)
}

// LLCOnlyCHAs returns the CHA IDs that belong to LLC-only tiles (a CHA with
// no matching OS core).
func (r *Result) LLCOnlyCHAs() []int {
	used := make([]bool, r.NumCHA)
	for _, cha := range r.OSToCHA {
		if cha >= 0 {
			used[cha] = true
		}
	}
	var out []int
	for cha, u := range used {
		if !u {
			out = append(out, cha)
		}
	}
	return out
}

// Prober drives the measurement pipeline on one host. A Prober is not safe
// for concurrent use: it binds the context of the public method currently
// executing.
type Prober struct {
	// raw is the host as handed to New; host is raw bound to the current
	// call's context and wrapped with the telemetry and transient-retry
	// decorators.
	raw  hostif.Host
	host hostif.Host
	ctx  context.Context
	// reg is the telemetry registry of the current call's context; nil
	// (a no-op registry) when the caller carries no telemetry. clock is
	// the matching injected time source (never nil; fixed when absent).
	reg   *obs.Registry
	clock obs.Clock
	opts  Options
	mon   *pmon.Monitor
	rng   *rand.Rand
	// homes caches discovered line → home-CHA results, bucketed by CHA.
	homes map[int][]uint64
	// obsSlab backs the Up/Down/Horz records of completed observations.
	// It is grow-only and never reset, so records retained in Results can
	// never be aliased by later experiments.
	obsSlab pool.Slab[int]
	// ringProgrammed/ringVert/ringHorz track the ring-event pair currently
	// programmed into the CHA counters, enabling the cheap box-reset path
	// in resetRingCountersOn.
	ringProgrammed     bool
	ringVert, ringHorz uint8
	// noisePerOpMilli is the calibrated background ring traffic in
	// milli-cycles per cache operation, summed over all counters.
	noisePerOpMilli uint64
	calibrated      bool
	// step1Failures records the degraded core mappings of the last
	// MapCoresToCHAs call, for RunWith to fold into its Result.
	step1Failures []Failure
}

// Counter layout used throughout: three counters per CHA box.
const (
	ctrUp   = 0
	ctrDown = 1
	ctrHorz = 2
	ctrLook = 3
)

// New returns a prober for host. Discovery performs a bounded MSR scan and
// is quick, so it does not take a context; all measurement methods do.
func New(host hostif.Host, opts Options) (*Prober, error) {
	opts = opts.withDefaults()
	p := &Prober{
		raw:   host,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed + 0x5EED)),
		homes: make(map[int][]uint64),
	}
	//lint:allow ctxflow construction-time CHA discovery predates any caller context
	p.bind(context.Background())
	n, err := p.discoverCHAs()
	if err != nil {
		return nil, err
	}
	p.mon = pmon.NewMonitor(msrVia{p}, n)
	return p, nil
}

// bind fixes ctx as the context every host operation of the current call
// observes, and layers the telemetry and transient-retry decorators on
// top. The counting decorator sits innermost (below retry), so host op
// counters see every attempt, not just the first.
func (p *Prober) bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.ctx = ctx
	p.reg = obs.RegistryFrom(ctx)
	p.clock = obs.From(ctx).Clock()
	h := hostif.Bind(ctx, hostif.Counting(p.raw, p.reg, p.clock))
	p.host = newRetryHost(ctx, h, p.opts.OpRetries, p.opts.RetryBackoff, p.reg.Counter("probe/retries"))
}

// msrVia adapts the prober's current bound host to pmon.Access; uncore
// registers are socket-scoped, so CPU 0 serves all of them.
type msrVia struct{ p *Prober }

func (a msrVia) ReadMSR(ad msr.Addr) (uint64, error)  { return a.p.host.ReadMSR(0, ad) }
func (a msrVia) WriteMSR(ad msr.Addr, v uint64) error { return a.p.host.WriteMSR(0, ad, v) }

// discoverCHAs scans the CHA PMON MSR space until an address faults, the
// same way user-space tools size the uncore.
func (p *Prober) discoverCHAs() (int, error) {
	const maxCHAs = 64
	for cha := 0; cha < maxCHAs; cha++ {
		_, err := p.host.ReadMSR(0, msr.ChaMSR(cha, msr.ChaOffUnitCtl))
		if errors.Is(err, msr.ErrNoSuchMSR) {
			if cha == 0 {
				return 0, cmerr.Wrapf(cmerr.Permanent, stage, err, "no CHA PMON found").WithOp("discover")
			}
			return cha, nil
		}
		if err != nil {
			return 0, cmerr.Ensure(cmerr.Permanent, stage,
				cmerr.Wrapf(cmerr.Permanent, stage, err, "scanning CHA %d", cha).AtCHA(cha))
		}
	}
	return maxCHAs, nil
}

// NumCHA returns the number of discovered CHA boxes.
func (p *Prober) NumCHA() int { return p.mon.NumCHA }

// progress reports long-phase progress when a callback is configured,
// and mirrors it into the probe/progress/* gauges so a -debug-addr
// snapshot shows how far each phase has come.
func (p *Prober) progress(stage string, done, total int) {
	p.reg.Gauge("probe/progress/" + stage + "_done").Set(int64(done))
	p.reg.Gauge("probe/progress/" + stage + "_total").Set(int64(total))
	if p.opts.Progress != nil {
		p.opts.Progress(stage, done, total)
	}
}

// CalibrateNoise measures the platform's background ring traffic: it runs
// a pure-L2-hit workload (which injects no mesh traffic of its own) and
// attributes every ring cycle observed meanwhile to noise. The estimate
// scales the detection thresholds, which is what keeps the probe working
// on busy hosts.
func (p *Prober) CalibrateNoise(ctx context.Context) error {
	p.bind(ctx)
	return p.calibrateNoise()
}

func (p *Prober) calibrateNoise() error {
	const calOps = 512
	addr := uint64(0x600000000) + uint64(p.rng.Intn(1<<12))*64
	// Take ownership once; every following store is an L2 hit.
	if err := p.host.Store(0, addr); err != nil {
		return cmerr.Ensure(cmerr.Permanent, stage, err)
	}
	if err := p.resetRingCounters(); err != nil {
		return err
	}
	for i := 0; i < calOps; i++ {
		if err := p.host.Store(0, addr); err != nil {
			return cmerr.Ensure(cmerr.Permanent, stage, err)
		}
	}
	total, err := p.totalRingTraffic()
	if err != nil {
		return err
	}
	p.noisePerOpMilli = total * 1000 / calOps
	p.calibrated = true
	return nil
}

// ensureCalibrated runs noise calibration once unless disabled.
func (p *Prober) ensureCalibrated() error {
	if p.calibrated || p.opts.NoCalibration {
		return nil
	}
	return p.calibrateNoise()
}

// noiseEstimate is the expected total background ring cycles accumulated
// over the given number of cache operations.
func (p *Prober) noiseEstimate(ops int) uint64 {
	return p.noisePerOpMilli * uint64(ops) / 1000
}

// ReadPPIN unlocks and reads the protected processor inventory number.
func (p *Prober) ReadPPIN(ctx context.Context) (uint64, error) {
	p.bind(ctx)
	return p.readPPIN()
}

func (p *Prober) readPPIN() (uint64, error) {
	if err := p.host.WriteMSR(0, msr.AddrPPINCtl, 0x2); err != nil {
		return 0, cmerr.Ensure(cmerr.Permanent, stage,
			cmerr.Wrapf(cmerr.Permanent, stage, err, "unlocking PPIN").AtMSR(uint64(msr.AddrPPINCtl)))
	}
	v, err := p.host.ReadMSR(0, msr.AddrPPIN)
	if err != nil {
		return 0, cmerr.Ensure(cmerr.Permanent, stage,
			cmerr.Wrapf(cmerr.Permanent, stage, err, "reading PPIN").AtMSR(uint64(msr.AddrPPIN)))
	}
	return v, nil
}

// FindLineHome identifies the home CHA of the line at addr by ping-pong
// writing it from two cores and picking the CHA with the most LLC lookups,
// the uncore-assisted variant of eviction-set home discovery.
func (p *Prober) FindLineHome(ctx context.Context, addr uint64) (int, error) {
	p.bind(ctx)
	return p.findLineHome(addr)
}

func (p *Prober) findLineHome(addr uint64) (int, error) {
	n := p.host.NumCPUs()
	if n < 2 {
		return 0, cmerr.New(cmerr.Permanent, stage, "need at least two CPUs")
	}
	if err := p.mon.ProgramAll(ctrLook, pmon.EvLLCLookup, pmon.UmaskLLCAny); err != nil {
		return 0, cmerr.Ensure(cmerr.Permanent, stage, err)
	}
	cpuA, cpuB := 0, n-1
	for i := 0; i < p.opts.HomeSamples; i++ {
		if err := p.host.Store(cpuA, addr); err != nil {
			return 0, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
		if err := p.host.Store(cpuB, addr); err != nil {
			return 0, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
	}
	counts := ctrScratch.Get(p.mon.NumCHA)
	defer ctrScratch.Put(counts)
	if err := p.mon.ReadAllInto(ctrLook, counts); err != nil {
		return 0, cmerr.Ensure(cmerr.Permanent, stage, err)
	}
	best, bestCount := -1, uint64(0)
	for cha, c := range counts {
		if c > bestCount {
			best, bestCount = cha, c
		}
	}
	if best < 0 || bestCount < uint64(p.opts.HomeSamples) {
		return 0, cmerr.New(cmerr.Permanent, stage,
			"home of %#x not identifiable (max lookups %d)", addr, bestCount).WithOp("find-home")
	}
	return best, nil
}

// BuildEvictionSets scans same-L2-set addresses until every CHA has a full
// slice eviction set (L2Ways+1 lines that share one L2 set and one home
// slice). The discovered lines are cached for later traffic experiments.
func (p *Prober) BuildEvictionSets(ctx context.Context) error {
	p.bind(ctx)
	return p.buildEvictionSets()
}

func (p *Prober) buildEvictionSets() error {
	need := p.opts.L2Ways + 1
	setStride := uint64(p.opts.L2Sets) * 64
	base := uint64(0x40000000) + uint64(p.rng.Intn(1<<16))*setStride
	filled := 0
	for i := 0; i < p.opts.MaxCandidates && filled < p.mon.NumCHA; i++ {
		addr := base + uint64(i)*setStride
		home, err := p.findLineHome(addr)
		if err != nil {
			return err
		}
		if len(p.homes[home]) < need {
			p.homes[home] = append(p.homes[home], addr)
			if len(p.homes[home]) == need {
				filled++
			}
		}
	}
	if filled < p.mon.NumCHA {
		return cmerr.New(cmerr.Permanent, stage,
			"only %d/%d slices received a full eviction set after %d candidates",
			filled, p.mon.NumCHA, p.opts.MaxCandidates).WithOp("eviction-sets")
	}
	return nil
}

// EvictionSet returns the discovered eviction set for a CHA.
func (p *Prober) EvictionSet(cha int) []uint64 { return p.homes[cha] }

// resetRingCounters programs and rebases the three BL-ring counters on
// every CHA box.
func (p *Prober) resetRingCounters() error {
	return p.resetRingCountersOn(pmon.EvVertRingBLInUse, pmon.EvHorzRingBLInUse)
}

// resetRingCountersOn programs the up/down/horizontal counters for an
// arbitrary vertical/horizontal ring-event pair and rebases them to zero.
// When the boxes already carry that programming — the common case, since
// nearly every reset between measurements re-selects the BL pair — a box-
// level UnitCtl reset per CHA rebases all three counters with one MSR write
// instead of three, which cuts the dominant per-measurement MSR traffic.
// Both paths leave identical counter programming and identical zero bases,
// so measured observations are unaffected.
func (p *Prober) resetRingCountersOn(evVert, evHorz uint8) error {
	if p.ringProgrammed && p.ringVert == evVert && p.ringHorz == evHorz {
		for cha := 0; cha < p.mon.NumCHA; cha++ {
			if err := p.mon.Reset(cha); err != nil {
				return cmerr.Ensure(cmerr.Permanent, stage, err)
			}
		}
		return nil
	}
	p.ringProgrammed = false
	if err := p.mon.ProgramAll(ctrUp, evVert, pmon.UmaskUp); err != nil {
		return cmerr.Ensure(cmerr.Permanent, stage, err)
	}
	if err := p.mon.ProgramAll(ctrDown, evVert, pmon.UmaskDown); err != nil {
		return cmerr.Ensure(cmerr.Permanent, stage, err)
	}
	if err := p.mon.ProgramAll(ctrHorz, evHorz, pmon.UmaskLeft|pmon.UmaskRight); err != nil {
		return cmerr.Ensure(cmerr.Permanent, stage, err)
	}
	p.ringProgrammed, p.ringVert, p.ringHorz = true, evVert, evHorz
	return nil
}

// totalRingTraffic sums all three ring counters across all CHAs.
func (p *Prober) totalRingTraffic() (uint64, error) {
	counts := ctrScratch.Get(p.mon.NumCHA)
	defer ctrScratch.Put(counts)
	var total uint64
	for _, ctr := range [...]int{ctrUp, ctrDown, ctrHorz} {
		if err := p.mon.ReadAllInto(ctr, counts); err != nil {
			return 0, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
		for _, c := range counts {
			total += c
		}
	}
	return total, nil
}

// counterThreshold picks a per-counter detection threshold at the midpoint
// between the calibrated noise share and noise-plus-signal: a worst-case
// quarter of the background traffic may concentrate on one counter, and an
// on-path counter additionally carries the full measured stream.
func (p *Prober) counterThreshold(ops int, perCounterSignal uint64) uint64 {
	t := p.noiseEstimate(ops)/4 + perCounterSignal/2
	if t < p.opts.Threshold {
		t = p.opts.Threshold
	}
	return t
}

// coLocated tests whether OS CPU cpu sits on the same tile as the slice of
// CHA cha: eviction traffic between co-located pairs never enters the mesh.
func (p *Prober) coLocated(cpu, cha int) (bool, error) {
	set := p.homes[cha]
	if len(set) <= p.opts.L2Ways {
		return false, cmerr.New(cmerr.Permanent, stage, "no eviction set for CHA %d", cha).AtCHA(cha)
	}
	// Warm one pass first: the lines may still be owned by whichever
	// cores discovered them, and those one-off ownership transfers would
	// otherwise drown the co-location signal.
	for _, addr := range set {
		if err := p.host.Store(cpu, addr); err != nil {
			return false, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
	}
	if err := p.resetRingCounters(); err != nil {
		return false, err
	}
	rounds := p.opts.EvictRounds * p.repetitionFactor()
	for r := 0; r < rounds; r++ {
		for _, addr := range set {
			if err := p.host.Store(cpu, addr); err != nil {
				return false, cmerr.Ensure(cmerr.Permanent, stage, err)
			}
		}
	}
	total, err := p.totalRingTraffic()
	if err != nil {
		return false, err
	}
	// Decide at the midpoint between expected background noise alone
	// (co-located: the eviction traffic never enters the mesh) and noise
	// plus the weakest real signal (a 1-hop neighbour's fills and
	// write-backs, 8 ring cycles per access).
	ops := rounds * len(set)
	threshold := p.noiseEstimate(ops) + uint64(ops)*8/2
	if min := p.opts.Threshold * uint64(p.opts.EvictRounds); threshold < min {
		threshold = min
	}
	return total < threshold, nil
}

// repetitionFactor scales measurement length with the calibrated noise:
// averaging over proportionally more accesses keeps the noise variance
// small relative to the detection gap on busy hosts.
func (p *Prober) repetitionFactor() int {
	noisePerOp := int(p.noisePerOpMilli / 1000)
	m := 1 + noisePerOp
	if m > 16 {
		m = 16
	}
	return m
}

// MapCoresToCHAs runs step 1: it tests all (core, slice) combinations and
// returns the OS-CPU → CHA-ID mapping. With a ResultCache configured the
// whole step — calibration, eviction-set discovery and the co-location
// sweep — is memoized under the chip's PPIN, and a hit restores the
// prober's internal state (eviction sets, noise floor) so later traffic
// experiments continue exactly as if the step had run.
//
// A CPU whose co-location tests failed with permanent host errors is
// reported as -1 in the mapping instead of failing the whole step (unless
// Options.FailFast is set); such degraded mappings are never cached.
func (p *Prober) MapCoresToCHAs(ctx context.Context) (mapping []int, err error) {
	ctx, span := obs.Start(ctx, "probe/map-cores")
	defer func() {
		var mapped, unmapped int64
		for _, cha := range mapping {
			if cha >= 0 {
				mapped++
			} else {
				unmapped++
			}
		}
		span.SetAttr("mapped", mapped).SetAttr("unmapped", unmapped)
		span.End(err)
	}()
	p.bind(ctx)
	c := p.opts.Cache
	if c == nil {
		mapping, failures, err := p.mapCoresToCHAs()
		p.step1Failures = failures
		return mapping, err
	}
	ppin, err := p.readPPIN()
	if err != nil {
		return nil, err
	}
	key := p.step1Key(ppin)
	v, err := c.step1.Do(key, func() (any, error) {
		mapping, failures, err := p.mapCoresToCHAs()
		if err != nil {
			return nil, err
		}
		return p.snapshotStep1(mapping, failures), nil
	})
	if err != nil {
		if cmerr.IsInterrupted(err) {
			c.step1.Forget(key)
		}
		return nil, err
	}
	st := v.(*step1State)
	if len(st.failures) > 0 {
		// A degraded mapping reflects this run's faults, not the chip.
		c.step1.Forget(key)
	}
	p.installStep1(st)
	p.step1Failures = append([]Failure(nil), st.failures...)
	return append([]int(nil), st.mapping...), nil
}

// dropCore records a CPU being dropped from the OS-to-CHA mapping after
// host faults as a flight-recorder event. Like experiment drops, this is
// the moment the fault leaves the error return path (the run degrades
// around the core), so the event carries the full (stage, op, CPU, CHA)
// provenance — cha is the last slice whose co-location test was
// unobtainable — for post-mortem attribution.
func (p *Prober) dropCore(cpu, cha int, cause error) {
	obs.Event(p.ctx, "probe/core-unmapped",
		cmerr.Wrapf(cmerr.Permanent, stage, cause, "cpu %d dropped from the map", cpu).
			WithOp("core-to-cha").OnCPU(cpu).AtCHA(cha))
}

func (p *Prober) mapCoresToCHAs() ([]int, []Failure, error) {
	if err := p.ensureCalibrated(); err != nil {
		return nil, nil, err
	}
	if len(p.homes) == 0 {
		if err := p.buildEvictionSets(); err != nil {
			return nil, nil, err
		}
	}
	if p.opts.Plan != nil {
		return p.mapCoresGuided()
	}
	var failures []Failure
	mapping := make([]int, p.host.NumCPUs())
	for cpu := range mapping {
		p.progress("core-to-cha", cpu, len(mapping))
		mapping[cpu] = -1
		var opErr error
		opCHA := -1
		for cha := 0; cha < p.mon.NumCHA; cha++ {
			same, err := p.coLocated(cpu, cha)
			if err != nil {
				if cmerr.IsInterrupted(err) || p.opts.FailFast {
					return nil, nil, err
				}
				// This (cpu, cha) test is unobtainable; remember why and
				// keep probing the remaining slices.
				opErr, opCHA = err, cha
				continue
			}
			if same {
				if mapping[cpu] != -1 {
					return nil, nil, cmerr.New(cmerr.Permanent, stage,
						"cpu %d co-located with both CHA %d and %d",
						cpu, mapping[cpu], cha).OnCPU(cpu).WithOp("co-locate")
				}
				mapping[cpu] = cha
			}
		}
		if mapping[cpu] == -1 {
			err := cmerr.New(cmerr.Permanent, stage, "cpu %d matched no CHA", cpu).
				OnCPU(cpu).WithOp("co-locate")
			if opErr == nil {
				// No host fault explains the miss: this is a measurement-
				// quality failure (noise past the thresholds), which
				// degradation cannot repair. Keep the strict contract.
				return nil, nil, err
			}
			p.dropCore(cpu, opCHA, opErr)
			failures = append(failures, Failure{
				Op: "core-to-cha", CPU: cpu, SrcCHA: -1, DstCHA: -1, Err: opErr.Error(),
			})
		}
	}
	for _, cha := range mapping {
		if cha >= 0 {
			p.reg.Counter("probe/step1/mapped").Inc()
		} else {
			p.reg.Counter("probe/step1/unmapped").Inc()
		}
	}
	return mapping, failures, nil
}

// mapCoresGuided is plan-mode step 1. The exhaustive sweep tests every
// (cpu, CHA) combination — n² co-location tests — because it doubles as
// the verifier for the one-CHA-per-core invariant. The guided sweep
// instead stops each CPU at its first match, skips CHAs already claimed
// by an earlier CPU, and starts each scan at the CHA after the previous
// match (CPU enumeration order tends to follow the die layout, so the
// next match is usually adjacent). It assumes one CPU per tile (no SMT
// siblings sharing a CHA) and gives up double-co-location detection —
// the exhaustive sweep remains the verifier for that invariant — in
// exchange for a near-n reduction in tests on cooperative orderings.
// The degradation contract matches the exhaustive sweep: host faults
// leave the CPU unmapped and recorded, a fault-free miss stays a strict
// error.
func (p *Prober) mapCoresGuided() ([]int, []Failure, error) {
	var failures []Failure
	mapping := make([]int, p.host.NumCPUs())
	claimed := make([]bool, p.mon.NumCHA)
	start := 0
	for cpu := range mapping {
		p.progress("core-to-cha", cpu, len(mapping))
		mapping[cpu] = -1
		var opErr error
		opCHA := -1
		for i := 0; i < p.mon.NumCHA; i++ {
			cha := (start + i) % p.mon.NumCHA
			if claimed[cha] {
				continue
			}
			same, err := p.coLocated(cpu, cha)
			if err != nil {
				if cmerr.IsInterrupted(err) || p.opts.FailFast {
					return nil, nil, err
				}
				opErr, opCHA = err, cha
				continue
			}
			if same {
				mapping[cpu] = cha
				claimed[cha] = true
				start = cha + 1
				break
			}
		}
		if mapping[cpu] == -1 {
			err := cmerr.New(cmerr.Permanent, stage, "cpu %d matched no CHA", cpu).
				OnCPU(cpu).WithOp("co-locate")
			if opErr == nil {
				return nil, nil, err
			}
			p.dropCore(cpu, opCHA, opErr)
			failures = append(failures, Failure{
				Op: "core-to-cha", CPU: cpu, SrcCHA: -1, DstCHA: -1, Err: opErr.Error(),
			})
		}
	}
	for _, cha := range mapping {
		if cha >= 0 {
			p.reg.Counter("probe/step1/mapped").Inc()
		} else {
			p.reg.Counter("probe/step1/unmapped").Inc()
		}
	}
	return mapping, failures, nil
}

// MeasureTraffic runs one step-2 experiment: srcCPU repeatedly writes and
// sinkCPU repeatedly reads a cache line homed at the sink tile's slice, and
// the ingress counters of every CHA classify who saw the data stream.
func (p *Prober) MeasureTraffic(ctx context.Context, srcCPU, sinkCPU, srcCHA, sinkCHA int) (Observation, error) {
	p.bind(ctx)
	return p.measureTraffic(srcCPU, sinkCPU, srcCHA, sinkCHA)
}

func (p *Prober) measureTraffic(srcCPU, sinkCPU, srcCHA, sinkCHA int) (Observation, error) {
	obs := Observation{SrcCHA: srcCHA, DstCHA: sinkCHA}
	if err := p.ensureCalibrated(); err != nil {
		return obs, err
	}
	lines := p.homes[sinkCHA]
	if len(lines) == 0 {
		return obs, cmerr.New(cmerr.Permanent, stage, "no known line homed at CHA %d", sinkCHA).AtCHA(sinkCHA)
	}
	addr := lines[0]
	// Warm the coherence pattern so the measured loop is steady-state:
	// source upgrades in place, sink pulls the modified line.
	for i := 0; i < 2; i++ {
		if err := p.host.Store(srcCPU, addr); err != nil {
			return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
		if err := p.host.Load(sinkCPU, addr); err != nil {
			return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
	}
	if err := p.resetRingCounters(); err != nil {
		return obs, err
	}
	for i := 0; i < p.opts.TrafficIters; i++ {
		if err := p.host.Store(srcCPU, addr); err != nil {
			return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
		if err := p.host.Load(sinkCPU, addr); err != nil {
			return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
	}
	threshold := p.counterThreshold(p.opts.TrafficIters*2, uint64(p.opts.TrafficIters)*8)
	if err := p.collectObservation(&obs, threshold); err != nil {
		return obs, err
	}
	return obs, nil
}

// collectObservation reads the three ring counters of every CHA and
// classifies the ones whose delta crossed the threshold. The per-direction
// CHA lists are exact-size windows of the prober's observation slab; a
// direction with no crossings stays nil, matching the pre-slab encoding.
func (p *Prober) collectObservation(obs *Observation, threshold uint64) error {
	counts := ctrScratch.Get(p.mon.NumCHA)
	defer ctrScratch.Put(counts)
	// Fixed iteration order: the three counter sweeps hit the PMON
	// registers in a deterministic sequence, so identical runs produce
	// identical host traces (a map literal here would randomize them).
	for _, dir := range [...]struct {
		ctr int
		out *[]int
	}{{ctrUp, &obs.Up}, {ctrDown, &obs.Down}, {ctrHorz, &obs.Horz}} {
		if err := p.mon.ReadAllInto(dir.ctr, counts); err != nil {
			return cmerr.Ensure(cmerr.Permanent, stage, err)
		}
		n := 0
		for _, c := range counts {
			if c >= threshold {
				n++
			}
		}
		if n == 0 {
			continue
		}
		w := p.obsSlab.Alloc(n)[:0]
		for cha, c := range counts {
			if c >= threshold {
				w = append(w, cha)
			}
		}
		*dir.out = w
	}
	return nil
}

// MeasureSliceTraffic runs a read-only experiment between an LLC slice and
// a core: the core cycles loads over the slice's eviction set, so cache-
// line data streams unidirectionally from the slice's tile to the core's
// tile (clean evictions produce no write-back). This extends the paper's
// core-pair experiments to LLC-only tiles, which can serve as a traffic
// *source* even though they cannot host a thread.
func (p *Prober) MeasureSliceTraffic(ctx context.Context, coreCPU, coreCHA, sliceCHA int) (Observation, error) {
	p.bind(ctx)
	return p.measureSliceTraffic(coreCPU, coreCHA, sliceCHA)
}

func (p *Prober) measureSliceTraffic(coreCPU, coreCHA, sliceCHA int) (Observation, error) {
	obs := Observation{SrcCHA: sliceCHA, DstCHA: coreCHA}
	if err := p.ensureCalibrated(); err != nil {
		return obs, err
	}
	set := p.homes[sliceCHA]
	if len(set) <= p.opts.L2Ways {
		return obs, cmerr.New(cmerr.Permanent, stage, "no eviction set for CHA %d", sliceCHA).AtCHA(sliceCHA)
	}
	// Warm pass: clear any foreign ownership left by home discovery.
	for _, addr := range set {
		if err := p.host.Load(coreCPU, addr); err != nil {
			return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
	}
	if err := p.resetRingCounters(); err != nil {
		return obs, err
	}
	for i := 0; i < p.opts.TrafficIters; i++ {
		for _, addr := range set {
			if err := p.host.Load(coreCPU, addr); err != nil {
				return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
			}
		}
	}
	threshold := p.counterThreshold(p.opts.TrafficIters*len(set),
		uint64(p.opts.TrafficIters)*uint64(len(set))*4)
	if err := p.collectObservation(&obs, threshold); err != nil {
		return obs, err
	}
	return obs, nil
}

// MeasureRequestTraffic monitors the AD (request) ring while a core cycles
// loads over a slice's eviction set: every miss sends a request flit from
// the core's tile to the slice's tile, a directed core→slice path. For
// LLC-only tiles this is the only way to observe them as a traffic *sink*
// (they cannot host a receiving thread), complementing the fill-based
// slice-source observations.
func (p *Prober) MeasureRequestTraffic(ctx context.Context, coreCPU, coreCHA, sliceCHA int) (Observation, error) {
	p.bind(ctx)
	return p.measureRequestTraffic(coreCPU, coreCHA, sliceCHA)
}

func (p *Prober) measureRequestTraffic(coreCPU, coreCHA, sliceCHA int) (Observation, error) {
	obs := Observation{SrcCHA: coreCHA, DstCHA: sliceCHA}
	if err := p.ensureCalibrated(); err != nil {
		return obs, err
	}
	set := p.homes[sliceCHA]
	if len(set) <= p.opts.L2Ways {
		return obs, cmerr.New(cmerr.Permanent, stage, "no eviction set for CHA %d", sliceCHA).AtCHA(sliceCHA)
	}
	// Warm pass (ownership transfers off the measured window).
	for _, addr := range set {
		if err := p.host.Load(coreCPU, addr); err != nil {
			return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
		}
	}
	if err := p.resetRingCountersOn(pmon.EvVertRingADInUse, pmon.EvHorzRingADInUse); err != nil {
		return obs, err
	}
	for i := 0; i < p.opts.TrafficIters; i++ {
		for _, addr := range set {
			if err := p.host.Load(coreCPU, addr); err != nil {
				return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
			}
		}
	}
	// Each miss sends one fill request and each eviction one more; about
	// two AD flits per access reach every on-path counter.
	threshold := p.counterThreshold(p.opts.TrafficIters*len(set),
		uint64(p.opts.TrafficIters)*uint64(len(set)))
	if err := p.collectObservation(&obs, threshold); err != nil {
		return obs, err
	}
	// Leave the counters in their default BL programming.
	if err := p.resetRingCounters(); err != nil {
		return obs, err
	}
	return obs, nil
}

// MeasureMemoryTraffic runs one memory-anchored experiment: the core
// flush+loads lines served by memory controller imc, so cache-line data
// streams from the IMC's tile to the core's tile on every access. The
// controller serving a line follows the documented channel interleaving
// (cache.IMCOf), and the IMC die positions are public — the resulting
// observations carry absolute position information the core-pair
// experiments cannot provide.
func (p *Prober) MeasureMemoryTraffic(ctx context.Context, cpu, coreCHA, imc, numIMC int) (Observation, error) {
	p.bind(ctx)
	return p.measureMemoryTraffic(cpu, coreCHA, imc, numIMC)
}

func (p *Prober) measureMemoryTraffic(cpu, coreCHA, imc, numIMC int) (Observation, error) {
	obs := Observation{SrcCHA: -1, DstCHA: coreCHA, Anchored: true, SrcIMC: imc}
	if err := p.ensureCalibrated(); err != nil {
		return obs, err
	}
	// Fresh lines in a region untouched by the cache-resident probing,
	// interleave-selected for the target controller.
	base := uint64(0x200000000) + uint64(p.rng.Intn(1<<12))*uint64(numIMC)*64
	var lines []uint64
	for i := 0; len(lines) < 2; i++ {
		addr := base + uint64(i)*64
		if cache.IMCOf(addr, numIMC) == imc {
			lines = append(lines, addr)
		}
	}
	if err := p.resetRingCounters(); err != nil {
		return obs, err
	}
	for i := 0; i < p.opts.TrafficIters; i++ {
		for _, addr := range lines {
			if err := p.host.Flush(cpu, addr); err != nil {
				return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
			}
			if err := p.host.Load(cpu, addr); err != nil {
				return obs, cmerr.Ensure(cmerr.Permanent, stage, err)
			}
		}
	}
	threshold := p.counterThreshold(p.opts.TrafficIters*len(lines)*2,
		uint64(p.opts.TrafficIters)*uint64(len(lines))*4)
	if err := p.collectObservation(&obs, threshold); err != nil {
		return obs, err
	}
	return obs, nil
}

// RunOptions selects which experiment families Run performs.
type RunOptions struct {
	// SliceSources, when true (the default used by Run), adds the
	// read-only LLC-only-slice → core experiments that anchor LLC-only
	// tiles; disable for a strictly paper-faithful measurement set.
	SliceSources bool
	// NumIMCs, when positive, adds the memory-anchored IMC → core
	// experiments (an extension beyond the paper; see
	// MeasureMemoryTraffic).
	NumIMCs int
}

// Run executes the full measurement pipeline with slice-source experiments
// enabled.
func (p *Prober) Run(ctx context.Context) (*Result, error) {
	return p.RunWith(ctx, RunOptions{SliceSources: true})
}

// RunWith executes the full measurement pipeline. With a ResultCache
// configured the complete Result is memoized under the chip's PPIN and
// the run/measurement options; callers receive a private deep copy.
// Degraded results — runs where experiments failed permanently — are
// never cached.
func (p *Prober) RunWith(ctx context.Context, ro RunOptions) (res *Result, err error) {
	ctx, span := obs.Start(ctx, "probe/run")
	defer func() {
		if res != nil {
			span.SetAttr("planned", int64(res.Planned)).
				SetAttr("completed", int64(res.Completed)).
				SetAttr("failures", int64(len(res.Failures)))
		}
		span.End(err)
	}()
	p.bind(ctx)
	ppin, err := p.readPPIN()
	if err != nil {
		return nil, err
	}
	c := p.opts.Cache
	if c == nil {
		return p.runWith(ppin, ro)
	}
	key := p.runKey(ppin, ro)
	var partial *Result
	v, err := c.full.Do(key, func() (any, error) {
		res, err := p.runWith(ppin, ro)
		if err != nil {
			partial = res
			return nil, err
		}
		return res, nil
	})
	if err != nil {
		if cmerr.IsInterrupted(err) || cmerr.IsDegraded(err) {
			c.full.Forget(key)
		}
		return partial, err
	}
	res = v.(*Result)
	if res.Degraded {
		c.full.Forget(key)
	}
	return res.clone(), nil
}

// runWith dispatches one uncached survey to the exhaustive or planned
// step-2 collector and publishes probe/ops_per_map — the host operations
// this map cost, the metric the adaptive planner exists to shrink.
func (p *Prober) runWith(ppin uint64, ro RunOptions) (*Result, error) {
	before := p.reg.Snapshot()
	var res *Result
	var err error
	if p.opts.Plan != nil {
		res, err = p.runPlanned(ppin, ro)
	} else {
		res, err = p.runExhaustive(ppin, ro)
	}
	if res != nil {
		ops := p.reg.Snapshot().Sub(before).Total("host/ops/")
		p.reg.Gauge("probe/ops_per_map").Set(int64(ops))
	}
	return res, err
}

// expFunc runs one planned measurement and reports whether an
// observation was recorded (false: skipped or degraded-around failure);
// a non-nil error aborts the run.
type expFunc func(op string, cpu, srcCHA, dstCHA int, skip bool, run func() (Observation, error)) (bool, error)

// initRun builds the Result shell shared by both collectors and the
// experiment closure that funnels every measurement through the
// degradation contract.
func (p *Prober) initRun(ppin uint64, mapping []int, failures []Failure) (*Result, expFunc) {
	res := &Result{
		PPIN:     ppin,
		NumCHA:   p.mon.NumCHA,
		OSToCHA:  mapping,
		Failures: failures,
	}
	for _, cha := range mapping {
		if cha >= 0 {
			res.CoreCHAs = append(res.CoreCHAs, cha)
		}
	}
	sortInts(res.CoreCHAs)

	// fail records one permanently failed experiment; interrupted errors
	// abort the run instead (and so does any failure under FailFast).
	// Each absorbed failure also lands in the flight recorder as an
	// event carrying full cmerr provenance — absorbing a failure into
	// Failures is exactly the moment a degraded run loses the error from
	// its return path, so the black box is the only place a post-mortem
	// can still find the (stage, op, CPU, CHA) coordinates.
	fail := func(op string, cpu, srcCHA, dstCHA int, err error) error {
		if cmerr.IsInterrupted(err) || p.opts.FailFast {
			return err
		}
		cha := srcCHA
		if cha < 0 {
			cha = dstCHA
		}
		obs.Event(p.ctx, "probe/experiment-failed",
			cmerr.Wrapf(cmerr.Permanent, stage, err, "%s experiment dropped", op).
				WithOp(op).OnCPU(cpu).AtCHA(cha))
		res.Failures = append(res.Failures, Failure{
			Op: op, CPU: cpu, SrcCHA: srcCHA, DstCHA: dstCHA, Err: err.Error(),
		})
		return nil
	}
	// experiment wraps one planned measurement: skipped units (unmapped
	// CPUs) count against coverage without running anything. The four
	// probe/experiments/* counters partition planned exactly into
	// completed + failed + skipped, which is what lets the RunReport
	// reconcile against Result.Planned/Completed.
	planned := p.reg.Counter("probe/experiments/planned")
	completed := p.reg.Counter("probe/experiments/completed")
	failed := p.reg.Counter("probe/experiments/failed")
	skipped := p.reg.Counter("probe/experiments/skipped")
	byOp := p.reg.CounterVec("probe/experiments_by_op", "op")
	experiment := func(op string, cpu, srcCHA, dstCHA int, skip bool, run func() (Observation, error)) (bool, error) {
		res.Planned++
		planned.Inc()
		byOp.With(op).Inc()
		if skip {
			skipped.Inc()
			return false, nil
		}
		obs, err := run()
		if err != nil {
			if ferr := fail(op, cpu, srcCHA, dstCHA, err); ferr != nil {
				return false, ferr
			}
			failed.Inc()
			return false, nil
		}
		res.Completed++
		completed.Inc()
		res.Observations = append(res.Observations, obs)
		return true, nil
	}
	return res, experiment
}

// finishRun applies the shared degradation/coverage tail of a survey.
func (p *Prober) finishRun(res *Result) error {
	res.Degraded = len(res.Failures) > 0 || res.Completed < res.Planned
	p.reg.Gauge("probe/coverage_permille").Set(int64(res.Coverage() * 1000))
	if f := p.opts.MinCoverage; f > 0 && res.Coverage() < f {
		return cmerr.New(cmerr.Degraded, stage,
			"experiment coverage %.3f below floor %.3f (%d/%d completed, %d failures)",
			res.Coverage(), f, res.Completed, res.Planned, len(res.Failures))
	}
	return nil
}

func (p *Prober) runExhaustive(ppin uint64, ro RunOptions) (*Result, error) {
	mapping, failures, err := p.runStep1()
	if err != nil {
		return nil, err
	}
	res, experiment := p.initRun(ppin, mapping, failures)

	n := len(mapping)
	for src := 0; src < n; src++ {
		p.progress("pair-traffic", src, n)
		for sink := 0; sink < n; sink++ {
			if src == sink {
				continue
			}
			srcCHA, sinkCHA := mapping[src], mapping[sink]
			src, sink := src, sink
			_, err := experiment("pair", src, srcCHA, sinkCHA, srcCHA < 0 || sinkCHA < 0,
				func() (Observation, error) { return p.measureTraffic(src, sink, srcCHA, sinkCHA) })
			if err != nil {
				return nil, err
			}
		}
	}
	if ro.SliceSources {
		for _, sliceCHA := range res.LLCOnlyCHAs() {
			for cpu, coreCHA := range mapping {
				sliceCHA, cpu, coreCHA := sliceCHA, cpu, coreCHA
				_, err := experiment("slice", cpu, sliceCHA, coreCHA, coreCHA < 0,
					func() (Observation, error) { return p.measureSliceTraffic(cpu, coreCHA, sliceCHA) })
				if err != nil {
					return nil, err
				}
				_, err = experiment("request", cpu, coreCHA, sliceCHA, coreCHA < 0,
					func() (Observation, error) { return p.measureRequestTraffic(cpu, coreCHA, sliceCHA) })
				if err != nil {
					return nil, err
				}
			}
		}
	}
	for imc := 0; imc < ro.NumIMCs; imc++ {
		for cpu, coreCHA := range mapping {
			imc, cpu, coreCHA := imc, cpu, coreCHA
			_, err := experiment("memory", cpu, -1, coreCHA, coreCHA < 0,
				func() (Observation, error) { return p.measureMemoryTraffic(cpu, coreCHA, imc, ro.NumIMCs) })
			if err != nil {
				return nil, err
			}
		}
	}
	if err := p.finishRun(res); err != nil {
		return res, err
	}
	return res, nil
}

// runPlanned is the adaptive step-2 collector. It builds the same
// candidate pool the exhaustive sweep would walk — in the same order, so
// pool indices are a deterministic tie-break — skip-counts unmapped
// combinations identically, and then lets the planner choose which
// candidates to measure. Candidates the planner never issues are simply
// absent from Result.Planned: coverage remains "completed / attempted",
// and plan/skipped records how much of the exhaustive sweep was avoided.
func (p *Prober) runPlanned(ppin uint64, ro RunOptions) (*Result, error) {
	mapping, failures, err := p.runStep1()
	if err != nil {
		return nil, err
	}
	res, experiment := p.initRun(ppin, mapping, failures)

	var cands []plan.Candidate
	n := len(mapping)
	for src := 0; src < n; src++ {
		for sink := 0; sink < n; sink++ {
			if src == sink {
				continue
			}
			srcCHA, sinkCHA := mapping[src], mapping[sink]
			if srcCHA < 0 || sinkCHA < 0 {
				if _, err := experiment("pair", src, srcCHA, sinkCHA, true, nil); err != nil {
					return nil, err
				}
				continue
			}
			cands = append(cands, plan.Candidate{
				Kind: plan.KindPair, SrcCHA: srcCHA, DstCHA: sinkCHA, SrcCPU: src, DstCPU: sink,
			})
		}
	}
	if ro.SliceSources {
		for _, sliceCHA := range res.LLCOnlyCHAs() {
			for cpu, coreCHA := range mapping {
				if coreCHA < 0 {
					if _, err := experiment("slice", cpu, sliceCHA, coreCHA, true, nil); err != nil {
						return nil, err
					}
					if _, err := experiment("request", cpu, coreCHA, sliceCHA, true, nil); err != nil {
						return nil, err
					}
					continue
				}
				cands = append(cands,
					plan.Candidate{Kind: plan.KindSlice, SrcCHA: sliceCHA, DstCHA: coreCHA, SrcCPU: -1, DstCPU: cpu},
					plan.Candidate{Kind: plan.KindRequest, SrcCHA: coreCHA, DstCHA: sliceCHA, SrcCPU: cpu, DstCPU: -1})
			}
		}
	}
	for imc := 0; imc < ro.NumIMCs; imc++ {
		for cpu, coreCHA := range mapping {
			if coreCHA < 0 {
				if _, err := experiment("memory", cpu, -1, coreCHA, true, nil); err != nil {
					return nil, err
				}
				continue
			}
			cands = append(cands, plan.Candidate{
				Kind: plan.KindMemory, SrcCHA: -1, DstCHA: coreCHA, IMC: imc, SrcCPU: -1, DstCPU: cpu,
			})
		}
	}

	pm, err := plan.New(*p.opts.Plan, p.mon.NumCHA, cands)
	if err != nil {
		return nil, err
	}
	round := 0
	roundCost := p.reg.Histogram("plan/round_cost")
	roundUS := p.reg.Histogram("plan/round_us")
	for {
		batch, err := pm.NextBatch(p.ctx)
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			break
		}
		p.progress("planned-traffic", round, round+1)
		round++
		roundStart := p.clock.Now()
		for _, ci := range batch {
			done, err := p.runCandidate(experiment, pm.Candidate(ci), ro)
			if err != nil {
				return nil, err
			}
			if done {
				pm.Observe(ci, planObservation(res.Observations[len(res.Observations)-1]))
			} else {
				pm.Fail(ci)
			}
		}
		// Round cost (experiments issued) and wall time distribution:
		// the planner's value proposition is that later rounds shrink,
		// and these two histograms are what coremaptop renders for it.
		roundCost.Observe(int64(len(batch)))
		roundUS.Observe(p.clock.Now().Sub(roundStart).Microseconds())
	}
	st := pm.Stats()
	p.reg.Gauge("plan/rounds").Set(int64(st.Rounds))
	p.reg.Gauge("plan/enumerations").Set(int64(st.Enumerations))
	p.reg.Gauge("plan/measured").Set(int64(st.Measured))
	p.reg.Gauge("plan/skipped").Set(int64(st.Skipped))
	p.reg.Gauge("plan/ambiguity").Set(int64(st.Ambiguity))
	p.reg.Gauge("plan/converged").Set(b2g(st.Converged))
	p.reg.Gauge("plan/fallback").Set(b2g(st.Fallback))
	if err := p.finishRun(res); err != nil {
		return res, err
	}
	return res, nil
}

func b2g(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// runCandidate executes one planner-issued candidate through the shared
// experiment path, with the same op labels, failure records and
// measurement calls as the exhaustive sweep.
func (p *Prober) runCandidate(experiment expFunc, c plan.Candidate, ro RunOptions) (bool, error) {
	switch c.Kind {
	case plan.KindPair:
		return experiment("pair", c.SrcCPU, c.SrcCHA, c.DstCHA, false,
			func() (Observation, error) { return p.measureTraffic(c.SrcCPU, c.DstCPU, c.SrcCHA, c.DstCHA) })
	case plan.KindSlice:
		return experiment("slice", c.DstCPU, c.SrcCHA, c.DstCHA, false,
			func() (Observation, error) { return p.measureSliceTraffic(c.DstCPU, c.DstCHA, c.SrcCHA) })
	case plan.KindRequest:
		return experiment("request", c.SrcCPU, c.SrcCHA, c.DstCHA, false,
			func() (Observation, error) { return p.measureRequestTraffic(c.SrcCPU, c.SrcCHA, c.DstCHA) })
	case plan.KindMemory:
		return experiment("memory", c.DstCPU, -1, c.DstCHA, false,
			func() (Observation, error) { return p.measureMemoryTraffic(c.DstCPU, c.DstCHA, c.IMC, ro.NumIMCs) })
	}
	return false, cmerr.New(cmerr.Permanent, stage, "unknown candidate kind %d", c.Kind)
}

// planObservation converts a recorded observation into the planner's
// mirror type. The observer slices are shared read-only.
func planObservation(o Observation) plan.Observation {
	return plan.Observation{
		SrcCHA: o.SrcCHA, DstCHA: o.DstCHA,
		Anchored: o.Anchored, SrcIMC: o.SrcIMC,
		Up: o.Up, Down: o.Down, Horz: o.Horz,
	}
}

// runStep1 is mapCoresToCHAs routed through the step-1 cache when one is
// configured, returning the mapping together with its degradation record.
func (p *Prober) runStep1() ([]int, []Failure, error) {
	mapping, err := p.MapCoresToCHAs(p.ctx)
	if err != nil {
		return nil, nil, err
	}
	return mapping, append([]Failure(nil), p.step1Failures...), nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
