package probe

import (
	"context"
	"testing"

	"coremap/internal/machine"
	"coremap/internal/mesh"
)

func newProber(t *testing.T, m *machine.Machine) *Prober {
	t.Helper()
	p, err := New(m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiscoverCHAs(t *testing.T) {
	for _, sku := range machine.SKUs {
		m := machine.Generate(sku, 0, machine.Config{Seed: 1})
		p := newProber(t, m)
		if p.NumCHA() != m.NumCHAs() {
			t.Errorf("%s: discovered %d CHAs, want %d", sku.Name, p.NumCHA(), m.NumCHAs())
		}
	}
}

func TestReadPPIN(t *testing.T) {
	m := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 2})
	p := newProber(t, m)
	ppin, err := p.ReadPPIN(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ppin != m.PPIN {
		t.Errorf("PPIN = %#x, want %#x", ppin, m.PPIN)
	}
}

func TestFindLineHomeMatchesSecretHash(t *testing.T) {
	m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 3})
	p := newProber(t, m)
	for i := 0; i < 40; i++ {
		addr := 0x10000000 + uint64(i)*4096
		got, err := p.FindLineHome(context.Background(), addr)
		if err != nil {
			t.Fatal(err)
		}
		if want := m.TrueHomeCHA(addr); got != want {
			t.Errorf("home of %#x = CHA %d, want %d", addr, got, want)
		}
	}
}

func TestBuildEvictionSets(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 4})
	p := newProber(t, m)
	if err := p.BuildEvictionSets(context.Background()); err != nil {
		t.Fatal(err)
	}
	for cha := 0; cha < p.NumCHA(); cha++ {
		set := p.EvictionSet(cha)
		if len(set) != p.opts.L2Ways+1 {
			t.Fatalf("CHA %d eviction set has %d lines, want %d", cha, len(set), p.opts.L2Ways+1)
		}
		wantSet := set[0] / 64 % uint64(p.opts.L2Sets)
		for _, addr := range set {
			if m.TrueHomeCHA(addr) != cha {
				t.Errorf("CHA %d eviction set contains line %#x homed at CHA %d", cha, addr, m.TrueHomeCHA(addr))
			}
			if got := addr / 64 % uint64(p.opts.L2Sets); got != wantSet {
				t.Errorf("CHA %d eviction set mixes L2 sets (%d vs %d)", cha, got, wantSet)
			}
		}
	}
}

func TestMapCoresToCHAs(t *testing.T) {
	for _, sku := range []*machine.SKU{machine.SKU8124M, machine.SKU8259CL} {
		m := machine.Generate(sku, 0, machine.Config{Seed: 5})
		p := newProber(t, m)
		got, err := p.MapCoresToCHAs(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want := m.TrueOSToCHA()
		for cpu := range want {
			if got[cpu] != want[cpu] {
				t.Errorf("%s: OS %d → CHA %d, want %d", sku.Name, cpu, got[cpu], want[cpu])
			}
		}
	}
}

func TestMapCoresToCHAsWithNoise(t *testing.T) {
	m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 6, NoiseFlits: 2, NoiseEveryOps: 16})
	p := newProber(t, m)
	got, err := p.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := m.TrueOSToCHA()
	for cpu := range want {
		if got[cpu] != want[cpu] {
			t.Errorf("OS %d → CHA %d, want %d (noise run)", cpu, got[cpu], want[cpu])
		}
	}
}

// expectedObservation computes the ground-truth observation for a directed
// tile path from the mesh routing rules.
func expectedObservation(m *machine.Machine, src, dst mesh.Coord) (up, down, horz []int) {
	for _, h := range m.Grid.Route(src, dst) {
		tl := m.Grid.Tile(h.To)
		if !tl.Kind.HasCHA() {
			continue
		}
		switch {
		case h.Ch == mesh.Up:
			up = append(up, tl.CHA)
		case h.Ch == mesh.Down:
			down = append(down, tl.CHA)
		default:
			horz = append(horz, tl.CHA)
		}
	}
	sortInts(up)
	sortInts(down)
	sortInts(horz)
	return up, down, horz
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMeasureTrafficMatchesRoute(t *testing.T) {
	m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 7})
	p := newProber(t, m)
	mapping, err := p.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {0, 23}, {5, 17}, {12, 3}, {20, 2}}
	for _, pair := range pairs {
		src, sink := pair[0], pair[1]
		obs, err := p.MeasureTraffic(context.Background(), src, sink, mapping[src], mapping[sink])
		if err != nil {
			t.Fatal(err)
		}
		up, down, horz := expectedObservation(m, m.TrueCoreCoord(src), m.TrueCoreCoord(sink))
		if !sameInts(obs.Up, up) || !sameInts(obs.Down, down) || !sameInts(obs.Horz, horz) {
			t.Errorf("pair %d→%d: observation up=%v down=%v horz=%v, want %v/%v/%v",
				src, sink, obs.Up, obs.Down, obs.Horz, up, down, horz)
		}
	}
}

func TestMeasureSliceTrafficMatchesRoute(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 8})
	p := newProber(t, m)
	mapping, err := p.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{NumCHA: p.NumCHA(), OSToCHA: mapping}
	llcOnly := res.LLCOnlyCHAs()
	if len(llcOnly) != 2 {
		t.Fatalf("8259CL reported %d LLC-only CHAs, want 2", len(llcOnly))
	}
	for _, sliceCHA := range llcOnly {
		for _, cpu := range []int{0, 11, 23} {
			obs, err := p.MeasureSliceTraffic(context.Background(), cpu, mapping[cpu], sliceCHA)
			if err != nil {
				t.Fatal(err)
			}
			sliceCoord, ok := m.Grid.FindCHA(sliceCHA)
			if !ok {
				t.Fatalf("CHA %d not on grid", sliceCHA)
			}
			up, down, horz := expectedObservation(m, sliceCoord, m.TrueCoreCoord(cpu))
			if !sameInts(obs.Up, up) || !sameInts(obs.Down, down) || !sameInts(obs.Horz, horz) {
				t.Errorf("slice %d→cpu %d: observation up=%v down=%v horz=%v, want %v/%v/%v",
					sliceCHA, cpu, obs.Up, obs.Down, obs.Horz, up, down, horz)
			}
			// The AD-ring request experiment observes the reverse path:
			// core → slice.
			req, err := p.MeasureRequestTraffic(context.Background(), cpu, mapping[cpu], sliceCHA)
			if err != nil {
				t.Fatal(err)
			}
			up, down, horz = expectedObservation(m, m.TrueCoreCoord(cpu), sliceCoord)
			if !sameInts(req.Up, up) || !sameInts(req.Down, down) || !sameInts(req.Horz, horz) {
				t.Errorf("request cpu %d→slice %d: observation up=%v down=%v horz=%v, want %v/%v/%v",
					cpu, sliceCHA, req.Up, req.Down, req.Horz, up, down, horz)
			}
			if req.SrcCHA != mapping[cpu] || req.DstCHA != sliceCHA {
				t.Errorf("request observation endpoints %d→%d, want %d→%d",
					req.SrcCHA, req.DstCHA, mapping[cpu], sliceCHA)
			}
		}
	}
}

func TestRunProducesAllPairs(t *testing.T) {
	m := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 9})
	p := newProber(t, m)
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cores := m.NumCPUs()
	if want := cores * (cores - 1); len(res.Observations) != want {
		t.Errorf("got %d observations, want %d (all ordered core pairs)", len(res.Observations), want)
	}
	if len(res.LLCOnlyCHAs()) != 0 {
		t.Errorf("8124M reported LLC-only CHAs: %v", res.LLCOnlyCHAs())
	}
	if len(res.CoreCHAs) != cores {
		t.Errorf("CoreCHAs has %d entries, want %d", len(res.CoreCHAs), cores)
	}
	for i := 1; i < len(res.CoreCHAs); i++ {
		if res.CoreCHAs[i] <= res.CoreCHAs[i-1] {
			t.Fatal("CoreCHAs not sorted ascending")
		}
	}
}

func TestRunIncludesSliceSourceObservations(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 10})
	p := newProber(t, m)
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cores := m.NumCPUs()
	// Per LLC-only slice and core: one slice-source (fill) and one
	// request-sink (AD) observation on top of the core-pair set.
	want := cores*(cores-1) + 2*2*cores
	if len(res.Observations) != want {
		t.Errorf("got %d observations, want %d", len(res.Observations), want)
	}
	// Paper-faithful mode must skip them.
	p2 := newProber(t, machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 10}))
	res2, err := p2.RunWith(context.Background(), RunOptions{SliceSources: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Observations) != cores*(cores-1) {
		t.Errorf("paper-faithful run: got %d observations, want %d", len(res2.Observations), cores*(cores-1))
	}
}

func TestProgressCallbacks(t *testing.T) {
	m := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 16})
	stages := map[string]int{}
	p, err := New(m, Options{Seed: 1, Progress: func(stage string, done, total int) {
		if done < 0 || done >= total {
			t.Errorf("progress %s: done %d outside [0,%d)", stage, done, total)
		}
		stages[stage]++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if stages["core-to-cha"] != m.NumCPUs() {
		t.Errorf("core-to-cha callbacks = %d, want %d", stages["core-to-cha"], m.NumCPUs())
	}
	if stages["pair-traffic"] != m.NumCPUs() {
		t.Errorf("pair-traffic callbacks = %d, want %d", stages["pair-traffic"], m.NumCPUs())
	}
}

func TestObservationThresholdSuppressesNoise(t *testing.T) {
	m := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 11, NoiseFlits: 2, NoiseEveryOps: 16})
	p := newProber(t, m)
	mapping, err := p.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	obs, err := p.MeasureTraffic(context.Background(), 0, 1, mapping[0], mapping[1])
	if err != nil {
		t.Fatal(err)
	}
	up, down, horz := expectedObservation(m, m.TrueCoreCoord(0), m.TrueCoreCoord(1))
	if !sameInts(obs.Up, up) || !sameInts(obs.Down, down) || !sameInts(obs.Horz, horz) {
		t.Errorf("noisy observation diverged: up=%v down=%v horz=%v, want %v/%v/%v",
			obs.Up, obs.Down, obs.Horz, up, down, horz)
	}
}
