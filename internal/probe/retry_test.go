package probe

import (
	"context"
	"errors"
	"testing"
	"time"

	"coremap/internal/cmerr"
	"coremap/internal/hostif"
	"coremap/internal/msr"
)

// flakyHost fails every MSR read with a Transient error until `failures`
// attempts have been burned, then succeeds.
type flakyHost struct {
	hostif.Host
	failures int
	attempts int
}

func (f *flakyHost) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	f.attempts++
	if f.attempts <= f.failures {
		return 0, cmerr.New(cmerr.Transient, "test", "flaky rdmsr").WithOp("rdmsr").OnCPU(cpu)
	}
	return 42, nil
}

// nullHost is the do-nothing base for the flaky decorator.
type nullHost struct{}

func (nullHost) NumCPUs() int                          { return 1 }
func (nullHost) ReadMSR(int, msr.Addr) (uint64, error) { return 0, nil }
func (nullHost) WriteMSR(int, msr.Addr, uint64) error  { return nil }
func (nullHost) Load(int, uint64) error                { return nil }
func (nullHost) Store(int, uint64) error               { return nil }
func (nullHost) Flush(int, uint64) error               { return nil }
func (nullHost) TimedLoad(int, uint64) (uint64, error) { return 0, nil }

func TestRetryAbsorbsTransientFaults(t *testing.T) {
	// Three retries cover up to three consecutive transient failures.
	f := &flakyHost{Host: nullHost{}, failures: 3}
	r := newRetryHost(context.Background(), f, 3, time.Microsecond, nil)
	v, err := r.ReadMSR(0, 0x100)
	if err != nil {
		t.Fatalf("retry did not absorb %d transient faults: %v", f.failures, err)
	}
	if v != 42 {
		t.Errorf("value = %d, want 42", v)
	}
	if f.attempts != 4 {
		t.Errorf("attempts = %d, want 4", f.attempts)
	}
}

func TestRetryExhaustionEscalatesToPermanent(t *testing.T) {
	f := &flakyHost{Host: nullHost{}, failures: 1 << 30}
	r := newRetryHost(context.Background(), f, 3, time.Microsecond, nil)
	_, err := r.ReadMSR(7, 0x100)
	if err == nil {
		t.Fatal("persistent transient fault succeeded")
	}
	if !cmerr.IsPermanent(err) {
		t.Errorf("exhausted retries are classified %v, want Permanent", cmerr.ClassOf(err))
	}
	if cmerr.ClassOf(err) != cmerr.Permanent {
		t.Errorf("outermost class = %v, want Permanent", cmerr.ClassOf(err))
	}
	// The transient cause stays reachable for callers that care.
	if !errors.Is(err, cmerr.Transient) {
		t.Errorf("escalated error no longer matches the inner Transient cause")
	}
	var ce *cmerr.Error
	if !errors.As(err, &ce) || ce.CPU != 7 || ce.Op != "rdmsr" {
		t.Errorf("escalated error lost provenance: %+v", ce)
	}
	if f.attempts != 4 {
		t.Errorf("attempts = %d, want 4 (1 initial + 3 retries)", f.attempts)
	}
}

func TestRetryPassesNonTransientThrough(t *testing.T) {
	calls := 0
	hard := cmerr.New(cmerr.Permanent, "test", "broken")
	f := &funcHost{Host: nullHost{}, load: func(int, uint64) error { calls++; return hard }}
	r := newRetryHost(context.Background(), f, 3, time.Microsecond, nil)
	if err := r.Load(0, 0); !errors.Is(err, hard) {
		t.Fatalf("err = %v, want the permanent cause", err)
	}
	if calls != 1 {
		t.Errorf("permanent error was retried %d times", calls)
	}
}

func TestRetryHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &flakyHost{Host: nullHost{}, failures: 1 << 30}
	// A long backoff would hang here if the sleep ignored the context.
	r := newRetryHost(ctx, f, 3, time.Hour, nil)
	start := time.Now()
	_, err := r.ReadMSR(0, 0x100)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatalf("cancelled retry slept %v", time.Since(start))
	}
	if !cmerr.IsInterrupted(err) {
		t.Errorf("err = %v, want Interrupted", err)
	}
}

func TestRetryDisabled(t *testing.T) {
	f := &flakyHost{Host: nullHost{}, failures: 1}
	r := newRetryHost(context.Background(), f, 0, time.Microsecond, nil)
	if _, err := r.ReadMSR(0, 0x100); !cmerr.IsTransient(err) {
		t.Fatalf("retries=0 must pass the transient fault through, got %v", err)
	}
	if f.attempts != 1 {
		t.Errorf("attempts = %d, want 1", f.attempts)
	}
}

// funcHost overrides Load with a closure.
type funcHost struct {
	hostif.Host
	load func(int, uint64) error
}

func (f *funcHost) Load(cpu int, addr uint64) error { return f.load(cpu, addr) }
