package probe

import (
	"context"
	"errors"
	"testing"

	"coremap/internal/cache"
	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/msr"
)

func TestMeasureMemoryTrafficMatchesRoute(t *testing.T) {
	sku := machine.SKU8175M
	m := machine.Generate(sku, 0, machine.Config{Seed: 12})
	p := newProber(t, m)
	mapping, err := p.MapCoresToCHAs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, cpu := range []int{0, 13} {
		for imc := range sku.IMC {
			obs, err := p.MeasureMemoryTraffic(context.Background(), cpu, mapping[cpu], imc, len(sku.IMC))
			if err != nil {
				t.Fatal(err)
			}
			if !obs.Anchored || obs.SrcIMC != imc || obs.SrcCHA != -1 {
				t.Fatalf("observation not anchored correctly: %+v", obs)
			}
			up, down, horz := expectedObservation(m, sku.IMC[imc], m.TrueCoreCoord(cpu))
			if !sameInts(obs.Up, up) || !sameInts(obs.Down, down) || !sameInts(obs.Horz, horz) {
				t.Errorf("cpu %d imc %d: %v/%v/%v, want %v/%v/%v",
					cpu, imc, obs.Up, obs.Down, obs.Horz, up, down, horz)
			}
		}
	}
}

func TestMeasureMemoryTrafficUsesInterleave(t *testing.T) {
	// The address selection must honour the public channel interleave.
	for imc := 0; imc < 2; imc++ {
		addr := uint64(0x200000000)
		for cache.IMCOf(addr, 2) != imc {
			addr += 64
		}
		if cache.IMCOf(addr, 2) != imc {
			t.Fatalf("interleave selection failed for imc %d", imc)
		}
	}
}

func TestMeasureTrafficUnknownSink(t *testing.T) {
	m := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 13})
	p := newProber(t, m)
	if _, err := p.MeasureTraffic(context.Background(), 0, 1, 0, 1); err == nil {
		t.Error("MeasureTraffic without eviction sets succeeded")
	}
	if _, err := p.MeasureSliceTraffic(context.Background(), 0, 0, 5); err == nil {
		t.Error("MeasureSliceTraffic without eviction sets succeeded")
	}
}

// failingHost wraps a machine and fails every host operation after a
// budget, exercising the probe's error propagation.
type failingHost struct {
	*machine.Machine
	budget int
}

var errInjected = errors.New("injected host failure")

func (f *failingHost) spend() error {
	f.budget--
	if f.budget < 0 {
		return errInjected
	}
	return nil
}

func (f *failingHost) Load(cpu int, addr uint64) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.Machine.Load(cpu, addr)
}

func (f *failingHost) Store(cpu int, addr uint64) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.Machine.Store(cpu, addr)
}

func (f *failingHost) Flush(cpu int, addr uint64) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.Machine.Flush(cpu, addr)
}

func TestProbeSurfacesHostFailures(t *testing.T) {
	// Learn how many host operations a clean run needs, then inject the
	// failure at several points inside that span: whatever stage it
	// lands in, Run must surface the injected error rather than
	// fabricate results.
	clean := &failingHost{
		Machine: machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 14}),
		budget:  1 << 60,
	}
	p, err := New(clean, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	totalOps := int(1<<60) - clean.budget

	for _, budget := range []int{0, totalOps / 10, totalOps / 2, totalOps - 10} {
		m := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 14})
		host := &failingHost{Machine: m, budget: budget}
		p, err := New(host, Options{Seed: 1, FailFast: true})
		if err != nil {
			t.Fatal(err)
		}
		_, err = p.Run(context.Background())
		if err == nil {
			t.Fatalf("budget %d/%d: FailFast Run succeeded despite injected failures", budget, totalOps)
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("budget %d: error %v does not wrap the injected failure", budget, err)
		}

		// Without FailFast the same fault either still aborts (when it
		// hits run-level infrastructure like calibration or eviction-set
		// discovery) or is degraded around — but never silently ignored.
		m = machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 14})
		p, err = New(&failingHost{Machine: m, budget: budget}, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background())
		if err == nil {
			if !res.Degraded || len(res.Failures) == 0 {
				t.Fatalf("budget %d: degraded-mode Run absorbed faults without marking the result degraded", budget)
			}
			if res.Coverage() >= 1 {
				t.Fatalf("budget %d: degraded result claims full coverage", budget)
			}
		} else if !errors.Is(err, errInjected) {
			t.Fatalf("budget %d: degraded-mode error %v does not wrap the injected failure", budget, err)
		}
	}
}

func TestFindLineHomeNeedsTwoCPUs(t *testing.T) {
	sku := &machine.SKU{
		Name:           "uniprocessor",
		Generation:     machine.Skylake,
		Rows:           2,
		Cols:           2,
		Cores:          1,
		PatternWeights: []float64{1},
	}
	m := machine.New(sku, sku.Pattern(0), machine.Config{Seed: 15})
	p, err := New(m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.FindLineHome(context.Background(), 0x1000); err == nil {
		t.Error("FindLineHome succeeded with a single CPU")
	}
}

func TestDiscoverCHAsNoPMON(t *testing.T) {
	host := bareHost{}
	if _, err := New(host, Options{}); err == nil {
		t.Error("New succeeded on a host without CHA PMON")
	}
}

// bareHost implements hostif.Host with an empty MSR space.
type bareHost struct{}

func (bareHost) NumCPUs() int { return 2 }
func (bareHost) ReadMSR(int, msr.Addr) (uint64, error) {
	return 0, msr.ErrNoSuchMSR
}
func (bareHost) WriteMSR(int, msr.Addr, uint64) error  { return msr.ErrNoSuchMSR }
func (bareHost) Load(int, uint64) error                { return nil }
func (bareHost) Store(int, uint64) error               { return nil }
func (bareHost) Flush(int, uint64) error               { return nil }
func (bareHost) TimedLoad(int, uint64) (uint64, error) { return 0, nil }

var _ = mesh.Coord{} // keep the import for expectedObservation's signature
