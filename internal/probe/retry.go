package probe

import (
	"context"
	"time"

	"coremap/internal/cmerr"
	"coremap/internal/hostif"
	"coremap/internal/msr"
	"coremap/internal/obs"
)

// retryHost decorates a (context-bound) hostif.Host with per-operation
// retry: a host operation failing with a cmerr.Transient error — the class
// a flaky MSR read or an injected fault carries — is retried up to
// `retries` more times with exponential backoff before being escalated to
// cmerr.Permanent ("retries exhausted"). Non-transient errors pass through
// untouched, so a cancelled context or a structural failure never burns
// the retry budget.
//
// Retry lives at the operation level rather than the experiment level on
// purpose: a measurement experiment performs thousands of host operations,
// so even a small per-op transient fault rate would make every
// experiment-level retry fail somewhere and the pipeline would never
// converge. Retrying the single failed operation keeps the effective
// failure probability at rateⁿ⁺¹ per op, which the degradation layer in
// RunWith can absorb.
type retryHost struct {
	h       hostif.Host
	ctx     context.Context
	retries int
	backoff time.Duration
	retried *obs.Counter // probe/retries; nil (no-op) without telemetry
}

func newRetryHost(ctx context.Context, h hostif.Host, retries int, backoff time.Duration, retried *obs.Counter) hostif.Host {
	if retries <= 0 {
		return h
	}
	return retryHost{h: h, ctx: ctx, retries: retries, backoff: backoff, retried: retried}
}

// sleepCtx waits for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return cmerr.FromContext(ctx, "probe")
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return cmerr.FromContext(ctx, "probe")
	case <-t.C:
		return nil
	}
}

// do runs fn with the retry policy.
func (r retryHost) do(op string, cpu int, fn func() error) error {
	var err error
	backoff := r.backoff
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !cmerr.IsTransient(err) || attempt >= r.retries {
			break
		}
		r.retried.Inc()
		if serr := sleepCtx(r.ctx, backoff); serr != nil {
			return serr
		}
		backoff *= 2
	}
	if err != nil && cmerr.IsTransient(err) {
		return cmerr.Wrapf(cmerr.Permanent, "probe", err,
			"%s retries exhausted after %d attempts", op, r.retries+1).WithOp(op).OnCPU(cpu)
	}
	return err
}

func (r retryHost) NumCPUs() int { return r.h.NumCPUs() }

func (r retryHost) ReadMSR(cpu int, a msr.Addr) (uint64, error) {
	var v uint64
	err := r.do("rdmsr", cpu, func() (e error) { v, e = r.h.ReadMSR(cpu, a); return })
	return v, err
}

func (r retryHost) WriteMSR(cpu int, a msr.Addr, v uint64) error {
	return r.do("wrmsr", cpu, func() error { return r.h.WriteMSR(cpu, a, v) })
}

func (r retryHost) Load(cpu int, addr uint64) error {
	return r.do("load", cpu, func() error { return r.h.Load(cpu, addr) })
}

func (r retryHost) TimedLoad(cpu int, addr uint64) (uint64, error) {
	var c uint64
	err := r.do("timed-load", cpu, func() (e error) { c, e = r.h.TimedLoad(cpu, addr); return })
	return c, err
}

func (r retryHost) Store(cpu int, addr uint64) error {
	return r.do("store", cpu, func() error { return r.h.Store(cpu, addr) })
}

func (r retryHost) Flush(cpu int, addr uint64) error {
	return r.do("flush", cpu, func() error { return r.h.Flush(cpu, addr) })
}
