package probe

import (
	"crypto/sha256"
	"encoding/binary"

	"coremap/internal/memo"
	"coremap/internal/obs"
)

// ResultCache memoizes measurement results by chip identity. The paper's
// own observation motivates it: a chip's core map is a stable property of
// the part, identified by its PPIN, so re-surveying a fleet re-measures
// chips whose answers cannot have changed. The cache keys on
// (PPIN, measurement options, experiment selection) — a content address
// of everything that determines the outcome — and stores two layers:
//
//   - the step-1 state (OS↔CHA mapping, eviction sets, calibration),
//     which Table I-style surveys reuse directly;
//   - the full measurement Result, which the complete pipeline reuses.
//
// Like the reconstruction cache it is single-flight: concurrent misses
// on one chip trigger exactly one measurement.
type ResultCache struct {
	step1 *memo.Group
	full  *memo.Group
}

// NewResultCache returns an empty measurement cache.
func NewResultCache() *ResultCache {
	return &ResultCache{step1: memo.NewGroup(), full: memo.NewGroup()}
}

// Stats returns the combined hit/miss/coalesced counters of both layers.
func (c *ResultCache) Stats() memo.Stats {
	s1, sf := c.step1.Stats(), c.full.Stats()
	return memo.Stats{
		Hits:      s1.Hits + sf.Hits,
		Misses:    s1.Misses + sf.Misses,
		Coalesced: s1.Coalesced + sf.Coalesced,
	}
}

// Len returns the number of cached entries across both layers.
func (c *ResultCache) Len() int { return c.step1.Len() + c.full.Len() }

// Register wires both cache layers into reg under probe/cache/* (the
// registrations are additive, so the gauges show the combined counters,
// matching Stats). No-op on a nil cache or registry; an exact-duplicate
// registration is reported by the registry.
func (c *ResultCache) Register(reg *obs.Registry) error {
	if c == nil {
		return nil
	}
	if err := c.step1.Register(reg, "probe/cache"); err != nil {
		return err
	}
	return c.full.Register(reg, "probe/cache")
}

// step1State is the cached outcome of step 1: everything the prober
// learns before the pair-traffic sweep.
type step1State struct {
	mapping         []int
	failures        []Failure
	homes           map[int][]uint64
	noisePerOpMilli uint64
	calibrated      bool
}

// snapshotStep1 captures the prober's step-1 state for caching.
func (p *Prober) snapshotStep1(mapping []int, failures []Failure) *step1State {
	st := &step1State{
		mapping:         append([]int(nil), mapping...),
		failures:        append([]Failure(nil), failures...),
		homes:           make(map[int][]uint64, len(p.homes)),
		noisePerOpMilli: p.noisePerOpMilli,
		calibrated:      p.calibrated,
	}
	for cha, set := range p.homes {
		st.homes[cha] = append([]uint64(nil), set...)
	}
	return st
}

// installStep1 restores cached step-1 state into the prober. Addresses in
// the eviction sets are valid because the cache key pins the chip (PPIN)
// and every measurement option.
func (p *Prober) installStep1(st *step1State) {
	p.homes = make(map[int][]uint64, len(st.homes))
	for cha, set := range st.homes {
		p.homes[cha] = append([]uint64(nil), set...)
	}
	p.noisePerOpMilli = st.noisePerOpMilli
	p.calibrated = st.calibrated
}

// optionsKey encodes every Options field that can change a measurement
// outcome (Progress and Cache itself are behavioral, not semantic).
func (p *Prober) optionsKey(buf []byte) []byte {
	o := p.opts
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	for _, v := range []int64{
		int64(o.L2Sets), int64(o.L2Ways), int64(o.HomeSamples),
		int64(o.EvictRounds), int64(o.TrafficIters), int64(o.Threshold),
		b2i(o.NoCalibration), int64(o.MaxCandidates), o.Seed,
		b2i(o.FailFast), int64(o.MinCoverage * 1e6),
	} {
		buf = binary.AppendVarint(buf, v)
	}
	// A planned and an exhaustive survey measure different experiment
	// subsets (and plan mode switches step 1 to the guided sweep), so the
	// planner configuration is part of the content address.
	if pc := o.Plan; pc != nil {
		buf = append(buf, 1)
		for _, v := range []int64{
			int64(pc.Rows), int64(pc.Cols), int64(len(pc.IMCPositions)),
		} {
			buf = binary.AppendVarint(buf, v)
		}
		for _, c := range pc.IMCPositions {
			buf = binary.AppendVarint(buf, int64(c.Row))
			buf = binary.AppendVarint(buf, int64(c.Col))
		}
		for _, v := range []int64{
			int64(pc.AmbiguityCap), int64(pc.BatchSize), int64(pc.MaxNodes),
			b2i(pc.PaperExactBounds),
		} {
			buf = binary.AppendVarint(buf, v)
		}
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// step1Key is the content address of a step-1 measurement.
func (p *Prober) step1Key(ppin uint64) memo.Key {
	buf := []byte("probe-step1/v1\x00")
	buf = binary.AppendUvarint(buf, ppin)
	return sha256.Sum256(p.optionsKey(buf))
}

// runKey is the content address of a full measurement run.
func (p *Prober) runKey(ppin uint64, ro RunOptions) memo.Key {
	buf := []byte("probe-run/v1\x00")
	buf = binary.AppendUvarint(buf, ppin)
	if ro.SliceSources {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendVarint(buf, int64(ro.NumIMCs))
	return sha256.Sum256(p.optionsKey(buf))
}

// clone returns a deep copy of a measurement result, so cached results
// handed to callers cannot poison the cache when mutated.
func (r *Result) clone() *Result {
	out := &Result{
		PPIN:      r.PPIN,
		NumCHA:    r.NumCHA,
		OSToCHA:   append([]int(nil), r.OSToCHA...),
		Planned:   r.Planned,
		Completed: r.Completed,
		Degraded:  r.Degraded,
	}
	if r.CoreCHAs != nil {
		out.CoreCHAs = append([]int(nil), r.CoreCHAs...)
	}
	if r.Observations != nil {
		out.Observations = make([]Observation, len(r.Observations))
		for i, o := range r.Observations {
			out.Observations[i] = o.clone()
		}
	}
	if r.Failures != nil {
		out.Failures = append([]Failure(nil), r.Failures...)
	}
	return out
}

// clone deep-copies one observation.
func (o Observation) clone() Observation {
	o.Up = append([]int(nil), o.Up...)
	o.Down = append([]int(nil), o.Down...)
	o.Horz = append([]int(nil), o.Horz...)
	return o
}
