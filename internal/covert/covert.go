// Package covert implements the paper's inter-core thermal covert channel
// (Sections IV-V): a sender core modulates its load with Manchester
// encoding, heat propagates to physically neighbouring tiles, and a
// receiver core decodes the bitstream offline from its own 1 °C-granular
// temperature sensor, synchronizing on a designated signature sequence.
//
// The package supports the paper's three strengthening schemes: picking
// sender/receiver placements from the recovered physical core map
// (Planner), synchronized multi-sender amplification (Fig. 8a), and
// multiple parallel channels for aggregate throughput (Fig. 8b).
package covert

import (
	"context"
	"math"
	"slices"

	"coremap/internal/cmerr"
	"coremap/internal/obs"
)

// Platform is everything the (user-level) attacker can do: place load on
// cores it owns, read the temperature sensor of the core its thread runs
// on, and let wall-clock time pass. internal/covert never touches
// simulator internals through it.
type Platform interface {
	// ReadTemp returns the current temperature of cpu's core in °C, as
	// exposed by IA32_THERM_STATUS (1 °C granularity).
	ReadTemp(cpu int) (float64, error)
	// SetLoad starts or stops a saturating compute loop on cpu.
	SetLoad(cpu int, active bool) error
	// Advance lets the platform evolve for the given seconds.
	Advance(seconds float64)
}

// DefaultPreamble is the synchronization signature prepended to every
// frame. Its alternation pattern has low autocorrelation at non-zero
// shifts, which is what lets the decoder lock phase.
var DefaultPreamble = []bool{
	true, false, true, false, true, true, false, false,
	true, false, true, true, false, true, false, false,
}

// ManchesterLoad returns the sender load level for a bit at the given
// intra-bit phase ∈ [0,1): a 1 heats in the first half-period, a 0 in the
// second — the zero-DC property that avoids cumulative thermal bias.
func ManchesterLoad(bit bool, phase float64) bool {
	if bit {
		return phase < 0.5
	}
	return phase >= 0.5
}

// Modulation selects the line coding of a transfer.
type Modulation int

const (
	// ModManchester is the paper's coding (heat position within the bit
	// encodes the value; DC-free).
	ModManchester Modulation = iota
	// ModOOK is naive on-off keying (1 = heat the whole bit period). It
	// exists as an ablation: monotonic bit patterns accumulate thermal
	// bias and break the decoder's threshold, which is exactly why the
	// paper (after Bartolini et al.) uses Manchester.
	ModOOK
)

// loadLevel returns the sender load for a bit under the chosen modulation.
func loadLevel(mod Modulation, bit bool, phase float64) bool {
	if mod == ModOOK {
		return bit
	}
	return ManchesterLoad(bit, phase)
}

// ChannelSpec describes one covert channel in a transfer.
type ChannelSpec struct {
	// Senders drive the identical Manchester waveform (synchronized
	// multi-sender amplification when len > 1).
	Senders []int
	// Receiver samples its own core's sensor.
	Receiver int
	// Payload is the data to transmit (the preamble is added
	// automatically).
	Payload []bool
}

// Config tunes a transfer.
type Config struct {
	// BitRate is the signalling rate in bits/second.
	BitRate float64
	// SampleHz is the receiver's sensor polling rate (default 100).
	SampleHz float64
	// Preamble overrides DefaultPreamble.
	Preamble []bool
	// WarmupBits is the number of alternating carrier bits sent before
	// the preamble so the Manchester 50%-duty baseline settles before
	// synchronization (default 4; -1 disables).
	WarmupBits int
	// Modulation selects the line coding (default Manchester).
	Modulation Modulation
}

func (c Config) withDefaults() Config {
	if c.SampleHz == 0 {
		c.SampleHz = 100
	}
	if c.Preamble == nil {
		c.Preamble = DefaultPreamble
	}
	if c.WarmupBits == 0 {
		c.WarmupBits = 4
	}
	if c.WarmupBits < 0 {
		c.WarmupBits = 0
	}
	return c
}

// warmup returns n alternating carrier bits.
func warmup(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = i%2 == 0
	}
	return out
}

// Result is the outcome of one channel's transfer.
type Result struct {
	// Sent and Decoded are the payload bits.
	Sent, Decoded []bool
	// BitErrors counts positions where Decoded differs from Sent.
	BitErrors int
	// BER is BitErrors / len(Sent).
	BER float64
	// Synced reports whether the decoder matched the preamble exactly.
	Synced bool
	// PreambleMatches is the best preamble correlation found.
	PreambleMatches int
	// Trace is the receiver's raw sample series (temperature in °C at
	// Config.SampleHz), kept for rendering Fig. 6-style plots.
	Trace []float64
}

// Run performs a transfer over all channels simultaneously; parallel
// channels interfere through the shared die exactly as in Fig. 8b. All
// payloads must have equal length. The context is checked once per sample
// period, so cancellation stops a transfer within one sensor poll.
func Run(ctx context.Context, p Platform, specs []ChannelSpec, cfg Config) ([]Result, error) {
	res, _, err := RunObserved(ctx, p, specs, cfg, nil)
	return res, err
}

// RunObserved is Run with additional passive observers: the temperature of
// each observer CPU is sampled on the same timeline and returned as one
// trace per observer. Observers may overlap with channel roles (e.g. to
// record the sender's own temperature for a Fig. 6-style plot).
func RunObserved(ctx context.Context, p Platform, specs []ChannelSpec, cfg Config, observers []int) ([]Result, [][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "covert/run")
	results, obsTraces, err := runObserved(ctx, p, specs, cfg, observers)
	var bits, bitErrs int64
	for _, r := range results {
		bits += int64(len(r.Sent))
		bitErrs += int64(r.BitErrors)
	}
	reg := obs.RegistryFrom(ctx)
	reg.Counter("covert/bits/sent").Add(bits)
	reg.Counter("covert/bits/errors").Add(bitErrs)
	span.SetAttr("channels", int64(len(specs))).
		SetAttr("bits_sent", bits).
		SetAttr("bit_errors", bitErrs)
	span.End(err)
	return results, obsTraces, err
}

// runObserved is the uninstrumented transfer; ctx is non-nil.
func runObserved(ctx context.Context, p Platform, specs []ChannelSpec, cfg Config, observers []int) ([]Result, [][]float64, error) {
	cfg = cfg.withDefaults()
	if cfg.BitRate <= 0 {
		return nil, nil, cmerr.New(cmerr.Permanent, "covert", "bit rate must be positive")
	}
	if len(specs) == 0 {
		return nil, nil, cmerr.New(cmerr.Permanent, "covert", "no channels")
	}
	n := len(specs[0].Payload)
	used := make(map[int]bool)
	for i, s := range specs {
		if len(s.Payload) != n {
			return nil, nil, cmerr.New(cmerr.Permanent, "covert", "channel %d payload length %d != %d", i, len(s.Payload), n)
		}
		if len(s.Senders) == 0 {
			return nil, nil, cmerr.New(cmerr.Permanent, "covert", "channel %d has no senders", i)
		}
		for _, cpu := range append(append([]int{}, s.Senders...), s.Receiver) {
			if used[cpu] {
				return nil, nil, cmerr.New(cmerr.Permanent, "covert", "cpu %d used by more than one role", cpu)
			}
			used[cpu] = true
		}
	}

	frames := make([][]bool, len(specs))
	for i, s := range specs {
		frame := append(warmup(cfg.WarmupBits), cfg.Preamble...)
		frames[i] = append(frame, s.Payload...)
	}
	frameBits := len(frames[0])
	bitPeriod := 1 / cfg.BitRate
	sampleDt := 1 / cfg.SampleHz
	// Trailing idle periods: the decoder's sync offset can sit up to
	// warmup+2 bits into the trace, so the tail must keep every shifted
	// payload window inside the sample array.
	totalSamples := int(math.Ceil(float64(frameBits+cfg.WarmupBits+3) * bitPeriod * cfg.SampleHz))

	reg := obs.RegistryFrom(ctx)
	samples := reg.Counter("covert/samples")
	pulses := reg.Counter("covert/pulses")

	traces := make([][]float64, len(specs))
	obsTraces := make([][]float64, len(observers))
	loadState := make(map[int]bool)
	for k := 0; k < totalSamples; k++ {
		if err := cmerr.FromContext(ctx, "covert"); err != nil {
			return nil, nil, err
		}
		samples.Inc()
		t := float64(k) * sampleDt
		bitIdx := int(t / bitPeriod)
		phase := t/bitPeriod - float64(bitIdx)
		for i, s := range specs {
			level := false
			if bitIdx < frameBits {
				level = loadLevel(cfg.Modulation, frames[i][bitIdx], phase)
			}
			for _, cpu := range s.Senders {
				if loadState[cpu] != level {
					if err := p.SetLoad(cpu, level); err != nil {
						return nil, nil, err
					}
					loadState[cpu] = level
					if level {
						// Each off→on transition is one thermal pulse.
						pulses.Inc()
					}
				}
			}
		}
		p.Advance(sampleDt)
		for i, s := range specs {
			temp, err := p.ReadTemp(s.Receiver)
			if err != nil {
				return nil, nil, err
			}
			traces[i] = append(traces[i], temp)
		}
		for i, cpu := range observers {
			temp, err := p.ReadTemp(cpu)
			if err != nil {
				return nil, nil, err
			}
			obsTraces[i] = append(obsTraces[i], temp)
		}
	}
	stillOn := make([]int, 0, len(loadState))
	for cpu, on := range loadState {
		if on {
			stillOn = append(stillOn, cpu)
		}
	}
	slices.Sort(stillOn)
	//lint:allow ctxflow load teardown must complete even after cancellation
	for _, cpu := range stillOn {
		if err := p.SetLoad(cpu, false); err != nil {
			return nil, nil, err
		}
	}

	results := make([]Result, len(specs))
	for i, s := range specs {
		var dec DecodeResult
		if cfg.Modulation == ModOOK {
			dec = DecodeOOKSearch(traces[i], cfg.SampleHz, cfg.BitRate, cfg.Preamble, n, cfg.WarmupBits+2)
		} else {
			dec = DecodeSearch(traces[i], cfg.SampleHz, cfg.BitRate, cfg.Preamble, n, cfg.WarmupBits+2)
		}
		res := Result{
			Sent:            s.Payload,
			Decoded:         dec.Payload,
			Synced:          dec.Synced,
			PreambleMatches: dec.PreambleMatches,
			Trace:           traces[i],
		}
		for b := range s.Payload {
			if b >= len(dec.Payload) || dec.Payload[b] != s.Payload[b] {
				res.BitErrors++
			}
		}
		if n > 0 {
			res.BER = float64(res.BitErrors) / float64(n)
		}
		results[i] = res
	}
	return results, obsTraces, nil
}

// DecodeResult is the output of the offline decoder.
type DecodeResult struct {
	Payload         []bool
	Synced          bool
	PreambleMatches int
	Offset          int // sample offset the decoder locked to
}

// Decode recovers a frame from a temperature trace: it searches all sample
// offsets within one bit period for the one that best decodes the known
// preamble, then decodes payloadBits bits from there (the paper's offline,
// signature-synchronized decoder).
func Decode(trace []float64, sampleHz, bitRate float64, preamble []bool, payloadBits int) DecodeResult {
	return DecodeSearch(trace, sampleHz, bitRate, preamble, payloadBits, 1)
}

// DecodeSearch is Decode with a wider synchronization window: the offset
// search spans searchBits bit periods, enough to also skip any carrier
// warmup bits preceding the preamble.
func DecodeSearch(trace []float64, sampleHz, bitRate float64, preamble []bool, payloadBits, searchBits int) DecodeResult {
	spb := sampleHz / bitRate // samples per bit
	if searchBits < 1 {
		searchBits = 1
	}
	// Lock to the offset with the strongest signed correlation against
	// the known preamble — many offsets may decode the preamble
	// correctly, but the correlation peaks at the true bit phase.
	bestOffset := 0
	bestCorr := math.Inf(-1)
	for off := 0; off < int(spb*float64(searchBits)); off++ {
		var corr float64
		for b, want := range preamble {
			s := bitScore(trace, off, b, spb)
			if !want {
				s = -s
			}
			corr += s
		}
		if corr > bestCorr {
			bestOffset, bestCorr = off, corr
		}
	}
	matches := 0
	for b, want := range preamble {
		if decodeBit(trace, bestOffset, b, spb) == want {
			matches++
		}
	}
	out := DecodeResult{
		Synced:          matches == len(preamble),
		PreambleMatches: matches,
		Offset:          bestOffset,
	}
	for b := 0; b < payloadBits; b++ {
		out.Payload = append(out.Payload, decodeBit(trace, bestOffset, len(preamble)+b, spb))
	}
	return out
}

// DecodeOOKSearch decodes an on-off-keyed frame: a bit is 1 when its
// window's mean temperature exceeds the whole-trace mean. The global
// threshold is the scheme's weakness — biased payloads shift the baseline
// under it, which the Manchester coding exists to avoid.
func DecodeOOKSearch(trace []float64, sampleHz, bitRate float64, preamble []bool, payloadBits, searchBits int) DecodeResult {
	spb := sampleHz / bitRate
	if searchBits < 1 {
		searchBits = 1
	}
	var mean float64
	for _, v := range trace {
		mean += v
	}
	if len(trace) > 0 {
		mean /= float64(len(trace))
	}
	score := func(offset, bit int) float64 {
		start := offset + int(float64(bit)*spb)
		end := offset + int(float64(bit+1)*spb)
		if end > len(trace) {
			end = len(trace)
		}
		if end-start < 2 {
			return 0
		}
		var s float64
		for k := start; k < end; k++ {
			s += trace[k] - mean
		}
		return s / float64(end-start)
	}
	bestOffset := 0
	bestCorr := math.Inf(-1)
	for off := 0; off < int(spb*float64(searchBits)); off++ {
		var corr float64
		for b, want := range preamble {
			s := score(off, b)
			if !want {
				s = -s
			}
			corr += s
		}
		if corr > bestCorr {
			bestOffset, bestCorr = off, corr
		}
	}
	out := DecodeResult{Offset: bestOffset}
	for b, want := range preamble {
		if (score(bestOffset, b) > 0) == want {
			out.PreambleMatches++
		}
	}
	out.Synced = out.PreambleMatches == len(preamble)
	for b := 0; b < payloadBits; b++ {
		out.Payload = append(out.Payload, score(bestOffset, len(preamble)+b) > 0)
	}
	return out
}

// decodeBit classifies one Manchester bit: a 1 heats first and peaks mid-
// bit, so its center samples run hotter than its edges; a 0 is the
// opposite.
func decodeBit(trace []float64, offset, bit int, spb float64) bool {
	return bitScore(trace, offset, bit, spb) > 0
}

// bitScore is the matched-filter output for one bit window: the mean of
// the center half minus the mean of the edge quarters. Using means (not
// sums) keeps the discriminator unbiased when the sample counts of the two
// regions differ.
func bitScore(trace []float64, offset, bit int, spb float64) float64 {
	start := offset + int(float64(bit)*spb)
	end := offset + int(float64(bit+1)*spb)
	if end > len(trace) {
		end = len(trace)
	}
	if end-start < 4 {
		return 0
	}
	var cSum, eSum float64
	var cN, eN int
	n := end - start
	for k := start; k < end; k++ {
		phase := float64(k-start) / float64(n)
		if phase >= 0.25 && phase < 0.75 {
			cSum += trace[k]
			cN++
		} else {
			eSum += trace[k]
			eN++
		}
	}
	if cN == 0 || eN == 0 {
		return 0
	}
	return cSum/float64(cN) - eSum/float64(eN)
}
