package covert

import (
	"sort"

	"coremap/internal/cmerr"
	"coremap/internal/mesh"
)

// Planner selects sender/receiver placements from a recovered physical
// core map — the capability the paper's attack gains over lstopo-style
// logical topology guessing.
type Planner struct {
	// Pos maps CHA ID → reconstructed tile coordinate.
	Pos []mesh.Coord
	// OSToCHA maps OS CPU → CHA ID (step-1 output).
	OSToCHA []int

	byCoord map[mesh.Coord]int // coordinate → OS CPU
}

// NewPlanner indexes a recovered map for placement queries.
func NewPlanner(pos []mesh.Coord, osToCHA []int) *Planner {
	pl := &Planner{Pos: pos, OSToCHA: osToCHA, byCoord: make(map[mesh.Coord]int)}
	for cpu, cha := range osToCHA {
		if cha >= 0 && cha < len(pos) {
			pl.byCoord[pos[cha]] = cpu
		}
	}
	return pl
}

// CPUAt returns the OS CPU whose core sits at the given map coordinate.
func (pl *Planner) CPUAt(c mesh.Coord) (int, bool) {
	cpu, ok := pl.byCoord[c]
	return cpu, ok
}

// CoordOf returns the mapped coordinate of an OS CPU.
func (pl *Planner) CoordOf(cpu int) mesh.Coord { return pl.Pos[pl.OSToCHA[cpu]] }

// PairsAtOffset lists all (sender, receiver) OS-CPU pairs whose tiles are
// separated by exactly (dr, dc) on the map: (1,0) gives vertical 1-hop
// neighbours, (0,2) horizontal 2-hop, and so on. Pairs are ordered by
// sender coordinate for determinism.
func (pl *Planner) PairsAtOffset(dr, dc int) [][2]int {
	var pairs [][2]int
	for cpu, cha := range pl.OSToCHA {
		if cha < 0 {
			continue
		}
		c := pl.Pos[cha]
		if other, ok := pl.CPUAt(mesh.Coord{Row: c.Row + dr, Col: c.Col + dc}); ok {
			pairs = append(pairs, [2]int{cpu, other})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pl.CoordOf(pairs[i][0]), pl.CoordOf(pairs[j][0])
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	return pairs
}

// Ring returns up to eight sender CPUs on the tiles surrounding the
// receiver, nearest first — the paper's multi-sender configuration
// ("up to eight sender nodes that surround the receiver node").
func (pl *Planner) Ring(receiver int) []int {
	c := pl.CoordOf(receiver)
	// Vertical neighbours first: they couple most strongly.
	offsets := []mesh.Coord{
		{Row: -1, Col: 0}, {Row: 1, Col: 0},
		{Row: 0, Col: -1}, {Row: 0, Col: 1},
		{Row: -1, Col: -1}, {Row: -1, Col: 1},
		{Row: 1, Col: -1}, {Row: 1, Col: 1},
	}
	var ring []int
	for _, off := range offsets {
		if cpu, ok := pl.CPUAt(mesh.Coord{Row: c.Row + off.Row, Col: c.Col + off.Col}); ok {
			ring = append(ring, cpu)
		}
	}
	return ring
}

// BestReceiver picks the OS CPU with the most surrounding cores, breaking
// ties toward the map centre — the natural multi-sender receiver.
func (pl *Planner) BestReceiver() (int, error) {
	best, bestScore := -1, -1
	for cpu, cha := range pl.OSToCHA {
		if cha < 0 {
			continue
		}
		score := len(pl.Ring(cpu))
		if score > bestScore {
			best, bestScore = cpu, score
		}
	}
	if best < 0 {
		return 0, cmerr.New(cmerr.Permanent, "covert", "no mappable receiver")
	}
	return best, nil
}

// DisjointVerticalPairs greedily selects up to n vertically-adjacent
// (sender, receiver) pairs with no shared CPUs, spreading them out to
// minimize cross-channel interference (Fig. 8b's ×n configuration).
// Orientation is interference-aware: each pair is flipped so its sender
// sits as far as possible from the other channels' receivers, since a
// foreign sender adjacent to a receiver is the dominant crosstalk path.
func (pl *Planner) DisjointVerticalPairs(n int) [][2]int {
	candidates := pl.PairsAtOffset(1, 0)
	var chosen [][2]int
	used := make(map[int]bool)
	for len(chosen) < n {
		bestIdx, bestDist := -1, -1
		for i, pair := range candidates {
			if used[pair[0]] || used[pair[1]] {
				continue
			}
			// Distance to the nearest already-chosen pair.
			dist := 1 << 30
			for _, ch := range chosen {
				for _, a := range pair {
					for _, b := range ch {
						if d := mesh.Distance(pl.CoordOf(a), pl.CoordOf(b)); d < dist {
							dist = d
						}
					}
				}
			}
			if dist > bestDist {
				bestIdx, bestDist = i, dist
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen = append(chosen, candidates[bestIdx])
		used[candidates[bestIdx][0]] = true
		used[candidates[bestIdx][1]] = true
	}
	return pl.orientChannels(chosen)
}

// orientChannels flips (sender, receiver) pairs to minimize crosstalk.
// The dominant interference path is a foreign sender sitting next to a
// receiver, so the objective maximizes the smallest sender→foreign-
// receiver distance (sum as tie-break). For up to a dozen channels the
// 2^n orientation space is searched exhaustively; hill-climbing sweeps
// handle anything larger.
func (pl *Planner) orientChannels(pairs [][2]int) [][2]int {
	n := len(pairs)
	if n <= 1 {
		return pairs
	}
	oriented := func(mask int) [][2]int {
		out := make([][2]int, n)
		for i, p := range pairs {
			if mask>>i&1 == 1 {
				out[i] = [2]int{p[1], p[0]}
			} else {
				out[i] = p
			}
		}
		return out
	}
	score := func(cfg [][2]int) int {
		minD, sum := 1<<20, 0
		for i := range cfg {
			for j := range cfg {
				if i == j {
					continue
				}
				d := mesh.Distance(pl.CoordOf(cfg[i][0]), pl.CoordOf(cfg[j][1]))
				if d < minD {
					minD = d
				}
				sum += d
			}
		}
		return minD*100000 + sum
	}
	if n > 12 {
		// Greedy sweeps for very large channel counts.
		best := oriented(0)
		for sweep := 0; sweep < 4; sweep++ {
			for i := range best {
				was := score(best)
				best[i][0], best[i][1] = best[i][1], best[i][0]
				if score(best) < was {
					best[i][0], best[i][1] = best[i][1], best[i][0]
				}
			}
		}
		return best
	}
	bestMask, bestScore := 0, -1
	for mask := 0; mask < 1<<n; mask++ {
		if s := score(oriented(mask)); s > bestScore {
			bestMask, bestScore = mask, s
		}
	}
	return oriented(bestMask)
}
