package covert

import (
	"coremap/internal/cmerr"
	"coremap/internal/machine"
	"coremap/internal/msr"
	"coremap/internal/thermal"
)

// SimPlatform runs covert channels on a simulated machine + thermal die.
// The receiver path goes through IA32_THERM_STATUS like the real attack
// (user-level sensor access, 1 °C quantization); the sender path drives
// the thermal model's per-core load like a pinned stress-ng worker.
type SimPlatform struct {
	M *machine.Machine
	T *thermal.Simulator
}

// NewSimPlatform builds a thermal die matching the machine's physical core
// layout and attaches it to the machine's thermal MSRs.
func NewSimPlatform(m *machine.Machine, cfg thermal.Config) *SimPlatform {
	sim := thermal.New(cfg, m.SKU.Rows, m.SKU.Cols, m.PhysCoreTiles())
	m.AttachThermal(sim)
	return &SimPlatform{M: m, T: sim}
}

// SetCoTenants designates background-tenant OS CPUs whose load toggles
// randomly, modelling the shared-cloud noise of the paper's testbed.
func (p *SimPlatform) SetCoTenants(cpus []int) {
	phys := make([]int, len(cpus))
	for i, cpu := range cpus {
		phys[i] = p.M.PhysOfOS(cpu)
	}
	p.T.SetCoTenants(phys)
}

// CloudThermalConfig returns the thermal parameters of a noisy shared
// cloud host: the calibrated die plus stronger effective sensor noise from
// platform activity. Callers modelling co-tenant jobs should also
// designate co-tenant CPUs via SetCoTenants.
func CloudThermalConfig(seed int64) thermal.Config {
	cfg := thermal.DefaultConfig()
	cfg.SensorNoise = 0.5
	cfg.Seed = seed
	return cfg
}

// ReadTemp implements Platform via the machine's thermal MSR.
func (p *SimPlatform) ReadTemp(cpu int) (float64, error) {
	v, err := p.M.ReadMSR(cpu, msr.AddrIA32ThermStatus)
	if err != nil {
		return 0, err
	}
	below, valid := msr.DecodeThermStatus(v)
	if !valid {
		return 0, cmerr.New(cmerr.Transient, "covert", "cpu %d thermal reading invalid", cpu)
	}
	return float64(machine.TjMax - below), nil
}

// SetLoad implements Platform.
func (p *SimPlatform) SetLoad(cpu int, active bool) error {
	if cpu < 0 || cpu >= p.M.NumCPUs() {
		return cmerr.New(cmerr.Permanent, "covert", "cpu %d out of range", cpu)
	}
	p.T.SetLoad(p.M.PhysOfOS(cpu), active)
	return nil
}

// Advance implements Platform.
func (p *SimPlatform) Advance(seconds float64) { p.T.Advance(seconds) }
