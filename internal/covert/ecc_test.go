package covert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRepetitionRoundTrip(t *testing.T) {
	bits := []bool{true, false, false, true, true}
	enc := EncodeRepetition(bits, 3)
	if len(enc) != 15 {
		t.Fatalf("encoded length %d, want 15", len(enc))
	}
	dec := DecodeRepetition(enc, 3)
	for i := range bits {
		if dec[i] != bits[i] {
			t.Fatalf("bit %d corrupted in clean round trip", i)
		}
	}
}

func TestRepetitionCorrectsSingleFlips(t *testing.T) {
	bits := []bool{true, false, true, true}
	enc := EncodeRepetition(bits, 3)
	// Flip one bit in each group.
	for g := 0; g < len(bits); g++ {
		enc[g*3+g%3] = !enc[g*3+g%3]
	}
	dec := DecodeRepetition(enc, 3)
	for i := range bits {
		if dec[i] != bits[i] {
			t.Fatalf("bit %d not corrected", i)
		}
	}
}

func TestRepetitionDegenerateK(t *testing.T) {
	bits := []bool{true, false}
	if got := DecodeRepetition(EncodeRepetition(bits, 0), 0); len(got) != 2 || got[0] != true {
		t.Errorf("k=0 treated as identity failed: %v", got)
	}
}

func TestHammingRoundTrip(t *testing.T) {
	bits := []bool{true, false, true, true, false, false, false, true}
	enc := EncodeHamming74(bits)
	if len(enc) != 14 {
		t.Fatalf("encoded length %d, want 14", len(enc))
	}
	dec := DecodeHamming74(enc)
	for i := range bits {
		if dec[i] != bits[i] {
			t.Fatalf("bit %d corrupted in clean round trip", i)
		}
	}
}

// Property: Hamming(7,4) corrects any single bit flip per codeword.
func TestHammingCorrectsAnySingleError(t *testing.T) {
	f := func(data uint8, pos uint8) bool {
		var d [4]bool
		for i := 0; i < 4; i++ {
			d[i] = data>>i&1 == 1
		}
		c := hammingEncode4(d)
		c[pos%7] = !c[pos%7]
		return hammingDecode7(c) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(60))}); err != nil {
		t.Error(err)
	}
}

// Property: repetition round trip survives up to ⌊(k-1)/2⌋ flips/group.
func TestRepetitionMajorityProperty(t *testing.T) {
	f := func(data uint16, flipSel uint8) bool {
		bits := make([]bool, 8)
		for i := range bits {
			bits[i] = data>>i&1 == 1
		}
		enc := EncodeRepetition(bits, 5)
		// Flip at most 2 of every 5.
		for g := 0; g < len(bits); g++ {
			enc[g*5+int(flipSel)%5] = !enc[g*5+int(flipSel)%5]
			enc[g*5+int(flipSel+2)%5] = !enc[g*5+int(flipSel+2)%5]
		}
		dec := DecodeRepetition(enc, 5)
		for i := range bits {
			if dec[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Error(err)
	}
}

func TestHammingPadding(t *testing.T) {
	bits := []bool{true, true, false} // not a multiple of 4
	dec := DecodeHamming74(EncodeHamming74(bits))
	if len(dec) != 4 {
		t.Fatalf("decoded length %d, want 4 (one padded word)", len(dec))
	}
	for i := range bits {
		if dec[i] != bits[i] {
			t.Errorf("bit %d corrupted through padding", i)
		}
	}
}

func TestOOKLoadLevel(t *testing.T) {
	if !loadLevel(ModOOK, true, 0.9) || loadLevel(ModOOK, false, 0.1) {
		t.Error("OOK must heat the whole period for 1 and never for 0")
	}
	if loadLevel(ModManchester, true, 0.9) {
		t.Error("Manchester 1 must not heat the second half")
	}
}

func TestDecodeOOKSyntheticClean(t *testing.T) {
	payload := randomPayload(48, 70)
	frame := append(append(warmup(4), DefaultPreamble...), payload...)
	// Build an OOK trace: level tracks the bit for the whole period.
	spb := 50
	temp, base := 34.0, 34.0
	var trace []float64
	for k := 0; k < (len(frame)+8)*spb; k++ {
		bitIdx := k / spb
		target := base
		if bitIdx < len(frame) && frame[bitIdx] {
			target = base + 3
		}
		temp += (target - temp) / 8
		trace = append(trace, float64(int(temp+0.5)))
	}
	dec := DecodeOOKSearch(trace, 100, 2, DefaultPreamble, len(payload), 6)
	if !dec.Synced {
		t.Fatalf("OOK decoder failed to sync: %d/16", dec.PreambleMatches)
	}
	errs := 0
	for i := range payload {
		if dec.Payload[i] != payload[i] {
			errs++
		}
	}
	if errs > 2 {
		t.Errorf("%d OOK errors on a clean balanced trace", errs)
	}
}
