package covert

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestManchesterLoad(t *testing.T) {
	// A 1 heats the first half-period; a 0 the second.
	if !ManchesterLoad(true, 0.1) || ManchesterLoad(true, 0.6) {
		t.Error("bit 1 must heat first half only")
	}
	if ManchesterLoad(false, 0.4) || !ManchesterLoad(false, 0.9) {
		t.Error("bit 0 must heat second half only")
	}
}

// Property: Manchester is DC-free — every bit heats for exactly half its
// period regardless of value.
func TestManchesterDCFree(t *testing.T) {
	f := func(bit bool, steps uint8) bool {
		n := 10 + int(steps)%90
		hot := 0
		for k := 0; k < n; k++ {
			if ManchesterLoad(bit, float64(k)/float64(n)) {
				hot++
			}
		}
		return math.Abs(float64(hot)/float64(n)-0.5) < 0.06
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(40))}); err != nil {
		t.Error(err)
	}
}

func TestWarmupAlternates(t *testing.T) {
	w := warmup(4)
	want := []bool{true, false, true, false}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("warmup = %v", w)
		}
	}
	if len(warmup(0)) != 0 {
		t.Error("warmup(0) not empty")
	}
}

// synthTrace produces an ideal first-order thermal response to a
// Manchester frame: exponential tracking toward base or base+gain,
// quantized to 1°C with optional Gaussian noise — the decoder's reference
// conditions.
func synthTrace(frame []bool, spb int, tauSamples, gain, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	temp, base := 34.0, 34.0
	out := make([]float64, 0, (len(frame)+8)*spb)
	for k := 0; k < (len(frame)+8)*spb; k++ {
		bitIdx := k / spb
		phase := float64(k%spb) / float64(spb)
		target := base
		if bitIdx < len(frame) && ManchesterLoad(frame[bitIdx], phase) {
			target = base + gain
		}
		temp += (target - temp) / tauSamples
		out = append(out, math.Round(temp+rng.NormFloat64()*noise))
	}
	return out
}

func randomPayload(n int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

func TestDecodeSyntheticClean(t *testing.T) {
	payload := randomPayload(64, 1)
	frame := append(append(warmup(4), DefaultPreamble...), payload...)
	for _, spb := range []int{25, 50, 100} {
		for _, noise := range []float64{0, 0.25} {
			tr := synthTrace(frame, spb, 8, 2.8, noise, 2)
			dec := DecodeSearch(tr, 100, 100/float64(spb), DefaultPreamble, len(payload), 6)
			if !dec.Synced {
				t.Errorf("spb=%d noise=%v: decoder failed to sync (%d/16)", spb, noise, dec.PreambleMatches)
				continue
			}
			errs := 0
			for i := range payload {
				if dec.Payload[i] != payload[i] {
					errs++
				}
			}
			if errs != 0 {
				t.Errorf("spb=%d noise=%v: %d bit errors on clean synthetic trace", spb, noise, errs)
			}
		}
	}
}

func TestDecodeLocksThroughLag(t *testing.T) {
	// A large constant sensor lag must be absorbed by the offset search.
	payload := randomPayload(32, 3)
	frame := append(append(warmup(4), DefaultPreamble...), payload...)
	tr := synthTrace(frame, 50, 20, 3, 0, 4) // sluggish sensor
	dec := DecodeSearch(tr, 100, 2, DefaultPreamble, len(payload), 6)
	if !dec.Synced {
		t.Fatalf("decoder lost sync under lag: %d/16", dec.PreambleMatches)
	}
	for i := range payload {
		if dec.Payload[i] != payload[i] {
			t.Fatalf("bit %d wrong under lag", i)
		}
	}
}

func TestDecodeGarbageDoesNotSync(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := make([]float64, 4000)
	for i := range tr {
		tr[i] = 34 + rng.NormFloat64()*2
	}
	dec := DecodeSearch(tr, 100, 2, DefaultPreamble, 16, 6)
	if dec.Synced {
		t.Error("decoder claimed sync on pure noise")
	}
}

func TestRunValidation(t *testing.T) {
	p := newQuietPlatform(t)
	payload := randomPayload(4, 6)
	cases := []struct {
		name  string
		specs []ChannelSpec
		cfg   Config
	}{
		{"no channels", nil, Config{BitRate: 1}},
		{"zero rate", []ChannelSpec{{Senders: []int{0}, Receiver: 1, Payload: payload}}, Config{}},
		{"no senders", []ChannelSpec{{Receiver: 1, Payload: payload}}, Config{BitRate: 1}},
		{"duplicate cpu", []ChannelSpec{{Senders: []int{0}, Receiver: 0, Payload: payload}}, Config{BitRate: 1}},
		{"length mismatch", []ChannelSpec{
			{Senders: []int{0}, Receiver: 1, Payload: payload},
			{Senders: []int{2}, Receiver: 3, Payload: payload[:2]},
		}, Config{BitRate: 1}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), p, tc.specs, tc.cfg); err == nil {
			t.Errorf("%s: Run accepted invalid input", tc.name)
		}
	}
}
