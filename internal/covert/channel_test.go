package covert

import (
	"context"
	"testing"

	"coremap/internal/machine"
	"coremap/internal/mesh"
	"coremap/internal/thermal"
)

// newQuietPlatform builds an 8259CL with a noise-free thermal die.
func newQuietPlatform(t *testing.T) *SimPlatform {
	t.Helper()
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	cfg := thermal.DefaultConfig()
	cfg.SensorNoise = 0
	return NewSimPlatform(m, cfg)
}

// truthPlanner plans with ground-truth positions (covert-channel tests
// exercise the channel, not the mapping pipeline).
func truthPlanner(m *machine.Machine) *Planner {
	pos := make([]mesh.Coord, m.NumCHAs())
	for cha := range pos {
		pos[cha] = m.TrueCHACoord(cha)
	}
	return NewPlanner(pos, m.TrueOSToCHA())
}

func TestPlannerPairsAtOffset(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	pl := truthPlanner(m)
	vert := pl.PairsAtOffset(1, 0)
	if len(vert) == 0 {
		t.Fatal("no vertical pairs on a 24-core part")
	}
	for _, pair := range vert {
		a, b := pl.CoordOf(pair[0]), pl.CoordOf(pair[1])
		if b.Row != a.Row+1 || b.Col != a.Col {
			t.Errorf("pair %v not vertically adjacent: %v, %v", pair, a, b)
		}
	}
	horz := pl.PairsAtOffset(0, 1)
	for _, pair := range horz {
		a, b := pl.CoordOf(pair[0]), pl.CoordOf(pair[1])
		if b.Col != a.Col+1 || b.Row != a.Row {
			t.Errorf("pair %v not horizontally adjacent: %v, %v", pair, a, b)
		}
	}
}

func TestPlannerRingVerticalFirst(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	pl := truthPlanner(m)
	recv, err := pl.BestReceiver()
	if err != nil {
		t.Fatal(err)
	}
	ring := pl.Ring(recv)
	if len(ring) < 4 {
		t.Fatalf("best receiver has only %d ring cores", len(ring))
	}
	c := pl.CoordOf(recv)
	first := pl.CoordOf(ring[0])
	if first.Col != c.Col || absInt(first.Row-c.Row) != 1 {
		t.Errorf("first ring core %v is not a vertical neighbour of %v", first, c)
	}
	for _, cpu := range ring {
		rc := pl.CoordOf(cpu)
		if absInt(rc.Row-c.Row) > 1 || absInt(rc.Col-c.Col) > 1 {
			t.Errorf("ring core at %v not adjacent to %v", rc, c)
		}
		if cpu == recv {
			t.Error("receiver listed in its own ring")
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPlannerDisjointVerticalPairs(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	pl := truthPlanner(m)
	pairs := pl.DisjointVerticalPairs(8)
	if len(pairs) < 4 {
		t.Fatalf("only %d disjoint vertical pairs found", len(pairs))
	}
	used := map[int]bool{}
	for _, pair := range pairs {
		for _, cpu := range pair {
			if used[cpu] {
				t.Fatalf("cpu %d reused across pairs", cpu)
			}
			used[cpu] = true
		}
		a, b := pl.CoordOf(pair[0]), pl.CoordOf(pair[1])
		if absInt(b.Row-a.Row) != 1 || b.Col != a.Col {
			t.Errorf("pair %v not vertical: %v,%v", pair, a, b)
		}
	}
}

func TestOrientChannelsMaximizesSeparation(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	pl := truthPlanner(m)
	pairs := pl.DisjointVerticalPairs(8)
	if len(pairs) < 8 {
		t.Skipf("only %d pairs", len(pairs))
	}
	// No foreign sender may sit directly adjacent to a receiver if any
	// orientation avoids it; sanity-check the chosen config's worst
	// sender→foreign-receiver distance is at least 2.
	minD := 1 << 20
	for i := range pairs {
		for j := range pairs {
			if i == j {
				continue
			}
			if d := mesh.Distance(pl.CoordOf(pairs[i][0]), pl.CoordOf(pairs[j][1])); d < minD {
				minD = d
			}
		}
	}
	if minD < 2 {
		t.Errorf("worst sender→foreign-receiver distance %d; orientation search should reach ≥2", minD)
	}
}

func TestSimPlatformReadTempQuantized(t *testing.T) {
	p := newQuietPlatform(t)
	temp, err := p.ReadTemp(0)
	if err != nil {
		t.Fatal(err)
	}
	if temp != float64(int(temp)) {
		t.Errorf("temperature %v not quantized to 1°C", temp)
	}
	if temp < 31 || temp > 40 {
		t.Errorf("idle temperature %v implausible", temp)
	}
	if err := p.SetLoad(999, true); err == nil {
		t.Error("SetLoad accepted out-of-range cpu")
	}
}

func TestVertical1HopTransferClean(t *testing.T) {
	p := newQuietPlatform(t)
	pl := truthPlanner(p.M)
	pair := pl.PairsAtOffset(1, 0)[0]
	payload := randomPayload(48, 7)
	res, err := Run(context.Background(), p, []ChannelSpec{{Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload}},
		Config{BitRate: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Synced || res[0].BitErrors != 0 {
		t.Errorf("vertical 1-hop at 2 bps: synced=%v errors=%d, want clean transfer",
			res[0].Synced, res[0].BitErrors)
	}
	if len(res[0].Trace) == 0 {
		t.Error("no trace recorded")
	}
}

func TestVerticalBeatsHorizontalAtHighRate(t *testing.T) {
	payload := randomPayload(96, 8)
	run := func(dr, dc int) float64 {
		m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
		p := NewSimPlatform(m, CloudThermalConfig(9))
		pl := truthPlanner(m)
		pair := pl.PairsAtOffset(dr, dc)[0]
		res, err := Run(context.Background(), p, []ChannelSpec{{Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload}},
			Config{BitRate: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res[0].BER
	}
	vert, horz := run(1, 0), run(0, 1)
	if vert >= horz {
		t.Errorf("vertical BER %.3f not better than horizontal %.3f at 4 bps", vert, horz)
	}
}

func TestHopDistanceDegradesChannel(t *testing.T) {
	payload := randomPayload(96, 10)
	run := func(hops int) float64 {
		m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
		p := NewSimPlatform(m, CloudThermalConfig(11))
		pl := truthPlanner(m)
		pairs := pl.PairsAtOffset(hops, 0)
		if len(pairs) == 0 {
			t.Skipf("no %d-hop vertical pairs", hops)
		}
		res, err := Run(context.Background(), p, []ChannelSpec{{Senders: []int{pairs[0][0]}, Receiver: pairs[0][1], Payload: payload}},
			Config{BitRate: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res[0].BER
	}
	oneHop, twoHop := run(1), run(2)
	if oneHop > 0.02 {
		t.Errorf("1-hop BER %.3f too high at 2 bps", oneHop)
	}
	if twoHop < oneHop+0.05 {
		t.Errorf("2-hop BER %.3f not clearly worse than 1-hop %.3f", twoHop, oneHop)
	}
}

func TestMultiSenderReducesErrors(t *testing.T) {
	payload := randomPayload(96, 12)
	run := func(senders int) float64 {
		m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
		p := NewSimPlatform(m, CloudThermalConfig(13))
		pl := truthPlanner(m)
		recv, err := pl.BestReceiver()
		if err != nil {
			t.Fatal(err)
		}
		ring := pl.Ring(recv)
		if len(ring) < senders {
			t.Skipf("ring has only %d cores", len(ring))
		}
		res, err := Run(context.Background(), p, []ChannelSpec{{Senders: ring[:senders], Receiver: recv, Payload: payload}},
			Config{BitRate: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res[0].BER
	}
	single, quad := run(1), run(4)
	if quad > single {
		t.Errorf("×4 senders BER %.3f worse than ×1 %.3f at 8 bps", quad, single)
	}
}

func TestRunObservedCollectsObserverTraces(t *testing.T) {
	p := newQuietPlatform(t)
	pl := truthPlanner(p.M)
	pair := pl.PairsAtOffset(1, 0)[0]
	payload := randomPayload(16, 14)
	// Observe the sender itself plus an uninvolved far core.
	far := -1
	for cpu := 0; cpu < p.M.NumCPUs(); cpu++ {
		if cpu != pair[0] && cpu != pair[1] && mesh.Distance(pl.CoordOf(cpu), pl.CoordOf(pair[1])) > 3 {
			far = cpu
			break
		}
	}
	if far < 0 {
		t.Skip("no far core")
	}
	res, traces, err := RunObserved(context.Background(), p, []ChannelSpec{{
		Senders: []int{pair[0]}, Receiver: pair[1], Payload: payload,
	}}, Config{BitRate: 2}, []int{pair[0], far})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d observer traces, want 2", len(traces))
	}
	if len(traces[0]) != len(res[0].Trace) {
		t.Errorf("observer trace length %d != receiver trace length %d", len(traces[0]), len(res[0].Trace))
	}
	// The sender's own swing dwarfs both the receiver's and the far
	// core's.
	if span(traces[0]) <= span(res[0].Trace) {
		t.Errorf("sender swing %.1f not above receiver swing %.1f", span(traces[0]), span(res[0].Trace))
	}
	if span(traces[1]) >= span(traces[0])/2 {
		t.Errorf("far core swing %.1f suspiciously close to sender swing %.1f", span(traces[1]), span(traces[0]))
	}
}

func span(trace []float64) float64 {
	lo, hi := trace[0], trace[0]
	for _, v := range trace {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func TestCloudThermalConfigNoisierThanDefault(t *testing.T) {
	if CloudThermalConfig(1).SensorNoise <= 0.25 {
		t.Error("cloud config not noisier than the default sensor model")
	}
}

func TestParallelChannelsDeliverIndependentPayloads(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	cfg := thermal.DefaultConfig()
	cfg.SensorNoise = 0
	p := NewSimPlatform(m, cfg)
	pl := truthPlanner(m)
	pairs := pl.DisjointVerticalPairs(4)
	if len(pairs) < 2 {
		t.Fatal("need at least 2 disjoint pairs")
	}
	specs := make([]ChannelSpec, len(pairs))
	for i, pair := range pairs {
		specs[i] = ChannelSpec{Senders: []int{pair[0]}, Receiver: pair[1], Payload: randomPayload(32, int64(20+i))}
	}
	res, err := Run(context.Background(), p, specs, Config{BitRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Synced {
			t.Errorf("channel %d failed to sync", i)
		}
		if r.BER > 0.06 {
			t.Errorf("channel %d BER %.3f too high at 1 bps", i, r.BER)
		}
	}
}
