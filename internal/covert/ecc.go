package covert

// Error-correction codings for the covert channel. The paper reports raw
// error rates "without any additional error correction scheme"; these
// codings are the natural next step it leaves open — they trade bit rate
// for reliability so a channel can operate past its raw sub-1% point.

// EncodeRepetition repeats every bit k times.
func EncodeRepetition(bits []bool, k int) []bool {
	if k < 1 {
		k = 1
	}
	out := make([]bool, 0, len(bits)*k)
	for _, b := range bits {
		for i := 0; i < k; i++ {
			out = append(out, b)
		}
	}
	return out
}

// DecodeRepetition majority-votes k-bit groups. Trailing partial groups
// are voted over the bits present.
func DecodeRepetition(bits []bool, k int) []bool {
	if k < 1 {
		k = 1
	}
	var out []bool
	for i := 0; i < len(bits); i += k {
		end := i + k
		if end > len(bits) {
			end = len(bits)
		}
		ones := 0
		for _, b := range bits[i:end] {
			if b {
				ones++
			}
		}
		out = append(out, ones*2 > end-i)
	}
	return out
}

// Hamming(7,4): four data bits are protected by three parity bits; any
// single bit error per codeword is corrected.

// hammingEncode4 packs data bits d0..d3 into the codeword layout
// [p1 p2 d0 p3 d1 d2 d3] (positions 1..7, parity at powers of two).
func hammingEncode4(d [4]bool) [7]bool {
	var c [7]bool
	c[2], c[4], c[5], c[6] = d[0], d[1], d[2], d[3]
	c[0] = xor(c[2], c[4], c[6]) // covers positions 1,3,5,7
	c[1] = xor(c[2], c[5], c[6]) // covers positions 2,3,6,7
	c[3] = xor(c[4], c[5], c[6]) // covers positions 4,5,6,7
	return c
}

func xor(bs ...bool) bool {
	v := false
	for _, b := range bs {
		v = v != b
	}
	return v
}

// hammingDecode7 corrects up to one flipped bit and returns the data bits.
func hammingDecode7(c [7]bool) [4]bool {
	s1 := xor(c[0], c[2], c[4], c[6])
	s2 := xor(c[1], c[2], c[5], c[6])
	s3 := xor(c[3], c[4], c[5], c[6])
	syndrome := 0
	if s1 {
		syndrome |= 1
	}
	if s2 {
		syndrome |= 2
	}
	if s3 {
		syndrome |= 4
	}
	if syndrome != 0 {
		c[syndrome-1] = !c[syndrome-1]
	}
	return [4]bool{c[2], c[4], c[5], c[6]}
}

// EncodeHamming74 encodes bits in Hamming(7,4); the input is zero-padded
// to a multiple of four.
func EncodeHamming74(bits []bool) []bool {
	out := make([]bool, 0, (len(bits)+3)/4*7)
	for i := 0; i < len(bits); i += 4 {
		var d [4]bool
		for j := 0; j < 4 && i+j < len(bits); j++ {
			d[j] = bits[i+j]
		}
		c := hammingEncode4(d)
		out = append(out, c[:]...)
	}
	return out
}

// DecodeHamming74 decodes and single-error-corrects Hamming(7,4) words;
// trailing partial words are dropped.
func DecodeHamming74(bits []bool) []bool {
	var out []bool
	for i := 0; i+7 <= len(bits); i += 7 {
		var c [7]bool
		copy(c[:], bits[i:i+7])
		d := hammingDecode7(c)
		out = append(out, d[:]...)
	}
	return out
}
