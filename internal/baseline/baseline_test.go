package baseline

import (
	"testing"

	"coremap/internal/machine"
)

func TestLstopoAccuracyLowOnMeshParts(t *testing.T) {
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 1})
	acc := LstopoNeighborAccuracy(m)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
	// The paper's motivation: consecutive OS IDs are rarely neighbours
	// on a large mesh part.
	if acc > 0.5 {
		t.Errorf("lstopo heuristic accuracy %.2f suspiciously high; the enumeration should scatter IDs", acc)
	}
}

func TestPatternGeneralizationSelf(t *testing.T) {
	ref := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 2})
	gen := NewPatternGeneralization(ref)
	// Applying a pattern to an identical instance is perfect...
	same := machine.Generate(machine.SKU8175M, 0, machine.Config{Seed: 99})
	if acc := gen.Accuracy(same); acc != 1.0 {
		t.Errorf("self accuracy = %v, want 1.0", acc)
	}
	// ...but degrades on a different fusing pattern (McCalpin's limit).
	other := machine.Generate(machine.SKU8175M, 3, machine.Config{Seed: 3})
	if acc := gen.Accuracy(other); acc >= 1.0 {
		t.Errorf("cross-pattern accuracy = %v, expected < 1", acc)
	}
}

func TestLatencyLocatorCandidatesContainTruth(t *testing.T) {
	m := machine.Generate(machine.SKU8124M, 0, machine.Config{Seed: 4})
	ll := NewLatencyLocator(m)
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		cands := ll.Candidates(cpu)
		if len(cands) == 0 {
			t.Fatalf("cpu %d: no candidates", cpu)
		}
		truth := m.TrueCoreCoord(cpu)
		found := false
		for _, c := range cands {
			if c == truth {
				found = true
			}
		}
		if !found {
			t.Errorf("cpu %d: true position %v not among %d candidates", cpu, truth, len(cands))
		}
	}
}

func TestLatencyLocatorUnderDetermined(t *testing.T) {
	// The paper's point about Horro et al.: with two IMCs and realistic
	// latency resolution, positions stay ambiguous on average.
	m := machine.Generate(machine.SKU8259CL, 0, machine.Config{Seed: 5})
	if amb := NewLatencyLocator(m).MeanAmbiguity(); amb < 2 {
		t.Errorf("mean ambiguity %.2f; two-IMC trilateration should leave multiple candidates", amb)
	}
}
