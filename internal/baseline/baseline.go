// Package baseline implements the comparison approaches the paper argues
// against, so the evaluation can quantify what the mesh-measurement + ILP
// method adds:
//
//   - lstopo-style neighbour guessing (Bartolini et al.): assume cores
//     with consecutive OS IDs are physically adjacent;
//   - pattern generalization (McCalpin): assume every instance of a model
//     uses the model's most common location pattern;
//   - memory-latency trilateration (Horro et al.): estimate each core's
//     position from its distance to the two integrated memory
//     controllers — under-determined on dies with only two IMCs.
package baseline

import (
	"coremap/internal/cache"
	"coremap/internal/machine"
	"coremap/internal/mesh"
)

// cacheIMCOf aliases the public channel-interleave rule.
func cacheIMCOf(addr uint64, n int) int { return cache.IMCOf(addr, n) }

// adjacent reports physical 4-neighbourhood.
func adjacent(a, b mesh.Coord) bool { return mesh.Distance(a, b) == 1 }

// LstopoNeighborAccuracy evaluates the lstopo assumption on a machine:
// the fraction of consecutive-OS-ID core pairs that really are physically
// adjacent tiles. Large mesh parts make this fraction small, which is the
// paper's motivation for physical mapping.
func LstopoNeighborAccuracy(m *machine.Machine) float64 {
	n := m.NumCPUs()
	if n < 2 {
		return 0
	}
	hits := 0
	for cpu := 0; cpu+1 < n; cpu++ {
		if adjacent(m.TrueCoreCoord(cpu), m.TrueCoreCoord(cpu+1)) {
			hits++
		}
	}
	return float64(hits) / float64(n-1)
}

// PatternGeneralization is the McCalpin-style baseline: it memorizes one
// reference instance's OS-core-ID → position table for a CPU model and
// applies it verbatim to other instances of the same model.
type PatternGeneralization struct {
	ref map[int]mesh.Coord
}

// NewPatternGeneralization learns the reference table from one instance
// (in a survey, the most common pattern).
func NewPatternGeneralization(ref *machine.Machine) *PatternGeneralization {
	table := make(map[int]mesh.Coord, ref.NumCPUs())
	for cpu := 0; cpu < ref.NumCPUs(); cpu++ {
		table[cpu] = ref.TrueCoreCoord(cpu)
	}
	return &PatternGeneralization{ref: table}
}

// Accuracy returns the fraction of target's cores whose true position
// matches the generalized table.
func (pg *PatternGeneralization) Accuracy(target *machine.Machine) float64 {
	if target.NumCPUs() == 0 {
		return 0
	}
	hits := 0
	for cpu := 0; cpu < target.NumCPUs(); cpu++ {
		if pg.ref[cpu] == target.TrueCoreCoord(cpu) {
			hits++
		}
	}
	return float64(hits) / float64(target.NumCPUs())
}

// LatencyLocator is the Horro-style baseline: it measures, per core, the
// flush+load (DRAM) latency against each integrated memory controller,
// converts the latency gradient into estimated mesh hop distances, and
// returns every grid position consistent with those distances. With only
// two IMC anchors and ±1-hop latency resolution, the answer is usually a
// set, not a point.
type LatencyLocator struct {
	m *machine.Machine
}

// NewLatencyLocator builds the locator for a machine.
func NewLatencyLocator(m *machine.Machine) *LatencyLocator {
	return &LatencyLocator{m: m}
}

// samplesPerIMC is how many flush+load probes are averaged per estimate.
const samplesPerIMC = 8

// measure estimates the core's hop distances to the IMCs from measured
// DRAM access latencies: distance ≈ (latency − base) / per-hop cost, both
// calibrated constants. Jitter leaves roughly ±1 hop of resolution.
func (ll *LatencyLocator) measure(cpu int) []int {
	numIMC := len(ll.m.SKU.IMC)
	out := make([]int, numIMC)
	for i := 0; i < numIMC; i++ {
		var total uint64
		n := 0
		// Fresh lines interleave-mapped to controller i.
		base := uint64(0x400000000) + uint64(cpu)*1<<20
		for k := 0; n < samplesPerIMC; k++ {
			addr := base + uint64(k)*64
			if cacheIMCOf(addr, numIMC) != i {
				continue
			}
			// Flush first so the load always reaches DRAM.
			if err := ll.m.Flush(cpu, addr); err != nil {
				return out
			}
			cycles, err := ll.m.TimedLoad(cpu, addr)
			if err != nil {
				return out
			}
			total += cycles
			n++
		}
		mean := float64(total) / float64(n)
		est := (mean - machine.LatMemory) / machine.LatPerHop
		if est < 0 {
			est = 0
		}
		out[i] = int(est + 0.5)
	}
	return out
}

// distanceTolerance is the hop resolution of latency estimation.
const distanceTolerance = 1

// Candidates returns every tile position consistent with the measured
// IMC distances of the given core, within the latency method's hop
// resolution.
func (ll *LatencyLocator) Candidates(cpu int) []mesh.Coord {
	d := ll.measure(cpu)
	var out []mesh.Coord
	for r := 0; r < ll.m.SKU.Rows; r++ {
	cell:
		for c := 0; c < ll.m.SKU.Cols; c++ {
			pos := mesh.Coord{Row: r, Col: c}
			for i, imc := range ll.m.SKU.IMC {
				diff := mesh.Distance(pos, imc) - d[i]
				if diff < -distanceTolerance || diff > distanceTolerance {
					continue cell
				}
			}
			out = append(out, pos)
		}
	}
	return out
}

// MeanAmbiguity returns the average candidate-set size across all cores —
// 1.0 would mean latency alone pins every core; larger values quantify
// how under-determined the two-IMC trilateration is.
func (ll *LatencyLocator) MeanAmbiguity() float64 {
	n := ll.m.NumCPUs()
	if n == 0 {
		return 0
	}
	total := 0
	for cpu := 0; cpu < n; cpu++ {
		total += len(ll.Candidates(cpu))
	}
	return float64(total) / float64(n)
}
