package ilp

// Solution enumeration. Where Solve finds the single canonical optimum,
// Enumerate walks the same propagate-and-branch tree to collect *every*
// distinct assignment of a projection of the variables that can be
// extended to a feasible solution. It exists for the adaptive measurement
// planner: the set of placements still consistent with the observations
// collected so far is exactly the projection of the feasible region onto
// the row/column variables, and its size is the survey's remaining
// ambiguity.
//
// Enumeration is deterministic by construction: a single goroutine runs
// depth-first search with ascending value order, so EnumResult.Solutions
// is a pure function of the model and options — stable across runs,
// never dependent on scheduling. It reuses the solver's propagation
// machinery and the pool free-list discipline, so a round of enumeration
// costs no steady-state allocations beyond the solutions it returns.

import (
	"context"
	"encoding/binary"
	"fmt"

	"coremap/internal/cmerr"
	"coremap/internal/obs"
	"coremap/internal/pool"
)

// EnumOptions tunes Enumerate.
type EnumOptions struct {
	// Project lists the variables whose value vectors are collected.
	// Two feasible leaves that agree on every projected variable count
	// as one solution. Required (enumerating full assignments of models
	// with auxiliary big-M binaries would multiply every placement by
	// its binary completions; project onto the variables that matter).
	Project []Var
	// Cap bounds the number of distinct accepted projections collected.
	// When the search would admit one more, Enumerate stops early and
	// reports Complete=false with exactly Cap solutions in hand — the
	// caller learns "ambiguity > Cap" without paying for the full count.
	// Cap ≤ 0 means unbounded.
	Cap int
	// MaxNodes bounds the number of search nodes (0 = DefaultMaxNodes).
	// Expiry returns the solutions found so far with Complete=false.
	MaxNodes int
	// Accept, when non-nil, filters projections: a projection for which
	// Accept returns false is discarded (and never re-offered — the
	// verdict must be a pure function of the projection). It is the hook
	// for side conditions that are cheaper to test on a concrete vector
	// than to encode as linear rows, e.g. all-distinct over tile
	// coordinates or a disjunction the model would need binaries for.
	Accept func(proj []int64) bool
	// Prune, when non-nil, is consulted at every search node after
	// propagation with the projected variables' current values: fixed[i]
	// reports whether Project[i] is decided, and vals[i] holds its value
	// when it is (the lower bound otherwise — only inspect it under
	// fixed[i]). A false return discards the whole subtree, so Prune must
	// be monotone in the fixed set: it may reject only states none of
	// whose completions would be accepted. It exists because some Accept
	// conditions — all-distinct over tile coordinates, notably — reject
	// almost every leaf under a conflicting prefix; testing the prefix
	// cuts those subtrees at their root instead of walking them leaf by
	// leaf. Both slices are scratch, reused across calls; don't retain.
	Prune func(vals []int64, fixed []bool) bool
	// BranchOrder lists variables to branch first, as in Options. Any
	// projected variable not listed is branched after the listed ones
	// (but still before unprojected variables, so the projection is
	// decided as early as possible). Defaults to Project order.
	BranchOrder []Var
}

// EnumResult is the outcome of an Enumerate call.
type EnumResult struct {
	// Solutions holds the distinct accepted projections in discovery
	// order (depth-first, ascending values — deterministic). Each entry
	// has len(Project) values, parallel to EnumOptions.Project.
	Solutions [][]int64
	// Complete reports that the search was exhausted: Solutions is the
	// whole projected feasible set. False means a budget stopped the
	// walk early — the cap was overrun or MaxNodes expired — and
	// Solutions is a (still deterministic) subset.
	Complete bool
	// Nodes is the number of search nodes processed.
	Nodes int
}

// Enumerate collects every distinct feasible assignment of the projected
// variables, up to the configured cap and node budget. The model's
// objective, if any, is ignored: enumeration asks "which placements are
// possible", not "which is best". Infeasible models yield zero solutions
// with Complete=true — that is an answer, not an error.
//
// On context cancellation Enumerate returns the solutions found so far
// (Complete=false) together with ErrInterrupted.
func Enumerate(ctx context.Context, m *Model, opts EnumOptions) (res *EnumResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "ilp/enumerate")
	defer func() { span.End(err) }()
	if len(opts.Project) == 0 {
		return nil, cmerr.New(cmerr.Permanent, "ilp", "enumerate: empty projection")
	}
	for _, v := range opts.Project {
		if int(v) < 0 || int(v) >= m.NumVars() {
			return nil, cmerr.New(cmerr.Permanent, "ilp", "enumerate: projection references unknown variable %d", v)
		}
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}

	// Projected variables must outrank unprojected ones so the
	// projection is fully decided before any completion branching;
	// append projected variables missing from the caller's order.
	order := append([]Var(nil), opts.BranchOrder...)
	listed := make(map[Var]bool, len(order))
	for _, v := range order {
		listed[v] = true
	}
	for _, v := range opts.Project {
		if !listed[v] {
			order = append(order, v)
			listed[v] = true
		}
	}

	// No presolve and no symmetry breaking: both are solution-preserving
	// only up to representatives, and enumeration must see every member
	// of the projected feasible set, not one per equivalence class.
	s := &solver{m: m}
	s.build(order)

	e := &enumerator{
		s:        s,
		opts:     opts,
		maxNodes: int64(maxNodes),
		seen:     make(map[string]struct{}),
		keyBuf:   make([]byte, 8*len(opts.Project)),
		proj:     make([]int64, len(opts.Project)),
	}
	if opts.Prune != nil {
		e.pruneVals = make([]int64, len(opts.Project))
		e.pruneFixed = make([]bool, len(opts.Project))
	}
	rootLo := append([]int64(nil), m.lo...)
	rootHi := append([]int64(nil), m.hi...)
	complete, cerr := e.run(ctx, rootLo, rootHi)

	if reg := obs.RegistryFrom(ctx); reg != nil {
		reg.Counter("ilp/enumerations").Inc()
		reg.Counter("ilp/enum_nodes").Add(e.nodes)
		reg.Counter("ilp/enum_solutions").Add(int64(len(e.solutions)))
	}
	span.SetAttr("nodes", e.nodes).SetAttr("solutions", int64(len(e.solutions)))

	res = &EnumResult{Solutions: e.solutions, Complete: complete, Nodes: int(e.nodes)}
	if cerr != nil {
		return res, fmt.Errorf("%w: %w", ErrInterrupted, cerr)
	}
	return res, nil
}

// enumFrame is one enumeration subproblem (the single-threaded analogue
// of frame, without depth bookkeeping).
type enumFrame struct {
	lo, hi []int64
	seed   []int32
}

// enumerator owns the mutable state of one Enumerate call.
type enumerator struct {
	s        *solver
	opts     EnumOptions
	maxNodes int64
	nodes    int64

	// seen dedupes projections. A projection is marked the first time
	// every projected variable is fixed, regardless of whether a
	// feasible completion exists: the propagation fixpoint is confluent,
	// so any two search paths reaching the same projection hold the same
	// completion subproblem — its verdict is a function of the
	// projection and never needs a second look.
	seen   map[string]struct{}
	keyBuf []byte
	proj   []int64

	// pruneVals/pruneFixed are the scratch passed to opts.Prune.
	pruneVals  []int64
	pruneFixed []bool

	solutions [][]int64

	sc propScratch
	fl pool.FreeList[int64]
}

// run walks the tree depth-first. It returns complete=false when a budget
// (cap or nodes) stopped it early, and a non-nil error only for context
// cancellation.
func (e *enumerator) run(ctx context.Context, rootLo, rootHi []int64) (complete bool, err error) {
	s := e.s
	stack := []enumFrame{{lo: rootLo, hi: rootHi}}
	for len(stack) > 0 {
		if cerr := ctx.Err(); cerr != nil {
			return false, context.Cause(ctx)
		}
		e.nodes++
		if e.nodes > e.maxNodes {
			return false, nil
		}
		f := stack[len(stack)-1]
		stack[len(stack)-1] = enumFrame{}
		stack = stack[:len(stack)-1]

		if !s.propagate(f.lo, f.hi, f.seed, PosInf, &e.sc) {
			e.fl.Put(f.lo)
			e.fl.Put(f.hi)
			continue
		}
		if e.opts.Prune != nil && e.pruneRejects(f.lo, f.hi) {
			e.fl.Put(f.lo)
			e.fl.Put(f.hi)
			continue
		}
		if e.projectionFixed(f.lo, f.hi) {
			stop, cerr := e.offerProjection(ctx, f.lo, f.hi)
			e.fl.Put(f.lo)
			e.fl.Put(f.hi)
			if cerr != nil {
				return false, cerr
			}
			if stop {
				return false, nil
			}
			continue
		}
		v := s.pickVar(f.lo, f.hi)
		// Pushing in reverse explores ascending values first, matching
		// the solver's canonical order.
		// Ownership of nl/nh moves into the child frame; Put happens
		// when the frame is popped.
		for x := f.hi[v]; x >= f.lo[v]; x-- {
			nl := e.fl.Get(len(f.lo))
			nh := e.fl.Get(len(f.hi))
			copy(nl, f.lo)
			copy(nh, f.hi)
			nl[v], nh[v] = x, x
			stack = append(stack, enumFrame{lo: nl, hi: nh, seed: s.occ[v]})
		}
		e.fl.Put(f.lo)
		e.fl.Put(f.hi)
	}
	return true, nil
}

// pruneRejects marshals the projected variables' domains into the prune
// scratch and asks opts.Prune whether the subtree can be discarded.
func (e *enumerator) pruneRejects(lo, hi []int64) bool {
	for i, v := range e.opts.Project {
		e.pruneVals[i] = lo[v]
		e.pruneFixed[i] = lo[v] == hi[v]
	}
	return !e.opts.Prune(e.pruneVals, e.pruneFixed)
}

// projectionFixed reports whether every projected variable's domain is a
// single value.
func (e *enumerator) projectionFixed(lo, hi []int64) bool {
	for _, v := range e.opts.Project {
		if lo[v] != hi[v] {
			return false
		}
	}
	return true
}

// offerProjection handles a node whose projection is fully decided:
// dedupe, Accept-filter, verify a feasible completion of any remaining
// unprojected variables, and record. It reports stop=true when the cap
// was overrun.
func (e *enumerator) offerProjection(ctx context.Context, lo, hi []int64) (stop bool, err error) {
	for i, v := range e.opts.Project {
		e.proj[i] = lo[v]
		binary.LittleEndian.PutUint64(e.keyBuf[8*i:], uint64(lo[v]))
	}
	if _, dup := e.seen[string(e.keyBuf)]; dup {
		return false, nil
	}
	e.seen[string(e.keyBuf)] = struct{}{}
	if e.opts.Accept != nil && !e.opts.Accept(e.proj) {
		return false, nil
	}
	ok, err := e.completable(ctx, lo, hi)
	if err != nil || !ok {
		return false, err
	}
	if e.opts.Cap > 0 && len(e.solutions) >= e.opts.Cap {
		// The cap-plus-first projection is the overflow signal; it is
		// deliberately not recorded, so Solutions holds exactly Cap
		// entries and the caller knows the count exceeds it.
		return true, nil
	}
	e.solutions = append(e.solutions, append([]int64(nil), e.proj...))
	return false, nil
}

// completable reports whether the (already propagated) bounds admit at
// least one full feasible assignment, branching only over the variables
// the projection left open. When the projection covers every variable —
// the planner's configuration — the bounds are already a feasible leaf
// and this returns immediately.
func (e *enumerator) completable(ctx context.Context, lo, hi []int64) (bool, error) {
	v := e.s.pickVar(lo, hi)
	if v == -1 {
		// All variables fixed and propagation held: a surviving fully
		// fixed node satisfies every constraint (interval consistency at
		// width zero is satisfaction), same as Solve's offer path.
		return true, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return false, context.Cause(ctx)
	}
	e.nodes++
	if e.nodes > e.maxNodes {
		return false, nil
	}
	for x := lo[v]; x <= hi[v]; x++ {
		nl := e.fl.Get(len(lo))
		nh := e.fl.Get(len(hi))
		copy(nl, lo)
		copy(nh, hi)
		nl[v], nh[v] = x, x
		if e.s.propagate(nl, nh, e.s.occ[v], PosInf, &e.sc) {
			ok, err := e.completable(ctx, nl, nh)
			if ok || err != nil {
				e.fl.Put(nl)
				e.fl.Put(nh)
				return ok, err
			}
		}
		e.fl.Put(nl)
		e.fl.Put(nh)
	}
	return false, nil
}
