package ilp

// Presolve: the core-map formulation generates thousands of two-variable
// equalities (every vertical observer shares its source's column, every
// horizontal observer its sink's row). Merging the equivalence classes
// with union-find before branch and bound shrinks both the variable count
// and the constraint set, typically by an order of magnitude on heavily
// fused dies.

// unionFind is a plain weighted union-find over variable indices.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// presolved is a reduced model plus the mapping back to original
// variables.
type presolved struct {
	model *Model
	// repVar maps each original variable to its representative's index
	// in the reduced model.
	repVar []Var
	// feasible is false when merging produced an empty domain.
	feasible bool
}

// isEquality reports whether c pins x == y for two distinct variables.
func isEquality(c constraint) (x, y Var, ok bool) {
	if c.lo != 0 || c.hi != 0 || len(c.terms) != 2 {
		return 0, 0, false
	}
	a, b := c.terms[0], c.terms[1]
	if a.Coef+b.Coef != 0 || a.Coef == 0 {
		return 0, 0, false
	}
	return a.Var, b.Var, true
}

// presolve merges equality-linked variables and rewrites the model.
func presolve(m *Model) *presolved {
	n := len(m.lo)
	uf := newUnionFind(n)
	for _, c := range m.cons {
		if x, y, ok := isEquality(c); ok {
			uf.union(int(x), int(y))
		}
	}

	// Intersect bounds per class (accumulated at the union-find root).
	lo := append([]int64(nil), m.lo...)
	hi := append([]int64(nil), m.hi...)
	feasible := true
	for v := 0; v < n; v++ {
		r := uf.find(v)
		if r == v {
			continue
		}
		if lo[v] > lo[r] {
			lo[r] = lo[v]
		}
		if hi[v] < hi[r] {
			hi[r] = hi[v]
		}
	}

	// Each class is represented by its smallest member, independent of the
	// order the equalities arrived in. This keeps the reduced model's
	// variable order — and with it the lexicographic tie-break between
	// equal-objective solutions — a function of the equivalence classes
	// alone, so logically equivalent models built from reordered or
	// dominance-pruned constraint systems solve to identical values.
	rep := make([]int, n)
	for v := n - 1; v >= 0; v-- {
		rep[uf.find(v)] = v
	}

	out := NewModel()
	repVar := make([]Var, n)
	newIdx := make([]int, n)
	for v := 0; v < n; v++ {
		r := uf.find(v)
		if rep[r] != v {
			continue
		}
		clo, chi := lo[r], hi[r]
		if clo > chi {
			feasible = false
			clo = chi // keep the model well-formed; caller bails
		}
		newIdx[v] = out.NumVars()
		out.NewVar(m.names[v], clo, chi)
	}
	for v := 0; v < n; v++ {
		repVar[v] = Var(newIdx[rep[uf.find(v)]])
	}

	// AddRange/SetObjective copy their input into the model's term slab,
	// so one scratch row serves every rewritten constraint.
	var scratch []Term
	rewrite := func(terms []Term) []Term {
		if cap(scratch) < len(terms) {
			scratch = make([]Term, len(terms))
		}
		row := scratch[:len(terms)]
		for i, t := range terms {
			row[i] = T(t.Coef, repVar[t.Var])
		}
		return row
	}
	for _, c := range m.cons {
		if x, y, ok := isEquality(c); ok && uf.find(int(x)) == uf.find(int(y)) {
			continue // absorbed into the merge
		}
		out.AddRange(c.label, rewrite(c.terms), c.lo, c.hi)
	}
	if len(m.obj) > 0 {
		out.SetObjective(rewrite(m.obj))
	}
	return &presolved{model: out, repVar: repVar, feasible: feasible}
}

// expand lifts a reduced-model solution back to the original variables.
func (p *presolved) expand(values []int64) []int64 {
	out := make([]int64, len(p.repVar))
	for v, rep := range p.repVar {
		out[v] = values[rep]
	}
	return out
}

// compress projects an original-model assignment onto the reduced model.
// A feasible assignment is constant across each merged equivalence class,
// so any member's value represents its class.
func (p *presolved) compress(values []int64) []int64 {
	out := make([]int64, p.model.NumVars())
	for v, rep := range p.repVar {
		out[rep] = values[v]
	}
	return out
}

// reduce extends presolve with constraint-dominance elimination and
// interval bound-tightening. It mutates m (always the fresh model built
// by presolve, never a caller's) in three deterministic passes:
//
//  1. Constraints with identical term signatures are merged, keeping the
//     tightest [lo, hi] — the core-map sweep emits the same bounding-box
//     inequality once per experiment that crosses a tile, so whole
//     families collapse to their dominant member here.
//  2. Interval propagation runs to fixpoint once at the root and the
//     tightened variable bounds are baked into the model, shrinking
//     every subsequent branch-and-bound domain (this is what turns the
//     memory-anchored single-variable constraints into plain bounds).
//  3. Constraints already implied by the tightened bounds alone are
//     dropped.
//
// Every pass preserves the feasible set exactly, so Solution.Values is
// byte-identical with and without reduce (pinned by the determinism
// corpus). Returns false when the model is proven infeasible.
func reduce(m *Model) bool {
	// Pass 1: merge identical-signature constraints. The signature is
	// built in reusable scratch buffers; map lookups with string(sig)
	// don't allocate (the compiler elides the conversion), so only the
	// first occurrence of each signature pays for a key copy.
	seen := make(map[string]int, len(m.cons))
	merged := make([]constraint, 0, len(m.cons))
	var sorted []Term
	var sig []byte
	for _, c := range m.cons {
		sorted, sig = signature(sorted[:0], sig[:0], c.terms)
		if i, ok := seen[string(sig)]; ok {
			if c.lo > merged[i].lo {
				merged[i].lo = c.lo
			}
			if c.hi < merged[i].hi {
				merged[i].hi = c.hi
			}
			continue
		}
		seen[string(sig)] = len(merged)
		merged = append(merged, c)
	}
	m.cons = merged
	for _, c := range m.cons {
		if c.lo > c.hi {
			return false
		}
	}

	// Pass 2: root bound-tightening.
	s := &solver{m: m}
	s.build(nil)
	lo := append([]int64(nil), m.lo...)
	hi := append([]int64(nil), m.hi...)
	if !s.propagate(lo, hi, nil, PosInf, &propScratch{}) {
		return false
	}
	copy(m.lo, lo)
	copy(m.hi, hi)

	// Pass 3: drop constraints implied by the tightened bounds.
	kept := m.cons[:0]
	for _, c := range m.cons {
		var minAct, maxAct int64
		for _, t := range c.terms {
			if t.Coef > 0 {
				minAct += t.Coef * lo[t.Var]
				maxAct += t.Coef * hi[t.Var]
			} else {
				minAct += t.Coef * hi[t.Var]
				maxAct += t.Coef * lo[t.Var]
			}
		}
		if minAct >= c.lo && maxAct <= c.hi {
			continue
		}
		kept = append(kept, c)
	}
	m.cons = kept
	return true
}

// signature appends the canonical identity of a constraint's linear form —
// terms sorted by variable, zig-zag varint encoded — to buf, using sorted
// as sorting scratch. Constraints sharing a signature differ only in their
// bounds, so the tightest pair dominates. Both slices are returned so the
// caller can recycle their backing arrays across constraints.
func signature(sorted []Term, buf []byte, terms []Term) ([]Term, []byte) {
	sorted = append(sorted, terms...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Var < sorted[j-1].Var; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, t := range sorted {
		buf = appendVarint(buf, int64(t.Var))
		buf = appendVarint(buf, t.Coef)
	}
	return sorted, buf
}

// appendVarint is a minimal zig-zag varint encoder (avoids importing
// encoding/binary for two call sites).
func appendVarint(buf []byte, v int64) []byte {
	u := uint64(v<<1) ^ uint64(v>>63)
	for u >= 0x80 {
		buf = append(buf, byte(u)|0x80)
		u >>= 7
	}
	return append(buf, byte(u))
}

// mapBranchOrder rewrites a branch order onto reduced variables, dropping
// duplicates.
func (p *presolved) mapBranchOrder(order []Var) []Var {
	seen := make(map[Var]bool, len(order))
	out := make([]Var, 0, len(order))
	for _, v := range order {
		r := p.repVar[v]
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
