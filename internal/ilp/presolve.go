package ilp

// Presolve: the core-map formulation generates thousands of two-variable
// equalities (every vertical observer shares its source's column, every
// horizontal observer its sink's row). Merging the equivalence classes
// with union-find before branch and bound shrinks both the variable count
// and the constraint set, typically by an order of magnitude on heavily
// fused dies.

// unionFind is a plain weighted union-find over variable indices.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// presolved is a reduced model plus the mapping back to original
// variables.
type presolved struct {
	model *Model
	// repVar maps each original variable to its representative's index
	// in the reduced model.
	repVar []Var
	// feasible is false when merging produced an empty domain.
	feasible bool
}

// isEquality reports whether c pins x == y for two distinct variables.
func isEquality(c constraint) (x, y Var, ok bool) {
	if c.lo != 0 || c.hi != 0 || len(c.terms) != 2 {
		return 0, 0, false
	}
	a, b := c.terms[0], c.terms[1]
	if a.Coef+b.Coef != 0 || a.Coef == 0 {
		return 0, 0, false
	}
	return a.Var, b.Var, true
}

// presolve merges equality-linked variables and rewrites the model.
func presolve(m *Model) *presolved {
	n := len(m.lo)
	uf := newUnionFind(n)
	for _, c := range m.cons {
		if x, y, ok := isEquality(c); ok {
			uf.union(int(x), int(y))
		}
	}

	// Intersect bounds per class.
	lo := append([]int64(nil), m.lo...)
	hi := append([]int64(nil), m.hi...)
	feasible := true
	for v := 0; v < n; v++ {
		r := uf.find(v)
		if r == v {
			continue
		}
		if lo[v] > lo[r] {
			lo[r] = lo[v]
		}
		if hi[v] < hi[r] {
			hi[r] = hi[v]
		}
	}

	out := NewModel()
	repVar := make([]Var, n)
	newIdx := make([]int, n)
	for v := 0; v < n; v++ {
		if uf.find(v) != v {
			continue
		}
		if lo[v] > hi[v] {
			feasible = false
			lo[v] = hi[v] // keep the model well-formed; caller bails
		}
		newIdx[v] = out.NumVars()
		out.NewVar(m.names[v], lo[v], hi[v])
	}
	for v := 0; v < n; v++ {
		repVar[v] = Var(newIdx[uf.find(v)])
	}

	for _, c := range m.cons {
		if x, y, ok := isEquality(c); ok && uf.find(int(x)) == uf.find(int(y)) {
			continue // absorbed into the merge
		}
		terms := make([]Term, len(c.terms))
		for i, t := range c.terms {
			terms[i] = T(t.Coef, repVar[t.Var])
		}
		out.AddRange(c.label, terms, c.lo, c.hi)
	}
	if len(m.obj) > 0 {
		obj := make([]Term, len(m.obj))
		for i, t := range m.obj {
			obj[i] = T(t.Coef, repVar[t.Var])
		}
		out.SetObjective(obj)
	}
	return &presolved{model: out, repVar: repVar, feasible: feasible}
}

// expand lifts a reduced-model solution back to the original variables.
func (p *presolved) expand(values []int64) []int64 {
	out := make([]int64, len(p.repVar))
	for v, rep := range p.repVar {
		out[v] = values[rep]
	}
	return out
}

// mapBranchOrder rewrites a branch order onto reduced variables, dropping
// duplicates.
func (p *presolved) mapBranchOrder(order []Var) []Var {
	seen := make(map[Var]bool, len(order))
	out := make([]Var, 0, len(order))
	for _, v := range order {
		r := p.repVar[v]
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
