package ilp

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// The parallel solver promises byte-identical Solution.Values at any
// worker count (ties between equal-objective solutions are broken by the
// canonical lexicographic rule, not by which worker got there first).
// This file pins that promise on a fixed corpus: every model is solved
// with Workers 1, 2 and 8 and the results must agree exactly. The race
// CI job runs this under -race, which also exercises the deque and the
// shared-bound publishing for data races.

var workerCounts = []int{1, 2, 8}

// corpusModel is one reproducible instance of the determinism corpus.
type corpusModel struct {
	name  string
	build func() *Model
}

// packingModel is the ordered-chain packing model the solver benchmarks
// use: n variables forced strictly increasing, minimizing their sum.
func packingModel(n int, span int64) *Model {
	m := NewModel()
	vars := make([]Var, n)
	obj := make([]Term, n)
	for i := range vars {
		vars[i] = m.NewVar("x", 0, span)
		obj[i] = T(1, vars[i])
	}
	for i := 0; i+1 < n; i++ {
		m.AddGE("ord", []Term{T(1, vars[i+1]), T(-1, vars[i])}, 1)
	}
	m.SetObjective(obj)
	return m
}

// placementModel mimics the locate formulation in miniature: tile
// row/column variables, big-M direction disjunctions, one-hot channeling
// and occupancy indicators with a packing objective. It has many
// equal-objective optima (mirrored and permuted placements), which is
// exactly what the lexicographic tie-break must resolve identically on
// every worker count.
func placementModel(tiles, rows, cols int) *Model {
	const bigM = 64
	m := NewModel()
	r := make([]Var, tiles)
	c := make([]Var, tiles)
	for i := 0; i < tiles; i++ {
		r[i] = m.NewVar(fmt.Sprintf("R%d", i), 0, int64(rows-1))
		c[i] = m.NewVar(fmt.Sprintf("C%d", i), 0, int64(cols-1))
	}
	// Chain of horizontal paths with unknown direction: tile i and i+1
	// share a row, and one of east/west strict orderings holds.
	for i := 0; i+1 < tiles; i++ {
		m.AddEq(fmt.Sprintf("row%d", i), []Term{T(1, r[i]), T(-1, r[i+1])}, 0)
		ne := m.NewBinary(fmt.Sprintf("NE%d", i))
		nw := m.NewBinary(fmt.Sprintf("NW%d", i))
		m.AddEq(fmt.Sprintf("dir%d", i), []Term{T(1, ne), T(1, nw)}, 1)
		m.AddLE(fmt.Sprintf("east%d", i), []Term{T(1, c[i]), T(-1, c[i+1]), T(-bigM, ne)}, -1)
		m.AddLE(fmt.Sprintf("west%d", i), []Term{T(1, c[i+1]), T(-1, c[i]), T(-bigM, nw)}, -1)
	}
	// One-hot row encoding with occupancy indicators feeding the packing
	// objective, as in locate's addObjective.
	var obj []Term
	oh := make([][]Var, tiles)
	for i := 0; i < tiles; i++ {
		oh[i] = make([]Var, rows)
		sum := make([]Term, rows)
		channel := []Term{T(-1, r[i])}
		for k := 0; k < rows; k++ {
			oh[i][k] = m.NewBinary(fmt.Sprintf("OH%d_%d", i, k))
			sum[k] = T(1, oh[i][k])
			if k > 0 {
				channel = append(channel, T(int64(k), oh[i][k]))
			}
		}
		m.AddEq(fmt.Sprintf("onehot%d", i), sum, 1)
		m.AddEq(fmt.Sprintf("channel%d", i), channel, 0)
	}
	for k := 0; k < rows; k++ {
		ind := m.NewBinary(fmt.Sprintf("I%d", k))
		occ := make([]Term, 0, tiles)
		for i := 0; i < tiles; i++ {
			occ = append(occ, T(1, oh[i][k]))
		}
		lower := append([]Term{T(1, ind)}, negateTerms(occ)...)
		m.AddLE(fmt.Sprintf("ind-lo%d", k), lower, 0)
		upper := append(append([]Term{}, occ...), T(-bigM, ind))
		m.AddLE(fmt.Sprintf("ind-hi%d", k), upper, 0)
		obj = append(obj, T(int64(k+1), ind))
	}
	m.SetObjective(obj)
	return m
}

func negateTerms(terms []Term) []Term {
	out := make([]Term, len(terms))
	for i, t := range terms {
		out[i] = T(-t.Coef, t.Var)
	}
	return out
}

// randomModel draws a reproducible feasibility-biased random model.
func randomModel(seed int64) *Model {
	r := rand.New(rand.NewSource(seed))
	m := NewModel()
	nVars := 4 + r.Intn(4)
	for i := 0; i < nVars; i++ {
		lo := int64(r.Intn(3)) - 1
		m.NewVar("x", lo, lo+int64(r.Intn(5)))
	}
	for i := 0; i < 2+r.Intn(4); i++ {
		var terms []Term
		for v := 0; v < nVars; v++ {
			if r.Intn(2) == 0 {
				terms = append(terms, T(int64(r.Intn(7))-3, Var(v)))
			}
		}
		if len(terms) == 0 {
			continue
		}
		rhs := int64(r.Intn(9)) - 2
		if r.Intn(2) == 0 {
			m.AddLE("c", terms, rhs)
		} else {
			m.AddGE("c", terms, rhs-6)
		}
	}
	if r.Intn(4) > 0 { // leave some models objective-free
		var obj []Term
		for v := 0; v < nVars; v++ {
			obj = append(obj, T(int64(r.Intn(9))-4, Var(v)))
		}
		m.SetObjective(obj)
	}
	return m
}

func corpus() []corpusModel {
	models := []corpusModel{
		{"packing-12", func() *Model { return packingModel(12, 20) }},
		{"placement-4x3x4", func() *Model { return placementModel(4, 3, 4) }},
		{"placement-5x4x5", func() *Model { return placementModel(5, 4, 5) }},
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		models = append(models, corpusModel{
			name:  fmt.Sprintf("random-%d", seed),
			build: func() *Model { return randomModel(seed) },
		})
	}
	return models
}

// TestSolveDeterministicAcrossWorkers is the regression test for the
// parallel solver's reproducibility guarantee.
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	for _, cm := range corpus() {
		t.Run(cm.name, func(t *testing.T) {
			var ref *Solution
			var refErr error
			for _, w := range workerCounts {
				sol, err := Solve(context.Background(), cm.build(), Options{Workers: w})
				if w == workerCounts[0] {
					ref, refErr = sol, err
					if err == nil {
						if !sol.Optimal {
							t.Fatalf("corpus model did not complete within the node budget")
						}
						if err := CheckFeasible(cm.build(), sol.Values); err != nil {
							t.Fatalf("workers=%d returned infeasible solution: %v", w, err)
						}
					}
					continue
				}
				if (err == nil) != (refErr == nil) {
					t.Fatalf("workers=%d err=%v, workers=%d err=%v", workerCounts[0], refErr, w, err)
				}
				if err != nil {
					continue
				}
				if sol.Objective != ref.Objective {
					t.Errorf("workers=%d objective %d, workers=%d objective %d",
						workerCounts[0], ref.Objective, w, sol.Objective)
				}
				for i := range sol.Values {
					if sol.Values[i] != ref.Values[i] {
						t.Errorf("workers=%d and workers=%d disagree at var %d: %d vs %d",
							workerCounts[0], w, i, ref.Values[i], sol.Values[i])
						break
					}
				}
			}
		})
	}
}

// TestSolveDeterministicNoPresolve re-runs the structured corpus without
// the equality-merging presolve, which changes the variable space the
// lexicographic tie-break ranges over but must not change determinism.
func TestSolveDeterministicNoPresolve(t *testing.T) {
	model := func() *Model { return placementModel(4, 3, 4) }
	ref, err := Solve(context.Background(), model(), Options{Workers: 1, NoPresolve: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		sol, err := Solve(context.Background(), model(), Options{Workers: w, NoPresolve: true})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective != ref.Objective {
			t.Errorf("workers=%d objective %d, want %d", w, sol.Objective, ref.Objective)
		}
		for i := range sol.Values {
			if sol.Values[i] != ref.Values[i] {
				t.Errorf("workers=%d disagrees at var %d: %d vs %d", w, i, ref.Values[i], sol.Values[i])
				break
			}
		}
	}
}

// TestSolveLexicographicTieBreak pins the canonical tie-break itself: a
// model whose optima are known and tied must return the lexicographically
// smallest value vector.
func TestSolveLexicographicTieBreak(t *testing.T) {
	for _, w := range workerCounts {
		m := NewModel()
		x := m.NewVar("x", 0, 3)
		y := m.NewVar("y", 0, 3)
		m.AddEq("sum", []Term{T(1, x), T(1, y)}, 3)
		m.SetObjective([]Term{T(1, x), T(1, y)}) // every solution ties at 3
		sol, err := Solve(context.Background(), m, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Value(x) != 0 || sol.Value(y) != 3 {
			t.Errorf("workers=%d: x=%d y=%d, want lexicographically smallest 0,3",
				w, sol.Value(x), sol.Value(y))
		}
	}
}
