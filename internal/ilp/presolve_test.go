package ilp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPresolveMergesEqualities(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 5)
	y := m.NewVar("y", 0, 5)
	z := m.NewVar("z", 0, 5)
	m.AddEq("xy", []Term{T(1, x), T(-1, y)}, 0)
	m.AddEq("yz", []Term{T(1, y), T(-1, z)}, 0)
	p := presolve(m)
	if got := p.model.NumVars(); got != 1 {
		t.Errorf("presolved model has %d variables, want 1", got)
	}
	if p.model.NumConstraints() != 0 {
		t.Errorf("presolved model kept %d constraints, want 0", p.model.NumConstraints())
	}
	if p.repVar[x] != p.repVar[y] || p.repVar[y] != p.repVar[z] {
		t.Error("variables not mapped to one representative")
	}
}

func TestPresolveIntersectsBounds(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 3)
	y := m.NewVar("y", 2, 9)
	m.AddEq("xy", []Term{T(1, x), T(-1, y)}, 0)
	p := presolve(m)
	if !p.feasible {
		t.Fatal("feasible merge reported infeasible")
	}
	if p.model.lo[0] != 2 || p.model.hi[0] != 3 {
		t.Errorf("merged bounds [%d,%d], want [2,3]", p.model.lo[0], p.model.hi[0])
	}
}

func TestPresolveDetectsInfeasibleMerge(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 1)
	y := m.NewVar("y", 3, 4)
	m.AddEq("xy", []Term{T(1, x), T(-1, y)}, 0)
	if _, err := Solve(context.Background(), m, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible from presolve", err)
	}
}

func TestPresolveKeepsNonEqualities(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 5)
	y := m.NewVar("y", 0, 5)
	m.AddLE("le", []Term{T(1, x), T(-1, y)}, 0)     // inequality, not equality
	m.AddEq("sum", []Term{T(1, x), T(1, y)}, 4)     // equality but not x==y form
	m.AddEq("scaled", []Term{T(2, x), T(-2, y)}, 0) // scaled equality — also a merge
	p := presolve(m)
	if got := p.model.NumVars(); got != 1 {
		t.Errorf("presolved model has %d variables, want 1 (2x-2y=0 merges)", got)
	}
	if p.model.NumConstraints() != 2 {
		t.Errorf("kept %d constraints, want 2", p.model.NumConstraints())
	}
}

// TestPresolveEquivalence: with and without presolve, the solver must find
// the same objective on random models containing equality chains.
func TestPresolveEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel()
		n := 3 + r.Intn(4)
		vars := make([]Var, n)
		for i := range vars {
			lo := int64(r.Intn(3))
			vars[i] = m.NewVar("x", lo, lo+int64(1+r.Intn(3)))
		}
		// Random equality links.
		for i := 0; i < r.Intn(3); i++ {
			a, b := vars[r.Intn(n)], vars[r.Intn(n)]
			if a != b {
				m.AddEq("eq", []Term{T(1, a), T(-1, b)}, 0)
			}
		}
		// Random inequalities.
		for i := 0; i < 1+r.Intn(3); i++ {
			var terms []Term
			for _, v := range vars {
				if r.Intn(2) == 0 {
					terms = append(terms, T(int64(r.Intn(5))-2, v))
				}
			}
			if len(terms) > 0 {
				m.AddLE("c", terms, int64(r.Intn(9))-2)
			}
		}
		obj := make([]Term, n)
		for i, v := range vars {
			obj[i] = T(int64(r.Intn(5))-2, v)
		}
		m.SetObjective(obj)

		a, errA := Solve(context.Background(), m, Options{})
		b, errB := Solve(context.Background(), m, Options{NoPresolve: true})
		if (errA == nil) != (errB == nil) {
			t.Logf("seed %d: presolve err=%v, plain err=%v", seed, errA, errB)
			return false
		}
		if errA != nil {
			return true
		}
		if CheckFeasible(m, a.Values) != nil {
			t.Logf("seed %d: presolved solution infeasible on original model", seed)
			return false
		}
		if a.Objective != b.Objective {
			t.Logf("seed %d: objectives differ: %d vs %d", seed, a.Objective, b.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(90))}); err != nil {
		t.Error(err)
	}
}
