package ilp

import (
	"context"
	"fmt"
	"runtime"

	"coremap/internal/cmerr"
	"coremap/internal/obs"
)

// Errors returned by Solve.
var (
	// ErrInfeasible reports that the model admits no integer solution.
	// It is a Permanent error: re-running the same model cannot help.
	ErrInfeasible = cmerr.Sentinel(cmerr.Permanent, "ilp: infeasible")
	// ErrNodeLimit reports that the search budget expired before any
	// feasible solution was found.
	ErrNodeLimit = cmerr.Sentinel(cmerr.Permanent, "ilp: node limit reached without a feasible solution")
	// ErrInterrupted reports that the context was cancelled mid-search.
	// When an incumbent existed at cancellation time, Solve returns it
	// alongside this error (Solution non-nil, Optimal false); the
	// incumbent is a complete, feasible assignment — never a partial
	// write-out. errors.Is(err, cmerr.Interrupted) matches.
	ErrInterrupted = cmerr.Sentinel(cmerr.Interrupted, "ilp: interrupted")
)

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of search nodes (0 = DefaultMaxNodes).
	MaxNodes int
	// BranchOrder, when non-nil, lists variables to branch on first, in
	// priority order. Variables not listed are branched after these,
	// smallest-domain first. The core-map formulation lists the row and
	// column variables here: once those are fixed, everything else is
	// decided by propagation or cheap follow-up branching.
	BranchOrder []Var
	// NoPresolve disables the equality-merging presolve (mainly for
	// tests and ablation benchmarks). It implies NoReduce.
	NoPresolve bool
	// NoReduce disables the presolve extensions — duplicate-constraint
	// merging, root interval bound-tightening and implied-constraint
	// elimination — while keeping the equality merge. Solution.Values is
	// byte-identical either way (see the determinism corpus); the switch
	// exists for ablation and regression testing.
	NoReduce bool
	// Workers sets the number of branch-and-bound workers pulling subtree
	// tasks from a shared deque (0 = runtime.GOMAXPROCS). Results are
	// independent of the worker count: ties between equal-objective
	// solutions are broken by a canonical lexicographic rule, so a solve
	// that completes within MaxNodes returns byte-identical
	// Solution.Values at any Workers setting. Only Solution.Nodes (and,
	// for budget-truncated searches, the incumbent) may vary.
	Workers int
}

// DefaultMaxNodes is the search budget used when Options.MaxNodes is 0.
const DefaultMaxNodes = 2_000_000

// Solve minimizes m's objective subject to its constraints. The search is
// cancellable: when ctx expires, workers stop at the next node boundary
// (the deque pop and the per-node budget check both observe it) and Solve
// returns the best incumbent found so far together with ErrInterrupted,
// or ErrInterrupted alone when no feasible leaf had been reached yet.
func Solve(ctx context.Context, m *Model, opts Options) (sol *Solution, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "ilp/solve")
	defer func() { span.End(err) }()
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	target := m
	branchOrder := opts.BranchOrder
	var pre *presolved
	if !opts.NoPresolve {
		pre = presolve(m)
		if !pre.feasible {
			return nil, ErrInfeasible
		}
		if !opts.NoReduce && !reduce(pre.model) {
			return nil, ErrInfeasible
		}
		target = pre.model
		branchOrder = pre.mapBranchOrder(opts.BranchOrder)
	}

	s := &solver{m: target}
	s.build(branchOrder)

	lo := append([]int64(nil), target.lo...)
	hi := append([]int64(nil), target.hi...)
	e := newEngine(s, workers, maxNodes)

	// A watcher turns context expiry into the engine's interrupt flag,
	// which every worker polls per node and which wakes blocked deque
	// pops. The stop channel reaps the watcher on normal completion so a
	// Solve never leaks a goroutine (the CI race job pins this).
	stop := make(chan struct{})
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			e.interrupt()
		case <-stop:
		}
	}()
	e.run(frame{lo: lo, hi: hi})
	close(stop)
	<-watcher

	e.record(obs.RegistryFrom(ctx), m, target, span)
	interrupted := e.interrupted.Load()
	if e.best == nil {
		if interrupted {
			return nil, fmt.Errorf("%w (no incumbent): %w", ErrInterrupted, context.Cause(ctx))
		}
		if e.aborted.Load() {
			return nil, ErrNodeLimit
		}
		return nil, ErrInfeasible
	}
	values := e.best
	if pre != nil {
		values = pre.expand(values)
	}
	sol = &Solution{
		Values:    values,
		Objective: e.bestObj,
		Optimal:   !e.aborted.Load(),
		Nodes:     int(e.nodes.Load()),
	}
	if interrupted {
		// The incumbent is complete and feasible; hand it back with the
		// interruption so callers can degrade instead of discarding it.
		return sol, ErrInterrupted
	}
	return sol, nil
}

// workerNodeBounds buckets per-worker node counts for the utilization
// histogram: a heavily skewed distribution (one busy worker, the rest
// idle) is the signature of a bad task split.
var workerNodeBounds = []int64{0, 100, 1_000, 10_000, 100_000, 1_000_000}

// record publishes the finished search's statistics: counters for nodes,
// prunes, incumbent updates and presolve reductions, the per-worker node
// histogram, and the node/worker attributes of the solve span. Safe (and
// a near no-op) with a nil registry. Called after the worker pool has
// joined, so the engine state is quiescent.
func (e *engine) record(reg *obs.Registry, orig, target *Model, span *obs.Span) {
	nodes := e.nodes.Load()
	span.SetAttr("nodes", nodes).SetAttr("workers", int64(e.workers))
	if reg == nil {
		return
	}
	reg.Counter("ilp/solves").Inc()
	reg.Counter("ilp/nodes").Add(nodes)
	reg.Counter("ilp/pruned").Add(e.pruned.Load())
	reg.Counter("ilp/incumbents").Add(e.incumbents)
	if d := int64(orig.NumVars() - target.NumVars()); d > 0 {
		reg.Counter("ilp/presolve/vars_removed").Add(d)
	}
	if d := int64(orig.NumConstraints() - target.NumConstraints()); d > 0 {
		reg.Counter("ilp/presolve/cons_removed").Add(d)
	}
	h := reg.Histogram("ilp/worker_nodes", workerNodeBounds)
	for _, n := range e.workerNodes {
		h.Observe(n)
	}
}

// solver is the immutable search context shared by all workers: the model,
// its constraint/occurrence indexes and the branching priorities. Mutable
// search state (incumbent, bound, node budget, task deque) lives in engine.
type solver struct {
	m      *Model
	cons   []constraint
	occ    [][]int32 // var → indices of constraints containing it
	objIdx int       // index of the objective cut constraint, or -1
	rank   []int32   // var → branch priority (lower first)
}

func (s *solver) build(order []Var) {
	s.cons = append([]constraint(nil), s.m.cons...)
	s.objIdx = -1
	if len(s.m.obj) > 0 {
		// The objective is represented as a cut constraint whose upper
		// bound is the shared incumbent bound: once an incumbent with
		// value z is known, propagation prunes anything worse than z.
		// Equal-objective solutions stay reachable so the lexicographic
		// tie-break is applied to every optimum, keeping results
		// scheduling-independent.
		s.objIdx = len(s.cons)
		s.cons = append(s.cons, constraint{
			terms: s.m.obj, lo: NegInf, hi: PosInf, label: "objective-cut",
		})
	}
	s.occ = make([][]int32, len(s.m.lo))
	for ci, c := range s.cons {
		for _, t := range c.terms {
			s.occ[t.Var] = append(s.occ[t.Var], int32(ci))
		}
	}
	s.rank = make([]int32, len(s.m.lo))
	for i := range s.rank {
		s.rank[i] = int32(len(order)) // unlisted vars after listed ones
	}
	for i, v := range order {
		s.rank[v] = int32(i)
	}
}

// floorDiv returns ⌊a/b⌋ for any non-zero b.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for any non-zero b.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// propagate tightens lo/hi to a fixpoint of interval consistency over all
// constraints. objHi is the current upper bound of the objective cut (the
// shared incumbent bound; PosInf when no incumbent or no objective exists).
// It reports false on a domain wipe-out or violated constraint.
func (s *solver) propagate(lo, hi []int64, seed []int32, objHi int64) bool {
	inQueue := make([]bool, len(s.cons))
	queue := make([]int32, 0, len(s.cons))
	push := func(ci int32) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}
	if seed == nil {
		for ci := range s.cons {
			push(int32(ci))
		}
	} else {
		for _, ci := range seed {
			push(ci)
		}
	}

	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		inQueue[ci] = false
		c := &s.cons[ci]
		chi := c.hi
		if int(ci) == s.objIdx {
			chi = objHi
		}

		var minAct, maxAct int64
		for _, t := range c.terms {
			if t.Coef > 0 {
				minAct += t.Coef * lo[t.Var]
				maxAct += t.Coef * hi[t.Var]
			} else {
				minAct += t.Coef * hi[t.Var]
				maxAct += t.Coef * lo[t.Var]
			}
		}
		if minAct > chi || maxAct < c.lo {
			return false
		}
		for _, t := range c.terms {
			v := t.Var
			var tMin, tMax int64
			if t.Coef > 0 {
				tMin, tMax = t.Coef*lo[v], t.Coef*hi[v]
			} else {
				tMin, tMax = t.Coef*hi[v], t.Coef*lo[v]
			}
			restMin := minAct - tMin
			restMax := maxAct - tMax
			// t.Coef*x ≤ chi - restMin and t.Coef*x ≥ c.lo - restMax.
			var newLo, newHi int64
			if t.Coef > 0 {
				newHi = floorDiv(clampInf(chi)-restMin, t.Coef)
				newLo = ceilDiv(clampInf(c.lo)-restMax, t.Coef)
			} else {
				newLo, newHi = boundsNegCoef(t.Coef, clampInf(chi)-restMin, clampInf(c.lo)-restMax)
			}
			changed := false
			if newHi < hi[v] {
				hi[v] = newHi
				changed = true
			}
			if newLo > lo[v] {
				lo[v] = newLo
				changed = true
			}
			if changed {
				if lo[v] > hi[v] {
					return false
				}
				for _, oc := range s.occ[v] {
					push(oc)
				}
				// Recompute activities incrementally for the
				// remaining terms of this constraint.
				var nMin, nMax int64
				if t.Coef > 0 {
					nMin, nMax = t.Coef*lo[v], t.Coef*hi[v]
				} else {
					nMin, nMax = t.Coef*hi[v], t.Coef*lo[v]
				}
				minAct = restMin + nMin
				maxAct = restMax + nMax
			}
		}
	}
	return true
}

// clampInf keeps the ±Inf sentinels from overflowing division arithmetic.
func clampInf(x int64) int64 {
	if x >= PosInf {
		return PosInf
	}
	if x <= NegInf {
		return NegInf
	}
	return x
}

// boundsNegCoef computes the [lo,hi] bounds of x from c·x ≤ ubRhs and
// c·x ≥ lbRhs when c < 0 (dividing by a negative flips the inequalities).
func boundsNegCoef(c, ubRhs, lbRhs int64) (lo, hi int64) {
	return ceilDiv(ubRhs, c), floorDiv(lbRhs, c)
}

// pickVar selects the next branching variable: lowest rank first, then
// smallest current domain. Returns -1 when every variable is fixed.
func (s *solver) pickVar(lo, hi []int64) int {
	best := -1
	var bestRank int32
	var bestSpan int64
	for v := range lo {
		span := hi[v] - lo[v]
		if span == 0 {
			continue
		}
		if best == -1 || s.rank[v] < bestRank || (s.rank[v] == bestRank && span < bestSpan) {
			best, bestRank, bestSpan = v, s.rank[v], span
		}
	}
	return best
}

func (s *solver) objective(vals []int64) int64 {
	var z int64
	for _, t := range s.m.obj {
		z += t.Coef * vals[t.Var]
	}
	return z
}

// lexLess reports whether a precedes b lexicographically. It is the
// canonical tie-break between equal-objective solutions: the winner is the
// same whichever worker finds which solution first, which is what makes
// parallel solves reproducible.
func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// CheckFeasible verifies that the given assignment satisfies every
// constraint of the model, returning a descriptive error for the first
// violation. It is used by tests and by locate's sanity checks.
func CheckFeasible(m *Model, vals []int64) error {
	if len(vals) != len(m.lo) {
		return cmerr.New(cmerr.Permanent, "ilp", "assignment has %d values, model has %d variables", len(vals), len(m.lo))
	}
	for v := range m.lo {
		if vals[v] < m.lo[v] || vals[v] > m.hi[v] {
			return cmerr.New(cmerr.Permanent, "ilp", "%s = %d outside [%d,%d]", m.names[v], vals[v], m.lo[v], m.hi[v])
		}
	}
	for _, c := range m.cons {
		var sum int64
		for _, t := range c.terms {
			sum += t.Coef * vals[t.Var]
		}
		if sum < c.lo || sum > c.hi {
			return cmerr.New(cmerr.Permanent, "ilp", "constraint %q violated: %d ∉ [%d,%d]", c.label, sum, c.lo, c.hi)
		}
	}
	return nil
}
