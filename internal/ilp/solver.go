package ilp

import (
	"context"
	"fmt"
	"runtime"

	"coremap/internal/cmerr"
	"coremap/internal/obs"
)

// Errors returned by Solve.
var (
	// ErrInfeasible reports that the model admits no integer solution.
	// It is a Permanent error: re-running the same model cannot help.
	ErrInfeasible = cmerr.Sentinel(cmerr.Permanent, "ilp: infeasible")
	// ErrNodeLimit reports that the search budget expired before any
	// feasible solution was found.
	ErrNodeLimit = cmerr.Sentinel(cmerr.Permanent, "ilp: node limit reached without a feasible solution")
	// ErrInterrupted reports that the context was cancelled mid-search.
	// When an incumbent existed at cancellation time, Solve returns it
	// alongside this error (Solution non-nil, Optimal false); the
	// incumbent is a complete, feasible assignment — never a partial
	// write-out. errors.Is(err, cmerr.Interrupted) matches.
	ErrInterrupted = cmerr.Sentinel(cmerr.Interrupted, "ilp: interrupted")
)

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of search nodes (0 = DefaultMaxNodes).
	MaxNodes int
	// BranchOrder, when non-nil, lists variables to branch on first, in
	// priority order. Variables not listed are branched after these,
	// smallest-domain first. The core-map formulation lists the row and
	// column variables here: once those are fixed, everything else is
	// decided by propagation or cheap follow-up branching.
	BranchOrder []Var
	// NoPresolve disables the equality-merging presolve (mainly for
	// tests and ablation benchmarks). It implies NoReduce.
	NoPresolve bool
	// NoReduce disables the presolve extensions — duplicate-constraint
	// merging, root interval bound-tightening and implied-constraint
	// elimination — while keeping the equality merge. Solution.Values is
	// byte-identical either way (see the determinism corpus); the switch
	// exists for ablation and regression testing.
	NoReduce bool
	// Workers sets the number of branch-and-bound workers pulling subtree
	// tasks from a shared deque (0 = runtime.GOMAXPROCS). Results are
	// independent of the worker count: ties between equal-objective
	// solutions are broken by a canonical lexicographic rule, so a solve
	// that completes within MaxNodes returns byte-identical
	// Solution.Values at any Workers setting. Only Solution.Nodes (and,
	// for budget-truncated searches, the incumbent) may vary.
	Workers int
	// WarmStart, when non-nil, is a candidate assignment of every model
	// variable used to seed the incumbent (and its pruning bound) before
	// the search starts. The seed is verified with CheckFeasible and
	// silently ignored when infeasible or when its length does not match
	// the model, so callers may pass best-effort guesses. Seeding never
	// changes Solution.Values of a completed search: the bound admits
	// equal-objective solutions and the lexicographic tie-break still
	// selects the canonical optimum — a warm solve only prunes
	// worse-than-seed subtrees earlier (pinned by the determinism corpus).
	WarmStart []int64
	// NoWarmStart ignores WarmStart (ablation and regression testing).
	NoWarmStart bool
	// NoSymmetryBreak disables the solver-side interchangeable-variable
	// ordering pass (see symmetry.go). Solution.Values is byte-identical
	// either way; the switch exists for ablation.
	NoSymmetryBreak bool
}

// DefaultMaxNodes is the search budget used when Options.MaxNodes is 0.
const DefaultMaxNodes = 2_000_000

// Solve minimizes m's objective subject to its constraints. The search is
// cancellable: when ctx expires, workers stop at the next node boundary
// (the deque pop and the per-node budget check both observe it) and Solve
// returns the best incumbent found so far together with ErrInterrupted,
// or ErrInterrupted alone when no feasible leaf had been reached yet.
func Solve(ctx context.Context, m *Model, opts Options) (sol *Solution, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := obs.Start(ctx, "ilp/solve")
	defer func() { span.End(err) }()
	clock := obs.From(ctx).Clock()
	solveStart := clock.Now()
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	target := m
	branchOrder := opts.BranchOrder
	var pre *presolved
	if !opts.NoPresolve {
		pre = presolve(m)
		if !pre.feasible {
			return nil, ErrInfeasible
		}
		if !opts.NoReduce && !reduce(pre.model) {
			return nil, ErrInfeasible
		}
		target = pre.model
		branchOrder = pre.mapBranchOrder(opts.BranchOrder)
	}

	var symBreaks int
	if pre != nil && !opts.NoSymmetryBreak {
		// Only the presolved copy is ever mutated; with NoPresolve the
		// target is the caller's model, so the pass is skipped.
		symBreaks = breakSymmetries(target)
	}

	s := &solver{m: target}
	s.build(branchOrder)

	lo := append([]int64(nil), target.lo...)
	hi := append([]int64(nil), target.hi...)
	e := newEngine(s, workers, maxNodes)
	e.symBreaks = int64(symBreaks)
	if !opts.NoWarmStart && len(opts.WarmStart) == len(m.lo) &&
		CheckFeasible(m, opts.WarmStart) == nil {
		seed := append([]int64(nil), opts.WarmStart...)
		if pre != nil {
			// A feasible assignment is constant across each merged
			// equivalence class, so projecting through repVar and the
			// reduce-tightened bounds keeps it feasible for the target.
			seed = pre.compress(seed)
		}
		e.seed(seed, s.objective(seed))
	}

	// A watcher turns context expiry into the engine's interrupt flag,
	// which every worker polls per node and which wakes blocked deque
	// pops. The stop channel reaps the watcher on normal completion so a
	// Solve never leaks a goroutine (the CI race job pins this).
	stop := make(chan struct{})
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			e.interrupt()
		case <-stop:
		}
	}()
	e.run(frame{lo: lo, hi: hi})
	close(stop)
	<-watcher

	e.record(obs.RegistryFrom(ctx), m, target, span)
	obs.RegistryFrom(ctx).Histogram("ilp/solve_us").
		Observe(clock.Now().Sub(solveStart).Microseconds())
	interrupted := e.interrupted.Load()
	// The pool has joined, but the incumbent fields are guarded by e.mu,
	// so the (uncontended) lock is taken for the final read too.
	e.mu.Lock()
	best, bestObj := e.best, e.bestObj
	e.mu.Unlock()
	if best == nil {
		if interrupted {
			return nil, fmt.Errorf("%w (no incumbent): %w", ErrInterrupted, context.Cause(ctx))
		}
		if e.aborted.Load() {
			return nil, ErrNodeLimit
		}
		return nil, ErrInfeasible
	}
	values := best
	if pre != nil {
		values = pre.expand(values)
	}
	sol = &Solution{
		Values:    values,
		Objective: bestObj,
		Optimal:   !e.aborted.Load(),
		Nodes:     int(e.nodes.Load()),
	}
	if interrupted {
		// The incumbent is complete and feasible; hand it back with the
		// interruption so callers can degrade instead of discarding it.
		return sol, ErrInterrupted
	}
	return sol, nil
}

// record publishes the finished search's statistics: counters for nodes,
// prunes, incumbent updates and presolve reductions, the per-worker node
// histogram, and the node/worker attributes of the solve span. Safe (and
// a near no-op) with a nil registry. Called after the worker pool has
// joined, so the engine state is quiescent.
func (e *engine) record(reg *obs.Registry, orig, target *Model, span *obs.Span) {
	nodes := e.nodes.Load()
	span.SetAttr("nodes", nodes).SetAttr("workers", int64(e.workers))
	if reg == nil {
		return
	}
	e.mu.Lock()
	incumbents := e.incumbents
	e.mu.Unlock()
	reg.Counter("ilp/solves").Inc()
	reg.Counter("ilp/nodes").Add(nodes)
	reg.Counter("ilp/pruned").Add(e.pruned.Load())
	reg.Counter("ilp/incumbents").Add(incumbents)
	if d := int64(orig.NumVars() - target.NumVars()); d > 0 {
		reg.Counter("ilp/presolve/vars_removed").Add(d)
	}
	if d := int64(orig.NumConstraints() - target.NumConstraints()); d > 0 {
		reg.Counter("ilp/presolve/cons_removed").Add(d)
	}
	if e.seeded {
		reg.Counter("ilp/incumbent_seeded").Inc()
	}
	if e.symBreaks > 0 {
		reg.Counter("ilp/symmetry_breaks").Add(e.symBreaks)
	}
	h := reg.Histogram("ilp/worker_nodes")
	for _, n := range e.workerNodes {
		h.Observe(n)
	}
}

// solver is the immutable search context shared by all workers: the model,
// its constraint/occurrence indexes and the branching priorities. Mutable
// search state (incumbent, bound, node budget, task deque) lives in engine.
type solver struct {
	m      *Model
	cons   []constraint
	occ    [][]int32 // var → indices of constraints containing it
	objIdx int       // index of the objective cut constraint, or -1
	rank   []int32   // var → branch priority (lower first)
}

func (s *solver) build(order []Var) {
	s.cons = append([]constraint(nil), s.m.cons...)
	s.objIdx = -1
	if len(s.m.obj) > 0 {
		// The objective is represented as a cut constraint whose upper
		// bound is the shared incumbent bound: once an incumbent with
		// value z is known, propagation prunes anything worse than z.
		// Equal-objective solutions stay reachable so the lexicographic
		// tie-break is applied to every optimum, keeping results
		// scheduling-independent.
		s.objIdx = len(s.cons)
		s.cons = append(s.cons, constraint{
			terms: s.m.obj, lo: NegInf, hi: PosInf, label: "objective-cut",
		})
	}
	// The occurrence index is carved from one flat backing array (two
	// counting passes) rather than grown per variable, so building it
	// costs three allocations instead of one per variable.
	nvars := len(s.m.lo)
	counts := make([]int32, nvars)
	total := 0
	for _, c := range s.cons {
		for _, t := range c.terms {
			counts[t.Var]++
			total++
		}
	}
	backing := make([]int32, 0, total)
	s.occ = make([][]int32, nvars)
	off := 0
	for v := range s.occ {
		n := off + int(counts[v])
		s.occ[v] = backing[off:off:n]
		off = n
	}
	for ci, c := range s.cons {
		for _, t := range c.terms {
			s.occ[t.Var] = append(s.occ[t.Var], int32(ci))
		}
	}
	s.rank = make([]int32, len(s.m.lo))
	for i := range s.rank {
		s.rank[i] = int32(len(order)) // unlisted vars after listed ones
	}
	for i, v := range order {
		s.rank[v] = int32(i)
	}
}

// floorDiv returns ⌊a/b⌋ for any non-zero b.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for any non-zero b.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// propScratch is one worker's reusable propagation state: an epoch-stamped
// in-queue mark per constraint plus the FIFO work queue itself. Bumping the
// epoch invalidates every stale mark at once, so re-arming the scratch for
// the next node is O(1) instead of O(constraints) — propagate runs once per
// search node, and the per-node clear used to dominate its profile.
// A zero propScratch is ready to use. Not safe for concurrent use.
type propScratch struct {
	mark  []uint64
	epoch uint64
	queue []int32
}

// propagate tightens lo/hi to a fixpoint of interval consistency over all
// constraints. objHi is the current upper bound of the objective cut (the
// shared incumbent bound; PosInf when no incumbent or no objective exists).
// It reports false on a domain wipe-out or violated constraint.
//
// The fixpoint of interval propagation is confluent — the same final bounds
// are reached whatever order constraints are processed in — but the queue
// here preserves the original FIFO order anyway, so even intermediate
// wipe-out points are identical to the pre-scratch implementation.
func (s *solver) propagate(lo, hi []int64, seed []int32, objHi int64, sc *propScratch) bool {
	if len(sc.mark) < len(s.cons) {
		sc.mark = make([]uint64, len(s.cons))
	}
	sc.epoch++
	epoch, mark := sc.epoch, sc.mark
	queue := sc.queue[:0]
	defer func() { sc.queue = queue[:0] }()
	push := func(ci int32) {
		if mark[ci] != epoch {
			mark[ci] = epoch
			queue = append(queue, ci)
		}
	}
	if seed == nil {
		for ci := range s.cons {
			push(int32(ci))
		}
	} else {
		for _, ci := range seed {
			push(ci)
		}
	}

	for head := 0; head < len(queue); head++ {
		ci := queue[head]
		mark[ci] = 0
		c := &s.cons[ci]
		chi := c.hi
		if int(ci) == s.objIdx {
			chi = objHi
		}

		var minAct, maxAct int64
		for _, t := range c.terms {
			if t.Coef > 0 {
				minAct += t.Coef * lo[t.Var]
				maxAct += t.Coef * hi[t.Var]
			} else {
				minAct += t.Coef * hi[t.Var]
				maxAct += t.Coef * lo[t.Var]
			}
		}
		if minAct > chi || maxAct < c.lo {
			return false
		}
		for _, t := range c.terms {
			v := t.Var
			var tMin, tMax int64
			if t.Coef > 0 {
				tMin, tMax = t.Coef*lo[v], t.Coef*hi[v]
			} else {
				tMin, tMax = t.Coef*hi[v], t.Coef*lo[v]
			}
			restMin := minAct - tMin
			restMax := maxAct - tMax
			// t.Coef*x ≤ chi - restMin and t.Coef*x ≥ c.lo - restMax.
			var newLo, newHi int64
			if t.Coef > 0 {
				newHi = floorDiv(clampInf(chi)-restMin, t.Coef)
				newLo = ceilDiv(clampInf(c.lo)-restMax, t.Coef)
			} else {
				newLo, newHi = boundsNegCoef(t.Coef, clampInf(chi)-restMin, clampInf(c.lo)-restMax)
			}
			changed := false
			if newHi < hi[v] {
				hi[v] = newHi
				changed = true
			}
			if newLo > lo[v] {
				lo[v] = newLo
				changed = true
			}
			if changed {
				if lo[v] > hi[v] {
					return false
				}
				for _, oc := range s.occ[v] {
					push(oc)
				}
				// Recompute activities incrementally for the
				// remaining terms of this constraint.
				var nMin, nMax int64
				if t.Coef > 0 {
					nMin, nMax = t.Coef*lo[v], t.Coef*hi[v]
				} else {
					nMin, nMax = t.Coef*hi[v], t.Coef*lo[v]
				}
				minAct = restMin + nMin
				maxAct = restMax + nMax
			}
		}
	}
	return true
}

// clampInf keeps the ±Inf sentinels from overflowing division arithmetic.
func clampInf(x int64) int64 {
	if x >= PosInf {
		return PosInf
	}
	if x <= NegInf {
		return NegInf
	}
	return x
}

// boundsNegCoef computes the [lo,hi] bounds of x from c·x ≤ ubRhs and
// c·x ≥ lbRhs when c < 0 (dividing by a negative flips the inequalities).
func boundsNegCoef(c, ubRhs, lbRhs int64) (lo, hi int64) {
	return ceilDiv(ubRhs, c), floorDiv(lbRhs, c)
}

// pickVar selects the next branching variable: lowest rank first, then
// smallest current domain. Returns -1 when every variable is fixed.
func (s *solver) pickVar(lo, hi []int64) int {
	best := -1
	var bestRank int32
	var bestSpan int64
	for v := range lo {
		span := hi[v] - lo[v]
		if span == 0 {
			continue
		}
		if best == -1 || s.rank[v] < bestRank || (s.rank[v] == bestRank && span < bestSpan) {
			best, bestRank, bestSpan = v, s.rank[v], span
		}
	}
	return best
}

func (s *solver) objective(vals []int64) int64 {
	var z int64
	for _, t := range s.m.obj {
		z += t.Coef * vals[t.Var]
	}
	return z
}

// lexLess reports whether a precedes b lexicographically. It is the
// canonical tie-break between equal-objective solutions: the winner is the
// same whichever worker finds which solution first, which is what makes
// parallel solves reproducible.
func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// CheckFeasible verifies that the given assignment satisfies every
// constraint of the model, returning a descriptive error for the first
// violation. It is used by tests and by locate's sanity checks.
func CheckFeasible(m *Model, vals []int64) error {
	if len(vals) != len(m.lo) {
		return cmerr.New(cmerr.Permanent, "ilp", "assignment has %d values, model has %d variables", len(vals), len(m.lo))
	}
	for v := range m.lo {
		if vals[v] < m.lo[v] || vals[v] > m.hi[v] {
			return cmerr.New(cmerr.Permanent, "ilp", "%s = %d outside [%d,%d]", m.names[v], vals[v], m.lo[v], m.hi[v])
		}
	}
	for _, c := range m.cons {
		var sum int64
		for _, t := range c.terms {
			sum += t.Coef * vals[t.Var]
		}
		if sum < c.lo || sum > c.hi {
			return cmerr.New(cmerr.Permanent, "ilp", "constraint %q violated: %d ∉ [%d,%d]", c.label, sum, c.lo, c.hi)
		}
	}
	return nil
}
