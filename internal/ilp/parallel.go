package ilp

// Parallel branch and bound. The search tree is split near the root into
// subtree tasks that a fixed pool of workers pulls from a shared deque;
// below the split depth each worker runs plain depth-first search on a
// local stack, so task bookkeeping costs nothing on the vast majority of
// nodes. Workers prune against a shared atomic incumbent bound, which is
// how one worker's discovery shrinks everyone else's tree.
//
// Determinism: the incumbent bound admits *equal*-objective solutions
// (obj ≤ bound, not obj < bound), so every optimal leaf survives pruning
// no matter when other workers publish incumbents. Among equal-objective
// solutions the canonical lexicographically-smallest value vector wins
// (see offer), making the final Solution.Values a pure function of the
// model — identical at any worker count and across runs. Only the node
// count, and the incumbent of a search truncated by MaxNodes, depend on
// scheduling.

import (
	"sync"
	"sync/atomic"

	"coremap/internal/pool"
)

// frame is one branch-and-bound subproblem: variable bounds plus the
// constraints to re-propagate (those touching the last-branched variable).
type frame struct {
	lo, hi []int64
	seed   []int32
	depth  int32
}

// engine owns the mutable state of one Solve call.
type engine struct {
	s          *solver
	workers    int
	maxNodes   int64
	splitDepth int32

	// bound is the shared objective cut: subtrees whose objective cannot
	// reach ≤ bound are pruned. PosInf until the first incumbent.
	bound atomic.Int64
	// nodes counts processed frames across all workers.
	nodes atomic.Int64
	// pruned counts frames discarded by propagation (domain wipe-out or
	// bound cut) before any branching.
	pruned atomic.Int64
	// aborted is set when the search stops early for any reason: node
	// budget expiry or context cancellation.
	aborted atomic.Bool
	// interrupted records that the early stop was a context cancellation
	// (set by the ctx watcher), distinguishing it from budget expiry.
	interrupted atomic.Bool

	mu      sync.Mutex
	wake    *sync.Cond
	deque   []frame // guarded by mu
	pending int     // frames on the deque plus frames in flight; guarded by mu
	closed  bool    // guarded by mu

	// best/bestObj are the incumbent solution and its objective;
	// post-join readers still take the (uncontended) lock so the
	// invariant stays machine-checkable (lockcheck).
	best    []int64 // guarded by mu
	bestObj int64   // guarded by mu
	// incumbents counts accepted incumbent updates; guarded by mu.
	incumbents int64
	// seeded records that the incumbent was warm-started before the
	// search; symBreaks is the number of symmetry-ordering rows added.
	// Both are set before run and read after the pool joins.
	seeded    bool
	symBreaks int64

	// workerNodes[w] counts the frames worker w processed; each slot is
	// written only by its owning worker, and read after the pool joins.
	// It feeds the ilp/worker_nodes utilization histogram.
	workerNodes []int64
}

func newEngine(s *solver, workers, maxNodes int) *engine {
	e := &engine{s: s, workers: workers, maxNodes: int64(maxNodes),
		workerNodes: make([]int64, workers)}
	e.bound.Store(PosInf)
	e.wake = sync.NewCond(&e.mu)
	// Split only near the root: with the core-map models' branching
	// factor (a tile coordinate domain, ~5-6 values) two levels yield
	// tens of tasks — enough to keep a pool busy and to rebalance when
	// subtree sizes are skewed — while deeper frames stay on the owning
	// worker's local stack. workers == 1 never splits, and neither do
	// tiny node budgets: expanding a breadth-first frontier could burn
	// the whole budget before any worker completes a descent, whereas a
	// single depth-first worker reaches an incumbent in ~depth nodes.
	if workers > 1 && maxNodes >= 4096 {
		e.splitDepth = 2
		if workers >= 8 {
			e.splitDepth = 3
		}
	}
	return e
}

// run searches the tree rooted at root and blocks until the search is
// exhausted or the node budget expires. The root is published through
// share so the deque bookkeeping is lock-consistent from the first
// frame (share on an empty engine is exactly pending=1 + push).
func (e *engine) run(root frame) {
	e.share([]frame{root})
	if e.workers == 1 {
		e.worker(0)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	wg.Wait()
}

func (e *engine) worker(w int) {
	// Per-worker reusable state: the propagation scratch and a free list
	// for frame bound vectors. Both stay private to this goroutine, so no
	// synchronization is needed; a frame taken from the shared deque was
	// built by another worker's free list, but ownership transfers with
	// the frame, so recycling it here is safe.
	var sc propScratch
	var fl pool.FreeList[int64]
	for {
		f, ok := e.pop()
		if !ok {
			return
		}
		e.workerNodes[w] += e.runSubtree(f, &sc, &fl)
		e.finish()
	}
}

// pop blocks until a task is available or the search is over.
func (e *engine) pop() (frame, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.closed || e.aborted.Load() {
			return frame{}, false
		}
		if n := len(e.deque); n > 0 {
			f := e.deque[n-1]
			e.deque[n-1] = frame{}
			e.deque = e.deque[:n-1]
			return f, true
		}
		e.wake.Wait()
	}
}

// share publishes newly split subtrees on the deque for any worker to take.
func (e *engine) share(fs []frame) {
	e.mu.Lock()
	e.pending += len(fs)
	e.deque = append(e.deque, fs...)
	e.wake.Broadcast()
	e.mu.Unlock()
}

// finish retires one completed task; the last one shuts the pool down.
func (e *engine) finish() {
	e.mu.Lock()
	e.pending--
	if e.pending == 0 {
		e.closed = true
		e.wake.Broadcast()
	}
	e.mu.Unlock()
}

// abort stops the search because the node budget expired.
func (e *engine) abort() {
	e.mu.Lock()
	e.aborted.Store(true)
	e.wake.Broadcast()
	e.mu.Unlock()
}

// interrupt stops the search because the caller's context was cancelled.
// Workers observe the aborted flag at their next node (or wake from a
// blocked deque pop), so the search returns within one node's work.
func (e *engine) interrupt() {
	e.interrupted.Store(true)
	e.abort()
}

// runSubtree explores one task depth-first, returning the number of
// frames it processed. Frames shallower than splitDepth are pushed back
// onto the shared deque instead of the local stack, which is where
// parallelism comes from.
//
// Frame bound vectors cycle through fl: children copy the parent's
// (already propagated) bounds into recycled slices, and the parent's
// vectors are handed back once its children are built — after offer has
// copied the leaf, and never for frames published to the shared deque
// (share transfers ownership to whichever worker pops them). Abort paths
// simply drop frames on the floor; the GC reclaims them.
func (e *engine) runSubtree(task frame, sc *propScratch, fl *pool.FreeList[int64]) (visited int64) {
	s := e.s
	stack := []frame{task}
	for len(stack) > 0 {
		if e.aborted.Load() {
			return visited
		}
		if e.nodes.Add(1) > e.maxNodes {
			e.abort()
			return visited
		}
		visited++
		f := stack[len(stack)-1]
		stack[len(stack)-1] = frame{}
		stack = stack[:len(stack)-1]

		// A stale bound only weakens pruning (it is monotone
		// decreasing), never soundness, so one load per node suffices.
		if !s.propagate(f.lo, f.hi, f.seed, e.bound.Load(), sc) {
			e.pruned.Add(1)
			fl.Put(f.lo)
			fl.Put(f.hi)
			continue
		}
		v := s.pickVar(f.lo, f.hi)
		if v == -1 {
			e.offer(f.lo)
			fl.Put(f.lo)
			fl.Put(f.hi)
			continue
		}
		branch := func(x int64) frame {
			nl := fl.Get(len(f.lo)) //lint:allow poolsafe ownership moves into the child frame; Put happens when the frame is popped
			nh := fl.Get(len(f.hi)) //lint:allow poolsafe ownership moves into the child frame; Put happens when the frame is popped
			copy(nl, f.lo)
			copy(nh, f.hi)
			nl[v], nh[v] = x, x
			return frame{lo: nl, hi: nh, seed: s.occ[v], depth: f.depth + 1}
		}
		if f.depth < e.splitDepth {
			kids := make([]frame, 0, f.hi[v]-f.lo[v]+1)
			for x := f.hi[v]; x >= f.lo[v]; x-- {
				kids = append(kids, branch(x))
			}
			e.share(kids) // deque is LIFO, so low values are taken first
			fl.Put(f.lo)
			fl.Put(f.hi)
			continue
		}
		// Pushing in reverse makes the local stack explore ascending
		// values first, which suits the packing objective (small
		// indices first).
		for x := f.hi[v]; x >= f.lo[v]; x-- {
			stack = append(stack, branch(x))
		}
		fl.Put(f.lo)
		fl.Put(f.hi)
	}
	return visited
}

// seed installs a pre-verified feasible assignment as the starting
// incumbent. Called before any worker starts, so the lock is
// uncontended — it is taken anyway to keep the best/bestObj invariant
// machine-checkable. The seed is either in the cold search's optimal
// set (in which case the lexicographic offer rule still selects the
// canonical optimum) or worse (in which case it is displaced by the
// first better incumbent), so the returned Solution.Values of a
// completed search is unchanged — the seed only prunes worse subtrees
// from node one.
func (e *engine) seed(vals []int64, z int64) {
	e.mu.Lock()
	e.best, e.bestObj = vals, z
	e.seeded = true
	e.mu.Unlock()
	if e.s.objIdx >= 0 {
		e.bound.Store(z)
	}
}

// offer proposes a fully assigned feasible leaf as the incumbent. The
// update rule is a total order — smaller objective, then lexicographically
// smaller values — so the surviving incumbent is the minimum over all
// offered leaves regardless of arrival order.
func (e *engine) offer(vals []int64) {
	z := e.s.objective(vals)
	v := append([]int64(nil), vals...)
	e.mu.Lock()
	if e.best == nil || z < e.bestObj || (z == e.bestObj && lexLess(v, e.best)) {
		e.best, e.bestObj = v, z
		e.incumbents++
		if e.s.objIdx >= 0 {
			e.bound.Store(z)
		}
	}
	e.mu.Unlock()
}
