package ilp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVarPanicsOnEmptyDomain(t *testing.T) {
	m := NewModel()
	defer func() {
		if recover() == nil {
			t.Error("empty-domain variable did not panic")
		}
	}()
	m.NewVar("x", 3, 2)
}

func TestDedupeTerms(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	y := m.NewVar("y", 0, 10)
	m.AddEq("c", []Term{T(1, x), T(2, x), T(1, y), T(-1, y)}, 9)
	c := m.cons[0]
	if len(c.terms) != 1 || c.terms[0].Var != x || c.terms[0].Coef != 3 {
		t.Errorf("deduped terms = %+v, want [3x]", c.terms)
	}
}

func TestSolveSimpleEquality(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	y := m.NewVar("y", 0, 10)
	m.AddEq("sum", []Term{T(1, x), T(1, y)}, 7)
	m.AddEq("diff", []Term{T(1, x), T(-1, y)}, 3)
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value(x) != 5 || sol.Value(y) != 2 {
		t.Errorf("solution = x=%d y=%d, want 5,2", sol.Value(x), sol.Value(y))
	}
	if !sol.Optimal {
		t.Error("unique solution not reported optimal")
	}
}

func TestSolveMinimizes(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 9)
	y := m.NewVar("y", 0, 9)
	m.AddGE("floor", []Term{T(1, x), T(1, y)}, 6)
	m.SetObjective([]Term{T(3, x), T(1, y)})
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Minimum of 3x+y with x+y ≥ 6 is x=0, y=6.
	if sol.Value(x) != 0 || sol.Value(y) != 6 || sol.Objective != 6 {
		t.Errorf("solution = x=%d y=%d obj=%d, want 0,6,6", sol.Value(x), sol.Value(y), sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 3)
	m.AddGE("hi", []Term{T(1, x)}, 5)
	if _, err := Solve(context.Background(), m, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveInfeasibleByConflict(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	y := m.NewVar("y", 0, 10)
	m.AddEq("a", []Term{T(1, x), T(1, y)}, 4)
	m.AddGE("b", []Term{T(1, x)}, 3)
	m.AddGE("c", []Term{T(1, y)}, 3)
	if _, err := Solve(context.Background(), m, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestBigMDisjunction(t *testing.T) {
	// The paper's direction trick: exactly one of two guarded
	// inequalities must hold. x < y (east) or x > y (west), with x=4
	// forced and y=1: only "west" is satisfiable, so NW must be 0.
	const b = 64
	m := NewModel()
	x := m.NewVar("x", 4, 4)
	y := m.NewVar("y", 1, 1)
	ne := m.NewBinary("NE")
	nw := m.NewBinary("NW")
	// east: x + 1 ≤ y + b·NE  ⇔  x - y - b·NE ≤ -1
	m.AddLE("east", []Term{T(1, x), T(-1, y), T(-b, ne)}, -1)
	// west: x ≥ y + 1 - b·NW  ⇔  y - x - b·NW ≤ -1
	m.AddLE("west", []Term{T(1, y), T(-1, x), T(-b, nw)}, -1)
	m.AddEq("one", []Term{T(1, ne), T(1, nw)}, 1)
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value(ne) != 1 || sol.Value(nw) != 0 {
		t.Errorf("NE=%d NW=%d, want 1,0 (westbound constraint active)", sol.Value(ne), sol.Value(nw))
	}
}

func TestOneHotChanneling(t *testing.T) {
	// R = Σ r·OHR_r with Σ OHR_r = 1 must force the one-hot bits.
	m := NewModel()
	r := m.NewVar("R", 3, 3)
	oh := make([]Var, 5)
	terms := make([]Term, 5)
	sum := make([]Term, 5)
	for i := range oh {
		oh[i] = m.NewBinary("OHR")
		terms[i] = T(int64(i), oh[i])
		sum[i] = T(1, oh[i])
	}
	m.AddEq("onehot", sum, 1)
	ch := append([]Term{T(-1, r)}, terms...)
	m.AddEq("channel", ch, 0)
	sol, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range oh {
		want := int64(0)
		if i == 3 {
			want = 1
		}
		if sol.Value(oh[i]) != want {
			t.Errorf("OHR[%d] = %d, want %d", i, sol.Value(oh[i]), want)
		}
	}
}

func TestIndicatorConstraint(t *testing.T) {
	// RI ≤ Σ x_i ≤ b·RI forces RI to reflect occupancy.
	const b = 64
	for _, occupied := range []bool{false, true} {
		m := NewModel()
		x := m.NewVar("x", 0, 1)
		if occupied {
			m.AddEq("fix", []Term{T(1, x)}, 1)
		} else {
			m.AddEq("fix", []Term{T(1, x)}, 0)
		}
		ri := m.NewBinary("RI")
		m.AddLE("lower", []Term{T(1, ri), T(-1, x)}, 0)
		m.AddLE("upper", []Term{T(1, x), T(-b, ri)}, 0)
		m.SetObjective([]Term{T(1, ri)})
		sol, err := Solve(context.Background(), m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if occupied {
			want = 1
		}
		if sol.Value(ri) != want {
			t.Errorf("occupied=%v: RI = %d, want %d", occupied, sol.Value(ri), want)
		}
	}
}

func TestNodeLimit(t *testing.T) {
	// A model whose only solutions are far down the search tree, with a
	// 1-node budget, must report the limit.
	m := NewModel()
	vars := make([]Term, 12)
	for i := range vars {
		vars[i] = T(1, m.NewVar("x", 0, 1))
	}
	m.AddEq("half", vars, 6)
	// Parity-style extra constraint to prevent trivial propagation.
	m.AddGE("ge", vars[:6], 1)
	if _, err := Solve(context.Background(), m, Options{MaxNodes: 1}); !errors.Is(err, ErrNodeLimit) {
		t.Errorf("err = %v, want ErrNodeLimit", err)
	}
}

func TestNodeLimitWithIncumbentReturnsBest(t *testing.T) {
	// A feasible model with a large search space: a small budget that
	// still admits one full assignment must return it with Optimal=false
	// rather than erroring.
	m := NewModel()
	vars := make([]Term, 10)
	for i := range vars {
		vars[i] = T(1, m.NewVar("x", 0, 3))
	}
	m.AddGE("sum", vars, 1)
	m.SetObjective(vars)
	sol, err := Solve(context.Background(), m, Options{MaxNodes: 40})
	if err != nil {
		t.Fatalf("budgeted solve failed: %v", err)
	}
	if sol.Optimal {
		// Fine if it proved optimality within budget; but the solution
		// must then actually be the optimum (objective 1).
		if sol.Objective != 1 {
			t.Errorf("claimed optimal with objective %d, want 1", sol.Objective)
		}
		return
	}
	if err := CheckFeasible(m, sol.Values); err != nil {
		t.Errorf("incumbent infeasible: %v", err)
	}
}

func TestBranchOrderRespected(t *testing.T) {
	m := NewModel()
	a := m.NewVar("a", 0, 5)
	c := m.NewVar("c", 0, 5)
	m.AddGE("s", []Term{T(1, a), T(1, c)}, 1)
	sol, err := Solve(context.Background(), m, Options{BranchOrder: []Var{c}})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(m, sol.Values); err != nil {
		t.Error(err)
	}
}

func TestCheckFeasible(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 5)
	m.AddLE("cap", []Term{T(1, x)}, 3)
	if err := CheckFeasible(m, []int64{2}); err != nil {
		t.Errorf("feasible assignment rejected: %v", err)
	}
	if err := CheckFeasible(m, []int64{4}); err == nil {
		t.Error("violating assignment accepted")
	}
	if err := CheckFeasible(m, []int64{9}); err == nil {
		t.Error("out-of-bounds assignment accepted")
	}
	if err := CheckFeasible(m, []int64{1, 2}); err == nil {
		t.Error("wrong-arity assignment accepted")
	}
}

// bruteForce finds the optimum of a small model by exhaustive enumeration.
func bruteForce(m *Model) (best []int64, bestObj int64, found bool) {
	n := len(m.lo)
	vals := make([]int64, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if CheckFeasible(m, vals) != nil {
				return
			}
			var z int64
			for _, t := range m.obj {
				z += t.Coef * vals[t.Var]
			}
			if !found || z < bestObj {
				best = append([]int64(nil), vals...)
				bestObj = z
				found = true
			}
			return
		}
		for v := m.lo[i]; v <= m.hi[i]; v++ {
			vals[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestObj, found
}

// TestSolverMatchesBruteForce cross-validates the solver against
// exhaustive enumeration on random small models.
func TestSolverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel()
		nVars := 2 + r.Intn(4)
		for i := 0; i < nVars; i++ {
			lo := int64(r.Intn(3)) - 1
			m.NewVar("x", lo, lo+int64(r.Intn(4)))
		}
		nCons := 1 + r.Intn(4)
		for i := 0; i < nCons; i++ {
			var terms []Term
			for v := 0; v < nVars; v++ {
				if r.Intn(2) == 0 {
					terms = append(terms, T(int64(r.Intn(7))-3, Var(v)))
				}
			}
			if len(terms) == 0 {
				continue
			}
			rhs := int64(r.Intn(11)) - 5
			switch r.Intn(3) {
			case 0:
				m.AddLE("c", terms, rhs)
			case 1:
				m.AddGE("c", terms, rhs)
			default:
				m.AddRange("c", terms, rhs, rhs+int64(r.Intn(3)))
			}
		}
		var obj []Term
		for v := 0; v < nVars; v++ {
			obj = append(obj, T(int64(r.Intn(9))-4, Var(v)))
		}
		m.SetObjective(obj)

		want, wantObj, feasible := bruteForce(m)
		sol, err := Solve(context.Background(), m, Options{})
		if !feasible {
			return errors.Is(err, ErrInfeasible)
		}
		if err != nil {
			t.Logf("seed %d: solver errored on feasible model: %v (brute %v)", seed, err, want)
			return false
		}
		if CheckFeasible(m, sol.Values) != nil {
			t.Logf("seed %d: solver returned infeasible assignment", seed)
			return false
		}
		if sol.Objective != wantObj {
			t.Logf("seed %d: objective %d, brute force %d", seed, sol.Objective, wantObj)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestPropagationSoundness: propagation must never remove values that
// participate in some feasible completion.
func TestPropagationSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel()
		nVars := 2 + r.Intn(3)
		for i := 0; i < nVars; i++ {
			m.NewVar("x", 0, int64(1+r.Intn(3)))
		}
		for i := 0; i < 1+r.Intn(3); i++ {
			var terms []Term
			for v := 0; v < nVars; v++ {
				terms = append(terms, T(int64(r.Intn(5))-2, Var(v)))
			}
			m.AddLE("c", terms, int64(r.Intn(7))-1)
		}
		vals, _, feasible := bruteForce(m)
		s := &solver{m: m}
		s.build(nil)
		lo := append([]int64(nil), m.lo...)
		hi := append([]int64(nil), m.hi...)
		ok := s.propagate(lo, hi, nil, PosInf, &propScratch{})
		if !feasible {
			return true // wipe-out allowed (and correct) here
		}
		if !ok {
			return false // pruned a feasible model
		}
		// The brute-force solution must survive within the bounds.
		for v, x := range vals {
			if x < lo[v] || x > hi[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}
