package ilp

// Solver-side symmetry breaking. Two variables i < j are interchangeable
// when transposing them maps the model to itself: identical bounds,
// identical objective coefficient, and a constraint multiset invariant
// under the swap. For such a pair the canonical (lexicographically
// smallest) optimum necessarily satisfies x_i ≤ x_j — if it did not,
// swapping the two values would produce an equal-objective solution that
// is lexicographically smaller, contradicting canonicity — so adding the
// ordering row x_i - x_j ≤ 0 cuts the mirrored half of the search space
// without changing Solution.Values (pinned by the determinism corpus and
// TestSymmetryBreak*).
//
// Each ordering row is justified against the model as it was before the
// pass, so rows do not need to be re-validated against each other: the
// canonical optimum satisfies all of them simultaneously.

import (
	"bytes"
	"sort"
)

// breakSymmetries appends x_a ≤ x_b ordering rows for consecutive
// interchangeable variable pairs and returns how many were added. It is
// called on the presolved model copy only, after reduce.
func breakSymmetries(m *Model) int {
	n := len(m.lo)
	if n < 2 {
		return 0
	}
	objCoef := make([]int64, n)
	for _, t := range m.obj {
		objCoef[t.Var] = t.Coef // obj is deduped, one term per var
	}
	// Flattened occurrence index (counts pass + shared backing array, as
	// in solver.build): two allocations regardless of model size.
	counts := make([]int, n)
	total := 0
	for _, c := range m.cons {
		for _, t := range c.terms {
			counts[t.Var]++
			total++
		}
	}
	occ := make([][]int32, n)
	backing := make([]int32, total)
	off := 0
	for v := 0; v < n; v++ {
		occ[v] = backing[off : off : off+counts[v]]
		off += counts[v]
	}
	for ci, c := range m.cons {
		for _, t := range c.terms {
			occ[t.Var] = append(occ[t.Var], int32(ci))
		}
	}

	// Candidate grouping: interchangeable variables necessarily share
	// bounds, objective coefficient and occurrence count. Groups are
	// visited in ascending first-member order so the appended rows — and
	// therefore constraint indexes — are deterministic.
	type groupKey struct {
		lo, hi, obj int64
		cnt         int
	}
	groups := map[groupKey][]int{}
	for v := 0; v < n; v++ {
		k := groupKey{m.lo[v], m.hi[v], objCoef[v], len(occ[v])}
		groups[k] = append(groups[k], v)
	}
	ordered := make([][]int, 0, len(groups))
	for _, vs := range groups {
		if len(vs) >= 2 {
			ordered = append(ordered, vs)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i][0] < ordered[j][0] })

	var sc symScratch
	added := 0
	row := make([]Term, 2)
	for _, vs := range ordered {
		// Consecutive pairs suffice: each row is individually implied by
		// canonicity, so a chain a ≤ b ≤ c needs no (a, c) row.
		for x := 0; x+1 < len(vs); x++ {
			a, b := Var(vs[x]), Var(vs[x+1])
			if !interchangeable(m, occ, &sc, a, b) {
				continue
			}
			row[0], row[1] = T(1, a), T(-1, b)
			m.AddLE("symmetry-break", row, 0)
			added++
		}
	}
	return added
}

// symScratch recycles the buffers of repeated interchangeability tests.
// Row identities live in two reusable byte arenas addressed by offset, so
// a test allocates nothing once the arenas are warm.
type symScratch struct {
	cs             []int32
	sorted         []Term
	buf            []byte
	swapped        []Term
	arenaA, arenaB []byte
	offA, offB     []int
	viewA, viewB   [][]byte
}

// interchangeable reports whether swapping a and b maps the constraint
// multiset to itself: the multiset of (canonical linear form, bounds)
// identities over all rows touching a or b must be invariant under the
// transposition. Rows touching neither variable are untouched by the swap
// and need no inspection.
func interchangeable(m *Model, occ [][]int32, sc *symScratch, a, b Var) bool {
	cs := sc.cs[:0]
	cs = append(cs, occ[a]...)
	cs = append(cs, occ[b]...)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	// Dedupe rows containing both variables.
	uniq := cs[:0]
	for i, ci := range cs {
		if i == 0 || ci != cs[i-1] {
			uniq = append(uniq, ci)
		}
	}
	sc.cs = cs

	// The arenas may reallocate while identities accumulate, so rows are
	// addressed by offset and materialized as views only once complete.
	arenaA, offA := sc.arenaA[:0], append(sc.offA[:0], 0)
	arenaB, offB := sc.arenaB[:0], append(sc.offB[:0], 0)
	for _, ci := range uniq {
		c := &m.cons[ci]
		arenaA = constraintIdentity(sc, arenaA, c.terms, c.lo, c.hi)
		offA = append(offA, len(arenaA))
		if cap(sc.swapped) < len(c.terms) {
			sc.swapped = make([]Term, len(c.terms))
		}
		sw := sc.swapped[:len(c.terms)]
		for i, t := range c.terms {
			v := t.Var
			switch v {
			case a:
				v = b
			case b:
				v = a
			}
			sw[i] = T(t.Coef, v)
		}
		arenaB = constraintIdentity(sc, arenaB, sw, c.lo, c.hi)
		offB = append(offB, len(arenaB))
	}
	sc.arenaA, sc.offA = arenaA, offA
	sc.arenaB, sc.offB = arenaB, offB
	viewA, viewB := sc.viewA[:0], sc.viewB[:0]
	for i := 0; i+1 < len(offA); i++ {
		viewA = append(viewA, arenaA[offA[i]:offA[i+1]])
		viewB = append(viewB, arenaB[offB[i]:offB[i+1]])
	}
	sc.viewA, sc.viewB = viewA, viewB
	sort.Slice(viewA, func(i, j int) bool { return bytes.Compare(viewA[i], viewA[j]) < 0 })
	sort.Slice(viewB, func(i, j int) bool { return bytes.Compare(viewB[i], viewB[j]) < 0 })
	for i := range viewA {
		if !bytes.Equal(viewA[i], viewB[i]) {
			return false
		}
	}
	return true
}

// constraintIdentity appends the semantic identity of a row — canonical
// term signature plus bounds — to dst. Labels are presentation only and
// excluded.
func constraintIdentity(sc *symScratch, dst []byte, terms []Term, lo, hi int64) []byte {
	sc.sorted, sc.buf = signature(sc.sorted[:0], sc.buf[:0], terms)
	dst = append(dst, sc.buf...)
	dst = appendVarint(dst, lo)
	dst = appendVarint(dst, hi)
	return dst
}
