package ilp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"coremap/internal/cmerr"
)

// wideModel is a feasible model with a weak bound and a combinatorially
// large search space: 2n binaries of which at most n may be set,
// maximizing the count. The first depth-first dive reaches a feasible
// leaf within microseconds (the incumbent), but proving optimality means
// enumerating on the order of C(2n, n) leaves — far more than any test
// deadline allows — so a cancelled solve deterministically holds an
// incumbent without having finished. Every variable is interchangeable,
// so the cancellation tests must solve with NoSymmetryBreak: the ordering
// rows would (correctly) collapse the search to polynomial size.
func wideModel(n int) *Model {
	m := NewModel()
	terms := make([]Term, 2*n)
	obj := make([]Term, 2*n)
	for i := range terms {
		v := m.NewBinary(fmt.Sprintf("x%d", i))
		terms[i] = T(1, v)
		obj[i] = T(-1, v)
	}
	m.AddLE("cap", terms, int64(n))
	m.SetObjective(obj)
	return m
}

func TestSolvePreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := Solve(ctx, wideModel(13), Options{MaxNodes: 1 << 30, NoSymmetryBreak: true})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !cmerr.IsInterrupted(err) {
		t.Errorf("ErrInterrupted is not classified cmerr.Interrupted")
	}
	if sol != nil && sol.Optimal {
		t.Errorf("pre-cancelled solve claims optimality")
	}
}

func TestSolveCancelReturnsIncumbent(t *testing.T) {
	model := wideModel(13)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	sol, err := Solve(ctx, model, Options{MaxNodes: 1 << 30, Workers: 2, NoSymmetryBreak: true})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("solve of the wide model finished within 30ms (%d nodes); enlarge the model", sol.Nodes)
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// The deque pop and per-node budget check both observe the interrupt
	// flag, so return must be prompt after expiry: well under the 100ms
	// pipeline-wide cancellation bound.
	if elapsed > 30*time.Millisecond+100*time.Millisecond {
		t.Errorf("cancelled solve took %v to return, want <100ms past the deadline", elapsed)
	}
	if sol == nil {
		t.Fatal("cancelled solve returned no incumbent; the first dive should have produced one")
	}
	if sol.Optimal {
		t.Errorf("interrupted solve claims optimality")
	}
	if err := CheckFeasible(wideModel(13), sol.Values); err != nil {
		t.Errorf("interrupted incumbent infeasible: %v", err)
	}
}

// TestSolveCancelNoGoroutineLeak pins the watcher-reaping contract: a
// burst of cancelled solves must leave the goroutine count where it
// started. The CI race job runs this under -race, which also shakes out
// unsynchronized interrupt publishing.
func TestSolveCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err := Solve(ctx, wideModel(13), Options{MaxNodes: 1 << 30, Workers: 4, NoSymmetryBreak: true})
		cancel()
		if err != nil && !errors.Is(err, ErrInterrupted) {
			t.Fatalf("solve %d: unexpected error %v", i, err)
		}
	}
	// Workers and the watcher are joined before Solve returns, but give
	// the runtime a moment to retire exiting goroutines before declaring
	// a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled solves", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
