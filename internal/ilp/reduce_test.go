package ilp

import (
	"context"
	"testing"
)

// TestSolveDeterministicAcrossReduce pins the presolve-extension promise:
// reduce never changes what Solve returns, only how fast it gets there.
// Every corpus model must produce byte-identical Solution.Values with and
// without the reduction passes.
func TestSolveDeterministicAcrossReduce(t *testing.T) {
	for _, cm := range corpus() {
		t.Run(cm.name, func(t *testing.T) {
			ref, refErr := Solve(context.Background(), cm.build(), Options{Workers: 1, NoReduce: true})
			sol, err := Solve(context.Background(), cm.build(), Options{Workers: 1})
			if (err == nil) != (refErr == nil) {
				t.Fatalf("reduce err=%v, noreduce err=%v", err, refErr)
			}
			if err != nil {
				return
			}
			if sol.Objective != ref.Objective {
				t.Fatalf("objective %d with reduce, %d without", sol.Objective, ref.Objective)
			}
			for i := range sol.Values {
				if sol.Values[i] != ref.Values[i] {
					t.Fatalf("values disagree at var %d: %d (reduce) vs %d (noreduce)",
						i, sol.Values[i], ref.Values[i])
				}
			}
		})
	}
}

// TestReduceMergesDuplicateSignatures: constraints over the same linear
// form collapse to one with the intersected bounds.
func TestReduceMergesDuplicateSignatures(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	y := m.NewVar("y", 0, 10)
	m.AddRange("a", []Term{T(1, x), T(1, y)}, 2, 9)
	m.AddRange("b", []Term{T(1, y), T(1, x)}, 4, 15) // same form, term order flipped
	if !reduce(m) {
		t.Fatal("reduce reported infeasible")
	}
	if len(m.cons) != 1 {
		t.Fatalf("kept %d constraints, want 1", len(m.cons))
	}
	if m.cons[0].lo != 4 || m.cons[0].hi != 9 {
		t.Fatalf("merged bounds [%d,%d], want [4,9]", m.cons[0].lo, m.cons[0].hi)
	}
}

// TestReduceDetectsDuplicateConflict: two same-signature constraints with
// disjoint bounds are an infeasibility reduce must catch.
func TestReduceDetectsDuplicateConflict(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	y := m.NewVar("y", 0, 10)
	m.AddRange("a", []Term{T(1, x), T(1, y)}, 0, 3)
	m.AddRange("b", []Term{T(1, x), T(1, y)}, 7, 12)
	if reduce(m) {
		t.Fatal("conflicting duplicate constraints not detected")
	}
}

// TestReduceTightensBoundsAndDropsImplied: a single-variable constraint
// becomes a variable bound and disappears from the constraint set.
func TestReduceTightensBoundsAndDropsImplied(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	y := m.NewVar("y", 0, 10)
	m.AddGE("x-lo", []Term{T(1, x)}, 3)
	m.AddLE("x-hi", []Term{T(1, x)}, 7)
	// Interval propagation through a two-variable link: y ≥ x ≥ 3.
	m.AddGE("link", []Term{T(1, y), T(-1, x)}, 0)
	if !reduce(m) {
		t.Fatal("reduce reported infeasible")
	}
	if m.lo[x] != 3 || m.hi[x] != 7 {
		t.Fatalf("x bounds [%d,%d], want [3,7]", m.lo[x], m.hi[x])
	}
	if m.lo[y] != 3 {
		t.Fatalf("y lower bound %d, want 3 (propagated through link)", m.lo[y])
	}
	for _, c := range m.cons {
		if c.label == "x-lo" || c.label == "x-hi" {
			t.Fatalf("single-variable constraint %q survived bound baking", c.label)
		}
	}
}

// TestReduceInfeasibleByPropagation: a constraint chain with no integer
// solution is caught at the root, before any branching.
func TestReduceInfeasibleByPropagation(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 4)
	y := m.NewVar("y", 0, 4)
	m.AddGE("a", []Term{T(1, y), T(-1, x)}, 3)
	m.AddGE("b", []Term{T(1, x), T(-1, y)}, 3)
	if reduce(m) {
		t.Fatal("mutually contradictory orderings not detected")
	}
}

// TestSolveNoPresolveStillWorks: NoPresolve (which implies NoReduce) must
// agree with the default path on the corpus too.
func TestSolveNoPresolveStillWorks(t *testing.T) {
	for _, cm := range corpus() {
		ref, refErr := Solve(context.Background(), cm.build(), Options{Workers: 1, NoPresolve: true})
		sol, err := Solve(context.Background(), cm.build(), Options{Workers: 1})
		if (err == nil) != (refErr == nil) {
			t.Fatalf("%s: presolve err=%v, nopresolve err=%v", cm.name, err, refErr)
		}
		if err != nil {
			continue
		}
		if sol.Objective != ref.Objective {
			t.Fatalf("%s: objective %d with presolve, %d without", cm.name, sol.Objective, ref.Objective)
		}
		for i := range sol.Values {
			if sol.Values[i] != ref.Values[i] {
				t.Fatalf("%s: values disagree at var %d", cm.name, i)
			}
		}
	}
}
