// Package ilp provides exact integer linear programming over bounded
// integer variables, built from the standard library only.
//
// It exists to solve the paper's core-map reconstruction problem — an ILP
// with integer tile-position variables, big-M-guarded direction
// disjunctions, one-hot position encodings and occupancy indicators — but
// the interface is generic: build a Model of bounded integer variables,
// linear constraints and a linear objective, and Solve performs
// branch-and-bound with fixpoint bounds propagation, returning a proven
// optimum (or reporting infeasibility / a search-budget hit).
package ilp

import (
	"fmt"
	"math"

	"coremap/internal/pool"
)

// Var identifies a model variable.
type Var int

// Term is one linear term, Coef·Var.
type Term struct {
	Coef int64
	Var  Var
}

// T is shorthand for constructing a Term.
func T(coef int64, v Var) Term { return Term{Coef: coef, Var: v} }

// Unbounded sentinels for one-sided constraints.
const (
	NegInf = math.MinInt64 / 4
	PosInf = math.MaxInt64 / 4
)

// constraint is lo ≤ Σ terms ≤ hi.
type constraint struct {
	terms []Term
	lo    int64
	hi    int64
	label string
}

// Model is a mutable ILP instance.
type Model struct {
	lo, hi []int64
	names  []string
	cons   []constraint
	obj    []Term
	// termSlab backs the constraint term rows: AddRange copies caller
	// terms into slab windows, so call-site term literals stay on the
	// caller's stack and the model costs one allocation per slab chunk
	// instead of one per constraint.
	termSlab pool.Slab[Term]
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars returns the number of variables declared so far.
func (m *Model) NumVars() int { return len(m.lo) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// NewVar declares an integer variable with inclusive bounds [lo, hi].
func (m *Model) NewVar(name string, lo, hi int64) Var {
	if lo > hi {
		panic(fmt.Sprintf("ilp: variable %q has empty domain [%d,%d]", name, lo, hi))
	}
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.names = append(m.names, name)
	return Var(len(m.lo) - 1)
}

// NewBinary declares a 0/1 variable.
func (m *Model) NewBinary(name string) Var { return m.NewVar(name, 0, 1) }

// Name returns the name a variable was declared with.
func (m *Model) Name(v Var) string { return m.names[v] }

func (m *Model) checkTerms(terms []Term) {
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.lo) {
			panic(fmt.Sprintf("ilp: term references unknown variable %d", t.Var))
		}
	}
}

// AddRange adds lo ≤ Σ terms ≤ hi. The label is used in error reporting.
// The terms slice is copied into the model; callers may reuse (or
// stack-allocate) it.
func (m *Model) AddRange(label string, terms []Term, lo, hi int64) {
	m.checkTerms(terms)
	m.cons = append(m.cons, constraint{terms: m.dedupeTerms(terms), lo: lo, hi: hi, label: label})
}

// AddLE adds Σ terms ≤ rhs.
func (m *Model) AddLE(label string, terms []Term, rhs int64) {
	m.AddRange(label, terms, NegInf, rhs)
}

// AddGE adds Σ terms ≥ rhs.
func (m *Model) AddGE(label string, terms []Term, rhs int64) {
	m.AddRange(label, terms, rhs, PosInf)
}

// AddEq adds Σ terms = rhs.
func (m *Model) AddEq(label string, terms []Term, rhs int64) {
	m.AddRange(label, terms, rhs, rhs)
}

// SetObjective sets the linear function to minimize.
func (m *Model) SetObjective(terms []Term) {
	m.checkTerms(terms)
	m.obj = m.dedupeTerms(terms)
}

// smallTerms bounds the row width below which dedupeTerms uses a
// quadratic scan instead of a map; constraint rows in this codebase are
// rarely more than a handful of terms wide.
const smallTerms = 32

// dedupeTerms merges duplicate variables and drops zero coefficients, so
// propagation can assume each variable appears once per constraint. The
// result lives in the model's term slab; the input is never retained.
func (m *Model) dedupeTerms(terms []Term) []Term {
	out := m.termSlab.Alloc(len(terms))
	if len(terms) <= smallTerms {
	merge:
		for _, t := range terms {
			for i := range out {
				if out[i].Var == t.Var {
					out[i].Coef += t.Coef
					continue merge
				}
			}
			out = append(out, t)
		}
	} else {
		seen := make(map[Var]int, len(terms))
		for _, t := range terms {
			if i, ok := seen[t.Var]; ok {
				out[i].Coef += t.Coef
				continue
			}
			seen[t.Var] = len(out)
			out = append(out, t)
		}
	}
	kept := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			kept = append(kept, t)
		}
	}
	return kept
}

// Solution is the result of a successful Solve.
type Solution struct {
	// Values holds one value per declared variable.
	Values []int64
	// Objective is the achieved objective value (0 when no objective was
	// set).
	Objective int64
	// Optimal reports whether the solver proved optimality; false means
	// the node budget expired with this incumbent in hand.
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored, aggregated
	// across all workers. Unlike Values, it may vary between runs and
	// worker counts (pruning depends on when incumbents are published).
	Nodes int
}

// Value returns the solved value of v.
func (s *Solution) Value(v Var) int64 { return s.Values[v] }
