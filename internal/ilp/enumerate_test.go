package ilp

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"coremap/internal/cmerr"
)

// enumModel2x2 builds x,y ∈ [0,1] with x+y ≤ 1: three feasible points.
func enumModel2x2() (*Model, []Var) {
	m := NewModel()
	x := m.NewVar("x", 0, 1)
	y := m.NewVar("y", 0, 1)
	m.AddLE("sum", []Term{T(1, x), T(1, y)}, 1)
	return m, []Var{x, y}
}

func TestEnumerateCollectsAllSolutions(t *testing.T) {
	m, vars := enumModel2x2()
	res, err := Enumerate(context.Background(), m, EnumOptions{Project: vars})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("expected complete enumeration")
	}
	want := [][]int64{{0, 0}, {0, 1}, {1, 0}}
	if !reflect.DeepEqual(res.Solutions, want) {
		t.Fatalf("solutions = %v, want %v", res.Solutions, want)
	}
}

func TestEnumerateDeterministicOrder(t *testing.T) {
	build := func() (*Model, []Var) {
		m := NewModel()
		a := m.NewVar("a", 0, 2)
		b := m.NewVar("b", 0, 2)
		c := m.NewVar("c", 0, 2)
		m.AddGE("spread", []Term{T(1, b), T(-1, a)}, 1)
		m.AddLE("cap", []Term{T(1, a), T(1, b), T(1, c)}, 4)
		return m, []Var{a, b, c}
	}
	m1, v1 := build()
	first, err := Enumerate(context.Background(), m1, EnumOptions{Project: v1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m2, v2 := build()
		again, err := Enumerate(context.Background(), m2, EnumOptions{Project: v2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Solutions, again.Solutions) {
			t.Fatalf("run %d diverged: %v vs %v", i, again.Solutions, first.Solutions)
		}
	}
	if !first.Complete || len(first.Solutions) == 0 {
		t.Fatalf("unexpected result: %+v", first)
	}
}

func TestEnumerateIgnoresObjective(t *testing.T) {
	m, vars := enumModel2x2()
	m.SetObjective([]Term{T(1, vars[0]), T(1, vars[1])})
	res, err := Enumerate(context.Background(), m, EnumOptions{Project: vars})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 3 {
		t.Fatalf("objective leaked into enumeration: got %d solutions, want 3", len(res.Solutions))
	}
}

func TestEnumerateCapOverflow(t *testing.T) {
	m, vars := enumModel2x2()
	res, err := Enumerate(context.Background(), m, EnumOptions{Project: vars, Cap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("cap overflow must report Complete=false")
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("got %d solutions, want exactly Cap=2", len(res.Solutions))
	}
	// A cap equal to the solution count is not an overflow.
	m2, vars2 := enumModel2x2()
	res, err = Enumerate(context.Background(), m2, EnumOptions{Project: vars2, Cap: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Solutions) != 3 {
		t.Fatalf("cap==count should complete with 3 solutions, got %+v", res)
	}
}

func TestEnumerateAcceptFilter(t *testing.T) {
	m, vars := enumModel2x2()
	res, err := Enumerate(context.Background(), m, EnumOptions{
		Project: vars,
		Accept:  func(p []int64) bool { return p[0] != p[1] }, // drop {0,0}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{0, 1}, {1, 0}}
	if !res.Complete || !reflect.DeepEqual(res.Solutions, want) {
		t.Fatalf("solutions = %+v, want %v (complete)", res, want)
	}
}

func TestEnumeratePruneCutsSubtrees(t *testing.T) {
	// Two unconstrained vars over [0,4] with an all-distinct Accept: a
	// prune on the prefix (reject as soon as both are fixed and equal, or
	// the first is 0) must both shrink the node count and never lose a
	// solution the leaf filter would keep.
	build := func() (*Model, []Var) {
		m := NewModel()
		a := m.NewVar("a", 0, 4)
		b := m.NewVar("b", 0, 4)
		return m, []Var{a, b}
	}
	distinct := func(p []int64) bool { return p[0] != p[1] && p[0] != 0 }
	m1, v1 := build()
	plain, err := Enumerate(context.Background(), m1, EnumOptions{Project: v1, Accept: distinct})
	if err != nil {
		t.Fatal(err)
	}
	m2, v2 := build()
	pruned, err := Enumerate(context.Background(), m2, EnumOptions{
		Project: v2,
		Accept:  distinct,
		Prune: func(vals []int64, fixed []bool) bool {
			if fixed[0] && vals[0] == 0 {
				return false
			}
			if fixed[0] && fixed[1] && vals[0] == vals[1] {
				return false
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Complete || !reflect.DeepEqual(plain.Solutions, pruned.Solutions) {
		t.Fatalf("prune changed the answer: %+v vs %+v", pruned, plain)
	}
	if pruned.Nodes >= plain.Nodes {
		t.Fatalf("prune did not cut nodes: %d >= %d", pruned.Nodes, plain.Nodes)
	}
}

func TestEnumerateProjectionDedup(t *testing.T) {
	// x projected, y free: the three feasible points collapse to the two
	// distinct x values, each with at least one completion.
	m, vars := enumModel2x2()
	res, err := Enumerate(context.Background(), m, EnumOptions{Project: vars[:1]})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{0}, {1}}
	if !res.Complete || !reflect.DeepEqual(res.Solutions, want) {
		t.Fatalf("solutions = %+v, want %v", res, want)
	}
}

func TestEnumerateCompletionPrunesInfeasibleProjection(t *testing.T) {
	// b0+b1 = x with binaries b0,b1 completing the projection: x=2 needs
	// both binaries set, x=3 admits no completion once the pairwise
	// exclusion row is added — the projection must be dropped even though
	// x's own bounds allow it.
	m := NewModel()
	x := m.NewVar("x", 0, 3)
	b0 := m.NewBinary("b0")
	b1 := m.NewBinary("b1")
	m.AddEq("link", []Term{T(1, b0), T(1, b1), T(-1, x)}, 0)
	res, err := Enumerate(context.Background(), m, EnumOptions{Project: []Var{x}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{0}, {1}, {2}}
	if !res.Complete || !reflect.DeepEqual(res.Solutions, want) {
		t.Fatalf("solutions = %+v, want %v", res, want)
	}
}

func TestEnumerateInfeasibleModel(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 1)
	m.AddGE("impossible", []Term{T(1, x)}, 5)
	res, err := Enumerate(context.Background(), m, EnumOptions{Project: []Var{x}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Solutions) != 0 {
		t.Fatalf("infeasible model should enumerate zero solutions completely, got %+v", res)
	}
}

func TestEnumerateEmptyProjection(t *testing.T) {
	m, _ := enumModel2x2()
	_, err := Enumerate(context.Background(), m, EnumOptions{})
	if err == nil || cmerr.ClassOf(err) != cmerr.Permanent {
		t.Fatalf("empty projection should be a Permanent error, got %v", err)
	}
}

func TestEnumerateNodeBudget(t *testing.T) {
	m := NewModel()
	var vars []Var
	for i := 0; i < 6; i++ {
		vars = append(vars, m.NewVar("v", 0, 9))
	}
	res, err := Enumerate(context.Background(), m, EnumOptions{Project: vars, MaxNodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("10^6 leaves cannot complete in 50 nodes")
	}
	if res.Nodes > 51 {
		t.Fatalf("node budget overrun: %d", res.Nodes)
	}
}

func TestEnumerateCancellation(t *testing.T) {
	m := NewModel()
	var vars []Var
	for i := 0; i < 8; i++ {
		vars = append(vars, m.NewVar("v", 0, 9))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Enumerate(ctx, m, EnumOptions{Project: vars})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if res == nil || res.Complete {
		t.Fatalf("cancelled enumeration must return an incomplete partial result, got %+v", res)
	}
}

func TestEnumerateMatchesSolveOptimum(t *testing.T) {
	// The canonical optimum found by Solve must appear in the complete
	// enumeration of the same model's feasible set.
	m := NewModel()
	a := m.NewVar("a", 0, 3)
	b := m.NewVar("b", 0, 3)
	m.AddGE("sep", []Term{T(1, b), T(-1, a)}, 2)
	m.SetObjective([]Term{T(1, a), T(1, b)})
	sol, err := Solve(context.Background(), m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Enumerate(context.Background(), m, EnumOptions{Project: []Var{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Solutions {
		if reflect.DeepEqual(s, sol.Values) {
			found = true
		}
	}
	if !found {
		t.Fatalf("Solve optimum %v missing from enumeration %v", sol.Values, res.Solutions)
	}
}
