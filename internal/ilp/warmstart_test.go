package ilp

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"coremap/internal/obs"
)

// ctxWithRegistry returns a context carrying a fresh metrics registry and
// the registry itself, for asserting solver counters.
func ctxWithRegistry() (context.Context, *obs.Registry) {
	tel := obs.New(obs.Config{})
	return obs.With(context.Background(), tel), tel.Registry()
}

// TestWarmStartByteIdentical pins the warm-start soundness contract: on
// every corpus model, seeding the incumbent with the cold optimum must
// return byte-identical Solution.Values at every worker count.
func TestWarmStartByteIdentical(t *testing.T) {
	for _, cm := range corpus() {
		t.Run(cm.name, func(t *testing.T) {
			cold, err := Solve(context.Background(), cm.build(), Options{Workers: 1})
			if err != nil {
				t.Skipf("corpus model unsolved cold: %v", err)
			}
			for _, w := range workerCounts {
				warm, err := Solve(context.Background(), cm.build(),
					Options{Workers: w, WarmStart: cold.Values})
				if err != nil {
					t.Fatalf("workers=%d warm solve failed: %v", w, err)
				}
				if !reflect.DeepEqual(warm.Values, cold.Values) {
					t.Fatalf("workers=%d warm-started values differ from cold:\n%v\n%v",
						w, warm.Values, cold.Values)
				}
			}
		})
	}
}

// TestWarmStartSuboptimalSeed: a feasible but suboptimal seed is
// accepted (counted as an installed incumbent) and still yields the
// canonical optimum.
func TestWarmStartSuboptimalSeed(t *testing.T) {
	cold, err := Solve(context.Background(), packingModel(8, 20), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// x_i = i + 3 satisfies the strictly increasing chain but overshoots
	// the optimum's objective.
	seed := make([]int64, 8)
	for i := range seed {
		seed[i] = int64(i + 3)
	}
	ctx, reg := ctxWithRegistry()
	warm, err := Solve(ctx, packingModel(8, 20), Options{Workers: 1, WarmStart: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Values, cold.Values) {
		t.Fatalf("suboptimal seed changed the solution:\n%v\n%v", warm.Values, cold.Values)
	}
	if got := reg.Counter("ilp/incumbent_seeded").Value(); got != 1 {
		t.Errorf("ilp/incumbent_seeded = %d, want 1", got)
	}
}

// TestWarmStartRejectsBadSeeds: infeasible or wrong-length seeds — and
// any seed under NoWarmStart — must be ignored, not error.
func TestWarmStartRejectsBadSeeds(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"infeasible", Options{WarmStart: make([]int64, 8)}}, // violates the ord chain
		{"wrong-length", Options{WarmStart: []int64{0, 1}}},
		{"no-warm-start", Options{WarmStart: []int64{3, 4, 5, 6, 7, 8, 9, 10}, NoWarmStart: true}},
	}
	cold, err := Solve(context.Background(), packingModel(8, 20), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, reg := ctxWithRegistry()
			opts := tc.opts
			opts.Workers = 1
			sol, err := Solve(ctx, packingModel(8, 20), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sol.Values, cold.Values) {
				t.Fatalf("values differ from cold solve")
			}
			if got := reg.Counter("ilp/incumbent_seeded").Value(); got != 0 {
				t.Errorf("ilp/incumbent_seeded = %d, want 0 (seed must be rejected)", got)
			}
		})
	}
}

// TestSymmetryBreak: on a model of fully interchangeable binaries the
// ordering rows must shrink the search dramatically while returning the
// exact same Solution.Values.
func TestSymmetryBreak(t *testing.T) {
	base, err := Solve(context.Background(), wideModel(8),
		Options{Workers: 1, NoSymmetryBreak: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, reg := ctxWithRegistry()
	sym, err := Solve(ctx, wideModel(8), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sym.Values, base.Values) {
		t.Fatalf("symmetry breaking changed the solution:\n%v\n%v", sym.Values, base.Values)
	}
	if sym.Nodes >= base.Nodes {
		t.Errorf("symmetry breaking did not shrink the search: %d nodes vs %d without",
			sym.Nodes, base.Nodes)
	}
	if got := reg.Counter("ilp/symmetry_breaks").Value(); got == 0 {
		t.Error("ilp/symmetry_breaks = 0, want > 0 on an all-interchangeable model")
	}
}

// TestPooledStateIsolatedAcrossSolves: the worker free lists and
// propagation scratch are per-solve state, so a burst of interleaved
// warm- and cold-started solves of different models must reproduce each
// model's canonical values exactly — any stale pooled bound vector
// crossing a solve would break the equality. The CI race job runs this
// under -race, which additionally shakes out sharing of pooled buffers
// between workers.
func TestPooledStateIsolatedAcrossSolves(t *testing.T) {
	models := corpus()
	ref := make(map[string]*Solution)
	for _, cm := range models {
		sol, err := Solve(context.Background(), cm.build(), Options{Workers: 1})
		if err != nil {
			continue // infeasible corpus entries are exercised below anyway
		}
		ref[cm.name] = sol
	}
	for round := 0; round < 3; round++ {
		// Reverse order on odd rounds so each solve follows a different
		// predecessor's pooled state.
		for i := range models {
			cm := models[i]
			if round%2 == 1 {
				cm = models[len(models)-1-i]
			}
			cold, ok := ref[cm.name]
			if !ok {
				if _, err := Solve(context.Background(), cm.build(), Options{Workers: 4}); err == nil {
					t.Fatalf("%s became feasible mid-test", cm.name)
				}
				continue
			}
			sol, err := Solve(context.Background(), cm.build(),
				Options{Workers: 4, WarmStart: cold.Values})
			if err != nil {
				t.Fatalf("round %d %s: %v", round, cm.name, err)
			}
			if !reflect.DeepEqual(sol.Values, cold.Values) {
				t.Fatalf("round %d %s: values drifted across pooled solves:\n%v\n%v",
					round, cm.name, sol.Values, cold.Values)
			}
		}
	}
}

// TestWarmStartNoGoroutineLeak: seeding the incumbent must not change
// the worker join contract — a burst of warm-started parallel solves
// leaves the goroutine count where it started.
func TestWarmStartNoGoroutineLeak(t *testing.T) {
	seedSol, err := Solve(context.Background(), packingModel(12, 20), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		if _, err := Solve(context.Background(), packingModel(12, 20),
			Options{Workers: 4, WarmStart: seedSol.Values}); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after warm-started solves", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBreakSymmetriesSoundOnAsymmetricModel: variables that merely share
// bounds and objective coefficient but play different constraint roles
// must NOT be ordered.
func TestBreakSymmetriesSoundOnAsymmetricModel(t *testing.T) {
	m := NewModel()
	x := m.NewBinary("x")
	y := m.NewBinary("y")
	// x ≥ y makes (1,0) feasible but (0,1) infeasible: the pair is not
	// interchangeable even though bounds and objective agree.
	m.AddGE("gate", []Term{T(1, x), T(-1, y)}, 0)
	m.SetObjective([]Term{T(-1, x), T(-1, y)})
	if n := breakSymmetries(m); n != 0 {
		t.Fatalf("breakSymmetries added %d rows to an asymmetric model", n)
	}

	// And on a genuinely symmetric pair it orders exactly once.
	m2 := NewModel()
	a := m2.NewBinary("a")
	b := m2.NewBinary("b")
	m2.AddLE("cap", []Term{T(1, a), T(1, b)}, 1)
	m2.SetObjective([]Term{T(-1, a), T(-1, b)})
	if n := breakSymmetries(m2); n != 1 {
		t.Fatalf("breakSymmetries added %d rows to a symmetric pair, want 1", n)
	}
}
