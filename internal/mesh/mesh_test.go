package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindDisabled: "disabled",
		KindCore:     "core",
		KindLLCOnly:  "llc-only",
		KindIMC:      "imc",
		KindIO:       "io",
		Kind(99):     "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindCapabilities(t *testing.T) {
	if !KindCore.HasCHA() || !KindCore.HasCore() {
		t.Error("KindCore must have both CHA and core")
	}
	if !KindLLCOnly.HasCHA() || KindLLCOnly.HasCore() {
		t.Error("KindLLCOnly must have a CHA but no core")
	}
	for _, k := range []Kind{KindDisabled, KindIMC, KindIO} {
		if k.HasCHA() || k.HasCore() {
			t.Errorf("%v must have neither CHA nor core", k)
		}
	}
}

func TestChannelString(t *testing.T) {
	cases := map[Channel]string{Up: "up", Down: "down", Left: "left", Right: "right", Channel(9): "Channel(9)"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Channel(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestChannelVertical(t *testing.T) {
	if !Up.Vertical() || !Down.Vertical() {
		t.Error("up/down must be vertical")
	}
	if Left.Vertical() || Right.Vertical() {
		t.Error("left/right must not be vertical")
	}
}

func TestNewGridInitialState(t *testing.T) {
	g := NewGrid(5, 6)
	if g.Rows != 5 || g.Cols != 6 {
		t.Fatalf("grid size = %dx%d, want 5x6", g.Rows, g.Cols)
	}
	g.Tiles(func(c Coord, tl *Tile) {
		if tl.Kind != KindDisabled {
			t.Errorf("tile %v initial kind = %v, want disabled", c, tl.Kind)
		}
		if tl.CHA != -1 {
			t.Errorf("tile %v initial CHA = %d, want -1", c, tl.CHA)
		}
	})
}

func TestNewGridPanicsOnBadSize(t *testing.T) {
	for _, sz := range [][2]int{{0, 4}, {4, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%d,%d) did not panic", sz[0], sz[1])
				}
			}()
			NewGrid(sz[0], sz[1])
		}()
	}
}

func TestTilePanicsOutOfRange(t *testing.T) {
	g := NewGrid(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("Tile out of range did not panic")
		}
	}()
	g.Tile(Coord{2, 0})
}

func TestFindCHA(t *testing.T) {
	g := NewGrid(3, 3)
	g.Tile(Coord{1, 2}).Kind = KindCore
	g.Tile(Coord{1, 2}).CHA = 7
	if c, ok := g.FindCHA(7); !ok || c != (Coord{1, 2}) {
		t.Errorf("FindCHA(7) = %v,%v; want (1,2),true", c, ok)
	}
	if _, ok := g.FindCHA(8); ok {
		t.Error("FindCHA(8) found a tile that does not exist")
	}
}

func TestRouteVerticalOnly(t *testing.T) {
	g := NewGrid(5, 6)
	hops := g.Route(Coord{4, 2}, Coord{1, 2})
	if len(hops) != 3 {
		t.Fatalf("got %d hops, want 3", len(hops))
	}
	for i, h := range hops {
		if h.Ch != Up {
			t.Errorf("hop %d channel = %v, want up", i, h.Ch)
		}
		want := Coord{3 - i, 2}
		if h.To != want {
			t.Errorf("hop %d to %v, want %v", i, h.To, want)
		}
	}
}

func TestRouteDimensionOrder(t *testing.T) {
	// Vertical movement must complete before any horizontal movement.
	g := NewGrid(5, 6)
	hops := g.Route(Coord{0, 0}, Coord{3, 4})
	if len(hops) != 7 {
		t.Fatalf("got %d hops, want 7", len(hops))
	}
	for i := 0; i < 3; i++ {
		if hops[i].Ch != Down {
			t.Errorf("hop %d = %v, want down", i, hops[i].Ch)
		}
		if hops[i].To.Col != 0 {
			t.Errorf("vertical hop %d strayed to column %d", i, hops[i].To.Col)
		}
	}
	for i := 3; i < 7; i++ {
		if hops[i].Ch.Vertical() {
			t.Errorf("hop %d = %v, want horizontal", i, hops[i].Ch)
		}
		if hops[i].To.Row != 3 {
			t.Errorf("horizontal hop %d strayed to row %d", i, hops[i].To.Row)
		}
	}
	if last := hops[6].To; last != (Coord{3, 4}) {
		t.Errorf("route ends at %v, want (3,4)", last)
	}
}

func TestRouteEmptyWhenSameTile(t *testing.T) {
	g := NewGrid(3, 3)
	if hops := g.Route(Coord{1, 1}, Coord{1, 1}); len(hops) != 0 {
		t.Errorf("self route has %d hops, want 0", len(hops))
	}
}

func TestHorizontalLabelsAlternate(t *testing.T) {
	g := NewGrid(1, 6)
	hops := g.Route(Coord{0, 0}, Coord{0, 5})
	// Eastbound arrivals: odd columns are mirrored, so the label must
	// alternate left/right along the path.
	for i := 1; i < len(hops); i++ {
		if hops[i].Ch == hops[i-1].Ch {
			t.Errorf("consecutive horizontal hops %d,%d share label %v; labels must alternate", i-1, i, hops[i].Ch)
		}
	}
	// Westbound arrivals at the same columns must carry the opposite label.
	back := g.Route(Coord{0, 5}, Coord{0, 0})
	labels := map[int]Channel{}
	for _, h := range hops {
		labels[h.To.Col] = h.Ch
	}
	for _, h := range back {
		if fwd, ok := labels[h.To.Col]; ok && fwd == h.Ch {
			t.Errorf("column %d: east and west arrivals share label %v; the mirrored labels must hide direction", h.To.Col, h.Ch)
		}
	}
}

func TestRoutePanicsOffGrid(t *testing.T) {
	g := NewGrid(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("Route off grid did not panic")
		}
	}()
	g.Route(Coord{0, 0}, Coord{5, 5})
}

func TestInjectChargesIngressAtEveryHop(t *testing.T) {
	g := NewGrid(5, 6)
	src, dst := Coord{4, 1}, Coord{2, 3}
	g.Inject(src, dst, 10)
	// Vertical segment: (3,1) and (2,1) get Up ingress.
	for _, c := range []Coord{{3, 1}, {2, 1}} {
		if got := g.Tile(c).Counters.Ingress[Up]; got != 10 {
			t.Errorf("tile %v up ingress = %d, want 10", c, got)
		}
	}
	// Horizontal segment: (2,2) and (2,3) get horizontal ingress.
	for _, c := range []Coord{{2, 2}, {2, 3}} {
		tl := g.Tile(c)
		if h := tl.Counters.Ingress[Left] + tl.Counters.Ingress[Right]; h != 10 {
			t.Errorf("tile %v horizontal ingress = %d, want 10", c, h)
		}
	}
	// The source is never charged.
	var srcTotal uint64
	for _, v := range g.Tile(src).Counters.Ingress {
		srcTotal += v
	}
	if srcTotal != 0 {
		t.Errorf("source tile charged %d ingress cycles, want 0", srcTotal)
	}
}

func TestInjectAccumulates(t *testing.T) {
	g := NewGrid(3, 3)
	g.Inject(Coord{0, 0}, Coord{2, 0}, 4)
	g.Inject(Coord{0, 0}, Coord{2, 0}, 6)
	if got := g.Tile(Coord{1, 0}).Counters.Ingress[Down]; got != 10 {
		t.Errorf("accumulated down ingress = %d, want 10", got)
	}
}

func TestLookupLLCAndReset(t *testing.T) {
	g := NewGrid(2, 2)
	g.LookupLLC(Coord{0, 1}, 5)
	if got := g.Tile(Coord{0, 1}).Counters.LLCLookup; got != 5 {
		t.Errorf("LLC lookups = %d, want 5", got)
	}
	g.Inject(Coord{0, 0}, Coord{1, 1}, 1)
	g.ResetCounters()
	g.Tiles(func(c Coord, tl *Tile) {
		if tl.Counters != (Counters{}) {
			t.Errorf("tile %v counters not reset: %+v", c, tl.Counters)
		}
	})
}

func TestDistance(t *testing.T) {
	if d := Distance(Coord{0, 0}, Coord{3, 4}); d != 7 {
		t.Errorf("Distance = %d, want 7", d)
	}
	if d := Distance(Coord{2, 2}, Coord{2, 2}); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

// Property: every route is a valid lattice path — it starts adjacent to the
// source, each hop moves to a 4-neighbour of the previous position, it ends
// at the destination, its length is the Manhattan distance, and all
// vertical hops precede all horizontal hops.
func TestRouteProperties(t *testing.T) {
	const rows, cols = 8, 8
	g := NewGrid(rows, cols)
	f := func(sr, sc, dr, dc uint8) bool {
		src := Coord{int(sr) % rows, int(sc) % cols}
		dst := Coord{int(dr) % rows, int(dc) % cols}
		hops := g.Route(src, dst)
		if len(hops) != Distance(src, dst) {
			return false
		}
		cur := src
		horizontalSeen := false
		for _, h := range hops {
			if Distance(cur, h.To) != 1 {
				return false
			}
			if h.Ch.Vertical() {
				if horizontalSeen {
					return false // vertical after horizontal violates DOR
				}
				if h.To.Col != cur.Col {
					return false
				}
				if h.Ch == Up && h.To.Row != cur.Row-1 {
					return false
				}
				if h.Ch == Down && h.To.Row != cur.Row+1 {
					return false
				}
			} else {
				horizontalSeen = true
				if h.To.Row != cur.Row {
					return false
				}
			}
			cur = h.To
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: the total ingress charged by an injection equals flits ×
// Manhattan distance, spread one hop per tile.
func TestInjectConservation(t *testing.T) {
	f := func(sr, sc, dr, dc uint8, flits uint16) bool {
		g := NewGrid(6, 7)
		src := Coord{int(sr) % 6, int(sc) % 7}
		dst := Coord{int(dr) % 6, int(dc) % 7}
		g.Inject(src, dst, uint64(flits))
		var total uint64
		g.Tiles(func(_ Coord, tl *Tile) {
			for _, v := range tl.Counters.Ingress {
				total += v
			}
		})
		return total == uint64(flits)*uint64(Distance(src, dst))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestInjectOnRingsIndependent(t *testing.T) {
	g := NewGrid(2, 2)
	g.InjectOn(RingAD, Coord{0, 0}, Coord{1, 0}, 3)
	g.InjectOn(RingIV, Coord{0, 0}, Coord{1, 0}, 4)
	tl := g.Tile(Coord{1, 0})
	if tl.Counters.RingIngress(RingAD)[Down] != 3 {
		t.Errorf("AD ingress = %d, want 3", tl.Counters.RingIngress(RingAD)[Down])
	}
	if tl.Counters.RingIngress(RingIV)[Down] != 4 {
		t.Errorf("IV ingress = %d, want 4", tl.Counters.RingIngress(RingIV)[Down])
	}
	if tl.Counters.Ingress[Down] != 0 {
		t.Errorf("BL ingress = %d, want 0 (protocol traffic must stay off BL)", tl.Counters.Ingress[Down])
	}
	g.ResetCounters()
	if tl.Counters.RingIngress(RingAD)[Down] != 0 {
		t.Error("ResetCounters did not clear protocol rings")
	}
}

func TestRingString(t *testing.T) {
	cases := map[Ring]string{RingBL: "BL", RingAD: "AD", RingAK: "AK", RingIV: "IV", Ring(9): "Ring(9)"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Ring(%d).String() = %q, want %q", r, got, want)
		}
	}
}
