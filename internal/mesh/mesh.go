// Package mesh models the on-die mesh interconnect of Intel Xeon Scalable
// processors (Skylake / Cascade Lake / Ice Lake server architectures).
//
// The die is a grid of tiles. Most tiles are "core tiles" containing a
// processor core, a slice of the shared last-level cache (LLC), and the
// Cache-Home Agent (CHA) that connects the slice to the mesh. Some tiles
// host the integrated memory controllers (IMC) or other IP and carry no
// CHA; some core tiles are fused off entirely (they still route traffic but
// expose no performance counters); some have an active LLC slice but a
// disabled core ("LLC-only" tiles).
//
// Packets use dimension-order routing: all vertical (up/down) movement is
// completed first, then horizontal (left/right) movement. The core tiles in
// every odd column are flipped horizontally on the physical die, so the
// left/right channel labels observed by a tile alternate along a horizontal
// path; the true east/west direction of travel is therefore not observable
// from channel labels alone. Vertical channel labels are true directions.
//
// Each tile records the number of ingress cycles per channel, mirroring the
// uncore-PMON events VERT_RING_BL_IN_USE.{UP,DOWN} and
// HORZ_RING_BL_IN_USE.{LEFT,RIGHT}. Whether those counts are *readable* is
// decided by the PMON layer (disabled tiles have their counters fused off);
// the mesh itself accounts for every hop.
package mesh

import "fmt"

// Kind classifies what occupies a tile position on the die.
type Kind uint8

const (
	// KindDisabled is a core tile whose core, LLC slice and CHA are all
	// fused off. The tile still routes mesh traffic, but its performance
	// counters are disabled and it has no CHA ID.
	KindDisabled Kind = iota
	// KindCore is a fully active core tile: core + LLC slice + CHA.
	KindCore
	// KindLLCOnly is a core tile whose core is fused off but whose LLC
	// slice and CHA remain active. Its counters are readable, but it
	// cannot host a thread.
	KindLLCOnly
	// KindIMC is an integrated-memory-controller tile. It routes traffic
	// but carries no CHA and no core.
	KindIMC
	// KindIO is any other non-CHA IP tile (UPI, PCIe, ...). Like IMC it
	// routes traffic only.
	KindIO
)

// String returns a short human-readable label for the tile kind.
func (k Kind) String() string {
	switch k {
	case KindDisabled:
		return "disabled"
	case KindCore:
		return "core"
	case KindLLCOnly:
		return "llc-only"
	case KindIMC:
		return "imc"
	case KindIO:
		return "io"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// HasCHA reports whether a tile of this kind carries an active CHA (and
// therefore readable uncore-PMON counters and an LLC slice).
func (k Kind) HasCHA() bool { return k == KindCore || k == KindLLCOnly }

// HasCore reports whether a tile of this kind can execute threads.
func (k Kind) HasCore() bool { return k == KindCore }

// Channel identifies one of the four mesh ingress data channels at a tile,
// as labelled by that tile's counters.
type Channel uint8

const (
	// Up is the vertical ingress channel carrying packets that move
	// toward row 0.
	Up Channel = iota
	// Down is the vertical ingress channel carrying packets that move
	// toward higher row indices.
	Down
	// Left and Right are the two horizontal ingress channels. Because
	// odd columns are physically mirrored, the label seen by a tile does
	// not reveal the true east/west direction of travel.
	Left
	Right
	numChannels
)

// String returns the channel name.
func (c Channel) String() string {
	switch c {
	case Up:
		return "up"
	case Down:
		return "down"
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("Channel(%d)", uint8(c))
	}
}

// Vertical reports whether the channel is one of the vertical (up/down)
// ring channels.
func (c Channel) Vertical() bool { return c == Up || c == Down }

// Ring identifies one of the four message classes of the mesh, each with
// its own physical ring and its own ingress counters. The core-locating
// method monitors the BL (block/data) ring; the others exist so the
// simulated uncore carries realistic protocol traffic that a correctly
// programmed monitor must NOT see.
type Ring uint8

const (
	// RingBL carries cache-line data.
	RingBL Ring = iota
	// RingAD carries requests and snoops (address ring).
	RingAD
	// RingAK carries acknowledgements.
	RingAK
	// RingIV carries invalidations.
	RingIV
	// NumRings is the number of message classes.
	NumRings
)

// String returns the ring mnemonic.
func (r Ring) String() string {
	switch r {
	case RingBL:
		return "BL"
	case RingAD:
		return "AD"
	case RingAK:
		return "AK"
	case RingIV:
		return "IV"
	default:
		return fmt.Sprintf("Ring(%d)", uint8(r))
	}
}

// Coord is a tile position on the grid: row 0 is the top row, column 0 the
// leftmost column.
type Coord struct {
	Row, Col int
}

// String formats the coordinate as "(row,col)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Hop is one mesh link traversal: the packet arrives at To through the
// ingress channel Ch (the label To's counters attribute the arrival to).
type Hop struct {
	To Coord
	Ch Channel
}

// Counters is the per-tile bank of ingress-occupancy event counts plus the
// LLC lookup count of the tile's cache slice. Ingress is the BL (data)
// ring — the one the locating method monitors; the protocol rings have
// their own banks.
type Counters struct {
	Ingress   [4]uint64           // BL ring, indexed by Channel
	Protocol  [NumRings][4]uint64 // AD/AK/IV rings (RingBL entry unused)
	LLCLookup uint64
}

// RingIngress returns the ingress counter bank for a ring.
func (c *Counters) RingIngress(r Ring) *[4]uint64 {
	if r == RingBL {
		return &c.Ingress
	}
	return &c.Protocol[r]
}

// Tile is one grid position.
type Tile struct {
	Kind Kind
	// CHA is the tile's CHA ID, or -1 when the tile has no active CHA.
	// CHA IDs are assigned by the machine layer in column-major order,
	// skipping tiles without an active CHA.
	CHA int
	// Counters accumulates ingress and LLC-lookup events. The mesh
	// updates it for every tile, including disabled ones; readability is
	// a PMON-layer concern.
	Counters Counters
}

// Grid is the die mesh: a Rows×Cols arrangement of tiles.
type Grid struct {
	Rows, Cols int
	tiles      []Tile
}

// NewGrid returns a grid of the given dimensions with every tile initially
// KindDisabled and no CHA.
func NewGrid(rows, cols int) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mesh: invalid grid size %dx%d", rows, cols))
	}
	g := &Grid{Rows: rows, Cols: cols, tiles: make([]Tile, rows*cols)}
	for i := range g.tiles {
		g.tiles[i].CHA = -1
	}
	return g
}

// In reports whether the coordinate lies on the grid.
func (g *Grid) In(c Coord) bool {
	return c.Row >= 0 && c.Row < g.Rows && c.Col >= 0 && c.Col < g.Cols
}

// Tile returns the tile at c. It panics if c is out of range.
func (g *Grid) Tile(c Coord) *Tile {
	if !g.In(c) {
		panic(fmt.Sprintf("mesh: coordinate %v outside %dx%d grid", c, g.Rows, g.Cols))
	}
	return &g.tiles[c.Row*g.Cols+c.Col]
}

// SetKind sets the kind of the tile at c.
func (g *Grid) SetKind(c Coord, k Kind) { g.Tile(c).Kind = k }

// Tiles calls fn for every tile in row-major order.
func (g *Grid) Tiles(fn func(Coord, *Tile)) {
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			co := Coord{r, c}
			fn(co, g.Tile(co))
		}
	}
}

// FindCHA returns the coordinate of the tile with the given CHA ID, or
// ok=false when no tile carries it. Negative IDs never match: -1 is the
// "no CHA" sentinel every tile starts with, not an identity.
func (g *Grid) FindCHA(cha int) (Coord, bool) {
	if cha < 0 {
		return Coord{}, false
	}
	var found Coord
	ok := false
	g.Tiles(func(c Coord, t *Tile) {
		if t.CHA == cha {
			found, ok = c, true
		}
	})
	return found, ok
}

// horizontalLabel returns the channel label the tile in column col uses for
// a horizontally arriving packet travelling east (increasing column) or
// west. Odd columns are physically mirrored, so the label alternates per
// column: an eastbound packet is a "right"-channel arrival at even columns
// and a "left"-channel arrival at odd columns.
func horizontalLabel(col int, east bool) Channel {
	mirrored := col%2 == 1
	if east != mirrored {
		return Right
	}
	return Left
}

// Route returns the dimension-order (vertical-first) route from src to dst
// as the sequence of hops taken. An empty route is returned when src == dst.
// It panics if either coordinate is off the grid.
func (g *Grid) Route(src, dst Coord) []Hop {
	if !g.In(src) || !g.In(dst) {
		panic(fmt.Sprintf("mesh: route %v->%v outside %dx%d grid", src, dst, g.Rows, g.Cols))
	}
	hops := make([]Hop, 0, abs(dst.Row-src.Row)+abs(dst.Col-src.Col))
	cur := src
	for cur.Row != dst.Row {
		ch := Down
		next := Coord{cur.Row + 1, cur.Col}
		if dst.Row < cur.Row {
			ch = Up
			next = Coord{cur.Row - 1, cur.Col}
		}
		cur = next
		hops = append(hops, Hop{To: cur, Ch: ch})
	}
	for cur.Col != dst.Col {
		east := dst.Col > cur.Col
		next := Coord{cur.Row, cur.Col - 1}
		if east {
			next = Coord{cur.Row, cur.Col + 1}
		}
		cur = next
		hops = append(hops, Hop{To: cur, Ch: horizontalLabel(cur.Col, east)})
	}
	return hops
}

// Inject routes flits data flits from src to dst on the BL ring and
// charges every hop's ingress counter at the receiving tile. Counters are
// charged on all tiles, including disabled ones; visibility is decided by
// the PMON layer.
func (g *Grid) Inject(src, dst Coord, flits uint64) {
	g.InjectOn(RingBL, src, dst, flits)
}

// InjectOn routes flits from src to dst on the given message ring.
//
// The walk is inlined rather than delegated to Route: injection runs once
// per simulated mesh transfer, so materializing the hop slice here would
// dominate the whole simulator's allocation profile.
func (g *Grid) InjectOn(ring Ring, src, dst Coord, flits uint64) {
	if !g.In(src) || !g.In(dst) {
		panic(fmt.Sprintf("mesh: route %v->%v outside %dx%d grid", src, dst, g.Rows, g.Cols))
	}
	row, col := src.Row, src.Col
	idx := row*g.Cols + col
	for row != dst.Row {
		ch := Down
		if dst.Row < row {
			ch = Up
			row--
			idx -= g.Cols
		} else {
			row++
			idx += g.Cols
		}
		g.tiles[idx].Counters.RingIngress(ring)[ch] += flits
	}
	if col == dst.Col {
		return
	}
	// The horizontal label alternates per column (odd-column mirroring),
	// and Left^1 == Right, so one XOR replaces the per-hop parity check.
	step := 1
	if dst.Col < col {
		step = -1
	}
	ch := horizontalLabel(col+step, dst.Col > col)
	for col != dst.Col {
		col += step
		idx += step
		g.tiles[idx].Counters.RingIngress(ring)[ch] += flits
		ch ^= 1
	}
}

// LookupLLC charges n LLC lookup events to the slice at c.
func (g *Grid) LookupLLC(c Coord, n uint64) { g.Tile(c).Counters.LLCLookup += n }

// ResetCounters zeroes every tile's counter bank.
func (g *Grid) ResetCounters() {
	for i := range g.tiles {
		g.tiles[i].Counters = Counters{}
	}
}

// Distance returns the Manhattan hop distance between two coordinates.
func Distance(a, b Coord) int { return abs(a.Row-b.Row) + abs(a.Col-b.Col) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
