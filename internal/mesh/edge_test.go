package mesh_test

import (
	"testing"

	"coremap/internal/mesh"
)

// These edge cases double as the router contract every topology backend
// must satisfy (see internal/topo/topotest): a zero-length flow charges
// nothing, degenerate one-row and one-column grids still route, and
// lookups on an empty substrate report absence instead of inventing a
// tile.

// TestRouteSelf: src == dst is a legal route of zero hops, and injecting
// it charges no counter anywhere.
func TestRouteSelf(t *testing.T) {
	g := mesh.NewGrid(3, 4)
	c := mesh.Coord{Row: 1, Col: 2}
	if hops := g.Route(c, c); len(hops) != 0 {
		t.Errorf("Route(self) = %v, want empty", hops)
	}
	g.Inject(c, c, 100)
	total := uint64(0)
	g.Tiles(func(_ mesh.Coord, tile *mesh.Tile) {
		for ring := mesh.Ring(0); ring < 4; ring++ {
			for _, v := range tile.Counters.RingIngress(ring) {
				total += v
			}
		}
	})
	if total != 0 {
		t.Errorf("Inject(self) charged %d flits", total)
	}
}

// TestRouteSingleRow: a 1×N grid routes purely horizontally, with the
// odd-column mirroring alternating the ingress label per hop.
func TestRouteSingleRow(t *testing.T) {
	g := mesh.NewGrid(1, 5)
	hops := g.Route(mesh.Coord{Row: 0, Col: 0}, mesh.Coord{Row: 0, Col: 4})
	if len(hops) != 4 {
		t.Fatalf("route has %d hops, want 4", len(hops))
	}
	for i, h := range hops {
		if h.To.Row != 0 || h.To.Col != i+1 {
			t.Errorf("hop %d lands at %v", i, h.To)
		}
		if h.Ch.Vertical() {
			t.Errorf("hop %d uses vertical channel %v on a one-row grid", i, h.Ch)
		}
		if i > 0 && h.Ch == hops[i-1].Ch {
			t.Errorf("hops %d and %d share label %v; mirroring should alternate them", i-1, i, h.Ch)
		}
	}
}

// TestRouteSingleColumn: an N×1 grid routes purely vertically with true
// direction labels.
func TestRouteSingleColumn(t *testing.T) {
	g := mesh.NewGrid(5, 1)
	down := g.Route(mesh.Coord{Row: 0, Col: 0}, mesh.Coord{Row: 4, Col: 0})
	if len(down) != 4 {
		t.Fatalf("route has %d hops, want 4", len(down))
	}
	for i, h := range down {
		if h.Ch != mesh.Down {
			t.Errorf("southbound hop %d labelled %v", i, h.Ch)
		}
	}
	up := g.Route(mesh.Coord{Row: 4, Col: 0}, mesh.Coord{Row: 1, Col: 0})
	for i, h := range up {
		if h.Ch != mesh.Up {
			t.Errorf("northbound hop %d labelled %v", i, h.Ch)
		}
	}
}

// TestRouteUnitGrid: the 1×1 grid has exactly one legal (empty) route.
func TestRouteUnitGrid(t *testing.T) {
	g := mesh.NewGrid(1, 1)
	if hops := g.Route(mesh.Coord{}, mesh.Coord{}); len(hops) != 0 {
		t.Errorf("unit grid route = %v", hops)
	}
}

// TestInjectMatchesRouteOnDegenerateGrids: the inlined InjectOn walk and
// Route must agree on which tiles see ingress, including the one-row and
// one-column shapes where only one routing phase runs.
func TestInjectMatchesRouteOnDegenerateGrids(t *testing.T) {
	shapes := []struct{ rows, cols int }{{1, 6}, {6, 1}, {2, 2}}
	for _, sh := range shapes {
		g := mesh.NewGrid(sh.rows, sh.cols)
		src := mesh.Coord{Row: 0, Col: 0}
		dst := mesh.Coord{Row: sh.rows - 1, Col: sh.cols - 1}
		g.Inject(src, dst, 1)
		want := map[mesh.Coord]mesh.Channel{}
		for _, h := range g.Route(src, dst) {
			want[h.To] = h.Ch
		}
		g.Tiles(func(c mesh.Coord, tile *mesh.Tile) {
			ing := tile.Counters.RingIngress(mesh.RingBL)
			for ch, v := range ing {
				if v == 0 {
					continue
				}
				if wch, ok := want[c]; !ok || wch != mesh.Channel(ch) {
					t.Errorf("%dx%d: tile %v charged %v, route says %v (present=%v)",
						sh.rows, sh.cols, c, mesh.Channel(ch), wch, ok)
				}
			}
		})
	}
}

// TestFindCHAEmpty: a grid with no CHAs reports absence for any ID.
func TestFindCHAEmpty(t *testing.T) {
	g := mesh.NewGrid(3, 3)
	for _, id := range []int{0, 1, -1, 7} {
		if c, ok := g.FindCHA(id); ok {
			t.Errorf("FindCHA(%d) = %v on an empty grid", id, c)
		}
	}
}
