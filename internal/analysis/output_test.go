package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "detrange",
			Message:  "map iteration order leaks into an appended slice",
			Position: token.Position{Filename: "internal/ilp/model.go", Line: 42, Column: 2},
		},
		{
			Analyzer: "gosync",
			Message:  "goroutine has no provable join",
			Position: token.Position{Filename: "internal/obs/debug.go", Line: 7, Column: 9},
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	first := got[0]
	if first["file"] != "internal/ilp/model.go" || first["analyzer"] != "detrange" {
		t.Errorf("first record = %v", first)
	}
	if first["line"] != float64(42) || first["column"] != float64(2) {
		t.Errorf("first record position = %v:%v", first["line"], first["column"])
	}
}

// An empty run must encode as [], not null: consumers iterate it.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty run encodes as %q, want []", s)
	}
}

func TestWriteSARIF(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "detrange", Doc: "flags map iteration order leaks"},
		{Name: "gosync", Doc: "flags unjoined goroutines"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), analyzers); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "coremaplint" || len(run.Tool.Driver.Rules) != 2 {
		t.Errorf("driver=%q rules=%d", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "detrange" || r.Level != "error" {
		t.Errorf("first result = %+v", r)
	}
	if loc := r.Locations[0].PhysicalLocation; loc.ArtifactLocation.URI != "internal/ilp/model.go" ||
		loc.Region.StartLine != 42 {
		t.Errorf("first location = %+v", loc)
	}
}
