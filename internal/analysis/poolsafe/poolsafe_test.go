package poolsafe_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/poolsafe"
)

// TestFlagged pins the three rules: unpaired Gets, Put of reslice/append
// results, and pooled buffers escaping via return.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "flagged"), poolsafe.Analyzer)
}

// TestClean pins the no-false-positive contract: defer-Put pairing,
// copy-then-return, FreeList ownership hand-over within a body, Slab
// retention, sync.Pool lookalikes and //lint:allow handoffs stay silent.
func TestClean(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "clean"), poolsafe.Analyzer)
}
