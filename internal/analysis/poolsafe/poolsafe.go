// Package poolsafe enforces the Reset discipline of internal/pool in the
// pipeline stage packages. A Scratch or FreeList buffer is recycled
// memory: Get zeroes (or deliberately does not zero) a prefix sized to
// the request, and Put hands the backing array to the next caller. The
// contract in the pool package doc — return every buffer with Put
// exactly once, pass Put the buffer exactly as obtained, never let a
// pooled buffer outlive the function that got it — is what keeps stale
// solver bounds or PMON counts from leaking between users. Three rules:
//
//   - pairing rule: a function body that obtains a buffer with
//     Scratch.Get or FreeList.Get must also contain a Put call. The
//     match is per body (closures are separate bodies): a Get whose Put
//     lives in another function is a handoff the analyzer cannot prove
//     safe, so it must be annotated with //lint:allow poolsafe and a
//     reason.
//
//   - as-obtained rule: the argument to Put must not be a reslice or an
//     append result. Putting b[:n] narrows what the next Get believes it
//     zeroes, and putting append(b, ...) may recycle a reallocated copy
//     while the original leaks — both defeat the isolation the pool
//     promises.
//
//   - escape rule: a variable bound to a Get result must not be
//     returned. Ownership ends at Put; data that outlives the function
//     must be copied out (or allocated from a grow-only Slab, which the
//     analyzer deliberately ignores: slab windows are never recycled, so
//     retaining them is the intended use).
package poolsafe

import (
	"go/ast"
	"go/types"

	"coremap/internal/analysis"
)

// Analyzer is the poolsafe check. The scope is include-by-default: the
// rules only fire on internal/pool primitive usage, so packages that
// never pool produce nothing, and a new pooling package is covered from
// its first commit.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "flags pool.Scratch/pool.FreeList buffers that are never Put back, " +
		"Put calls on resliced or appended buffers, and pooled buffers escaping via return " +
		"in the pipeline stage packages",
	Run: run,
	Scope: &analysis.Scope{
		Doc: "every internal library package (the rules fire only on internal/pool usage)",
		Exclude: map[string]string{
			"coremap/internal/pool":         "implements the primitives: its own Get/Put bodies are the lifecycle, not a use of it",
			"coremap/internal/analysis/...": "the lint suite itself: batch tooling with no pooled buffers",
		},
	},
}

// poolPkg is the import path of the enforced primitives.
const poolPkg = "coremap/internal/pool"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkBody applies all three rules to one function body. Closure bodies
// are excluded from the shallow walk and checked as their own scope by
// run — a Put inside a deferred closure still counts for the enclosing
// function only when written as a direct `defer x.Put(b)`.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	type get struct {
		call *ast.CallExpr
		recv string // "Scratch" or "FreeList"
	}
	var gets []get
	var pooled []types.Object // variables bound to Get results
	havePut := false

	analysis.InspectShallow(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			// x := sc.Get(n) binds a pooled buffer to x.
			if len(stmt.Lhs) == 1 && len(stmt.Rhs) == 1 {
				if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok {
					if _, isGet := poolCall(pass, call, "Get"); isGet {
						if id, ok := stmt.Lhs[0].(*ast.Ident); ok {
							if obj := pass.ObjectOf(id); obj != nil {
								pooled = append(pooled, obj)
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if recv, ok := poolCall(pass, stmt, "Get"); ok {
				gets = append(gets, get{call: stmt, recv: recv})
			}
			if _, ok := poolCall(pass, stmt, "Put"); ok {
				havePut = true
				checkPutArg(pass, stmt)
			}
		case *ast.ReturnStmt:
			for _, res := range stmt.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil && isPooledObj(obj, pooled) {
						pass.Reportf(res.Pos(),
							"pooled buffer %s escapes via return: ownership ends at Put, copy the data out instead",
							id.Name)
					}
				}
			}
		}
		return true
	})

	if !havePut {
		for _, g := range gets {
			pass.Reportf(g.call.Pos(),
				"pool %s.Get result is never returned with Put in this function: release the buffer (defer works), or annotate a cross-function handoff with //lint:allow poolsafe",
				g.recv)
		}
	}
}

// checkPutArg enforces the as-obtained rule on a Put call.
func checkPutArg(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	switch arg := ast.Unparen(call.Args[0]).(type) {
	case *ast.SliceExpr:
		pass.Reportf(arg.Pos(),
			"Put of a resliced buffer: Put must receive the slice exactly as Get returned it, or the next Get zeroes less than it promises")
	case *ast.CallExpr:
		if analysis.IsBuiltin(pass, arg, "append") {
			pass.Reportf(arg.Pos(),
				"Put of an append result: append may have reallocated, recycling a copy while the pooled buffer leaks")
		}
	}
}

// poolCall reports whether call invokes the named method (Get or Put) on
// a pool.Scratch or pool.FreeList receiver, and which one.
func poolCall(pass *analysis.Pass, call *ast.CallExpr, name string) (recv string, ok bool) {
	fn := analysis.CalleeFunc(pass, call)
	if fn == nil || fn.Name() != name {
		return "", false
	}
	sig, ok2 := fn.Type().(*types.Signature)
	if !ok2 || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	switch {
	case analysis.IsNamedType(t, poolPkg, "Scratch"):
		return "Scratch", true
	case analysis.IsNamedType(t, poolPkg, "FreeList"):
		return "FreeList", true
	}
	return "", false
}

func isPooledObj(obj types.Object, pooled []types.Object) bool {
	for _, p := range pooled {
		if p == obj {
			return true
		}
	}
	return false
}
