// Fixture: disciplined pool usage stays silent, as do pool lookalikes
// and out-of-scope retention patterns.
package ilp

import (
	"sync"

	"coremap/internal/pool"
)

var scratch pool.Scratch[uint64]

// The canonical pattern: Get with a deferred Put.
func sweep(n int) uint64 {
	counts := scratch.Get(n)
	defer scratch.Put(counts)
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	return sum
}

// Explicit Put before returning a copy is fine: the pooled buffer itself
// does not escape.
func snapshot(n int) []uint64 {
	b := scratch.Get(n)
	out := append([]uint64(nil), b...)
	scratch.Put(b)
	return out
}

// A worker loop recycling FreeList node vectors: Gets and Puts in one
// body, not necessarily on the same buffer (ownership moves through a
// local stack). The pairing rule accepts any Put in the body.
func branch(fl *pool.FreeList[int64], lo []int64) {
	nl := fl.Get(len(lo))
	copy(nl, lo)
	fl.Put(lo)
	fl.Put(nl)
}

// Slab windows are grow-only and never recycled: retaining and returning
// them is the intended use, so the analyzer ignores Slab entirely.
func record(s *pool.Slab[int], vals []int) []int {
	w := s.Alloc(len(vals))
	return append(w, vals...)
}

// sync.Pool has Get/Put methods too; poolsafe only covers internal/pool.
func other(p *sync.Pool) any {
	v := p.Get()
	return v
}

// An annotated cross-function handoff is the documented escape hatch.
func handoff(fl *pool.FreeList[int64], sink func([]int64)) {
	b := fl.Get(8) //lint:allow poolsafe ownership transfers to sink, which Puts it
	sink(b)
}
