// Fixture: pooled-buffer misuse. The package name (ilp) opts into
// poolsafe's stage-package scope.
package ilp

import "coremap/internal/pool"

var scratch pool.Scratch[uint64]

// A Get with no Put anywhere in the body leaks the buffer out of the
// pool: the next sweep allocates fresh instead of reusing.
func leak(n int) uint64 {
	counts := scratch.Get(n) // want `never returned with Put`
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	return sum
}

// Both Gets are flagged when the body has no Put at all.
func leakTwice(fl *pool.FreeList[int64]) {
	a := fl.Get(4) // want `never returned with Put`
	b := fl.Get(4) // want `never returned with Put`
	_, _ = a, b
}

// Put of a reslice narrows what the next Get believes it zeroes.
func shrink(n int) {
	b := scratch.Get(n)
	scratch.Put(b[:1]) // want `Put of a resliced buffer`
}

// Put of an append result may recycle a reallocated copy.
func grow(fl *pool.FreeList[int64]) {
	b := fl.Get(2)
	fl.Put(append(b, 9)) // want `Put of an append result`
}

// A pooled buffer must not outlive its function.
func escape(n int) []uint64 {
	b := scratch.Get(n)
	defer scratch.Put(b)
	return b // want `escapes via return`
}

// A Put inside a deferred closure is a separate body: the enclosing
// function still has no direct Put, so the Get is flagged (write
// `defer scratch.Put(b)` instead).
func closurePut(n int) {
	b := scratch.Get(n) // want `never returned with Put`
	defer func() {
		scratch.Put(b)
	}()
	b[0] = 1
}
