package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the machine-readable shape of one finding, stable
// for scripting: the same fields String renders, split out.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON writes the diagnostics as one JSON array (never null: an
// empty run encodes as []), indented for human diffing.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     filepath.ToSlash(d.Position.Filename),
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — just the fields code-scanning uploads consume.
// One run, one reporting rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the diagnostics as a SARIF 2.1.0 log suitable for
// GitHub code-scanning upload. Every suite analyzer becomes a rule
// (findings or not, so the rule metadata is stable across runs); every
// diagnostic becomes an error-level result.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.Position.Filename)},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "coremaplint", Rules: rules}}, Results: results}},
	})
}
