// Package suite is the single registry of the coremaplint analyzers.
// cmd/coremaplint, the CI workflow and the meta-tests all consume this
// list, so adding an analyzer here is the one step that wires it into
// the blocking lint, the -only selector and the fixture-completeness
// checks.
package suite

import (
	"coremap/internal/analysis"
	"coremap/internal/analysis/cmerrcheck"
	"coremap/internal/analysis/ctxflow"
	"coremap/internal/analysis/detrange"
	"coremap/internal/analysis/gosync"
	"coremap/internal/analysis/hostsafe"
	"coremap/internal/analysis/lockcheck"
	"coremap/internal/analysis/obscheck"
	"coremap/internal/analysis/poolsafe"
	"coremap/internal/analysis/toposafe"
)

// Analyzers is the full lint suite in run order. Order is load-bearing
// in one place: the runner executes analyzers per package in slice
// order, and toposafe reads the Spawns facts gosync exports, so gosync
// must come before toposafe.
var Analyzers = []*analysis.Analyzer{
	detrange.Analyzer,
	cmerrcheck.Analyzer,
	ctxflow.Analyzer,
	hostsafe.Analyzer,
	poolsafe.Analyzer,
	gosync.Analyzer,
	lockcheck.Analyzer,
	toposafe.Analyzer,
	obscheck.Analyzer,
}

// ExtraExclusions registers rule-level exemption maps that live inside
// analyzers — finer-grained than Scope.Exclude, keyed by import path,
// each entry carrying its reason — so TestRosterCoverage can verify
// them against `go list` exactly like the Scope exclusions: no stale
// entries, no missing reasons.
var ExtraExclusions = map[string]map[string]string{
	"hostsafe.HostOpExempt": hostsafe.HostOpExempt,
	"hostsafe.ClockExempt":  hostsafe.ClockExempt,
}

// Names returns the analyzer names in suite order, for -only error
// messages and the CI matrix.
func Names() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return names
}
