package suite

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"coremap/internal/analysis"
	"coremap/internal/analysis/gosync"
	"coremap/internal/analysis/toposafe"
)

// goList returns the set of live package paths under pattern, resolved
// by the go command itself — the ground truth the derived rosters
// promise to track.
func goList(t *testing.T, pattern string) map[string]bool {
	t.Helper()
	out, err := exec.Command("go", "list", pattern).Output()
	if err != nil {
		t.Fatalf("go list %s: %v", pattern, err)
	}
	pkgs := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			pkgs[line] = true
		}
	}
	return pkgs
}

// checkExclusion verifies one roster entry against the live package
// set: the reason is recorded and the path (or "/..." subtree) still
// resolves to at least one package, so a rename or deletion turns the
// stale exclusion into a test failure instead of silent rot.
func checkExclusion(t *testing.T, owner, key, reason string, pkgs map[string]bool) {
	t.Helper()
	if strings.TrimSpace(reason) == "" {
		t.Errorf("%s: exclusion %q has no reason; every roster exemption must record why", owner, key)
	}
	if sub, ok := strings.CutSuffix(key, "/..."); ok {
		for p := range pkgs {
			if p == sub || strings.HasPrefix(p, sub+"/") {
				return
			}
		}
		t.Errorf("%s: exclusion %q matches no live package (stale roster entry)", owner, key)
		return
	}
	if !pkgs[key] {
		t.Errorf("%s: exclusion %q names no live package (stale roster entry)", owner, key)
	}
}

// TestRosterCoverage pins the include-by-default contract: every
// analyzer states its scope, and every exclusion — Scope-level or the
// rule-level maps registered in ExtraExclusions — names a package `go
// list` still knows, with a reason. No hand-maintained include roster
// can rot silently, because there are none: only exemptions, and each
// is verified here.
func TestRosterCoverage(t *testing.T) {
	pkgs := goList(t, "coremap/internal/...")
	for _, a := range Analyzers {
		if a.Scope == nil {
			t.Errorf("%s: no Scope; every suite analyzer must state what it applies to", a.Name)
			continue
		}
		if strings.TrimSpace(a.Scope.Doc) == "" {
			t.Errorf("%s: Scope.Doc is empty", a.Name)
		}
		for key, reason := range a.Scope.Exclude {
			checkExclusion(t, a.Name+".Scope", key, reason, pkgs)
		}
	}
	for owner, m := range ExtraExclusions {
		if len(m) == 0 {
			t.Errorf("ExtraExclusions[%q] registers an empty map", owner)
		}
		for key, reason := range m {
			checkExclusion(t, owner, key, reason, pkgs)
		}
	}
}

// TestSuiteOrder pins the one load-bearing ordering: toposafe consumes
// the Spawns facts gosync exports for the same package, and the runner
// executes analyzers in slice order, so gosync must precede toposafe.
func TestSuiteOrder(t *testing.T) {
	gi, ti := -1, -1
	for i, a := range Analyzers {
		switch a {
		case gosync.Analyzer:
			gi = i
		case toposafe.Analyzer:
			ti = i
		}
	}
	if gi == -1 || ti == -1 {
		t.Fatalf("suite is missing gosync (%d) or toposafe (%d)", gi, ti)
	}
	if gi > ti {
		t.Errorf("gosync at %d runs after toposafe at %d: toposafe would see no Spawns facts", gi, ti)
	}
}

// TestNamesUnique pins that -only selection is unambiguous.
func TestNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, name := range Names() {
		if name == "" {
			t.Error("analyzer with empty name")
		}
		if seen[name] {
			t.Errorf("duplicate analyzer name %q", name)
		}
		seen[name] = true
	}
}

// fixtureDir is an analyzer's testdata directory, relative to this
// package's source directory.
func fixtureDir(a *analysis.Analyzer) string {
	return filepath.Join("..", a.Name, "testdata")
}

// readFixtures returns the concatenated source of every .go file under
// dir (one level of subdirectories), keyed by subdirectory name.
func readFixtures(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var b strings.Builder
		files, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading %s/%s: %v", dir, e.Name(), err)
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name(), f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			b.Write(src)
			b.WriteByte('\n')
		}
		out[e.Name()] = b.String()
	}
	return out
}

// TestFixtureCompleteness pins the testing contract every suite
// analyzer owes: a fixture directory that provokes findings (// want),
// a clean directory that pins the no-false-positive surface (no
// wants), and at least one reviewed //lint:allow <name> suppression so
// the escape hatch is exercised, not just documented.
func TestFixtureCompleteness(t *testing.T) {
	for _, a := range Analyzers {
		fixtures := readFixtures(t, fixtureDir(a))
		clean, ok := fixtures["clean"]
		if !ok || !strings.Contains(clean, "package ") {
			t.Errorf("%s: no testdata/clean fixture package", a.Name)
		} else if strings.Contains(clean, "// want") {
			t.Errorf("%s: testdata/clean contains // want expectations; clean fixtures must pin silence", a.Name)
		}
		flagged := false
		for name, src := range fixtures {
			if name != "clean" && strings.Contains(src, "// want") {
				flagged = true
				break
			}
		}
		if !flagged {
			t.Errorf("%s: no fixture directory with // want expectations", a.Name)
		}
		allow := false
		for _, src := range fixtures {
			if strings.Contains(src, "lint:allow "+a.Name) {
				allow = true
				break
			}
		}
		if !allow {
			t.Errorf("%s: no fixture exercises //lint:allow %s; the suppression path must be pinned", a.Name, a.Name)
		}
	}
}
