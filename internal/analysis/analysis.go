// Package analysis is a minimal, dependency-free static-analysis
// framework modelled on golang.org/x/tools/go/analysis. The repository
// builds offline with no module dependencies, so instead of importing the
// x/tools framework it carries this small compatible core: an Analyzer is
// a named check with a Run function over a type-checked package, a Pass
// hands the analyzer its syntax trees and type information, and
// diagnostics are plain positions plus messages.
//
// The coremaplint analyzers (detrange, cmerrcheck, ctxflow, hostsafe)
// encode the pipeline's reproducibility invariants — deterministic
// iteration, classified errors, context discipline, decorated host access
// — and are compiled into cmd/coremaplint, which CI runs as a blocking
// job. See DESIGN.md §7 for the invariant each analyzer enforces.
//
// Findings can be suppressed per line with an explanation:
//
//	//lint:allow <analyzer> <reason>
//
// The directive suppresses matching diagnostics reported on its own line
// or on the line directly below it (so it works both as a trailing
// comment and as a comment above the flagged statement). A directive
// without a reason, or one that suppresses nothing, is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces, shown by `coremaplint -help`.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report/Reportf and returns an error only for internal
	// failures (a nil return with zero reports means the package is
	// clean).
	Run func(pass *Pass) error

	// Scope restricts which packages the analyzer runs on; nil means
	// every package. The runner consults it, so Run never sees an
	// out-of-scope package.
	Scope *Scope
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer

	// Fset maps token.Pos values of Files to file positions.
	Fset *token.FileSet

	// Files is the package's parsed syntax, with comments.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	// Report delivers one finding. The runner attaches the analyzer
	// name and applies //lint:allow suppression.
	Report func(Diagnostic)

	// facts is the run-wide fact store backing the Export/Import fact
	// methods; see facts.go.
	facts *factStore
}

// Reportf reports a formatted finding anchored at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding in Fset; the runner resolves it to
	// Position.
	Pos token.Pos

	// Analyzer is the reporting analyzer's name (filled by the runner).
	Analyzer string

	// Message describes the violation and the expected fix.
	Message string

	// Position is the resolved file position (filled by the runner).
	Position token.Position
}

// String renders "file:line:col: message (analyzer)", the format
// cmd/coremaplint prints and analysistest matches against.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Message, d.Analyzer)
}
