package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// A Fact is a typed datum an analyzer attaches to a package or to a
// package-level object, visible to later analyzer runs on packages that
// import the exporting package. Facts are how intra-procedural analyzers
// become interprocedural: gosync, for example, exports "this function
// runs code on other goroutines" on each spawning function, and toposafe
// reads those facts across import edges to tell concurrency-exposed
// packages from single-threaded ones.
//
// A Fact implementation must be a pointer to a struct; the marker method
// AFact keeps arbitrary values out of the store. Facts are matched by
// concrete type on import, so distinct analyzers can attach distinct
// fact types to the same object without collision.
type Fact interface{ AFact() }

// factKey addresses one stored fact. Objects are addressed by a stable
// string key — package path plus object path — rather than by
// types.Object identity: the source importer materializes its own
// *types.Package for each import edge, so the same function is a
// different object in the importing package's view. The string key makes
// the two views meet.
type factKey struct {
	pkg    string
	object string // "" for package facts
	t      reflect.Type
}

// factStore holds every fact exported during one Run. Run processes
// packages in dependency order, so by the time an analyzer asks for a
// fact about an imported object, the exporting run has already happened.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey]Fact)}
}

// objectKey returns the stable within-package key for obj: the name for
// package-level functions, variables, constants and types, and
// "Recv.Name" for methods. Objects without a stable key (locals, struct
// fields, interface methods of unnamed types) report ok=false; facts
// cannot be attached to them.
func objectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
		return fn.Name(), true
	}
	// Only package-scope objects have stable names.
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

func validFact(f Fact) error {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("analysis: fact %T must be a pointer to a struct", f)
	}
	return nil
}

// ExportObjectFact attaches a fact to obj, which must belong to the
// package under analysis. Attaching to an unkeyable object (a local, a
// field) is an internal error surfaced by the returned error.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) error {
	if err := validFact(f); err != nil {
		return err
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != p.Pkg.Path() {
		return fmt.Errorf("analysis: %s: ExportObjectFact on object outside the analyzed package", p.Analyzer.Name)
	}
	key, ok := objectKey(obj)
	if !ok {
		return fmt.Errorf("analysis: %s: ExportObjectFact on unkeyable object %v", p.Analyzer.Name, obj)
	}
	p.facts.m[factKey{obj.Pkg().Path(), key, reflect.TypeOf(f)}] = f
	return nil
}

// ImportObjectFact copies the fact of f's type previously exported on
// obj — by any analyzer, on this or an already-analyzed dependency
// package — into f and reports whether one was found. Facts are keyed by
// their concrete type, so analyzers share facts by importing each
// other's fact types (toposafe reads gosync's spawn facts this way).
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if validFact(f) != nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := objectKey(obj)
	if !ok {
		return false
	}
	stored, ok := p.facts.m[factKey{obj.Pkg().Path(), key, reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) error {
	if err := validFact(f); err != nil {
		return err
	}
	p.facts.m[factKey{p.Pkg.Path(), "", reflect.TypeOf(f)}] = f
	return nil
}

// ImportPackageFact copies the fact of f's type previously exported on
// the package with the given import path into f and reports whether one
// was found. Use p.Pkg.Imports() to enumerate candidate paths.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	if validFact(f) != nil {
		return false
	}
	stored, ok := p.facts.m[factKey{path, "", reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}
