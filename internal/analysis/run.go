package analysis

import (
	"fmt"
	"sort"
)

// Run applies every analyzer to every package, applies //lint:allow
// suppression, and returns the surviving diagnostics sorted by position.
// An error means an analyzer failed internally, not that findings exist.
//
// Packages are processed in dependency order (imports before importers)
// so that facts exported while analyzing a dependency are visible — via
// Pass.ImportObjectFact / ImportPackageFact — when its importers are
// analyzed. Analyzers whose Scope does not cover a package are skipped
// for that package.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := newFactStore()
	var all []Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		diags, err := runPackage(pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i].Position, all[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// dependencyOrder sorts the loaded packages so that every package
// follows the loaded packages it imports (directly or transitively).
// Ties keep the input order, which go list already emits
// deterministically.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	ordered := make([]*Package, 0, len(pkgs))
	visited := make(map[string]bool, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if visited[p.Path] {
			return
		}
		visited[p.Path] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		ordered = append(ordered, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return ordered
}

func runPackage(pkg *Package, analyzers []*Analyzer, facts *factStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if !a.Scope.Applies(pkg.Path, pkg.Types.Name()) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			facts:     facts,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			d.Position = pkg.Fset.Position(d.Pos)
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	allows, malformed := collectAllows(pkg.Fset, pkg.Files)
	diags = applyAllows(diags, allows)
	return append(diags, malformed...), nil
}
