package analysis

import (
	"fmt"
	"sort"
)

// Run applies every analyzer to every package, applies //lint:allow
// suppression, and returns the surviving diagnostics sorted by position.
// An error means an analyzer failed internally, not that findings exist.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i].Position, all[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			d.Position = pkg.Fset.Position(d.Pos)
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	allows, malformed := collectAllows(pkg.Fset, pkg.Files)
	diags = applyAllows(diags, allows)
	return append(diags, malformed...), nil
}
