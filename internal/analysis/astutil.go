package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Shared AST/type predicates used by the coremaplint analyzers. They are
// deliberately conservative: an analyzer that cannot resolve a type or
// callee stays silent rather than guessing, so framework limitations
// surface as missed findings, never as false positives.

// IsMapType reports whether e's type is (or aliases) a map.
func IsMapType(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsNamedType reports whether t (through pointers and aliases) is the
// named type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(tt)
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	return t != nil && IsNamedType(t, "context", "Context")
}

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

// CalleeFunc resolves the function or method a call invokes, or nil for
// calls through function values, built-ins and type conversions.
func CalleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// CalleeIs reports whether the call invokes pkgPath.name (a package-level
// function, e.g. "fmt"."Errorf").
func CalleeIs(p *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(p, call)
	return fn != nil && fn.Name() == name &&
		fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// IsBuiltin reports whether the call invokes the named built-in.
func IsBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.ObjectOf(id).(*types.Builtin)
	return ok
}

// ConstString returns the compile-time string value of e, if it has one.
func ConstString(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// FormatHasVerb reports whether format contains the given verb letter
// (e.g. 'w') as a conversion, skipping literal %%.
func FormatHasVerb(format string, verb byte) bool {
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		// Scan past flags, width, precision and index clauses to the
		// verb letter.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[j])) {
			j++
		}
		if j < len(format) {
			if format[j] == '%' {
				i = j
				continue
			}
			if format[j] == verb {
				return true
			}
			i = j
		}
	}
	return false
}

// UsesObject reports whether any identifier within n resolves to obj.
func UsesObject(p *Pass, n ast.Node, obj types.Object) bool {
	if obj == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// UsesAnyObject reports whether any identifier within n resolves to one
// of objs.
func UsesAnyObject(p *Pass, n ast.Node, objs []types.Object) bool {
	for _, o := range objs {
		if UsesObject(p, n, o) {
			return true
		}
	}
	return false
}

// PackageNameOneOf reports whether the pass's package name is in names.
// Analyzers scope pipeline-specific rules by package name rather than
// import path so that analysistest fixtures (whose synthetic import path
// is a testdata directory) opt in by declaring the package name.
func PackageNameOneOf(p *Pass, names ...string) bool {
	for _, n := range names {
		if p.Pkg.Name() == n {
			return true
		}
	}
	return false
}

// ExportedFuncDecls yields every top-level exported function or method
// declaration with a body.
func ExportedFuncDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			out = append(out, fd)
		}
	}
	return out
}

// InspectShallow walks n but does not descend into function literals:
// statements inside a closure execute on the closure's schedule, not the
// enclosing function's, so per-function rules must not attribute them to
// the enclosing body.
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}
