// Fixture: raw host access and undisciplined randomness. The package
// name (experiments) carries no HostOpExempt or ClockExempt entry, so
// every rule applies.
package experiments

import (
	"context"
	"math/rand"
	"time"

	"coremap/internal/hostif"
)

// Raw host operations bypass the retry/Bind decorators.
func Poke(h hostif.Host) error {
	if err := h.Store(0, 0x1000); err != nil { // want `raw hostif Store call`
		return err
	}
	_, err := h.ReadMSR(0, 0x10) // want `raw hostif ReadMSR call`
	return err
}

// The context-aware interface is still the raw boundary.
func PokeCtx(ctx context.Context, h hostif.HostCtx) error {
	return h.Flush(ctx, 0, 0x2000) // want `raw hostif Flush call`
}

// Global-source randomness is irreproducible.
func Jitter() int {
	return rand.Intn(10) // want `global math/rand source`
}

// Clock-seeded RNGs are irreproducible even with an explicit source;
// the clock read itself is a second, independent violation.
func NewRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from time.Now` `time.Now reads the wall clock directly`
}
