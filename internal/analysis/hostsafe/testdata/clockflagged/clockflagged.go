// Fixture: direct wall-clock reads in a pipeline package. The clock
// rule is include-by-default (probe carries no ClockExempt entry), so
// every read must go through the injected obs.Clock instead.
package probe

import "time"

// Direct clock reads make span timings nondeterministic under test.
func Stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock directly`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock directly`
}

func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until reads the wall clock directly`
}

// Duration arithmetic and constants never touch the clock.
func Budget() time.Duration { return 3 * time.Second }

// An explicit suppression documents a reviewed exception.
func Allowed() time.Time {
	//lint:allow hostsafe fixture: reviewed wall-clock read
	return time.Now()
}
