// Fixture: direct wall-clock reads inside a stage package (the package
// name "probe" puts it in the injected-clock rule's scope). Every read
// must go through the injected obs.Clock instead.
package probe

import "time"

// Direct clock reads make span timings nondeterministic under test.
func Stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock in a stage package`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock in a stage package`
}

func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until reads the wall clock in a stage package`
}

// Duration arithmetic and constants never touch the clock.
func Budget() time.Duration { return 3 * time.Second }

// An explicit suppression documents a reviewed exception.
func Allowed() time.Time {
	//lint:allow hostsafe fixture: reviewed wall-clock read
	return time.Now()
}
