// Fixture: sanctioned host and randomness patterns that must stay
// unflagged.
package baseline

import (
	"math/rand"
	"time"

	"coremap/internal/hostif"
)

// Explicitly seeded RNGs are deterministic.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Methods on an explicit *rand.Rand never touch the global source.
func Draw(r *rand.Rand) int { return r.Intn(10) }

// Deriving one seed from another is still configuration-driven.
func Derived(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 0x5EED))
}

// Holding or forwarding a Host without operating on it is legal: the
// callee applies the decorators.
func Forward(h hostif.Host) int { return h.NumCPUs() }

// Wrapping the host is exactly what the rule wants to see.
type runner struct{ h hostif.Host }

func newRunner(h hostif.Host) *runner { return &runner{h: h} }

// baseline carries a ClockExempt entry (wall-clock harness by design),
// so it may read the wall clock directly.
func Uptime(start time.Time) time.Duration { return time.Since(start) }
