// Package hostsafe enforces the host-access and randomness discipline of
// the measurement pipeline. Three rules:
//
//   - decorator rule: the MSR/PMON/memory operations of hostif.Host and
//     hostif.HostCtx (ReadMSR, WriteMSR, Load, TimedLoad, Store, Flush)
//     may be invoked only from the packages that implement or decorate
//     the boundary — hostif (the Bind/WithContext adapters), probe (the
//     retry decorator and the measurement loops running behind it),
//     machine (the simulator) and faulty (the fault injector). Everyone
//     else calling through the raw interface bypasses per-operation
//     context checks and transient-fault retry, which is exactly how an
//     uncancellable, flaky measurement path gets reintroduced.
//
//   - seeded-rand rule (every package): no math/rand global-source
//     functions (rand.Intn, rand.Shuffle, rand.Seed, ...) and no RNG
//     seeded from the clock (rand.NewSource(time.Now()...)). Every RNG in
//     a deterministic path must be rand.New(rand.NewSource(seed)) with a
//     seed that is part of the experiment's configuration, or the
//     content-addressed caches would fingerprint irreproducible runs.
//
//   - injected-clock rule (every package except the recorded
//     exemptions in ClockExempt): no direct time.Now/time.Since/
//     time.Until. Pipeline code reads wall time only through the
//     injected obs.Clock (obs.Config.Clock), which is what lets the
//     telemetry determinism tests swap in a fake clock and assert
//     byte-identical traces. A direct clock read would make span
//     timings — and anything derived from them — untestable.
//
// The decorator and clock rules derive their rosters from exemption
// maps keyed by import path (HostOpExempt, ClockExempt) rather than
// hand-maintained include lists: a new package is covered from its
// first commit, and TestRosterCoverage verifies every exemption names a
// live package and records a reason.
package hostsafe

import (
	"go/ast"
	"go/types"

	"coremap/internal/analysis"
)

// Analyzer is the hostsafe check.
var Analyzer = &analysis.Analyzer{
	Name: "hostsafe",
	Doc: "flags raw hostif.Host operations outside the sanctioned decorator packages, " +
		"math/rand usage without an explicit deterministic source, " +
		"and direct wall-clock reads outside the recorded exemptions",
	Run: run,
	Scope: &analysis.Scope{
		Doc: "every internal library package; the decorator and clock rules honor per-rule exemption maps",
		Exclude: map[string]string{
			"coremap/internal/analysis/...": "the lint suite itself: batch AST tooling with no host access, randomness or span timing",
		},
	},
}

// hostOps are the Host operations covered by the decorator rule.
// NumCPUs is deliberately absent: it is immutable metadata, not a
// measurement operation.
var hostOps = map[string]bool{
	"ReadMSR": true, "WriteMSR": true,
	"Load": true, "TimedLoad": true, "Store": true, "Flush": true,
}

// HostOpExempt maps the packages allowed to invoke the raw hostif
// operations to the reason each one is the boundary rather than a user
// of it. Everyone else must route through the decorators.
var HostOpExempt = map[string]string{
	"coremap/internal/hostif":  "defines the boundary: the Bind/WithContext adapters are the sanctioned wrappers themselves",
	"coremap/internal/probe":   "the retry decorator and the measurement loops that run behind it",
	"coremap/internal/machine": "the in-memory simulator implements Host; its bodies are the operations",
	"coremap/internal/faulty":  "the fault injector decorates an inner Host and must forward raw operations",
}

// ClockExempt maps the packages allowed to read the wall clock directly
// to the reason. Everyone else takes the injected obs.Clock.
var ClockExempt = map[string]string{
	"coremap/internal/obs":      "implements the injected Clock: the real systemClock must call time.Now somewhere",
	"coremap/internal/baseline": "wall-clock benchmark harness by design: it measures real elapsed time",
}

// clockFuncs are the time package's wall-clock reads covered by the
// injected-clock rule.
var clockFuncs = []string{"Now", "Since", "Until"}

// randGlobals are the math/rand package-level functions that draw from
// the shared, clock-seeded global source.
var randGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "N": true,
}

func run(pass *analysis.Pass) error {
	path := analysis.EffectivePath(pass)
	_, hostExempt := HostOpExempt[path]
	_, clockExempt := ClockExempt[path]
	checkHostOps := !hostExempt
	checkClocks := !clockExempt
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if checkHostOps {
				checkHostOp(pass, call)
			}
			checkRand(pass, call)
			if checkClocks {
				checkClock(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkClock flags direct wall-clock reads outside ClockExempt.
func checkClock(pass *analysis.Pass, call *ast.CallExpr) {
	for _, name := range clockFuncs {
		if analysis.CalleeIs(pass, call, "time", name) {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock directly: take an injected obs.Clock (obs.Config.Clock) so telemetry stays deterministic under a fake clock",
				name)
			return
		}
	}
}

// checkHostOp flags a covered operation invoked on a hostif.Host or
// hostif.HostCtx value.
func checkHostOp(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !hostOps[sel.Sel.Name] {
		return
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return
	}
	if analysis.IsNamedType(t, "coremap/internal/hostif", "Host") ||
		analysis.IsNamedType(t, "coremap/internal/hostif", "HostCtx") {
		pass.Reportf(call.Pos(),
			"raw hostif %s call bypasses the retry/Bind decorators: route the operation through probe.Prober, or wrap the host with hostif.Bind",
			sel.Sel.Name)
	}
}

// checkRand flags global-source math/rand calls and clock-seeded
// sources.
func checkRand(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	// Methods on an explicit *rand.Rand are fine; only package-level
	// functions touch the global source.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	if randGlobals[fn.Name()] {
		pass.Reportf(call.Pos(),
			"rand.%s draws from the global math/rand source: use rand.New(rand.NewSource(seed)) with a configured seed (determinism)",
			fn.Name())
		return
	}
	// rand.New(rand.NewSource(time.Now()...)) reports once, on the
	// source constructor, which is where the clock enters.
	if fn.Name() == "NewSource" || fn.Name() == "NewPCG" {
		if arg := clockSeedArg(pass, call); arg != "" {
			pass.Reportf(call.Pos(),
				"RNG seeded from %s is irreproducible: derive the seed from the experiment configuration",
				arg)
		}
	}
}

// clockSeedArg reports the clock call used inside any seed argument
// ("time.Now" style), or "".
func clockSeedArg(pass *analysis.Pass, call *ast.CallExpr) string {
	label := ""
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if label != "" {
				return false
			}
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.CalleeIs(pass, inner, "time", "Now") {
				label = "time.Now()"
				return false
			}
			return true
		})
	}
	return label
}
