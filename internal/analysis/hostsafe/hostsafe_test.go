package hostsafe_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/hostsafe"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "flagged"), hostsafe.Analyzer)
}

// TestClockFlagged pins the injected-clock rule: direct time.Now/Since/
// Until reads inside a stage package are diagnosed, duration arithmetic
// and //lint:allow exceptions stay silent.
func TestClockFlagged(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "clockflagged"), hostsafe.Analyzer)
}

// TestClean pins the no-false-positive contract: seeded RNGs, *rand.Rand
// methods and decorator-respecting host handling stay silent.
func TestClean(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "clean"), hostsafe.Analyzer)
}
