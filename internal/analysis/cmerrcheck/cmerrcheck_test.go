package cmerrcheck_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/cmerrcheck"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "flagged"), cmerrcheck.Analyzer)
}

// TestClean pins the no-false-positive contract: cmerr.New/Ensure,
// transparent %w wraps and unexported scratch errors are not reported.
func TestClean(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "clean"), cmerrcheck.Analyzer)
}

// TestAllowed pins the suppression contract: //lint:allow cmerrcheck
// silences the boundary rule, trailing or on the line above.
func TestAllowed(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "allowed"), cmerrcheck.Analyzer)
}
