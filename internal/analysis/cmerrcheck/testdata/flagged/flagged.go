// Fixture: unclassified errors crossing an exported stage boundary, and
// wrapping that drops the cause chain. Importing cmerr is what opts the
// package into the boundary rule: classifying some errors obliges the
// package to classify all of its exported-boundary errors.
package locate

import (
	"errors"
	"fmt"

	"coremap/internal/cmerr"
)

// Classified errors are the contract the rest of the file breaks.
func Locate(id int) error {
	if id < 0 {
		return cmerr.New(cmerr.Permanent, "locate", "bad core id %d", id)
	}
	return nil
}

// Exported boundary returning raw leaves.
func Validate(n int) error {
	if n < 0 {
		return errors.New("negative count") // want `unclassified errors.New leaf`
	}
	if n > 100 {
		return fmt.Errorf("locate: %d out of range", n) // want `unclassified fmt.Errorf leaf`
	}
	return nil
}

// Methods are boundaries too.
type Checker struct{}

func (Checker) Check(ok bool) error {
	if !ok {
		return errors.New("check failed") // want `unclassified errors.New leaf`
	}
	return nil
}

// The wrap rule applies everywhere, exported or not: %v flattens the
// class chain that errors.Is and cmerr.ClassOf walk.
func describe(err error) error {
	return fmt.Errorf("reconstruct failed: %v", err) // want `captures error "err" without %w`
}
