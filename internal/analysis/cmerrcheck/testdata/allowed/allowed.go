// Fixture: reviewed suppressions of the boundary rule. The cmerr import
// opts the package in; the //lint:allow directives must silence the
// findings (the analysistest harness fails on any surviving diagnostic).
package ilp

import (
	"errors"
	"fmt"

	"coremap/internal/cmerr"
)

// Classified construction keeps the import real for the type checker.
func Classified() error {
	return cmerr.New(cmerr.Transient, "ilp", "retryable probe fault")
}

// A sentinel compared by identity at its call sites never needs a
// class; the suppression records that review.
func Exhausted() error {
	return errors.New("ilp: search space exhausted") //lint:allow cmerrcheck sentinel compared by identity, never crosses the CLI boundary
}

// Suppression on the line above covers the return as well.
func Misconfigured(n int) error {
	if n < 0 {
		//lint:allow cmerrcheck programmer error surfaced to tests only, not a pipeline outcome
		return fmt.Errorf("ilp: negative budget %d", n)
	}
	return nil
}
