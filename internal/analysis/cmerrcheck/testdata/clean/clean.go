// Fixture: the sanctioned error-taxonomy patterns must stay unflagged.
// The clean fixture deliberately imports the real cmerr package so the
// patterns it blesses are the ones the pipeline actually uses.
package ilp

import (
	"fmt"

	"coremap/internal/cmerr"
)

// Classified construction at the boundary.
func CheckFeasible(n int) error {
	if n < 0 {
		return cmerr.New(cmerr.Permanent, "ilp", "assignment has %d values", n)
	}
	return nil
}

// Boundary wrap: Ensure stamps a class only when none is present.
func Solve(err error) error {
	return cmerr.Ensure(cmerr.Permanent, "ilp", err)
}

// Transparent %w wrapping keeps the chain intact.
func Expand(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("ilp: expand: %w", err)
}

// Unexported scratch leaves never cross the boundary directly.
func leaf() error { return fmt.Errorf("internal scratch marker") }

// Sentinels declared at package scope are legal (they are classified at
// the point of use or are themselves cmerr sentinels).
var errBudget = cmerr.Sentinel(cmerr.Permanent, "ilp: node budget exhausted")

// Double-%w joins keep both chains.
func Join(outer, inner error) error {
	return fmt.Errorf("%w: %w", outer, inner)
}

var _ = errBudget
