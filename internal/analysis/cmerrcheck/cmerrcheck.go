// Package cmerrcheck enforces the pipeline's error taxonomy (see
// internal/cmerr): every error that crosses an exported boundary of a
// pipeline-stage package must carry a cmerr class and provenance, and
// wrapping must preserve the class chain.
//
// Two rules:
//
//   - boundary rule (stage packages probe, locate, ilp, experiments,
//     covert): a return statement lexically inside an exported function
//     or method must not hand back a freshly built unclassified leaf —
//     errors.New(...), or fmt.Errorf(...) whose format has no %w. Such
//     leaves must be born classified via cmerr.New / cmerr.Ensure /
//     cmerr.Wrapf. fmt.Errorf with %w is a transparent wrapper and stays
//     legal: cmerr.ClassOf and errors.Is traverse it.
//
//   - wrap rule (every package): fmt.Errorf given an error-typed argument
//     but no %w in its constant format flattens the cause to text —
//     errors.Is, errors.As and cmerr.ClassOf all stop working through it.
//     This is how a classified Transient quietly degrades into an
//     unclassified string.
package cmerrcheck

import (
	"go/ast"
	"go/token"

	"coremap/internal/analysis"
)

// Analyzer is the cmerrcheck check. The wrap rule runs everywhere; the
// boundary rule's roster is derived, not hand-maintained: it applies to
// every package that imports internal/cmerr. Importing the taxonomy is
// the opt-in — a package that classifies some of its errors must
// classify all of its exported-boundary errors, and a new stage package
// is covered the moment it starts using cmerr.
var Analyzer = &analysis.Analyzer{
	Name: "cmerrcheck",
	Doc: "flags unclassified errors returned across exported pipeline-stage boundaries " +
		"(any package importing internal/cmerr) and fmt.Errorf wrapping that drops " +
		"the cmerr class chain (%w)",
	Run: run,
	Scope: &analysis.Scope{
		Doc: "every internal library package; the boundary rule additionally gates on the package importing internal/cmerr",
		Exclude: map[string]string{
			"coremap/internal/analysis/...": "the lint suite itself: analyzer errors are internal failures, not pipeline taxonomy",
		},
	},
}

// cmerrPkg is the taxonomy package whose import opts a package into the
// boundary rule.
const cmerrPkg = "coremap/internal/cmerr"

// importsCmerr reports whether the package under analysis imports the
// cmerr taxonomy (directly), which is the boundary rule's derived scope.
func importsCmerr(pass *analysis.Pass) bool {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == cmerrPkg {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	reported := make(map[token.Pos]bool)

	if importsCmerr(pass) {
		for _, fd := range analysis.ExportedFuncDecls(pass.Files) {
			checkBoundary(pass, fd, reported)
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || reported[call.Pos()] {
				return true
			}
			if ok, badArg := losesCause(pass, call); ok {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"fmt.Errorf captures error %q without %%w: the cmerr class and cause chain are lost; use %%w (or cmerr.Wrapf)",
					badArg)
			}
			return true
		})
	}
	return nil
}

// checkBoundary flags unclassified leaf errors returned directly from an
// exported stage function. Function literals are skipped: a closure's
// return feeds whatever invoked it, not the exported boundary.
func checkBoundary(pass *analysis.Pass, fd *ast.FuncDecl, reported map[token.Pos]bool) {
	analysis.InspectShallow(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok || !analysis.IsErrorType(pass.TypeOf(res)) {
				continue
			}
			if reason := unclassifiedLeaf(pass, call); reason != "" && !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"%s returns an unclassified %s across the %s stage boundary: construct it with cmerr.New/cmerr.Ensure so the class and provenance survive",
					fd.Name.Name, reason, pass.Pkg.Name())
			}
		}
		return true
	})
}

// unclassifiedLeaf reports why call builds an unclassified leaf error
// ("" when it does not): errors.New always, fmt.Errorf when its constant
// format carries no %w.
func unclassifiedLeaf(pass *analysis.Pass, call *ast.CallExpr) string {
	if analysis.CalleeIs(pass, call, "errors", "New") {
		return "errors.New leaf"
	}
	if analysis.CalleeIs(pass, call, "fmt", "Errorf") && len(call.Args) > 0 {
		if format, ok := analysis.ConstString(pass, call.Args[0]); ok &&
			!analysis.FormatHasVerb(format, 'w') {
			return "fmt.Errorf leaf (no %w)"
		}
	}
	return ""
}

// losesCause reports whether call is fmt.Errorf with an error-typed
// argument that its format string does not wrap with %w, naming the
// offending argument.
func losesCause(pass *analysis.Pass, call *ast.CallExpr) (bool, string) {
	if !analysis.CalleeIs(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return false, ""
	}
	format, ok := analysis.ConstString(pass, call.Args[0])
	if !ok || analysis.FormatHasVerb(format, 'w') {
		return false, ""
	}
	for _, arg := range call.Args[1:] {
		if analysis.IsErrorType(pass.TypeOf(arg)) {
			return true, exprLabel(pass, arg)
		}
	}
	return false, ""
}

func exprLabel(pass *analysis.Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.CallExpr:
		if fn := analysis.CalleeFunc(pass, x); fn != nil {
			return fn.Name() + "(...)"
		}
	}
	return "argument"
}
