package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"
)

// markFact is the package-level test fact.
type markFact struct{ Mark string }

func (*markFact) AFact() {}

// calledFact is the object-level test fact.
type calledFact struct{ Label string }

func (*calledFact) AFact() {}

// TestFactPropagationAcrossImportEdge pins the engine's core contract:
// a fact exported while analyzing a dependency package is visible when
// analyzing a package that imports it — even though the importer's view
// of the dependency is a distinct *types.Package materialized by the
// source importer, not the directly-loaded one.
//
// The dependency is the real, dependency-free coremap/internal/mesh
// package; the importer is the testdata/factuse fixture, which imports
// mesh and calls mesh.Distance.
func TestFactPropagationAcrossImportEdge(t *testing.T) {
	loader := NewLoader()
	meshPkgs, err := loader.LoadPatterns([]string{"coremap/internal/mesh"})
	if err != nil {
		t.Fatalf("loading mesh: %v", err)
	}
	if len(meshPkgs) != 1 {
		t.Fatalf("loaded %d packages for mesh, want 1", len(meshPkgs))
	}
	fixture, err := loader.LoadDir(filepath.Join("testdata", "factuse"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	exporter := &Analyzer{
		Name: "factexport",
		Doc:  "exports a package fact and an object fact on mesh.Distance",
		Run: func(pass *Pass) error {
			if pass.Pkg.Path() != "coremap/internal/mesh" {
				return nil
			}
			if err := pass.ExportPackageFact(&markFact{Mark: "mesh-analyzed"}); err != nil {
				return err
			}
			obj := pass.Pkg.Scope().Lookup("Distance")
			if obj == nil {
				t.Fatal("mesh.Distance not found")
			}
			return pass.ExportObjectFact(obj, &calledFact{Label: "distance"})
		},
	}

	var gotPkg, gotObj string
	importer := &Analyzer{
		Name: "factimport",
		Doc:  "imports the facts from the dependency edge",
		Run: func(pass *Pass) error {
			if pass.Pkg.Path() == "coremap/internal/mesh" {
				return nil
			}
			var pf markFact
			if pass.ImportPackageFact("coremap/internal/mesh", &pf) {
				gotPkg = pf.Mark
			}
			// Resolve the mesh.Distance the fixture actually calls: this
			// object belongs to the importer-materialized mesh package.
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj := pass.ObjectOf(sel.Sel)
					if fn, ok := obj.(*types.Func); ok && fn.Name() == "Distance" {
						var of calledFact
						if pass.ImportObjectFact(obj, &of) {
							gotObj = of.Label
						}
					}
					return true
				})
			}
			return nil
		},
	}

	// Deliberately pass the importer before its dependency: Run must
	// reorder by the import graph, not rely on input order.
	diags, err := Run([]*Package{fixture, meshPkgs[0]}, []*Analyzer{exporter, importer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if gotPkg != "mesh-analyzed" {
		t.Errorf("package fact did not flow across the import edge: got %q", gotPkg)
	}
	if gotObj != "distance" {
		t.Errorf("object fact did not flow across the import edge: got %q", gotObj)
	}
}

// TestObjectKeyStability pins the key forms facts are addressed by.
func TestObjectKeyStability(t *testing.T) {
	loader := NewLoader()
	pkgs, err := loader.LoadPatterns([]string{"coremap/internal/mesh"})
	if err != nil {
		t.Fatalf("loading mesh: %v", err)
	}
	scope := pkgs[0].Types.Scope()

	if key, ok := objectKey(scope.Lookup("Distance")); !ok || key != "Distance" {
		t.Errorf("package-level func key = %q, %v; want \"Distance\", true", key, ok)
	}
	grid := scope.Lookup("Grid").Type().(*types.Named)
	var method types.Object
	for i := 0; i < grid.NumMethods(); i++ {
		method = grid.Method(i)
		break
	}
	if method != nil {
		key, ok := objectKey(method)
		if !ok || key != "Grid."+method.Name() {
			t.Errorf("method key = %q, %v; want %q, true", key, ok, "Grid."+method.Name())
		}
	}
}

// TestScopeApplies pins the include-by-default semantics and the
// fixture-name fallback.
func TestScopeApplies(t *testing.T) {
	s := &Scope{
		Exclude: map[string]string{
			"coremap/internal/analysis/...": "the lint suite itself",
			"coremap/internal/hostif":       "boundary package",
		},
		FixtureNames: []string{"ilp", "probe"},
	}
	cases := []struct {
		path, name string
		want       bool
	}{
		{"coremap/internal/ilp", "ilp", true},
		{"coremap/internal/brandnew", "brandnew", true}, // linted by default
		{"coremap/internal/hostif", "hostif", false},
		{"coremap/internal/analysis", "analysis", false},
		{"coremap/internal/analysis/cfg", "cfg", false},
		{"coremap/cmd/coremap", "main", false},
		{"/tmp/testdata/flagged", "ilp", true},
		{"/tmp/testdata/flagged", "other", false},
	}
	for _, c := range cases {
		if got := s.Applies(c.path, c.name); got != c.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", c.path, c.name, got, c.want)
		}
	}
	var nilScope *Scope
	if !nilScope.Applies("anything", "main") {
		t.Error("nil scope must apply everywhere")
	}
}
