package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The full syntax is
//
//	//lint:allow <analyzer> <reason>
//
// written either as a trailing comment on the flagged line or as a
// standalone comment on the line directly above it. The reason is
// mandatory: a suppression without a recorded justification defeats the
// point of mechanically enforced invariants.
const allowPrefix = "lint:allow"

// An Allow is one parsed suppression directive.
type Allow struct {
	// File and Line locate the directive comment itself.
	File string
	Line int

	// Analyzer is the analyzer name the directive suppresses.
	Analyzer string

	// Reason is the recorded justification (everything after the
	// analyzer name, whitespace-trimmed).
	Reason string

	// Pos is the comment's position, used to report unused directives.
	Pos token.Pos

	// used records whether the directive suppressed any diagnostic.
	used bool
}

// covers reports whether the directive suppresses a diagnostic from
// analyzer at (file, line): same line, or the line directly below the
// directive.
func (a *Allow) covers(analyzer, file string, line int) bool {
	return a.Analyzer == analyzer && a.File == file &&
		(line == a.Line || line == a.Line+1)
}

// collectAllows parses every //lint:allow directive in files. Malformed
// directives (missing analyzer or missing reason) are returned as
// diagnostics attributed to the pseudo-analyzer "allow": a suppression
// that cannot name what it suppresses, or why, must not silently succeed.
func collectAllows(fset *token.FileSet, files []*ast.File) ([]*Allow, []Diagnostic) {
	var allows []*Allow
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Message:  "malformed //lint:allow directive: want `//lint:allow <analyzer> <reason>`",
						Position: pos,
					})
					continue
				}
				allows = append(allows, &Allow{
					File:     pos.Filename,
					Line:     pos.Line,
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
					Pos:      c.Pos(),
				})
			}
		}
	}
	return allows, malformed
}

// directiveText extracts the payload after "lint:allow" from a comment,
// or reports false when the comment is not an allow directive. Both
// `//lint:allow ...` (directive style, no space) and `// lint:allow ...`
// are accepted; block comments are not, matching go directive convention.
func directiveText(comment string) (string, bool) {
	if !strings.HasPrefix(comment, "//") {
		return "", false
	}
	body := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(body, allowPrefix) {
		return "", false
	}
	rest := body[len(allowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. "lint:allowance"
	}
	return strings.TrimSpace(rest), true
}

// applyAllows filters diags through the directives, marking the
// directives that fired. It returns the surviving diagnostics plus one
// "unused suppression" diagnostic per directive that matched nothing —
// stale allows otherwise accumulate and mask future regressions.
func applyAllows(diags []Diagnostic, allows []*Allow) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.covers(d.Analyzer, d.Position.Filename, d.Position.Line) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		if !a.used {
			kept = append(kept, Diagnostic{
				Pos:      a.Pos,
				Analyzer: "allow",
				Message:  "unused //lint:allow " + a.Analyzer + " directive suppresses nothing; remove it",
				Position: token.Position{Filename: a.File, Line: a.Line, Column: 1},
			})
		}
	}
	return kept
}
