// Fixture: the no-false-positive surface of obscheck. Every shape here
// is one the real pipeline uses; none may be flagged.
package obsfix

import (
	"context"

	"coremap/internal/obs"
)

var cond bool

// The canonical shape: defer right after Start covers every path.
func deferred(ctx context.Context) (err error) {
	ctx, span := obs.Start(ctx, "fix/deferred")
	defer span.End(err)
	if cond {
		return nil
	}
	_ = ctx
	return nil
}

// Ending inside a deferred closure covers every path too (the locate
// reconstruct shape: observe a latency, then end).
func deferredClosure(ctx context.Context, reg *obs.Registry) {
	_, span := obs.Start(ctx, "fix/closure")
	defer func() {
		reg.Histogram("fix/closure_us").Observe(1)
		span.End(nil)
	}()
	if cond {
		return
	}
}

// Explicit End before every return is fine without a defer.
func endOnEveryPath(ctx context.Context) error {
	_, span := obs.Start(ctx, "fix/explicit")
	if cond {
		span.End(nil)
		return nil
	}
	span.End(nil)
	return nil
}

// A span handed to a helper escapes: the framework cannot see where it
// ends, so it stays silent (the ilp solver records through its span).
func escaping(ctx context.Context) {
	_, span := obs.Start(ctx, "fix/escaping")
	defer span.End(nil)
	record(span)
}

func record(s *obs.Span) { s.SetAttr("k", 1) }

// SetAttr/SetAttrStr between Start and End are ordinary span uses.
func attrs(ctx context.Context) {
	_, span := obs.Start(ctx, "fix/attrs")
	defer span.End(nil)
	span.SetAttr("k", 1)
	span.SetAttrStr("s", "v")
}

// Well-formed names: multi-segment, lowercase, digits, _ and -.
func goodNames(ctx context.Context, reg *obs.Registry) {
	_, span := obs.Start(ctx, "fix/multi/segment_2")
	defer span.End(nil)
	obs.Event(ctx, "fix/experiment-failed", nil)
	reg.Counter("fix/ops/rdmsr").Inc()
	reg.Histogram("fix/solve_us").Observe(1)
}

// A constant prefix that already carries the stage separator may be
// completed dynamically (the probe progress shape).
func goodPrefix(reg *obs.Registry, stage string) {
	reg.Counter("fix/progress/" + stage).Inc()
}

// Fully dynamic names are out of the rule's reach by design (memo's
// caller-supplied prefix).
func dynamicName(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix + "/hits").Set(1)
}

// Vecs with literal keys and matching With arity, chained and through a
// local.
func goodVecs(reg *obs.Registry) {
	reg.CounterVec("fix/surveys", "backend").With("mesh").Inc()
	opUS := reg.HistogramVec("fix/op_us", "op")
	opUS.With("rdmsr").Observe(3)
	byCPU := reg.GaugeVec("fix/temp", "cpu", "zone")
	byCPU.With("0", "core").Set(41)
}
