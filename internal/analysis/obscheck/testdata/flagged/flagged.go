// Fixture: telemetry-discipline violations. The real obs package is
// analyzed alongside as a dependency, so the callee resolution the rules
// rely on runs over genuine types, not stubs.
package obsfix

import (
	"context"

	"coremap/internal/obs"
)

var cond bool

// A span with an End that an early return path skips.
func leakyEarlyReturn(ctx context.Context) error {
	_, span := obs.Start(ctx, "fix/leaky") // want `span "fix/leaky" is not ended on every path`
	if cond {
		return nil
	}
	span.End(nil)
	return nil
}

// A span discarded outright never reaches the trace.
func discarded(ctx context.Context) {
	obs.Start(ctx, "fix/dropped") // want `obs\.Start result discarded`
}

// Blank-identifier discard is the same bug with extra steps.
func blankSpan(ctx context.Context) {
	_, _ = obs.Start(ctx, "fix/blank") // want `obs\.Start result discarded`
}

// A span ended only inside one switch case leaks through the others.
func leakySwitch(ctx context.Context, mode int) {
	_, span := obs.Start(ctx, "fix/switchy") // want `span "fix/switchy" is not ended on every path`
	switch mode {
	case 0:
		span.End(nil)
	case 1:
		// forgot
	}
}

// Names without a stage segment cannot be grouped by the per-stage
// report, the flight recorder, or coremaptop.
func badNames(ctx context.Context, reg *obs.Registry) {
	_, span := obs.Start(ctx, "noslash") // want `obs name "noslash" is not stage/metric form`
	defer span.End(nil)
	reg.Counter("fix/Upper").Inc()         // want `obs name "fix/Upper" is not stage/metric form`
	reg.Gauge("fix//empty").Set(1)         // want `obs name "fix//empty" is not stage/metric form`
	obs.Event(ctx, "one segment", nil)     // want `obs name "one segment" is not stage/metric form`
	reg.Histogram("fix/sp ace").Observe(1) // want `obs name "fix/sp ace" is not stage/metric form`
}

// A constant prefix completed dynamically must already carry the stage
// separator, or the dynamic suffix decides the stage.
func badPrefix(reg *obs.Registry, suffix string) {
	reg.Counter("fix" + suffix).Inc() // want `obs name prefix "fix" must be lowercase`
}

// Label keys obey the exposition grammar, at compile time.
func badLabels(reg *obs.Registry, dyn string) {
	reg.CounterVec("fix/vec_a", "Op").With("x").Inc()       // want `obs label key "Op" must match`
	reg.GaugeVec("fix/vec_b", "1op").With("x").Set(1)       // want `obs label key "1op" must match`
	reg.HistogramVec("fix/vec_c", dyn).With("x").Observe(1) // want `obs label keys must be string literals`
}

// With arity must match the declared key count — chained or through a
// local variable.
func badArity(reg *obs.Registry) {
	reg.CounterVec("fix/vec_d", "a", "b").With("only-one").Inc() // want `With has 1 label values for a vec declared with 2 keys`
	v := reg.GaugeVec("fix/vec_e", "k")
	v.With("x", "y").Set(1) // want `With has 2 label values for a vec declared with 1 keys`
}
