// Fixture: the suppression contract. A process-lifetime span stays
// silent under //lint:allow obscheck, while an unrelated violation in
// the same file remains flagged.
package obsfix

import (
	"context"

	"coremap/internal/obs"
)

// A span covering the whole process lifetime is never explicitly ended;
// the reviewed suppression records why that is intentional.
func processSpan(ctx context.Context) context.Context {
	//lint:allow obscheck process-lifetime span: ended implicitly at exit, the trace sink flushes unended spans
	ctx, _ = obs.Start(ctx, "fix/process")
	return ctx
}

var cond bool

// The suppression is scoped to its line: this leak is still a leak.
func stillFlagged(ctx context.Context) {
	_, span := obs.Start(ctx, "fix/still-leaky") // want `span "fix/still-leaky" is not ended on every path`
	if cond {
		return
	}
	span.End(nil)
}
