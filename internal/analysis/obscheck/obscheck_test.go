package obscheck_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis"
	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/gosync"
	"coremap/internal/analysis/obscheck"
)

// obsDeps loads the real obs package alongside the fixture so callee
// resolution runs over genuine types; a diagnostic on obs itself would
// fail the test, pinning that the substrate stays clean too. gosync
// rides along because obs carries a //lint:allow gosync directive that
// would otherwise be reported as unused.
var obsDeps = []string{"coremap/internal/obs"}

var analyzers = []*analysis.Analyzer{gosync.Analyzer, obscheck.Analyzer}

// TestFlagged pins the violation shapes: spans leaked past an early
// return or a switch, discarded spans, malformed names and prefixes,
// bad label keys, and With arity mismatches.
func TestFlagged(t *testing.T) {
	analysistest.RunWithDeps(t, filepath.Join("testdata", "flagged"), obsDeps, analyzers...)
}

// TestClean pins the no-false-positive surface: deferred End (direct
// and inside a closure), End on every explicit path, escaping spans,
// dynamic names, constant prefixes with a stage separator, and
// well-formed vecs.
func TestClean(t *testing.T) {
	analysistest.RunWithDeps(t, filepath.Join("testdata", "clean"), obsDeps, analyzers...)
}

// TestAllowed pins the suppression contract: a reviewed process-lifetime
// span stays silent under //lint:allow obscheck while a leak in the same
// file remains flagged.
func TestAllowed(t *testing.T) {
	analysistest.RunWithDeps(t, filepath.Join("testdata", "allowed"), obsDeps, analyzers...)
}
