// Package obscheck enforces the telemetry discipline of the obs
// substrate. Three rules:
//
//   - span-end rule: every span returned by obs.Start must be ended on
//     every control-flow path of the function that started it — via a
//     defer (directly or inside a deferred closure) or an End call that
//     every path to the exit passes through. A span that is discarded
//     outright is flagged too. A span whose variable escapes the
//     function in any way other than End/SetAttr calls (stored, passed
//     to a helper, returned) is skipped conservatively: the framework
//     cannot see where it ends, and this suite never guesses.
//
//   - name-grammar rule: every compile-time constant name handed to
//     obs.Start, obs.Event or a Registry metric constructor (Counter,
//     Gauge, Histogram, GaugeFunc, CounterVec, GaugeVec, HistogramVec)
//     must be at least two slash-separated lowercase segments of
//     [a-z0-9_-] — "stage/metric". The stage segment is what the
//     per-stage report, the flight recorder and coremaptop group by, so
//     a malformed name silently falls out of every aggregation. A
//     constant prefix in a concatenation ("probe/progress/"+stage) must
//     itself be lowercase and already contain the stage separator;
//     fully dynamic names are skipped.
//
//   - label rule: label keys passed to vec constructors must be string
//     literals matching [a-z][a-z0-9_]* (the exposition-format key
//     grammar obs itself enforces at runtime — the lint moves the error
//     to compile time), and a With call whose vec is resolvable in the
//     same function (a chained constructor call or a local variable
//     assigned from one) must pass exactly as many values as the
//     constructor declared keys. Runtime misuse is not a panic — obs
//     returns a no-op handle and bumps obs/vec_errors — which is
//     exactly why the mistake belongs to the lint: the series would
//     just silently never exist.
package obscheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"coremap/internal/analysis"
	"coremap/internal/analysis/cfg"
)

// Analyzer is the obscheck check.
var Analyzer = &analysis.Analyzer{
	Name: "obscheck",
	Doc: "enforces telemetry discipline: spans ended on every path, " +
		"stage/metric name grammar on constant obs names, " +
		"literal well-formed vec label keys and matching With arity",
	Run: run,
	Scope: &analysis.Scope{
		Doc:             "every internal library package and the commands (telemetry is wired in both)",
		IncludeCommands: true,
		Exclude: map[string]string{
			"coremap/internal/analysis/...": "the lint suite itself: batch tooling with no telemetry",
			"coremap/internal/obs":          "the substrate: it manipulates spans and dynamic names generically behind the API the rule checks callers of",
		},
	},
}

const obsPath = "coremap/internal/obs"

// segmentRe is one name segment; nameRe is a constant prefix that may
// legally be completed by a dynamic suffix.
var (
	segmentRe  = regexp.MustCompile(`^[a-z0-9_-]+$`)
	prefixRe   = regexp.MustCompile(`^[a-z0-9_/-]+$`)
	labelKeyRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// metricCtors are the Registry methods taking a metric name first; the
// value is the index the label keys start at for vec constructors, or 0
// for plain metrics.
var metricCtors = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "GaugeFunc": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

// vecCtors are the constructors whose trailing arguments are label keys
// and whose handles answer With.
var vecCtors = map[string]bool{
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkScope(pass, lit.Body)
				}
				return true
			})
		}
		// Names and labels also appear outside function bodies (package
		// variable initializers); the per-call rules cover the whole file.
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkName(pass, call)
				checkLabels(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkScope applies the per-function rules — span lifetime and With
// arity — to one body, treating nested closures as separate scopes (a
// closure runs on its own schedule, so spans it starts are its own to
// end).
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	checkSpans(pass, body)
	checkWithArity(pass, body)
}

// --- span-end rule ---

func checkSpans(pass *analysis.Pass, body *ast.BlockStmt) {
	var g *cfg.Graph // built lazily: most bodies start no spans
	analysis.InspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !analysis.CalleeIs(pass, call, obsPath, "Start") {
			return true
		}
		name := spanName(pass, call)
		spanObj := spanVar(pass, body, call)
		if spanObj == nil {
			pass.Reportf(call.Pos(),
				"obs.Start result discarded: keep the span and end it (defer span.End(err)) — an unended span never reaches the trace or the flight recorder")
			return true
		}
		if spanEscapes(pass, body, spanObj) {
			return true // ended elsewhere for all we know; stay silent
		}
		if g == nil {
			g = cfg.New(body)
		}
		if endedByDefer(pass, g, spanObj) {
			return true
		}
		if leaksToExit(pass, g, call, spanObj) {
			pass.Reportf(call.Pos(),
				"span %s is not ended on every path: add `defer span.End(err)` right after obs.Start, or End it before each return", name)
		}
		return true
	})
}

// spanName renders the span's constant name for diagnostics, or "span".
func spanName(pass *analysis.Pass, call *ast.CallExpr) string {
	if len(call.Args) >= 2 {
		if s, ok := analysis.ConstString(pass, call.Args[1]); ok {
			return "\"" + s + "\""
		}
	}
	return "span"
}

// spanVar finds the variable the Start call's span result is bound to:
// the second LHS of the enclosing assignment. nil means the span is
// discarded (blank, or the call is a bare statement).
func spanVar(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr) types.Object {
	var obj types.Object
	analysis.InspectShallow(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != call || len(as.Lhs) != 2 {
			return true
		}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			obj = pass.ObjectOf(id)
		}
		return false
	})
	return obj
}

// spanEscapes reports whether the span variable is used for anything
// besides being defined and having End or SetAttr invoked on it; such a
// span may legitimately be ended by whoever it escaped to.
func spanEscapes(pass *analysis.Pass, body *ast.BlockStmt, spanObj types.Object) bool {
	accounted := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.ObjectOf(id) == spanObj {
					accounted[id] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "End" || sel.Sel.Name == "SetAttr" || sel.Sel.Name == "SetAttrStr") {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.ObjectOf(id) == spanObj {
					accounted[id] = true
				}
			}
		}
		return true
	})
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == spanObj && !accounted[id] {
			escapes = true
		}
		return true
	})
	return escapes
}

// endedByDefer reports whether any deferred call in the body ends the
// span: `defer span.End(err)` directly, or a deferred closure whose body
// contains a span.End call.
func endedByDefer(pass *analysis.Pass, g *cfg.Graph, spanObj types.Object) bool {
	for _, d := range g.Defers {
		if isEndCall(pass, d.Call, spanObj) {
			return true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && isEndCall(pass, call, spanObj) {
					found = true
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// isEndCall reports whether call is spanObj.End(...).
func isEndCall(pass *analysis.Pass, call *ast.CallExpr, spanObj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.ObjectOf(id) == spanObj
}

// leaksToExit walks the CFG from the Start call looking for a path to
// the exit block that never passes a span.End call.
func leaksToExit(pass *analysis.Pass, g *cfg.Graph, start *ast.CallExpr, spanObj types.Object) bool {
	startBlk := g.BlockOf(start.Pos())
	if startBlk == nil {
		return false // position not in the graph; stay silent
	}
	// Nodes after the Start call within its own block.
	past := false
	for _, n := range startBlk.Nodes {
		if !past {
			if n.Pos() <= start.Pos() && start.End() <= n.End() {
				past = true
			}
			continue
		}
		if nodeEnds(pass, n, spanObj) {
			return false
		}
	}
	// DFS over successors; a block containing an End call terminates its
	// branch of the search (every path through it is covered).
	visited := map[*cfg.Block]bool{}
	var leak func(b *cfg.Block) bool
	leak = func(b *cfg.Block) bool {
		if b == g.Exit {
			return true
		}
		if visited[b] {
			return false
		}
		visited[b] = true
		for _, n := range b.Nodes {
			if nodeEnds(pass, n, spanObj) {
				return false
			}
		}
		for _, s := range b.Succs {
			if leak(s) {
				return true
			}
		}
		return false
	}
	for _, s := range startBlk.Succs {
		if leak(s) {
			return true
		}
	}
	return false
}

// nodeEnds reports whether the block node contains a span.End call.
func nodeEnds(pass *analysis.Pass, n ast.Node, spanObj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false // a closure's End runs on its own schedule
		}
		if call, ok := c.(*ast.CallExpr); ok && isEndCall(pass, call, spanObj) {
			found = true
		}
		return true
	})
	return found
}

// --- name-grammar rule ---

// checkName validates the constant name (or constant prefix) handed to
// obs.Start, obs.Event, or a Registry metric constructor.
func checkName(pass *analysis.Pass, call *ast.CallExpr) {
	var nameArg ast.Expr
	switch {
	case analysis.CalleeIs(pass, call, obsPath, "Start"),
		analysis.CalleeIs(pass, call, obsPath, "Event"):
		if len(call.Args) < 2 {
			return
		}
		nameArg = call.Args[1]
	case isRegistryMethod(pass, call):
		if len(call.Args) < 1 {
			return
		}
		nameArg = call.Args[0]
	default:
		return
	}
	if name, ok := analysis.ConstString(pass, nameArg); ok {
		if !validFullName(name) {
			pass.Reportf(nameArg.Pos(),
				"obs name %q is not stage/metric form: want two or more slash-separated lowercase segments of [a-z0-9_-], so per-stage reports and the flight recorder can group it", name)
		}
		return
	}
	// Concatenation with a constant head: the head must already be a
	// well-formed prefix carrying the stage separator.
	if prefix, pos, ok := constHead(pass, nameArg); ok {
		if !prefixRe.MatchString(prefix) || !strings.Contains(prefix, "/") {
			pass.Reportf(pos,
				"obs name prefix %q must be lowercase [a-z0-9_/-] and already contain the stage separator '/'", prefix)
		}
	}
}

// isRegistryMethod reports whether call invokes one of the obs.Registry
// metric constructors.
func isRegistryMethod(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || !metricCtors[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil &&
		analysis.IsNamedType(sig.Recv().Type(), obsPath, "Registry")
}

// validFullName checks the complete stage/metric grammar.
func validFullName(name string) bool {
	segs := strings.Split(name, "/")
	if len(segs) < 2 {
		return false
	}
	for _, s := range segs {
		if !segmentRe.MatchString(s) {
			return false
		}
	}
	return true
}

// constHead returns the leftmost compile-time-constant operand of a
// string concatenation, with its position. ok is false for fully
// dynamic names, which the rule skips.
func constHead(pass *analysis.Pass, e ast.Expr) (string, token.Pos, bool) {
	for {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return "", 0, false
		}
		if s, ok := analysis.ConstString(pass, bin.X); ok {
			return s, bin.X.Pos(), true
		}
		e = bin.X
	}
}

// --- label rule ---

// checkLabels validates the label-key arguments of vec constructors.
func checkLabels(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || !vecCtors[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !analysis.IsNamedType(sig.Recv().Type(), obsPath, "Registry") {
		return
	}
	for _, arg := range call.Args[1:] {
		key, ok := analysis.ConstString(pass, arg)
		if !ok {
			pass.Reportf(arg.Pos(),
				"obs label keys must be string literals so cardinality is reviewable in the source")
			continue
		}
		if !labelKeyRe.MatchString(key) {
			pass.Reportf(arg.Pos(),
				"obs label key %q must match [a-z][a-z0-9_]* (the exposition key grammar; obs would drop the series at runtime)", key)
		}
	}
}

// checkWithArity pins With calls against the declared key count when the
// vec is resolvable within the function: either a chained constructor
// call or a local variable assigned (exactly once) from one.
func checkWithArity(pass *analysis.Pass, body *ast.BlockStmt) {
	// Local vec variables: object -> declared key count, -1 once the
	// variable is reassigned and the count stops being trustworthy.
	keyCounts := make(map[types.Object]int)
	analysis.InspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isVecCtor(pass, call) {
			if _, seen := keyCounts[obj]; seen {
				keyCounts[obj] = -1
			} else {
				keyCounts[obj] = len(call.Args) - 1
			}
		} else if _, seen := keyCounts[obj]; seen {
			keyCounts[obj] = -1
		}
		return true
	})

	analysis.InspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isWithCall(pass, call) {
			return true
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		want := -1
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.CallExpr:
			if isVecCtor(pass, recv) {
				want = len(recv.Args) - 1
			}
		case *ast.Ident:
			if c, ok := keyCounts[pass.ObjectOf(recv)]; ok {
				want = c
			}
		}
		if want >= 0 && len(call.Args) != want {
			pass.Reportf(call.Pos(),
				"With has %d label values for a vec declared with %d keys: obs would return a no-op handle and the series would never exist", len(call.Args), want)
		}
		return true
	})
}

// isVecCtor reports whether call is a Registry vec constructor.
func isVecCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || !vecCtors[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && analysis.IsNamedType(sig.Recv().Type(), obsPath, "Registry")
}

// isWithCall reports whether call is With on one of the obs vec types.
func isWithCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || fn.Name() != "With" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	for _, t := range []string{"CounterVec", "GaugeVec", "HistogramVec"} {
		if analysis.IsNamedType(sig.Recv().Type(), obsPath, t) {
			return true
		}
	}
	return false
}
