package ctxflow_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/ctxflow"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "flagged"), ctxflow.Analyzer)
}

// TestClean pins the no-false-positive contract: nil-guard defaults,
// ctx-observing loops, bound-host loops and pure computation stay
// silent.
func TestClean(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "clean"), ctxflow.Analyzer)
}

// TestAllowed pins the suppression contract: //lint:allow ctxflow
// silences the root and loop rules, trailing or on the line above.
func TestAllowed(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "allowed"), ctxflow.Analyzer)
}
