// Package ctxflow enforces the pipeline's cancellation discipline: every
// long-running operation observes its caller's context (see DESIGN.md
// §6). Three rules:
//
//   - root rule: context.Background() / context.TODO() must not appear in
//     library (non-main) packages — a stage that manufactures its own
//     root detaches itself from the command's timeout and signal
//     handling. The defensive-default idiom
//
//     if ctx == nil { ctx = context.Background() }
//
//     is recognized and stays legal: it normalizes a caller's nil, it
//     does not detach anything.
//
//   - position rule (every package): a context.Context parameter must be
//     the function's first parameter, per Go convention and so the
//     analyzers (and readers) can find it.
//
//   - loop rule (every package): inside a function that takes a
//     context, a loop that dispatches through an interface method — a
//     platform, monitor or host-like boundary, i.e. the calls that can
//     block or measure — must observe cancellation: by referencing the context (ctx.Err, select on
//     ctx.Done, passing ctx along) or by operating through a
//     hostif.Host/HostCtx value, whose Bind/WithContext decorators check
//     the context on every operation. Loops over in-memory data (decode
//     passes, model building, report printing) are pure computation on
//     the caller's schedule and stay legal however long they run — the
//     pipeline cancels at operation boundaries, not mid-arithmetic.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"coremap/internal/analysis"
)

// Analyzer is the ctxflow check. The scope is include-by-default: the
// loop rule is self-limiting (it fires only inside ctx-taking functions
// whose loops dispatch through an interface), so packages without host
// boundaries produce nothing, and a new stage package is covered from
// its first commit instead of waiting for a roster edit.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags detached context roots in library packages, misplaced context parameters, " +
		"and loops in ctx-taking functions that never observe cancellation",
	Run: run,
	Scope: &analysis.Scope{
		Doc: "every internal library package (the loop rule fires only on interface dispatch in ctx-taking functions)",
		Exclude: map[string]string{
			"coremap/internal/analysis/...": "the lint suite itself: batch AST tooling with no host boundaries or cancellable loops",
		},
	},
}

func run(pass *analysis.Pass) error {
	isLibrary := pass.Pkg.Name() != "main"
	exemptRoots := collectNilGuardRoots(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isLibrary && !exemptRoots[n.Pos()] {
					checkRoot(pass, n)
				}
			case *ast.FuncDecl:
				if n.Type != nil {
					checkParamPosition(pass, n.Type)
				}
			case *ast.FuncLit:
				checkParamPosition(pass, n.Type)
			}
			return true
		})
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLoops(pass, fd)
			}
		}
	}
	return nil
}

// checkRoot flags context.Background() / context.TODO().
func checkRoot(pass *analysis.Pass, call *ast.CallExpr) {
	for _, name := range []string{"Background", "TODO"} {
		if analysis.CalleeIs(pass, call, "context", name) {
			pass.Reportf(call.Pos(),
				"context.%s() creates a detached root in a library package: accept a ctx from the caller (commands own the root)",
				name)
		}
	}
}

// collectNilGuardRoots records the positions of Background/TODO calls
// that implement the `if ctx == nil { ctx = context.Background() }`
// defensive default, which the root rule exempts.
func collectNilGuardRoots(pass *analysis.Pass) map[token.Pos]bool {
	exempt := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			guarded := nilComparedContext(pass, ifs.Cond)
			if guarded == nil {
				return true
			}
			for _, s := range ifs.Body.List {
				as, ok := s.(*ast.AssignStmt)
				if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					continue
				}
				lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
				if !ok || pass.ObjectOf(lhs) != guarded {
					continue
				}
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					exempt[call.Pos()] = true
				}
			}
			return true
		})
	}
	return exempt
}

// nilComparedContext returns the context-typed object compared against
// nil in cond (`ctx == nil`), or nil.
func nilComparedContext(pass *analysis.Pass, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		id, ok := ast.Unparen(pair[0]).(*ast.Ident)
		if !ok {
			continue
		}
		if nilIdent, ok := ast.Unparen(pair[1]).(*ast.Ident); !ok || nilIdent.Name != "nil" {
			continue
		}
		if obj := pass.ObjectOf(id); obj != nil && analysis.IsContextType(obj.Type()) {
			return obj
		}
	}
	return nil
}

// checkParamPosition flags a context.Context parameter that is not the
// first parameter.
func checkParamPosition(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	index := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if analysis.IsContextType(pass.TypeOf(field.Type)) && index > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter (found at position %d)", index+1)
		}
		index += n
	}
}

// checkLoops flags loops in ctx-taking functions that dispatch through
// interface methods but never observe cancellation.
func checkLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	ctxObjs := contextParams(pass, fd)
	if len(ctxObjs) == 0 {
		return
	}
	analysis.InspectShallow(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		if callsBoundHost(pass, body) {
			return false // every host op is a cancellation point
		}
		op := interfaceDispatch(pass, body)
		if op == "" {
			return true // pure computation; look at nested loops anyway
		}
		if analysis.UsesAnyObject(pass, body, ctxObjs) || usesAnyContext(pass, body) {
			return false // this loop observes ctx; inner loops inherit that
		}
		pass.Reportf(n.Pos(),
			"loop dispatches %s through an interface but never observes cancellation: check ctx.Err() (or pass ctx / use a Bind-decorated host) inside the loop",
			op)
		return false
	})
}

func contextParams(pass *analysis.Pass, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if !analysis.IsContextType(pass.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.ObjectOf(name); obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// interfaceDispatch returns the name of the first method the body calls
// on an interface-typed receiver (including inside nested closures —
// work is work regardless of packaging), or "". Interface dispatch is
// the shape of the pipeline's blocking boundaries: a platform, monitor
// or host behind an interface can measure, retry or sleep, so a loop of
// such calls needs a cancellation point. Methods on context.Context and
// error values are exempt — the former are the observation itself, the
// latter are plain accessors.
func interfaceDispatch(pass *analysis.Pass, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := pass.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			return true
		}
		if analysis.IsContextType(t) || analysis.IsErrorType(t) {
			return true
		}
		found = sel.Sel.Name
		return false
	})
	return found
}

// usesAnyContext reports whether the body references any context-typed
// value at all (e.g. a stored p.ctx field rather than the parameter).
func usesAnyContext(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if ok && analysis.IsContextType(pass.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// callsBoundHost reports whether the body calls a method on a
// hostif.Host or hostif.HostCtx value; the pipeline's Bind/WithContext
// decorators make every such operation a cancellation point.
func callsBoundHost(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			t := pass.TypeOf(sel.X)
			if t != nil && (analysis.IsNamedType(t, "coremap/internal/hostif", "Host") ||
				analysis.IsNamedType(t, "coremap/internal/hostif", "HostCtx")) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
