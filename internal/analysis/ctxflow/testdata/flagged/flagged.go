// Fixture: context-discipline violations. The package name opts into
// the loop rule (probe is a pipeline stage).
package probe

import "context"

// sampler is an interface boundary: dispatch through it can block or
// measure, so loops of such calls need a cancellation point.
type sampler interface {
	Sample(cpu int) error
}

// Detached root in a library package: the stage escapes the command's
// timeout and signal handling.
func Detached() context.Context {
	return context.Background() // want `detached root`
}

// TODO roots are no better.
func Todo() context.Context {
	return context.TODO() // want `detached root`
}

// A context parameter anywhere but first is a misplaced context.
func Measure(cpu int, ctx context.Context) error { // want `first parameter`
	return ctx.Err()
}

// Function literals follow the same convention.
var handler = func(n int, ctx context.Context) {} // want `first parameter`

// A measurement loop that never observes cancellation: neither ctx nor a
// Bind-decorated host appears in the body.
func Sweep(ctx context.Context, m sampler, cores []int) error {
	for _, c := range cores { // want `never observes cancellation`
		if err := m.Sample(c); err != nil {
			return err
		}
	}
	return nil
}

// Packaging the dispatch in a closure changes nothing: work is work.
func SweepDeferred(ctx context.Context, m sampler, cores []int) error {
	for _, c := range cores { // want `never observes cancellation`
		f := func() error { return m.Sample(c) }
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}
