// Fixture: reviewed suppressions of the root and loop rules. The
// //lint:allow directives must silence the findings (the analysistest
// harness fails on any surviving diagnostic).
package probe

import "context"

type monitor interface{ Sample() int }

// A documented detached root: the process-lifetime telemetry flusher
// deliberately outlives any one command context.
func FlusherRoot() context.Context {
	return context.Background() //lint:allow ctxflow process-lifetime telemetry root, documented in DESIGN.md §6
}

// A bounded, non-blocking drain loop: at most eight samples, none of
// which can block, so a cancellation point would buy nothing.
func Drain(ctx context.Context, m monitor) int {
	total := 0
	//lint:allow ctxflow bounded drain: eight non-blocking samples
	for i := 0; i < 8; i++ {
		total += m.Sample()
	}
	return total
}
