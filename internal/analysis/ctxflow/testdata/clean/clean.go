// Fixture: sanctioned context patterns that must stay unflagged.
package covert

import (
	"context"
	"fmt"
	"strings"

	"coremap/internal/hostif"
)

func step(context.Context, int) error { return nil }

// sampler is an interface boundary whose loops must observe ctx.
type sampler interface {
	Sample(cpu int) error
}

// The defensive nil-guard default is legal: it normalizes a caller's
// nil, it does not detach the stage from a live caller context.
func Run(ctx context.Context, cores []int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, c := range cores {
		if err := step(ctx, c); err != nil {
			return err
		}
	}
	return nil
}

// Polling ctx.Err at the loop head observes cancellation, so interface
// dispatch in the body is legal.
func Poll(ctx context.Context, m sampler, cores []int) error {
	for _, c := range cores {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := m.Sample(c); err != nil {
			return err
		}
	}
	return nil
}

// Operations through a hostif.Host observe ctx on every call via the
// Bind/WithContext decorators.
func Warm(ctx context.Context, h hostif.Host, addrs []uint64) error {
	h = hostif.Bind(ctx, h)
	for _, a := range addrs {
		if err := h.Load(0, a); err != nil {
			return err
		}
	}
	return nil
}

// Loops over in-memory data calling concrete methods and package
// functions are pure computation on the caller's schedule: the pipeline
// cancels at operation boundaries, not mid-arithmetic.
func Report(ctx context.Context, xs []int) string {
	_ = ctx
	var b strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&b, "%d\n", x)
	}
	return b.String()
}

// Pure computation loops (no calls) need no cancellation point.
func Sum(ctx context.Context, xs []int) int {
	_ = ctx
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Context-free functions are outside the loop rule: they cannot observe
// what they were never given (ctxflow's boundary rules police who must
// accept a context).
func Fold(xs []int, f func(int) int) int {
	acc := 0
	for _, x := range xs {
		acc += f(x)
	}
	return acc
}
