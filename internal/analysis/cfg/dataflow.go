package cfg

// Forward runs an iterative forward-dataflow fixpoint over g and returns
// the state at entry to each block, indexed like Blocks. The lattice is
// supplied by the caller:
//
//   - entry is the state at the function's entry block;
//   - join merges the out-states of a block's predecessors (set
//     intersection for must-analyses like "locks held", union for
//     may-analyses);
//   - equal detects convergence;
//   - transfer computes a block's out-state from its in-state, typically
//     by folding over blk.Nodes.
//
// Unreachable blocks keep the zero value of S. transfer must be pure
// (called repeatedly until the fixpoint), and join must be monotone for
// termination — both hold for the finite set-lattices the analyzers use.
func Forward[S any](g *Graph, entry S, join func(a, b S) S, equal func(a, b S) bool, transfer func(blk *Block, in S) S) []S {
	rpo := g.reversePostorder()
	in := make([]S, len(g.Blocks))
	out := make([]S, len(g.Blocks))
	hasOut := make([]bool, len(g.Blocks))

	in[g.Entry.Index] = entry
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			s := in[blk.Index]
			if blk != g.Entry {
				first := true
				for _, p := range blk.Preds {
					if !hasOut[p.Index] {
						continue
					}
					if first {
						s = out[p.Index]
						first = false
					} else {
						s = join(s, out[p.Index])
					}
				}
				if first {
					// No processed predecessor yet; keep the current
					// in-state (zero on the first sweep).
					s = in[blk.Index]
				}
				in[blk.Index] = s
			}
			o := transfer(blk, s)
			if !hasOut[blk.Index] || !equal(o, out[blk.Index]) {
				out[blk.Index] = o
				hasOut[blk.Index] = true
				changed = true
			}
		}
	}
	return in
}
