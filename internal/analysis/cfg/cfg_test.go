package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// blockByComment returns the first block with the given comment.
func blockByComment(t *testing.T, g *Graph, comment string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Comment == comment {
			return b
		}
	}
	t.Fatalf("no block %q in graph:\n%s", comment, g)
	return nil
}

// containsCall reports whether the block contains a call to the named
// function.
func containsCall(b *Block, name string) bool {
	for _, n := range b.Nodes {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// blockCalling finds the unique reachable block containing a call to
// name.
func blockCalling(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	var hit *Block
	for _, b := range g.Blocks {
		if containsCall(b, name) {
			if hit != nil {
				t.Fatalf("call %s in two blocks (%d and %d)", name, hit.Index, b.Index)
			}
			hit = b
		}
	}
	if hit == nil {
		t.Fatalf("no block calls %s in graph:\n%s", name, g)
	}
	return hit
}

func TestBranchDominance(t *testing.T) {
	// pre() dominates both arms and the join; then() dominates neither
	// the join nor else().
	g := New(parseBody(t, `
	pre()
	if cond() {
		then()
	} else {
		els()
	}
	post()
	`))
	idom := g.Dominators()

	pre := blockCalling(t, g, "pre")
	then := blockCalling(t, g, "then")
	els := blockCalling(t, g, "els")
	post := blockCalling(t, g, "post")

	for _, b := range []*Block{then, els, post, g.Exit} {
		if !g.Dominates(idom, pre, b) {
			t.Errorf("pre() block must dominate block %d (%s)", b.Index, b.Comment)
		}
	}
	if g.Dominates(idom, then, post) {
		t.Error("then-arm must not dominate the join block")
	}
	if g.Dominates(idom, then, els) {
		t.Error("then-arm must not dominate the else-arm")
	}
	if g.Dominates(idom, post, then) {
		t.Error("join must not dominate the then-arm")
	}
}

func TestEarlyReturnEdges(t *testing.T) {
	// The early return leaves the guard block with an edge to Exit, so
	// the tail is not dominated by... rather: the tail is reached only
	// via the fallthrough edge, and Exit has two predecessors.
	g := New(parseBody(t, `
	pre()
	if bad() {
		cleanup()
		return
	}
	tail()
	`))
	idom := g.Dominators()

	cleanup := blockCalling(t, g, "cleanup")
	tail := blockCalling(t, g, "tail")

	// cleanup's block ends at Exit, not at tail.
	for _, s := range cleanup.Succs {
		if s == tail {
			t.Error("early-return arm must not fall through to the tail")
		}
	}
	hasExit := false
	for _, s := range cleanup.Succs {
		if s == g.Exit {
			hasExit = true
		}
	}
	if !hasExit {
		t.Error("early-return arm must edge to Exit")
	}
	if g.Dominates(idom, cleanup, tail) {
		t.Error("early-return arm must not dominate the tail")
	}
	if g.Dominates(idom, tail, g.Exit) {
		t.Error("the tail must not dominate Exit: the early return bypasses it")
	}
	if len(g.Exit.Preds) < 2 {
		t.Errorf("Exit should have >= 2 predecessors, has %d", len(g.Exit.Preds))
	}
}

func TestLoopEdgesAndDominance(t *testing.T) {
	g := New(parseBody(t, `
	setup()
	for i := 0; i < n; i++ {
		body()
		if skip() {
			continue
		}
		work()
	}
	done()
	`))
	idom := g.Dominators()

	setup := blockCalling(t, g, "setup")
	body := blockCalling(t, g, "body")
	work := blockCalling(t, g, "work")
	done := blockCalling(t, g, "done")
	head := blockByComment(t, g, "for.head")
	post := blockByComment(t, g, "for.post")

	if !g.Dominates(idom, setup, body) || !g.Dominates(idom, head, body) {
		t.Error("setup and loop head must dominate the loop body")
	}
	if g.Dominates(idom, body, done) {
		t.Error("loop body must not dominate the code after the loop (zero-iteration path)")
	}
	if g.Dominates(idom, work, post) {
		t.Error("work() must not dominate for.post: continue bypasses it")
	}
	// The back edge: post → head.
	backEdge := false
	for _, s := range post.Succs {
		if s == head {
			backEdge = true
		}
	}
	if !backEdge {
		t.Errorf("missing back edge for.post -> for.head:\n%s", g)
	}
}

func TestRangeLoopZeroIterationPath(t *testing.T) {
	g := New(parseBody(t, `
	for _, v := range xs {
		body(v)
	}
	done()
	`))
	idom := g.Dominators()
	body := blockCalling(t, g, "body")
	done := blockCalling(t, g, "done")
	if g.Dominates(idom, body, done) {
		t.Error("range body must not dominate the code after the loop")
	}
	head := blockByComment(t, g, "range.head")
	if !g.Dominates(idom, head, done) {
		t.Error("range head must dominate the code after the loop")
	}
}

func TestDefersAreRecorded(t *testing.T) {
	g := New(parseBody(t, `
	mu.Lock()
	defer mu.Unlock()
	if early() {
		return
	}
	defer second()
	work()
	`))
	if len(g.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(g.Defers))
	}
	// Source order is preserved.
	if g.Defers[0].Pos() > g.Defers[1].Pos() {
		t.Error("defers must be recorded in source order")
	}
	// The defer statement also appears as a node of its block, so
	// position-based lookups can find it.
	if g.BlockOf(g.Defers[0].Pos()) == nil {
		t.Error("defer statement not attached to any block")
	}
}

func TestSwitchEdges(t *testing.T) {
	g := New(parseBody(t, `
	switch tag() {
	case 1:
		one()
	case 2:
		two()
	default:
		dflt()
	}
	after()
	`))
	idom := g.Dominators()
	one := blockCalling(t, g, "one")
	after := blockCalling(t, g, "after")
	if g.Dominates(idom, one, after) {
		t.Error("a switch case must not dominate the code after the switch")
	}
	tag := blockCalling(t, g, "tag")
	if !g.Dominates(idom, tag, after) {
		t.Error("the switch head must dominate the code after the switch")
	}
	// With a default present, the head has no direct edge to after.
	for _, s := range tag.Succs {
		if s == after {
			t.Error("switch with default must not edge head -> after directly")
		}
	}
}

func TestSelectBlocksWithoutDefault(t *testing.T) {
	g := New(parseBody(t, `
	select {
	case <-a:
		ca()
	case <-b:
		cb()
	}
	after()
	`))
	// No default: control cannot skip past the select.
	head := g.Entry
	for _, s := range head.Succs {
		if s.Comment == "switch.done" {
			t.Error("select without default must not edge head -> done directly")
		}
	}
	idom := g.Dominators()
	ca := blockCalling(t, g, "ca")
	after := blockCalling(t, g, "after")
	if g.Dominates(idom, ca, after) {
		t.Error("a select case must not dominate the code after the select")
	}
}

func TestForwardDataflowLockState(t *testing.T) {
	// A tiny "lock held" must-analysis over a body with an early return:
	// held after Lock(), cleared by Unlock(), intersection at joins.
	g := New(parseBody(t, `
	a()
	lock()
	if c() {
		unlock()
		return
	}
	guarded()
	unlock()
	tail()
	`))
	in := Forward(g, false,
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a == b },
		func(blk *Block, held bool) bool {
			for _, n := range blk.Nodes {
				if nodeCalls(n, "lock") {
					held = true
				}
				if nodeCalls(n, "unlock") {
					held = false
				}
			}
			return held
		})

	guarded := blockCalling(t, g, "guarded")
	if !in[guarded.Index] {
		t.Error("lock must be held entering the guarded block")
	}
	aBlk := blockCalling(t, g, "a")
	if in[aBlk.Index] {
		t.Error("lock must not be held at entry")
	}
	// Exit joins the early-return path (unlocked) and the fallthrough
	// path (unlocked after the second unlock): not held.
	if in[g.Exit.Index] {
		t.Error("lock must not be held at exit")
	}
}

func nodeCalls(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

func TestNoNestedBlockNodes(t *testing.T) {
	// The decomposition invariant: no node of any block contains a
	// nested BlockStmt (so analyzers can inspect nodes without double
	// visiting). FuncLit bodies are exempt: closures are separate
	// functions with their own graphs.
	g := New(parseBody(t, `
	x := 1
	if x > 0 {
		for i := 0; i < x; i++ {
			switch i {
			case 1:
				x++
			}
		}
	}
	f := func() { x = 2 }
	f()
	`))
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(c ast.Node) bool {
				if _, ok := c.(*ast.FuncLit); ok {
					return false
				}
				if _, ok := c.(*ast.BlockStmt); ok {
					t.Errorf("block %d node %T contains a nested BlockStmt", b.Index, n)
					return false
				}
				return true
			})
		}
	}
	if !strings.Contains(g.String(), "entry") {
		t.Error("String() must render block comments")
	}
}
