// Package cfg builds lightweight intra-procedural control-flow graphs
// over ast.BlockStmt bodies for the coremaplint analyzers, in the spirit
// of golang.org/x/tools/go/cfg but dependency-free and sized to what the
// concurrency analyzers need: basic blocks with branch/loop/switch/
// select/return edges, a record of deferred calls, dominator computation
// and a forward-dataflow fixpoint helper (dataflow.go).
//
// Blocks carry a flat list of "atomic" ast.Nodes in execution order:
// simple statements are appended whole, while compound statements are
// decomposed — an if contributes its init statement and condition
// expression to the current block and its branches become successor
// blocks. A node list therefore never contains a statement with nested
// blocks, so analyzers can ast.Inspect block nodes without double
// visiting.
//
// The builder is conservative where Go control flow gets exotic: a goto
// is modelled as an edge to the exit block (no analyzer runs on code
// using goto today, and over-approximating successors keeps dataflow
// sound for must-analyses), and panics are not modelled as edges.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one basic block: a maximal run of nodes with a single entry
// point and a single exit point.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int

	// Nodes are the block's atomic statements and decomposed headers
	// (init statements, conditions, range/switch operands) in execution
	// order.
	Nodes []ast.Node

	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block

	// Comment labels the block's role ("entry", "if.then", "for.body",
	// "exit", ...) for tests and debugging.
	Comment string
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first; Exit is the single
	// synthetic block every return (and the fall-off-the-end path)
	// reaches. Deferred calls run on the Exit edge.
	Entry, Exit *Block

	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block

	// Defers are the defer statements encountered anywhere in the body,
	// in source order. The builder does not model the LIFO defer
	// schedule as edges; analyzers that care (lockcheck's exit-path
	// rule) consult this list directly.
	Defers []*ast.DeferStmt
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	b.graph = &Graph{}
	entry := b.newBlock("entry")
	b.graph.Entry = entry
	exit := b.newBlock("exit")
	b.graph.Exit = exit
	b.current = entry
	b.stmtList(body.List)
	// Fall off the end of the body: implicit return.
	b.jump(b.current, exit)
	// Keep Exit last for readability.
	for i, blk := range b.graph.Blocks {
		if blk == exit && i != len(b.graph.Blocks)-1 {
			b.graph.Blocks = append(append(b.graph.Blocks[:i], b.graph.Blocks[i+1:]...), exit)
			break
		}
	}
	for i, blk := range b.graph.Blocks {
		blk.Index = i
	}
	return b.graph
}

// builder carries the in-progress graph and the break/continue targets
// of the enclosing loops and switches.
type builder struct {
	graph   *Graph
	current *Block
	// targets is a stack of enclosing breakable/continuable constructs.
	targets []*target
}

// target records where break and continue jump for one enclosing
// construct. continueTo is nil for switches and selects.
type target struct {
	label               string // "" for unlabeled constructs
	breakTo, continueTo *Block
}

func (b *builder) newBlock(comment string) *Block {
	blk := &Block{Comment: comment}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// jump adds the edge from → to, unless from is unreachable (nil).
func (b *builder) jump(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends an atomic node to the current block (no-op when the
// current position is unreachable).
func (b *builder) add(n ast.Node) {
	if b.current != nil && n != nil {
		b.current.Nodes = append(b.current.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the pending label when the
// statement is the body of a LabeledStmt.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.current
		then := b.newBlock("if.then")
		after := b.newBlock("if.done")
		b.jump(cond, then)
		b.current = then
		b.stmtList(s.Body.List)
		b.jump(b.current, after)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.jump(cond, els)
			b.current = els
			b.stmt(s.Else, "")
			b.jump(b.current, after)
		} else {
			b.jump(cond, after)
		}
		b.current = after

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		post := b.newBlock("for.post")
		after := b.newBlock("for.done")
		b.jump(b.current, head)
		b.current = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.jump(head, after)
		}
		b.jump(head, body)
		b.targets = append(b.targets, &target{label: label, breakTo: after, continueTo: post})
		b.current = body
		b.stmtList(s.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		b.jump(b.current, post)
		b.current = post
		b.add(s.Post)
		b.jump(post, head)
		b.current = after

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.done")
		b.jump(b.current, head)
		b.current = head
		b.add(s.X)
		b.add(s.Key)
		b.add(s.Value)
		b.jump(head, body)
		b.jump(head, after)
		b.targets = append(b.targets, &target{label: label, breakTo: after, continueTo: head})
		b.current = body
		b.stmtList(s.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		b.jump(b.current, head)
		b.current = after

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchBody(s.Body, label, false)

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)

	case *ast.SelectStmt:
		b.switchBody(s.Body, label, true)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.current, b.graph.Exit)
		b.current = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.graph.Defers = append(b.graph.Defers, s)

	default:
		// Simple statements: Expr, Assign, IncDec, Send, Go, Decl,
		// Empty. None contain nested blocks (a FuncLit's body is its
		// own graph, which analyzers build separately).
		b.add(s)
	}
}

// switchBody lowers the clause list of a switch, type switch or select.
// isSelect marks a select, which always takes some clause (no implicit
// fallthrough edge past the statement when a default is absent — a
// select without default blocks until a case fires).
func (b *builder) switchBody(body *ast.BlockStmt, label string, isSelect bool) {
	head := b.current
	after := b.newBlock("switch.done")
	b.targets = append(b.targets, &target{label: label, breakTo: after})
	hasDefault := false
	var clauseBlocks []*Block
	var clauseStmts [][]ast.Stmt
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			blk := b.newBlock("switch.case")
			b.jump(head, blk)
			if head != nil {
				for _, e := range cl.List {
					head.Nodes = append(head.Nodes, e)
				}
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseStmts = append(clauseStmts, cl.Body)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			blk := b.newBlock("select.case")
			b.jump(head, blk)
			clauseBlocks = append(clauseBlocks, blk)
			stmts := cl.Body
			if cl.Comm != nil {
				stmts = append([]ast.Stmt{cl.Comm}, stmts...)
			}
			clauseStmts = append(clauseStmts, stmts)
		}
	}
	for i, blk := range clauseBlocks {
		b.current = blk
		b.stmtListWithFallthrough(clauseStmts[i], clauseBlocks, i)
		b.jump(b.current, after)
	}
	if !hasDefault && !isSelect {
		b.jump(head, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.current = after
}

// stmtListWithFallthrough lowers a case body, wiring a trailing
// fallthrough to the next clause block.
func (b *builder) stmtListWithFallthrough(list []ast.Stmt, clauses []*Block, i int) {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if i+1 < len(clauses) {
				b.jump(b.current, clauses[i+1])
			}
			b.current = nil
			return
		}
		b.stmt(s, "")
	}
}

// branch lowers break, continue and goto.
func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.jump(b.current, t.breakTo)
				b.current = nil
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueTo != nil && (label == "" || t.label == label) {
				b.jump(b.current, t.continueTo)
				b.current = nil
				return
			}
		}
	case token.GOTO:
		// Conservative: treated as leaving the function.
		b.jump(b.current, b.graph.Exit)
		b.current = nil
		return
	}
	// A break/continue whose target was not found (malformed source):
	// treat as leaving the function rather than mis-wiring edges.
	b.jump(b.current, b.graph.Exit)
	b.current = nil
}

// Dominators returns the immediate dominator of every reachable block,
// indexed like Blocks (idom[Entry.Index] == Entry; unreachable blocks
// map to nil). Classic iterative intersection over reverse postorder.
func (g *Graph) Dominators() []*Block {
	rpo := g.reversePostorder()
	order := make(map[*Block]int, len(rpo))
	for i, blk := range rpo {
		order[blk] = i
	}
	idom := make([]*Block, len(g.Blocks))
	idom[g.Entry.Index] = g.Entry
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			if blk == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range blk.Preds {
				if idom[p.Index] == nil {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom, idom, order)
				}
			}
			if newIdom != nil && idom[blk.Index] != newIdom {
				idom[blk.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func intersect(a, b *Block, idom []*Block, order map[*Block]int) *Block {
	for a != b {
		for order[a] > order[b] {
			a = idom[a.Index]
		}
		for order[b] > order[a] {
			b = idom[b.Index]
		}
	}
	return a
}

// Dominates reports whether a dominates b (every path from Entry to b
// passes through a). A block dominates itself. idom must come from
// Dominators.
func (g *Graph) Dominates(idom []*Block, a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		if b == g.Entry {
			return false
		}
		b = idom[b.Index]
	}
	return false
}

// reversePostorder returns the reachable blocks in reverse postorder of
// a depth-first traversal from Entry.
func (g *Graph) reversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var visit func(blk *Block)
	visit = func(blk *Block) {
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				visit(s)
			}
		}
		post = append(post, blk)
	}
	visit(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// BlockOf returns the reachable block whose node list contains a node
// with the given position, or nil. Analyzers use it to map an AST node
// they found by inspection back onto the graph.
func (g *Graph) BlockOf(pos token.Pos) *Block {
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				return blk
			}
		}
	}
	return nil
}

// String renders the graph compactly for tests: one line per block with
// its comment and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d:%s ->", blk.Index, blk.Comment)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
