// Fixture: imports the real mesh package and calls mesh.Distance, so
// the facts engine test can check that facts exported on the dependency
// are importable from the dependent package's view of the same objects.
package factuse

import "coremap/internal/mesh"

// Span returns the Manhattan span of two coordinates.
func Span(a, b mesh.Coord) int {
	return mesh.Distance(a, b)
}
