package lockcheck_test

import (
	"path/filepath"
	"testing"

	"coremap/internal/analysis/analysistest"
	"coremap/internal/analysis/lockcheck"
)

// TestFlagged pins the violation shapes: unlocked access, one-branch
// locking, a lock leaked past an early return, double lock, locks copied
// by value, unlocked closure access, and an unenforceable guard comment.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "flagged"), lockcheck.Analyzer)
}

// TestClean pins the no-false-positive contract: defer pairing, explicit
// unlock on every path, read locks, construction-phase writes, closures
// that lock for themselves, unguarded fields, and pointer sharing.
func TestClean(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "clean"), lockcheck.Analyzer)
}

// TestAllowed pins the suppression contract: a documented quiescent-phase
// read stays silent under //lint:allow lockcheck, while locked paths in
// the same file remain checked.
func TestAllowed(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "allowed"), lockcheck.Analyzer)
}
