// Fixture: disciplined locking stays silent — defer pairing, explicit
// unlock on every path, RWMutex read locks, construction-phase writes,
// closures that lock for themselves, and unguarded fields.
package ilp

import "sync"

type table struct {
	mu    sync.RWMutex
	m     map[string]int // guarded by mu
	hits  int            // guarded by mu
	ready bool           // set once before the table is shared; not guarded
}

// The canonical shape: Lock with a deferred Unlock.
func (t *table) set(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
	t.hits++
}

// Read access under the read lock.
func (t *table) get(k string) (int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.m[k]
	return v, ok
}

// Explicit unlock on every path, including the early return.
func (t *table) lookup(k string) int {
	t.mu.RLock()
	if v, ok := t.m[k]; ok {
		t.mu.RUnlock()
		return v
	}
	t.mu.RUnlock()
	return -1
}

// Construction phase: the value is local and unshared, so filling the
// guarded map needs no lock — the memo.NewGroup pattern.
func newTable(keys []string) *table {
	t := &table{m: make(map[string]int)}
	for i, k := range keys {
		t.m[k] = i
	}
	t.ready = true
	return t
}

// A closure takes the lock on its own schedule.
func (t *table) deferredReset() func() {
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.m = make(map[string]int)
	}
}

// Unguarded fields carry no obligations.
func (t *table) isReady() bool {
	return t.ready
}

// A pointer parameter shares the lock instead of copying it.
func merge(dst, src *table) {
	dst.mu.Lock()
	defer dst.mu.Unlock()
	src.mu.RLock()
	defer src.mu.RUnlock()
	for k, v := range src.m {
		dst.m[k] = v
	}
}
