// Fixture: violations of the `// guarded by <mu>` convention — unlocked
// access, one-branch locking, leaked lock on early return, double lock,
// locks copied by value, and a guard comment naming a missing mutex.
package ilp

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Reading a guarded field with no lock at all.
func (c *counter) peek() int {
	return c.n // want `c\.n is accessed without holding c\.mu`
}

// Locking on only one branch: the access is reachable unlocked, and the
// analyzer cannot correlate the two conditions, so the lock is also
// possibly held at return.
func (c *counter) half(lock bool) {
	if lock {
		c.mu.Lock() // want `c\.mu may still be held when the function returns`
	}
	c.n++ // want `c\.n is accessed without holding c\.mu`
	if lock {
		c.mu.Unlock()
	}
}

// The early return leaks the lock: no unlock on that path, no defer.
func (c *counter) leak(limit int) int {
	c.mu.Lock() // want `c\.mu may still be held when the function returns`
	if c.n > limit {
		return -1
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// Lock while already held: guaranteed self-deadlock.
func (c *counter) deadlock() {
	c.mu.Lock()
	c.mu.Lock() // want `c\.mu\.Lock while c\.mu is already held`
	c.n = 0
	c.mu.Unlock()
}

// A value receiver copies the mutex: the method locks its own copy.
func (c counter) byValue() int { // want `contains sync\.Mutex`
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// A parameter passing the lock-bearing struct by value.
func drain(c counter) int { // want `contains sync\.Mutex`
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// The closure must take the lock itself: the enclosing function's
// critical section does not extend onto the closure's schedule.
func (c *counter) closureEscapes() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `c\.n is accessed without holding c\.mu`
	}
}

// A guard comment naming a field that is not a mutex is unenforceable.
type broken struct {
	state int
	val   int // want `guarded-by comment names "state"` // guarded by state
}
