// Fixture: a documented single-threaded phase may suppress the guard
// with //lint:allow lockcheck and a reason.
package ilp

import "sync"

type gauge struct {
	mu sync.Mutex
	v  int // guarded by mu
}

// Snapshot after all writers have joined: quiescent by construction.
func (g *gauge) snapshot() int {
	return g.v //lint:allow lockcheck read after the worker pool joins; no writer is live
}

// The locked path stays checked even in a file with suppressions.
func (g *gauge) add(d int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v += d
}
